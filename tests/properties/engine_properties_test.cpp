// Resolution-sweep properties of the query engine: for EVERY reachable
// (spatial, temporal) resolution pair, cache-served results must equal a
// cold scan, and roll-up synthesis must be exact.

#include <gtest/gtest.h>

#include "common/civil_time.hpp"
#include "core/query_engine.hpp"

namespace stash {
namespace {

struct ResCase {
  int spatial;
  TemporalRes temporal;
};

void PrintTo(const ResCase& c, std::ostream* os) {
  *os << Resolution{c.spatial, c.temporal}.to_string();
}

class EngineResolutionTest : public ::testing::TestWithParam<ResCase> {
 protected:
  EngineResolutionTest() : graph_(config()), engine_(graph_, store_) {}

  static StashConfig config() {
    StashConfig c;
    c.max_cells = 10'000'000;
    return c;
  }

  AggregationQuery query() const {
    const auto param = GetParam();
    // A small box so Hour-resolution sweeps stay fast; 6h window keeps
    // multi-bin temporal coverage in play.
    return {{38.0, 38.4, -99.0, -98.5},
            {unix_seconds({2015, 2, 2}, 3), unix_seconds({2015, 2, 2}, 9)},
            {param.spatial, param.temporal}};
  }

  static void expect_same(const CellSummaryMap& a, const CellSummaryMap& b) {
    ASSERT_EQ(a.size(), b.size());
    for (const auto& [key, summary] : a) {
      const auto it = b.find(key);
      ASSERT_NE(it, b.end()) << key.label();
      EXPECT_TRUE(summary.approx_equals(it->second)) << key.label();
    }
  }

  std::shared_ptr<const NamGenerator> gen_ = std::make_shared<NamGenerator>();
  GalileoStore store_{gen_};
  StashGraph graph_;
  QueryEngine engine_;
};

TEST_P(EngineResolutionTest, WarmCacheEqualsColdScan) {
  const auto q = query();
  const Evaluation cold = engine_.evaluate(q);
  engine_.absorb(cold, q.res, 0);
  const Evaluation warm = engine_.evaluate(q);
  EXPECT_EQ(warm.breakdown.chunks_scanned, 0u);
  expect_same(cold.cells, warm.cells);
}

TEST_P(EngineResolutionTest, BasicModeMatchesCachedMode) {
  const auto q = query();
  const Evaluation basic = engine_.evaluate(q, EvalMode::Basic);
  const Evaluation cached = engine_.evaluate(q, EvalMode::Cached);
  expect_same(basic.cells, cached.cells);
}

TEST_P(EngineResolutionTest, CellsRespectResolutionBounds) {
  const auto q = query();
  const Evaluation eval = engine_.evaluate(q);
  for (const auto& [key, summary] : eval.cells) {
    EXPECT_EQ(key.resolution(), q.res) << key.label();
    EXPECT_TRUE(key.bounds().intersects(q.area)) << key.label();
    EXPECT_TRUE(key.time_range().intersects(q.time)) << key.label();
    EXPECT_GT(summary.observation_count(), 0u);
  }
}

TEST_P(EngineResolutionTest, SpatialRollUpSynthesisIsExact) {
  const auto param = GetParam();
  // Below spatial 5 the coarser level's chunks are *larger* than the fine
  // level's cached footprint (a gh3 cell spans many gh4 chunks), so the
  // engine rightly falls back to disk for the uncovered remainder — the
  // guaranteed-synthesis property only holds when both levels share chunk
  // geometry (spatial >= 5 with the default chunk precision 4).
  if (param.spatial <= 4) return;
  AggregationQuery fine = query();
  engine_.absorb(engine_.evaluate(fine), fine.res, 0);

  AggregationQuery coarse = fine;
  --coarse.res.spatial;
  const Evaluation synthesized = engine_.evaluate(coarse);
  EXPECT_EQ(synthesized.breakdown.scan.records_scanned, 0u)
      << "synthesis should avoid disk";

  StashGraph cold_graph(config());
  QueryEngine cold_engine(cold_graph, store_);
  expect_same(cold_engine.evaluate(coarse).cells, synthesized.cells);
}

TEST_P(EngineResolutionTest, TemporalRollUpSynthesisIsExact) {
  const auto param = GetParam();
  const auto coarser_t = coarser(param.temporal);
  if (!coarser_t.has_value()) return;
  // Only Day->Hour is cheap enough for the whole sweep; coarser pairs need
  // month-scale scans and are covered by the core engine tests.
  if (*coarser_t != TemporalRes::Day) return;

  AggregationQuery fine = query();
  fine.time = {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})};
  engine_.absorb(engine_.evaluate(fine), fine.res, 0);

  AggregationQuery coarse = fine;
  coarse.res.temporal = *coarser_t;
  const Evaluation synthesized = engine_.evaluate(coarse);
  EXPECT_EQ(synthesized.breakdown.scan.records_scanned, 0u);

  StashGraph cold_graph(config());
  QueryEngine cold_engine(cold_graph, store_);
  expect_same(cold_engine.evaluate(coarse).cells, synthesized.cells);
}

INSTANTIATE_TEST_SUITE_P(
    ResolutionSweep, EngineResolutionTest,
    ::testing::Values(ResCase{2, TemporalRes::Day}, ResCase{3, TemporalRes::Day},
                      ResCase{4, TemporalRes::Day}, ResCase{5, TemporalRes::Day},
                      ResCase{6, TemporalRes::Day}, ResCase{7, TemporalRes::Day},
                      ResCase{4, TemporalRes::Hour}, ResCase{5, TemporalRes::Hour},
                      ResCase{6, TemporalRes::Hour},
                      ResCase{4, TemporalRes::Month},
                      ResCase{5, TemporalRes::Month}));

}  // namespace
}  // namespace stash
