// Algebraic properties of mergeable summaries — the invariant all of
// STASH's reuse (roll-up synthesis, partial-day merging, replication)
// rests on.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/summary.hpp"

namespace stash {
namespace {

struct SummaryCase {
  std::uint64_t seed;
  int observations;
  int partitions;
};

class SummaryMergeTest : public ::testing::TestWithParam<SummaryCase> {
 protected:
  static std::vector<std::array<double, 4>> draw(std::uint64_t seed, int n) {
    Rng rng(seed);
    std::vector<std::array<double, 4>> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.push_back({rng.normal(280.0, 15.0), rng.uniform(0.0, 100.0),
                     rng.bernoulli(0.2) ? rng.uniform(0.0, 40.0) : 0.0,
                     rng.uniform(0.0, 2.0)});
    }
    return out;
  }
};

TEST_P(SummaryMergeTest, AnyPartitioningMatchesBulk) {
  const auto param = GetParam();
  const auto values = draw(param.seed, param.observations);
  Summary bulk(4);
  for (const auto& obs : values) bulk.add_observation(obs.data(), 4);

  Rng rng(param.seed ^ 0xabcdef);
  std::vector<Summary> parts(static_cast<std::size_t>(param.partitions),
                             Summary(4));
  for (const auto& obs : values)
    parts[rng.next_below(parts.size())].add_observation(obs.data(), 4);
  Summary merged(4);
  for (const auto& p : parts) merged.merge(p);
  EXPECT_TRUE(merged.approx_equals(bulk));
  EXPECT_EQ(merged.observation_count(), bulk.observation_count());
}

TEST_P(SummaryMergeTest, MergeOrderIrrelevant) {
  const auto param = GetParam();
  const auto values = draw(param.seed, param.observations);
  std::vector<Summary> parts(4, Summary(4));
  for (std::size_t i = 0; i < values.size(); ++i)
    parts[i % 4].add_observation(values[i].data(), 4);

  Summary forward(4);
  for (const auto& p : parts) forward.merge(p);
  Summary backward(4);
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) backward.merge(*it);
  EXPECT_TRUE(forward.approx_equals(backward));
  // min/max and count are exactly order-independent.
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_EQ(forward.attribute(a).min, backward.attribute(a).min);
    EXPECT_EQ(forward.attribute(a).max, backward.attribute(a).max);
    EXPECT_EQ(forward.attribute(a).count, backward.attribute(a).count);
  }
}

TEST_P(SummaryMergeTest, MergeIsAssociative) {
  const auto param = GetParam();
  const auto values = draw(param.seed, param.observations);
  std::vector<Summary> parts(3, Summary(4));
  for (std::size_t i = 0; i < values.size(); ++i)
    parts[i % 3].add_observation(values[i].data(), 4);

  Summary left = parts[0];   // (a + b) + c
  left.merge(parts[1]);
  left.merge(parts[2]);
  Summary right = parts[1];  // a + (b + c)
  right.merge(parts[2]);
  Summary a = parts[0];
  a.merge(right);
  EXPECT_TRUE(left.approx_equals(a));
}

TEST_P(SummaryMergeTest, StatisticsAreSane) {
  const auto param = GetParam();
  const auto values = draw(param.seed, param.observations);
  Summary s(4);
  for (const auto& obs : values) s.add_observation(obs.data(), 4);
  for (std::size_t a = 0; a < 4; ++a) {
    const auto& attr = s.attribute(a);
    EXPECT_LE(attr.min, attr.mean());
    EXPECT_GE(attr.max, attr.mean());
    EXPECT_GE(attr.variance(), 0.0);
    EXPECT_GE(attr.stddev(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SummaryMergeTest,
    ::testing::Values(SummaryCase{1, 10, 2}, SummaryCase{2, 100, 3},
                      SummaryCase{3, 1000, 7}, SummaryCase{4, 500, 16},
                      SummaryCase{5, 37, 5}, SummaryCase{6, 2000, 31}));

}  // namespace
}  // namespace stash
