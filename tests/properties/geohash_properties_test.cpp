// Property sweeps over every geohash precision (TEST_P).

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "geo/geohash.hpp"

namespace stash::geohash {
namespace {

class GeohashPrecisionTest : public ::testing::TestWithParam<int> {};

TEST_P(GeohashPrecisionTest, EncodeDecodeContainment) {
  const int precision = GetParam();
  Rng rng(static_cast<std::uint64_t>(precision));
  for (int i = 0; i < 200; ++i) {
    const LatLng p{rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)};
    const std::string gh = encode(p, precision);
    ASSERT_EQ(gh.size(), static_cast<std::size_t>(precision));
    const BoundingBox box = decode(gh);
    EXPECT_TRUE(box.contains(p));
    EXPECT_NEAR(box.width(), cell_width_deg(precision), 1e-12);
    EXPECT_NEAR(box.height(), cell_height_deg(precision), 1e-12);
  }
}

TEST_P(GeohashPrecisionTest, PackUnpackIdentity) {
  const int precision = GetParam();
  Rng rng(static_cast<std::uint64_t>(precision) + 100);
  for (int i = 0; i < 200; ++i) {
    const std::string gh = encode(
        {rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)}, precision);
    EXPECT_EQ(unpack(pack(gh)), gh);
  }
}

TEST_P(GeohashPrecisionTest, NeighborsAreAdjacentAndDistinct) {
  const int precision = GetParam();
  Rng rng(static_cast<std::uint64_t>(precision) + 200);
  // Stay two cell-heights away from the poles so all 8 neighbors exist.
  const double lat_margin = 90.0 - 2.0 * cell_height_deg(precision);
  for (int i = 0; i < 50; ++i) {
    const LatLng p{rng.uniform(-lat_margin, lat_margin),
                   rng.uniform(-179.0, 179.0)};
    const std::string gh = encode(p, precision);
    const auto ns = neighbors(gh);
    EXPECT_EQ(ns.size(), 8u);
    const std::set<std::string> unique(ns.begin(), ns.end());
    EXPECT_EQ(unique.size(), ns.size());
    const LatLng c = decode_center(gh);
    for (const auto& n : ns) {
      EXPECT_NE(n, gh);
      const LatLng nc = decode_center(n);
      // Neighbor centers are within ~1.5 cells (diagonals).
      EXPECT_LT(std::abs(nc.lat - c.lat), 1.5 * cell_height_deg(precision));
      double dlng = std::abs(nc.lng - c.lng);
      dlng = std::min(dlng, 360.0 - dlng);
      EXPECT_LT(dlng, 1.5 * cell_width_deg(precision));
    }
  }
}

TEST_P(GeohashPrecisionTest, ChildrenNestExactly) {
  const int precision = GetParam();
  if (precision >= kMaxPrecision) return;
  Rng rng(static_cast<std::uint64_t>(precision) + 300);
  const std::string gh =
      encode({rng.uniform(-80.0, 80.0), rng.uniform(-179.0, 179.0)}, precision);
  double total_area = 0.0;
  for (const auto& child : children(gh)) {
    EXPECT_TRUE(decode(gh).contains(decode(child)));
    EXPECT_EQ(*parent(child), gh);
    total_area += decode(child).area();
  }
  EXPECT_NEAR(total_area, decode(gh).area(), decode(gh).area() * 1e-9);
}

TEST_P(GeohashPrecisionTest, CoveringPartitionIsExactAndDisjoint) {
  const int precision = GetParam();
  if (precision > 5) return;  // enumeration cost grows 32x per level
  Rng rng(static_cast<std::uint64_t>(precision) + 400);
  const double lat = rng.uniform(-50.0, 40.0);
  const double lng = rng.uniform(-150.0, 140.0);
  const BoundingBox box{lat, lat + 4.0, lng, lng + 8.0};
  const auto cells = covering(box, precision);
  ASSERT_EQ(cells.size(), covering_size(box, precision));
  // Disjoint interiors.
  for (std::size_t i = 0; i < cells.size(); ++i)
    for (std::size_t j = i + 1; j < cells.size(); ++j)
      ASSERT_FALSE(decode(cells[i]).intersects(decode(cells[j])));
  // Total covered area >= box area (cells may overhang the edges).
  double covered = 0.0;
  for (const auto& gh : cells) covered += decode(gh).area();
  EXPECT_GE(covered, box.area() - 1e-9);
}

TEST_P(GeohashPrecisionTest, AntipodeSymmetry) {
  const int precision = GetParam();
  Rng rng(static_cast<std::uint64_t>(precision) + 500);
  for (int i = 0; i < 50; ++i) {
    const std::string gh = encode(
        {rng.uniform(-80.0, 80.0), rng.uniform(-179.0, 179.0)}, precision);
    const std::string anti = antipode(gh);
    EXPECT_EQ(anti.size(), gh.size());
    EXPECT_NE(anti, gh);
    EXPECT_EQ(antipode(anti), gh);  // involution at cell granularity
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, GeohashPrecisionTest,
                         ::testing::Range(1, kMaxPrecision + 1));

}  // namespace
}  // namespace stash::geohash
