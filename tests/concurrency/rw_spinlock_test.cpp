// Plain-build tests for RwSpinlock: single-threaded state-machine checks
// plus a real-thread stress test (suite name matches the TSan CI lane's
// Concurrent* filter).

#include "concurrency/rw_spinlock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace stash {
namespace {

using concurrency::RwSpinlock;
using concurrency::RwSpinReaderLock;
using concurrency::RwSpinWriterLock;

TEST(RwSpinlockTest, WriterExcludesEveryone) {
  RwSpinlock mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock_shared());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(RwSpinlockTest, ReadersShareButExcludeWriters) {
  RwSpinlock mu;
  mu.lock_shared();
  EXPECT_TRUE(mu.try_lock_shared());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock_shared();
  EXPECT_FALSE(mu.try_lock());  // one reader still holds it
  mu.unlock_shared();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(RwSpinlockTest, RaiiGuardsReleaseOnScopeExit) {
  RwSpinlock mu;
  {
    RwSpinWriterLock guard(mu);
    EXPECT_FALSE(mu.try_lock_shared());
  }
  {
    RwSpinReaderLock guard(mu);
    EXPECT_FALSE(mu.try_lock());
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(ConcurrentRwSpinlockStressTest, GuardedCountersStayConsistent) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr std::int64_t kIncrementsPerWriter = 20000;

  RwSpinlock mu;
  std::int64_t a = 0;  // both guarded by mu
  std::int64_t b = 0;
  std::atomic<bool> done{false};
  std::atomic<std::int64_t> mismatches{0};

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (std::int64_t i = 0; i < kIncrementsPerWriter; ++i) {
        RwSpinWriterLock guard(mu);
        ++a;
        ++b;
      }
    });
  }
  for (int c = 0; c < kReaders; ++c) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        RwSpinReaderLock guard(mu);
        if (a != b) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  done.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(a, kWriters * kIncrementsPerWriter);
  EXPECT_EQ(b, kWriters * kIncrementsPerWriter);
}

}  // namespace
}  // namespace stash
