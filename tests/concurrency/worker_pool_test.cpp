// WorkerPool unit tests: worker-count resolution (PR 8 satellite — must
// survive hardware_concurrency() == 0), task execution, batch completion,
// shutdown drain, and the stats counters.  The Concurrent* suite name puts
// the threaded cases in the TSan CI lane.

#include "concurrency/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace stash {
namespace {

using concurrency::resolve_worker_count;
using concurrency::WorkerPool;

WorkerPool::Config pool_config(std::size_t threads, std::size_t capacity) {
  WorkerPool::Config config;
  config.threads = threads;
  config.queue_capacity = capacity;
  return config;
}

TEST(WorkerCountTest, ExplicitConfigurationWinsVerbatim) {
  EXPECT_EQ(resolve_worker_count(1, 8u), 1u);
  EXPECT_EQ(resolve_worker_count(3, 8u), 3u);
  EXPECT_EQ(resolve_worker_count(16, 2u), 16u);  // override beats the hint
  EXPECT_EQ(resolve_worker_count(5, 0u), 5u);    // even with no hint at all
}

TEST(WorkerCountTest, ZeroConfigFallsBackToHardwareHint) {
  EXPECT_EQ(resolve_worker_count(0, 4u), 4u);
  EXPECT_EQ(resolve_worker_count(0, 1u), 1u);
}

TEST(WorkerCountTest, UncomputableHardwareHintClampsToOne) {
  // The standard allows hardware_concurrency() to return 0 ("not
  // computable"); a zero-thread pool would deadlock every submit.
  EXPECT_EQ(resolve_worker_count(0, 0u), 1u);
}

TEST(WorkerCountTest, DefaultHintOverloadIsPositive) {
  EXPECT_GE(resolve_worker_count(0), 1u);
  EXPECT_EQ(resolve_worker_count(7), 7u);
}

TEST(ConcurrentWorkerPoolTest, RunsEverySubmittedTask) {
  WorkerPool pool(pool_config(4, 8));
  EXPECT_EQ(pool.worker_count(), 4u);

  constexpr int kTasks = 2000;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  while (ran.load(std::memory_order_relaxed) < kTasks)
    std::this_thread::yield();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(pool.total_stats().executed, static_cast<std::uint64_t>(kTasks));
}

TEST(ConcurrentWorkerPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  constexpr int kTasks = 500;
  {
    WorkerPool pool(pool_config(2, 16));
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor must not return until every submitted task has run.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ConcurrentWorkerPoolTest, SingleWorkerPoolStillCompletes) {
  WorkerPool pool(pool_config(1, 4));
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  while (ran.load(std::memory_order_relaxed) < 64) std::this_thread::yield();
  const auto stats = pool.total_stats();
  EXPECT_EQ(stats.executed, 64u);
  EXPECT_EQ(stats.stolen, 0u);  // nobody to steal from
}

TEST(ConcurrentWorkerPoolTest, IdleWorkersParkAndWake) {
  WorkerPool pool(pool_config(2, 8));
  // Give the workers time to run out of spin budget and park.
  for (int tries = 0; tries < 200; ++tries) {
    if (pool.total_stats().parks >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(pool.total_stats().parks, 2u) << "idle workers never parked";

  // A submit after the park must wake someone and run.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true, std::memory_order_relaxed); });
  for (int tries = 0; tries < 2000 && !ran.load(); ++tries)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(ran.load()) << "task submitted to a parked pool never ran";
}

TEST(ConcurrentWorkerPoolTest, BlockedWorkerGetsRobbed) {
  // One worker wedges on a gate; the other must steal its backlog.
  // (Captured atomics declared before the pool so they outlive its join.)
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  WorkerPool pool(pool_config(2, 64));
  pool.submit([&release] {
    while (!release.load(std::memory_order_relaxed))
      std::this_thread::yield();
  });
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  // All kTasks must finish even though one worker is wedged.
  for (int tries = 0; tries < 5000 && ran.load() < kTasks; ++tries)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(ran.load(), kTasks);
  release.store(true, std::memory_order_relaxed);
}

TEST(ConcurrentWorkerPoolTest, QueueDepthStaysWithinBounds) {
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  WorkerPool pool(pool_config(2, 4));
  // Wedge both workers, then fill the rings to exercise backpressure.
  for (int i = 0; i < 2; ++i) {
    pool.submit([&release] {
      while (!release.load(std::memory_order_relaxed))
        std::this_thread::yield();
    });
  }
  std::thread submitter([&pool, &ran] {
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  for (int tries = 0; tries < 100; ++tries) {
    EXPECT_LE(pool.queue_depth(), pool.worker_count() * 4u);
    for (std::size_t w = 0; w < pool.worker_count(); ++w)
      EXPECT_LE(pool.worker_queue_depth(w), 4u);
    std::this_thread::yield();
  }
  release.store(true, std::memory_order_relaxed);
  submitter.join();
  while (ran.load(std::memory_order_relaxed) < 64) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 64);
}

// ---------------------------------------------------------------------------
// PR 9 robustness: shed path, bounded backpressure, quarantine, watchdog,
// abandon shutdown, and teardown with a parked submitter.
// ---------------------------------------------------------------------------

TEST(ConcurrentWorkerPoolTest, TrySubmitShedsWhenEveryRingIsFull) {
  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  std::atomic<int> ran{0};
  WorkerPool pool(pool_config(2, 4));
  // Wedge both workers so nothing drains while we fill the rings; wait
  // until both wedges are actually running, or the fill below races the
  // workers still draining their own rings.
  for (int i = 0; i < 2; ++i) {
    pool.submit([&release, &started] {
      started.fetch_add(1, std::memory_order_relaxed);
      while (!release.load(std::memory_order_relaxed))
        std::this_thread::yield();
    });
  }
  while (started.load(std::memory_order_relaxed) < 2)
    std::this_thread::yield();
  // Fill every ring via the shed path until it refuses.
  int pushed = 0;
  for (;;) {
    WorkerPool::Task task = [&ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
    };
    if (!pool.try_submit(task)) {
      // Refusal contract: the task comes back untouched — running it
      // ourselves is the caller's inline-shed fallback.
      ASSERT_TRUE(static_cast<bool>(task));
      task();
      break;
    }
    ++pushed;
    ASSERT_LE(pushed, 2 * 4) << "rings accepted more than their capacity";
  }
  EXPECT_EQ(ran.load(), 1);  // only the inline-run shed task so far
  EXPECT_GE(pool.total_stats().submit_shed, 1u);

  release.store(true, std::memory_order_relaxed);
  while (ran.load(std::memory_order_relaxed) < pushed + 1)
    std::this_thread::yield();
  EXPECT_EQ(ran.load(), pushed + 1);
}

TEST(ConcurrentWorkerPoolTest, SubmitParksUnderBackpressureThenResumes) {
  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  std::atomic<int> ran{0};
  WorkerPool pool(pool_config(1, 2));
  pool.submit([&release, &started] {
    started.fetch_add(1, std::memory_order_relaxed);
    while (!release.load(std::memory_order_relaxed))
      std::this_thread::yield();
  });
  while (started.load(std::memory_order_relaxed) < 1)
    std::this_thread::yield();
  // Fill the only ring, then push one more from a second thread: that
  // submitter must exhaust its bounded spin and PARK (counted), not
  // yield-spin forever.
  int queued = 0;
  for (;;) {
    WorkerPool::Task task = [&ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
    };
    if (!pool.try_submit(task)) break;
    ++queued;
  }
  std::thread submitter([&pool, &ran] {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  });
  // The wedge holds the ring full, so the submitter has nowhere to go
  // until we release; give it time to run out of spin budget and park.
  for (int tries = 0; tries < 2000; ++tries) {
    if (pool.total_stats().submit_blocked >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(pool.total_stats().submit_blocked, 1u)
      << "blocked submitter never parked";

  release.store(true, std::memory_order_relaxed);
  submitter.join();
  while (ran.load(std::memory_order_relaxed) < queued + 1)
    std::this_thread::yield();
  EXPECT_EQ(ran.load(), queued + 1);
}

TEST(ConcurrentWorkerPoolTest, ThrowingTasksAreQuarantined) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(pool_config(2, 8));
    for (int i = 0; i < 8; ++i) {
      pool.submit([] { throw std::runtime_error("injected"); });
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    while (ran.load(std::memory_order_relaxed) < 8) std::this_thread::yield();
    const auto stats = pool.total_stats();
    EXPECT_EQ(stats.task_exceptions, 8u);
    EXPECT_EQ(stats.executed, 16u);  // throwing tasks still count as executed
  }
  EXPECT_EQ(ran.load(), 8);  // the pool survived every throw and shut down
}

TEST(ConcurrentWorkerPoolTest, WatchdogCountsFrozenHeartbeatWithBacklog) {
  std::atomic<bool> release{false};
  WorkerPool::Config config = pool_config(2, 8);
  config.watchdog_interval_ns = 2'000'000;  // 2ms ticks
  config.now_ns = [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
  WorkerPool pool(config);
  // Wedge both workers (frozen heartbeats), then queue a backlog so the
  // stall condition — no progress across a full interval with work
  // waiting — actually holds.
  std::atomic<int> started{0};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&release, &started] {
      started.fetch_add(1, std::memory_order_relaxed);
      while (!release.load(std::memory_order_relaxed))
        std::this_thread::yield();
    });
  }
  while (started.load(std::memory_order_relaxed) < 2)
    std::this_thread::yield();
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    WorkerPool::Task task = [&ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
    };
    ASSERT_TRUE(pool.try_submit(task));
  }
  for (int tries = 0; tries < 5000; ++tries) {
    if (pool.total_stats().watchdog_stalls >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(pool.total_stats().watchdog_stalls, 1u)
      << "watchdog never noticed two wedged workers with backlog";
  release.store(true, std::memory_order_relaxed);
  while (ran.load(std::memory_order_relaxed) < 4) std::this_thread::yield();
}

TEST(ConcurrentWorkerPoolTest, AbandonShutdownDestroysQueuedTasksUnrun) {
  // Instance-counted payloads: abandon-mode teardown must destroy queued
  // tasks without running them — and without leaking them.
  auto live = std::make_shared<std::atomic<int>>(0);
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  {
    WorkerPool::Config config = pool_config(2, 8);
    config.drain_on_shutdown = false;
    WorkerPool pool(config);
    std::atomic<int> started{0};
    for (int i = 0; i < 2; ++i) {
      pool.submit([&release, &started] {
        started.fetch_add(1, std::memory_order_relaxed);
        while (!release.load(std::memory_order_relaxed))
          std::this_thread::yield();
      });
    }
    while (started.load(std::memory_order_relaxed) < 2)
      std::this_thread::yield();
    int queued = 0;
    for (int i = 0; i < 8; ++i) {
      WorkerPool::Task task = [&ran, keep = live] {
        ran.fetch_add(1, std::memory_order_relaxed);
      };
      if (pool.try_submit(task)) ++queued;
    }
    ASSERT_GT(queued, 0);
    // Destroy while the workers are still wedged: the destructor sets
    // stop_, the wedge tasks return, and the workers must exit WITHOUT
    // draining their rings.  Release from another thread so the join in
    // the destructor can complete.
    std::thread releaser([&release] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      release.store(true, std::memory_order_relaxed);
    });
    releaser.detach();
  }
  EXPECT_EQ(ran.load(), 0) << "abandon shutdown ran queued tasks";
  EXPECT_EQ(live.use_count(), 1)
      << "abandoned task payloads were leaked, not destroyed";
}

TEST(ConcurrentWorkerPoolTest, DestroyPoolWhileSubmitterParkedOnBackpressure) {
  // Satellite 2: tearing the pool down while a submitter is parked on the
  // space gate must neither hang nor drop the parked submitter's task.
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  int queued = 0;
  std::thread submitter;
  {
    WorkerPool pool(pool_config(1, 2));
    std::atomic<int> started{0};
    pool.submit([&release, &started] {
      started.fetch_add(1, std::memory_order_relaxed);
      while (!release.load(std::memory_order_relaxed))
        std::this_thread::yield();
    });
    while (started.load(std::memory_order_relaxed) < 1)
      std::this_thread::yield();
    for (;;) {
      WorkerPool::Task task = [&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
      };
      if (!pool.try_submit(task)) break;
      ++queued;
    }
    submitter = std::thread([&pool, &ran] {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
    // Let the submitter reach the parked state (or at least the spin).
    for (int tries = 0; tries < 500; ++tries) {
      if (pool.total_stats().submit_blocked >= 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::thread releaser([&release] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      release.store(true, std::memory_order_relaxed);
    });
    releaser.detach();
    // Destructor: wakes the parked submitter (who inline-runs its task),
    // waits out inflight submits, then joins the workers.
  }
  submitter.join();
  // Drain mode: every queued task ran, plus the parked submitter's one.
  EXPECT_EQ(ran.load(), queued + 1);
}

}  // namespace
}  // namespace stash
