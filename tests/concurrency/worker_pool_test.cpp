// WorkerPool unit tests: worker-count resolution (PR 8 satellite — must
// survive hardware_concurrency() == 0), task execution, batch completion,
// shutdown drain, and the stats counters.  The Concurrent* suite name puts
// the threaded cases in the TSan CI lane.

#include "concurrency/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace stash {
namespace {

using concurrency::resolve_worker_count;
using concurrency::WorkerPool;

TEST(WorkerCountTest, ExplicitConfigurationWinsVerbatim) {
  EXPECT_EQ(resolve_worker_count(1, 8u), 1u);
  EXPECT_EQ(resolve_worker_count(3, 8u), 3u);
  EXPECT_EQ(resolve_worker_count(16, 2u), 16u);  // override beats the hint
  EXPECT_EQ(resolve_worker_count(5, 0u), 5u);    // even with no hint at all
}

TEST(WorkerCountTest, ZeroConfigFallsBackToHardwareHint) {
  EXPECT_EQ(resolve_worker_count(0, 4u), 4u);
  EXPECT_EQ(resolve_worker_count(0, 1u), 1u);
}

TEST(WorkerCountTest, UncomputableHardwareHintClampsToOne) {
  // The standard allows hardware_concurrency() to return 0 ("not
  // computable"); a zero-thread pool would deadlock every submit.
  EXPECT_EQ(resolve_worker_count(0, 0u), 1u);
}

TEST(WorkerCountTest, DefaultHintOverloadIsPositive) {
  EXPECT_GE(resolve_worker_count(0), 1u);
  EXPECT_EQ(resolve_worker_count(7), 7u);
}

TEST(ConcurrentWorkerPoolTest, RunsEverySubmittedTask) {
  WorkerPool pool(WorkerPool::Config{4, 8});
  EXPECT_EQ(pool.worker_count(), 4u);

  constexpr int kTasks = 2000;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  while (ran.load(std::memory_order_relaxed) < kTasks)
    std::this_thread::yield();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(pool.total_stats().executed, static_cast<std::uint64_t>(kTasks));
}

TEST(ConcurrentWorkerPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  constexpr int kTasks = 500;
  {
    WorkerPool pool(WorkerPool::Config{2, 16});
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor must not return until every submitted task has run.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ConcurrentWorkerPoolTest, SingleWorkerPoolStillCompletes) {
  WorkerPool pool(WorkerPool::Config{1, 4});
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  while (ran.load(std::memory_order_relaxed) < 64) std::this_thread::yield();
  const auto stats = pool.total_stats();
  EXPECT_EQ(stats.executed, 64u);
  EXPECT_EQ(stats.stolen, 0u);  // nobody to steal from
}

TEST(ConcurrentWorkerPoolTest, IdleWorkersParkAndWake) {
  WorkerPool pool(WorkerPool::Config{2, 8});
  // Give the workers time to run out of spin budget and park.
  for (int tries = 0; tries < 200; ++tries) {
    if (pool.total_stats().parks >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(pool.total_stats().parks, 2u) << "idle workers never parked";

  // A submit after the park must wake someone and run.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true, std::memory_order_relaxed); });
  for (int tries = 0; tries < 2000 && !ran.load(); ++tries)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(ran.load()) << "task submitted to a parked pool never ran";
}

TEST(ConcurrentWorkerPoolTest, BlockedWorkerGetsRobbed) {
  // One worker wedges on a gate; the other must steal its backlog.
  // (Captured atomics declared before the pool so they outlive its join.)
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  WorkerPool pool(WorkerPool::Config{2, 64});
  pool.submit([&release] {
    while (!release.load(std::memory_order_relaxed))
      std::this_thread::yield();
  });
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  // All kTasks must finish even though one worker is wedged.
  for (int tries = 0; tries < 5000 && ran.load() < kTasks; ++tries)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(ran.load(), kTasks);
  release.store(true, std::memory_order_relaxed);
}

TEST(ConcurrentWorkerPoolTest, QueueDepthStaysWithinBounds) {
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  WorkerPool pool(WorkerPool::Config{2, 4});
  // Wedge both workers, then fill the rings to exercise backpressure.
  for (int i = 0; i < 2; ++i) {
    pool.submit([&release] {
      while (!release.load(std::memory_order_relaxed))
        std::this_thread::yield();
    });
  }
  std::thread submitter([&pool, &ran] {
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  for (int tries = 0; tries < 100; ++tries) {
    EXPECT_LE(pool.queue_depth(), pool.worker_count() * 4u);
    for (std::size_t w = 0; w < pool.worker_count(); ++w)
      EXPECT_LE(pool.worker_queue_depth(w), 4u);
    std::this_thread::yield();
  }
  release.store(true, std::memory_order_relaxed);
  submitter.join();
  while (ran.load(std::memory_order_relaxed) < 64) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
}  // namespace stash
