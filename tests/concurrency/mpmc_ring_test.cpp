// Plain-build tests for MpmcRing: single-threaded semantics against a
// reference deque, plus a real-thread stress test (the suite name matches
// the TSan CI lane's Concurrent* filter so it also runs under
// -fsanitize=thread).

#include "concurrency/mpmc_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace stash {
namespace {

using concurrency::MpmcRing;

TEST(MpmcRingTest, StartsEmpty) {
  MpmcRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size_approx(), 0u);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(MpmcRingTest, SingleThreadedFifo) {
  MpmcRing<int> ring(8);
  for (int v = 1; v <= 5; ++v) EXPECT_TRUE(ring.try_push(v));
  EXPECT_EQ(ring.size_approx(), 5u);
  for (int v = 1; v <= 5; ++v) {
    const auto got = ring.try_pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(MpmcRingTest, FullRingRejectsPush) {
  MpmcRing<int> ring(4);
  for (int v = 0; v < 4; ++v) EXPECT_TRUE(ring.try_push(v));
  EXPECT_FALSE(ring.try_push(99));
  ASSERT_EQ(ring.try_pop().value_or(-1), 0);
  EXPECT_TRUE(ring.try_push(99));  // slot handed back after the pop
  EXPECT_FALSE(ring.try_push(100));
}

TEST(MpmcRingTest, MovesMoveOnlyPayloads) {
  MpmcRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  auto got = ring.try_pop();
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(*got != nullptr);
  EXPECT_EQ(**got, 7);
}

TEST(MpmcRingTest, WraparoundMatchesReferenceDeque) {
  MpmcRing<std::uint64_t> ring(8);
  std::deque<std::uint64_t> reference;
  Rng rng(2026);
  std::uint64_t next_value = 0;
  for (int step = 0; step < 20000; ++step) {
    if (rng.bernoulli(0.55)) {
      const bool pushed = ring.try_push(next_value);
      EXPECT_EQ(pushed, reference.size() < ring.capacity());
      if (pushed) reference.push_back(next_value);
      ++next_value;
    } else {
      const auto got = ring.try_pop();
      ASSERT_EQ(got.has_value(), !reference.empty());
      if (got.has_value()) {
        EXPECT_EQ(*got, reference.front());
        reference.pop_front();
      }
    }
  }
}

// Payload that counts live instances — proves the destructor drain
// (unconsumed elements must be destroyed exactly once, PR 8 satellite).
struct CountedPayload {
  static std::atomic<int> live;
  explicit CountedPayload(int v) : value(v) { live.fetch_add(1); }
  CountedPayload(const CountedPayload& o) : value(o.value) {
    live.fetch_add(1);
  }
  CountedPayload(CountedPayload&& o) noexcept : value(o.value) {
    live.fetch_add(1);
  }
  ~CountedPayload() { live.fetch_sub(1); }
  int value;  // NOLINT: no default ctor on purpose
};
std::atomic<int> CountedPayload::live{0};

TEST(MpmcRingTest, DestructorDrainsUnconsumedElements) {
  CountedPayload::live.store(0);
  {
    MpmcRing<CountedPayload> ring(8);
    for (int v = 0; v < 6; ++v) EXPECT_TRUE(ring.try_push(CountedPayload(v)));
    for (int v = 0; v < 2; ++v) {
      const auto got = ring.try_pop();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->value, v);
    }
    EXPECT_EQ(CountedPayload::live.load(), 4);  // 6 pushed, 2 popped
  }
  // ~MpmcRing drained the 4 unconsumed payloads.
  EXPECT_EQ(CountedPayload::live.load(), 0);
}

TEST(MpmcRingTest, SupportsNonDefaultConstructiblePayloads) {
  CountedPayload::live.store(0);
  {
    MpmcRing<CountedPayload> ring(2);
    EXPECT_TRUE(ring.try_push(CountedPayload(41)));
    const auto got = ring.try_pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->value, 41);
  }
  EXPECT_EQ(CountedPayload::live.load(), 0);
}

TEST(MpmcRingTest, RejectedPushLeavesCallerValueIntact) {
  MpmcRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(1)));
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(2)));
  auto keep = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(std::move(keep)));
  // A failed push must not have moved the payload out from under us.
  ASSERT_TRUE(keep != nullptr);
  EXPECT_EQ(*keep, 3);
}

// Regression for the size_approx() bug (PR 8 satellite): it loaded
// dequeue_pos_ before enqueue_pos_, so concurrent pushes between the two
// loads made head - tail exceed capacity().  The fix loads head first and
// clamps; under sustained contention the estimate must stay in
// [0, capacity()].
TEST(ConcurrentRingStressTest, SizeApproxNeverExceedsCapacity) {
  constexpr std::uint32_t kProducers = 3;
  constexpr std::uint32_t kConsumers = 3;
  constexpr std::uint32_t kPerProducer = 20000;

  MpmcRing<std::uint64_t> ring(16);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> consumed{0};
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers + 1);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring] {
      for (std::uint32_t seq = 0; seq < kPerProducer; ++seq) {
        while (!ring.try_push(seq)) std::this_thread::yield();
      }
    });
  }
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&ring, &consumed] {
      for (;;) {
        if (ring.try_pop()) {
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else if (consumed.load(std::memory_order_relaxed) >= kTotal) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::uint64_t samples = 0;
  std::size_t worst = 0;
  threads.emplace_back([&ring, &done, &samples, &worst] {
    while (!done.load(std::memory_order_relaxed)) {
      worst = std::max(worst, ring.size_approx());
      ++samples;
    }
  });
  for (std::uint32_t i = 0; i < kProducers + kConsumers; ++i)
    threads[i].join();
  done.store(true, std::memory_order_relaxed);
  threads.back().join();
  EXPECT_GT(samples, 0u);
  EXPECT_LE(worst, ring.capacity()) << "size_approx overshot capacity";
  EXPECT_EQ(ring.size_approx(), 0u);
}

TEST(ConcurrentRingStressTest, ManyProducersManyConsumersConserveItems) {
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kConsumers = 4;
  constexpr std::uint32_t kPerProducer = 10000;
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;

  MpmcRing<std::uint64_t> ring(256);
  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::vector<std::uint64_t>> per_consumer(kConsumers);

  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, p] {
      for (std::uint32_t seq = 0; seq < kPerProducer; ++seq) {
        const std::uint64_t item =
            (static_cast<std::uint64_t>(p) << 32) | seq;
        while (!ring.try_push(item)) std::this_thread::yield();
      }
    });
  }
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&ring, &consumed, &per_consumer, c] {
      auto& mine = per_consumer[c];
      for (;;) {
        if (const auto item = ring.try_pop()) {
          mine.push_back(*item);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else if (consumed.load(std::memory_order_relaxed) >= kTotal) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Conservation: every produced item consumed exactly once.
  std::vector<std::uint32_t> seen_per_producer(kProducers, 0);
  for (std::uint32_t c = 0; c < kConsumers; ++c) {
    // Per-consumer, per-producer sequence numbers must be strictly
    // increasing: pops claim increasing ring positions and each producer
    // enqueues in order.
    std::vector<std::int64_t> last(kProducers, -1);
    for (const std::uint64_t item : per_consumer[c]) {
      const auto p = static_cast<std::uint32_t>(item >> 32);
      const auto seq = static_cast<std::uint32_t>(item & 0xffffffffu);
      ASSERT_LT(p, kProducers);
      ASSERT_LT(seq, kPerProducer);
      EXPECT_GT(static_cast<std::int64_t>(seq), last[p])
          << "per-producer FIFO violated at consumer " << c;
      last[p] = static_cast<std::int64_t>(seq);
      ++seen_per_producer[p];
    }
  }
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(seen_per_producer[p], kPerProducer)
        << "lost or duplicated items from producer " << p;
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

}  // namespace
}  // namespace stash
