// Robustness contract of the wall-clock datapath (PR 9 tentpole):
// deadlines produce honest partials (whole partitions only, named
// remainders), injected faults are quarantined and reported, the fault
// plan is deterministic run-to-run, and a mid-batch teardown neither
// hangs nor leaks.  DESIGN.md §14 states the contract; this file is its
// engine-level proof.  The property sweep here is the acceptance bar:
// over seeds x thread counts x fault plans, every answer either
// byte-matches the sequential oracle or is explicitly flagged with the
// expiry/fault reason.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/fault_hooks.hpp"
#include "exec/host_clock.hpp"
#include "exec/parallel_engine.hpp"
#include "exec/wall_clock.hpp"
#include "geo/geohash.hpp"
#include "workload/workload.hpp"

namespace stash {
namespace {

using exec::BatchReport;
using exec::ExecConfig;
using exec::ExecOptions;
using exec::FaultHooks;
using exec::InjectedFault;
using exec::ParallelQueryEngine;
using workload::QueryGroup;
using workload::WorkloadConfig;
using workload::WorkloadGenerator;

StashConfig graph_config() {
  StashConfig config;
  config.max_cells = 10'000'000;  // no eviction unless a test forces it
  return config;
}

ExecConfig exec_config(std::size_t threads, FaultHooks faults = {}) {
  ExecConfig config;
  config.threads = threads;
  config.queue_capacity = 256;  // large enough that nothing sheds inline
  config.faults = faults;
  return config;
}

std::vector<AggregationQuery> seeded_mix(std::uint64_t seed) {
  WorkloadConfig wc;
  wc.seed = seed;
  WorkloadGenerator gen(wc);
  auto queries = gen.throughput_workload(QueryGroup::County, 2, 2, 0.25);
  const auto dicing =
      gen.iterative_dicing(QueryGroup::State, 2, /*descending=*/true);
  queries.insert(queries.end(), dicing.begin(), dicing.end());
  return queries;
}

class ExecRobustnessTest : public ::testing::Test {
 protected:
  AggregationQuery state_query() const {
    // Wide enough to span several partitions — the honest-partial
    // contract only bites with > 1 partition in the batch.
    return {{36.0, 40.0, -102.0, -94.0},
            TemporalBin(TemporalRes::Day, 2015, 2, 2).range(),
            {5, TemporalRes::Day}};
  }

  std::shared_ptr<const NamGenerator> gen_ = std::make_shared<NamGenerator>();
  GalileoStore store_{gen_};
};

// ---------------------------------------------------------------------------
// Deadlines: honest partials.
// ---------------------------------------------------------------------------

TEST_F(ExecRobustnessTest, ExpiredDeadlineReturnsOnlyWholePartitions) {
  const auto query = state_query();

  StashGraph seq_graph(graph_config());
  QueryEngine seq(seq_graph, store_);

  StashGraph par_graph(graph_config());
  ParallelQueryEngine par(par_graph, store_, exec_config(2));

  // A deadline already in the past: the submitter cancels before parking,
  // so whatever completed is a race — the contract under test is that the
  // answer covers exactly the partitions NOT named incomplete, and each
  // covered partition matches the oracle byte-for-byte.
  ExecOptions options;
  options.deadline_ns = 1;  // epoch + 1ns: expired long ago
  BatchReport report;
  const Evaluation got = par.evaluate(query, EvalMode::Cached, options, report);

  EXPECT_TRUE(report.deadline_exceeded);
  EXPECT_EQ(report.chunks_total, report.chunks_completed +
                                     report.chunks_cancelled +
                                     report.chunks_failed);
  if (!report.complete()) {
    EXPECT_FALSE(report.incomplete_partitions.empty());
  }

  // Reassemble the expected partial from the oracle: only the partitions
  // the report vouches for.
  const std::set<std::string> incomplete(report.incomplete_partitions.begin(),
                                         report.incomplete_partitions.end());
  CellSummaryMap expected;
  for (const auto& partition : geohash::covering(query.area, store_.partition_prefix_length())) {
    if (incomplete.count(partition) != 0) continue;
    const Evaluation want = seq.evaluate_partition(partition, query);
    for (const auto& [key, summary] : want.cells) {
      auto [it, inserted] = expected.try_emplace(key, summary);
      if (!inserted) it->second.merge(summary);
    }
  }
  EXPECT_EQ(exec::answer_digest(got.cells, 0),
            exec::answer_digest(expected, 0));

  const exec::ExecStats stats = par.exec_stats();
  EXPECT_GE(stats.deadline_exceeded, 1u);
}

TEST_F(ExecRobustnessTest, DeadlineWithStalledWorkersReturnsPromptly) {
  // Stall every chunk hard: a full run would burn chunks x stall-spins of
  // CPU.  The deadline must cut that short — the submitter returns within
  // the deadline plus scheduling slack, and the un-run chunks show up as
  // cancelled, not as latency.
  FaultHooks faults;
  faults.seed = 7;
  faults.worker_stall_rate = 1.0;
  faults.worker_stall_spins = 20'000'000;

  StashGraph graph(graph_config());
  ParallelQueryEngine par(graph, store_, exec_config(2, faults));

  constexpr std::uint64_t kDeadlineMs = 20;
  ExecOptions options;
  const std::uint64_t start = exec::host_now_ns();
  options.deadline_ns = start + kDeadlineMs * 1'000'000;
  BatchReport report;
  (void)par.evaluate(state_query(), EvalMode::Cached, options, report);
  const std::uint64_t elapsed_ms = (exec::host_now_ns() - start) / 1'000'000;

  EXPECT_TRUE(report.deadline_exceeded);
  EXPECT_GT(report.chunks_cancelled, 0u) << "deadline cancelled nothing";
  // Deadline + one watchdog tick (5ms default) + generous scheduler
  // slack; far below what running every stalled chunk would cost.
  EXPECT_LT(elapsed_ms, kDeadlineMs + 1000u);

  // Stragglers may still be mid-stall; the cooperative-cancel counter
  // settles once they probe the token.
  exec::ExecStats stats = par.exec_stats();
  const std::uint64_t poll_until = exec::host_now_ns() + 5'000'000'000ull;
  while (stats.cancelled_chunks == 0 && exec::host_now_ns() < poll_until) {
    std::this_thread::yield();
    stats = par.exec_stats();
  }
  EXPECT_GE(stats.cancelled_chunks, 1u);
  EXPECT_GE(stats.deadline_exceeded, 1u);
}

// ---------------------------------------------------------------------------
// Fault quarantine.
// ---------------------------------------------------------------------------

TEST_F(ExecRobustnessTest, InjectedExceptionsAreQuarantinedAndReported) {
  FaultHooks faults;
  faults.seed = 42;
  faults.task_exception_rate = 1.0;  // every chunk throws

  StashGraph graph(graph_config());
  ParallelQueryEngine par(graph, store_, exec_config(2, faults));

  BatchReport report;
  const Evaluation got =
      par.evaluate(state_query(), EvalMode::Cached, {}, report);

  EXPECT_TRUE(got.cells.empty());  // no partition survived
  EXPECT_EQ(report.chunks_failed, report.chunks_total);
  EXPECT_FALSE(report.incomplete_partitions.empty());
  ASSERT_TRUE(report.first_error != nullptr);
  EXPECT_THROW(std::rethrow_exception(report.first_error), InjectedFault);
  EXPECT_EQ(par.exec_stats().task_exceptions, report.chunks_total);

  // The pool survived the quarantine: a clean follow-up run still works.
  ParallelQueryEngine clean(graph, store_, exec_config(2));
  BatchReport clean_report;
  (void)clean.evaluate(state_query(), EvalMode::Cached, {}, clean_report);
  EXPECT_TRUE(clean_report.complete());
}

TEST_F(ExecRobustnessTest, LegacyOverloadRethrowsInjectedFault) {
  FaultHooks faults;
  faults.seed = 42;
  faults.task_exception_rate = 1.0;

  StashGraph graph(graph_config());
  ParallelQueryEngine par(graph, store_, exec_config(2, faults));
  EXPECT_THROW((void)par.evaluate(state_query()), InjectedFault);
}

TEST_F(ExecRobustnessTest, FaultPlanIsDeterministicRunToRun) {
  // Decisions are a pure function of (seed, task_seq); task_seq is
  // assigned on the single-threaded submit path — so two fresh engines
  // with the same plan fail the exact same chunks, at any thread count.
  FaultHooks faults;
  faults.seed = 0xC0FFEE;
  faults.task_exception_rate = 0.4;

  std::vector<std::string> first_incomplete;
  std::size_t first_failed = 0;
  for (int run = 0; run < 2; ++run) {
    StashGraph graph(graph_config());
    ParallelQueryEngine par(graph, store_, exec_config(run == 0 ? 1 : 4,
                                                       faults));
    BatchReport report;
    (void)par.evaluate(state_query(), EvalMode::Cached, {}, report);
    if (run == 0) {
      first_incomplete = report.incomplete_partitions;
      first_failed = report.chunks_failed;
      EXPECT_GT(first_failed, 0u) << "rate 0.4 never fired; test is inert";
    } else {
      EXPECT_EQ(report.incomplete_partitions, first_incomplete);
      EXPECT_EQ(report.chunks_failed, first_failed);
    }
  }
}

// ---------------------------------------------------------------------------
// The acceptance sweep: seeds x threads x fault plans.  Every answer
// byte-matches the oracle or is explicitly flagged with its reason.
// ---------------------------------------------------------------------------

TEST_F(ExecRobustnessTest, PropertySweepAnswersMatchOracleOrAreFlagged) {
  struct Plan {
    const char* name;
    FaultHooks faults;
    bool lossless;  // plan cannot change any answer, only its timing
  };
  std::vector<Plan> plans;
  plans.push_back({"none", {}, true});
  {
    FaultHooks f;
    f.seed = 1;
    f.task_delay_rate = 0.5;
    f.task_delay_spins = 5'000;
    plans.push_back({"delay", f, true});
  }
  {
    FaultHooks f;
    f.seed = 2;
    f.task_exception_rate = 0.3;
    plans.push_back({"exceptions", f, false});
  }
  {
    FaultHooks f;
    f.seed = 3;
    f.worker_stall_rate = 0.25;
    f.worker_stall_spins = 200'000;  // long enough to reorder, not to wedge
    plans.push_back({"stalls", f, true});
  }

  for (const std::uint64_t seed : {0x5EEDull, 0xFACEull}) {
    const auto queries = seeded_mix(seed);

    // Oracle: per-query digests from the sequential engine (no absorbs —
    // faulted runs must not mutate shared state, so neither does the
    // oracle).
    StashGraph seq_graph(graph_config());
    QueryEngine seq(seq_graph, store_);
    std::vector<std::uint64_t> want;
    want.reserve(queries.size());
    for (const auto& q : queries)
      want.push_back(exec::answer_digest(seq.evaluate(q).cells, 0));

    for (const std::size_t threads : {1u, 2u, 4u}) {
      for (const Plan& plan : plans) {
        FaultHooks faults = plan.faults;
        faults.seed ^= seed;  // vary the fault pattern with the workload
        StashGraph par_graph(graph_config());
        ParallelQueryEngine par(par_graph, store_,
                                exec_config(threads, faults));
        for (std::size_t i = 0; i < queries.size(); ++i) {
          BatchReport report;
          const Evaluation got =
              par.evaluate(queries[i], EvalMode::Cached, {}, report);
          const std::string ctx = std::string("plan=") + plan.name +
                                  " seed=" + std::to_string(seed) +
                                  " threads=" + std::to_string(threads) +
                                  " query=" + std::to_string(i);
          if (report.complete()) {
            EXPECT_EQ(exec::answer_digest(got.cells, 0), want[i]) << ctx;
          } else {
            // Flagged: the report must carry the reason, not just be
            // silently short.
            EXPECT_GT(report.chunks_failed, 0u) << ctx;
            EXPECT_FALSE(report.incomplete_partitions.empty()) << ctx;
            EXPECT_TRUE(report.first_error != nullptr) << ctx;
          }
          if (plan.lossless) {
            EXPECT_TRUE(report.complete())
                << ctx << ": a delay/stall plan must not lose chunks";
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Teardown during an in-flight batch.
// ---------------------------------------------------------------------------

TEST_F(ExecRobustnessTest, DestroyEngineWithStragglersInFlight) {
  // An expired deadline hands the batch back while chunks are still
  // queued or running; destroying the engine right then must join the
  // workers cleanly (pool_ is declared last) and free every outcome
  // (BatchState is shared_ptr-owned).  Leaks surface under the sanitizer
  // lane; a lifetime bug crashes right here.
  for (int round = 0; round < 5; ++round) {
    StashGraph graph(graph_config());
    FaultHooks faults;
    faults.seed = static_cast<std::uint64_t>(round);
    faults.task_delay_rate = 0.5;
    faults.task_delay_spins = 100'000;
    auto par = std::make_unique<ParallelQueryEngine>(graph, store_,
                                                     exec_config(2, faults));
    ExecOptions options;
    options.deadline_ns = 1;  // already expired
    BatchReport report;
    (void)par->evaluate(state_query(), EvalMode::Cached, options, report);
    par.reset();  // join with stragglers possibly mid-chunk
  }
}

}  // namespace
}  // namespace stash
