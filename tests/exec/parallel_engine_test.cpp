// Oracle equivalence for the wall-clock execution mode (PR 8 tentpole):
// the discrete-event sim path (sequential QueryEngine) and the threaded
// ParallelQueryEngine must produce byte-identical answers — same canonical
// digests, per query, over the same seeded workloads, at every thread
// count.  DESIGN.md §13 states the contract; this file is its proof.

#include "exec/parallel_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/wall_clock.hpp"
#include "workload/workload.hpp"

namespace stash {
namespace {

using exec::ExecConfig;
using exec::ParallelQueryEngine;

ExecConfig exec_config(std::size_t threads, std::size_t capacity) {
  ExecConfig config;
  config.threads = threads;
  config.queue_capacity = capacity;
  return config;
}
using exec::RunResult;
using workload::QueryGroup;
using workload::WorkloadConfig;
using workload::WorkloadGenerator;

StashConfig graph_config() {
  StashConfig config;
  config.max_cells = 10'000'000;  // no eviction unless a test forces it
  return config;
}

std::vector<AggregationQuery> seeded_mix(std::uint64_t seed) {
  WorkloadConfig wc;
  wc.seed = seed;
  WorkloadGenerator gen(wc);
  // A small slice of the paper's mixes: locality pans + a dicing descent.
  auto queries = gen.throughput_workload(QueryGroup::County, 2, 3, 0.25);
  const auto dicing =
      gen.iterative_dicing(QueryGroup::State, 3, /*descending=*/true);
  queries.insert(queries.end(), dicing.begin(), dicing.end());
  return queries;
}

class ParallelEngineTest : public ::testing::Test {
 protected:
  AggregationQuery county_query() const {
    return {{38.0, 38.6, -99.0, -97.8},
            TemporalBin(TemporalRes::Day, 2015, 2, 2).range(),
            {6, TemporalRes::Day}};
  }

  std::shared_ptr<const NamGenerator> gen_ = std::make_shared<NamGenerator>();
  GalileoStore store_{gen_};
};

TEST_F(ParallelEngineTest, MatchesSequentialEngineOnOneQuery) {
  const auto query = county_query();

  StashGraph seq_graph(graph_config());
  QueryEngine seq(seq_graph, store_);
  const Evaluation want = seq.evaluate(query);

  StashGraph par_graph(graph_config());
  ParallelQueryEngine par(par_graph, store_, exec_config(3, 16));
  const Evaluation got = par.evaluate(query);

  EXPECT_EQ(exec::answer_digest(got.cells, 0),
            exec::answer_digest(want.cells, 0));
  EXPECT_EQ(got.cells.size(), want.cells.size());
  EXPECT_EQ(got.breakdown.chunks_total, want.breakdown.chunks_total);
  EXPECT_EQ(got.breakdown.chunks_scanned, want.breakdown.chunks_scanned);
  EXPECT_EQ(got.breakdown.scan.records_scanned,
            want.breakdown.scan.records_scanned);
  EXPECT_EQ(got.breakdown.scan.blocks_touched,
            want.breakdown.scan.blocks_touched);
  EXPECT_EQ(got.touched_chunks.size(), want.touched_chunks.size());
}

TEST_F(ParallelEngineTest, RejectsInvalidQueriesLikeTheOracle) {
  StashGraph graph(graph_config());
  ParallelQueryEngine par(graph, store_, exec_config(2, 8));
  AggregationQuery bad = county_query();
  bad.time = {100, 50};
  EXPECT_THROW((void)par.evaluate(bad), std::invalid_argument);
  bad = county_query();
  bad.res.spatial = 1;
  EXPECT_THROW((void)par.evaluate(bad), std::invalid_argument);
}

TEST_F(ParallelEngineTest, AbsorbWarmsTheCacheLikeTheOracle) {
  const auto query = county_query();
  StashGraph graph(graph_config());
  ParallelQueryEngine par(graph, store_, exec_config(2, 16));

  const Evaluation cold = par.evaluate(query);
  EXPECT_GT(cold.breakdown.chunks_scanned, 0u);
  (void)par.absorb(cold, query.res, 0);

  const Evaluation warm = par.evaluate(query);
  EXPECT_EQ(warm.breakdown.chunks_scanned, 0u);
  EXPECT_EQ(warm.breakdown.chunks_from_cache, warm.breakdown.chunks_total);
  EXPECT_EQ(exec::answer_digest(warm.cells, 0),
            exec::answer_digest(cold.cells, 0));
}

// The acceptance property: >= 3 seeds x >= 2 thread counts, byte-identical
// answers between the sim oracle and the wall-clock run — per query, with
// absorb between queries so cache state evolves through the sequence.
TEST_F(ParallelEngineTest, OracleEquivalenceAcrossSeedsAndThreadCounts) {
  const std::uint64_t seeds[] = {0x5741ULL, 20260808ULL, 0xdeadbeefULL};
  const std::size_t thread_counts[] = {1, 2, 4};

  for (const std::uint64_t seed : seeds) {
    const auto queries = seeded_mix(seed);
    ASSERT_GT(queries.size(), 4u);

    StashGraph sim_graph(graph_config());
    const RunResult want =
        exec::run_queries_sim(sim_graph, store_, queries);
    ASSERT_EQ(want.queries, queries.size());
    ASSERT_GT(want.cells, 0u);

    for (const std::size_t threads : thread_counts) {
      StashGraph par_graph(graph_config());
      const RunResult got = exec::run_queries_wallclock(
          par_graph, store_, queries, exec_config(threads, 32));
      EXPECT_EQ(got.digest, want.digest)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(got.per_query, want.per_query)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(got.cells, want.cells);
      EXPECT_EQ(got.bytes, want.bytes);
    }
  }
}

TEST_F(ParallelEngineTest, EvaluatePartitionMatchesOracle) {
  const auto query = county_query();
  StashGraph seq_graph(graph_config());
  QueryEngine seq(seq_graph, store_);
  StashGraph par_graph(graph_config());
  ParallelQueryEngine par(par_graph, store_, exec_config(2, 16));

  for (const std::string partition : {"9y", "9z", "dn"}) {
    const Evaluation want = seq.evaluate_partition(partition, query);
    const Evaluation got = par.evaluate_partition(partition, query);
    EXPECT_EQ(exec::answer_digest(got.cells, 0),
              exec::answer_digest(want.cells, 0))
        << partition;
    EXPECT_EQ(got.cells.size(), want.cells.size()) << partition;
    EXPECT_EQ(got.breakdown.chunks_total, want.breakdown.chunks_total);
  }
}

TEST_F(ParallelEngineTest, ReportsWorkerTopology) {
  StashGraph graph(graph_config());
  ParallelQueryEngine par(graph, store_, exec_config(3, 16));
  EXPECT_EQ(par.worker_count(), 3u);
  (void)par.evaluate(county_query());
  EXPECT_GT(par.total_stats().executed, 0u);
  EXPECT_EQ(par.queue_depth(), 0u);  // batch join drained everything
  for (std::size_t i = 0; i < par.worker_count(); ++i)
    EXPECT_EQ(par.worker_queue_depth(i), 0u);
}

}  // namespace
}  // namespace stash
