// TSan-lane stress for the wall-clock path (suite name matches the CI
// lane's Concurrent|Stress filter): the full §VIII query mix — dicing,
// panning, zoom, hotspot bursts — through ParallelQueryEngine, including
// concurrent caller threads racing evaluates against absorbs, with the
// sequential engine checking every answer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "exec/parallel_engine.hpp"
#include "exec/wall_clock.hpp"
#include "workload/workload.hpp"

namespace stash {
namespace {

using exec::ExecConfig;
using exec::ParallelQueryEngine;

ExecConfig exec_config(std::size_t threads, std::size_t capacity) {
  ExecConfig config;
  config.threads = threads;
  config.queue_capacity = capacity;
  return config;
}
using workload::QueryGroup;
using workload::WorkloadConfig;
using workload::WorkloadGenerator;

StashConfig graph_config() {
  StashConfig config;
  config.max_cells = 10'000'000;
  return config;
}

std::vector<AggregationQuery> full_mix(std::uint64_t seed) {
  WorkloadConfig wc;
  wc.seed = seed;
  WorkloadGenerator gen(wc);
  std::vector<AggregationQuery> queries =
      gen.iterative_dicing(QueryGroup::State, 4, /*descending=*/true);
  const auto base = gen.random_query(QueryGroup::County);
  for (const auto& q : gen.panning_sequence(base, 0.25)) queries.push_back(q);
  for (const auto& q : gen.zoom_sequence(base, 5, 7)) queries.push_back(q);
  for (const auto& q : gen.hotspot_burst(QueryGroup::County, 6, 0.25))
    queries.push_back(q);
  return queries;
}

TEST(ParallelExecStressTest, FullQueryMixMatchesOracleWithAbsorbs) {
  const auto queries = full_mix(0x57535452ULL);
  ASSERT_GT(queries.size(), 15u);

  std::shared_ptr<const NamGenerator> gen = std::make_shared<NamGenerator>();
  GalileoStore store{gen};

  StashGraph sim_graph(graph_config());
  const auto want = exec::run_queries_sim(sim_graph, store, queries);

  StashGraph par_graph(graph_config());
  const auto got = exec::run_queries_wallclock(par_graph, store, queries,
                                               exec_config(4, 32));
  EXPECT_EQ(got.digest, want.digest);
  EXPECT_EQ(got.per_query, want.per_query);
  EXPECT_EQ(got.cells, want.cells);
}

TEST(ParallelExecStressTest, ConcurrentCallersShareOnePool) {
  // Several caller threads hammer evaluate() (reader lock) while the main
  // thread interleaves absorbs (writer lock).  Every answer must match
  // what a fresh sequential engine computes for the *current* graph state
  // — here callers only read, and absorbs happen between phases, so each
  // phase's answers must be internally consistent.
  std::shared_ptr<const NamGenerator> gen = std::make_shared<NamGenerator>();
  GalileoStore store{gen};
  StashGraph graph(graph_config());
  ParallelQueryEngine par(graph, store, exec_config(4, 32));

  WorkloadConfig wc;
  wc.seed = 0x434f4e43ULL;
  WorkloadGenerator wgen(wc);
  const auto base = wgen.random_query(QueryGroup::County);
  const auto pans = wgen.panning_sequence(base, 0.25);

  constexpr int kCallers = 3;
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::uint64_t> digests(kCallers, 0);
    std::atomic<bool> failed{false};
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int c = 0; c < kCallers; ++c) {
      callers.emplace_back([&par, &pans, &digests, &failed, c] {
        std::uint64_t digest = 0;
        try {
          for (const auto& q : pans)
            digest = exec::answer_digest(par.evaluate(q).cells, digest);
        } catch (...) {
          failed.store(true);
        }
        digests[static_cast<std::size_t>(c)] = digest;
      });
    }
    for (auto& t : callers) t.join();
    ASSERT_FALSE(failed.load());
    // Same graph state, same queries: every caller saw identical bytes.
    for (std::size_t c = 1; c < kCallers; ++c)
      EXPECT_EQ(digests[0], digests[c]);

    // Advance cache state under the writer lock between phases.
    const Evaluation eval = par.evaluate(base);
    (void)par.absorb(eval, base.res, (round + 1) * sim::kMillisecond);
  }
  EXPECT_GT(par.total_stats().executed, 0u);
}

TEST(ParallelExecStressTest, ManySmallBatchesChurnThePool) {
  // Many tiny evaluates keep submitting/parking cycles hot — the shape
  // most likely to trip a lost wakeup or a ring lifecycle bug under TSan.
  std::shared_ptr<const NamGenerator> gen = std::make_shared<NamGenerator>();
  GalileoStore store{gen};
  StashGraph graph(graph_config());
  ParallelQueryEngine par(graph, store, exec_config(4, 8));

  WorkloadConfig wc;
  wc.seed = 0x43485552ULL;
  WorkloadGenerator wgen(wc);
  std::uint64_t digest = 0;
  for (int i = 0; i < 40; ++i) {
    const auto q = wgen.random_query(QueryGroup::City);
    digest = exec::answer_digest(par.evaluate(q).cells, digest);
  }
  // Digest consumed so the loop cannot be optimised away; the real check
  // is TSan plus the pool's internal accounting.
  EXPECT_NE(digest, 0u);
  EXPECT_GT(par.total_stats().executed, 0u);
  EXPECT_EQ(par.queue_depth(), 0u);
}

}  // namespace
}  // namespace stash
