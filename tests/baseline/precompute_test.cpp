#include "baseline/precompute.hpp"

#include <gtest/gtest.h>

#include "common/civil_time.hpp"

namespace stash::baseline {
namespace {

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

CubeConfig small_cube() {
  CubeConfig config;
  config.coverage = {37.0, 39.0, -100.0, -97.0};
  config.min_spatial = 3;
  config.max_spatial = 6;
  return config;
}

AggregationQuery covered_query(int spatial = 6) {
  return {{37.5, 38.2, -99.0, -98.0},
          {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
          {spatial, TemporalRes::Day}};
}

TEST(PrecomputedCubeTest, ConfigValidation) {
  CubeConfig bad = small_cube();
  bad.min_spatial = 7;
  bad.max_spatial = 6;
  EXPECT_THROW(PrecomputedCube(bad, shared_generator()), std::invalid_argument);
  bad = small_cube();
  bad.coverage = {5.0, 1.0, 0.0, 1.0};
  EXPECT_THROW(PrecomputedCube(bad, shared_generator()), std::invalid_argument);
}

TEST(PrecomputedCubeTest, BuildMaterialisesEveryLevel) {
  const PrecomputedCube cube(small_cube(), shared_generator());
  EXPECT_GT(cube.total_cells(), 0u);
  EXPECT_GT(cube.memory_bytes(), 0u);
  EXPECT_GT(cube.build_time(), 0);
  // Finer levels dominate the cell count: at least 32x more s6 than s3
  // cells means total >> the coarse level alone.
  const AggregationQuery coarse = covered_query(3);
  const AggregationQuery fine = covered_query(6);
  EXPECT_GT(cube.query(fine).result_cells, cube.query(coarse).result_cells);
}

TEST(PrecomputedCubeTest, CoverageChecks) {
  const PrecomputedCube cube(small_cube(), shared_generator());
  EXPECT_TRUE(cube.covers(covered_query()));
  AggregationQuery outside_area = covered_query();
  outside_area.area = {30.0, 31.0, -99.0, -98.0};
  EXPECT_FALSE(cube.covers(outside_area));
  AggregationQuery outside_time = covered_query();
  outside_time.time = {unix_seconds({2015, 3, 1}), unix_seconds({2015, 3, 2})};
  EXPECT_FALSE(cube.covers(outside_time));
  AggregationQuery too_fine = covered_query(7);
  EXPECT_FALSE(cube.covers(too_fine));
  AggregationQuery wrong_tres = covered_query();
  wrong_tres.res.temporal = TemporalRes::Hour;
  EXPECT_FALSE(cube.covers(wrong_tres));
}

TEST(PrecomputedCubeTest, CoveredQueryMatchesColdScan) {
  const PrecomputedCube cube(small_cube(), shared_generator());
  for (int spatial : {3, 4, 5, 6}) {
    const AggregationQuery q = covered_query(spatial);
    const CellSummaryMap cube_cells = cube.cells_for(q);
    GalileoStore store(shared_generator());
    const ScanResult scan = store.scan(q.area, q.time, q.res);
    // The cube holds full-coverage cells; the scan only sees records in the
    // query box, so compare on the scan's keys with count >= scan count.
    for (const auto& [key, summary] : scan.cells) {
      const auto it = cube_cells.find(key);
      ASSERT_NE(it, cube_cells.end()) << key.label();
      EXPECT_GE(it->second.observation_count(), summary.observation_count());
    }
    EXPECT_EQ(cube.query(q).result_cells, cube_cells.size());
  }
}

TEST(PrecomputedCubeTest, InCubeLatencyBeatsFallback) {
  const PrecomputedCube cube(small_cube(), shared_generator());
  const CubeQueryStats hit = cube.query(covered_query());
  AggregationQuery outside = covered_query();
  outside.area = {30.0, 30.7, -99.0, -97.8};  // off-slab: cold scan
  const CubeQueryStats miss = cube.query(outside);
  EXPECT_TRUE(hit.covered);
  EXPECT_FALSE(miss.covered);
  EXPECT_LT(hit.latency, miss.latency / 2);
}

TEST(PrecomputedCubeTest, MemoryGrowsWithWindow) {
  // The §III critique: precomputation memory scales with the dataset.
  CubeConfig one_day = small_cube();
  const PrecomputedCube small(one_day, shared_generator());
  CubeConfig week = small_cube();
  week.window.end = week.window.begin + 7 * 86400;
  const PrecomputedCube big(week, shared_generator());
  EXPECT_GT(big.memory_bytes(), small.memory_bytes() * 5);
  EXPECT_GT(big.build_time(), small.build_time() * 5);
}

TEST(PrecomputedCubeTest, CellsForRejectsUncovered) {
  const PrecomputedCube cube(small_cube(), shared_generator());
  AggregationQuery outside = covered_query();
  outside.area = {10.0, 11.0, -99.0, -98.0};
  EXPECT_THROW((void)cube.cells_for(outside), std::invalid_argument);
}

}  // namespace
}  // namespace stash::baseline
