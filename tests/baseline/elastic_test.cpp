#include "baseline/elastic.hpp"

#include <gtest/gtest.h>

#include "common/civil_time.hpp"

namespace stash::baseline {
namespace {

AggregationQuery state_query() {
  return {{36.0, 40.0, -102.0, -94.0},
          {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
          {6, TemporalRes::Day}};
}

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

TEST(ElasticTest, ConstructionValidation) {
  EXPECT_THROW(ElasticSearchSim({}, nullptr), std::invalid_argument);
  EsConfig bad;
  bad.shards = 0;
  EXPECT_THROW(ElasticSearchSim(bad, shared_generator()), std::invalid_argument);
}

TEST(ElasticTest, QueryReturnsRealAggregates) {
  ElasticSearchSim es({}, shared_generator());
  const auto stats = es.run_query(state_query());
  EXPECT_GT(stats.result_cells, 0u);
  EXPECT_GT(stats.docs_matched, 0u);
  EXPECT_GT(stats.latency, 0);
  EXPECT_FALSE(stats.request_cache_hit);
  EXPECT_EQ(stats.cold_days, 1u);
}

TEST(ElasticTest, ExactRepeatHitsRequestCache) {
  ElasticSearchSim es({}, shared_generator());
  const auto first = es.run_query(state_query());
  const auto second = es.run_query(state_query());
  EXPECT_TRUE(second.request_cache_hit);
  EXPECT_LT(second.latency, first.latency);
  EXPECT_EQ(second.result_cells, first.result_cells);
}

TEST(ElasticTest, OverlappingPanMissesRequestCache) {
  // The crux of Fig 8: ES's request cache is keyed by the exact search
  // body, so a 10% pan gains almost nothing.
  ElasticSearchSim es({}, shared_generator());
  AggregationQuery base = state_query();
  const auto first = es.run_query(base);
  AggregationQuery panned = base;
  panned.area = base.area.translated(0.0, base.area.width() * 0.1);
  const auto second = es.run_query(panned);
  EXPECT_FALSE(second.request_cache_hit);
  EXPECT_EQ(second.cold_days, 0u);  // page cache is warm, that's all
  // Improvement exists but is marginal (paper: ~0.6-2%).
  EXPECT_LT(second.latency, first.latency);
  const double reduction =
      1.0 - static_cast<double>(second.latency) / static_cast<double>(first.latency);
  EXPECT_LT(reduction, 0.15);
}

TEST(ElasticTest, SameFilterDifferentResolutionHitsFilterCache) {
  ElasticSearchSim es({}, shared_generator());
  AggregationQuery base = state_query();
  es.run_query(base);
  AggregationQuery coarser = base;
  coarser.res.spatial = 5;
  const auto stats = es.run_query(coarser);
  EXPECT_FALSE(stats.request_cache_hit);
  EXPECT_TRUE(stats.filter_cache_hit);
}

TEST(ElasticTest, DisabledCachesNeverHit) {
  EsConfig config;
  config.enable_request_cache = false;
  config.enable_filter_cache = false;
  config.enable_page_cache = false;
  ElasticSearchSim es(config, shared_generator());
  es.run_query(state_query());
  const auto second = es.run_query(state_query());
  EXPECT_FALSE(second.request_cache_hit);
  EXPECT_FALSE(second.filter_cache_hit);
  EXPECT_EQ(second.cold_days, 1u);
}

TEST(ElasticTest, ClearCachesResets) {
  ElasticSearchSim es({}, shared_generator());
  es.run_query(state_query());
  es.clear_caches();
  const auto stats = es.run_query(state_query());
  EXPECT_FALSE(stats.request_cache_hit);
  EXPECT_EQ(stats.cold_days, 1u);
}

TEST(ElasticTest, LatencyGrowsWithQuerySize) {
  ElasticSearchSim es({}, shared_generator());
  AggregationQuery county{{38.0, 38.6, -99.0, -97.8},
                          state_query().time,
                          {6, TemporalRes::Day}};
  const auto small = es.run_query(county);
  es.clear_caches();
  const auto large = es.run_query(state_query());
  EXPECT_GT(large.latency, small.latency);
  EXPECT_GT(large.docs_matched, small.docs_matched);
}

TEST(ElasticTest, SequenceRunsInOrder) {
  ElasticSearchSim es({}, shared_generator());
  const std::vector<AggregationQuery> queries{state_query(), state_query()};
  const auto stats = es.run_sequence(queries);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_FALSE(stats[0].request_cache_hit);
  EXPECT_TRUE(stats[1].request_cache_hit);
}

TEST(ElasticTest, InvalidQueryThrows) {
  ElasticSearchSim es({}, shared_generator());
  AggregationQuery bad = state_query();
  bad.time = {50, 10};
  EXPECT_THROW((void)es.run_query(bad), std::invalid_argument);
}

}  // namespace
}  // namespace stash::baseline
