// Cluster wiring for the wall-clock execution mode (PR 8 tentpole): with
// exec_threads > 0 every node answers sub-queries on its WorkerPool, and
// the cluster must return exactly what the sim-only configuration does —
// same cells, same determinism across runs — while the exec counters
// surface in both exporters.

#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "common/civil_time.hpp"
#include "obs/metrics.hpp"

namespace stash::cluster {
namespace {

AggregationQuery county_query() {
  return {{38.0, 38.6, -99.0, -97.8},
          TemporalBin(TemporalRes::Day, 2015, 2, 2).range(),
          {6, TemporalRes::Day}};
}

AggregationQuery state_query() {
  return {{36.0, 40.0, -102.0, -94.0},
          TemporalBin(TemporalRes::Day, 2015, 2, 2).range(),
          {6, TemporalRes::Day}};
}

ClusterConfig exec_config(std::size_t threads) {
  ClusterConfig config;
  config.num_nodes = 8;
  config.exec_threads = threads;
  config.exec_queue_capacity = 32;
  return config;
}

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

TEST(ExecClusterTest, WallClockClusterMatchesSimOnlyCluster) {
  StashCluster sim_cluster(exec_config(0), shared_generator());
  StashCluster exec_cluster(exec_config(2), shared_generator());

  for (const auto& query : {county_query(), state_query()}) {
    const QueryStats want = sim_cluster.run_query(query);
    const QueryStats got = exec_cluster.run_query(query);
    EXPECT_EQ(got.result_cells, want.result_cells);
    EXPECT_EQ(got.breakdown.chunks_total, want.breakdown.chunks_total);
    EXPECT_EQ(got.breakdown.chunks_scanned, want.breakdown.chunks_scanned);
    EXPECT_EQ(got.breakdown.scan.records_scanned,
              want.breakdown.scan.records_scanned);
  }
}

TEST(ExecClusterTest, WallClockClusterIsDeterministicAcrossRuns) {
  const auto run = [] {
    StashCluster cluster(exec_config(3), shared_generator());
    const QueryStats cold = cluster.run_query(state_query());
    const QueryStats warm = cluster.run_query(state_query());
    return std::make_pair(cold.result_cells, warm.result_cells);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.first, a.second);  // warm repeat returns the same answer
}

TEST(ExecClusterTest, WarmQueriesStillSkipDiskWithWorkers) {
  StashCluster cluster(exec_config(2), shared_generator());
  const QueryStats cold = cluster.run_query(county_query());
  const QueryStats warm = cluster.run_query(county_query());
  EXPECT_EQ(warm.breakdown.scan.records_scanned, 0u);
  EXPECT_EQ(warm.breakdown.chunks_scanned, 0u);
  EXPECT_EQ(warm.result_cells, cold.result_cells);
}

TEST(ExecClusterTest, ExecCountersSurfaceInBothExporters) {
  StashCluster cluster(exec_config(2), shared_generator());
  cluster.run_query(county_query());

  const obs::MetricsSnapshot snap = cluster.metrics_registry().snapshot();
  const auto scalar = [&](const std::string& name) -> double {
    for (const auto& s : snap.scalars)
      if (s.name == name) return s.value;
    ADD_FAILURE() << "missing metric " << name;
    return -1.0;
  };
  EXPECT_GT(scalar("stash_exec_tasks_total"), 0.0);
  EXPECT_GE(scalar("stash_exec_steals_total"), 0.0);
  EXPECT_GE(scalar("stash_exec_parks_total"), 0.0);
  EXPECT_GE(scalar("stash_exec_wakeups_total"), 0.0);
  // PR 9 robustness counters: present (and zero on a healthy run).
  EXPECT_EQ(scalar("stash_exec_deadline_exceeded_total"), 0.0);
  EXPECT_EQ(scalar("stash_exec_cancelled_chunks_total"), 0.0);
  EXPECT_EQ(scalar("stash_exec_task_exceptions_total"), 0.0);
  EXPECT_EQ(scalar("stash_exec_watchdog_stalls_total"), 0.0);
  EXPECT_GE(scalar("stash_exec_submit_shed_total"), 0.0);
  EXPECT_EQ(scalar("stash_exec_workers"), 8.0 * 2.0);  // nodes x threads
  EXPECT_EQ(scalar("stash_exec_queue_depth"), 0.0);
  // Per-worker-slot breakdowns registered when exec is on.
  EXPECT_GE(scalar("stash_exec_worker0_tasks_total"), 0.0);
  EXPECT_GE(scalar("stash_exec_worker1_queue_depth"), 0.0);

  const std::string prom = obs::to_prometheus(snap);
  EXPECT_NE(prom.find("# TYPE stash_exec_tasks_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE stash_exec_deadline_exceeded_total counter"),
            std::string::npos);
  const std::string json = obs::to_json(snap, cluster.loop().now());
  EXPECT_NE(json.find("\"stash_exec_tasks_total\":"), std::string::npos);
  EXPECT_NE(json.find("\"stash_exec_deadline_exceeded_total\":"),
            std::string::npos);
}

TEST(ExecClusterTest, SimOnlyClusterStillExportsZeroedExecCounters) {
  // The schema's required counters must exist even with exec disabled.
  StashCluster cluster(exec_config(0), shared_generator());
  cluster.run_query(county_query());
  const obs::MetricsSnapshot snap = cluster.metrics_registry().snapshot();
  bool tasks_found = false, worker_slot_found = false;
  for (const auto& s : snap.scalars) {
    if (s.name == "stash_exec_tasks_total") {
      tasks_found = true;
      EXPECT_EQ(s.value, 0.0);
    }
    // Per-slot metrics look like stash_exec_worker<digit>_... — distinct
    // from the always-registered stash_exec_workers gauge.
    constexpr const char* kSlotPrefix = "stash_exec_worker";
    if (s.name.rfind(kSlotPrefix, 0) == 0 &&
        s.name.size() > std::string(kSlotPrefix).size() &&
        std::isdigit(static_cast<unsigned char>(
            s.name[std::string(kSlotPrefix).size()])) != 0)
      worker_slot_found = true;
  }
  EXPECT_TRUE(tasks_found);
  EXPECT_FALSE(worker_slot_found);  // per-slot metrics only when enabled
  // The PR 9 robustness counters are schema-required too: they must exist,
  // zeroed, even with exec disabled.
  for (const char* name :
       {"stash_exec_deadline_exceeded_total", "stash_exec_cancelled_chunks_total",
        "stash_exec_task_exceptions_total", "stash_exec_watchdog_stalls_total",
        "stash_exec_submit_shed_total"}) {
    bool found = false;
    for (const auto& s : snap.scalars) {
      if (s.name == name) {
        found = true;
        EXPECT_EQ(s.value, 0.0) << name;
      }
    }
    EXPECT_TRUE(found) << "missing schema-required counter " << name;
  }
}

TEST(ExecClusterTest, ExecDeadlineDegradesInsteadOfHanging) {
  // Every chunk stalls well past a 1 ms exec deadline, so every partition
  // evaluation comes back partial.  The cluster must route that through
  // the PR 4 pushback taxonomy — degraded cached-ancestor answers where
  // resident, retries and honest holes otherwise — and never hang.
  ClusterConfig config = exec_config(2);
  config.exec_deadline_ms = 1;
  config.exec_faults.seed = 0x9E0;
  config.exec_faults.worker_stall_rate = 1.0;
  StashCluster cluster(config, shared_generator());

  const QueryStats stats = cluster.run_query(state_query());
  EXPECT_GT(stats.shed_subqueries, 0u);
  EXPECT_TRUE(stats.degraded || stats.partial || stats.retries > 0);

  const obs::MetricsSnapshot snap = cluster.metrics_registry().snapshot();
  double deadline_exceeded = -1.0;
  for (const auto& s : snap.scalars)
    if (s.name == "stash_exec_deadline_exceeded_total")
      deadline_exceeded = s.value;
  EXPECT_GT(deadline_exceeded, 0.0);
}

TEST(ExecClusterTest, ExecChaosExceptionsAreQuarantinedAndCounted) {
  // Exception rate 1.0: every chunk throws InjectedFault.  The pool must
  // survive (quarantine, never std::terminate), the partitions all flag
  // partial, and the counter surfaces the injected failures.
  ClusterConfig config = exec_config(2);
  config.exec_faults.seed = 0xFA11;
  config.exec_faults.task_exception_rate = 1.0;
  StashCluster cluster(config, shared_generator());

  const QueryStats stats = cluster.run_query(county_query());
  EXPECT_TRUE(stats.degraded || stats.partial);

  const obs::MetricsSnapshot snap = cluster.metrics_registry().snapshot();
  double exceptions = -1.0;
  for (const auto& s : snap.scalars)
    if (s.name == "stash_exec_task_exceptions_total") exceptions = s.value;
  EXPECT_GT(exceptions, 0.0);
}

TEST(ExecClusterTest, NodeCrashAndRestartKeepWorkersCoherent) {
  // wipe_node clears the graph the workers read through; a post-restart
  // query must still complete with the same answer as a fresh cluster.
  ClusterConfig config = exec_config(2);
  sim::CrashEvent crash;
  crash.node = 3;
  crash.at = 5 * sim::kMillisecond;
  crash.restart_at = 10 * sim::kMillisecond;
  config.fault_plan.crashes.push_back(crash);
  config.subquery_timeout = 20 * sim::kMillisecond;
  StashCluster cluster(config, shared_generator());

  StashCluster reference(exec_config(2), shared_generator());
  const QueryStats want = reference.run_query(state_query());

  (void)cluster.run_query(state_query());  // rides through the crash window
  cluster.loop().run_until(20 * sim::kMillisecond);
  const QueryStats after = cluster.run_query(state_query());
  EXPECT_EQ(after.result_cells, want.result_cells);
}

}  // namespace
}  // namespace stash::cluster
