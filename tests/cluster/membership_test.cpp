// GossipMembership unit tests: SWIM probe/ack/ping-req mechanics against a
// fake transport, incarnation precedence rules, refutation, partition
// split-brain views, and convergence after heal — all deterministic on the
// sim EventLoop.

#include "cluster/membership.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "sim/fault.hpp"

namespace stash::cluster {
namespace {

using sim::kFrontendNode;
using sim::kMillisecond;
using sim::kSecond;

/// Fast-converging config for tests (defaults are tuned for cluster runs).
MembershipConfig test_config() {
  MembershipConfig config;
  config.probe_interval = 50 * kMillisecond;
  config.probe_timeout = 5 * kMillisecond;
  config.suspicion_timeout = 100 * kMillisecond;
  return config;
}

/// Membership over a flat-latency transport with FaultInjector semantics:
/// drops and partitions apply per message, crashed destinations eat
/// deliveries.
struct Harness {
  sim::EventLoop loop;
  sim::FaultInjector fault;
  std::unique_ptr<GossipMembership> membership;

  explicit Harness(MembershipConfig config, std::uint32_t nodes,
                   sim::FaultPlan plan = {},
                   std::uint32_t initial_members = GossipMembership::kAllSlots)
      : fault(std::move(plan), nodes) {
    fault.arm(loop);
    membership = std::make_unique<GossipMembership>(
        config, nodes, loop,
        [this](std::uint32_t from, std::uint32_t to, std::size_t,
               std::function<void()> deliver) {
          if (fault.should_drop(from, to)) return;
          const sim::SimTime delay = 200 + fault.extra_latency(from, to);
          loop.schedule_background(delay,
                                   [this, to, fn = std::move(deliver)] {
                                     if (fault.alive(to)) fn();
                                   });
        },
        [this](std::uint32_t id) { return fault.alive(id); },
        initial_members);
    membership->start();
  }

  /// How many (observer, member) pairs currently believe `state`.
  int count(std::uint32_t nodes, MemberState state) const {
    int total = 0;
    for (std::uint32_t obs = 0; obs <= nodes; ++obs) {
      const std::uint32_t id = obs == nodes ? kFrontendNode : obs;
      for (std::uint32_t m = 0; m < nodes; ++m)
        if (membership->state(id, m) == state) ++total;
    }
    return total;
  }

  std::string fingerprint(std::uint32_t nodes) const {
    std::ostringstream out;
    for (std::uint32_t obs = 0; obs <= nodes; ++obs) {
      const std::uint32_t id = obs == nodes ? kFrontendNode : obs;
      for (std::uint32_t m = 0; m < nodes; ++m) {
        const MemberInfo& v = membership->info(id, m);
        out << to_string(v.state) << '@' << v.incarnation << ';';
      }
    }
    out << membership->stats().probes_sent << '/'
        << membership->stats().updates_applied;
    return out.str();
  }
};

TEST(MembershipTest, HealthyClusterStaysAllAliveWithNoFalseSuspicions) {
  Harness h(test_config(), 8);
  h.loop.run_for(5 * kSecond);
  EXPECT_EQ(h.count(8, MemberState::kAlive), 9 * 8);
  EXPECT_GT(h.membership->stats().probes_sent, 100u);
  EXPECT_GT(h.membership->stats().acks_received, 100u);
  EXPECT_EQ(h.membership->stats().suspicions, 0u);
  EXPECT_EQ(h.membership->stats().false_suspicions, 0u);
  EXPECT_EQ(h.membership->stats().deaths_declared, 0u);
}

TEST(MembershipTest, CrashedNodeIsDeclaredDeadInEveryView) {
  Harness h(test_config(), 8);
  h.fault.force_crash(3);
  h.loop.run_for(3 * kSecond);
  for (std::uint32_t obs = 0; obs < 8; ++obs) {
    if (obs == 3) continue;  // the corpse's own view is moot
    EXPECT_EQ(h.membership->state(obs, 3), MemberState::kDead)
        << "observer " << obs;
  }
  EXPECT_EQ(h.membership->state(kFrontendNode, 3), MemberState::kDead);
  EXPECT_FALSE(h.membership->usable(kFrontendNode, 3));
  EXPECT_GT(h.membership->stats().suspicions, 0u);
  EXPECT_GT(h.membership->stats().deaths_declared, 0u);
}

TEST(MembershipTest, RestartWithAnnounceResurrectsEverywhere) {
  Harness h(test_config(), 8);
  h.fault.force_crash(3);
  h.loop.run_for(3 * kSecond);
  ASSERT_EQ(h.membership->state(0, 3), MemberState::kDead);

  h.fault.force_restart(3);
  h.membership->reset_view(3);
  h.membership->announce(3);
  h.loop.run_for(3 * kSecond);
  EXPECT_EQ(h.count(8, MemberState::kAlive), 9 * 8);
  // The rejoin rode a bumped incarnation past the death rumor.
  EXPECT_GE(h.membership->info(0, 3).incarnation, 1u);
  EXPECT_GT(h.membership->stats().announces, 0u);
}

TEST(MembershipTest, TransientIsolationIsSuspectedThenRefuted) {
  // Sever node 2 for 300ms with a generous suspicion timeout: peers
  // suspect it but it refutes with a bumped incarnation after the heal.
  MembershipConfig config = test_config();
  config.suspicion_timeout = 10 * kSecond;  // never escalates to dead
  sim::FaultPlan plan;
  plan.partitions.push_back(
      {.groups = {{2}, {0, 1, 3, 4, 5, kFrontendNode}},
       .at = 0,
       .heal_at = 300 * kMillisecond});
  Harness h(config, 6, plan);
  h.loop.run_for(300 * kMillisecond);
  EXPECT_GT(h.membership->stats().suspicions, 0u);
  h.loop.run_for(5 * kSecond);
  EXPECT_EQ(h.count(6, MemberState::kAlive), 7 * 6);
  EXPECT_GT(h.membership->stats().refutations, 0u);
  EXPECT_GT(h.membership->stats().false_suspicions, 0u);
  EXPECT_EQ(h.membership->stats().deaths_declared, 0u);
}

TEST(MembershipTest, PartitionSplitsViewsThenConvergesAfterHeal) {
  // Two-way split long enough for both sides to declare the other dead;
  // after the heal the dead-probe path resurrects everyone without any
  // explicit announce.
  sim::FaultPlan plan;
  plan.partitions.push_back({.groups = {{0, 1, 2, kFrontendNode}, {3, 4, 5}},
                             .at = 0,
                             .heal_at = 2 * kSecond});
  Harness h(test_config(), 6, plan);
  h.loop.run_for(2 * kSecond);
  // Majority side (with the frontend) has declared the minority dead.
  EXPECT_EQ(h.membership->state(0, 4), MemberState::kDead);
  EXPECT_EQ(h.membership->state(kFrontendNode, 4), MemberState::kDead);
  EXPECT_EQ(h.membership->state(4, 0), MemberState::kDead);
  // Same side stays alive throughout.
  EXPECT_EQ(h.membership->state(0, 1), MemberState::kAlive);
  EXPECT_EQ(h.membership->state(4, 5), MemberState::kAlive);

  h.loop.run_for(20 * kSecond);
  EXPECT_EQ(h.count(6, MemberState::kAlive), 7 * 6);
}

TEST(MembershipTest, IncarnationPrecedenceRules) {
  MembershipConfig config = test_config();
  config.enabled = true;
  Harness h(config, 4);

  // suspect@0 beats alive@0; alive@0 cannot take it back; alive@1 can.
  EXPECT_TRUE(h.membership->apply(0, {2, MemberState::kSuspect, 0}));
  EXPECT_EQ(h.membership->state(0, 2), MemberState::kSuspect);
  EXPECT_FALSE(h.membership->apply(0, {2, MemberState::kAlive, 0}));
  EXPECT_TRUE(h.membership->apply(0, {2, MemberState::kAlive, 1}));
  EXPECT_EQ(h.membership->state(0, 2), MemberState::kAlive);
  EXPECT_EQ(h.membership->stats().false_suspicions, 1u);

  // dead@1 wins the tie against alive@1 and suspect@1; only alive@2 returns.
  EXPECT_TRUE(h.membership->apply(0, {2, MemberState::kDead, 1}));
  EXPECT_FALSE(h.membership->apply(0, {2, MemberState::kAlive, 1}));
  EXPECT_FALSE(h.membership->apply(0, {2, MemberState::kSuspect, 1}));
  EXPECT_EQ(h.membership->state(0, 2), MemberState::kDead);
  EXPECT_TRUE(h.membership->apply(0, {2, MemberState::kAlive, 2}));
  EXPECT_EQ(h.membership->state(0, 2), MemberState::kAlive);
}

TEST(MembershipTest, SelfRumorsAreRefutedNotAccepted) {
  Harness h(test_config(), 4);
  const std::uint64_t before = h.membership->incarnation(1);
  // Node 1 hears it is suspected at its own incarnation: it must stay
  // alive in its own view and out-bid the rumor.
  EXPECT_TRUE(h.membership->apply(1, {1, MemberState::kSuspect, before}));
  EXPECT_EQ(h.membership->state(1, 1), MemberState::kAlive);
  EXPECT_EQ(h.membership->incarnation(1), before + 1);
  EXPECT_GT(h.membership->stats().refutations, 0u);
  // A stale rumor below the current incarnation is ignored outright.
  EXPECT_FALSE(h.membership->apply(1, {1, MemberState::kDead, before}));
  EXPECT_EQ(h.membership->state(1, 1), MemberState::kAlive);
}

TEST(MembershipTest, SameSeedSameScriptIsBitIdentical) {
  sim::FaultPlan plan;
  plan.partitions.push_back(
      {.groups = {{0, 1}, {2, 3}}, .at = 100 * kMillisecond,
       .heal_at = 900 * kMillisecond});
  plan.crashes.push_back({.node = 1, .at = 200 * kMillisecond,
                          .restart_at = 600 * kMillisecond});
  Harness a(test_config(), 4, plan);
  Harness b(test_config(), 4, plan);
  a.loop.run_for(5 * kSecond);
  b.loop.run_for(5 * kSecond);
  EXPECT_EQ(a.fingerprint(4), b.fingerprint(4));
  EXPECT_EQ(a.loop.executed(), b.loop.executed());
}

TEST(MembershipTest, DisabledProtocolIsInertAndAlwaysUsable) {
  MembershipConfig config = test_config();
  config.enabled = false;
  Harness h(config, 4);
  h.fault.force_crash(2);
  h.loop.run_for(1 * kSecond);
  EXPECT_EQ(h.membership->stats().probes_sent, 0u);
  EXPECT_TRUE(h.membership->usable(0, 2));
  EXPECT_TRUE(h.membership->usable(kFrontendNode, 2));
}

TEST(MembershipTest, StandbySlotsStartLeftAndJoinAdmitsThem) {
  // 6 slots, 4 initial members: slots 4 and 5 are standbys — kLeft in
  // every view, never probed, not registered.
  Harness h(test_config(), 6, {}, /*initial_members=*/4);
  h.loop.run_for(2 * kSecond);
  for (std::uint32_t obs = 0; obs < 4; ++obs) {
    EXPECT_EQ(h.membership->state(obs, 4), MemberState::kLeft);
    EXPECT_EQ(h.membership->state(obs, 5), MemberState::kLeft);
  }
  EXPECT_FALSE(h.membership->is_registered(4));
  EXPECT_FALSE(h.membership->usable(kFrontendNode, 4));
  EXPECT_EQ(h.membership->stats().suspicions, 0u);  // nobody probed a standby

  h.membership->join(4);
  h.loop.run_for(3 * kSecond);
  EXPECT_TRUE(h.membership->is_registered(4));
  for (std::uint32_t obs = 0; obs < 4; ++obs)
    EXPECT_EQ(h.membership->state(obs, 4), MemberState::kAlive)
        << "observer " << obs;
  EXPECT_EQ(h.membership->state(kFrontendNode, 4), MemberState::kAlive);
  EXPECT_EQ(h.membership->state(0, 5), MemberState::kLeft);  // still standby
  EXPECT_EQ(h.membership->stats().joins, 1u);
}

TEST(MembershipTest, LeaveConvergesToLeftEverywhereAndStops) {
  Harness h(test_config(), 6);
  h.loop.run_for(1 * kSecond);
  h.membership->leave(3);
  h.loop.run_for(4 * kSecond);
  EXPECT_FALSE(h.membership->is_registered(3));
  for (std::uint32_t obs = 0; obs < 6; ++obs) {
    if (obs == 3) continue;
    EXPECT_EQ(h.membership->state(obs, 3), MemberState::kLeft)
        << "observer " << obs;
  }
  EXPECT_EQ(h.membership->state(kFrontendNode, 3), MemberState::kLeft);
  EXPECT_FALSE(h.membership->usable(0, 3));
  EXPECT_EQ(h.membership->stats().leaves, 1u);
  // Intentional absence is not a fault: no death was ever declared.
  EXPECT_EQ(h.membership->stats().deaths_declared, 0u);
}

TEST(MembershipTest, LeftPrecedenceRules) {
  Harness h(test_config(), 4);
  const std::uint64_t inc = h.membership->incarnation(2);
  EXPECT_TRUE(h.membership->apply(0, {2, MemberState::kLeft, inc}));
  EXPECT_EQ(h.membership->state(0, 2), MemberState::kLeft);
  // dead at the same incarnation must NOT override left: a decommissioned
  // node that later misses probes stays "left", not "dead" (otherwise the
  // two rumors flap forever).
  EXPECT_FALSE(h.membership->apply(0, {2, MemberState::kDead, inc}));
  EXPECT_EQ(h.membership->state(0, 2), MemberState::kLeft);
  // alive at the same incarnation cannot take it back either...
  EXPECT_FALSE(h.membership->apply(0, {2, MemberState::kAlive, inc}));
  EXPECT_EQ(h.membership->state(0, 2), MemberState::kLeft);
  // ...only a strictly higher incarnation (an explicit rejoin) can.
  EXPECT_TRUE(h.membership->apply(0, {2, MemberState::kAlive, inc + 1}));
  EXPECT_EQ(h.membership->state(0, 2), MemberState::kAlive);
}

TEST(MembershipTest, LeaverCrashingMidDrainStillConvergesToLeft) {
  // A decommissioned node that dies before the rumor finishes spreading
  // must still end as kLeft everywhere: the frontend re-disseminates the
  // departure, and dead cannot out-bid left at the same incarnation.
  Harness h(test_config(), 6);
  h.loop.run_for(1 * kSecond);
  h.membership->leave(2);
  h.fault.force_crash(2);
  h.loop.run_for(6 * kSecond);
  for (std::uint32_t obs = 0; obs < 6; ++obs) {
    if (obs == 2) continue;
    EXPECT_EQ(h.membership->state(obs, 2), MemberState::kLeft)
        << "observer " << obs;
  }
  EXPECT_EQ(h.membership->state(kFrontendNode, 2), MemberState::kLeft);
}

TEST(MembershipTest, RejoinAfterLeaveRidesAHigherIncarnation) {
  Harness h(test_config(), 6);
  h.loop.run_for(1 * kSecond);
  h.membership->leave(4);
  h.loop.run_for(3 * kSecond);
  ASSERT_EQ(h.membership->state(0, 4), MemberState::kLeft);
  const std::uint64_t inc_at_leave = h.membership->incarnation(4);

  h.membership->join(4);
  h.loop.run_for(3 * kSecond);
  EXPECT_TRUE(h.membership->is_registered(4));
  EXPECT_GT(h.membership->incarnation(4), inc_at_leave);
  for (std::uint32_t obs = 0; obs < 6; ++obs)
    EXPECT_EQ(h.membership->state(obs, 4), MemberState::kAlive)
        << "observer " << obs;
}

TEST(MembershipTest, ConfigValidation) {
  sim::EventLoop loop;
  const auto noop_transport = [](std::uint32_t, std::uint32_t, std::size_t,
                                 std::function<void()>) {};
  const auto always_up = [](std::uint32_t) { return true; };
  MembershipConfig bad = test_config();
  bad.probe_interval = 0;
  EXPECT_THROW(GossipMembership(bad, 4, loop, noop_transport, always_up),
               std::invalid_argument);
  bad = test_config();
  bad.ping_req_fanout = -1;
  EXPECT_THROW(GossipMembership(bad, 4, loop, noop_transport, always_up),
               std::invalid_argument);
  EXPECT_THROW(GossipMembership(test_config(), 0, loop, noop_transport,
                                always_up),
               std::invalid_argument);
  GossipMembership ok(test_config(), 4, loop, noop_transport, always_up);
  EXPECT_THROW((void)ok.info(0, 9), std::invalid_argument);
  EXPECT_THROW((void)ok.info(7, 0), std::invalid_argument);
}

}  // namespace
}  // namespace stash::cluster
