// Cluster-level observability: the MetricsRegistry compat view, exporters,
// and the per-query span trees — including the invariants the trace model
// promises (obs/trace.hpp): scatter + merge partition the query's latency
// exactly, and a serve span's stage children partition its service time.

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"

namespace stash::cluster {
namespace {

AggregationQuery county_query() {
  return {{38.0, 38.6, -99.0, -97.8},
          TemporalBin(TemporalRes::Day, 2015, 2, 2).range(),
          {6, TemporalRes::Day}};
}

ClusterConfig small_config(SystemMode mode = SystemMode::Stash) {
  ClusterConfig config;
  config.num_nodes = 16;
  config.mode = mode;
  return config;
}

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

const obs::TraceSpan* find_span(const obs::Trace& trace,
                                const std::string& name) {
  for (const auto& span : trace.spans)
    if (span.name == name) return &span;
  return nullptr;
}

std::vector<const obs::TraceSpan*> children_of(const obs::Trace& trace,
                                               obs::SpanId parent) {
  std::vector<const obs::TraceSpan*> out;
  for (const auto& span : trace.spans)
    if (span.parent == parent) out.push_back(&span);
  return out;
}

TEST(ClusterObservabilityTest, SpanTreeStagesSumToReportedLatency) {
  StashCluster cluster(small_config(), shared_generator());
  const QueryStats stats = cluster.run_query(county_query());
  const auto trace = cluster.trace(stats.query_id);
  ASSERT_TRUE(trace.has_value());
  ASSERT_FALSE(trace->spans.empty());

  // Root covers [submitted_at, completed_at].
  const obs::TraceSpan& root = trace->spans[0];
  EXPECT_EQ(root.name, "query");
  EXPECT_EQ(root.start, stats.submitted_at);
  EXPECT_EQ(root.end, stats.completed_at);

  // The scatter and merge stages tile the root exactly, so their durations
  // sum to the reported end-to-end latency.
  const obs::TraceSpan* scatter = find_span(*trace, "scatter");
  const obs::TraceSpan* merge = find_span(*trace, "merge");
  ASSERT_NE(scatter, nullptr);
  ASSERT_NE(merge, nullptr);
  EXPECT_EQ(scatter->start, root.start);
  EXPECT_EQ(scatter->end, merge->start);
  EXPECT_EQ(merge->end, root.end);
  EXPECT_EQ(scatter->duration() + merge->duration(), stats.latency());
}

TEST(ClusterObservabilityTest, ServeStagesPartitionServiceTime) {
  StashCluster cluster(small_config(), shared_generator());
  const QueryStats stats = cluster.run_query(county_query());
  const auto trace = cluster.trace(stats.query_id);
  ASSERT_TRUE(trace.has_value());

  std::size_t serves = 0;
  for (const auto& span : trace->spans) {
    if (span.name != "serve" && span.name != "serve guest") continue;
    ++serves;
    const auto stages = children_of(*trace, span.id);
    ASSERT_FALSE(stages.empty()) << "serve span without stage children";
    // Stages are contiguous and tile the serve span exactly.
    sim::SimTime cursor = span.start;
    sim::SimTime total = 0;
    for (const auto* stage : stages) {
      EXPECT_EQ(stage->start, cursor) << stage->name;
      cursor = stage->end;
      total += stage->duration();
    }
    EXPECT_EQ(cursor, span.end);
    EXPECT_EQ(total, span.duration());
  }
  EXPECT_EQ(serves, stats.subqueries);
}

TEST(ClusterObservabilityTest, SubquerySpansCoverEveryPartition) {
  StashCluster cluster(small_config(), shared_generator());
  const QueryStats stats = cluster.run_query(county_query());
  const auto trace = cluster.trace(stats.query_id);
  ASSERT_TRUE(trace.has_value());
  std::size_t subquery_spans = 0;
  for (const auto& span : trace->spans)
    if (span.name.rfind("subquery ", 0) == 0) ++subquery_spans;
  EXPECT_EQ(subquery_spans, stats.subqueries);
}

TEST(ClusterObservabilityTest, TracingDisabledRecordsNothing) {
  ClusterConfig config = small_config();
  config.tracing = false;
  StashCluster cluster(config, shared_generator());
  const QueryStats stats = cluster.run_query(county_query());
  EXPECT_GT(stats.result_cells, 0u);
  EXPECT_FALSE(cluster.trace(stats.query_id).has_value());
  EXPECT_EQ(cluster.tracer().size(), 0u);
}

TEST(ClusterObservabilityTest, CompatViewMatchesRegistryCounters) {
  StashCluster cluster(small_config(), shared_generator());
  cluster.run_query(county_query());
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.queries_completed, 1u);
  EXPECT_GE(m.subqueries_processed, 1u);
  const obs::MetricsSnapshot snap = cluster.metrics_registry().snapshot();
  const auto scalar = [&](const std::string& name) -> double {
    for (const auto& s : snap.scalars)
      if (s.name == name) return s.value;
    ADD_FAILURE() << "missing metric " << name;
    return -1.0;
  };
  EXPECT_EQ(scalar("stash_queries_completed_total"),
            static_cast<double>(m.queries_completed));
  EXPECT_EQ(scalar("stash_subqueries_processed_total"),
            static_cast<double>(m.subqueries_processed));
  EXPECT_EQ(scalar("stash_maintenance_tasks_total"),
            static_cast<double>(m.maintenance_tasks));
  // Callback gauges see live cluster state.
  EXPECT_EQ(scalar("stash_cached_cells"),
            static_cast<double>(cluster.total_cached_cells()));
  EXPECT_EQ(scalar("stash_pending_queries"), 0.0);
  EXPECT_GT(scalar("stash_graph_cells_absorbed_total"), 0.0);
}

TEST(ClusterObservabilityTest, LatencyHistogramSeesEveryQuery) {
  StashCluster cluster(small_config(), shared_generator());
  cluster.run_query(county_query());
  cluster.run_query(county_query());
  const obs::MetricsSnapshot snap = cluster.metrics_registry().snapshot();
  const auto it =
      std::find_if(snap.histograms.begin(), snap.histograms.end(),
                   [](const obs::HistogramSnapshot& h) {
                     return h.name == "stash_query_latency_us";
                   });
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->count, 2u);
  EXPECT_GT(it->sum, 0.0);
}

TEST(ClusterObservabilityTest, ExportersProduceWellFormedOutput) {
  StashCluster cluster(small_config(), shared_generator());
  cluster.run_query(county_query());
  const obs::MetricsSnapshot snap = cluster.metrics_registry().snapshot();
  const std::string prom = obs::to_prometheus(snap);
  EXPECT_NE(prom.find("# TYPE stash_queries_completed_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("stash_queries_completed_total 1"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE stash_query_latency_us histogram"),
            std::string::npos);
  const std::string json = obs::to_json(snap, cluster.loop().now());
  EXPECT_EQ(json.find("{\"schema\":\"stash-metrics-v1\""), 0u);
  EXPECT_NE(json.find("\"stash_queries_completed_total\":1"),
            std::string::npos);
}

TEST(ClusterObservabilityTest, TraceRingRetainsTheMostRecentQueries) {
  ClusterConfig config = small_config();
  config.trace_capacity = 4;
  StashCluster cluster(config, shared_generator());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i)
    ids.push_back(cluster.run_query(county_query()).query_id);
  EXPECT_EQ(cluster.tracer().size(), 4u);
  EXPECT_FALSE(cluster.trace(ids[0]).has_value());
  EXPECT_FALSE(cluster.trace(ids[1]).has_value());
  for (int i = 2; i < 6; ++i)
    EXPECT_TRUE(cluster.trace(ids[static_cast<std::size_t>(i)]).has_value());
}

TEST(ClusterObservabilityTest, FailedSubqueriesLeaveFailureSpans) {
  ClusterConfig config = small_config();
  config.subquery_timeout = 50 * sim::kMillisecond;
  config.subquery_max_attempts = 2;
  config.failover_to_successor = false;
  StashCluster cluster(config, shared_generator());
  // Crash every node except one so the query's partitions are unreachable.
  const AggregationQuery query = county_query();
  for (NodeId id = 0; id < config.num_nodes; ++id) cluster.crash_node(id);
  const QueryStats stats = cluster.run_query(query);
  EXPECT_TRUE(stats.partial);
  const auto trace = cluster.trace(stats.query_id);
  ASSERT_TRUE(trace.has_value());
  bool saw_failed = false;
  bool saw_timeout = false;
  for (const auto& span : trace->spans) {
    for (const auto& [key, value] : span.tags) {
      if (key == "outcome" && value == "failed") saw_failed = true;
      if (key == "outcome" && value == "timeout") saw_timeout = true;
    }
  }
  EXPECT_TRUE(saw_failed);
  EXPECT_TRUE(saw_timeout);
  // Even a fully failed query keeps the scatter+merge==latency invariant.
  const obs::TraceSpan* scatter = find_span(*trace, "scatter");
  const obs::TraceSpan* merge = find_span(*trace, "merge");
  ASSERT_NE(scatter, nullptr);
  ASSERT_NE(merge, nullptr);
  EXPECT_EQ(scatter->duration() + merge->duration(), stats.latency());
}

}  // namespace
}  // namespace stash::cluster
