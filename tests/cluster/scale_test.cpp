// Cluster-size sweep: results must be identical at any scale, and scale
// must buy throughput under a distributed workload.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"
#include "workload/workload.hpp"

namespace stash::cluster {
namespace {

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

class ClusterScaleTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ClusterScaleTest, ResultsInvariantToClusterSize) {
  ClusterConfig config;
  config.num_nodes = GetParam();
  StashCluster cluster(config, shared_generator());
  const AggregationQuery state{{36.0, 40.0, -102.0, -94.0},
                               {unix_seconds({2015, 2, 2}),
                                unix_seconds({2015, 2, 3})},
                               {6, TemporalRes::Day}};
  CellSummaryMap cells;
  const auto stats = cluster.run_query(state, &cells);

  // Reference: single-node evaluation (scale 1 exercises no scatter).
  ClusterConfig solo_config;
  solo_config.num_nodes = 1;
  StashCluster solo(solo_config, shared_generator());
  CellSummaryMap expected;
  solo.run_query(state, &expected);

  ASSERT_EQ(cells.size(), expected.size());
  for (const auto& [key, summary] : expected) {
    const auto it = cells.find(key);
    ASSERT_NE(it, cells.end()) << key.label();
    EXPECT_TRUE(summary.approx_equals(it->second)) << key.label();
  }
  EXPECT_GT(stats.subqueries, 0u);
}

TEST_P(ClusterScaleTest, WarmQueriesScaleFreeOfDisk) {
  ClusterConfig config;
  config.num_nodes = GetParam();
  StashCluster cluster(config, shared_generator());
  const AggregationQuery county{{38.0, 38.6, -99.0, -97.8},
                                {unix_seconds({2015, 2, 2}),
                                 unix_seconds({2015, 2, 3})},
                                {6, TemporalRes::Day}};
  cluster.run_query(county);
  const auto warm = cluster.run_query(county);
  EXPECT_EQ(warm.breakdown.scan.records_scanned, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClusterScaleTest,
                         ::testing::Values(1u, 4u, 16u, 64u, 120u));

TEST(ClusterScaleTest, MoreNodesMoreBurstThroughput) {
  // A burst of state queries spread over the continent: a 64-node cluster
  // must finish well before a 4-node cluster.
  workload::WorkloadGenerator wl;
  std::vector<AggregationQuery> burst;
  for (int i = 0; i < 40; ++i)
    burst.push_back(wl.random_query(workload::QueryGroup::State));

  const auto makespan = [&](std::uint32_t nodes) {
    ClusterConfig config;
    config.num_nodes = nodes;
    config.discard_payload = true;
    StashCluster cluster(config, shared_generator());
    sim::SimTime last = 0;
    for (const auto& s : cluster.run_burst(burst))
      last = std::max(last, s.completed_at);
    return last;
  };
  const sim::SimTime small = makespan(4);
  const sim::SimTime large = makespan(64);
  EXPECT_LT(large, small);
  EXPECT_LT(static_cast<double>(large), 0.6 * static_cast<double>(small));
}

}  // namespace
}  // namespace stash::cluster
