// Partition tolerance and post-crash recovery (ISSUE 5): queries issued
// while the network is split must complete within their deadline — exact,
// degraded, or honestly partial, but never hung; routing entries pointing
// at membership-dead hosts must be skipped at dispatch time; and after the
// partition heals, anti-entropy re-warms restarted or cut-off nodes from
// the replica holders that served their partitions meanwhile.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"
#include "geo/geohash.hpp"
#include "workload/workload.hpp"

namespace stash::cluster {
namespace {

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

AggregationQuery county_query() {
  return {{38.0, 38.6, -99.0, -97.8},
          {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
          {6, TemporalRes::Day}};
}

AggregationQuery wide_query() {
  AggregationQuery q = county_query();
  q.area = q.area.scaled(16.0);
  return q;
}

std::vector<AggregationQuery> burst_around(const AggregationQuery& base,
                                           std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AggregationQuery> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AggregationQuery q = base;
    q.area = base.area.translated(0.1 * base.area.height() * rng.uniform(-1, 1),
                                  0.1 * base.area.width() * rng.uniform(-1, 1));
    out.push_back(q);
  }
  return out;
}

/// Gossip timers scaled to the fault-test timescale: detection inside a
/// few hundred simulated milliseconds instead of seconds.
MembershipConfig fast_membership() {
  MembershipConfig m;
  m.probe_interval = 50 * sim::kMillisecond;
  m.probe_timeout = 5 * sim::kMillisecond;
  m.suspicion_timeout = 100 * sim::kMillisecond;
  return m;
}

ClusterConfig fault_config() {
  ClusterConfig config;
  config.num_nodes = 16;
  config.subquery_timeout = 50 * sim::kMillisecond;
  config.retry_backoff = 5 * sim::kMillisecond;
  config.membership = fast_membership();
  return config;
}

void expect_cells_equal(const CellSummaryMap& got, const CellSummaryMap& want) {
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [key, summary] : want) {
    const auto it = got.find(key);
    ASSERT_NE(it, got.end()) << key.label();
    EXPECT_TRUE(summary.approx_equals(it->second)) << key.label();
  }
}

/// Full-query reference cells from a healthy Basic-mode cluster.
CellSummaryMap reference_cells(const AggregationQuery& query) {
  ClusterConfig config;
  config.num_nodes = 16;
  config.mode = SystemMode::Basic;
  StashCluster cluster(config, shared_generator());
  CellSummaryMap cells;
  cluster.run_query(query, &cells);
  return cells;
}

std::vector<std::size_t> reference_cell_counts(
    const std::vector<AggregationQuery>& queries) {
  ClusterConfig config;
  config.num_nodes = 16;
  config.mode = SystemMode::Basic;
  StashCluster cluster(config, shared_generator());
  std::vector<std::size_t> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(cluster.run_query(q).result_cells);
  return out;
}

/// Every complete (level, chunk) pair in a node's local graph.
std::set<std::pair<int, ChunkKey>> complete_chunks(const StashGraph& graph) {
  std::set<std::pair<int, ChunkKey>> out;
  for (int lvl = 0; lvl < kNumLevels; ++lvl) {
    const Resolution res = resolution_of_level(lvl);
    graph.for_each_chunk(
        res, [&](const ChunkKey& key, const StashGraph::ChunkData&) {
          if (graph.chunk_complete(res, key)) out.insert({lvl, key});
        });
  }
  return out;
}

// ---------------------------------------------------------------------------
// Seeded property sweep: {partition plans x recovery policies}.  During the
// split every query must complete within its deadline; after heal plus an
// anti-entropy quiescence window the views converge, the audit passes, and
// the re-warmed minority matches a never-partitioned control's completeness.
// ---------------------------------------------------------------------------

TEST(PartitionPropertyTest, NoHangsDuringSplitAndConvergenceAfterHeal) {
  const AggregationQuery query = wide_query();
  const auto partitions = geohash::covering(query.area, 2);
  ASSERT_GT(partitions.size(), 1u);

  ClusterConfig base = fault_config();
  base.query_deadline = 1 * sim::kSecond;
  const ZeroHopDht dht(base.num_nodes, base.partition_prefix_length);
  const NodeId victim = dht.node_for_partition(partitions.front());

  // The 2-way split: the scatter/gather front-end stays with the majority;
  // the victim and two more nodes are cut off.
  std::vector<std::uint32_t> minority = {victim, (victim + 1) % base.num_nodes,
                                         (victim + 5) % base.num_nodes};
  std::vector<std::uint32_t> majority = {sim::kFrontendNode};
  for (std::uint32_t id = 0; id < base.num_nodes; ++id)
    if (std::find(minority.begin(), minority.end(), id) == minority.end())
      majority.push_back(id);

  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const bool recovery : {true, false}) {
      SCOPED_TRACE(testing::Message()
                   << "seed=" << seed << " recovery=" << recovery);
      ClusterConfig config = base;
      config.recovery = recovery;
      config.fault_plan.seed = seed;
      config.fault_plan.links.push_back({.drop_probability = 0.01});
      config.fault_plan.partitions.push_back(
          {.groups = {majority, minority},
           .at = 10 * sim::kSecond,
           .heal_at = 12 * sim::kSecond});
      // One minority node also crashes mid-partition and restarts cold
      // before the heal: the worst case anti-entropy has to repair.
      config.fault_plan.crashes.push_back(
          {.node = victim,
           .at = 10200 * sim::kMillisecond,
           .restart_at = 11 * sim::kSecond});
      StashCluster cluster(config, shared_generator());

      ClusterConfig control_config = base;
      control_config.recovery = recovery;
      StashCluster control(control_config, shared_generator());

      // The scripted fault events are foreground work, so a single run()
      // drains warm-up, partition, mid-split traffic, crash/restart, heal,
      // and the anti-entropy exchange in virtual-time order.
      QueryStats warm_stats;
      std::vector<QueryStats> stats;
      const auto drive = [&](StashCluster& c) {
        c.loop().schedule_at(0, [&] {
          c.submit(query, [&](const QueryStats& s) { warm_stats = s; });
        });
        // 20 identical wide queries across the partition window.
        for (int i = 0; i < 20; ++i)
          c.loop().schedule_at(
              10050 * sim::kMillisecond + i * 20 * sim::kMillisecond, [&] {
                c.submit(query,
                         [&](const QueryStats& s) { stats.push_back(s); });
              });
        c.loop().run();
      };
      drive(cluster);
      ASSERT_EQ(stats.size(), 20u);
      EXPECT_LT(warm_stats.completed_at, 10 * sim::kSecond)
          << "warm-up overran the scripted partition start";
      const auto during_stats = stats;
      warm_stats = {};
      stats.clear();
      drive(control);
      ASSERT_EQ(stats.size(), 20u);

      for (std::size_t i = 0; i < during_stats.size(); ++i) {
        ASSERT_GT(during_stats[i].deadline, 0) << "query " << i;
        EXPECT_LE(during_stats[i].completed_at, during_stats[i].deadline)
            << "query " << i << " overran its deadline mid-partition";
        EXPECT_EQ(during_stats[i].coverage.size(), partitions.size())
            << "query " << i;
      }
      EXPECT_EQ(cluster.metrics().partitions_observed, 1u);
      EXPECT_GT(cluster.metrics().gossip_probes, 0u);

      // Heal, then let gossip + anti-entropy reach quiescence.
      cluster.loop().run_until(16 * sim::kSecond);
      control.loop().run_until(16 * sim::kSecond);

      // Converged: nobody still believes anybody is dead.
      const auto& membership = cluster.membership();
      for (std::uint32_t member = 0; member < base.num_nodes; ++member) {
        EXPECT_NE(membership.state(sim::kFrontendNode, member),
                  MemberState::kDead)
            << "frontend still believes node " << member << " dead";
        for (std::uint32_t obs = 0; obs < base.num_nodes; ++obs)
          EXPECT_NE(membership.state(obs, member), MemberState::kDead)
              << "node " << obs << " still believes node " << member << " dead";
      }

      const auto report = cluster.audit_all();
      EXPECT_TRUE(report.ok()) << report.violations.size() << " violations";

      if (recovery) {
        EXPECT_GT(cluster.metrics().recoveries, 0u);
        EXPECT_GT(cluster.metrics().digests_exchanged, 0u);
        EXPECT_GT(cluster.metrics().chunks_rewarmed, 0u);
        // Completeness parity: every complete chunk the never-partitioned
        // control's victim holds is back in the re-warmed victim too.
        const auto want = complete_chunks(control.node_graph(victim));
        const auto got = complete_chunks(cluster.node_graph(victim));
        ASSERT_FALSE(want.empty()) << "control victim cached nothing: vacuous";
        for (const auto& chunk : want)
          EXPECT_TRUE(got.contains(chunk))
              << "chunk " << chunk.second.label() << " @ level " << chunk.first
              << " was not re-warmed";
      } else {
        // Without anti-entropy the restarted node stays cold until organic
        // traffic refills it — the contrast that motivates recovery.
        EXPECT_EQ(cluster.metrics().chunks_rewarmed, 0u);
        EXPECT_EQ(cluster.node_graph(victim).total_cells(), 0u);
      }

      // Post-heal, the cluster serves the query complete and exact again.
      CellSummaryMap got;
      const QueryStats after = cluster.run_query(query, &got);
      EXPECT_FALSE(after.partial);
      EXPECT_FALSE(after.degraded);
      expect_cells_equal(got, reference_cells(query));
    }
  }
}

// ---------------------------------------------------------------------------
// Satellite regression: routing entries pointing at membership-dead hosts.
// ---------------------------------------------------------------------------

TEST(PartitionTest, StaleRoutingEntriesToDeadHelpersAreNeverDispatched) {
  // Phase 1: a healthy hotspot builds guest replicas and routing entries.
  ClusterConfig config;
  config.num_nodes = 16;
  config.stash.hotspot_queue_threshold = 20;
  config.stash.reroute_probability = 0.7;
  config.subquery_timeout = 2 * sim::kSecond;
  config.membership = fast_membership();
  StashCluster cluster(config, shared_generator());

  cluster.run_query(wide_query());
  const auto burst = burst_around(county_query(), 300, 11);
  cluster.run_open_loop(burst, 20);
  ASSERT_GT(cluster.metrics().reroutes, 0u) << "no rerouting: scenario vacuous";

  std::set<NodeId> helpers;
  for (NodeId id = 0; id < config.num_nodes; ++id)
    if (cluster.node_guest_graph(id).total_cells() > 0) helpers.insert(id);
  ASSERT_FALSE(helpers.empty());

  // Phase 2: every helper dies.  Gossip must converge and invalidate the
  // routing entries before any further traffic dispatches to a dead host.
  for (const NodeId helper : helpers) cluster.crash_node(helper);
  cluster.loop().run_for(1 * sim::kSecond);

  for (NodeId id = 0; id < config.num_nodes; ++id) {
    cluster.node_routing(id).for_each_entry(
        [&](int, const ChunkKey& chunk, NodeId helper, sim::SimTime) {
          EXPECT_FALSE(helpers.contains(helper))
              << "node " << id << " still routes " << chunk.label()
              << " to dead helper " << helper;
        });
  }

  // A follow-up burst never pays a timeout: dead owners are failed over on
  // the first attempt via the front-end's gossip view, and no subquery is
  // forwarded to a dead helper.
  const auto timeouts_before = cluster.metrics().timeouts_fired;
  const auto handoff_timeouts_before = cluster.metrics().handoff_timeouts;
  const auto again = burst_around(county_query(), 150, 37);
  const auto stats = cluster.run_open_loop(again, 20);

  EXPECT_EQ(cluster.metrics().timeouts_fired, timeouts_before)
      << "something was dispatched to a membership-dead node";
  EXPECT_EQ(cluster.metrics().handoff_timeouts, handoff_timeouts_before)
      << "a distress call was sent to a membership-dead helper";
  EXPECT_EQ(cluster.metrics().node_crashes, helpers.size());

  const auto expected = reference_cell_counts(again);
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_FALSE(stats[i].partial) << "query " << i;
    EXPECT_EQ(stats[i].result_cells, expected[i]) << "query " << i;
  }
}

// ---------------------------------------------------------------------------
// Anti-entropy re-warm after an isolated restart (no partition involved).
// ---------------------------------------------------------------------------

TEST(PartitionTest, AntiEntropyRewarmsRestartedNodeBelowColdBaseline) {
  const AggregationQuery query = wide_query();
  ClusterConfig base = fault_config();
  base.suspect_ttl = 200 * sim::kMillisecond;
  const ZeroHopDht dht(base.num_nodes, base.partition_prefix_length);
  const NodeId victim =
      dht.node_for_partition(geohash::covering(query.area, 2).front());

  const auto run_scenario = [&](bool recovery) {
    ClusterConfig config = base;
    config.recovery = recovery;
    StashCluster cluster(config, shared_generator());
    cluster.run_query(query);  // warm every owner, victim included
    cluster.crash_node(victim);
    // Failover re-scans the victim's partitions on its ring successor —
    // which thereby becomes the replica holder anti-entropy pulls from.
    const QueryStats during = cluster.run_query(query);
    EXPECT_FALSE(during.partial);
    EXPECT_GT(during.failovers, 0u);

    cluster.restart_node(victim);
    cluster.loop().run();  // drain the recovery exchange, if any
    cluster.loop().run_for(2 * base.suspect_ttl);  // circuit breaker expires

    if (recovery) {
      EXPECT_GT(cluster.metrics().recoveries, 0u);
      EXPECT_GT(cluster.metrics().digests_exchanged, 0u);
      EXPECT_GT(cluster.metrics().chunks_rewarmed, 0u);
      EXPECT_GT(cluster.metrics().cells_rewarmed, 0u);
      EXPECT_GT(cluster.node_graph(victim).total_cells(), 0u)
          << "anti-entropy did not repopulate the restarted node";
    } else {
      EXPECT_EQ(cluster.metrics().chunks_rewarmed, 0u);
      EXPECT_EQ(cluster.node_graph(victim).total_cells(), 0u);
    }

    CellSummaryMap got;
    const QueryStats after = cluster.run_query(query, &got);
    EXPECT_FALSE(after.partial);
    expect_cells_equal(got, reference_cells(query));
    return after.breakdown.chunks_scanned;
  };

  const std::size_t rewarmed_scans = run_scenario(/*recovery=*/true);
  const std::size_t cold_scans = run_scenario(/*recovery=*/false);
  // The acceptance bar: post-restart storage fetches measurably below the
  // cold-restart baseline — here, eliminated entirely.
  EXPECT_GT(cold_scans, 0u) << "cold baseline scanned nothing: vacuous";
  EXPECT_EQ(rewarmed_scans, 0u);
  EXPECT_LT(rewarmed_scans, cold_scans);
}

// ---------------------------------------------------------------------------
// The front-end itself may be cut off: queries to the unreachable side must
// finish at the deadline with honest coverage, never hang.
// ---------------------------------------------------------------------------

TEST(PartitionTest, FrontendInMinorityDegradesWithinDeadline) {
  const AggregationQuery query = wide_query();
  ClusterConfig config = fault_config();
  config.query_deadline = 500 * sim::kMillisecond;
  std::vector<std::uint32_t> with_frontend = {sim::kFrontendNode, 0, 1, 2};
  std::vector<std::uint32_t> others;
  for (std::uint32_t id = 3; id < config.num_nodes; ++id) others.push_back(id);
  config.fault_plan.partitions.push_back({.groups = {with_frontend, others},
                                          .at = 1 * sim::kSecond,
                                          .heal_at = 2 * sim::kSecond});
  StashCluster cluster(config, shared_generator());

  QueryStats warm_stats;
  std::vector<QueryStats> stats;
  cluster.loop().schedule_at(0, [&] {
    cluster.submit(query, [&](const QueryStats& s) { warm_stats = s; });
  });
  for (int i = 0; i < 10; ++i)
    cluster.loop().schedule_at(
        1050 * sim::kMillisecond + i * 20 * sim::kMillisecond, [&] {
          cluster.submit(query, [&](const QueryStats& s) { stats.push_back(s); });
        });
  cluster.loop().run();
  ASSERT_EQ(stats.size(), 10u);
  EXPECT_LT(warm_stats.completed_at, 1 * sim::kSecond);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    ASSERT_GT(stats[i].deadline, 0) << "query " << i;
    EXPECT_LE(stats[i].completed_at, stats[i].deadline) << "query " << i;
  }

  // Past the heal the full answer comes back.
  cluster.loop().run_until(4 * sim::kSecond);
  CellSummaryMap got;
  const QueryStats after = cluster.run_query(query, &got);
  EXPECT_FALSE(after.partial);
  expect_cells_equal(got, reference_cells(query));
}

// ---------------------------------------------------------------------------
// Partitions are replayable chaos: same seed + plan => identical run.
// ---------------------------------------------------------------------------

TEST(PartitionTest, SameSeedSamePartitionPlanIsBitIdentical) {
  struct Fingerprint {
    std::vector<sim::SimTime> latencies;
    std::vector<std::size_t> cells;
    std::vector<bool> partial;
    std::uint64_t timeouts, failovers, retries, dropped, partitions, probes,
        rewarmed, events;
    bool operator==(const Fingerprint&) const = default;
  };

  const auto run_chaos = [](std::uint64_t fault_seed) {
    ClusterConfig config = fault_config();
    config.query_deadline = 1 * sim::kSecond;
    config.fault_plan.seed = fault_seed;
    config.fault_plan.links.push_back({.drop_probability = 0.01});
    config.fault_plan.partitions.push_back(
        {.groups = {{sim::kFrontendNode, 0, 1, 2, 3, 4, 5, 6, 7},
                    {8, 9, 10, 11, 12, 13, 14, 15}},
         .at = 200 * sim::kMillisecond,
         .heal_at = 600 * sim::kMillisecond});
    StashCluster cluster(config, shared_generator());

    Fingerprint fp;
    for (const auto& s :
         cluster.run_open_loop(burst_around(wide_query(), 50, 31), 20)) {
      fp.latencies.push_back(s.latency());
      fp.cells.push_back(s.result_cells);
      fp.partial.push_back(s.partial);
    }
    const auto& m = cluster.metrics();
    fp.timeouts = m.timeouts_fired;
    fp.failovers = m.failovers;
    fp.retries = m.subquery_retries;
    fp.dropped = m.messages_dropped;
    fp.partitions = m.partitions_observed;
    fp.probes = m.gossip_probes;
    fp.rewarmed = m.chunks_rewarmed;
    fp.events = cluster.loop().executed();
    return fp;
  };

  const Fingerprint a = run_chaos(1234);
  const Fingerprint b = run_chaos(1234);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.partitions, 1u);
  const Fingerprint c = run_chaos(4321);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace stash::cluster
