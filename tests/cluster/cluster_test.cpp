#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "common/civil_time.hpp"

namespace stash::cluster {
namespace {

using Callback = StashCluster::Callback;

AggregationQuery county_query() {
  return {{38.0, 38.6, -99.0, -97.8},
          TemporalBin(TemporalRes::Day, 2015, 2, 2).range(),
          {6, TemporalRes::Day}};
}

AggregationQuery state_query() {
  return {{36.0, 40.0, -102.0, -94.0},
          TemporalBin(TemporalRes::Day, 2015, 2, 2).range(),
          {6, TemporalRes::Day}};
}

ClusterConfig small_config(SystemMode mode = SystemMode::Stash) {
  ClusterConfig config;
  config.num_nodes = 16;  // keep tests fast; benches use 120
  config.mode = mode;
  return config;
}

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

TEST(StashClusterTest, RejectsInvalidQuery) {
  StashCluster cluster(small_config(), shared_generator());
  AggregationQuery bad = county_query();
  bad.time = {10, 5};
  EXPECT_THROW(cluster.submit(bad, Callback{}), std::invalid_argument);
}

TEST(StashClusterTest, SingleQueryCompletes) {
  StashCluster cluster(small_config(), shared_generator());
  const QueryStats stats = cluster.run_query(county_query());
  EXPECT_GT(stats.result_cells, 0u);
  EXPECT_GT(stats.latency(), 0);
  EXPECT_GE(stats.subqueries, 1u);
  EXPECT_EQ(cluster.metrics().queries_completed, 1u);
}

TEST(StashClusterTest, ResultsMatchDirectEngineEvaluation) {
  StashCluster cluster(small_config(), shared_generator());
  const auto query = state_query();
  CellSummaryMap from_cluster;
  cluster.submit(query, Callback{});
  // Recompute expected cells via a standalone engine.
  GalileoStore store(shared_generator());
  StashGraph graph;
  QueryEngine engine(graph, store);
  const Evaluation expected = engine.evaluate(query, EvalMode::Basic);

  const QueryStats stats = cluster.run_query(query);
  EXPECT_EQ(stats.result_cells, expected.cells.size());
}

TEST(StashClusterTest, RepeatQueryIsFasterAndSkipsDisk) {
  // The Fig 6a story: best-case STASH (everything resident) vs cold.
  StashCluster cluster(small_config(), shared_generator());
  const auto query = state_query();
  const QueryStats cold = cluster.run_query(query);
  const QueryStats warm = cluster.run_query(query);
  EXPECT_EQ(warm.breakdown.scan.records_scanned, 0u);
  EXPECT_EQ(warm.breakdown.chunks_scanned, 0u);
  EXPECT_LT(warm.latency(), cold.latency());
  EXPECT_EQ(warm.result_cells, cold.result_cells);
}

TEST(StashClusterTest, BasicModeNeverCaches) {
  StashCluster cluster(small_config(SystemMode::Basic), shared_generator());
  const auto query = county_query();
  const QueryStats first = cluster.run_query(query);
  const QueryStats second = cluster.run_query(query);
  EXPECT_GT(second.breakdown.scan.records_scanned, 0u);
  EXPECT_EQ(cluster.total_cached_cells(), 0u);
  EXPECT_EQ(first.result_cells, second.result_cells);
}

TEST(StashClusterTest, WorstCaseStashSlightlySlowerThanBasic) {
  // §VIII-C.2: an empty STASH graph adds lookup overhead on top of the
  // basic system's disk path.
  const auto query = state_query();
  StashCluster basic(small_config(SystemMode::Basic), shared_generator());
  const QueryStats basic_stats = basic.run_query(query);
  StashCluster stash(small_config(), shared_generator());
  const QueryStats cold_stats = stash.run_query(query);
  EXPECT_GE(cold_stats.latency(), basic_stats.latency());
  EXPECT_LT(static_cast<double>(cold_stats.latency()),
            static_cast<double>(basic_stats.latency()) * 1.25);
}

TEST(StashClusterTest, PreloadMakesFirstQueryWarm) {
  StashCluster cluster(small_config(), shared_generator());
  const auto query = county_query();
  EXPECT_GT(cluster.preload(query), 0u);
  const QueryStats stats = cluster.run_query(query);
  EXPECT_EQ(stats.breakdown.scan.records_scanned, 0u);
}

TEST(StashClusterTest, ClearCachesResets) {
  StashCluster cluster(small_config(), shared_generator());
  const auto query = county_query();
  cluster.run_query(query);
  EXPECT_GT(cluster.total_cached_cells(), 0u);
  cluster.clear_caches();
  EXPECT_EQ(cluster.total_cached_cells(), 0u);
  const QueryStats after = cluster.run_query(query);
  EXPECT_GT(after.breakdown.scan.records_scanned, 0u);
}

TEST(StashClusterTest, MaintenanceRunsOffTheResponsePath) {
  StashCluster cluster(small_config(), shared_generator());
  cluster.run_query(county_query());
  EXPECT_GT(cluster.metrics().maintenance_tasks, 0u);
  EXPECT_GT(cluster.metrics().total_maintenance_time, 0);
  // Cells were populated by maintenance even though responses went out.
  EXPECT_GT(cluster.total_cached_cells(), 0u);
}

TEST(StashClusterTest, DeterministicAcrossRuns) {
  const auto query = state_query();
  StashCluster a(small_config(), shared_generator());
  StashCluster b(small_config(), shared_generator());
  const QueryStats sa = a.run_query(query);
  const QueryStats sb = b.run_query(query);
  EXPECT_EQ(sa.latency(), sb.latency());
  EXPECT_EQ(sa.result_cells, sb.result_cells);
  EXPECT_EQ(a.loop().executed(), b.loop().executed());
}

TEST(StashClusterTest, BurstSharesTheCacheAcrossUsers) {
  // Collective caching (§V-B): many users querying the same region — later
  // responses benefit from cells cached by earlier ones.  With 8 workers
  // per node at most 8 identical queries can race the first cache fill.
  StashCluster cluster(small_config(), shared_generator());
  std::vector<AggregationQuery> burst(24, county_query());
  const auto stats = cluster.run_burst(burst);
  std::size_t total_scanned = 0;
  std::size_t pure_hits = 0;
  for (const auto& s : stats) {
    total_scanned += s.breakdown.scan.records_scanned;
    if (s.breakdown.scan.records_scanned == 0) ++pure_hits;
  }
  StashCluster solo(small_config(), shared_generator());
  const auto one = solo.run_query(county_query());
  EXPECT_LE(total_scanned, one.breakdown.scan.records_scanned * 8);
  EXPECT_GE(pure_hits, 16u);
}

TEST(StashClusterTest, InvalidateBlockForcesRescan) {
  StashCluster cluster(small_config(), shared_generator());
  const auto query = county_query();
  cluster.run_query(query);
  const QueryStats warm = cluster.run_query(query);
  ASSERT_EQ(warm.breakdown.scan.records_scanned, 0u);
  const std::string partition = geohash::encode({38.3, -98.4}, 2);
  cluster.invalidate_block(partition, days_from_civil({2015, 2, 2}));
  const QueryStats after = cluster.run_query(query);
  EXPECT_GT(after.breakdown.scan.records_scanned, 0u);
  const AuditReport audit = cluster.audit_all();
  EXPECT_TRUE(audit.ok()) << audit.to_string();
}

class HotspotTest : public ::testing::Test {
 protected:
  static ClusterConfig hotspot_config(SystemMode mode) {
    ClusterConfig config = small_config(mode);
    config.stash.hotspot_queue_threshold = 20;
    config.stash.clique_depth = 2;
    config.stash.reroute_probability = 0.7;
    return config;
  }

  static std::vector<AggregationQuery> hotspot_burst(std::size_t n) {
    // Paper §VIII-E: county-level requests randomly panning around one
    // starting point — sudden interest in a single region.
    std::vector<AggregationQuery> out;
    Rng rng(77);
    const AggregationQuery base = county_query();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      AggregationQuery q = base;
      const double dlat = base.area.height() * 0.1 * rng.uniform(-1.0, 1.0);
      const double dlng = base.area.width() * 0.1 * rng.uniform(-1.0, 1.0);
      q.area = base.area.translated(dlat, dlng);
      out.push_back(q);
    }
    return out;
  }
};

TEST_F(HotspotTest, BurstTriggersHandoffAndReroutes) {
  StashCluster cluster(hotspot_config(SystemMode::Stash), shared_generator());
  // Warm the hot region first so cliques have content to replicate.
  cluster.run_query(state_query());
  const auto stats =
      cluster.run_open_loop(hotspot_burst(300), 20 /* 20us apart */);
  EXPECT_EQ(stats.size(), 300u);
  const auto& m = cluster.metrics();
  EXPECT_GT(m.handoffs_initiated, 0u);
  EXPECT_GT(m.cliques_replicated, 0u);
  EXPECT_GT(m.cells_replicated, 0u);
  EXPECT_GT(m.reroutes, 0u);
  EXPECT_GT(cluster.total_guest_cells(), 0u);
  // Handoffs replicated cliques into guest graphs and populated routing
  // tables; every node must still pass a full structural audit.
  const AuditReport audit = cluster.audit_all();
  EXPECT_TRUE(audit.ok()) << audit.to_string();
}

TEST_F(HotspotTest, NoReplicationModeNeverHandsOff) {
  StashCluster cluster(hotspot_config(SystemMode::StashNoReplication),
                       shared_generator());
  cluster.run_query(state_query());
  cluster.run_open_loop(hotspot_burst(300), 20);
  EXPECT_EQ(cluster.metrics().handoffs_initiated, 0u);
  EXPECT_EQ(cluster.metrics().reroutes, 0u);
  EXPECT_EQ(cluster.total_guest_cells(), 0u);
}

TEST_F(HotspotTest, ReplicationImprovesBurstCompletionTime) {
  // The Fig 6d claim: with dynamic replication the burst finishes earlier.
  const auto burst = hotspot_burst(300);
  StashCluster with(hotspot_config(SystemMode::Stash), shared_generator());
  with.run_query(state_query());
  const auto stats_with = with.run_open_loop(burst, 20);

  StashCluster without(hotspot_config(SystemMode::StashNoReplication),
                       shared_generator());
  without.run_query(state_query());
  const auto stats_without = without.run_open_loop(burst, 20);

  sim::SimTime finish_with = 0;
  for (const auto& s : stats_with) finish_with = std::max(finish_with, s.completed_at);
  sim::SimTime finish_without = 0;
  for (const auto& s : stats_without)
    finish_without = std::max(finish_without, s.completed_at);
  EXPECT_LT(finish_with, finish_without);
}

TEST_F(HotspotTest, RedirectedQueriesReturnIdenticalResults) {
  const auto burst = hotspot_burst(200);
  StashCluster with(hotspot_config(SystemMode::Stash), shared_generator());
  with.run_query(state_query());
  const auto stats_with = with.run_open_loop(burst, 20);

  StashCluster without(hotspot_config(SystemMode::StashNoReplication),
                       shared_generator());
  without.run_query(state_query());
  const auto stats_without = without.run_open_loop(burst, 20);

  ASSERT_GT(with.metrics().reroutes, 0u);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    EXPECT_EQ(stats_with[i].result_cells, stats_without[i].result_cells)
        << "query " << i;
  }
}

TEST_F(HotspotTest, CooldownLimitsHandoffFrequency) {
  ClusterConfig config = hotspot_config(SystemMode::Stash);
  config.stash.hotspot_cooldown = 3600 * sim::kSecond;  // effectively once
  StashCluster cluster(config, shared_generator());
  cluster.run_query(state_query());
  cluster.run_open_loop(hotspot_burst(300), 20);
  // All subqueries target at most a few nodes; with a huge cooldown each
  // node hands off at most once.
  EXPECT_LE(cluster.metrics().handoffs_initiated, 4u);
}

}  // namespace
}  // namespace cluster::stash
