// End-to-end data integrity (ISSUE 6): a rotted storage block is detected,
// quarantined, and withheld — the query completes as an honest partial,
// never a silently-wrong answer; the scrubber repairs quarantined blocks
// and drops-and-re-pulls diverged cached replicas; corrupted wire frames
// are rejected by checksum and redelivered within a bounded budget, after
// which they are poison (dropped, never parsed).

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"
#include "geo/geohash.hpp"

namespace stash {

// This binary's instantiation of the test-peer friend: mutable access to a
// graph's chunk cells, used to simulate in-memory rot of a cached replica.
struct StashGraphTestPeer {
  static StashGraph::LevelMap& level(StashGraph& g, const Resolution& res) {
    return g.level_of(res);
  }
};

namespace cluster {
namespace {

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

AggregationQuery county_query() {
  return {{38.0, 38.6, -99.0, -97.8},
          {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
          {6, TemporalRes::Day}};
}

AggregationQuery wide_query() {
  AggregationQuery q = county_query();
  q.area = q.area.scaled(16.0);
  return q;
}

std::int64_t query_day(const AggregationQuery& q) {
  return q.time.begin / 86400;
}

ClusterConfig integrity_config() {
  ClusterConfig config;
  config.num_nodes = 16;
  config.subquery_timeout = 50 * sim::kMillisecond;
  config.retry_backoff = 5 * sim::kMillisecond;
  config.recovery_cooldown = 20 * sim::kMillisecond;
  config.suspect_ttl = 200 * sim::kMillisecond;
  // Gossip timers on the fault-test timescale (as in partition_test).
  config.membership.probe_interval = 50 * sim::kMillisecond;
  config.membership.probe_timeout = 5 * sim::kMillisecond;
  config.membership.suspicion_timeout = 100 * sim::kMillisecond;
  return config;
}

/// Reference cells from a healthy Basic-mode cluster (always disk truth).
CellSummaryMap reference_cells(const AggregationQuery& query) {
  ClusterConfig config;
  config.num_nodes = 16;
  config.mode = SystemMode::Basic;
  StashCluster cluster(config, shared_generator());
  CellSummaryMap cells;
  cluster.run_query(query, &cells);
  return cells;
}

/// Every returned cell must match the reference exactly — absent cells are
/// allowed (withheld data), wrong cells never.
void expect_subset_exact(const CellSummaryMap& got,
                         const CellSummaryMap& reference) {
  for (const auto& [key, summary] : got) {
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << "cell not in reference: " << key.label();
    EXPECT_EQ(summary, it->second) << "silently-wrong cell: " << key.label();
  }
}

void expect_cells_exact(const CellSummaryMap& got,
                        const CellSummaryMap& reference) {
  ASSERT_EQ(got.size(), reference.size());
  expect_subset_exact(got, reference);
}

TEST(IntegrityTest, MalformedBitRotTargetsFailConstructionEagerly) {
  // A bad scripted rot target should fail construction, not throw from
  // inside the event loop at fire time — and an invalid-alphabet key
  // (which no scan could ever read) is as malformed as a wrong-length one.
  for (const char* partition : {"9", "9q8", "aa", "9i", ""}) {
    ClusterConfig config = integrity_config();
    config.fault_plan.bitrot.push_back({.partition = partition, .day = 0});
    EXPECT_THROW(StashCluster(config, shared_generator()),
                 std::invalid_argument)
        << "partition " << partition;
  }
}

TEST(IntegrityTest, CorruptBlockYieldsHonestPartialNeverWrong) {
  const AggregationQuery query = wide_query();
  const auto partitions = geohash::covering(query.area, 2);
  ASSERT_GT(partitions.size(), 1u) << "need a multi-partition query";
  StashCluster cluster(integrity_config(), shared_generator());
  cluster.rot_block(partitions.front(), query_day(query));

  CellSummaryMap got;
  const QueryStats stats = cluster.run_query(query, &got);
  EXPECT_TRUE(stats.partial);
  EXPECT_GT(stats.corrupt_blocks, 0u);
  EXPECT_FALSE(got.empty()) << "healthy partitions still answer";
  expect_subset_exact(got, reference_cells(query));
  EXPECT_LT(got.size(), reference_cells(query).size())
      << "the rotted partition's cells must be withheld";

  EXPECT_TRUE(cluster.store().block_quarantined(
      {partitions.front(), query_day(query)}));
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(m.corrupt_queries, 1u);
  EXPECT_GT(m.integrity_checksum_failures, 0u);
  EXPECT_GT(m.blocks_quarantined, 0u);
  EXPECT_EQ(m.partial_queries, 1u);

  // The root span carries the corrupt_blocks tag for drill-down.
  const auto trace = cluster.trace(stats.query_id);
  ASSERT_TRUE(trace.has_value());
  bool tagged = false;
  for (const auto& span : trace->spans)
    for (const auto& [key, value] : span.tags)
      if (key == "corrupt_blocks") tagged = true;
  EXPECT_TRUE(tagged);
}

TEST(IntegrityTest, CorruptDayIsNeverCachedAsComplete) {
  const AggregationQuery query = county_query();
  const auto partitions = geohash::covering(query.area, 2);
  StashCluster cluster(integrity_config(), shared_generator());
  for (const auto& p : partitions) cluster.rot_block(p, query_day(query));

  const QueryStats first = cluster.run_query(query);
  EXPECT_TRUE(first.partial);
  // A partial day must not be absorbed as complete: the repeat query hits
  // the (still rotted) store again instead of serving a poisoned cache.
  const QueryStats second = cluster.run_query(query);
  EXPECT_TRUE(second.partial);
  EXPECT_GT(second.corrupt_blocks, 0u);
}

TEST(IntegrityTest, ScrubRepairsQuarantinedBlocksAndRerunIsExact) {
  const AggregationQuery query = wide_query();
  const auto partitions = geohash::covering(query.area, 2);
  StashCluster cluster(integrity_config(), shared_generator());
  cluster.rot_block(partitions.front(), query_day(query));
  cluster.rot_block(partitions.back(), query_day(query) + 40);  // unqueried

  const QueryStats during = cluster.run_query(query);
  EXPECT_TRUE(during.partial);

  cluster.scrub_now();
  cluster.loop().run();
  EXPECT_TRUE(cluster.store().quarantine_list().empty());
  const ClusterMetrics m = cluster.metrics();
  EXPECT_GT(m.scrub_cycles, 0u);
  // Both blocks repaired — including the one no query ever touched (the
  // scrubber's own verification pass found it).
  EXPECT_EQ(m.scrub_repairs, 2u);
  EXPECT_EQ(m.blocks_repaired, 2u);

  const std::uint64_t failures_before =
      cluster.store().integrity().checksum_failures;
  CellSummaryMap got;
  const QueryStats after = cluster.run_query(query, &got);
  EXPECT_FALSE(after.partial);
  EXPECT_EQ(after.corrupt_blocks, 0u);
  expect_cells_exact(got, reference_cells(query));
  EXPECT_EQ(cluster.store().integrity().checksum_failures, failures_before);
  EXPECT_TRUE(cluster.audit_all().ok());
}

TEST(IntegrityTest, BackgroundScrubberRepairsScriptedBitRot) {
  const AggregationQuery query = county_query();
  const auto partitions = geohash::covering(query.area, 2);
  ClusterConfig config = integrity_config();
  config.scrub_interval = 100 * sim::kMillisecond;
  for (const auto& p : partitions)
    config.fault_plan.bitrot.push_back(
        {.partition = p, .day = query_day(query), .at = 50 * sim::kMillisecond});
  StashCluster cluster(config, shared_generator());

  // No query ever touches the rot; the background scrubber alone must
  // detect, quarantine, and repair it.
  cluster.loop().run_until(1 * sim::kSecond);
  const ClusterMetrics m = cluster.metrics();
  EXPECT_EQ(cluster.faults().stats().bitrot_injected, partitions.size());
  EXPECT_GT(m.scrub_cycles, 0u);
  EXPECT_EQ(m.scrub_repairs, partitions.size());
  EXPECT_TRUE(cluster.store().quarantine_list().empty());

  CellSummaryMap got;
  const QueryStats stats = cluster.run_query(query, &got);
  EXPECT_FALSE(stats.partial);
  expect_cells_exact(got, reference_cells(query));
}

TEST(IntegrityTest, FullyCorruptedLinkPoisonsFramesButNeverCrashes) {
  // Every replication frame is bit-flipped on every (re)delivery: the
  // receiver must reject each one by checksum, exhaust the redelivery
  // budget, and count poison — without crashing or absorbing garbage.
  const AggregationQuery query = wide_query();
  ClusterConfig config = integrity_config();
  config.fault_plan.links.push_back({.corrupt_probability = 1.0});
  const ZeroHopDht dht(config.num_nodes, config.partition_prefix_length);
  const NodeId victim =
      dht.node_for_partition(geohash::covering(query.area, 2).front());
  StashCluster cluster(config, shared_generator());

  cluster.run_query(query);  // warm owners
  cluster.crash_node(victim);
  const QueryStats during = cluster.run_query(query);  // failover warms peer
  EXPECT_FALSE(during.partial);
  cluster.restart_node(victim);
  cluster.loop().run();  // drain the recovery exchange

  const ClusterMetrics m = cluster.metrics();
  EXPECT_GT(m.messages_corrupted, 0u);
  EXPECT_GT(m.frame_integrity_failures, 0u);
  EXPECT_GT(m.messages_redelivered, 0u);
  EXPECT_GT(m.poison_messages, 0u);
  EXPECT_EQ(m.chunks_rewarmed, 0u) << "no corrupt frame may be absorbed";
  EXPECT_EQ(cluster.node_graph(victim).total_cells(), 0u);

  // Correctness is unharmed: the victim just stays cold and re-scans.
  CellSummaryMap got;
  const QueryStats after = cluster.run_query(query, &got);
  EXPECT_FALSE(after.partial);
  expect_cells_exact(got, reference_cells(query));
  EXPECT_TRUE(cluster.audit_all().ok());
}

TEST(IntegrityTest, ModerateLinkCorruptionHealsThroughRedelivery) {
  // At a 30% flip rate the bounded redelivery budget almost always gets a
  // pristine copy through: re-warming succeeds despite the noise.
  const AggregationQuery query = wide_query();
  ClusterConfig config = integrity_config();
  config.fault_plan.links.push_back({.corrupt_probability = 0.3});
  config.max_redeliveries = 4;
  const ZeroHopDht dht(config.num_nodes, config.partition_prefix_length);
  const NodeId victim =
      dht.node_for_partition(geohash::covering(query.area, 2).front());
  StashCluster cluster(config, shared_generator());

  cluster.run_query(query);
  cluster.crash_node(victim);
  cluster.run_query(query);
  cluster.restart_node(victim);
  cluster.loop().run();

  const ClusterMetrics m = cluster.metrics();
  EXPECT_GT(m.frame_integrity_failures, 0u);
  EXPECT_GT(m.messages_redelivered, 0u);
  EXPECT_GT(m.chunks_rewarmed, 0u) << "redelivery should eventually succeed";
  EXPECT_GT(cluster.node_graph(victim).total_cells(), 0u);
  EXPECT_TRUE(cluster.audit_all().ok());
}

TEST(IntegrityTest, RottedCachedReplicaIsDroppedAndRepulledNotTrusted) {
  // Satellite (a) regression: a cached replica whose *content* rots in
  // memory carries a stale digest; the anti-entropy digest walk must treat
  // the mismatch as corruption — drop the chunk and re-pull it from a
  // replica holder — never trust or merge it.
  const AggregationQuery query = wide_query();
  ClusterConfig config = integrity_config();
  const ZeroHopDht dht(config.num_nodes, config.partition_prefix_length);
  const NodeId victim =
      dht.node_for_partition(geohash::covering(query.area, 2).front());
  StashCluster cluster(config, shared_generator());

  // Warm victim; crash it so failover replicates its partitions onto the
  // ring successor; restart and let anti-entropy re-warm it.
  cluster.run_query(query);
  cluster.crash_node(victim);
  cluster.run_query(query);
  cluster.restart_node(victim);
  cluster.loop().run();
  cluster.loop().run_for(2 * cluster.config().suspect_ttl);
  ASSERT_GT(cluster.node_graph(victim).total_cells(), 0u);

  // Rot the cached replica: swap the summaries of two cells in one of the
  // victim's complete chunks.  Every invariant still holds (the audit
  // stays green) — only a content digest can catch this.
  auto& graph = const_cast<StashGraph&>(cluster.node_graph(victim));
  bool tampered = false;
  for (int lvl = 0; lvl < kNumLevels && !tampered; ++lvl) {
    const Resolution res = resolution_of_level(lvl);
    for (auto& [chunk_key, data] : StashGraphTestPeer::level(graph, res)) {
      if (!graph.chunk_complete(res, chunk_key) || data.cells.size() < 2)
        continue;
      for (auto it = data.cells.begin(); it != data.cells.end() && !tampered;
           ++it)
        for (auto jt = std::next(it); jt != data.cells.end(); ++jt)
          if (!(it->second == jt->second)) {
            std::swap(it->second, jt->second);
            tampered = true;
            break;
          }
      if (tampered) break;
    }
  }
  ASSERT_TRUE(tampered) << "no swappable chunk found";
  EXPECT_TRUE(cluster.audit_all().ok()) << "tamper must be invariant-silent";

  // The rot is live: a query served from the tampered cache is silently
  // wrong — exactly what the digest walk exists to prevent.
  CellSummaryMap poisoned;
  cluster.run_query(query, &poisoned);
  EXPECT_NE(poisoned, reference_cells(query));

  const std::uint64_t divergences_before =
      cluster.metrics().replica_divergences;
  cluster.loop().run_for(cluster.config().recovery_cooldown);
  cluster.recover_node(victim);
  cluster.loop().run();
  EXPECT_GT(cluster.metrics().replica_divergences, divergences_before);

  CellSummaryMap healed;
  const QueryStats after = cluster.run_query(query, &healed);
  EXPECT_FALSE(after.partial);
  expect_cells_exact(healed, reference_cells(query));
  EXPECT_TRUE(cluster.audit_all().ok());
}

TEST(IntegrityTest, SameSeedSameCorruptionPlanIsBitIdentical) {
  const auto fingerprint = [] {
    ClusterConfig config = integrity_config();
    config.fault_plan.links.push_back(
        {.corrupt_probability = 0.4, .truncate_probability = 0.2});
    config.fault_plan.bitrot.push_back(
        {.partition = geohash::covering(wide_query().area, 2).front(),
         .day = query_day(wide_query()),
         .at = 0});
    config.scrub_interval = 200 * sim::kMillisecond;
    const ZeroHopDht dht(config.num_nodes, config.partition_prefix_length);
    const NodeId victim =
        dht.node_for_partition(geohash::covering(wide_query().area, 2)[1]);
    StashCluster cluster(config, shared_generator());
    std::vector<std::pair<sim::SimTime, std::size_t>> out;
    const auto record = [&](const QueryStats& s) {
      out.emplace_back(s.latency(), s.result_cells);
    };
    record(cluster.run_query(wide_query()));
    cluster.crash_node(victim);
    record(cluster.run_query(wide_query()));
    cluster.restart_node(victim);
    cluster.loop().run_until(2 * sim::kSecond);
    record(cluster.run_query(wide_query()));
    const ClusterMetrics m = cluster.metrics();
    out.emplace_back(0, m.frame_integrity_failures);
    out.emplace_back(0, m.poison_messages);
    out.emplace_back(0, m.scrub_repairs);
    out.emplace_back(0, m.messages_corrupted + m.messages_truncated);
    return out;
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

// ---------------------------------------------------------------------------
// Satellite (c): seed x corruption-rate property sweep.  Under any mix of
// link bit-flips, truncations, and storage bit-rot, every query is either
// byte-equal to the no-fault control or explicitly flagged partial or
// degraded — zero silently-wrong answers — and after scrub convergence the
// cluster audits clean with no residual checksum failures.
// ---------------------------------------------------------------------------

TEST(IntegrityTest, SeedByCorruptionRatePropertySweep) {
  const AggregationQuery base = county_query();
  std::vector<AggregationQuery> queries;
  queries.push_back(base);
  queries.push_back(wide_query());
  {
    // All queries stay at the scan resolution (spatial 6, Day bins): cells
    // are then disjoint across partitions and days, so results are
    // byte-reproducible — the "byte-equal to control" property is exact,
    // not approximate.
    AggregationQuery shifted = base;
    shifted.area = base.area.translated(0.4, 0.5);
    queries.push_back(shifted);
    AggregationQuery south = base;
    south.area = base.area.translated(-1.2, -0.8);
    queries.push_back(south);
  }

  // Control: the same query sequence on a fault-free cluster.
  std::vector<CellSummaryMap> control;
  {
    StashCluster cluster(integrity_config(), shared_generator());
    for (const auto& q : queries) {
      CellSummaryMap cells;
      cluster.run_query(q, &cells);
      control.push_back(std::move(cells));
    }
  }

  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const double rate : {0.0, 0.25}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " rate " +
                   std::to_string(rate));
      ClusterConfig config = integrity_config();
      config.scrub_interval = 500 * sim::kMillisecond;
      config.fault_plan.seed = seed;
      if (rate > 0.0)
        config.fault_plan.links.push_back(
            {.corrupt_probability = rate, .truncate_probability = rate / 2});
      const auto partitions = geohash::covering(base.area, 2);
      if (rate > 0.0)
        for (const auto& p : partitions)
          config.fault_plan.bitrot.push_back(
              {.partition = p, .day = query_day(base), .at = 0});
      StashCluster cluster(config, shared_generator());

      std::size_t flagged = 0;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        CellSummaryMap cells;
        const QueryStats stats = cluster.run_query(queries[i], &cells);
        if (stats.partial || stats.degraded) {
          ++flagged;
          // Never wrong: what IS returned matches the control exactly.
          expect_subset_exact(cells, control[i]);
        } else {
          expect_cells_exact(cells, control[i]);
        }
      }
      if (rate == 0.0) {
        EXPECT_EQ(flagged, 0u);
      } else {
        EXPECT_GT(flagged, 0u) << "bit-rot on queried partitions must flag";
      }

      // Scrub to convergence, then the probe re-run must be clean: exact
      // answers, zero new checksum failures, audit green.
      cluster.loop().run_for(4 * config.scrub_interval);
      EXPECT_TRUE(cluster.store().quarantine_list().empty());
      const std::uint64_t failures_before =
          cluster.store().integrity().checksum_failures;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        CellSummaryMap cells;
        const QueryStats stats = cluster.run_query(queries[i], &cells);
        EXPECT_FALSE(stats.partial);
        EXPECT_EQ(stats.corrupt_blocks, 0u);
        expect_cells_exact(cells, control[i]);
      }
      EXPECT_EQ(cluster.store().integrity().checksum_failures,
                failures_before);
      EXPECT_TRUE(cluster.audit_all().ok());
    }
  }
}

}  // namespace
}  // namespace cluster
}  // namespace stash
