// Overload robustness: admission control, deadline propagation, retry
// budgets, and hierarchy-degraded answers (DESIGN.md "Overload & graceful
// degradation").
//
// The scenarios drive a single hot partition past its owner's capacity —
// dynamic replication off, so no helper can absorb the excess — and check
// that overload surfaces as explicit, bounded behavior: shed jobs push
// back immediately, deadlines are never overrun by more than one
// scheduler tick, retry storms are capped by the token budget, and shed
// subqueries come back coarse-but-correct from cached ancestor levels.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"
#include "geo/geohash.hpp"
#include "workload/workload.hpp"

namespace stash::cluster {
namespace {

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

/// A city-sized box inside partition "9y" (central US): one subquery per
/// query, all landing on the same owner node.
AggregationQuery city_query() {
  return {{36.0, 36.2, -96.5, -96.0},
          {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
          {6, TemporalRes::Day}};
}

ClusterConfig overload_config() {
  ClusterConfig config;
  config.num_nodes = 16;
  config.mode = SystemMode::StashNoReplication;  // no handoff helpers
  return config;
}

/// Warms the requested level and its spatial ancestor so degraded answers
/// have a PLM-complete level to fall back to.
void warm_hierarchy(StashCluster& cluster, const AggregationQuery& query) {
  AggregationQuery ancestor = query;
  ancestor.area = query.area.scaled(4.0);
  ancestor.res = {5, TemporalRes::Day};
  cluster.preload(ancestor);
  cluster.preload(query);
}

std::vector<AggregationQuery> repeat_query(const AggregationQuery& q,
                                           std::size_t n) {
  return std::vector<AggregationQuery>(n, q);
}

TEST(OverloadTest, RejectNewShedsAndDegradesUnderBurst) {
  ClusterConfig config = overload_config();
  config.queue_limit = 4;
  config.admission_policy = sim::AdmissionPolicy::kRejectNew;
  StashCluster cluster(config, shared_generator());
  warm_hierarchy(cluster, city_query());

  // 64 simultaneous arrivals vs 8 workers + 4 queue slots: most are shed,
  // and every shed subquery is answered from the (complete) cached levels.
  const auto stats = cluster.run_burst(repeat_query(city_query(), 64));
  const auto& m = cluster.metrics();
  EXPECT_GT(m.subqueries_shed, 0u);
  for (const auto& s : stats) {
    EXPECT_FALSE(s.partial);
    EXPECT_EQ(s.failed_subqueries, 0u);
    ASSERT_EQ(s.coverage.size(), 1u);
    EXPECT_NE(s.coverage[0].kind, PartitionCoverage::Kind::kMissing);
  }
}

TEST(OverloadTest, DropOldestShedsQueuedWorkInstead) {
  ClusterConfig config = overload_config();
  config.queue_limit = 4;
  config.admission_policy = sim::AdmissionPolicy::kDropOldest;
  StashCluster cluster(config, shared_generator());
  warm_hierarchy(cluster, city_query());

  const auto stats = cluster.run_burst(repeat_query(city_query(), 64));
  const auto& m = cluster.metrics();
  EXPECT_GT(m.subqueries_shed, 0u);
  for (const auto& s : stats) EXPECT_FALSE(s.partial);
}

TEST(OverloadTest, DegradedAnswerServesCoarserAncestorExactly) {
  // Only the s5 ancestor is cached; the s6 burst overflows a queue of 1,
  // so shed subqueries must come back at s5 — byte-for-byte what a basic
  // cluster computes at that resolution.
  ClusterConfig config = overload_config();
  config.queue_limit = 1;
  StashCluster cluster(config, shared_generator());
  AggregationQuery ancestor = city_query();
  ancestor.area = city_query().area.scaled(4.0);
  ancestor.res = {5, TemporalRes::Day};
  cluster.preload(ancestor);

  const auto burst = repeat_query(city_query(), 12);
  std::vector<QueryStats> stats(burst.size());
  std::vector<CellSummaryMap> cells(burst.size());
  for (std::size_t i = 0; i < burst.size(); ++i)
    cluster.submit(burst[i],
                   [&stats, &cells, i](const QueryStats& s, CellSummaryMap&& c) {
                     stats[i] = s;
                     cells[i] = std::move(c);
                   });
  cluster.loop().run();

  ClusterConfig basic_config;
  basic_config.num_nodes = 16;
  basic_config.mode = SystemMode::Basic;
  StashCluster basic(basic_config, shared_generator());
  AggregationQuery coarse = city_query();
  coarse.res = {5, TemporalRes::Day};
  CellSummaryMap reference;
  basic.run_query(coarse, &reference);
  ASSERT_FALSE(reference.empty());

  std::size_t degraded = 0;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    const auto& s = stats[i];
    EXPECT_FALSE(s.partial) << "query " << i;
    ASSERT_EQ(s.coverage.size(), 1u);
    if (!s.degraded) continue;
    ++degraded;
    EXPECT_EQ(s.coverage[0].kind, PartitionCoverage::Kind::kDegraded);
    EXPECT_EQ(s.coverage[0].served_res.spatial, 5);
    EXPECT_EQ(s.coverage[0].served_res.temporal, TemporalRes::Day);
    ASSERT_EQ(cells[i].size(), reference.size()) << "query " << i;
    for (const auto& [key, summary] : reference) {
      const auto it = cells[i].find(key);
      ASSERT_NE(it, cells[i].end());
      EXPECT_EQ(it->second.observation_count(), summary.observation_count());
    }
  }
  EXPECT_GT(degraded, 0u) << "burst never triggered a degraded answer";
}

TEST(OverloadTest, DeadlineNeverOverrunByMoreThanOneTick) {
  // Property: across seeds and admission policies, no query with a
  // deadline finishes later than deadline + 1 us (the merge event lands at
  // most one scheduler tick after the cut).
  for (const auto policy : {sim::AdmissionPolicy::kRejectNew,
                            sim::AdmissionPolicy::kDropOldest}) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
      ClusterConfig config = overload_config();
      config.queue_limit = 8;
      config.admission_policy = policy;
      config.query_deadline = 5 * sim::kMillisecond;  // tight: forces cuts
      config.retry_budget = 1.0;
      config.subquery_timeout = 2 * sim::kMillisecond;
      config.seed = seed;
      StashCluster cluster(config, shared_generator());
      warm_hierarchy(cluster, city_query());

      workload::WorkloadConfig wl_config;
      wl_config.seed = seed;
      workload::WorkloadGenerator wl(wl_config);
      auto burst = wl.pan_walk(city_query(), 0.2, 200);
      const auto stats = cluster.run_open_loop(burst, 10);
      for (const auto& s : stats) {
        ASSERT_NE(s.deadline, 0);
        EXPECT_EQ(s.deadline, s.submitted_at + config.query_deadline);
        EXPECT_LE(s.completed_at, s.deadline + 1)
            << "seed " << seed << " query " << s.query_id;
      }
    }
  }
}

TEST(OverloadTest, DeadlineCutReportsMissingPartitionsHonestly) {
  // A deadline so tight that admitted (cold, disk-scanning) subqueries
  // cannot finish: the query must still complete at the deadline, flagged
  // partial, with the unfinished partitions reported as missing.
  ClusterConfig config = overload_config();
  config.query_deadline = 500;  // 0.5 ms: below the cold scan path
  config.degraded_answers = false;
  StashCluster cluster(config, shared_generator());
  const auto stats = cluster.run_query(city_query());
  EXPECT_LE(stats.completed_at, stats.deadline + 1);
  EXPECT_TRUE(stats.partial);
  EXPECT_GT(stats.deadline_subqueries, 0u);
  ASSERT_EQ(stats.coverage.size(), 1u);
  EXPECT_EQ(stats.coverage[0].kind, PartitionCoverage::Kind::kMissing);
  const auto& m = cluster.metrics();
  EXPECT_GT(m.deadline_cut_queries, 0u);
  EXPECT_GT(m.deadline_cut_subqueries, 0u);
}

TEST(OverloadTest, RetryBudgetSuppressesRetryStorm) {
  // 2x-overload burst against an unbounded queue with a tight subquery
  // timeout: the legacy config retries every timed-out attempt (a storm);
  // the budgeted config must suppress retries once tokens run out, issue
  // strictly fewer, and still drain to quiescence.
  const auto run = [](double budget) {
    ClusterConfig config = overload_config();
    config.queue_limit = 0;  // unbounded: waits grow past the timeout
    config.query_deadline = 0;
    config.retry_budget = budget;
    config.subquery_timeout = 2 * sim::kMillisecond;
    config.retry_backoff = 100;  // retries land while still overloaded
    config.retry_jitter = 0.0;
    config.failover_to_successor = false;  // keep load on the hot node
    StashCluster cluster(config, shared_generator());
    warm_hierarchy(cluster, city_query());
    // ~2x the warm-path capacity: queue waits outgrow the 2 ms timeout.
    // run_open_loop throws if anything fails to drain (quiescence guard).
    cluster.run_open_loop(repeat_query(city_query(), 600), 12);
    return cluster.metrics();
  };

  const auto storm = run(0.0);   // unlimited retries
  const auto capped = run(1.0);  // one token, refilled by successes
  ASSERT_GT(storm.subquery_retries, 0u)
      << "scenario did not provoke timeout-driven retries";
  EXPECT_EQ(storm.retries_suppressed, 0u);
  EXPECT_GT(capped.retries_suppressed, 0u);
  EXPECT_LT(capped.subquery_retries, storm.subquery_retries);
}

TEST(OverloadTest, MaxRetryBackoffClampBoundsRecoveryTime) {
  // Regression for the unbounded 2^(k-1) backoff: with the clamp, a query
  // that burns through many attempts against a dead node must not wait
  // exponentially long between the late retries.
  const auto run = [](sim::SimTime clamp) {
    ClusterConfig config;
    config.num_nodes = 16;
    config.subquery_timeout = 2 * sim::kMillisecond;
    config.subquery_max_attempts = 7;
    config.retry_backoff = 5 * sim::kMillisecond;
    config.retry_jitter = 0.0;
    config.max_retry_backoff = clamp;
    config.failover_to_successor = false;
    config.suspect_ttl = 0;  // re-target the dead owner every attempt
    StashCluster cluster(config, shared_generator());
    const ZeroHopDht dht(16, config.partition_prefix_length);
    cluster.crash_node(dht.node_for_partition("9y"));
    return cluster.run_query(city_query());
  };

  const auto clamped = run(10 * sim::kMillisecond);
  const auto unclamped = run(0);
  EXPECT_TRUE(clamped.partial);
  EXPECT_TRUE(unclamped.partial);
  // Unclamped backoffs: 5+10+20+40+80+160 ms; clamped: 5+10+10+10+10+10 ms.
  EXPECT_LT(clamped.latency(), unclamped.latency());
  EXPECT_LE(clamped.latency(),
            7 * (2 * sim::kMillisecond) + 55 * sim::kMillisecond +
                5 * sim::kMillisecond /*frontend + slack*/);
}

TEST(OverloadTest, CrashedServerNotifiesScatterImmediately) {
  // Regression for SimServer::reset() silently discarding completions: a
  // crash mid-flight must surface as an immediate kDropped pushback, not a
  // wait for the (here: enormous) subquery timeout.
  ClusterConfig config;
  config.num_nodes = 16;
  config.subquery_timeout = 300 * sim::kSecond;  // a hang would be obvious
  StashCluster cluster(config, shared_generator());
  const ZeroHopDht dht(16, config.partition_prefix_length);
  const NodeId owner = dht.node_for_partition("9y");

  std::vector<QueryStats> stats;
  for (int i = 0; i < 16; ++i)
    cluster.submit(city_query(),
                   [&stats](const QueryStats& s) { stats.push_back(s); });
  // Crash after the requests have landed (in service and queued) but long
  // before any cold scan finishes; the successor re-scans.
  cluster.loop().schedule(2 * sim::kMillisecond,
                          [&] { cluster.crash_node(owner); });
  cluster.loop().run();

  ASSERT_EQ(stats.size(), 16u);
  for (const auto& s : stats) {
    EXPECT_FALSE(s.partial);
    EXPECT_LT(s.latency(), sim::kSecond)
        << "dropped job waited for a timeout instead of pushing back";
  }
  EXPECT_GT(cluster.metrics().failovers, 0u);
}

TEST(OverloadTest, DefaultsPreserveLegacyBehavior) {
  // queue_limit=0, deadline=0, budget=0 must behave exactly like the seed:
  // nothing shed, nothing degraded, nothing suppressed.
  StashCluster cluster(overload_config(), shared_generator());
  warm_hierarchy(cluster, city_query());
  const auto stats = cluster.run_burst(repeat_query(city_query(), 64));
  const auto& m = cluster.metrics();
  EXPECT_EQ(m.subqueries_shed, 0u);
  EXPECT_EQ(m.subqueries_expired, 0u);
  EXPECT_EQ(m.degraded_subqueries, 0u);
  EXPECT_EQ(m.deadline_cut_queries, 0u);
  EXPECT_EQ(m.retries_suppressed, 0u);
  for (const auto& s : stats) {
    EXPECT_FALSE(s.partial);
    EXPECT_FALSE(s.degraded);
    EXPECT_EQ(s.deadline, 0);
  }
}

TEST(OverloadTest, DeterministicAcrossRuns) {
  // The overload machinery (shedding, degraded synthesis, deadline cuts)
  // must not break run-to-run determinism.
  const auto run = [] {
    ClusterConfig config = overload_config();
    config.queue_limit = 8;
    config.query_deadline = 5 * sim::kMillisecond;
    config.retry_budget = 1.0;
    StashCluster cluster(config, shared_generator());
    warm_hierarchy(cluster, city_query());
    return cluster.run_open_loop(repeat_query(city_query(), 200), 25);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].completed_at, b[i].completed_at) << i;
    EXPECT_EQ(a[i].result_cells, b[i].result_cells) << i;
    EXPECT_EQ(a[i].degraded, b[i].degraded) << i;
    EXPECT_EQ(a[i].partial, b[i].partial) << i;
  }
}

}  // namespace
}  // namespace stash::cluster
