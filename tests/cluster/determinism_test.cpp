// Determinism harness: the whole simulated system — caching, hotspot
// protocol, workloads — must be bit-for-bit repeatable for a fixed seed
// and sensitive to seed changes.  This is what makes the benches
// reproducible records rather than one-off measurements.

#include <gtest/gtest.h>

#include "baseline/elastic.hpp"
#include "cluster/cluster.hpp"
#include "workload/workload.hpp"

namespace stash::cluster {
namespace {

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

struct Fingerprint {
  std::vector<sim::SimTime> latencies;
  std::vector<std::size_t> cells;
  std::uint64_t events = 0;
  std::uint64_t reroutes = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_scenario(SystemMode mode, std::uint64_t cluster_seed,
                         std::uint64_t workload_seed) {
  ClusterConfig config;
  config.num_nodes = 16;
  config.mode = mode;
  config.seed = cluster_seed;
  config.stash.hotspot_queue_threshold = 20;
  StashCluster cluster(config, shared_generator());

  workload::WorkloadConfig wl_config;
  wl_config.seed = workload_seed;
  workload::WorkloadGenerator wl(wl_config);
  // A mixed scenario: a session, then a hotspot burst.
  const auto session =
      wl.panning_sequence(wl.random_query(workload::QueryGroup::State), 0.2);
  const auto burst = wl.hotspot_burst(workload::QueryGroup::County, 300, 0.1);

  Fingerprint fp;
  for (const auto& q : session) {
    const auto stats = cluster.run_query(q);
    fp.latencies.push_back(stats.latency());
    fp.cells.push_back(stats.result_cells);
  }
  // Warm the hotspot region so the burst exercises replication + rerouting
  // (a cold hotspot only hands off after its own traffic fills the cache).
  AggregationQuery warm = burst.front();
  warm.area = warm.area.scaled(16.0);
  cluster.run_query(warm);
  for (const auto& stats : cluster.run_open_loop(burst, 20)) {
    fp.latencies.push_back(stats.latency());
    fp.cells.push_back(stats.result_cells);
  }
  fp.events = cluster.loop().executed();
  fp.reroutes = cluster.metrics().reroutes;
  return fp;
}

class DeterminismTest : public ::testing::TestWithParam<SystemMode> {};

TEST_P(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  const Fingerprint a = run_scenario(GetParam(), 42, 7);
  const Fingerprint b = run_scenario(GetParam(), 42, 7);
  EXPECT_EQ(a, b);
}

TEST_P(DeterminismTest, WorkloadSeedChangesOutcome) {
  const Fingerprint a = run_scenario(GetParam(), 42, 7);
  const Fingerprint b = run_scenario(GetParam(), 42, 8);
  EXPECT_NE(a.latencies, b.latencies);
}

std::string mode_name(const ::testing::TestParamInfo<SystemMode>& param) {
  switch (param.param) {
    case SystemMode::Basic: return "Basic";
    case SystemMode::Stash: return "Stash";
    case SystemMode::StashNoReplication: return "StashNoReplication";
  }
  return "unknown";
}

INSTANTIATE_TEST_SUITE_P(Modes, DeterminismTest,
                         ::testing::Values(SystemMode::Basic, SystemMode::Stash,
                                           SystemMode::StashNoReplication),
                         mode_name);

TEST(DeterminismTest, ElasticBaselineIsDeterministic) {
  workload::WorkloadGenerator wl_a;
  workload::WorkloadGenerator wl_b;
  baseline::ElasticSearchSim es_a({}, shared_generator());
  baseline::ElasticSearchSim es_b({}, shared_generator());
  const auto queries_a =
      wl_a.panning_sequence(wl_a.random_query(workload::QueryGroup::State), 0.25);
  const auto queries_b =
      wl_b.panning_sequence(wl_b.random_query(workload::QueryGroup::State), 0.25);
  const auto stats_a = es_a.run_sequence(queries_a);
  const auto stats_b = es_b.run_sequence(queries_b);
  ASSERT_EQ(stats_a.size(), stats_b.size());
  for (std::size_t i = 0; i < stats_a.size(); ++i) {
    EXPECT_EQ(stats_a[i].latency, stats_b[i].latency);
    EXPECT_EQ(stats_a[i].result_cells, stats_b[i].result_cells);
  }
}

TEST(DeterminismTest, ReroutingActuallyHappensInFingerprint) {
  // Guard against the scenario silently losing its hotspot behavior.
  const Fingerprint fp = run_scenario(SystemMode::Stash, 42, 7);
  EXPECT_GT(fp.reroutes, 0u);
}

// Observability exports are part of the determinism contract: span trees
// carry virtual timestamps and metrics export in sorted name order, so the
// same seed + workload must yield byte-identical JSON.  This is what makes
// traces safe to check in as goldens and diff across commits.
TEST(DeterminismTest, TraceAndMetricsExportsAreByteIdentical) {
  const auto run = [] {
    ClusterConfig config;
    config.num_nodes = 16;
    config.seed = 42;
    StashCluster cluster(config, shared_generator());
    workload::WorkloadGenerator wl;
    std::vector<std::string> traces;
    for (const auto& q :
         wl.panning_sequence(wl.random_query(workload::QueryGroup::State), 0.2)) {
      const auto stats = cluster.run_query(q);
      const auto trace = cluster.trace(stats.query_id);
      EXPECT_TRUE(trace.has_value());
      if (trace.has_value()) traces.push_back(obs::to_json(*trace));
    }
    const std::string metrics = obs::to_json(
        cluster.metrics_registry().snapshot(), cluster.loop().now());
    return std::make_pair(std::move(traces), metrics);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.first.size(), b.first.size());
  for (std::size_t i = 0; i < a.first.size(); ++i)
    EXPECT_EQ(a.first[i], b.first[i]) << "trace " << i << " diverged";
  EXPECT_EQ(a.second, b.second);
  // Not vacuous: the exports carry real spans and counters.
  ASSERT_FALSE(a.first.empty());
  EXPECT_NE(a.first[0].find("\"name\":\"scatter\""), std::string::npos);
  EXPECT_NE(a.second.find("\"stash_queries_completed_total\":"),
            std::string::npos);
}

}  // namespace
}  // namespace stash::cluster
