// Elastic membership (ISSUE 10): live scale-out/scale-in with
// fault-tolerant ring rebalancing.  The properties under test:
//
//   * epoch-versioned ownership — after quiescence every partition has
//     exactly one serving owner, drawn from the installed ring;
//   * warm handoff — the old owner keeps serving until the new owner has
//     pulled the partition; the flip is atomic (queries racing it are
//     answered by whichever side holds the handoff, never neither);
//   * fault tolerance — a joiner crashing mid-transfer reverts the join, a
//     leaver crashing mid-drain is covered by successor failover, and a
//     partition during the transfer only delays the rebalance;
//   * honesty — every answer is byte-equal to a fixed-size control cluster
//     or explicitly flagged partial/degraded, across a seed sweep.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"
#include "dht/partitioner.hpp"
#include "workload/workload.hpp"

namespace stash::cluster {
namespace {

using sim::kMillisecond;
using sim::kSecond;

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

AggregationQuery county_query() {
  return {{38.0, 38.6, -99.0, -97.8},
          {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
          {6, TemporalRes::Day}};
}

AggregationQuery wide_query() {
  AggregationQuery q = county_query();
  q.area = q.area.scaled(16.0);
  return q;
}

std::vector<AggregationQuery> burst_around(const AggregationQuery& base,
                                           std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AggregationQuery> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AggregationQuery q = base;
    q.area = base.area.translated(0.1 * base.area.height() * rng.uniform(-1, 1),
                                  0.1 * base.area.width() * rng.uniform(-1, 1));
    out.push_back(q);
  }
  return out;
}

MembershipConfig fast_membership() {
  MembershipConfig m;
  m.probe_interval = 50 * sim::kMillisecond;
  m.probe_timeout = 5 * sim::kMillisecond;
  m.suspicion_timeout = 100 * sim::kMillisecond;
  return m;
}

/// Elastic config tuned to the test timescale: the watcher settles rings
/// within a few hundred simulated milliseconds.
ClusterConfig elastic_config(std::uint32_t num_nodes,
                             std::uint32_t max_nodes) {
  ClusterConfig config;
  config.num_nodes = num_nodes;
  config.max_nodes = max_nodes;
  config.membership = fast_membership();
  config.subquery_timeout = 50 * sim::kMillisecond;
  config.retry_backoff = 5 * sim::kMillisecond;
  config.ring_check_interval = 50 * kMillisecond;
  config.ring_stabilize_delay = 150 * kMillisecond;
  config.rebalance_transfer_deadline = 400 * kMillisecond;
  return config;
}

void expect_cells_equal(const CellSummaryMap& got, const CellSummaryMap& want,
                        const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (const auto& [key, summary] : want) {
    const auto it = got.find(key);
    ASSERT_NE(it, got.end()) << context << ": " << key.label();
    EXPECT_TRUE(summary.approx_equals(it->second))
        << context << ": " << key.label();
  }
}

/// Fixed-size control cluster: the oracle every elastic answer must match.
CellSummaryMap control_cells(const AggregationQuery& query) {
  ClusterConfig config;
  config.num_nodes = 16;
  config.mode = SystemMode::Basic;
  StashCluster cluster(config, shared_generator());
  CellSummaryMap cells;
  cluster.run_query(query, &cells);
  return cells;
}

std::vector<std::size_t> control_cell_counts(
    const std::vector<AggregationQuery>& queries) {
  ClusterConfig config;
  config.num_nodes = 16;
  config.mode = SystemMode::Basic;
  StashCluster cluster(config, shared_generator());
  std::vector<std::size_t> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(cluster.run_query(q).result_cells);
  return out;
}

/// Ring invariants after quiescence: members sorted/duplicate-free (via
/// audit_all), every partition's serving owner on the installed ring, and
/// successor chains enumerate the other members exactly once.
void expect_ring_invariants(const StashCluster& cluster,
                            const std::string& context) {
  const RingView& ring = cluster.ring();
  ASSERT_FALSE(ring.members.empty()) << context;
  for (const NodeId m : ring.members)
    EXPECT_LT(m, cluster.total_slots()) << context;

  // Exactly-one-owner: serving_owner is total over the keyspace and must
  // land on a ring member for every partition (no partition lost, and a
  // single authoritative owner means none is double-owned).
  ZeroHopDht keyspace(1, 2);
  std::size_t checked = 0;
  for (const auto& partition : keyspace.all_partitions()) {
    const NodeId owner = cluster.serving_owner(partition);
    EXPECT_TRUE(ring.contains(owner))
        << context << ": partition " << partition << " served by " << owner
        << " which is off-ring";
    ++checked;
  }
  EXPECT_EQ(checked, 1024u) << context;

  // Successor chains over the installed (possibly sparse) ring are
  // duplicate-free: k = 1..n-1 visits every other member exactly once.
  ZeroHopDht probe(1, 2);
  probe.install({.epoch = ring.epoch + 1, .members = ring.members});
  const std::uint32_t n = static_cast<std::uint32_t>(ring.members.size());
  for (const std::string partition : {"9q", "dn", "c2"}) {
    const NodeId owner = probe.node_for_partition(partition);
    std::set<NodeId> seen;
    for (std::uint32_t k = 1; k < n; ++k)
      seen.insert(probe.successor_for_partition(partition, k));
    EXPECT_EQ(seen.size(), n - 1) << context << ": " << partition;
    EXPECT_EQ(seen.count(owner), 0u) << context << ": " << partition;
  }
}

TEST(ElasticClusterTest, FixedSizeClusterHasNoElasticFootprint) {
  ClusterConfig config;
  config.num_nodes = 8;
  StashCluster cluster(config, shared_generator());
  cluster.run_query(county_query());
  EXPECT_EQ(cluster.ring().epoch, 0u);
  EXPECT_EQ(cluster.ring().members.size(), 8u);
  EXPECT_FALSE(cluster.rebalance_in_progress());
  const auto& m = cluster.metrics();
  EXPECT_EQ(m.rebalance_epoch_advances, 0u);
  EXPECT_EQ(m.rebalance_partitions_moved, 0u);
  EXPECT_EQ(m.rebalance_transfers_aborted, 0u);
  EXPECT_EQ(m.rebalance_ownership_reverts, 0u);
}

TEST(ElasticClusterTest, ScaleOutAdmitsStandbysAndMovesWarmPartitions) {
  StashCluster cluster(elastic_config(4, 6), shared_generator());
  cluster.run_query(wide_query());  // warm a broad footprint first
  const std::size_t warm_cells = cluster.total_cached_cells();
  ASSERT_GT(warm_cells, 0u);

  cluster.join_node(4);
  cluster.join_node(5);
  ASSERT_TRUE(cluster.run_until_stable(60 * kSecond));

  EXPECT_EQ(cluster.ring().members,
            (std::vector<NodeId>{0, 1, 2, 3, 4, 5}));
  EXPECT_GE(cluster.ring().epoch, 1u);
  const auto& m = cluster.metrics();
  EXPECT_GE(m.rebalance_epoch_advances, 1u);
  EXPECT_GT(m.rebalance_partitions_moved, 0u);
  EXPECT_EQ(m.rebalance_ownership_reverts, 0u);

  expect_ring_invariants(cluster, "scale-out");
  EXPECT_TRUE(cluster.audit_all().ok());

  // Answers after the resize are exact.
  for (const auto& q : burst_around(county_query(), 5, 21)) {
    CellSummaryMap got;
    const auto stats = cluster.run_query(q, &got);
    EXPECT_FALSE(stats.partial);
    expect_cells_equal(got, control_cells(q), "scale-out answer");
  }
}

TEST(ElasticClusterTest, ScaleInDrainsBeforeLeaving) {
  StashCluster cluster(elastic_config(6, 6), shared_generator());
  cluster.run_query(wide_query());

  cluster.decommission_node(5);
  ASSERT_TRUE(cluster.run_until_stable(60 * kSecond));

  EXPECT_EQ(cluster.ring().members, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_GE(cluster.metrics().rebalance_epoch_advances, 1u);
  EXPECT_GT(cluster.metrics().rebalance_partitions_moved, 0u);
  expect_ring_invariants(cluster, "scale-in");
  EXPECT_TRUE(cluster.audit_all().ok());

  for (const auto& q : burst_around(county_query(), 5, 22)) {
    CellSummaryMap got;
    const auto stats = cluster.run_query(q, &got);
    EXPECT_FALSE(stats.partial);
    expect_cells_equal(got, control_cells(q), "scale-in answer");
  }
}

TEST(ElasticClusterTest, DecommissionGuardsTheLastMembers) {
  StashCluster cluster(elastic_config(2, 2), shared_generator());
  cluster.decommission_node(0);
  ASSERT_TRUE(cluster.run_until_stable(30 * kSecond));
  ASSERT_EQ(cluster.ring().members.size(), 1u);
  // Draining the sole remaining member is refused outright.
  cluster.decommission_node(cluster.ring().members[0]);
  EXPECT_FALSE(cluster.rebalance_in_progress());
  EXPECT_EQ(cluster.ring().members.size(), 1u);
  EXPECT_THROW(cluster.join_node(99), std::out_of_range);
  EXPECT_THROW(cluster.decommission_node(99), std::out_of_range);
}

TEST(ElasticClusterTest, QueriesRacingTheRebalanceAreAnsweredOrFlagged) {
  // Scale out *while* an open-loop burst is in flight: scripted joins land
  // mid-burst, so queries race epoch advances and handoff flips.
  ClusterConfig config = elastic_config(3, 5);
  config.fault_plan.joins.push_back({.node = 3, .at = 100 * kMillisecond});
  config.fault_plan.joins.push_back({.node = 4, .at = 400 * kMillisecond});
  StashCluster cluster(config, shared_generator());

  // 10ms apart: the 60-query burst spans 600ms, straddling both scripted
  // joins and the epoch advances + handoff flips they trigger.
  const auto burst = burst_around(county_query(), 60, 31);
  const auto stats = cluster.run_open_loop(burst, 10 * kMillisecond);
  ASSERT_TRUE(cluster.run_until_stable(60 * kSecond));

  const auto expected = control_cell_counts(burst);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    if (stats[i].partial || stats[i].degraded) continue;  // honestly flagged
    EXPECT_EQ(stats[i].result_cells, expected[i]) << "query " << i;
  }
  EXPECT_EQ(cluster.ring().members, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  expect_ring_invariants(cluster, "racing");
  EXPECT_TRUE(cluster.audit_all().ok());
}

TEST(ElasticClusterTest, JoinerCrashMidTransferRevertsOwnership) {
  // The joiner dies while its inbound transfers are in flight: the join is
  // reverted (old owners keep serving, the next epoch drops the corpse)
  // and no partition is ever routed to the dead node.
  ClusterConfig config = elastic_config(3, 4);
  config.fault_plan.joins.push_back({.node = 3, .at = 100 * kMillisecond});
  // Slow every hop into the joiner so its inbound transfers are provably
  // still in flight at the crash — without this the ms-scale transfers can
  // all flip before 450ms and node 3 dies as an *established* member
  // (which failover, not revert, would cover).
  config.fault_plan.links.push_back(
      {.to = 3, .extra_latency = 300 * kMillisecond});
  config.fault_plan.crashes.push_back(
      {.node = 3, .at = 450 * kMillisecond});  // mid-transfer
  StashCluster cluster(config, shared_generator());

  // 15ms apart: the burst spans 600ms, straddling the join, the slowed
  // transfers, and the crash-triggered revert.
  const auto burst = burst_around(county_query(), 40, 41);
  const auto stats = cluster.run_open_loop(burst, 15 * kMillisecond);
  ASSERT_TRUE(cluster.run_until_stable(60 * kSecond));

  // Quiesced ring must exclude the crashed joiner.
  EXPECT_EQ(cluster.ring().members, (std::vector<NodeId>{0, 1, 2}));
  expect_ring_invariants(cluster, "joiner-crash");
  EXPECT_TRUE(cluster.audit_all().ok());

  const auto expected = control_cell_counts(burst);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    if (stats[i].partial || stats[i].degraded) continue;
    EXPECT_EQ(stats[i].result_cells, expected[i]) << "query " << i;
  }
  // Post-quiescence queries are exact again.
  CellSummaryMap got;
  const auto after = cluster.run_query(county_query(), &got);
  EXPECT_FALSE(after.partial);
  expect_cells_equal(got, control_cells(county_query()), "post-revert");
}

TEST(ElasticClusterTest, AutoscaleGrowsUnderLoadAndShrinksWhenIdle) {
  ClusterConfig config = elastic_config(2, 4);
  // Slim servers so the heavy burst genuinely outruns service capacity:
  // one worker per node and a 2ms fixed cost per subquery mean 1000 qps
  // across 2 nodes piles up real queues.
  config.workers_per_node = 1;
  config.subquery_overhead = 2 * kMillisecond;
  config.autoscale.enabled = true;
  config.autoscale.eval_interval = 50 * kMillisecond;
  config.autoscale.high_queue = 3;
  config.autoscale.high_shed_delta = 4;
  config.autoscale.low_queue = 1;
  config.autoscale.hysteresis_ticks = 2;
  config.autoscale.cooldown = 500 * kMillisecond;
  config.autoscale.min_nodes = 2;
  StashCluster cluster(config, shared_generator());

  // Sustained overload on 2 nodes: queue high-water marks keep growing past
  // the high watermark for consecutive evaluation ticks, so the policy
  // admits standbys.
  const auto heavy = burst_around(county_query(), 300, 51);
  cluster.run_open_loop(heavy, 1 * kMillisecond);
  ASSERT_TRUE(cluster.run_until_stable(120 * kSecond));
  const std::size_t grown = cluster.ring().members.size();
  EXPECT_GT(grown, 2u) << "autoscaler never scaled out under overload";
  expect_ring_invariants(cluster, "autoscale-grown");
  EXPECT_TRUE(cluster.audit_all().ok());

  // A long idle trickle drives the low watermark: the policy drains nodes
  // back down, but never below min_nodes.
  // 500ms apart: 20 seconds of genuinely idle ticks between queries.
  const auto trickle = burst_around(county_query(), 40, 52);
  cluster.run_open_loop(trickle, 500 * kMillisecond);
  ASSERT_TRUE(cluster.run_until_stable(120 * kSecond));
  EXPECT_LT(cluster.ring().members.size(), grown)
      << "autoscaler never scaled in when idle";
  EXPECT_GE(cluster.ring().members.size(), 2u);
  expect_ring_invariants(cluster, "autoscale-shrunk");
  EXPECT_TRUE(cluster.audit_all().ok());

  // Answers stay exact through the full grow/shrink cycle.
  CellSummaryMap got;
  const auto stats = cluster.run_query(county_query(), &got);
  EXPECT_FALSE(stats.partial);
  expect_cells_equal(got, control_cells(county_query()), "autoscale answer");
}

// The ISSUE-mandated property sweep: seeds x {scale-out, scale-in,
// autoscale} x {none, crash-mid-transfer, partition-mid-transfer}.  Every
// combination must quiesce with a clean audit, exactly one live owner per
// partition, and answers byte-equal to the control cluster or honestly
// flagged.
enum class Scenario { kScaleOut, kScaleIn, kAutoscale };
enum class Adversity { kNone, kCrash, kPartition };

const char* name_of(Scenario s) {
  switch (s) {
    case Scenario::kScaleOut: return "scale-out";
    case Scenario::kScaleIn: return "scale-in";
    case Scenario::kAutoscale: return "autoscale";
  }
  return "?";
}
const char* name_of(Adversity a) {
  switch (a) {
    case Adversity::kNone: return "none";
    case Adversity::kCrash: return "crash";
    case Adversity::kPartition: return "partition";
  }
  return "?";
}

TEST(ElasticClusterTest, PropertySweepSeedsByScenarioByAdversity) {
  const auto queries = burst_around(county_query(), 20, 61);
  const auto expected = control_cell_counts(queries);

  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const Scenario scenario :
         {Scenario::kScaleOut, Scenario::kScaleIn, Scenario::kAutoscale}) {
      for (const Adversity adversity :
           {Adversity::kNone, Adversity::kCrash, Adversity::kPartition}) {
        const std::string context = std::string(name_of(scenario)) + "/" +
                                    name_of(adversity) + "/seed" +
                                    std::to_string(seed);
        ClusterConfig config = elastic_config(3, 5);
        config.fault_plan.seed = seed;
        // `mover` is the node whose membership changes — and the one the
        // adversity targets mid-transfer.
        NodeId mover = 0;
        switch (scenario) {
          case Scenario::kScaleOut:
            mover = 3;
            config.fault_plan.joins.push_back(
                {.node = mover, .at = 100 * kMillisecond});
            break;
          case Scenario::kScaleIn:
            mover = 2;
            config.fault_plan.decommissions.push_back(
                {.node = mover, .at = 100 * kMillisecond});
            break;
          case Scenario::kAutoscale:
            mover = 1;  // an established member weathers the adversity
            config.autoscale.enabled = true;
            config.autoscale.eval_interval = 50 * kMillisecond;
            config.autoscale.high_queue = 3;
            config.autoscale.hysteresis_ticks = 2;
            config.autoscale.cooldown = 500 * kMillisecond;
            config.autoscale.min_nodes = 2;
            break;
        }
        switch (adversity) {
          case Adversity::kNone:
            break;
          case Adversity::kCrash:
            config.fault_plan.crashes.push_back(
                {.node = mover, .at = 500 * kMillisecond});
            break;
          case Adversity::kPartition: {
            std::vector<std::uint32_t> rest = {sim::kFrontendNode};
            for (NodeId n = 0; n < 5; ++n)
              if (n != mover) rest.push_back(n);
            config.fault_plan.partitions.push_back(
                {.groups = {{mover}, rest},
                 .at = 300 * kMillisecond,
                 .heal_at = 900 * kMillisecond});
            break;
          }
        }

        StashCluster cluster(config, shared_generator());
        const auto stats = cluster.run_open_loop(queries, 25 * kMillisecond);
        ASSERT_TRUE(cluster.run_until_stable(120 * kSecond)) << context;

        // Zero partitions lost or double-owned; ring well-formed.
        expect_ring_invariants(cluster, context);
        const auto report = cluster.audit_all();
        EXPECT_TRUE(report.ok()) << context << "\n" << report.to_string();

        // Every racing answer byte-equal to the control, or honestly
        // flagged partial/degraded.
        for (std::size_t i = 0; i < queries.size(); ++i) {
          if (stats[i].partial || stats[i].degraded) continue;
          EXPECT_EQ(stats[i].result_cells, expected[i])
              << context << " query " << i;
        }

        // Post-quiescence, answers are exact everywhere (a crashed
        // *established* member may still be down, which can only surface
        // as an honest partial, never a wrong answer).
        CellSummaryMap got;
        const auto after = cluster.run_query(queries[0], &got);
        if (!after.partial && !after.degraded)
          expect_cells_equal(got, control_cells(queries[0]), context);

        // Counter sanity: flips never exceed planned moves, epochs moved
        // whenever partitions did.
        const auto& m = cluster.metrics();
        if (m.rebalance_partitions_moved > 0) {
          EXPECT_GE(m.rebalance_epoch_advances, 1u) << context;
        }
      }
    }
  }
}

}  // namespace
}  // namespace stash::cluster
