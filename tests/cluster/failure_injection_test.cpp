// Failure and adversity injection for the distributed paths: purged
// replicas, rejected helpers, starved caches, and mid-burst ingest must
// degrade gracefully and never corrupt results.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"
#include "workload/workload.hpp"

namespace stash::cluster {
namespace {

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

AggregationQuery county_query() {
  return {{38.0, 38.6, -99.0, -97.8},
          {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
          {6, TemporalRes::Day}};
}

std::vector<AggregationQuery> burst_around(const AggregationQuery& base,
                                           std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AggregationQuery> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AggregationQuery q = base;
    q.area = base.area.translated(0.1 * base.area.height() * rng.uniform(-1, 1),
                                  0.1 * base.area.width() * rng.uniform(-1, 1));
    out.push_back(q);
  }
  return out;
}

ClusterConfig hot_config() {
  ClusterConfig config;
  config.num_nodes = 16;
  config.stash.hotspot_queue_threshold = 20;
  config.stash.reroute_probability = 0.7;
  return config;
}

/// Reference results for a set of queries from a plain basic-mode cluster.
std::vector<std::size_t> reference_cell_counts(
    const std::vector<AggregationQuery>& queries) {
  ClusterConfig config;
  config.num_nodes = 16;
  config.mode = SystemMode::Basic;
  StashCluster cluster(config, shared_generator());
  std::vector<std::size_t> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(cluster.run_query(q).result_cells);
  return out;
}

TEST(FailureInjectionTest, GuestPurgeTriggersFallbackNotCorruption) {
  // Replicas expire at the helper while routing entries survive: redirected
  // queries must fall back to the owner and still answer correctly.
  ClusterConfig config = hot_config();
  config.stash.guest_ttl = 1;           // guests purge almost immediately
  config.stash.routing_ttl = 3600 * sim::kSecond;  // routing stays "fresh"
  StashCluster cluster(config, shared_generator());

  AggregationQuery warm = county_query();
  warm.area = warm.area.scaled(16.0);
  cluster.run_query(warm);
  const auto burst = burst_around(county_query(), 300, 11);
  const auto stats = cluster.run_open_loop(burst, 20);

  const auto& m = cluster.metrics();
  ASSERT_GT(m.reroutes, 0u) << "scenario did not exercise rerouting";
  EXPECT_GT(m.guest_fallbacks, 0u) << "purged guests should force fallbacks";
  const auto expected = reference_cell_counts(burst);
  for (std::size_t i = 0; i < burst.size(); ++i)
    EXPECT_EQ(stats[i].result_cells, expected[i]) << "query " << i;
}

TEST(FailureInjectionTest, AllHelpersRefuseWhenGuestCapacityZero) {
  ClusterConfig config = hot_config();
  config.stash.guest_capacity_cells = 0;  // nobody can host replicas
  StashCluster cluster(config, shared_generator());
  AggregationQuery warm = county_query();
  warm.area = warm.area.scaled(16.0);
  cluster.run_query(warm);
  const auto burst = burst_around(county_query(), 300, 13);
  const auto stats = cluster.run_open_loop(burst, 20);

  const auto& m = cluster.metrics();
  EXPECT_GT(m.handoffs_initiated, 0u);
  EXPECT_EQ(m.cliques_replicated, 0u);
  EXPECT_GT(m.distress_rejections, 0u);
  EXPECT_EQ(m.reroutes, 0u);
  // The hotspot is slower but every answer is still produced and correct.
  const auto expected = reference_cell_counts(burst);
  for (std::size_t i = 0; i < burst.size(); ++i)
    EXPECT_EQ(stats[i].result_cells, expected[i]) << "query " << i;
}

TEST(FailureInjectionTest, StarvedCacheStillAnswersCorrectly) {
  // A pathologically small cache (smaller than a single query) must not
  // break correctness — only performance.
  ClusterConfig config;
  config.num_nodes = 16;
  config.stash.max_cells = 4;
  config.stash.safe_limit_fraction = 0.5;
  StashCluster cluster(config, shared_generator());
  const auto queries = burst_around(county_query(), 10, 17);
  const auto expected = reference_cell_counts(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto stats = cluster.run_query(queries[i]);
    EXPECT_EQ(stats.result_cells, expected[i]) << "query " << i;
  }
  EXPECT_LE(cluster.total_cached_cells(), 4u);
}

TEST(FailureInjectionTest, IngestDuringHotspotKeepsResultsFresh) {
  ClusterConfig config = hot_config();
  StashCluster cluster(config, shared_generator());
  AggregationQuery warm = county_query();
  warm.area = warm.area.scaled(16.0);
  cluster.run_query(warm);

  // Hotspot, then an ingest, then more traffic: post-ingest queries must
  // see version-1 data even where replicas/caches held version-0 cells.
  cluster.run_open_loop(burst_around(county_query(), 200, 19), 20);
  const std::string partition = geohash::encode({38.3, -98.4}, 2);
  cluster.ingest_update(partition, days_from_civil({2015, 2, 2}));

  CellSummaryMap after;
  cluster.run_query(county_query(), &after);

  ClusterConfig fresh_config;
  fresh_config.num_nodes = 16;
  fresh_config.mode = SystemMode::Basic;
  StashCluster fresh(fresh_config, shared_generator());
  fresh.ingest_update(partition, days_from_civil({2015, 2, 2}));
  CellSummaryMap expected;
  fresh.run_query(county_query(), &expected);

  ASSERT_EQ(after.size(), expected.size());
  for (const auto& [key, summary] : expected) {
    const auto it = after.find(key);
    ASSERT_NE(it, after.end()) << key.label();
    EXPECT_TRUE(summary.approx_equals(it->second)) << key.label();
  }
}

TEST(FailureInjectionTest, DiscardPayloadKeepsCountsExact) {
  const auto queries = burst_around(county_query(), 20, 23);
  ClusterConfig config;
  config.num_nodes = 16;
  StashCluster normal(config, shared_generator());
  config.discard_payload = true;
  StashCluster discarding(config, shared_generator());
  const auto a = normal.run_burst(queries);
  const auto b = discarding.run_burst(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(a[i].result_cells, b[i].result_cells) << i;
    EXPECT_EQ(a[i].latency(), b[i].latency()) << i;
  }
}

TEST(FailureInjectionTest, ZeroDataRegionsUnderAllModes) {
  // Mid-ocean queries: no records anywhere; every mode must agree on the
  // empty answer and never touch data it does not have.
  AggregationQuery ocean = county_query();
  ocean.area = {-10.0, -9.4, -30.0, -28.8};
  for (SystemMode mode : {SystemMode::Basic, SystemMode::Stash,
                          SystemMode::StashNoReplication}) {
    ClusterConfig config;
    config.num_nodes = 16;
    config.mode = mode;
    StashCluster cluster(config, shared_generator());
    const auto first = cluster.run_query(ocean);
    const auto second = cluster.run_query(ocean);
    EXPECT_EQ(first.result_cells, 0u);
    EXPECT_EQ(second.result_cells, 0u);
    if (mode != SystemMode::Basic) {
      EXPECT_EQ(second.breakdown.chunks_scanned, 0u)
          << "known-empty chunks should be cached";
    }
  }
}

}  // namespace
}  // namespace stash::cluster
