// Failure and adversity injection for the distributed paths: purged
// replicas, rejected helpers, starved caches, and mid-burst ingest must
// degrade gracefully and never corrupt results.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"
#include "geo/geohash.hpp"
#include "workload/workload.hpp"

namespace stash::cluster {
namespace {

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

AggregationQuery county_query() {
  return {{38.0, 38.6, -99.0, -97.8},
          {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
          {6, TemporalRes::Day}};
}

std::vector<AggregationQuery> burst_around(const AggregationQuery& base,
                                           std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AggregationQuery> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AggregationQuery q = base;
    q.area = base.area.translated(0.1 * base.area.height() * rng.uniform(-1, 1),
                                  0.1 * base.area.width() * rng.uniform(-1, 1));
    out.push_back(q);
  }
  return out;
}

ClusterConfig hot_config() {
  ClusterConfig config;
  config.num_nodes = 16;
  config.stash.hotspot_queue_threshold = 20;
  config.stash.reroute_probability = 0.7;
  return config;
}

/// Reference results for a set of queries from a plain basic-mode cluster.
std::vector<std::size_t> reference_cell_counts(
    const std::vector<AggregationQuery>& queries) {
  ClusterConfig config;
  config.num_nodes = 16;
  config.mode = SystemMode::Basic;
  StashCluster cluster(config, shared_generator());
  std::vector<std::size_t> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(cluster.run_query(q).result_cells);
  return out;
}

TEST(FailureInjectionTest, GuestPurgeTriggersFallbackNotCorruption) {
  // Replicas expire at the helper while routing entries survive: redirected
  // queries must fall back to the owner and still answer correctly.
  ClusterConfig config = hot_config();
  config.stash.guest_ttl = 1;           // guests purge almost immediately
  config.stash.routing_ttl = 3600 * sim::kSecond;  // routing stays "fresh"
  StashCluster cluster(config, shared_generator());

  AggregationQuery warm = county_query();
  warm.area = warm.area.scaled(16.0);
  cluster.run_query(warm);
  const auto burst = burst_around(county_query(), 300, 11);
  const auto stats = cluster.run_open_loop(burst, 20);

  const auto& m = cluster.metrics();
  ASSERT_GT(m.reroutes, 0u) << "scenario did not exercise rerouting";
  EXPECT_GT(m.guest_fallbacks, 0u) << "purged guests should force fallbacks";
  const auto expected = reference_cell_counts(burst);
  for (std::size_t i = 0; i < burst.size(); ++i)
    EXPECT_EQ(stats[i].result_cells, expected[i]) << "query " << i;
}

TEST(FailureInjectionTest, AllHelpersRefuseWhenGuestCapacityZero) {
  ClusterConfig config = hot_config();
  config.stash.guest_capacity_cells = 0;  // nobody can host replicas
  StashCluster cluster(config, shared_generator());
  AggregationQuery warm = county_query();
  warm.area = warm.area.scaled(16.0);
  cluster.run_query(warm);
  const auto burst = burst_around(county_query(), 300, 13);
  const auto stats = cluster.run_open_loop(burst, 20);

  const auto& m = cluster.metrics();
  EXPECT_GT(m.handoffs_initiated, 0u);
  EXPECT_EQ(m.cliques_replicated, 0u);
  EXPECT_GT(m.distress_rejections, 0u);
  EXPECT_EQ(m.reroutes, 0u);
  // The hotspot is slower but every answer is still produced and correct.
  const auto expected = reference_cell_counts(burst);
  for (std::size_t i = 0; i < burst.size(); ++i)
    EXPECT_EQ(stats[i].result_cells, expected[i]) << "query " << i;
}

TEST(FailureInjectionTest, StarvedCacheStillAnswersCorrectly) {
  // A pathologically small cache (smaller than a single query) must not
  // break correctness — only performance.
  ClusterConfig config;
  config.num_nodes = 16;
  config.stash.max_cells = 4;
  config.stash.safe_limit_fraction = 0.5;
  StashCluster cluster(config, shared_generator());
  const auto queries = burst_around(county_query(), 10, 17);
  const auto expected = reference_cell_counts(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto stats = cluster.run_query(queries[i]);
    EXPECT_EQ(stats.result_cells, expected[i]) << "query " << i;
  }
  EXPECT_LE(cluster.total_cached_cells(), 4u);
}

TEST(FailureInjectionTest, IngestDuringHotspotKeepsResultsFresh) {
  ClusterConfig config = hot_config();
  StashCluster cluster(config, shared_generator());
  AggregationQuery warm = county_query();
  warm.area = warm.area.scaled(16.0);
  cluster.run_query(warm);

  // Hotspot, then an ingest, then more traffic: post-ingest queries must
  // see version-1 data even where replicas/caches held version-0 cells.
  cluster.run_open_loop(burst_around(county_query(), 200, 19), 20);
  const std::string partition = geohash::encode({38.3, -98.4}, 2);
  cluster.ingest_update(partition, days_from_civil({2015, 2, 2}));

  CellSummaryMap after;
  cluster.run_query(county_query(), &after);

  ClusterConfig fresh_config;
  fresh_config.num_nodes = 16;
  fresh_config.mode = SystemMode::Basic;
  StashCluster fresh(fresh_config, shared_generator());
  fresh.ingest_update(partition, days_from_civil({2015, 2, 2}));
  CellSummaryMap expected;
  fresh.run_query(county_query(), &expected);

  ASSERT_EQ(after.size(), expected.size());
  for (const auto& [key, summary] : expected) {
    const auto it = after.find(key);
    ASSERT_NE(it, after.end()) << key.label();
    EXPECT_TRUE(summary.approx_equals(it->second)) << key.label();
  }
}

TEST(FailureInjectionTest, DiscardPayloadKeepsCountsExact) {
  const auto queries = burst_around(county_query(), 20, 23);
  ClusterConfig config;
  config.num_nodes = 16;
  StashCluster normal(config, shared_generator());
  config.discard_payload = true;
  StashCluster discarding(config, shared_generator());
  const auto a = normal.run_burst(queries);
  const auto b = discarding.run_burst(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(a[i].result_cells, b[i].result_cells) << i;
    EXPECT_EQ(a[i].latency(), b[i].latency()) << i;
  }
}

TEST(FailureInjectionTest, ZeroDataRegionsUnderAllModes) {
  // Mid-ocean queries: no records anywhere; every mode must agree on the
  // empty answer and never touch data it does not have.
  AggregationQuery ocean = county_query();
  ocean.area = {-10.0, -9.4, -30.0, -28.8};
  for (SystemMode mode : {SystemMode::Basic, SystemMode::Stash,
                          SystemMode::StashNoReplication}) {
    ClusterConfig config;
    config.num_nodes = 16;
    config.mode = mode;
    StashCluster cluster(config, shared_generator());
    const auto first = cluster.run_query(ocean);
    const auto second = cluster.run_query(ocean);
    EXPECT_EQ(first.result_cells, 0u);
    EXPECT_EQ(second.result_cells, 0u);
    if (mode != SystemMode::Basic) {
      EXPECT_EQ(second.breakdown.chunks_scanned, 0u)
          << "known-empty chunks should be cached";
    }
  }
}

// ---------------------------------------------------------------------------
// Node-crash fault injection: the scatter/gather must degrade, never hang.
// ---------------------------------------------------------------------------

/// Fault-test defaults: tight timeouts so scripted crashes resolve fast.
ClusterConfig fault_config() {
  ClusterConfig config;
  config.num_nodes = 16;
  config.subquery_timeout = 50 * sim::kMillisecond;
  config.retry_backoff = 5 * sim::kMillisecond;
  return config;
}

AggregationQuery wide_query() {
  AggregationQuery q = county_query();
  q.area = q.area.scaled(16.0);
  return q;
}

void expect_cells_equal(const CellSummaryMap& got, const CellSummaryMap& want) {
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [key, summary] : want) {
    const auto it = got.find(key);
    ASSERT_NE(it, got.end()) << key.label();
    EXPECT_TRUE(summary.approx_equals(it->second)) << key.label();
  }
}

/// Full-query reference cells from a healthy Basic-mode cluster.
CellSummaryMap reference_cells(const AggregationQuery& query) {
  ClusterConfig config;
  config.num_nodes = 16;
  config.mode = SystemMode::Basic;
  StashCluster cluster(config, shared_generator());
  CellSummaryMap cells;
  cluster.run_query(query, &cells);
  return cells;
}

TEST(FaultToleranceTest, CrashDuringScatterYieldsExactLivePartitionSubset) {
  // One owner is dead and stays dead; failover is off, so its partitions
  // exhaust their attempts.  The query must still complete, flagged
  // partial, and every returned Cell must match the Basic-mode reference
  // for the partitions that were alive — degraded, never corrupted.
  const AggregationQuery query = wide_query();
  const auto partitions = geohash::covering(query.area, 2);
  ASSERT_GT(partitions.size(), 1u) << "scenario needs a multi-partition scatter";

  ClusterConfig config = fault_config();
  config.failover_to_successor = false;
  config.subquery_max_attempts = 2;
  const ZeroHopDht dht(config.num_nodes, config.partition_prefix_length);
  const NodeId victim = dht.node_for_partition(partitions.front());
  config.fault_plan.crashes.push_back({.node = victim, .at = 0});
  StashCluster cluster(config, shared_generator());

  CellSummaryMap got;
  const QueryStats stats = cluster.run_query(query, &got);

  std::size_t dead_partitions = 0;
  for (const auto& p : partitions)
    if (dht.node_for_partition(p) == victim) ++dead_partitions;
  ASSERT_GT(dead_partitions, 0u);

  EXPECT_TRUE(stats.partial);
  EXPECT_EQ(stats.failed_subqueries, dead_partitions);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(cluster.metrics().node_crashes, 1u);
  EXPECT_EQ(cluster.metrics().partial_queries, 1u);
  EXPECT_GT(cluster.metrics().timeouts_fired, 0u);

  // Live-partition subset of the full Basic-mode reference, exactly.
  CellSummaryMap expected;
  for (auto& [key, summary] : reference_cells(query)) {
    const std::string partition = key.geohash_str().substr(0, 2);
    if (dht.node_for_partition(partition) != victim)
      expected.emplace(key, summary);
  }
  ASSERT_LT(expected.size(), reference_cells(query).size())
      << "victim owned no data: scenario is vacuous";
  expect_cells_equal(got, expected);
}

TEST(FaultToleranceTest, FailoverServesDeadOwnersPartitionsFromStorage) {
  // With successor failover on (the default), a crashed owner degrades
  // latency only: the next live ring node re-scans the partition from the
  // durable store and the results stay complete and exact.
  const AggregationQuery query = wide_query();
  ClusterConfig config = fault_config();
  const ZeroHopDht dht(config.num_nodes, config.partition_prefix_length);
  const NodeId victim =
      dht.node_for_partition(geohash::covering(query.area, 2).front());
  config.fault_plan.crashes.push_back({.node = victim, .at = 0});
  StashCluster cluster(config, shared_generator());

  CellSummaryMap got;
  const QueryStats stats = cluster.run_query(query, &got);
  EXPECT_FALSE(stats.partial);
  EXPECT_EQ(stats.failed_subqueries, 0u);
  EXPECT_GT(stats.failovers, 0u);
  expect_cells_equal(got, reference_cells(query));

  // The circuit breaker remembers: a second query fails over on its first
  // attempt instead of paying the timeout again.
  EXPECT_TRUE(cluster.node_suspected(victim));
  CellSummaryMap again;
  const QueryStats repeat = cluster.run_query(query, &again);
  EXPECT_FALSE(repeat.partial);
  EXPECT_EQ(repeat.retries, 0u);
  EXPECT_GT(repeat.failovers, 0u);
  expect_cells_equal(again, reference_cells(query));
}

TEST(FaultToleranceTest, CrashThenRestartConvergesToFullResults) {
  // Failover off: retries keep knocking on the owner until it restarts
  // cold, then the partition is re-scanned from storage — full results.
  const AggregationQuery query = wide_query();
  ClusterConfig config = fault_config();
  config.failover_to_successor = false;
  config.subquery_max_attempts = 8;
  config.retry_backoff = 500 * sim::kMillisecond;
  const ZeroHopDht dht(config.num_nodes, config.partition_prefix_length);
  const NodeId victim =
      dht.node_for_partition(geohash::covering(query.area, 2).front());
  config.fault_plan.crashes.push_back(
      {.node = victim, .at = 0, .restart_at = 5 * sim::kSecond});
  StashCluster cluster(config, shared_generator());

  CellSummaryMap got;
  const QueryStats stats = cluster.run_query(query, &got);
  EXPECT_FALSE(stats.partial);
  EXPECT_EQ(stats.failed_subqueries, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(cluster.metrics().node_restarts, 1u);
  EXPECT_TRUE(cluster.node_alive(victim));
  expect_cells_equal(got, reference_cells(query));
}

TEST(FaultToleranceTest, TimersDisabledCrashFailsLoudlyNotSilently) {
  // Legacy behavior (no timeouts) + a dead owner used to hang run_query
  // forever; the quiescence guard now turns that into a loud error.
  ClusterConfig config = fault_config();
  config.subquery_timeout = 0;
  const ZeroHopDht dht(config.num_nodes, config.partition_prefix_length);
  const NodeId victim =
      dht.node_for_partition(geohash::covering(wide_query().area, 2).front());
  config.fault_plan.crashes.push_back({.node = victim, .at = 0});
  StashCluster cluster(config, shared_generator());
  EXPECT_THROW(cluster.run_query(wide_query()), std::runtime_error);
}

TEST(FaultToleranceTest, MessageLossIsAbsorbedByRetries) {
  // 2% loss on every link: retries make every query complete and correct;
  // the drops and retries are visible in the metrics.
  ClusterConfig config = fault_config();
  config.subquery_timeout = 500 * sim::kMillisecond;
  config.fault_plan.links.push_back({.drop_probability = 0.02});
  StashCluster cluster(config, shared_generator());

  const auto burst = burst_around(county_query(), 150, 29);
  const auto stats = cluster.run_open_loop(burst, 20);
  const auto expected = reference_cell_counts(burst);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    EXPECT_FALSE(stats[i].partial) << "query " << i;
    EXPECT_EQ(stats[i].result_cells, expected[i]) << "query " << i;
  }
  EXPECT_GT(cluster.metrics().messages_dropped, 0u);
  EXPECT_GT(cluster.metrics().subquery_retries, 0u);
  EXPECT_EQ(cluster.metrics().node_crashes, 0u);
}

TEST(FaultToleranceTest, HelperCrashDuringHandoffRetriesViaNackPath) {
  // Phase 1 (healthy): find which nodes end up hosting guest replicas.
  ClusterConfig config = hot_config();
  config.subquery_timeout = 2 * sim::kSecond;
  config.handoff_timeout = 100 * sim::kMillisecond;
  const auto warm = wide_query();
  const auto burst = burst_around(county_query(), 300, 11);

  std::vector<NodeId> helpers;
  {
    StashCluster healthy(config, shared_generator());
    healthy.run_query(warm);
    healthy.run_open_loop(burst, 20);
    ASSERT_GT(healthy.metrics().cliques_replicated, 0u)
        << "scenario never handed off: nothing to crash";
    for (NodeId id = 0; id < config.num_nodes; ++id)
      if (healthy.node_guest_graph(id).total_cells() > 0) helpers.push_back(id);
    ASSERT_FALSE(helpers.empty());
  }

  // Phase 2: the same traffic, but every would-be helper is dead.  The
  // Distress/Ack protocol must time out, treat the silence as a NACK, and
  // wander on — no stuck clique, no hung query, no wrong answer.
  for (const NodeId helper : helpers)
    config.fault_plan.crashes.push_back({.node = helper, .at = 0});
  StashCluster cluster(config, shared_generator());
  cluster.run_query(warm);
  const auto stats = cluster.run_open_loop(burst, 20);

  const auto& m = cluster.metrics();
  EXPECT_GT(m.handoffs_initiated, 0u);
  EXPECT_GT(m.handoff_timeouts, 0u) << "no distress ever hit a dead helper";
  EXPECT_GT(m.cliques_replicated, 0u) << "antipode retry never recovered";
  for (const NodeId helper : helpers)
    EXPECT_EQ(cluster.node_guest_graph(helper).total_cells(), 0u);

  const auto expected = reference_cell_counts(burst);
  for (std::size_t i = 0; i < burst.size(); ++i)
    EXPECT_EQ(stats[i].result_cells, expected[i]) << "query " << i;
}

TEST(FaultToleranceTest, SameSeedSamePlanIsBitIdentical) {
  // Chaos is replayable: identical seed + FaultPlan => identical QueryStats
  // and identical metrics, twice in a row.
  struct Fingerprint {
    std::vector<sim::SimTime> latencies;
    std::vector<std::size_t> cells;
    std::vector<std::size_t> retries, failovers, failed;
    std::vector<bool> partial;
    std::uint64_t queries_completed, subqueries_processed, reroutes,
        node_crashes, node_restarts, messages_dropped, timeouts_fired,
        subquery_retries, total_failovers, failed_subqueries, partial_queries,
        handoff_timeouts, events;
    bool operator==(const Fingerprint&) const = default;
  };

  const auto run_chaos = [](std::uint64_t fault_seed) {
    ClusterConfig config = hot_config();
    config.subquery_timeout = 100 * sim::kMillisecond;
    config.retry_backoff = 5 * sim::kMillisecond;
    const ZeroHopDht dht(config.num_nodes, config.partition_prefix_length);
    const NodeId victim =
        dht.node_for_partition(geohash::covering(county_query().area, 2).front());
    config.fault_plan.seed = fault_seed;
    config.fault_plan.crashes.push_back(
        {.node = victim, .at = 2 * sim::kMillisecond,
         .restart_at = 50 * sim::kMillisecond});
    config.fault_plan.links.push_back({.drop_probability = 0.02});
    StashCluster cluster(config, shared_generator());

    Fingerprint fp;
    cluster.run_query(wide_query());
    for (const auto& s :
         cluster.run_open_loop(burst_around(county_query(), 200, 31), 20)) {
      fp.latencies.push_back(s.latency());
      fp.cells.push_back(s.result_cells);
      fp.retries.push_back(s.retries);
      fp.failovers.push_back(s.failovers);
      fp.failed.push_back(s.failed_subqueries);
      fp.partial.push_back(s.partial);
    }
    const auto& m = cluster.metrics();
    fp.queries_completed = m.queries_completed;
    fp.subqueries_processed = m.subqueries_processed;
    fp.reroutes = m.reroutes;
    fp.node_crashes = m.node_crashes;
    fp.node_restarts = m.node_restarts;
    fp.messages_dropped = m.messages_dropped;
    fp.timeouts_fired = m.timeouts_fired;
    fp.subquery_retries = m.subquery_retries;
    fp.total_failovers = m.failovers;
    fp.failed_subqueries = m.failed_subqueries;
    fp.partial_queries = m.partial_queries;
    fp.handoff_timeouts = m.handoff_timeouts;
    fp.events = cluster.loop().executed();
    return fp;
  };

  const Fingerprint a = run_chaos(1234);
  const Fingerprint b = run_chaos(1234);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.node_crashes, 1u);
  EXPECT_EQ(a.node_restarts, 1u);
  EXPECT_GT(a.messages_dropped, 0u);
  // A different fault seed reshuffles which messages die.
  const Fingerprint c = run_chaos(4321);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace stash::cluster
