#include "geo/temporal.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/civil_time.hpp"

namespace stash {
namespace {

TEST(TemporalResTest, HierarchyOrder) {
  EXPECT_EQ(*coarser(TemporalRes::Hour), TemporalRes::Day);
  EXPECT_EQ(*coarser(TemporalRes::Day), TemporalRes::Month);
  EXPECT_EQ(*coarser(TemporalRes::Month), TemporalRes::Year);
  EXPECT_FALSE(coarser(TemporalRes::Year).has_value());
  EXPECT_EQ(*finer(TemporalRes::Year), TemporalRes::Month);
  EXPECT_FALSE(finer(TemporalRes::Hour).has_value());
}

TEST(TemporalBinTest, ValidationRejectsBadFields) {
  EXPECT_THROW(TemporalBin(TemporalRes::Month, 2015, 13), std::invalid_argument);
  EXPECT_THROW(TemporalBin(TemporalRes::Day, 2015, 2, 29), std::invalid_argument);
  EXPECT_NO_THROW(TemporalBin(TemporalRes::Day, 2016, 2, 29));  // leap year
  EXPECT_THROW(TemporalBin(TemporalRes::Hour, 2015, 1, 1, 24), std::invalid_argument);
  // Finer fields must stay at defaults for coarse bins.
  EXPECT_THROW(TemporalBin(TemporalRes::Month, 2015, 3, 2), std::invalid_argument);
  EXPECT_THROW(TemporalBin(TemporalRes::Year, 2015, 2), std::invalid_argument);
}

TEST(TemporalBinTest, RangeOfPaperQueryDay) {
  // Query_Time of all paper workloads: 2015-02-02.
  const TemporalBin day(TemporalRes::Day, 2015, 2, 2);
  const TimeRange r = day.range();
  EXPECT_EQ(r.begin, unix_seconds({2015, 2, 2}));
  EXPECT_EQ(r.end - r.begin, 86400);
}

TEST(TemporalBinTest, RangeWidths) {
  EXPECT_EQ(TemporalBin(TemporalRes::Hour, 2015, 6, 15, 7).range().end -
                TemporalBin(TemporalRes::Hour, 2015, 6, 15, 7).range().begin,
            3600);
  const TimeRange feb = TemporalBin(TemporalRes::Month, 2015, 2).range();
  EXPECT_EQ(feb.end - feb.begin, 28 * 86400);
  const TimeRange leap_feb = TemporalBin(TemporalRes::Month, 2016, 2).range();
  EXPECT_EQ(leap_feb.end - leap_feb.begin, 29 * 86400);
  const TimeRange year = TemporalBin(TemporalRes::Year, 2015).range();
  EXPECT_EQ(year.end - year.begin, 365 * 86400);
}

TEST(TemporalBinTest, DecemberRollsToNextYear) {
  const TimeRange dec = TemporalBin(TemporalRes::Month, 2015, 12).range();
  EXPECT_EQ(dec.end, unix_seconds({2016, 1, 1}));
}

TEST(TemporalBinTest, OfTimestampFindsEnclosingBin) {
  const std::int64_t ts = unix_seconds({2015, 3, 10}, 14, 30, 0);
  EXPECT_EQ(TemporalBin::of_timestamp(ts, TemporalRes::Hour),
            TemporalBin(TemporalRes::Hour, 2015, 3, 10, 14));
  EXPECT_EQ(TemporalBin::of_timestamp(ts, TemporalRes::Day),
            TemporalBin(TemporalRes::Day, 2015, 3, 10));
  EXPECT_EQ(TemporalBin::of_timestamp(ts, TemporalRes::Month),
            TemporalBin(TemporalRes::Month, 2015, 3));
  EXPECT_EQ(TemporalBin::of_timestamp(ts, TemporalRes::Year),
            TemporalBin(TemporalRes::Year, 2015));
}

TEST(TemporalBinTest, BinContainsItsTimestamps) {
  for (auto res : {TemporalRes::Year, TemporalRes::Month, TemporalRes::Day,
                   TemporalRes::Hour}) {
    const std::int64_t ts = unix_seconds({2015, 7, 21}, 9, 59, 59);
    const TemporalBin bin = TemporalBin::of_timestamp(ts, res);
    EXPECT_TRUE(bin.range().contains(ts));
  }
}

TEST(TemporalBinTest, ParentContainsChild) {
  const TemporalBin hour(TemporalRes::Hour, 2015, 3, 31, 23);
  const auto day = hour.parent();
  ASSERT_TRUE(day.has_value());
  EXPECT_EQ(*day, TemporalBin(TemporalRes::Day, 2015, 3, 31));
  EXPECT_TRUE(day->contains(hour));
  EXPECT_FALSE(hour.contains(*day));
  EXPECT_FALSE(TemporalBin(TemporalRes::Year, 2015).parent().has_value());
}

TEST(TemporalBinTest, ChildrenPartitionParent) {
  const TemporalBin month(TemporalRes::Month, 2015, 2);
  const auto days = month.children();
  ASSERT_EQ(days.size(), 28u);
  std::int64_t cursor = month.range().begin;
  for (const auto& d : days) {
    EXPECT_EQ(d.range().begin, cursor);
    EXPECT_TRUE(month.contains(d));
    cursor = d.range().end;
  }
  EXPECT_EQ(cursor, month.range().end);

  EXPECT_EQ(TemporalBin(TemporalRes::Year, 2015).children().size(), 12u);
  EXPECT_EQ(TemporalBin(TemporalRes::Day, 2015, 1, 1).children().size(), 24u);
  EXPECT_TRUE(TemporalBin(TemporalRes::Hour, 2015, 1, 1, 0).children().empty());
}

TEST(TemporalBinTest, LateralNeighborsAbutAndInvert) {
  // Paper Fig 1b: 2015-03 has temporal neighbors 2015-02 and 2015-04.
  const TemporalBin march(TemporalRes::Month, 2015, 3);
  EXPECT_EQ(march.prev(), TemporalBin(TemporalRes::Month, 2015, 2));
  EXPECT_EQ(march.next(), TemporalBin(TemporalRes::Month, 2015, 4));
  EXPECT_EQ(march.prev().next(), march);
  EXPECT_EQ(march.next().prev(), march);
  EXPECT_EQ(march.prev().range().end, march.range().begin);
}

TEST(TemporalBinTest, NeighborsCrossBoundaries) {
  EXPECT_EQ(TemporalBin(TemporalRes::Day, 2015, 1, 1).prev(),
            TemporalBin(TemporalRes::Day, 2014, 12, 31));
  EXPECT_EQ(TemporalBin(TemporalRes::Month, 2015, 12).next(),
            TemporalBin(TemporalRes::Month, 2016, 1));
  EXPECT_EQ(TemporalBin(TemporalRes::Hour, 2015, 2, 28, 23).next(),
            TemporalBin(TemporalRes::Hour, 2015, 3, 1, 0));
}

TEST(TemporalBinTest, LabelFormats) {
  EXPECT_EQ(TemporalBin(TemporalRes::Year, 2015).label(), "2015");
  EXPECT_EQ(TemporalBin(TemporalRes::Month, 2015, 3).label(), "2015-03");
  EXPECT_EQ(TemporalBin(TemporalRes::Day, 2015, 2, 2).label(), "2015-02-02");
  EXPECT_EQ(TemporalBin(TemporalRes::Hour, 2015, 2, 2, 5).label(),
            "2015-02-02T05");
}

TEST(TemporalBinTest, PackUnpackRoundTrip) {
  const TemporalBin bins[] = {
      TemporalBin(TemporalRes::Year, 1970),
      TemporalBin(TemporalRes::Month, 2015, 12),
      TemporalBin(TemporalRes::Day, 2016, 2, 29),
      TemporalBin(TemporalRes::Hour, 2099, 7, 31, 23),
  };
  for (const auto& b : bins) EXPECT_EQ(TemporalBin::unpack(b.pack()), b);
}

TEST(TemporalBinTest, UnpackRejectsBitsAboveFormat) {
  // Regression (found by the civil-time fuzz harness): pack() uses 30 bits,
  // and unpack() used to mask the top two away — so distinct u32 keys
  // aliased the same bin on the wire.
  const std::uint32_t good = TemporalBin(TemporalRes::Day, 2015, 2, 2).pack();
  EXPECT_EQ(TemporalBin::unpack(good), TemporalBin(TemporalRes::Day, 2015, 2, 2));
  EXPECT_THROW((void)TemporalBin::unpack(good | (1u << 30)),
               std::invalid_argument);
  EXPECT_THROW((void)TemporalBin::unpack(good | (1u << 31)),
               std::invalid_argument);
}

TEST(TemporalBinTest, PackIsInjectiveAcrossRes) {
  EXPECT_NE(TemporalBin(TemporalRes::Year, 2015).pack(),
            TemporalBin(TemporalRes::Month, 2015, 1).pack());
  EXPECT_NE(TemporalBin(TemporalRes::Day, 2015, 1, 1).pack(),
            TemporalBin(TemporalRes::Hour, 2015, 1, 1, 0).pack());
}

TEST(TemporalCoveringTest, SingleDayQuery) {
  const TimeRange day{unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})};
  const auto days = temporal_covering(day, TemporalRes::Day);
  ASSERT_EQ(days.size(), 1u);
  EXPECT_EQ(days[0], TemporalBin(TemporalRes::Day, 2015, 2, 2));
  const auto hours = temporal_covering(day, TemporalRes::Hour);
  EXPECT_EQ(hours.size(), 24u);
}

TEST(TemporalCoveringTest, PartialBinsIncluded) {
  // 6h window straddling midnight covers two days.
  const TimeRange r{unix_seconds({2015, 2, 2}, 21), unix_seconds({2015, 2, 3}, 3)};
  EXPECT_EQ(temporal_covering(r, TemporalRes::Day).size(), 2u);
  EXPECT_EQ(temporal_covering(r, TemporalRes::Hour).size(), 6u);
  EXPECT_EQ(temporal_covering(r, TemporalRes::Month).size(), 1u);
}

TEST(TemporalCoveringTest, EmptyRange) {
  const TimeRange r{100, 100};
  EXPECT_TRUE(temporal_covering(r, TemporalRes::Day).empty());
  EXPECT_EQ(temporal_covering_size(r, TemporalRes::Hour), 0u);
}

TEST(TemporalCoveringTest, InvalidRangeThrows) {
  EXPECT_THROW((void)temporal_covering({100, 99}, TemporalRes::Day),
               std::invalid_argument);
}

TEST(TemporalCoveringTest, SizeMatchesEnumeration) {
  const TimeRange ranges[] = {
      {unix_seconds({2015, 1, 15}), unix_seconds({2015, 3, 2}, 5)},
      {unix_seconds({2014, 12, 31}, 23), unix_seconds({2015, 1, 1}, 1)},
      {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 2}) + 1},
  };
  for (const auto& r : ranges) {
    for (auto res : {TemporalRes::Year, TemporalRes::Month, TemporalRes::Day,
                     TemporalRes::Hour}) {
      EXPECT_EQ(temporal_covering(r, res).size(), temporal_covering_size(r, res));
    }
  }
}

TEST(TemporalCoveringTest, ChronologicalAndContiguous) {
  const TimeRange r{unix_seconds({2015, 1, 30}), unix_seconds({2015, 2, 3})};
  const auto days = temporal_covering(r, TemporalRes::Day);
  ASSERT_EQ(days.size(), 4u);
  for (std::size_t i = 1; i < days.size(); ++i)
    EXPECT_EQ(days[i - 1].next(), days[i]);
}

}  // namespace
}  // namespace stash
