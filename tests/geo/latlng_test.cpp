#include "geo/latlng.hpp"

#include <gtest/gtest.h>

namespace stash {
namespace {

TEST(BoundingBoxTest, BasicGeometry) {
  const BoundingBox b{10.0, 20.0, -30.0, -10.0};
  EXPECT_TRUE(b.valid());
  EXPECT_DOUBLE_EQ(b.height(), 10.0);
  EXPECT_DOUBLE_EQ(b.width(), 20.0);
  EXPECT_DOUBLE_EQ(b.area(), 200.0);
  EXPECT_EQ(b.center(), (LatLng{15.0, -20.0}));
}

TEST(BoundingBoxTest, ContainsPoint) {
  const BoundingBox b{0.0, 10.0, 0.0, 10.0};
  EXPECT_TRUE(b.contains(LatLng{5.0, 5.0}));
  EXPECT_TRUE(b.contains(LatLng{0.0, 0.0}));    // boundary is inclusive
  EXPECT_TRUE(b.contains(LatLng{10.0, 10.0}));
  EXPECT_FALSE(b.contains(LatLng{-0.1, 5.0}));
  EXPECT_FALSE(b.contains(LatLng{5.0, 10.1}));
}

TEST(BoundingBoxTest, ContainsBox) {
  const BoundingBox outer{0.0, 10.0, 0.0, 10.0};
  EXPECT_TRUE(outer.contains(BoundingBox{2.0, 8.0, 2.0, 8.0}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(BoundingBox{2.0, 11.0, 2.0, 8.0}));
}

TEST(BoundingBoxTest, OpenIntersection) {
  const BoundingBox a{0.0, 10.0, 0.0, 10.0};
  EXPECT_TRUE(a.intersects(BoundingBox{5.0, 15.0, 5.0, 15.0}));
  // Sharing only an edge does not count as interior intersection.
  EXPECT_FALSE(a.intersects(BoundingBox{10.0, 20.0, 0.0, 10.0}));
  EXPECT_FALSE(a.intersects(BoundingBox{0.0, 10.0, 10.0, 20.0}));
  EXPECT_FALSE(a.intersects(BoundingBox{11.0, 20.0, 0.0, 10.0}));
}

TEST(BoundingBoxTest, IntersectionBox) {
  const BoundingBox a{0.0, 10.0, 0.0, 10.0};
  const BoundingBox b{5.0, 15.0, -5.0, 5.0};
  EXPECT_EQ(a.intersection(b), (BoundingBox{5.0, 10.0, 0.0, 5.0}));
}

TEST(BoundingBoxTest, TranslatedPreservesSize) {
  const BoundingBox b{10.0, 20.0, 30.0, 50.0};
  const BoundingBox t = b.translated(5.0, -10.0);
  EXPECT_DOUBLE_EQ(t.height(), b.height());
  EXPECT_DOUBLE_EQ(t.width(), b.width());
  EXPECT_DOUBLE_EQ(t.lat_min, 15.0);
  EXPECT_DOUBLE_EQ(t.lng_min, 20.0);
}

TEST(BoundingBoxTest, TranslatedClampsAtGlobeEdge) {
  const BoundingBox b{80.0, 89.0, 0.0, 10.0};
  const BoundingBox t = b.translated(5.0, 0.0);
  EXPECT_DOUBLE_EQ(t.lat_max, 90.0);
  EXPECT_DOUBLE_EQ(t.height(), b.height());  // size preserved, shifted back

  const BoundingBox w{0.0, 10.0, -179.0, -170.0};
  const BoundingBox tw = w.translated(0.0, -5.0);
  EXPECT_DOUBLE_EQ(tw.lng_min, -180.0);
  EXPECT_DOUBLE_EQ(tw.width(), w.width());
}

TEST(BoundingBoxTest, ScaledHalvesArea) {
  const BoundingBox b{0.0, 10.0, 0.0, 20.0};
  const BoundingBox s = b.scaled(0.5);
  EXPECT_NEAR(s.area(), b.area() * 0.5, 1e-9);
  EXPECT_EQ(s.center(), b.center());
}

TEST(BoundingBoxTest, ScaledIdentity) {
  const BoundingBox b{-5.0, 5.0, -5.0, 5.0};
  const BoundingBox s = b.scaled(1.0);
  EXPECT_NEAR(s.lat_min, b.lat_min, 1e-12);
  EXPECT_NEAR(s.lng_max, b.lng_max, 1e-12);
}

TEST(BoundingBoxTest, WholeWorld) {
  const BoundingBox w = BoundingBox::whole_world();
  EXPECT_TRUE(w.contains(LatLng{45.0, 100.0}));
  EXPECT_DOUBLE_EQ(w.area(), 180.0 * 360.0);
}

TEST(BoundingBoxTest, InvalidWhenInverted) {
  EXPECT_FALSE((BoundingBox{10.0, 0.0, 0.0, 10.0}).valid());
  EXPECT_FALSE((BoundingBox{0.0, 10.0, 10.0, 0.0}).valid());
}

TEST(BoundingBoxTest, LngBandsPassThroughNormalizedBox) {
  const BoundingBox b{10.0, 20.0, -30.0, -10.0};
  const auto bands = lng_bands(b);
  ASSERT_EQ(bands.size(), 1u);
  EXPECT_EQ(bands.front(), b);
}

TEST(BoundingBoxTest, LngBandsSplitWrapEncodedBox) {
  // lng_max > 180 wrap-encodes a box crossing the antimeridian.
  const auto bands = lng_bands(BoundingBox{-19.0, -16.0, 177.0, 183.0});
  ASSERT_EQ(bands.size(), 2u);
  EXPECT_EQ(bands[0], (BoundingBox{-19.0, -16.0, 177.0, 180.0}));
  EXPECT_EQ(bands[1], (BoundingBox{-19.0, -16.0, -180.0, -177.0}));
}

TEST(BoundingBoxTest, LngBandsFullCircleCollapsesToWorld) {
  const auto bands = lng_bands(BoundingBox{-10.0, 10.0, -170.0, 200.0});
  ASSERT_EQ(bands.size(), 1u);
  EXPECT_EQ(bands.front(), (BoundingBox{-10.0, 10.0, -180.0, 180.0}));
}

}  // namespace
}  // namespace stash
