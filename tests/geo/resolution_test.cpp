#include "geo/resolution.hpp"

#include <gtest/gtest.h>

#include <set>

namespace stash {
namespace {

TEST(ResolutionTest, LevelIndexIsBijective) {
  std::set<int> seen;
  for (int s = 1; s <= geohash::kMaxPrecision; ++s) {
    for (int t = 0; t < kNumTemporalRes; ++t) {
      const Resolution r{s, static_cast<TemporalRes>(t)};
      const int level = level_index(r);
      EXPECT_GE(level, 0);
      EXPECT_LT(level, kNumLevels);
      EXPECT_TRUE(seen.insert(level).second) << r.to_string();
      EXPECT_EQ(resolution_of_level(level), r);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumLevels));
}

TEST(ResolutionTest, FinerResolutionsHaveHigherLevels) {
  // One spatial step up increases the level by 1; one temporal step by
  // kMaxPrecision — both strictly increase.
  const Resolution base{5, TemporalRes::Month};
  EXPECT_GT(level_index({6, TemporalRes::Month}), level_index(base));
  EXPECT_GT(level_index({5, TemporalRes::Day}), level_index(base));
}

TEST(ResolutionTest, ParentResolutionsMatchPaper) {
  // Paper §IV-B: "Each Cell can have 3 different parent precisions".
  const auto parents = parent_resolutions({5, TemporalRes::Day});
  ASSERT_EQ(parents.size(), 3u);
  EXPECT_EQ(parents[0], (Resolution{4, TemporalRes::Day}));
  EXPECT_EQ(parents[1], (Resolution{5, TemporalRes::Month}));
  EXPECT_EQ(parents[2], (Resolution{4, TemporalRes::Month}));
}

TEST(ResolutionTest, ParentResolutionsAtBoundaries) {
  EXPECT_EQ(parent_resolutions({1, TemporalRes::Year}).size(), 0u);
  const auto spatial_only = parent_resolutions({2, TemporalRes::Year});
  ASSERT_EQ(spatial_only.size(), 1u);
  EXPECT_EQ(spatial_only[0], (Resolution{1, TemporalRes::Year}));
  const auto temporal_only = parent_resolutions({1, TemporalRes::Month});
  ASSERT_EQ(temporal_only.size(), 1u);
  EXPECT_EQ(temporal_only[0], (Resolution{1, TemporalRes::Year}));
}

TEST(ResolutionTest, ChildResolutionsMirrorParents) {
  const Resolution r{5, TemporalRes::Day};
  for (const auto& child : child_resolutions(r)) {
    const auto parents = parent_resolutions(child);
    EXPECT_NE(std::find(parents.begin(), parents.end(), r), parents.end())
        << child.to_string();
  }
}

TEST(ResolutionTest, ChildResolutionsAtBoundaries) {
  EXPECT_EQ(child_resolutions({geohash::kMaxPrecision, TemporalRes::Hour}).size(),
            0u);
  EXPECT_EQ(child_resolutions({geohash::kMaxPrecision, TemporalRes::Day}).size(),
            1u);
  EXPECT_EQ(child_resolutions({3, TemporalRes::Hour}).size(), 1u);
  EXPECT_EQ(child_resolutions({3, TemporalRes::Day}).size(), 3u);
}

TEST(ResolutionTest, Validity) {
  EXPECT_TRUE((Resolution{1, TemporalRes::Year}).valid());
  EXPECT_TRUE((Resolution{12, TemporalRes::Hour}).valid());
  EXPECT_FALSE((Resolution{0, TemporalRes::Day}).valid());
  EXPECT_FALSE((Resolution{13, TemporalRes::Day}).valid());
}

TEST(ResolutionTest, ToStringIsReadable) {
  EXPECT_EQ((Resolution{6, TemporalRes::Day}).to_string(), "s6/Day");
}

}  // namespace
}  // namespace stash
