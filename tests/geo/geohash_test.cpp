#include "geo/geohash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "common/rng.hpp"

namespace stash::geohash {
namespace {

TEST(GeohashTest, KnownEncodings) {
  // Reference values from geohash.org.
  EXPECT_EQ(encode({57.64911, 10.40744}, 11), "u4pruydqqvj");
  EXPECT_EQ(encode({37.77, -122.42}, 5), "9q8yy");
  EXPECT_EQ(encode({0.0, 0.0}, 1), "s");
}

TEST(GeohashTest, PaperExampleCell) {
  // Paper §IV-B: the cell 9q8y7 at resolution 5 (San Francisco area).
  const BoundingBox box = decode("9q8y7");
  EXPECT_TRUE(box.contains(decode_center("9q8y7")));
  EXPECT_NEAR(box.width(), cell_width_deg(5), 1e-12);
  EXPECT_NEAR(box.height(), cell_height_deg(5), 1e-12);
}

TEST(GeohashTest, EncodeDecodeRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const LatLng p{rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)};
    for (int precision : {1, 3, 5, 7, 9, 12}) {
      const std::string gh = encode(p, precision);
      EXPECT_EQ(gh.size(), static_cast<std::size_t>(precision));
      EXPECT_TRUE(decode(gh).contains(p)) << gh;
    }
  }
}

TEST(GeohashTest, ReencodingCenterIsIdentity) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const LatLng p{rng.uniform(-89.0, 89.0), rng.uniform(-179.0, 179.0)};
    const std::string gh = encode(p, 6);
    EXPECT_EQ(encode(decode_center(gh), 6), gh);
  }
}

TEST(GeohashTest, ValidationRejectsBadInput) {
  EXPECT_FALSE(is_valid(""));
  EXPECT_FALSE(is_valid("abc!"));
  EXPECT_FALSE(is_valid("bbbbbbbbbbbba"));  // 13 chars
  EXPECT_FALSE(is_valid("ai"));             // 'a' and 'i' not in alphabet
  EXPECT_TRUE(is_valid("9q8y7"));
  EXPECT_THROW((void)decode("hello world"), std::invalid_argument);
  EXPECT_THROW((void)encode({91.0, 0.0}, 5), std::invalid_argument);
  EXPECT_THROW((void)encode({0.0, 0.0}, 0), std::invalid_argument);
  EXPECT_THROW((void)encode({0.0, 0.0}, 13), std::invalid_argument);
}

TEST(GeohashTest, CellDimensionsHalveWithBits) {
  // Odd→even precision adds a longitude bit; even→odd adds both.
  EXPECT_DOUBLE_EQ(cell_width_deg(1), 45.0);
  EXPECT_DOUBLE_EQ(cell_height_deg(1), 45.0);
  EXPECT_DOUBLE_EQ(cell_width_deg(2), 11.25);
  EXPECT_DOUBLE_EQ(cell_height_deg(2), 5.625);
  for (int p = 2; p <= 12; ++p) {
    EXPECT_LT(cell_width_deg(p), cell_width_deg(p - 1));
    EXPECT_LE(cell_height_deg(p), cell_height_deg(p - 1));
  }
}

TEST(GeohashTest, ParentChildClosure) {
  const auto kids = children("9q8y");
  EXPECT_EQ(kids.size(), 32u);
  const BoundingBox parent_box = decode("9q8y");
  for (const auto& kid : kids) {
    EXPECT_EQ(*parent(kid), "9q8y");
    EXPECT_TRUE(parent_box.contains(decode(kid)));
  }
  // Children tile the parent exactly: areas sum to the parent's area.
  double total = 0.0;
  for (const auto& kid : kids) total += decode(kid).area();
  EXPECT_NEAR(total, parent_box.area(), 1e-9);
}

TEST(GeohashTest, ChildrenAreDistinct) {
  const auto kids = children("u4");
  const std::set<std::string> unique(kids.begin(), kids.end());
  EXPECT_EQ(unique.size(), 32u);
}

TEST(GeohashTest, TopLevelHasNoParent) {
  EXPECT_FALSE(parent("9").has_value());
}

TEST(GeohashTest, MaxPrecisionHasNoChildren) {
  EXPECT_THROW((void)children("bbbbbbbbbbbb"), std::invalid_argument);
}

TEST(GeohashTest, PaperNeighborExample) {
  // Paper Fig 1a: neighbors of 9q8y7.
  const std::set<std::string> expected = {"9q8yd", "9q8ye", "9q8ys", "9q8yk",
                                          "9q8yh", "9q8y5", "9q8y4", "9q8y6"};
  const auto actual = neighbors("9q8y7");
  EXPECT_EQ(std::set<std::string>(actual.begin(), actual.end()), expected);
}

TEST(GeohashTest, NeighborSymmetry) {
  Rng rng(3);
  const std::pair<Direction, Direction> opposite[] = {
      {Direction::N, Direction::S},
      {Direction::E, Direction::W},
      {Direction::NE, Direction::SW},
      {Direction::SE, Direction::NW}};
  for (int i = 0; i < 100; ++i) {
    const LatLng p{rng.uniform(-80.0, 80.0), rng.uniform(-179.0, 179.0)};
    const std::string gh = encode(p, 5);
    for (auto [fwd, bwd] : opposite) {
      const auto n = neighbor(gh, fwd);
      ASSERT_TRUE(n.has_value());
      EXPECT_EQ(*neighbor(*n, bwd), gh) << gh;
    }
  }
}

TEST(GeohashTest, NeighborsShareBoundary) {
  const BoundingBox base = decode("9q8y7");
  for (const auto& n : neighbors("9q8y7")) {
    const BoundingBox nb = decode(n);
    // Closed boxes of adjacent cells touch; open interiors do not overlap.
    EXPECT_FALSE(base.intersects(nb)) << n;
    EXPECT_TRUE(base.lat_max >= nb.lat_min && nb.lat_max >= base.lat_min);
    EXPECT_TRUE(base.lng_max >= nb.lng_min && nb.lng_max >= base.lng_min);
  }
}

TEST(GeohashTest, PolarCellsHaveFewerNeighbors) {
  const std::string north = encode({89.9, 0.0}, 4);
  const auto ns = neighbors(north);
  EXPECT_LT(ns.size(), 8u);  // no northern neighbors past the pole
  EXPECT_GE(ns.size(), 5u);
}

TEST(GeohashTest, LongitudeWrapAround) {
  const std::string east_edge = encode({0.0, 179.9}, 3);
  const auto e = neighbor(east_edge, Direction::E);
  ASSERT_TRUE(e.has_value());
  EXPECT_LT(decode_center(*e).lng, 0.0);  // wrapped onto the western hemisphere
}

TEST(GeohashTest, AntipodeIsDiametricallyOpposite) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const LatLng p{rng.uniform(-80.0, 80.0), rng.uniform(-179.0, 179.0)};
    const std::string gh = encode(p, 5);
    const LatLng c = decode_center(gh);
    const LatLng a = decode_center(antipode(gh));
    EXPECT_NEAR(a.lat, -c.lat, cell_height_deg(5));
    const double dlng = std::abs(a.lng - c.lng);
    EXPECT_NEAR(std::min(dlng, 360.0 - dlng), 180.0, cell_width_deg(5));
  }
}

TEST(GeohashTest, AntipodeIsInvolutionUpToCell) {
  const std::string gh = "9q8y7";
  const std::string back = antipode(antipode(gh));
  // Returning to the same cell after two antipodes (center-snapping keeps it
  // within the original cell).
  EXPECT_EQ(back, gh);
}

TEST(GeohashTest, CoveringContainsAllIntersectingCells) {
  const BoundingBox box{37.0, 38.5, -123.0, -121.0};
  const auto cells = covering(box, 4);
  EXPECT_FALSE(cells.empty());
  EXPECT_EQ(cells.size(), covering_size(box, 4));
  const std::set<std::string> cell_set(cells.begin(), cells.end());
  EXPECT_EQ(cell_set.size(), cells.size());  // no duplicates
  for (const auto& gh : cells)
    EXPECT_TRUE(decode(gh).intersects(box)) << gh;
  // Points sampled inside the box always land in a covered cell.
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const LatLng p{rng.uniform(box.lat_min + 1e-6, box.lat_max - 1e-6),
                   rng.uniform(box.lng_min + 1e-6, box.lng_max - 1e-6)};
    EXPECT_TRUE(cell_set.contains(encode(p, 4)));
  }
}

TEST(GeohashTest, CoveringAlignedBoxIsExact) {
  // A box exactly equal to one geohash cell covers exactly that cell.
  const BoundingBox cell_box = decode("9q8y");
  const auto cells = covering(cell_box, 4);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], "9q8y");
}

TEST(GeohashTest, CoveringGrowsWithPrecision) {
  const BoundingBox box{30.0, 34.0, -100.0, -92.0};  // state-sized (4°, 8°)
  std::size_t prev = 0;
  for (int p = 2; p <= 6; ++p) {
    const std::size_t n = covering_size(box, p);
    EXPECT_GT(n, prev);
    prev = n;
  }
  // At precision 6 a state-sized box needs tens of thousands of cells.
  EXPECT_GT(prev, 10000u);
}

TEST(GeohashTest, CoveringSizeMatchesEnumeration) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const double lat = rng.uniform(-60.0, 50.0);
    const double lng = rng.uniform(-170.0, 150.0);
    const BoundingBox box{lat, lat + rng.uniform(0.2, 8.0), lng,
                          lng + rng.uniform(0.2, 16.0)};
    for (int p : {2, 3, 4}) {
      EXPECT_EQ(covering(box, p).size(), covering_size(box, p));
    }
  }
}

TEST(GeohashTest, PackUnpackRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const LatLng p{rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)};
    for (int precision : {1, 2, 5, 8, 12}) {
      const std::string gh = encode(p, precision);
      EXPECT_EQ(unpack(pack(gh)), gh);
    }
  }
}

TEST(GeohashTest, PackDistinguishesLengths) {
  // "9" vs "90": prefix relationships must not collide.
  EXPECT_NE(pack("9"), pack("90"));
  EXPECT_NE(pack("s0"), pack("s00"));
}

TEST(GeohashTest, UnpackRejectsGarbage) {
  EXPECT_THROW((void)unpack(0), std::invalid_argument);
  EXPECT_THROW((void)unpack(0xFULL << 60), std::invalid_argument);
}

TEST(GeohashTest, UnpackRejectsBitsAboveLength) {
  // Regression (found by the geohash fuzz harness): bits above the packed
  // characters were silently ignored, so distinct u64 keys aliased the same
  // hash and pack(unpack(x)) != x.
  const std::uint64_t good = pack("9q");
  EXPECT_EQ(unpack(good), "9q");
  EXPECT_THROW((void)unpack(good | (1ULL << 10)), std::invalid_argument);
  EXPECT_THROW((void)unpack(good | (1ULL << 59)), std::invalid_argument);
}

TEST(GeohashTest, EncodeRejectsNaN) {
  // Regression (found by the geohash fuzz harness): NaN compares false
  // against both range bounds, so NaN coordinates encoded to garbage
  // instead of throwing.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)encode({nan, 0.0}, 6), std::invalid_argument);
  EXPECT_THROW((void)encode({0.0, nan}, 6), std::invalid_argument);
  EXPECT_THROW((void)encode({nan, nan}, 6), std::invalid_argument);
}

}  // namespace
}  // namespace stash::geohash
