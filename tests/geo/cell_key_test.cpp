#include "geo/cell_key.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace stash {
namespace {

TEST(CellKeyTest, RoundTripsComponents) {
  const TemporalBin bin(TemporalRes::Month, 2015, 3);
  const CellKey key("9q8y7", bin);
  EXPECT_EQ(key.geohash_str(), "9q8y7");
  EXPECT_EQ(key.bin(), bin);
  EXPECT_EQ(key.resolution(), (Resolution{5, TemporalRes::Month}));
  EXPECT_EQ(key.label(), "9q8y7@2015-03");
}

TEST(CellKeyTest, BoundsMatchGeohashAndBin) {
  const CellKey key("9q8y7", TemporalBin(TemporalRes::Day, 2015, 2, 2));
  EXPECT_EQ(key.bounds(), geohash::decode("9q8y7"));
  EXPECT_EQ(key.time_range(), TemporalBin(TemporalRes::Day, 2015, 2, 2).range());
}

TEST(CellKeyTest, EqualityAndOrdering) {
  const TemporalBin bin(TemporalRes::Day, 2015, 2, 2);
  const CellKey a("9q8y7", bin);
  const CellKey b("9q8y7", bin);
  const CellKey c("9q8yd", bin);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c || c < a);
}

TEST(CellKeyTest, HashSpreadsKeys) {
  const CellKeyHash hash;
  std::unordered_set<std::size_t> hashes;
  const TemporalBin bin(TemporalRes::Day, 2015, 2, 2);
  for (const auto& gh : geohash::children("9q8y"))
    hashes.insert(hash(CellKey(gh, bin)));
  EXPECT_EQ(hashes.size(), 32u);  // no collisions among siblings
}

TEST(CellKeyTest, DistinguishesTemporalBins) {
  const CellKey feb("9q8y7", TemporalBin(TemporalRes::Day, 2015, 2, 2));
  const CellKey mar("9q8y7", TemporalBin(TemporalRes::Day, 2015, 3, 2));
  EXPECT_NE(feb, mar);
  EXPECT_NE(CellKeyHash{}(feb), CellKeyHash{}(mar));
}

TEST(CellKeyTest, DistinguishesPrecisions) {
  const TemporalBin bin(TemporalRes::Day, 2015, 2, 2);
  EXPECT_NE(CellKey("9q8y", bin), CellKey("9q8y0", bin));
}

TEST(CellKeyTest, UsableInUnorderedMap) {
  std::unordered_set<CellKey, CellKeyHash> set;
  const TemporalBin bin(TemporalRes::Day, 2015, 2, 2);
  set.insert(CellKey("9q8y7", bin));
  set.insert(CellKey("9q8y7", bin));  // duplicate
  set.insert(CellKey("9q8yd", bin));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace stash
