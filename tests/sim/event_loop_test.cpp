#include "sim/event_loop.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stash::sim {
namespace {

TEST(EventLoopTest, StartsAtZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(30, [&] { order.push_back(3); });
  loop.schedule(10, [&] { order.push_back(1); });
  loop.schedule(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
  EXPECT_EQ(loop.executed(), 3u);
}

TEST(EventLoopTest, TiesBreakBySchedulingOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) loop.schedule(100, [&order, i] { order.push_back(i); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, EventsMayScheduleMoreEvents) {
  EventLoop loop;
  std::vector<SimTime> times;
  loop.schedule(5, [&] {
    times.push_back(loop.now());
    loop.schedule(5, [&] {
      times.push_back(loop.now());
      loop.schedule(5, [&] { times.push_back(loop.now()); });
    });
  });
  loop.run();
  EXPECT_EQ(times, (std::vector<SimTime>{5, 10, 15}));
}

TEST(EventLoopTest, ZeroDelayRunsAtCurrentTime) {
  EventLoop loop;
  SimTime seen = -1;
  loop.schedule(42, [&] { loop.schedule(0, [&] { seen = loop.now(); }); });
  loop.run();
  EXPECT_EQ(seen, 42);
}

TEST(EventLoopTest, NegativeDelayThrows) {
  EventLoop loop;
  EXPECT_THROW(loop.schedule(-1, [] {}), std::invalid_argument);
}

TEST(EventLoopTest, ScheduleAtPastThrows) {
  EventLoop loop;
  loop.schedule(10, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int ran = 0;
  loop.schedule(10, [&] { ++ran; });
  loop.schedule(20, [&] { ++ran; });
  loop.schedule(30, [&] { ++ran; });
  loop.run_until(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(ran, 3);
}

TEST(EventLoopTest, RunUntilAdvancesClockWhenIdle) {
  EventLoop loop;
  loop.run_until(500);
  EXPECT_EQ(loop.now(), 500);
}

TEST(EventLoopTest, RunForIsRelativeToNow) {
  EventLoop loop;
  int ran = 0;
  loop.schedule(10, [&] { ++ran; });
  loop.schedule(100, [&] { ++ran; });
  loop.run_for(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now(), 50);
  loop.run_for(50);  // 50 + 50 reaches the second event
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(loop.now(), 100);
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  EventLoop loop;
  int fired = 0;
  const auto id = loop.schedule_cancellable(100, [&] { ++fired; });
  loop.schedule(10, [&] { loop.cancel(id); });
  loop.run();
  EXPECT_EQ(fired, 0);
}

TEST(EventLoopTest, CancelledTimerDoesNotAdvanceTheClock) {
  // An armed-but-unused timeout must not stretch a run to quiescence —
  // otherwise every query would push virtual time out by its timeout.
  EventLoop loop;
  const auto id = loop.schedule_cancellable(1000000, [] { FAIL(); });
  loop.schedule(10, [&] { loop.cancel(id); });
  const SimTime end = loop.run();
  EXPECT_EQ(end, 10);
  EXPECT_EQ(loop.now(), 10);
  EXPECT_EQ(loop.executed(), 1u);  // skipped events are not "executed"
}

TEST(EventLoopTest, UncancelledTimerFiresNormally) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_cancellable(30, [&] { ++fired; });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoopTest, CancelUnknownIdIsANoOp) {
  EventLoop loop;
  loop.cancel(0);
  loop.cancel(424242);
  int ran = 0;
  loop.schedule(5, [&] { ++ran; });
  loop.run();
  EXPECT_EQ(ran, 1);
}

TEST(EventLoopTest, CancellableIdsAreUniqueAndIndependent) {
  EventLoop loop;
  int fired = 0;
  const auto a = loop.schedule_cancellable(10, [&] { fired += 1; });
  const auto b = loop.schedule_cancellable(10, [&] { fired += 10; });
  EXPECT_NE(a, b);
  loop.cancel(a);
  loop.run();
  EXPECT_EQ(fired, 10);  // only the cancelled one is suppressed
}

TEST(EventLoopTest, RunIgnoresPureBackgroundQueue) {
  // A self-rescheduling background task (gossip probe loop) must not keep
  // run() alive once real work has drained.
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    loop.schedule_background(10, tick);
  };
  loop.schedule_background(10, tick);
  const SimTime end = loop.run();
  EXPECT_EQ(end, 0);
  EXPECT_EQ(ticks, 0);
  EXPECT_EQ(loop.foreground_pending(), 0u);
  EXPECT_EQ(loop.pending(), 1u);  // the tick stays queued for later
}

TEST(EventLoopTest, BackgroundInterleavesWhileForegroundPending) {
  EventLoop loop;
  std::vector<int> order;
  std::function<void()> tick = [&] {
    order.push_back(0);
    loop.schedule_background(10, tick);
  };
  loop.schedule_background(10, tick);
  loop.schedule(25, [&] { order.push_back(1); });
  loop.run();
  // Ticks at 10 and 20 run before the foreground event at 25; the tick
  // queued for 30 stays pending.
  EXPECT_EQ(order, (std::vector<int>{0, 0, 1}));
  EXPECT_EQ(loop.now(), 25);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoopTest, RunUntilDrivesBackgroundWhenIdle) {
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    loop.schedule_background(10, tick);
  };
  loop.schedule_background(10, tick);
  loop.run_until(45);
  EXPECT_EQ(ticks, 4);  // 10, 20, 30, 40
  EXPECT_EQ(loop.now(), 45);
}

TEST(EventLoopTest, CancelledBackgroundTimerNeverFires) {
  EventLoop loop;
  int fired = 0;
  const auto id = loop.schedule_background_cancellable(30, [&] { ++fired; });
  loop.cancel(id);
  loop.run_until(100);
  EXPECT_EQ(fired, 0);
}

TEST(EventLoopTest, CancelledForegroundTimerReleasesRunWithBackgroundNoise) {
  // A cancelled far-future foreground timer must not force run() to grind
  // through months of background ticks to reach it.
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    loop.schedule_background(10, tick);
  };
  loop.schedule_background(10, tick);
  const auto id = loop.schedule_cancellable(1000000, [] { FAIL(); });
  loop.schedule(15, [&] { loop.cancel(id); });
  const SimTime end = loop.run();
  EXPECT_EQ(end, 15);
  EXPECT_EQ(ticks, 1);  // only the tick at t=10
}

TEST(EventLoopTest, ForegroundPendingCountsLiveForegroundOnly) {
  EventLoop loop;
  loop.schedule(10, [] {});
  loop.schedule_background(10, [] {});
  const auto id = loop.schedule_cancellable(20, [] {});
  EXPECT_EQ(loop.foreground_pending(), 2u);
  loop.cancel(id);
  EXPECT_EQ(loop.foreground_pending(), 1u);
  loop.run();
  EXPECT_EQ(loop.foreground_pending(), 0u);
}

TEST(ClockTest, FormatDuration) {
  EXPECT_EQ(format_duration(500), "500us");
  EXPECT_EQ(format_duration(2500), "2.5ms");
  EXPECT_EQ(format_duration(3 * kSecond), "3s");
}

}  // namespace
}  // namespace stash::sim
