#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

namespace stash::sim {
namespace {

TEST(CostModelTest, DiskReadIsSeekPlusStream) {
  const CostModel cost;
  EXPECT_EQ(cost.disk_read(0), cost.disk_seek);
  EXPECT_EQ(cost.disk_read(1500), cost.disk_seek + cost.disk_stream(1500));
  EXPECT_EQ(cost.disk_stream(0), 0);
}

TEST(CostModelTest, StreamScalesLinearly) {
  const CostModel cost;
  const SimTime one_mb = cost.disk_stream(1 << 20);
  const SimTime two_mb = cost.disk_stream(2 << 20);
  EXPECT_NEAR(static_cast<double>(two_mb), 2.0 * static_cast<double>(one_mb),
              2.0);
  // 150 MB/s: 1 MiB in ~7 ms.
  EXPECT_NEAR(static_cast<double>(one_mb), 1048576.0 / 150.0, 1.0);
}

TEST(CostModelTest, NetTransferHasFixedLatency) {
  const CostModel cost;
  EXPECT_EQ(cost.net_transfer(0), cost.net_message_latency);
  EXPECT_GT(cost.net_transfer(1 << 20), cost.net_message_latency);
}

TEST(CostModelTest, CpuCostsRoundDownFromNanoseconds) {
  const CostModel cost;
  // 1 record at 180 ns rounds to 0 us; 1000 records = 180 us.
  EXPECT_EQ(cost.scan(1), 0);
  EXPECT_EQ(cost.scan(1000), 180);
  EXPECT_EQ(cost.cache_probes(1000), 350);
  EXPECT_EQ(cost.cell_inserts(1000), 900);
  EXPECT_EQ(cost.freshness_updates(1000), 120);
  EXPECT_EQ(cost.merge(1000), 60);
}

TEST(CostModelTest, DiskDominatesCacheForRealisticSizes) {
  // The structural fact behind every figure: one block seek costs more
  // than probing thousands of chunks.
  const CostModel cost;
  EXPECT_GT(cost.disk_seek, cost.cache_probes(10000));
}

TEST(CostModelTest, CustomConstantsRespected) {
  CostModel cost;
  cost.disk_seek = 10 * kMillisecond;
  cost.scan_ns_per_record = 1000;
  EXPECT_EQ(cost.disk_read(0), 10 * kMillisecond);
  EXPECT_EQ(cost.scan(500), 500);
}

}  // namespace
}  // namespace stash::sim
