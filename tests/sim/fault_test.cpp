// FaultInjector unit tests: scripted crashes/restarts fire at the right
// virtual times, link rules drop and delay deterministically, and invalid
// plans are rejected up front.

#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stash::sim {
namespace {

TEST(FaultInjectorTest, PlanValidation) {
  const auto with_crash = [](CrashEvent crash) {
    FaultPlan plan;
    plan.crashes.push_back(crash);
    return plan;
  };
  const auto with_link = [](LinkRule link) {
    FaultPlan plan;
    plan.links.push_back(link);
    return plan;
  };
  EXPECT_THROW(FaultInjector(with_crash({.node = 5, .at = 0}), 4),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(with_crash({.node = 0, .at = -1}), 4),
               std::invalid_argument);
  EXPECT_THROW(
      FaultInjector(with_crash({.node = 0, .at = 10, .restart_at = 10}), 4),
      std::invalid_argument);
  EXPECT_THROW(FaultInjector(with_link({.drop_probability = 1.5}), 4),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(with_link({.extra_latency = -1}), 4),
               std::invalid_argument);
  EXPECT_NO_THROW(FaultInjector({}, 4));
}

TEST(FaultInjectorTest, CrashAndRestartFollowTheSchedule) {
  EventLoop loop;
  FaultPlan plan;
  plan.crashes.push_back({.node = 2, .at = 100, .restart_at = 300});
  FaultInjector injector(plan, 4);
  std::vector<SimTime> crash_times, restart_times;
  injector.set_crash_handler(
      [&](std::uint32_t node) {
        EXPECT_EQ(node, 2u);
        crash_times.push_back(loop.now());
      });
  injector.set_restart_handler(
      [&](std::uint32_t node) {
        EXPECT_EQ(node, 2u);
        restart_times.push_back(loop.now());
      });
  injector.arm(loop);

  EXPECT_TRUE(injector.alive(2));
  loop.run_until(99);
  EXPECT_TRUE(injector.alive(2));
  loop.run_until(100);
  EXPECT_FALSE(injector.alive(2));
  EXPECT_TRUE(injector.alive(0));  // other nodes unaffected
  loop.run_until(299);
  EXPECT_FALSE(injector.alive(2));
  loop.run();
  EXPECT_TRUE(injector.alive(2));
  EXPECT_EQ(crash_times, std::vector<SimTime>{100});
  EXPECT_EQ(restart_times, std::vector<SimTime>{300});
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().restarts, 1u);
}

TEST(FaultInjectorTest, ArmTwiceThrows) {
  EventLoop loop;
  FaultInjector injector({}, 2);
  injector.arm(loop);
  EXPECT_THROW(injector.arm(loop), std::logic_error);
}

TEST(FaultInjectorTest, ForceCrashIsIdempotentAndCounted) {
  FaultInjector injector({}, 3);
  int crashes = 0, restarts = 0;
  injector.set_crash_handler([&](std::uint32_t) { ++crashes; });
  injector.set_restart_handler([&](std::uint32_t) { ++restarts; });
  injector.force_crash(1);
  injector.force_crash(1);  // already down: no second handler call
  EXPECT_FALSE(injector.alive(1));
  injector.force_restart(1);
  injector.force_restart(1);
  EXPECT_TRUE(injector.alive(1));
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(restarts, 1);
  EXPECT_THROW(injector.force_crash(99), std::invalid_argument);
}

TEST(FaultInjectorTest, FrontendPseudoNodeIsAlwaysAlive) {
  FaultInjector injector({}, 2);
  injector.force_crash(0);
  injector.force_crash(1);
  EXPECT_TRUE(injector.alive(kFrontendNode));
  EXPECT_TRUE(injector.alive(kAnyNode));
}

TEST(FaultInjectorTest, DropProbabilityZeroAndOneAreExact) {
  FaultPlan lossless;
  lossless.links.push_back({.from = kAnyNode, .to = kAnyNode,
                            .drop_probability = 0.0});
  FaultInjector clean(lossless, 4);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(clean.should_drop(0, 1));
  EXPECT_EQ(clean.stats().messages_dropped, 0u);

  FaultPlan lossy;
  lossy.links.push_back({.from = kAnyNode, .to = kAnyNode,
                         .drop_probability = 1.0});
  FaultInjector black_hole(lossy, 4);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(black_hole.should_drop(0, 1));
  EXPECT_EQ(black_hole.stats().messages_dropped, 100u);
}

TEST(FaultInjectorTest, FirstMatchingLinkRuleWins) {
  FaultPlan plan;
  plan.links.push_back({.from = 0, .to = 1, .drop_probability = 0.0,
                        .extra_latency = 500});
  plan.links.push_back({.from = kAnyNode, .to = kAnyNode,
                        .drop_probability = 1.0});
  FaultInjector injector(plan, 4);
  // 0 -> 1 hits the specific rule: never dropped, but slowed.
  EXPECT_FALSE(injector.should_drop(0, 1));
  EXPECT_EQ(injector.extra_latency(0, 1), 500);
  // Everything else falls through to the wildcard black hole.
  EXPECT_TRUE(injector.should_drop(1, 0));
  EXPECT_EQ(injector.extra_latency(1, 0), 0);
}

TEST(FaultInjectorTest, SameSeedSameDropSequence) {
  FaultPlan plan;
  plan.links.push_back({.drop_probability = 0.3});
  plan.seed = 77;
  std::vector<bool> a, b;
  FaultInjector first(plan, 4);
  FaultInjector second(plan, 4);
  for (int i = 0; i < 300; ++i) {
    a.push_back(first.should_drop(0, 1));
    b.push_back(second.should_drop(0, 1));
  }
  EXPECT_EQ(a, b);
  EXPECT_GT(first.stats().messages_dropped, 50u);   // ~90 expected
  EXPECT_LT(first.stats().messages_dropped, 150u);
  plan.seed = 78;
  FaultInjector reseeded(plan, 4);
  std::vector<bool> c;
  for (int i = 0; i < 300; ++i) c.push_back(reseeded.should_drop(0, 1));
  EXPECT_NE(a, c);
}

TEST(FaultInjectorTest, NoRuleMeansHealthyLink) {
  FaultInjector injector({}, 4);
  EXPECT_FALSE(injector.should_drop(0, 1));
  EXPECT_EQ(injector.extra_latency(0, 1), 0);
  EXPECT_EQ(injector.stats().messages_dropped, 0u);
  EXPECT_EQ(injector.stats().messages_delayed, 0u);
}

TEST(FaultInjectorTest, WildcardFirstPlanStillHonoursSpecificRule) {
  // Rules are stable-sorted most-specific first at construction, so a plan
  // that lists the blanket rule before the per-link override behaves the
  // same as one written in the "correct" order.
  FaultPlan plan;
  plan.links.push_back({.from = kAnyNode, .to = kAnyNode,
                        .drop_probability = 1.0});
  plan.links.push_back({.from = 0, .to = 1, .drop_probability = 0.0,
                        .extra_latency = 500});
  plan.links.push_back({.from = 2, .to = kAnyNode, .drop_probability = 0.0});
  FaultInjector injector(plan, 4);
  EXPECT_FALSE(injector.should_drop(0, 1));
  EXPECT_EQ(injector.extra_latency(0, 1), 500);
  EXPECT_FALSE(injector.should_drop(2, 3));  // one-wildcard beats blanket
  EXPECT_TRUE(injector.should_drop(1, 0));
}

TEST(FaultInjectorTest, PartitionPlanValidation) {
  const auto with_partition = [](PartitionEvent event) {
    FaultPlan plan;
    plan.partitions.push_back(std::move(event));
    return plan;
  };
  // Fewer than two groups.
  EXPECT_THROW(FaultInjector(with_partition({.groups = {{0, 1}}}), 4),
               std::invalid_argument);
  // Empty group.
  EXPECT_THROW(FaultInjector(with_partition({.groups = {{0}, {}}}), 4),
               std::invalid_argument);
  // Unknown node.
  EXPECT_THROW(FaultInjector(with_partition({.groups = {{0}, {9}}}), 4),
               std::invalid_argument);
  // Node in two groups.
  EXPECT_THROW(FaultInjector(with_partition({.groups = {{0, 1}, {1}}}), 4),
               std::invalid_argument);
  // Heal before split.
  EXPECT_THROW(FaultInjector(with_partition({.groups = {{0}, {1}},
                                             .at = 10,
                                             .heal_at = 10}),
                             4),
               std::invalid_argument);
  // Frontend pseudo-node is a valid group member.
  EXPECT_NO_THROW(
      FaultInjector(with_partition({.groups = {{0, kFrontendNode}, {1}}}), 4));
}

TEST(FaultInjectorTest, PartitionSeversGroupsBothWaysAndHeals) {
  EventLoop loop;
  FaultPlan plan;
  plan.partitions.push_back(
      {.groups = {{0, 1}, {2, 3}}, .at = 100, .heal_at = 300});
  FaultInjector injector(plan, 4);
  injector.arm(loop);

  // Before the split everything flows.
  EXPECT_FALSE(injector.partitioned(0, 2));
  EXPECT_FALSE(injector.should_drop(0, 2));

  loop.run_until(100);
  EXPECT_TRUE(injector.partitioned(0, 2));
  EXPECT_TRUE(injector.partitioned(2, 0));  // symmetric
  EXPECT_TRUE(injector.should_drop(0, 2));
  EXPECT_TRUE(injector.should_drop(3, 1));
  // Same side stays connected.
  EXPECT_FALSE(injector.partitioned(0, 1));
  EXPECT_FALSE(injector.should_drop(0, 1));
  EXPECT_FALSE(injector.should_drop(2, 3));
  EXPECT_EQ(injector.stats().partitions_observed, 1u);
  EXPECT_EQ(injector.stats().partition_drops, 2u);

  loop.run();
  EXPECT_FALSE(injector.partitioned(0, 2));
  EXPECT_FALSE(injector.should_drop(0, 2));
  EXPECT_EQ(injector.stats().partitions_healed, 1u);
}

TEST(FaultInjectorTest, UngroupedNodesStayConnectedToBothSides) {
  EventLoop loop;
  FaultPlan plan;
  plan.partitions.push_back({.groups = {{0}, {1}}, .at = 0});
  FaultInjector injector(plan, 4);
  injector.arm(loop);
  loop.run_until(0);
  EXPECT_TRUE(injector.partitioned(0, 1));
  // Node 2 is in no group; the frontend is in no group.
  EXPECT_FALSE(injector.partitioned(0, 2));
  EXPECT_FALSE(injector.partitioned(2, 1));
  EXPECT_FALSE(injector.partitioned(kFrontendNode, 0));
  EXPECT_FALSE(injector.should_drop(kFrontendNode, 1));
}

TEST(FaultInjectorTest, PartitionAndHealHandlersFireOnSchedule) {
  EventLoop loop;
  FaultPlan plan;
  plan.partitions.push_back({.groups = {{0}, {1}}, .at = 50, .heal_at = 90});
  FaultInjector injector(plan, 2);
  std::vector<SimTime> split_times, heal_times;
  injector.set_partition_handler([&](const PartitionEvent& event) {
    EXPECT_EQ(event.groups.size(), 2u);
    split_times.push_back(loop.now());
  });
  injector.set_heal_handler(
      [&](const PartitionEvent&) { heal_times.push_back(loop.now()); });
  injector.arm(loop);
  loop.run();
  EXPECT_EQ(split_times, std::vector<SimTime>{50});
  EXPECT_EQ(heal_times, std::vector<SimTime>{90});
}

TEST(FaultInjectorTest, PartitionDropsConsumeNoRandomness) {
  // A severed message must not advance the dice, so the drop sequence on a
  // healthy link is identical with and without a concurrent partition.
  FaultPlan base;
  base.links.push_back({.drop_probability = 0.3});
  base.seed = 99;
  FaultPlan split = base;
  split.partitions.push_back({.groups = {{0}, {1}}, .at = 0});

  EventLoop loop;
  FaultInjector plain(base, 4);
  FaultInjector cut(split, 4);
  cut.arm(loop);
  loop.run_until(0);
  std::vector<bool> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(plain.should_drop(2, 3));
    EXPECT_TRUE(cut.should_drop(0, 1));  // severed, diceless
    b.push_back(cut.should_drop(2, 3));
  }
  EXPECT_EQ(a, b);
}

TEST(FaultInjectorTest, DropChecksCountEveryCall) {
  FaultInjector injector({}, 4);
  for (int i = 0; i < 7; ++i) (void)injector.should_drop(0, 1);
  EXPECT_EQ(injector.stats().drop_checks, 7u);
}

TEST(FaultInjectorTest, TamperPlanValidation) {
  const auto with_link = [](LinkRule link) {
    FaultPlan plan;
    plan.links.push_back(link);
    return plan;
  };
  EXPECT_THROW(FaultInjector(with_link({.corrupt_probability = 1.5}), 4),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(with_link({.truncate_probability = -0.1}), 4),
               std::invalid_argument);
  FaultPlan rot;
  rot.bitrot.push_back({.partition = "", .day = 1, .at = 0});
  EXPECT_THROW(FaultInjector(rot, 4), std::invalid_argument);
  rot.bitrot = {{.partition = "9q", .day = 1, .at = -5}};
  EXPECT_THROW(FaultInjector(rot, 4), std::invalid_argument);
}

TEST(FaultInjectorTest, ApplyTamperFlipsExactlyOneBit) {
  std::vector<std::uint8_t> bytes{0x00, 0xff, 0x42};
  const auto original = bytes;
  apply_tamper({.kind = Tamper::Kind::kBitFlip, .salt = 13}, bytes);
  ASSERT_EQ(bytes.size(), original.size());
  int flipped = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::uint8_t diff = bytes[i] ^ original[i];
    while (diff != 0) {
      flipped += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped, 1);
  // Flipping with the same salt restores the original.
  apply_tamper({.kind = Tamper::Kind::kBitFlip, .salt = 13}, bytes);
  EXPECT_EQ(bytes, original);
}

TEST(FaultInjectorTest, ApplyTamperTruncatesToStrictPrefix) {
  std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5};
  apply_tamper({.kind = Tamper::Kind::kTruncate, .salt = 7}, bytes);
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{1, 2}));  // 7 % 5 == 2 survive
  // kNone and empty buffers are no-ops.
  std::vector<std::uint8_t> empty;
  apply_tamper({.kind = Tamper::Kind::kBitFlip, .salt = 3}, empty);
  EXPECT_TRUE(empty.empty());
  std::vector<std::uint8_t> untouched{9};
  apply_tamper({}, untouched);
  EXPECT_EQ(untouched, (std::vector<std::uint8_t>{9}));
}

TEST(FaultInjectorTest, ShouldTamperIsSeededAndDeterministic) {
  FaultPlan plan;
  plan.links.push_back({.corrupt_probability = 0.5, .truncate_probability = 0.25});
  FaultInjector a(plan, 4);
  FaultInjector b(plan, 4);
  int tampered = 0;
  for (int i = 0; i < 200; ++i) {
    const Tamper ta = a.should_tamper(0, 1);
    const Tamper tb = b.should_tamper(0, 1);
    EXPECT_EQ(static_cast<int>(ta.kind), static_cast<int>(tb.kind));
    EXPECT_EQ(ta.salt, tb.salt);
    if (!ta.none()) ++tampered;
  }
  EXPECT_GT(tampered, 50);  // ~62% of 200 expected
  EXPECT_EQ(a.stats().messages_corrupted + a.stats().messages_truncated,
            static_cast<std::uint64_t>(tampered));
}

TEST(FaultInjectorTest, TamperFreeRulesPreserveLegacyDiceStream) {
  // A plan whose rules never tamper must draw the exact drop sequence of a
  // run that never calls should_tamper() at all — the tamper path may not
  // perturb seeded legacy scenarios.
  FaultPlan plan;
  plan.links.push_back({.drop_probability = 0.3});
  FaultInjector legacy(plan, 4);
  FaultInjector probed(plan, 4);
  for (int i = 0; i < 100; ++i) {
    const bool legacy_drop = legacy.should_drop(0, 1);
    const bool probed_drop = probed.should_drop(0, 1);
    EXPECT_EQ(legacy_drop, probed_drop) << "message " << i;
    EXPECT_TRUE(probed.should_tamper(0, 1).none());  // no dice consumed
  }
  EXPECT_EQ(probed.stats().messages_corrupted, 0u);
  EXPECT_EQ(probed.stats().messages_truncated, 0u);
}

TEST(FaultInjectorTest, BitRotEventsFireOnScheduleWithHandler) {
  FaultPlan plan;
  plan.bitrot.push_back({.partition = "9q", .day = 16468, .at = 50});
  plan.bitrot.push_back({.partition = "dr", .day = 16469, .at = 150});
  FaultInjector injector(plan, 4);
  std::vector<std::string> seen;
  injector.set_bitrot_handler(
      [&](const BitRotEvent& event) { seen.push_back(event.partition); });
  EventLoop loop;
  injector.arm(loop);
  loop.run_until(100);
  EXPECT_EQ(seen, (std::vector<std::string>{"9q"}));
  EXPECT_EQ(injector.stats().bitrot_injected, 1u);
  loop.run();
  EXPECT_EQ(seen, (std::vector<std::string>{"9q", "dr"}));
  EXPECT_EQ(injector.stats().bitrot_injected, 2u);
}

TEST(FaultInjectorTest, ElasticPlanValidation) {
  const auto with_join = [](JoinEvent event) {
    FaultPlan plan;
    plan.joins.push_back(event);
    return plan;
  };
  const auto with_decommission = [](DecommissionEvent event) {
    FaultPlan plan;
    plan.decommissions.push_back(event);
    return plan;
  };
  EXPECT_THROW(FaultInjector(with_join({.node = 4, .at = 0}), 4),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(with_join({.node = 0, .at = -1}), 4),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(with_decommission({.node = 9, .at = 0}), 4),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(with_decommission({.node = 1, .at = -5}), 4),
               std::invalid_argument);
  EXPECT_NO_THROW(FaultInjector(with_join({.node = 3, .at = 0}), 4));
  // A plan with only elastic events is not "empty": the cluster must arm
  // its elastic machinery for it.
  EXPECT_FALSE(with_join({.node = 3, .at = 0}).empty());
  EXPECT_FALSE(with_decommission({.node = 1, .at = 0}).empty());
}

TEST(FaultInjectorTest, JoinAndDecommissionEventsFireOnSchedule) {
  EventLoop loop;
  FaultPlan plan;
  plan.joins.push_back({.node = 6, .at = 100});
  plan.joins.push_back({.node = 7, .at = 250});
  plan.decommissions.push_back({.node = 1, .at = 400});
  FaultInjector injector(plan, 8);
  std::vector<std::pair<std::uint32_t, SimTime>> joined, decommissioned;
  injector.set_join_handler(
      [&](std::uint32_t node) { joined.emplace_back(node, loop.now()); });
  injector.set_decommission_handler([&](std::uint32_t node) {
    decommissioned.emplace_back(node, loop.now());
  });
  injector.arm(loop);
  loop.run();

  ASSERT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined[0], (std::pair<std::uint32_t, SimTime>{6, 100}));
  EXPECT_EQ(joined[1], (std::pair<std::uint32_t, SimTime>{7, 250}));
  ASSERT_EQ(decommissioned.size(), 1u);
  EXPECT_EQ(decommissioned[0], (std::pair<std::uint32_t, SimTime>{1, 400}));
  EXPECT_EQ(injector.stats().joins_fired, 2u);
  EXPECT_EQ(injector.stats().decommissions_fired, 1u);
}

}  // namespace
}  // namespace stash::sim
