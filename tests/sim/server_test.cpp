#include "sim/server.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stash::sim {
namespace {

TEST(SimServerTest, ValidatesWorkers) {
  EventLoop loop;
  EXPECT_THROW(SimServer(loop, 0), std::invalid_argument);
}

TEST(SimServerTest, SingleJobRunsForItsDuration) {
  EventLoop loop;
  SimServer server(loop, 1);
  SimTime completed_at = -1;
  server.submit([] { return SimTime{100}; },
                [&](Outcome) { completed_at = loop.now(); });
  loop.run();
  EXPECT_EQ(completed_at, 100);
  EXPECT_EQ(server.completed_jobs(), 1u);
  EXPECT_EQ(server.total_service_time(), 100);
  EXPECT_EQ(server.total_queue_wait(), 0);
}

TEST(SimServerTest, SingleWorkerSerializesJobs) {
  EventLoop loop;
  SimServer server(loop, 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i)
    server.submit([] { return SimTime{100}; },
                  [&](Outcome) { completions.push_back(loop.now()); });
  EXPECT_EQ(server.queue_length(), 2u);  // one dispatched, two queued
  loop.run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(server.total_queue_wait(), 100 + 200);
}

TEST(SimServerTest, MultipleWorkersRunInParallel) {
  EventLoop loop;
  SimServer server(loop, 8);
  std::vector<SimTime> completions;
  for (int i = 0; i < 8; ++i)
    server.submit([] { return SimTime{100}; },
                  [&](Outcome) { completions.push_back(loop.now()); });
  loop.run();
  ASSERT_EQ(completions.size(), 8u);
  for (SimTime t : completions) EXPECT_EQ(t, 100);  // all in parallel
}

TEST(SimServerTest, NinthJobWaitsForFreeWorker) {
  EventLoop loop;
  SimServer server(loop, 8);
  SimTime ninth = -1;
  for (int i = 0; i < 8; ++i) server.submit([] { return SimTime{100}; });
  server.submit([] { return SimTime{50}; }, [&](Outcome) { ninth = loop.now(); });
  EXPECT_EQ(server.queue_length(), 1u);
  loop.run();
  EXPECT_EQ(ninth, 150);  // starts at 100 when a worker frees, runs 50
}

TEST(SimServerTest, FifoOrderPreserved) {
  EventLoop loop;
  SimServer server(loop, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    server.submit([] { return SimTime{10}; },
                  [&order, i](Outcome) { order.push_back(i); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimServerTest, QueueLengthVisibleToHotspotDetector) {
  EventLoop loop;
  SimServer server(loop, 2);
  for (int i = 0; i < 10; ++i) server.submit([] { return SimTime{1000}; });
  // 2 being serviced, 8 pending — the §VII-B.1 hotspot signal.
  EXPECT_EQ(server.busy_workers(), 2);
  EXPECT_EQ(server.queue_length(), 8u);
  loop.run();
  EXPECT_TRUE(server.idle());
}

TEST(SimServerTest, JobsSubmittedFromCompletionsRun) {
  EventLoop loop;
  SimServer server(loop, 1);
  SimTime second_done = -1;
  server.submit([] { return SimTime{10}; }, [&](Outcome) {
    server.submit([] { return SimTime{20}; },
                  [&](Outcome) { second_done = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(second_done, 30);
}

TEST(SimServerTest, ZeroDurationJobCompletesImmediately) {
  EventLoop loop;
  SimServer server(loop, 1);
  SimTime done = -1;
  server.submit([] { return SimTime{0}; }, [&](Outcome) { done = loop.now(); });
  loop.run();
  EXPECT_EQ(done, 0);
}

TEST(SimServerTest, NullJobThrows) {
  EventLoop loop;
  SimServer server(loop, 1);
  EXPECT_THROW(server.submit(nullptr), std::invalid_argument);
}

TEST(SimServerTest, JobWorkExecutesAtDispatchTime) {
  // The real data-structure work inside a job must observe the virtual time
  // at which a worker picks it up, not submission time.
  EventLoop loop;
  SimServer server(loop, 1);
  SimTime work_time = -1;
  server.submit([] { return SimTime{100}; });
  server.submit([&] {
    work_time = loop.now();
    return SimTime{10};
  });
  loop.run();
  EXPECT_EQ(work_time, 100);
}

// --- overload control: bounded queue, admission, deadlines, reset ---

TEST(SimServerTest, UnboundedQueueNeverSheds) {
  EventLoop loop;
  SimServer server(loop, 1);  // queue_limit == 0: legacy behavior
  int ok = 0;
  for (int i = 0; i < 100; ++i)
    server.submit([] { return SimTime{1}; },
                  [&](Outcome o) { ok += (o == Outcome::kOk); });
  loop.run();
  EXPECT_EQ(ok, 100);
  EXPECT_EQ(server.shed_jobs(), 0u);
}

TEST(SimServerTest, RejectNewShedsArrivalsBeyondQueueLimit) {
  EventLoop loop;
  SimServer server(loop, {1, 2, AdmissionPolicy::kRejectNew});
  std::vector<Outcome> outcomes(5, Outcome::kOk);
  std::vector<SimTime> when(5, -1);
  for (int i = 0; i < 5; ++i)
    server.submit([] { return SimTime{100}; }, [&, i](Outcome o) {
      outcomes[static_cast<std::size_t>(i)] = o;
      when[static_cast<std::size_t>(i)] = loop.now();
    });
  // Job 0 in service, 1-2 queued, 3-4 shed at submit time (t=0).
  EXPECT_EQ(server.queue_length(), 2u);
  loop.run();
  EXPECT_EQ(outcomes[0], Outcome::kOk);
  EXPECT_EQ(outcomes[1], Outcome::kOk);
  EXPECT_EQ(outcomes[2], Outcome::kOk);
  EXPECT_EQ(outcomes[3], Outcome::kShed);
  EXPECT_EQ(outcomes[4], Outcome::kShed);
  EXPECT_EQ(when[3], 0);  // pushback is immediate, not after queueing delay
  EXPECT_EQ(when[4], 0);
  EXPECT_EQ(server.shed_jobs(), 2u);
  EXPECT_EQ(server.completed_jobs(), 3u);
  EXPECT_EQ(server.peak_queue_length(), 2u);
}

TEST(SimServerTest, DropOldestShedsHeadAndAdmitsNew) {
  EventLoop loop;
  SimServer server(loop, {1, 2, AdmissionPolicy::kDropOldest});
  std::vector<Outcome> outcomes(5, Outcome::kDropped);
  for (int i = 0; i < 5; ++i)
    server.submit([] { return SimTime{100}; },
                  [&, i](Outcome o) { outcomes[static_cast<std::size_t>(i)] = o; });
  loop.run();
  // 0 in service; 1 and 2 queued; 3 evicts 1, 4 evicts 2 — the freshest
  // two arrivals win the queue slots.
  EXPECT_EQ(outcomes[0], Outcome::kOk);
  EXPECT_EQ(outcomes[1], Outcome::kShed);
  EXPECT_EQ(outcomes[2], Outcome::kShed);
  EXPECT_EQ(outcomes[3], Outcome::kOk);
  EXPECT_EQ(outcomes[4], Outcome::kOk);
  EXPECT_EQ(server.shed_jobs(), 2u);
  EXPECT_EQ(server.completed_jobs(), 3u);
}

TEST(SimServerTest, DeadOnArrivalJobExpiresImmediately) {
  EventLoop loop;
  SimServer server(loop, 1);
  loop.schedule(50, [&] {
    server.submit([] { return SimTime{10}; },
                  [&](Outcome o) { EXPECT_EQ(o, Outcome::kDeadlineExceeded); },
                  /*deadline=*/20);
  });
  loop.run();
  EXPECT_EQ(server.expired_jobs(), 1u);
  EXPECT_EQ(server.completed_jobs(), 0u);
}

TEST(SimServerTest, QueuedJobPastDeadlineExpiresAtDispatch) {
  EventLoop loop;
  SimServer server(loop, 1);
  Outcome second = Outcome::kOk;
  SimTime second_at = -1;
  server.submit([] { return SimTime{100}; });
  // Reaches the head of the queue at t=100, past its t=50 deadline: it must
  // NOT consume a worker; the expiry fires as the worker frees.
  server.submit([] { return SimTime{10}; },
                [&](Outcome o) {
                  second = o;
                  second_at = loop.now();
                },
                /*deadline=*/50);
  loop.run();
  EXPECT_EQ(second, Outcome::kDeadlineExceeded);
  EXPECT_EQ(second_at, 100);
  EXPECT_EQ(server.expired_jobs(), 1u);
  EXPECT_EQ(server.total_service_time(), 100);  // expired job did no work
}

TEST(SimServerTest, JobMeetingDeadlineRunsNormally) {
  EventLoop loop;
  SimServer server(loop, 1);
  Outcome got = Outcome::kShed;
  server.submit([] { return SimTime{10}; }, [&](Outcome o) { got = o; },
                /*deadline=*/1000);
  loop.run();
  EXPECT_EQ(got, Outcome::kOk);
  EXPECT_EQ(server.expired_jobs(), 0u);
}

TEST(SimServerTest, ResetNotifiesQueuedAndInServiceJobsAsDropped) {
  EventLoop loop;
  SimServer server(loop, 1);
  std::vector<Outcome> outcomes;
  for (int i = 0; i < 3; ++i)
    server.submit([] { return SimTime{100}; },
                  [&](Outcome o) { outcomes.push_back(o); });
  loop.schedule(50, [&] {
    // Crash mid-service: 1 in service + 2 queued, all must learn their fate
    // (a silent reset would leave the scatter layer waiting for a timeout).
    EXPECT_EQ(server.reset(), 3u);
  });
  loop.run();
  ASSERT_EQ(outcomes.size(), 3u);
  for (Outcome o : outcomes) EXPECT_EQ(o, Outcome::kDropped);
  EXPECT_EQ(server.dropped_jobs(), 3u);
  EXPECT_EQ(server.completed_jobs(), 0u);
  EXPECT_TRUE(server.idle());
}

TEST(SimServerTest, InServiceFinishAfterResetDoesNotComplete) {
  EventLoop loop;
  SimServer server(loop, 1);
  int completions = 0;
  server.submit([] { return SimTime{100}; }, [&](Outcome) { ++completions; });
  loop.schedule(50, [&] { server.reset(); });
  loop.run();
  // Exactly one notification (kDropped at reset); the orphaned worker-finish
  // event at t=100 must not double-fire.
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(server.completed_jobs(), 0u);
}

TEST(SimServerTest, ServerUsableAfterReset) {
  EventLoop loop;
  SimServer server(loop, {2, 4, AdmissionPolicy::kRejectNew});
  server.submit([] { return SimTime{100}; });
  loop.schedule(10, [&] { server.reset(); });
  SimTime done = -1;
  loop.schedule(200, [&] {
    server.submit([] { return SimTime{30}; },
                  [&](Outcome o) {
                    EXPECT_EQ(o, Outcome::kOk);
                    done = loop.now();
                  });
  });
  loop.run();
  EXPECT_EQ(done, 230);
}

TEST(SimServerTest, OutcomeToString) {
  EXPECT_STREQ(to_string(Outcome::kOk), "ok");
  EXPECT_STREQ(to_string(Outcome::kShed), "shed");
  EXPECT_STREQ(to_string(Outcome::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(to_string(Outcome::kDropped), "dropped");
}

}  // namespace
}  // namespace stash::sim
