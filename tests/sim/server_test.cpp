#include "sim/server.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stash::sim {
namespace {

TEST(SimServerTest, ValidatesWorkers) {
  EventLoop loop;
  EXPECT_THROW(SimServer(loop, 0), std::invalid_argument);
}

TEST(SimServerTest, SingleJobRunsForItsDuration) {
  EventLoop loop;
  SimServer server(loop, 1);
  SimTime completed_at = -1;
  server.submit([] { return SimTime{100}; }, [&] { completed_at = loop.now(); });
  loop.run();
  EXPECT_EQ(completed_at, 100);
  EXPECT_EQ(server.completed_jobs(), 1u);
  EXPECT_EQ(server.total_service_time(), 100);
  EXPECT_EQ(server.total_queue_wait(), 0);
}

TEST(SimServerTest, SingleWorkerSerializesJobs) {
  EventLoop loop;
  SimServer server(loop, 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i)
    server.submit([] { return SimTime{100}; },
                  [&] { completions.push_back(loop.now()); });
  EXPECT_EQ(server.queue_length(), 2u);  // one dispatched, two queued
  loop.run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(server.total_queue_wait(), 100 + 200);
}

TEST(SimServerTest, MultipleWorkersRunInParallel) {
  EventLoop loop;
  SimServer server(loop, 8);
  std::vector<SimTime> completions;
  for (int i = 0; i < 8; ++i)
    server.submit([] { return SimTime{100}; },
                  [&] { completions.push_back(loop.now()); });
  loop.run();
  ASSERT_EQ(completions.size(), 8u);
  for (SimTime t : completions) EXPECT_EQ(t, 100);  // all in parallel
}

TEST(SimServerTest, NinthJobWaitsForFreeWorker) {
  EventLoop loop;
  SimServer server(loop, 8);
  SimTime ninth = -1;
  for (int i = 0; i < 8; ++i) server.submit([] { return SimTime{100}; });
  server.submit([] { return SimTime{50}; }, [&] { ninth = loop.now(); });
  EXPECT_EQ(server.queue_length(), 1u);
  loop.run();
  EXPECT_EQ(ninth, 150);  // starts at 100 when a worker frees, runs 50
}

TEST(SimServerTest, FifoOrderPreserved) {
  EventLoop loop;
  SimServer server(loop, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    server.submit([] { return SimTime{10}; }, [&order, i] { order.push_back(i); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimServerTest, QueueLengthVisibleToHotspotDetector) {
  EventLoop loop;
  SimServer server(loop, 2);
  for (int i = 0; i < 10; ++i) server.submit([] { return SimTime{1000}; });
  // 2 being serviced, 8 pending — the §VII-B.1 hotspot signal.
  EXPECT_EQ(server.busy_workers(), 2);
  EXPECT_EQ(server.queue_length(), 8u);
  loop.run();
  EXPECT_TRUE(server.idle());
}

TEST(SimServerTest, JobsSubmittedFromCompletionsRun) {
  EventLoop loop;
  SimServer server(loop, 1);
  SimTime second_done = -1;
  server.submit([] { return SimTime{10}; }, [&] {
    server.submit([] { return SimTime{20}; }, [&] { second_done = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(second_done, 30);
}

TEST(SimServerTest, ZeroDurationJobCompletesImmediately) {
  EventLoop loop;
  SimServer server(loop, 1);
  SimTime done = -1;
  server.submit([] { return SimTime{0}; }, [&] { done = loop.now(); });
  loop.run();
  EXPECT_EQ(done, 0);
}

TEST(SimServerTest, NullJobThrows) {
  EventLoop loop;
  SimServer server(loop, 1);
  EXPECT_THROW(server.submit(nullptr), std::invalid_argument);
}

TEST(SimServerTest, JobWorkExecutesAtDispatchTime) {
  // The real data-structure work inside a job must observe the virtual time
  // at which a worker picks it up, not submission time.
  EventLoop loop;
  SimServer server(loop, 1);
  SimTime work_time = -1;
  server.submit([] { return SimTime{100}; });
  server.submit([&] {
    work_time = loop.now();
    return SimTime{10};
  });
  loop.run();
  EXPECT_EQ(work_time, 100);
}

}  // namespace
}  // namespace stash::sim
