#include "workload/session.hpp"

#include <gtest/gtest.h>

#include <set>

namespace stash::workload {
namespace {

using client::NavAction;

TEST(SessionTest, ShapeMatchesConfig) {
  SessionGenerator gen;
  SessionConfig config;
  config.actions = 25;
  const Session session = gen.generate(config);
  EXPECT_EQ(session.queries.size(), 26u);
  EXPECT_EQ(session.actions.size(), 25u);
  for (const auto& q : session.queries) EXPECT_TRUE(q.valid());
}

TEST(SessionTest, ActionsReproduceTransitions) {
  // Each recorded action, applied to the preceding view, yields the next
  // one (except Jump, which teleports).
  SessionGenerator gen;
  SessionConfig config;
  config.actions = 40;
  const Session session = gen.generate(config);
  for (std::size_t i = 0; i < session.actions.size(); ++i) {
    const NavAction action = session.actions[i];
    if (action == NavAction::Jump) continue;
    const NavAction observed =
        client::classify_transition(session.queries[i], session.queries[i + 1]);
    EXPECT_EQ(observed, action)
        << "step " << i << ": " << to_string(action) << " vs "
        << to_string(observed);
  }
}

TEST(SessionTest, ResolutionStaysInBounds) {
  SessionGenerator gen;
  SessionConfig config;
  config.actions = 100;
  config.zoom_weight = 1.0;  // zoom-heavy
  config.pan_weight = 0.2;
  config.min_spatial = 3;
  config.max_spatial = 7;
  const Session session = gen.generate(config);
  for (const auto& q : session.queries) {
    EXPECT_GE(q.res.spatial, 3);
    EXPECT_LE(q.res.spatial, 7);
  }
}

TEST(SessionTest, MomentumProducesRepeatedPans) {
  SessionGenerator gen;
  SessionConfig config;
  config.actions = 200;
  config.momentum = 0.9;
  config.pan_weight = 1.0;
  config.zoom_weight = 0.0;
  config.slice_weight = 0.0;
  config.jump_weight = 0.0;
  const Session session = gen.generate(config);
  std::size_t repeats = 0;
  for (std::size_t i = 1; i < session.actions.size(); ++i)
    if (session.actions[i] == session.actions[i - 1]) ++repeats;
  // With 0.9 momentum the same direction dominates consecutive steps.
  EXPECT_GT(repeats, session.actions.size() / 2);
}

TEST(SessionTest, DeterministicForSeed) {
  WorkloadConfig wl;
  wl.seed = 99;
  SessionGenerator a(wl);
  SessionGenerator b(wl);
  const SessionConfig config;
  const Session sa = a.generate(config);
  const Session sb = b.generate(config);
  ASSERT_EQ(sa.queries.size(), sb.queries.size());
  for (std::size_t i = 0; i < sa.queries.size(); ++i)
    EXPECT_EQ(sa.queries[i].area, sb.queries[i].area) << i;
  EXPECT_EQ(sa.actions, sb.actions);
}

TEST(SessionTest, InterleavedRoundRobin) {
  SessionGenerator gen;
  SessionConfig config;
  config.actions = 10;
  const auto mixed = gen.interleaved(config, 4);
  EXPECT_EQ(mixed.size(), 4u * 11u);
  // Consecutive entries belong to different users: the first four queries
  // are four distinct session starts.
  std::set<double> starts;
  for (int u = 0; u < 4; ++u) starts.insert(mixed[static_cast<std::size_t>(u)].area.lat_min);
  EXPECT_GT(starts.size(), 1u);
}

TEST(SessionTest, MixUsesEveryActionClass) {
  SessionGenerator gen;
  SessionConfig config;
  config.actions = 300;
  config.momentum = 0.2;
  const Session session = gen.generate(config);
  bool saw_pan = false;
  bool saw_zoom = false;
  bool saw_slice = false;
  bool saw_jump = false;
  for (const auto action : session.actions) {
    switch (action) {
      case NavAction::DrillDown:
      case NavAction::RollUp: saw_zoom = true; break;
      case NavAction::SliceNext:
      case NavAction::SlicePrev: saw_slice = true; break;
      case NavAction::Jump: saw_jump = true; break;
      case NavAction::Repeat: break;
      default: saw_pan = true; break;
    }
  }
  EXPECT_TRUE(saw_pan);
  EXPECT_TRUE(saw_zoom);
  EXPECT_TRUE(saw_slice);
  EXPECT_TRUE(saw_jump);
}

}  // namespace
}  // namespace stash::workload
