#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/civil_time.hpp"

namespace stash::workload {
namespace {

TEST(WorkloadTest, ExtentsMatchPaper) {
  EXPECT_DOUBLE_EQ(extent_of(QueryGroup::Country).dlat, 16.0);
  EXPECT_DOUBLE_EQ(extent_of(QueryGroup::Country).dlng, 32.0);
  EXPECT_DOUBLE_EQ(extent_of(QueryGroup::State).dlat, 4.0);
  EXPECT_DOUBLE_EQ(extent_of(QueryGroup::State).dlng, 8.0);
  EXPECT_DOUBLE_EQ(extent_of(QueryGroup::County).dlat, 0.6);
  EXPECT_DOUBLE_EQ(extent_of(QueryGroup::County).dlng, 1.2);
  EXPECT_DOUBLE_EQ(extent_of(QueryGroup::City).dlat, 0.2);
  EXPECT_DOUBLE_EQ(extent_of(QueryGroup::City).dlng, 0.5);
}

TEST(WorkloadTest, DefaultTimeIsPaperQueryTime) {
  const WorkloadConfig config;
  EXPECT_EQ(config.time.begin, unix_seconds({2015, 2, 2}));
  EXPECT_EQ(config.time.end, unix_seconds({2015, 2, 3}));
  EXPECT_EQ(config.res, (Resolution{6, TemporalRes::Day}));
}

TEST(WorkloadTest, RandomQueriesStayInDomainWithRightExtent) {
  WorkloadGenerator gen;
  for (auto group : {QueryGroup::Country, QueryGroup::State, QueryGroup::County,
                     QueryGroup::City}) {
    for (int i = 0; i < 50; ++i) {
      const AggregationQuery q = gen.random_query(group);
      EXPECT_TRUE(q.valid());
      EXPECT_NEAR(q.area.height(), extent_of(group).dlat, 1e-9);
      EXPECT_NEAR(q.area.width(), extent_of(group).dlng, 1e-9);
      EXPECT_TRUE(gen.config().domain.contains(q.area)) << q.area.to_string();
    }
  }
}

TEST(WorkloadTest, SeedsReproduce) {
  WorkloadGenerator a;
  WorkloadGenerator b;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.random_query(QueryGroup::State).area,
              b.random_query(QueryGroup::State).area);
  }
}

TEST(WorkloadTest, DescendingDicingShrinksBy20PercentPerStep) {
  WorkloadGenerator gen;
  const auto seq = gen.iterative_dicing(QueryGroup::Country, 5, true);
  ASSERT_EQ(seq.size(), 5u);
  EXPECT_NEAR(seq[0].area.height(), 16.0, 1e-9);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_NEAR(seq[i].area.height(), seq[i - 1].area.height() * 0.8, 1e-9);
    EXPECT_NEAR(seq[i].area.width(), seq[i - 1].area.width() * 0.8, 1e-9);
    // Nested: each query is a subset of the previous (the Fig 7a setup).
    EXPECT_TRUE(seq[i - 1].area.contains(seq[i].area));
  }
  // Final size ~ (6.6, 13.1): the paper quotes ~(5.2, 10.4) after one more
  // 0.8 step; shapes and nesting are what matter.
  EXPECT_NEAR(seq.back().area.height(), 16.0 * 0.8 * 0.8 * 0.8 * 0.8, 1e-9);
}

TEST(WorkloadTest, AscendingDicingIsReverseOfDescending) {
  WorkloadConfig config;
  config.seed = 7;
  WorkloadGenerator gen_a(config);
  WorkloadGenerator gen_b(config);
  const auto desc = gen_a.iterative_dicing(QueryGroup::Country, 5, true);
  const auto asc = gen_b.iterative_dicing(QueryGroup::Country, 5, false);
  ASSERT_EQ(desc.size(), asc.size());
  for (std::size_t i = 0; i < desc.size(); ++i)
    EXPECT_EQ(desc[i].area, asc[asc.size() - 1 - i].area);
}

TEST(WorkloadTest, DicingValidation) {
  WorkloadGenerator gen;
  EXPECT_THROW((void)gen.iterative_dicing(QueryGroup::State, 0, true),
               std::invalid_argument);
  EXPECT_THROW((void)gen.iterative_dicing(QueryGroup::State, 3, true, 1.0),
               std::invalid_argument);
}

TEST(WorkloadTest, PanningCoversEightDirections) {
  WorkloadGenerator gen;
  const AggregationQuery base = gen.random_query(QueryGroup::State);
  const auto seq = gen.panning_sequence(base, 0.25);
  ASSERT_EQ(seq.size(), 9u);
  EXPECT_EQ(seq[0].area, base.area);
  std::set<std::pair<double, double>> offsets;
  for (std::size_t i = 1; i < seq.size(); ++i) {
    const double dlat = seq[i].area.lat_min - base.area.lat_min;
    const double dlng = seq[i].area.lng_min - base.area.lng_min;
    offsets.insert({std::round(dlat * 1e6), std::round(dlng * 1e6)});
    // Every panned box overlaps the base (75% shift keeps 75% overlap).
    EXPECT_TRUE(seq[i].area.intersects(base.area));
  }
  EXPECT_EQ(offsets.size(), 8u);
}

TEST(WorkloadTest, PanWalkStepsOverlapSuccessively) {
  WorkloadGenerator gen;
  const auto walk = gen.pan_walk(gen.random_query(QueryGroup::County), 0.1, 20);
  ASSERT_EQ(walk.size(), 21u);
  for (std::size_t i = 1; i < walk.size(); ++i) {
    EXPECT_TRUE(walk[i].area.intersects(walk[i - 1].area)) << i;
    EXPECT_NEAR(walk[i].area.area(), walk[0].area.area(), 1e-6);
  }
}

TEST(WorkloadTest, ZoomSequencesChangeOnlyResolution) {
  WorkloadGenerator gen;
  const AggregationQuery base = gen.random_query(QueryGroup::State);
  const auto drill = gen.zoom_sequence(base, 2, 6);
  ASSERT_EQ(drill.size(), 5u);
  for (std::size_t i = 0; i < drill.size(); ++i) {
    EXPECT_EQ(drill[i].res.spatial, static_cast<int>(i) + 2);
    EXPECT_EQ(drill[i].area, base.area);
  }
  const auto roll = gen.zoom_sequence(base, 6, 2);
  ASSERT_EQ(roll.size(), 5u);
  EXPECT_EQ(roll.front().res.spatial, 6);
  EXPECT_EQ(roll.back().res.spatial, 2);
}

TEST(WorkloadTest, ThroughputWorkloadShape) {
  WorkloadGenerator gen;
  const auto queries = gen.throughput_workload(QueryGroup::County, 10, 9, 0.1);
  EXPECT_EQ(queries.size(), 100u);  // 10 rects x (1 base + 9 pans)
  for (const auto& q : queries)
    EXPECT_NEAR(q.area.height(), 0.6, 1e-9);
}

TEST(WorkloadTest, HotspotBurstStaysNearOnePoint) {
  WorkloadGenerator gen;
  const auto burst = gen.hotspot_burst(QueryGroup::County, 100, 0.1);
  ASSERT_EQ(burst.size(), 100u);
  const BoundingBox& first = burst[0].area;
  for (const auto& q : burst) {
    EXPECT_LT(std::abs(q.area.lat_min - first.lat_min), first.height());
    EXPECT_LT(std::abs(q.area.lng_min - first.lng_min), first.width());
  }
}

TEST(WorkloadTest, ZipfWorkloadSkewsTowardFewRegions) {
  WorkloadGenerator gen;
  const auto queries = gen.zipf_workload(QueryGroup::City, 50, 2000, 1.2);
  ASSERT_EQ(queries.size(), 2000u);
  std::map<double, int> by_region;
  for (const auto& q : queries) ++by_region[q.area.lat_min * 1000 + q.area.lng_min];
  EXPECT_LE(by_region.size(), 50u);
  int max_count = 0;
  for (const auto& [k, c] : by_region) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 2000 / 10);  // the top region dominates
}

}  // namespace
}  // namespace stash::workload
