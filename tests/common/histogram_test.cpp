#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace stash {
namespace {

TEST(LatencyStatsTest, EmptyThrows) {
  const LatencyStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_THROW((void)stats.mean(), std::logic_error);
  EXPECT_THROW((void)stats.percentile(0.5), std::logic_error);
  EXPECT_THROW((void)stats.min(), std::logic_error);
}

TEST(LatencyStatsTest, SingleSample) {
  LatencyStats stats;
  stats.record(42);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.min(), 42);
  EXPECT_EQ(stats.max(), 42);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_EQ(stats.p50(), 42);
  EXPECT_EQ(stats.p99(), 42);
}

TEST(LatencyStatsTest, KnownPercentiles) {
  LatencyStats stats;
  for (int i = 1; i <= 100; ++i) stats.record(i);  // 1..100
  EXPECT_EQ(stats.percentile(0.50), 50);
  EXPECT_EQ(stats.percentile(0.95), 95);
  EXPECT_EQ(stats.percentile(0.99), 99);
  EXPECT_EQ(stats.percentile(0.0), 1);
  EXPECT_EQ(stats.percentile(1.0), 100);
  EXPECT_DOUBLE_EQ(stats.mean(), 50.5);
}

TEST(LatencyStatsTest, UnsortedInputHandled) {
  LatencyStats stats;
  for (std::int64_t v : {9, 1, 5, 3, 7}) stats.record(v);
  EXPECT_EQ(stats.min(), 1);
  EXPECT_EQ(stats.max(), 9);
  EXPECT_EQ(stats.p50(), 5);
}

TEST(LatencyStatsTest, RecordAfterQueryStaysConsistent) {
  LatencyStats stats;
  stats.record(10);
  EXPECT_EQ(stats.p50(), 10);
  stats.record(1);
  stats.record(20);
  EXPECT_EQ(stats.min(), 1);
  EXPECT_EQ(stats.p50(), 10);
  EXPECT_EQ(stats.max(), 20);
}

TEST(LatencyStatsTest, QuantileValidation) {
  LatencyStats stats;
  stats.record(1);
  EXPECT_THROW((void)stats.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)stats.percentile(1.1), std::invalid_argument);
}

TEST(LatencyStatsTest, RecordAllAndSummary) {
  LatencyStats stats;
  const std::vector<std::int64_t> values{1000, 2000, 3000};
  stats.record_all(values);
  EXPECT_EQ(stats.count(), 3u);
  const std::string summary = stats.summary_ms();
  EXPECT_NE(summary.find("mean=2.00ms"), std::string::npos);
  EXPECT_NE(summary.find("n=3"), std::string::npos);
}

TEST(LatencyStatsTest, SummaryConvertsMicrosecondsToMilliseconds) {
  // Regression for the summary_us -> summary_ms rename: the method takes
  // microsecond samples and must render them /1000 under an "ms" unit.  A
  // 1234 us sample is 1.23 ms, never "1234.00ms".
  LatencyStats stats;
  stats.record(1234);
  const std::string summary = stats.summary_ms();
  EXPECT_NE(summary.find("mean=1.23ms"), std::string::npos);
  EXPECT_EQ(summary.find("1234.00"), std::string::npos);
}

TEST(LatencyStatsTest, PercentileEndpointsSingleSample) {
  LatencyStats stats;
  stats.record(7);
  EXPECT_EQ(stats.percentile(0.0), 7);
  EXPECT_EQ(stats.percentile(0.5), 7);
  EXPECT_EQ(stats.percentile(1.0), 7);
}

TEST(LatencyStatsTest, PercentileEndpointsMultiSample) {
  LatencyStats stats;
  for (std::int64_t v : {30, 10, 20}) stats.record(v);
  EXPECT_EQ(stats.percentile(0.0), 10);   // q=0 is the minimum
  EXPECT_EQ(stats.percentile(1.0), 30);   // q=1 is the maximum
}

TEST(LatencyStatsTest, PercentilesBracketMean) {
  LatencyStats stats;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i)
    stats.record(static_cast<std::int64_t>(rng.uniform(0.0, 1e6)));
  EXPECT_LE(stats.min(), stats.p50());
  EXPECT_LE(stats.p50(), stats.p95());
  EXPECT_LE(stats.p95(), stats.p99());
  EXPECT_LE(stats.p99(), stats.max());
  EXPECT_NEAR(stats.mean(), 5e5, 2e4);
  EXPECT_NEAR(static_cast<double>(stats.p50()), 5e5, 2e4);
}

}  // namespace
}  // namespace stash
