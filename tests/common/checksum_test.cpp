#include "common/checksum.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace stash {
namespace {

TEST(ChecksumTest, DeterministicAcrossCalls) {
  const std::string data = "spatiotemporal aggregation";
  EXPECT_EQ(checksum64(data), checksum64(data));
  EXPECT_EQ(checksum64(data), checksum64(std::string(data)));
}

TEST(ChecksumTest, ConstexprUsable) {
  // The whole point of the constexpr design: digests computable at compile
  // time (static_asserts inside checksum.hpp already pin reference values).
  constexpr std::uint64_t h = checksum64("stash");
  static_assert(h != 0);
  EXPECT_EQ(h, checksum64(std::string_view("stash")));
}

TEST(ChecksumTest, EmptyInputHasStableNonTrivialDigest) {
  const std::uint64_t empty = checksum64(std::string_view{});
  EXPECT_EQ(empty, Checksum64().digest());
  EXPECT_NE(empty, 0u);  // avalanche of the seed, not a pass-through
}

TEST(ChecksumTest, SeedSeparatesDomains) {
  const std::string data = "identical bytes";
  const std::uint64_t a = checksum64(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size(), 1);
  const std::uint64_t b = checksum64(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size(), 2);
  EXPECT_NE(a, b);
}

TEST(ChecksumTest, StreamingMixOrderMatters) {
  const std::uint64_t ab = Checksum64().mix(1).mix(2).digest();
  const std::uint64_t ba = Checksum64().mix(2).mix(1).digest();
  EXPECT_NE(ab, ba);
}

TEST(ChecksumTest, EverySingleBitFlipChangesDigest) {
  // The frame footer must catch any one flipped payload bit.  Exhaustive
  // over a small buffer: flip each bit, expect a different digest.
  std::vector<std::uint8_t> data(37);
  Rng rng(0xC0FFEEu);
  for (auto& byte : data) byte = static_cast<std::uint8_t>(rng.next_u64());
  const std::uint64_t clean = checksum64(data.data(), data.size());
  for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(checksum64(data.data(), data.size()), clean) << "bit " << bit;
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  EXPECT_EQ(checksum64(data.data(), data.size()), clean);
}

TEST(ChecksumTest, LengthExtensionDistinct) {
  // "ab" then "c" must differ from "abc" fed whole only if the streaming
  // interface is word-based — it is, so the contract is word granularity:
  // identical word sequences agree, different sequences disagree.
  const std::uint64_t split = Checksum64().mix(0xabcd).mix(0xef01).digest();
  const std::uint64_t whole = Checksum64().mix(0xabcd).mix(0xef01).digest();
  EXPECT_EQ(split, whole);
  EXPECT_NE(split, Checksum64().mix(0xabcd).digest());
}

TEST(ChecksumTest, DistributionSmoke) {
  // Digests of sequential integers should not collide and should spread
  // across the 64-bit space (top byte diversity as a cheap proxy).
  std::vector<std::uint64_t> digests;
  bool top_bytes[256] = {};
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const std::uint64_t h = Checksum64().mix(i).digest();
    digests.push_back(h);
    top_bytes[h >> 56] = true;
  }
  std::sort(digests.begin(), digests.end());
  EXPECT_EQ(std::adjacent_find(digests.begin(), digests.end()), digests.end());
  int covered = 0;
  for (bool seen : top_bytes) covered += seen ? 1 : 0;
  EXPECT_GT(covered, 200);  // ~255 expected for 4096 uniform draws
}

}  // namespace
}  // namespace stash
