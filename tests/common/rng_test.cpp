#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace stash {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(RngTest, ReseedResetsStream) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.5, 12.25);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 12.25);
  }
}

TEST(RngTest, NextBelowCoversRangeUniformly) {
  Rng rng(11);
  std::array<int, 10> histogram{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i)
    ++histogram[rng.next_below(histogram.size())];
  for (int count : histogram) {
    EXPECT_GT(count, kDraws / 10 - kDraws / 50);
    EXPECT_LT(count, kDraws / 10 + kDraws / 50);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 1000 draws
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(29);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

}  // namespace
}  // namespace stash
