#include "common/civil_time.hpp"

#include <gtest/gtest.h>

namespace stash {
namespace {

TEST(CivilTimeTest, LeapYears) {
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_TRUE(is_leap_year(2012));
  EXPECT_TRUE(is_leap_year(2016));
  EXPECT_FALSE(is_leap_year(1900));
  EXPECT_FALSE(is_leap_year(2013));
  EXPECT_FALSE(is_leap_year(2015));
}

TEST(CivilTimeTest, DaysInMonth) {
  EXPECT_EQ(days_in_month(2015, 1), 31);
  EXPECT_EQ(days_in_month(2015, 2), 28);
  EXPECT_EQ(days_in_month(2016, 2), 29);
  EXPECT_EQ(days_in_month(2015, 4), 30);
  EXPECT_EQ(days_in_month(2015, 12), 31);
}

TEST(CivilTimeTest, EpochIsDayZero) {
  EXPECT_EQ(days_from_civil({1970, 1, 1}), 0);
  EXPECT_EQ(civil_from_days(0), (CivilDate{1970, 1, 1}));
}

TEST(CivilTimeTest, KnownDates) {
  // 2015-02-02 (the paper's Query_Time) is 16468 days after the epoch.
  EXPECT_EQ(days_from_civil({2015, 2, 2}), 16468);
  EXPECT_EQ(days_from_civil({2000, 3, 1}), 11017);
  EXPECT_EQ(days_from_civil({1969, 12, 31}), -1);
}

TEST(CivilTimeTest, RoundTripOverDecades) {
  for (std::int64_t d = -20000; d <= 40000; d += 17) {
    const CivilDate c = civil_from_days(d);
    EXPECT_EQ(days_from_civil(c), d);
    EXPECT_GE(c.month, 1);
    EXPECT_LE(c.month, 12);
    EXPECT_GE(c.day, 1);
    EXPECT_LE(c.day, days_in_month(c.year, c.month));
  }
}

TEST(CivilTimeTest, ConsecutiveDaysAreConsecutive) {
  std::int64_t prev = days_from_civil({2012, 1, 1});
  for (int month = 1; month <= 12; ++month) {
    for (int day = 1; day <= days_in_month(2012, month); ++day) {
      if (month == 1 && day == 1) continue;
      const std::int64_t cur = days_from_civil({2012, month, day});
      EXPECT_EQ(cur, prev + 1);
      prev = cur;
    }
  }
}

TEST(CivilTimeTest, UnixSecondsMidnight) {
  EXPECT_EQ(unix_seconds({1970, 1, 1}), 0);
  EXPECT_EQ(unix_seconds({1970, 1, 2}), 86400);
  EXPECT_EQ(unix_seconds({2015, 2, 2}), 16468 * 86400);
}

TEST(CivilTimeTest, UnixSecondsWithTimeOfDay) {
  EXPECT_EQ(unix_seconds({1970, 1, 1}, 1, 2, 3), 3723);
}

TEST(CivilTimeTest, CivilFromUnixSecondsRoundTrip) {
  for (std::int64_t ts : {std::int64_t{0}, std::int64_t{123456789},
                          std::int64_t{16468} * 86400 + 5 * 3600,
                          std::int64_t{-86400}, std::int64_t{-1}}) {
    const CivilDateTime dt = civil_from_unix_seconds(ts);
    const std::int64_t back = unix_seconds(dt.date, dt.hour);
    EXPECT_LE(back, ts);
    EXPECT_GT(back + 3600, ts);
  }
}

TEST(CivilTimeTest, NegativeTimestampsFloorCorrectly) {
  const CivilDateTime dt = civil_from_unix_seconds(-1);
  EXPECT_EQ(dt.date, (CivilDate{1969, 12, 31}));
  EXPECT_EQ(dt.hour, 23);
}

}  // namespace
}  // namespace stash
