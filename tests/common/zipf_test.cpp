#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace stash {
namespace {

TEST(ZipfTest, RejectsZeroRanks) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

TEST(ZipfTest, RejectsNegativeSkew) {
  EXPECT_THROW(ZipfDistribution(10, -0.5), std::invalid_argument);
}

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfDistribution z(100, 1.0);
  double total = 0.0;
  for (std::size_t k = 0; k < z.size(); ++k) total += z.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, PmfMonotonicallyDecreasing) {
  const ZipfDistribution z(50, 1.2);
  for (std::size_t k = 1; k < z.size(); ++k) EXPECT_LE(z.pmf(k), z.pmf(k - 1));
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  const ZipfDistribution z(10, 0.0);
  for (std::size_t k = 0; k < z.size(); ++k) EXPECT_NEAR(z.pmf(k), 0.1, 1e-12);
}

TEST(ZipfTest, SamplesWithinRange) {
  const ZipfDistribution z(7, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 7u);
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  const ZipfDistribution z(20, 1.0);
  Rng rng(2);
  std::vector<int> counts(20, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < 20; ++k) {
    const double observed = static_cast<double>(counts[k]) / kDraws;
    EXPECT_NEAR(observed, z.pmf(k), 0.01) << "rank " << k;
  }
}

TEST(ZipfTest, HighSkewConcentratesOnTopRank) {
  const ZipfDistribution z(1000, 2.0);
  EXPECT_GT(z.pmf(0), 0.5);
}

TEST(ZipfTest, PmfOutOfRangeThrows) {
  const ZipfDistribution z(5, 1.0);
  EXPECT_THROW(z.pmf(5), std::out_of_range);
}

}  // namespace
}  // namespace stash
