#include "common/summary.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace stash {
namespace {

TEST(AttributeSummaryTest, EmptyState) {
  const AttributeSummary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(AttributeSummaryTest, SingleValue) {
  AttributeSummary s;
  s.add(4.5);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 4.5);
  EXPECT_EQ(s.max, 4.5);
  EXPECT_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(AttributeSummaryTest, KnownStatistics) {
  AttributeSummary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(AttributeSummaryTest, MergeEqualsBulk) {
  Rng rng(99);
  AttributeSummary bulk;
  AttributeSummary left;
  AttributeSummary right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-50.0, 50.0);
    bulk.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_TRUE(left.approx_equals(bulk));
}

TEST(AttributeSummaryTest, MergeWithEmptyIsIdentity) {
  AttributeSummary s;
  s.add(1.0);
  s.add(2.0);
  const AttributeSummary before = s;
  s.merge(AttributeSummary{});
  EXPECT_EQ(s, before);

  AttributeSummary empty;
  empty.merge(before);
  EXPECT_EQ(empty, before);
}

TEST(AttributeSummaryTest, MergeIsCommutative) {
  AttributeSummary a;
  AttributeSummary b;
  for (double v : {1.0, 2.0, 3.0}) a.add(v);
  for (double v : {10.0, 20.0}) b.add(v);
  AttributeSummary ab = a;
  ab.merge(b);
  AttributeSummary ba = b;
  ba.merge(a);
  EXPECT_TRUE(ab.approx_equals(ba));
}

TEST(AttributeSummaryTest, NegativeValues) {
  AttributeSummary s;
  for (double v : {-3.0, -1.0, -2.0}) s.add(v);
  EXPECT_EQ(s.min, -3.0);
  EXPECT_EQ(s.max, -1.0);
  EXPECT_DOUBLE_EQ(s.mean(), -2.0);
}

TEST(SummaryTest, AttributeCountMismatchThrows) {
  Summary s(3);
  const double two[] = {1.0, 2.0};
  EXPECT_THROW(s.add_observation(two, 2), std::invalid_argument);
}

TEST(SummaryTest, ObservationCountTracksAdds) {
  Summary s(2);
  const double obs[] = {1.0, 2.0};
  EXPECT_TRUE(s.empty());
  s.add_observation(obs, 2);
  s.add_observation(obs, 2);
  EXPECT_EQ(s.observation_count(), 2u);
  EXPECT_FALSE(s.empty());
}

TEST(SummaryTest, MergeMismatchedWidthThrows) {
  Summary a(2);
  Summary b(3);
  const double obs2[] = {1.0, 2.0};
  const double obs3[] = {1.0, 2.0, 3.0};
  a.add_observation(obs2, 2);
  b.add_observation(obs3, 3);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(SummaryTest, MergeIntoDefaultAdoptsShape) {
  Summary a;  // default: zero attributes
  Summary b(2);
  const double obs[] = {3.0, 4.0};
  b.add_observation(obs, 2);
  a.merge(b);
  EXPECT_EQ(a.num_attributes(), 2u);
  EXPECT_EQ(a.observation_count(), 1u);
}

TEST(SummaryTest, SplitMergeMatchesBulk) {
  Rng rng(7);
  Summary bulk(4);
  std::vector<Summary> parts(8, Summary(4));
  for (int i = 0; i < 4000; ++i) {
    double obs[4];
    for (auto& v : obs) v = rng.normal(10.0, 3.0);
    bulk.add_observation(obs, 4);
    parts[static_cast<std::size_t>(i) % parts.size()].add_observation(obs, 4);
  }
  Summary merged(4);
  for (const auto& p : parts) merged.merge(p);
  EXPECT_TRUE(merged.approx_equals(bulk));
}

TEST(SummaryTest, ToStringMentionsCount) {
  Summary s(1);
  const double obs[] = {5.0};
  s.add_observation(obs, 1);
  EXPECT_NE(s.to_string().find("n=1"), std::string::npos);
}

TEST(SummaryTest, ByteSizeGrowsWithAttributes) {
  EXPECT_LT(Summary(1).byte_size(), Summary(8).byte_size());
}

}  // namespace
}  // namespace stash
