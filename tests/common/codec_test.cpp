#include "common/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace stash::codec {
namespace {

const TemporalBin kDay(TemporalRes::Day, 2015, 2, 2);

TEST(CodecTest, VarintRoundTrip) {
  const std::uint64_t values[] = {0,    1,    127,  128,   16383, 16384,
                                  1u << 20, 1ull << 35, ~0ull};
  for (std::uint64_t v : values) {
    Buffer buffer;
    put_varint(buffer, v);
    Reader reader(buffer);
    EXPECT_EQ(reader.varint(), v);
    EXPECT_TRUE(reader.done());
  }
}

TEST(CodecTest, VarintSizes) {
  Buffer one;
  put_varint(one, 127);
  EXPECT_EQ(one.size(), 1u);
  Buffer two;
  put_varint(two, 128);
  EXPECT_EQ(two.size(), 2u);
  Buffer ten;
  put_varint(ten, ~0ull);
  EXPECT_EQ(ten.size(), 10u);
}

TEST(CodecTest, FixedWidthRoundTrip) {
  Buffer buffer;
  put_u32(buffer, 0xdeadbeef);
  put_u64(buffer, 0x0123456789abcdefULL);
  put_double(buffer, -273.15);
  put_double(buffer, 0.0);
  Reader reader(buffer);
  EXPECT_EQ(reader.u32(), 0xdeadbeef);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.f64(), -273.15);
  EXPECT_EQ(reader.f64(), 0.0);
  EXPECT_TRUE(reader.done());
}

TEST(CodecTest, TruncatedInputThrows) {
  Buffer buffer;
  put_u64(buffer, 42);
  buffer.pop_back();
  Reader reader(buffer);
  EXPECT_THROW((void)reader.u64(), std::out_of_range);
}

TEST(CodecTest, VarintOverflowThrows) {
  Buffer buffer(11, 0xff);  // unterminated 11-byte varint
  Reader reader(buffer);
  EXPECT_THROW((void)reader.varint(), std::exception);
}

TEST(CodecTest, CellKeyRoundTrip) {
  const CellKey key("9q8y7z", kDay);
  Buffer buffer;
  encode(buffer, key);
  Reader reader(buffer);
  EXPECT_EQ(decode_cell_key(reader), key);
}

TEST(CodecTest, CellKeyValidationOnDecode) {
  Buffer buffer;
  put_u64(buffer, 0);  // length nibble 0: invalid geohash packing
  put_u32(buffer, kDay.pack());
  Reader reader(buffer);
  EXPECT_THROW((void)decode_cell_key(reader), std::invalid_argument);
}

TEST(CodecTest, SummaryRoundTrip) {
  Rng rng(1);
  Summary summary(kNamAttributeCount);
  for (int i = 0; i < 50; ++i) {
    double obs[kNamAttributeCount];
    for (auto& v : obs) v = rng.normal(0.0, 100.0);
    summary.add_observation(obs, kNamAttributeCount);
  }
  Buffer buffer;
  encode(buffer, summary);
  Reader reader(buffer);
  EXPECT_EQ(decode_summary(reader), summary);
}

TEST(CodecTest, EmptySummaryIsCompact) {
  const Summary empty(kNamAttributeCount);
  Buffer buffer;
  encode(buffer, empty);
  // 1 byte attr count + 1 byte zero-count per attribute.
  EXPECT_EQ(buffer.size(), 1u + kNamAttributeCount);
  Reader reader(buffer);
  EXPECT_EQ(decode_summary(reader), empty);
}

ChunkContribution sample_contribution(int cells) {
  ChunkContribution c;
  c.res = {6, TemporalRes::Day};
  c.chunk = ChunkKey("9q8y", kDay);
  Rng rng(7);
  for (int i = 0; i < cells; ++i) {
    std::string gh = "9q8y";
    gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i) % 32]);
    gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i / 32) % 32]);
    Summary s(kNamAttributeCount);
    double obs[kNamAttributeCount] = {rng.next_double(), rng.next_double(),
                                      rng.next_double(), rng.next_double()};
    s.add_observation(obs, kNamAttributeCount);
    c.cells.emplace_back(CellKey(gh, kDay), std::move(s));
  }
  c.days.push_back(c.chunk.first_day());
  return c;
}

TEST(CodecTest, ChunkContributionRoundTrip) {
  const ChunkContribution original = sample_contribution(40);
  Buffer buffer;
  encode(buffer, original);
  Reader reader(buffer);
  const ChunkContribution decoded = decode_chunk_contribution(reader);
  EXPECT_EQ(decoded.res, original.res);
  EXPECT_EQ(decoded.chunk, original.chunk);
  EXPECT_EQ(decoded.days, original.days);
  ASSERT_EQ(decoded.cells.size(), original.cells.size());
  for (std::size_t i = 0; i < decoded.cells.size(); ++i) {
    EXPECT_EQ(decoded.cells[i].first, original.cells[i].first);
    EXPECT_EQ(decoded.cells[i].second, original.cells[i].second);
  }
}

TEST(CodecTest, ReplicationPayloadRoundTrip) {
  std::vector<ChunkContribution> payload;
  payload.push_back(sample_contribution(12));
  payload.push_back(sample_contribution(0));  // known-empty chunk
  const Buffer buffer = encode_replication_payload(payload);
  const auto decoded = decode_replication_payload(buffer);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].cells.size(), 12u);
  EXPECT_TRUE(decoded[1].cells.empty());
  EXPECT_EQ(decoded[1].days, payload[1].days);
}

TEST(CodecTest, TrailingBytesRejected) {
  Buffer buffer = encode_replication_payload({sample_contribution(1)});
  buffer.push_back(0);
  EXPECT_THROW((void)decode_replication_payload(buffer), std::out_of_range);
}

TEST(CodecTest, EncodedSizeMatchesActual) {
  const std::vector<ChunkContribution> payload{sample_contribution(17),
                                               sample_contribution(3)};
  EXPECT_EQ(encoded_size(payload), encode_replication_payload(payload).size());
}

TEST(CodecTest, PayloadInstallsIntoGraphExactly) {
  // End-to-end: encode a clique payload, decode it on the "helper", absorb
  // into a guest graph — the served cells must match the source bit-for-bit.
  StashGraph source;
  const auto contribution = sample_contribution(25);
  source.absorb(contribution, 0);
  const Buffer wire = encode_replication_payload({contribution});

  StashGraph guest;
  for (const auto& decoded : decode_replication_payload(wire))
    guest.absorb(decoded, 1000);
  for (const auto& [key, summary] : contribution.cells) {
    const Summary* found = guest.find_cell(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, summary);
  }
}

TEST(FrameTest, RoundTripEmptyAndNonEmpty) {
  for (const Buffer& payload :
       {Buffer{}, Buffer{0x42}, Buffer(300, 0xa5)}) {
    const Buffer frame = encode_frame(payload);
    EXPECT_EQ(frame.size(), payload.size() + kFrameOverhead);
    EXPECT_EQ(decode_frame(frame), payload);
  }
}

TEST(FrameTest, RejectsBadMagic) {
  Buffer frame = encode_frame({1, 2, 3});
  frame[0] ^= 0xff;
  EXPECT_THROW((void)decode_frame(frame), IntegrityError);
}

TEST(FrameTest, RejectsShortBuffer) {
  const Buffer frame = encode_frame({1, 2, 3});
  for (std::size_t n = 0; n < frame.size(); ++n) {
    const Buffer prefix(frame.begin(), frame.begin() + static_cast<long>(n));
    EXPECT_THROW((void)decode_frame(prefix), IntegrityError) << "len " << n;
  }
}

TEST(FrameTest, RejectsTrailingBytes) {
  Buffer frame = encode_frame({1, 2, 3});
  frame.push_back(0);
  EXPECT_THROW((void)decode_frame(frame), IntegrityError);
}

TEST(FrameTest, RejectsHostileLengthBeforeAllocating) {
  // A 16-byte buffer claiming a 1 GiB payload must be rejected on the
  // length check alone — decode_frame never allocates for a declared
  // length the buffer cannot back.
  Buffer frame;
  put_u32(frame, kFrameMagic);
  put_u32(frame, 1u << 30);
  put_u64(frame, 0);  // "checksum"
  EXPECT_THROW((void)decode_frame(frame), IntegrityError);
}

TEST(FrameTest, EverySingleBitFlipRejected) {
  // The tentpole guarantee: any one flipped bit anywhere in the frame —
  // magic, length, payload, or footer — is caught.
  Buffer payload;
  for (int i = 0; i < 29; ++i) payload.push_back(static_cast<std::uint8_t>(i * 7));
  const Buffer clean = encode_frame(payload);
  for (std::size_t bit = 0; bit < clean.size() * 8; ++bit) {
    Buffer frame = clean;
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_THROW((void)decode_frame(frame), IntegrityError) << "bit " << bit;
  }
  EXPECT_EQ(decode_frame(clean), payload);  // and the clean frame still decodes
}

TEST(FrameTest, ReplicationFrameRoundTrip) {
  const std::vector<ChunkContribution> payload{sample_contribution(11),
                                               sample_contribution(5)};
  const Buffer frame = encode_replication_frame(payload);
  EXPECT_EQ(frame.size(),
            encode_replication_payload(payload).size() + kFrameOverhead);
  const auto decoded = decode_replication_frame(frame);
  ASSERT_EQ(decoded.size(), payload.size());
  EXPECT_EQ(encode_replication_payload(decoded),
            encode_replication_payload(payload));
}

TEST(FrameTest, ReplicationFrameFlipYieldsIntegrityErrorNotParseError) {
  // With the footer in place a flipped payload bit surfaces as the typed
  // IntegrityError — it never reaches the structural payload parser.
  Buffer frame = encode_replication_frame({sample_contribution(9)});
  frame[frame.size() / 2] ^= 0x10;
  EXPECT_THROW((void)decode_replication_frame(frame), IntegrityError);
}

}  // namespace
}  // namespace stash::codec
