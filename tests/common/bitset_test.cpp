#include "common/bitset.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace stash {
namespace {

TEST(DynamicBitsetTest, DefaultIsEmpty) {
  const DynamicBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
}

TEST(DynamicBitsetTest, SetTestReset) {
  DynamicBitset b(130);  // spans three 64-bit words
  EXPECT_FALSE(b.test(0));
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitsetTest, AllAndNone) {
  DynamicBitset b(5);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.all());
  for (std::size_t i = 0; i < 5; ++i) b.set(i);
  EXPECT_TRUE(b.all());
  EXPECT_FALSE(b.none());
}

TEST(DynamicBitsetTest, ZeroAndOneIndicesPartition) {
  DynamicBitset b(100);
  Rng rng(42);
  for (std::size_t i = 0; i < 100; ++i)
    if (rng.bernoulli(0.4)) b.set(i);
  const auto zeros = b.zero_indices();
  const auto ones = b.one_indices();
  EXPECT_EQ(zeros.size() + ones.size(), 100u);
  for (auto i : zeros) EXPECT_FALSE(b.test(i));
  for (auto i : ones) EXPECT_TRUE(b.test(i));
}

TEST(DynamicBitsetTest, OneIndicesSortedAscending) {
  DynamicBitset b(200);
  b.set(5);
  b.set(70);
  b.set(199);
  const auto ones = b.one_indices();
  ASSERT_EQ(ones.size(), 3u);
  EXPECT_EQ(ones[0], 5u);
  EXPECT_EQ(ones[1], 70u);
  EXPECT_EQ(ones[2], 199u);
}

TEST(DynamicBitsetTest, ClearResetsEverything) {
  DynamicBitset b(64);
  for (std::size_t i = 0; i < 64; ++i) b.set(i);
  b.clear();
  EXPECT_TRUE(b.none());
}

TEST(DynamicBitsetTest, OrCombines) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  a.set(1);
  b.set(8);
  a |= b;
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(8));
  EXPECT_EQ(a.count(), 2u);
}

TEST(DynamicBitsetTest, AndIntersects) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  a &= b;
  EXPECT_EQ(a.count(), 1u);
  EXPECT_TRUE(a.test(2));
}

TEST(DynamicBitsetTest, SizeMismatchThrows) {
  DynamicBitset a(10);
  DynamicBitset b(11);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a &= b, std::invalid_argument);
}

}  // namespace
}  // namespace stash
