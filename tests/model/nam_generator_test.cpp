#include "model/nam_generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/civil_time.hpp"

namespace stash {
namespace {

TimeRange day_range(int year, int month, int day) {
  const std::int64_t begin = unix_seconds({year, month, day});
  return {begin, begin + 86400};
}

TEST(NamGeneratorTest, ConfigValidation) {
  NamGeneratorConfig bad;
  bad.grid_spacing_deg = 0.0;
  EXPECT_THROW(NamGenerator{bad}, std::invalid_argument);
  bad = {};
  bad.observations_per_day = 0;
  EXPECT_THROW(NamGenerator{bad}, std::invalid_argument);
  bad = {};
  bad.coverage = {10.0, 0.0, 0.0, 10.0};
  EXPECT_THROW(NamGenerator{bad}, std::invalid_argument);
}

TEST(NamGeneratorTest, DeterministicAcrossInstances) {
  const NamGenerator a;
  const NamGenerator b;
  const BoundingBox box{30.0, 32.0, -100.0, -98.0};
  const auto r = day_range(2015, 2, 2);
  const auto obs_a = a.generate(box, r);
  const auto obs_b = b.generate(box, r);
  ASSERT_EQ(obs_a.size(), obs_b.size());
  ASSERT_FALSE(obs_a.empty());
  for (std::size_t i = 0; i < obs_a.size(); ++i) {
    EXPECT_EQ(obs_a[i].position, obs_b[i].position);
    EXPECT_EQ(obs_a[i].timestamp, obs_b[i].timestamp);
    EXPECT_EQ(obs_a[i].values, obs_b[i].values);
  }
}

TEST(NamGeneratorTest, SeedChangesValuesNotPositions) {
  NamGeneratorConfig cfg;
  cfg.seed = 1;
  const NamGenerator a{cfg};
  cfg.seed = 2;
  const NamGenerator b{cfg};
  const BoundingBox box{30.0, 31.0, -100.0, -99.0};
  const auto obs_a = a.generate(box, day_range(2015, 2, 2));
  const auto obs_b = b.generate(box, day_range(2015, 2, 2));
  ASSERT_EQ(obs_a.size(), obs_b.size());
  ASSERT_FALSE(obs_a.empty());
  int diff = 0;
  for (std::size_t i = 0; i < obs_a.size(); ++i) {
    EXPECT_EQ(obs_a[i].position, obs_b[i].position);
    if (obs_a[i].values != obs_b[i].values) ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST(NamGeneratorTest, AllRecordsInsideRequestAndCoverage) {
  const NamGenerator gen;
  const BoundingBox box{10.0, 20.0, -140.0, -130.0};  // straddles coverage edge
  const auto r = day_range(2015, 2, 2);
  for (const auto& obs : gen.generate(box, r)) {
    EXPECT_TRUE(box.contains(obs.position));
    EXPECT_TRUE(gen.config().coverage.contains(obs.position));
    EXPECT_TRUE(r.contains(obs.timestamp));
  }
}

TEST(NamGeneratorTest, CountMatchesGenerate) {
  const NamGenerator gen;
  const BoundingBox boxes[] = {
      {30.0, 34.0, -100.0, -92.0},
      {30.0, 30.01, -100.0, -99.99},       // smaller than grid spacing
      {70.0, 80.0, 0.0, 10.0},             // outside coverage
      {59.9, 60.5, -60.0, -54.0},          // straddles coverage corner
  };
  for (const auto& box : boxes) {
    EXPECT_EQ(gen.generate(box, day_range(2015, 2, 2)).size(),
              gen.count(box, day_range(2015, 2, 2)))
        << box.to_string();
  }
}

TEST(NamGeneratorTest, DensityMatchesGridSpacing) {
  const NamGenerator gen;  // 0.12° grid, 4 obs/day
  const BoundingBox box{30.0, 34.0, -100.0, -92.0};  // 4° x 8° state query
  const std::size_t n = gen.count(box, day_range(2015, 2, 2));

  // Expect ~ (4/0.12)*(8/0.12)*4 = 8889, +/- one grid row/col.
  EXPECT_NEAR(static_cast<double>(n), 8889.0, 600.0);
}

TEST(NamGeneratorTest, AdjacentRegionsPartitionRecords) {
  // Splitting a region in half must not duplicate or drop grid points.
  const NamGenerator gen;
  const auto r = day_range(2015, 2, 2);
  const BoundingBox whole{30.0, 32.0, -100.0, -98.0};
  const BoundingBox west{30.0, 32.0, -100.0, -99.0};
  const BoundingBox east{30.0, 32.0, -99.0, -98.0};
  EXPECT_EQ(gen.count(west, r) + gen.count(east, r), gen.count(whole, r));
}

TEST(NamGeneratorTest, AdjacentDaysPartitionRecords) {
  const NamGenerator gen;
  const BoundingBox box{30.0, 31.0, -100.0, -99.0};
  const TimeRange two_days{unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 4})};
  EXPECT_EQ(gen.count(box, day_range(2015, 2, 2)) +
                gen.count(box, day_range(2015, 2, 3)),
            gen.count(box, two_days));
}

TEST(NamGeneratorTest, SynopticTimestamps) {
  const NamGenerator gen;  // 4 obs/day: 00, 06, 12, 18 UTC
  const BoundingBox box{30.0, 30.5, -100.0, -99.5};
  std::set<std::int64_t> hours;
  for (const auto& obs : gen.generate(box, day_range(2015, 2, 2)))
    hours.insert((obs.timestamp % 86400) / 3600);
  EXPECT_EQ(hours, (std::set<std::int64_t>{0, 6, 12, 18}));
}

TEST(NamGeneratorTest, PartialDayReturnsOnlyMatchingSlots) {
  const NamGenerator gen;
  const BoundingBox box{30.0, 30.5, -100.0, -99.5};
  const std::int64_t midnight = unix_seconds({2015, 2, 2});
  const TimeRange morning{midnight, midnight + 7 * 3600};  // 00 and 06 only
  std::set<std::int64_t> hours;
  for (const auto& obs : gen.generate(box, morning))
    hours.insert((obs.timestamp % 86400) / 3600);
  EXPECT_EQ(hours, (std::set<std::int64_t>{0, 6}));
}

TEST(NamGeneratorTest, PhysicallyPlausibleValues) {
  const NamGenerator gen;
  const BoundingBox box{20.0, 55.0, -130.0, -60.0};
  for (const auto& obs : gen.generate(box, day_range(2015, 2, 2))) {
    const double temp = obs.value(NamAttribute::SurfaceTemperatureK);
    EXPECT_GT(temp, 180.0);
    EXPECT_LT(temp, 340.0);
    const double rh = obs.value(NamAttribute::RelativeHumidityPct);
    EXPECT_GE(rh, 0.0);
    EXPECT_LE(rh, 100.0);
    EXPECT_GE(obs.value(NamAttribute::PrecipitationMm), 0.0);
    EXPECT_GE(obs.value(NamAttribute::SnowDepthM), 0.0);
  }
}

TEST(NamGeneratorTest, WinterIsColderThanSummer) {
  const NamGenerator gen;
  const BoundingBox box{40.0, 45.0, -100.0, -95.0};
  double winter_sum = 0.0;
  double summer_sum = 0.0;
  std::size_t n_winter = 0;
  std::size_t n_summer = 0;
  for (const auto& obs : gen.generate(box, day_range(2015, 1, 15))) {
    winter_sum += obs.value(NamAttribute::SurfaceTemperatureK);
    ++n_winter;
  }
  for (const auto& obs : gen.generate(box, day_range(2015, 7, 15))) {
    summer_sum += obs.value(NamAttribute::SurfaceTemperatureK);
    ++n_summer;
  }
  ASSERT_GT(n_winter, 0u);
  ASSERT_GT(n_summer, 0u);
  EXPECT_LT(winter_sum / static_cast<double>(n_winter),
            summer_sum / static_cast<double>(n_summer) - 10.0);
}

TEST(NamGeneratorTest, EmptyOutsideCoverage) {
  const NamGenerator gen;
  EXPECT_TRUE(gen.generate({-40.0, -30.0, 100.0, 110.0},  // southern hemisphere
                            day_range(2015, 2, 2))
                  .empty());
}

TEST(NamGeneratorTest, InvalidInputsThrow) {
  const NamGenerator gen;
  EXPECT_THROW((void)gen.generate({10.0, 0.0, 0.0, 10.0}, day_range(2015, 2, 2)),
               std::invalid_argument);
  EXPECT_THROW((void)gen.generate({0.0, 10.0, 0.0, 10.0}, TimeRange{10, 5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace stash
