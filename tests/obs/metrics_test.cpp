#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace stash::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAddBothWays) {
  Gauge g;
  g.set(10.0);
  g.add(-3.5);
  EXPECT_DOUBLE_EQ(g.value(), 6.5);
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  Histogram h({10.0, 100.0});
  h.observe(5.0);    // <= 10
  h.observe(10.0);   // le is inclusive: still the first bucket
  h.observe(50.0);   // <= 100
  h.observe(1000.0);  // +Inf
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1065.0);
}

TEST(HistogramTest, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({100.0, 10.0}), std::invalid_argument);
}

TEST(HistogramTest, ConcurrentObservationsAllCounted) {
  Histogram h(latency_buckets_us());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(static_cast<double>(i));
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(RegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("stash_x_total", "x");
  Counter& b = reg.counter("stash_x_total", "x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(RegistryTest, MismatchedTypeThrows) {
  MetricsRegistry reg;
  reg.counter("stash_x_total", "x");
  EXPECT_THROW(reg.gauge("stash_x_total", "x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("stash_x_total", "x", {1.0}),
               std::invalid_argument);
  reg.gauge("stash_g", "g");
  EXPECT_THROW(reg.counter("stash_g", "g"), std::invalid_argument);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("stash_zz_total", "later");
  reg.counter("stash_aa_total", "earlier");
  reg.gauge("stash_mm", "middle");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.scalars.size(), 3u);
  EXPECT_EQ(snap.scalars[0].name, "stash_aa_total");
  EXPECT_EQ(snap.scalars[1].name, "stash_mm");
  EXPECT_EQ(snap.scalars[2].name, "stash_zz_total");
}

TEST(RegistryTest, CallbackMetricsComputedAtSnapshot) {
  MetricsRegistry reg;
  double live = 3.0;
  reg.callback("stash_live", "computed", MetricKind::Gauge,
               [&live] { return live; });
  EXPECT_DOUBLE_EQ(reg.snapshot().scalars.at(0).value, 3.0);
  live = 7.0;
  EXPECT_DOUBLE_EQ(reg.snapshot().scalars.at(0).value, 7.0);
}

TEST(ExportTest, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.counter("stash_queries_total", "Queries completed").inc(3);
  reg.gauge("stash_cells", "Cells resident").set(12.0);
  reg.histogram("stash_latency_us", "Latency", {10.0, 100.0}).observe(5.0);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# HELP stash_queries_total Queries completed\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE stash_queries_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("stash_queries_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE stash_cells gauge\n"), std::string::npos);
  EXPECT_NE(text.find("stash_cells 12\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE stash_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("stash_latency_us_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("stash_latency_us_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("stash_latency_us_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("stash_latency_us_count 1\n"), std::string::npos);
}

TEST(ExportTest, JsonSchemaShape) {
  MetricsRegistry reg;
  reg.counter("stash_queries_total", "Queries").inc(2);
  reg.gauge("stash_cells", "Cells").set(5.0);
  reg.histogram("stash_latency_us", "Latency", {10.0}).observe(4.0);
  const std::string json = to_json(reg.snapshot(), 1234);
  EXPECT_EQ(json.find("{\"schema\":\"stash-metrics-v1\",\"sim_time_us\":1234"),
            0u);
  EXPECT_NE(json.find("\"counters\":{\"stash_queries_total\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"stash_cells\":5}"), std::string::npos);
  EXPECT_NE(json.find("\"stash_latency_us\":{\"sum\":4,\"count\":1,"
                      "\"buckets\":[{\"le\":10,\"count\":1},"
                      "{\"le\":\"+Inf\",\"count\":1}]}"),
            std::string::npos);
}

TEST(ExportTest, EqualRegistriesExportIdenticalBytes) {
  const auto build = [] {
    MetricsRegistry reg;
    reg.counter("stash_b_total", "b").inc(7);
    reg.counter("stash_a_total", "a").inc(1);
    reg.histogram("stash_h_us", "h", latency_buckets_us()).observe(300.0);
    return std::make_pair(to_prometheus(reg.snapshot()),
                          to_json(reg.snapshot(), 99));
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace stash::obs
