#include "obs/trace.hpp"

#include <gtest/gtest.h>

namespace stash::obs {
namespace {

TEST(TracerTest, BuildsASpanTree) {
  Tracer tracer;
  const SpanId root = tracer.start_trace(7, "query", 100);
  const SpanId scatter = tracer.start_span(7, root, "scatter", 100);
  const SpanId sub = tracer.start_span(7, scatter, "subquery 9q", 100);
  tracer.tag(7, sub, "target", "3");
  tracer.end_span(7, sub, 450);
  tracer.end_span(7, scatter, 450);
  tracer.end_span(7, root, 500);

  const auto trace = tracer.find(7);
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->spans.size(), 3u);
  EXPECT_EQ(trace->spans[0].name, "query");
  EXPECT_EQ(trace->spans[0].parent, kNoSpan);
  EXPECT_EQ(trace->spans[0].duration(), 400);
  EXPECT_EQ(trace->spans[1].parent, root);
  EXPECT_EQ(trace->spans[2].parent, scatter);
  ASSERT_EQ(trace->spans[2].tags.size(), 1u);
  EXPECT_EQ(trace->spans[2].tags[0].first, "target");
}

TEST(TracerTest, RecordSpanCapturesFinishedInterval) {
  Tracer tracer;
  const SpanId root = tracer.start_trace(1, "query", 0);
  const SpanId serve = tracer.record_span(1, root, "serve", 40, 90);
  const auto trace = tracer.find(1);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->spans[serve].start, 40);
  EXPECT_EQ(trace->spans[serve].end, 90);
}

TEST(TracerTest, RingEvictsOldestAndEvictedOpsAreNoOps) {
  Tracer tracer(true, 2);
  tracer.start_trace(1, "query", 0);
  const SpanId root2 = tracer.start_trace(2, "query", 0);
  tracer.start_trace(3, "query", 0);  // evicts trace 1
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_FALSE(tracer.find(1).has_value());
  EXPECT_TRUE(tracer.find(2).has_value());
  // Operations against the evicted id must be safe no-ops.
  EXPECT_EQ(tracer.start_span(1, 0, "late", 5), kNoSpan);
  tracer.end_span(1, 0, 9);
  tracer.tag(1, 0, "k", "v");
  // ...and must not corrupt the retained traces.
  tracer.end_span(2, root2, 50);
  EXPECT_EQ(tracer.find(2)->spans[0].end, 50);
  const auto ids = tracer.query_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 2u);
  EXPECT_EQ(ids[1], 3u);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(false);
  const SpanId root = tracer.start_trace(1, "query", 0);
  EXPECT_EQ(root, kNoSpan);
  EXPECT_EQ(tracer.start_span(1, root, "scatter", 0), kNoSpan);
  tracer.end_span(1, root, 10);
  tracer.tag(1, root, "k", "v");
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_FALSE(tracer.find(1).has_value());
}

TEST(TracerTest, RestartingAQueryIdDropsThePreviousTrace) {
  Tracer tracer;
  const SpanId root = tracer.start_trace(1, "query", 0);
  tracer.start_span(1, root, "scatter", 0);
  tracer.start_trace(1, "query", 100);
  const auto trace = tracer.find(1);
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->spans.size(), 1u);
  EXPECT_EQ(trace->spans[0].start, 100);
}

TEST(TraceJsonTest, DeterministicSchemaV1) {
  Tracer tracer;
  const SpanId root = tracer.start_trace(7, "query", 0);
  const SpanId sub = tracer.start_span(7, root, "subquery 9q", 10);
  tracer.tag(7, sub, "target", "3");
  tracer.end_span(7, sub, 60);
  tracer.end_span(7, root, 80);
  const std::string json = to_json(*tracer.find(7));
  EXPECT_EQ(json,
            "{\"schema\":\"stash-trace-v1\",\"query_id\":7,\"spans\":["
            "{\"id\":0,\"parent\":null,\"name\":\"query\",\"start_us\":0,"
            "\"end_us\":80,\"tags\":{}},"
            "{\"id\":1,\"parent\":0,\"name\":\"subquery 9q\",\"start_us\":10,"
            "\"end_us\":60,\"tags\":{\"target\":\"3\"}}]}");
}

TEST(TraceRenderTest, IndentedTreeWithDurationsAndTags) {
  Tracer tracer;
  const SpanId root = tracer.start_trace(3, "query", 0);
  const SpanId scatter = tracer.start_span(3, root, "scatter", 0);
  const SpanId sub = tracer.start_span(3, scatter, "subquery dr", 0);
  tracer.tag(3, sub, "outcome", "ok");
  tracer.end_span(3, sub, 300);
  tracer.end_span(3, scatter, 300);
  tracer.end_span(3, root, 400);
  const std::string tree = render_tree(*tracer.find(3));
  EXPECT_EQ(tree,
            "query #3\n"
            "query [0..400us] 400us\n"
            "  scatter [0..300us] 300us\n"
            "    subquery dr [0..300us] 300us outcome=ok\n");
}

}  // namespace
}  // namespace stash::obs
