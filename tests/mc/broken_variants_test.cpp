// Self-validation of the model checker against seeded bugs.
//
// For every broken flavour in broken_variants.hpp the checker must find
// the bug within a bounded schedule budget and the failing schedule must
// replay deterministically from its printed "<seed>:<choices>" token; the
// correct twin must survive an exhaustive search at the same bound.  This
// is the calibration that makes a clean check of the real primitives
// (mpmc_ring_mc_test.cpp, graph_guard_mc_test.cpp) evidence rather than
// absence of evidence.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "broken_variants.hpp"
#include "mc/model_checker.hpp"

namespace stash {
namespace {

using mc_tests::AbaStack;
using mc_tests::Publish;
using mc_tests::Seqlock;

mc::Options budget_opts() {
  mc::Options o;
  o.preemption_bound = 2;
  o.max_executions = 50000;  // the bounded budget every bug must fit in
  o.max_steps = 5000;
  return o;
}

/// Asserts that a failing result replays deterministically: same bug, and
/// byte-identical traces across two replays from the printed token.
void expect_deterministic_replay(const std::function<mc::Execution()>& make,
                                 const mc::Result& r) {
  ASSERT_TRUE(r.bug_found);
  ASSERT_FALSE(r.schedule_string().empty());
  const mc::Result a = mc::ModelChecker::replay(make, r.schedule_string());
  const mc::Result b = mc::ModelChecker::replay(make, r.schedule_string());
  ASSERT_TRUE(a.bug_found) << "replay lost the bug: " << r.schedule_string();
  EXPECT_EQ(a.bug, r.bug);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_FALSE(a.trace.empty());
}

// ---------------------------------------------------------------------------
// 1. Missing-release publish.
// ---------------------------------------------------------------------------
std::function<mc::Execution()> publish_scenario(bool broken) {
  return [broken] {
    auto st = std::make_shared<Publish>(broken);
    mc::Execution e;
    e.threads.push_back([st] { st->write(); });
    e.threads.push_back([st] { (void)st->read(); });
    return e;
  };
}

TEST(ModelCheckBrokenVariantsTest, MissingReleasePublishIsCaught) {
  const auto make = publish_scenario(/*broken=*/true);
  const mc::Result r = mc::ModelChecker(budget_opts()).run(make);
  ASSERT_TRUE(r.bug_found) << "checker missed the missing-release publish";
  EXPECT_NE(r.bug.find("race"), std::string::npos) << r.bug;
  EXPECT_LE(r.executions, budget_opts().max_executions);
  expect_deterministic_replay(make, r);
}

TEST(ModelCheckBrokenVariantsTest, ReleasePublishPasses) {
  const mc::Result r =
      mc::ModelChecker(budget_opts()).run(publish_scenario(/*broken=*/false));
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

// ---------------------------------------------------------------------------
// 2. ABA pop.  Ownership conservation: every index popped and not pushed
//    back is owned by exactly one thread; the untagged CAS breaks this by
//    handing the same node to two owners.
// ---------------------------------------------------------------------------
struct AbaScenario {
  explicit AbaScenario(bool tagged) : stack(tagged) {}
  AbaStack stack;
  std::int32_t t1 = AbaStack::kGaveUp;
  std::int32_t a = AbaStack::kGaveUp;
  std::int32_t b = AbaStack::kGaveUp;
};

std::function<mc::Execution()> aba_scenario(bool tagged) {
  return [tagged] {
    auto st = std::make_shared<AbaScenario>(tagged);
    mc::Execution e;
    e.threads.push_back([st] { st->t1 = st->stack.pop(); });
    e.threads.push_back([st] {
      st->a = st->stack.pop();
      st->b = st->stack.pop();
      if (st->a >= 0) st->stack.push(st->a);  // the "A" coming back: ABA
    });
    e.finally = [st] {
      std::vector<std::int32_t> owned;
      if (st->t1 >= 0) owned.push_back(st->t1);
      if (st->b >= 0) owned.push_back(st->b);
      // st->a was pushed back, so it is not owned; drain what remains.
      for (int i = 0; i < AbaStack::kNodes + 1; ++i) {
        const std::int32_t v = st->stack.pop();
        if (v < 0) break;
        owned.push_back(v);
      }
      std::set<std::int32_t> distinct(owned.begin(), owned.end());
      MC_ASSERT_MSG(distinct.size() == owned.size(),
                    "node owned twice (ABA double pop)");
      for (const std::int32_t v : owned) {
        MC_ASSERT_MSG(v >= 0 && v < AbaStack::kNodes, "index out of pool");
      }
    };
    return e;
  };
}

TEST(ModelCheckBrokenVariantsTest, UntaggedPopAbaIsCaught) {
  const auto make = aba_scenario(/*tagged=*/false);
  const mc::Result r = mc::ModelChecker(budget_opts()).run(make);
  ASSERT_TRUE(r.bug_found) << "checker missed the ABA double pop";
  EXPECT_NE(r.bug.find("ABA"), std::string::npos) << r.bug;
  EXPECT_LE(r.executions, budget_opts().max_executions);
  expect_deterministic_replay(make, r);
}

TEST(ModelCheckBrokenVariantsTest, TaggedPopPasses) {
  const mc::Result r =
      mc::ModelChecker(budget_opts()).run(aba_scenario(/*tagged=*/true));
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

// ---------------------------------------------------------------------------
// 3. Torn seqlock read.
// ---------------------------------------------------------------------------
std::function<mc::Execution()> seqlock_scenario(bool broken_reader) {
  return [broken_reader] {
    struct State {
      Seqlock s;
      std::optional<std::pair<std::uint32_t, std::uint32_t>> got;
    };
    auto st = std::make_shared<State>();
    mc::Execution e;
    e.threads.push_back([st] { st->s.write(1); });
    e.threads.push_back([st, broken_reader] {
      st->got = broken_reader ? st->s.read_torn() : st->s.read();
    });
    e.finally = [st] {
      if (st->got.has_value()) {
        MC_ASSERT_MSG(st->got->first == st->got->second, "torn seqlock read");
        MC_ASSERT(st->got->first <= 1);
      }
    };
    return e;
  };
}

TEST(ModelCheckBrokenVariantsTest, TornSeqlockReadIsCaught) {
  const auto make = seqlock_scenario(/*broken_reader=*/true);
  const mc::Result r = mc::ModelChecker(budget_opts()).run(make);
  ASSERT_TRUE(r.bug_found) << "checker missed the torn seqlock read";
  EXPECT_NE(r.bug.find("torn"), std::string::npos) << r.bug;
  EXPECT_LE(r.executions, budget_opts().max_executions);
  expect_deterministic_replay(make, r);
}

TEST(ModelCheckBrokenVariantsTest, ValidatingSeqlockReaderPasses) {
  const mc::Result r = mc::ModelChecker(budget_opts())
                           .run(seqlock_scenario(/*broken_reader=*/false));
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

}  // namespace
}  // namespace stash
