// Seeded-bug catalog for validating the model checker itself.
//
// Each primitive here comes in a correct flavour and a deliberately broken
// one, selected by a template/bool parameter.  The checker must FIND the
// bug in every broken flavour within a bounded schedule budget and must
// PASS the correct twin — that pair of obligations is what
// broken_variants_test.cpp asserts, and it is the evidence that a clean
// model-check of the real primitives (mpmc_ring, rw_spinlock) means
// something.
//
// The three bug shapes mirror the classic lock-free failure modes:
//   1. MissingReleasePublish — publication flag stored relaxed, so the
//      reader's acquire load synchronises with nothing: data race.
//   2. AbaStack — Treiber-style index stack whose pop CAS can't tell that
//      the head node was popped and re-pushed underneath it: double pop.
//   3. Seqlock — reader without the validating re-read/acquire fence
//      returns a torn pair.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "concurrency/catomic.hpp"

namespace stash::mc_tests {

using concurrency::catomic;
using concurrency::fence;
using concurrency::var;

// ---------------------------------------------------------------------------
// 1. Message-passing publish.  Broken: flag store is relaxed.
// ---------------------------------------------------------------------------
struct Publish {
  explicit Publish(bool broken) : broken_(broken) {}

  void write() {
    data.store(42);
    flag.store(1, broken_ ? std::memory_order_relaxed
                          : std::memory_order_release);
  }

  /// Returns the payload if the flag was observed, nullopt otherwise.
  /// Under the checker, reading `data` without a synchronising edge is
  /// reported as a data race.
  std::optional<int> read() {
    if (flag.load(std::memory_order_acquire) == 1) return data.load();
    return std::nullopt;
  }

  var<int> data{0, "pub.data"};
  catomic<int> flag{0, "pub.flag"};
  const bool broken_;
};

// ---------------------------------------------------------------------------
// 2. Treiber-style stack of pool indices.  Broken: untagged head CAS (ABA).
//    Correct twin packs a modification counter next to the index so a
//    popped-and-repushed head no longer compares equal.
// ---------------------------------------------------------------------------
class AbaStack {
 public:
  static constexpr std::int32_t kNodes = 3;
  static constexpr std::int32_t kEmpty = -1;
  static constexpr std::int32_t kGaveUp = -2;  // bounded retries, not a bug

  explicit AbaStack(bool tagged) : tagged_(tagged) {
    // Initial chain: head -> 2 -> 1 -> 0.
    next_[0].store(kEmpty, std::memory_order_relaxed);
    next_[1].store(0, std::memory_order_relaxed);
    next_[2].store(1, std::memory_order_relaxed);
    head_.store(pack(2, 0), std::memory_order_relaxed);
  }

  std::int32_t pop() {
    for (int attempt = 0; attempt < 6; ++attempt) {
      std::uint64_t h = head_.load(std::memory_order_acquire);
      const std::int32_t idx = index_of(h);
      if (idx == kEmpty) return kEmpty;
      const std::int32_t nxt =
          next_[static_cast<std::size_t>(idx)].load(std::memory_order_relaxed);
      // The ABA window: between the loads above and the CAS below, another
      // thread may pop this node and push it back; without the tag the CAS
      // still succeeds and installs a stale next pointer.
      if (head_.compare_exchange_strong(h, pack(nxt, tag_of(h) + 1),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed))
        return idx;
    }
    return kGaveUp;
  }

  void push(std::int32_t idx) {
    for (int attempt = 0; attempt < 6; ++attempt) {
      std::uint64_t h = head_.load(std::memory_order_relaxed);
      next_[static_cast<std::size_t>(idx)].store(index_of(h),
                                                 std::memory_order_relaxed);
      if (head_.compare_exchange_strong(h, pack(idx, tag_of(h) + 1),
                                        std::memory_order_release,
                                        std::memory_order_relaxed))
        return;
    }
  }

 private:
  [[nodiscard]] std::uint64_t pack(std::int32_t idx, std::uint32_t tag) const {
    // Broken flavour drops the tag — this is the whole bug.
    const std::uint32_t t = tagged_ ? tag : 0;
    return (static_cast<std::uint64_t>(t) << 32) |
           static_cast<std::uint32_t>(idx);
  }
  [[nodiscard]] static std::int32_t index_of(std::uint64_t h) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(h));
  }
  [[nodiscard]] static std::uint32_t tag_of(std::uint64_t h) {
    return static_cast<std::uint32_t>(h >> 32);
  }

  catomic<std::uint64_t> head_{0, "stack.head"};
  std::array<catomic<std::int32_t>, kNodes> next_{
      catomic<std::int32_t>{0, "stack.next0"},
      catomic<std::int32_t>{0, "stack.next1"},
      catomic<std::int32_t>{0, "stack.next2"}};
  const bool tagged_;
};

// ---------------------------------------------------------------------------
// 3. Seqlock over a two-word payload (Boehm's fence formulation).
//    Broken reader: single pass, no acquire fence, no validating re-read —
//    it can return a torn (new, old) pair.
// ---------------------------------------------------------------------------
struct Seqlock {
  void write(std::uint32_t generation) {
    const std::uint32_t s = seq.load(std::memory_order_relaxed);
    seq.store(s + 1, std::memory_order_relaxed);  // odd: write in progress
    fence(std::memory_order_release);  // later stores publish the odd seq
    d1.store(generation, std::memory_order_relaxed);
    d2.store(generation, std::memory_order_relaxed);
    seq.store(s + 2, std::memory_order_release);
  }

  /// Correct reader: pair is (gen, gen) or nullopt (writer in flight).
  std::optional<std::pair<std::uint32_t, std::uint32_t>> read() {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint32_t s1 = seq.load(std::memory_order_acquire);
      if ((s1 & 1u) != 0) continue;
      const std::uint32_t a = d1.load(std::memory_order_relaxed);
      const std::uint32_t b = d2.load(std::memory_order_relaxed);
      fence(std::memory_order_acquire);
      const std::uint32_t s2 = seq.load(std::memory_order_relaxed);
      if (s1 == s2) return std::make_pair(a, b);
    }
    return std::nullopt;
  }

  /// Broken reader: trusts the first even sequence it sees.
  std::optional<std::pair<std::uint32_t, std::uint32_t>> read_torn() {
    const std::uint32_t s1 = seq.load(std::memory_order_acquire);
    if ((s1 & 1u) != 0) return std::nullopt;
    const std::uint32_t a = d1.load(std::memory_order_relaxed);
    const std::uint32_t b = d2.load(std::memory_order_relaxed);
    return std::make_pair(a, b);
  }

  catomic<std::uint32_t> seq{0, "seqlock.seq"};
  catomic<std::uint32_t> d1{0, "seqlock.d1"};
  catomic<std::uint32_t> d2{0, "seqlock.d2"};
};

}  // namespace stash::mc_tests
