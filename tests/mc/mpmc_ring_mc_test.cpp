// Model-check of the real MpmcRing: exhaustive interleaving search (up to
// the preemption bound) proving no loss, no duplication, FIFO order, and —
// via var<T> race checking on the payload slots — that the slot sequence
// number is a sufficient publication edge for the relaxed cursor CASes.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "concurrency/mpmc_ring.hpp"
#include "mc/model_checker.hpp"

namespace stash {
namespace {

using concurrency::MpmcRing;

mc::Options ring_opts() {
  mc::Options o;
  o.preemption_bound = 2;
  o.max_executions = 400000;
  o.max_steps = 5000;
  return o;
}

TEST(ModelCheckRingTest, SpscFifoNoLossNoDup) {
  const mc::Result r = mc::ModelChecker(ring_opts()).run([] {
    struct State {
      State() : ring(4) {}
      MpmcRing<int> ring;
      bool ok1 = false, ok2 = false;
      std::vector<int> popped;
    };
    auto st = std::make_shared<State>();
    mc::Execution e;
    e.threads.push_back([st] {
      st->ok1 = st->ring.try_push(1);
      st->ok2 = st->ring.try_push(2);
    });
    e.threads.push_back([st] {
      for (int i = 0; i < 2; ++i) {
        if (auto v = st->ring.try_pop()) st->popped.push_back(*v);
      }
    });
    e.finally = [st] {
      MC_ASSERT_MSG(st->ok1 && st->ok2, "push failed on a non-full ring");
      while (auto v = st->ring.try_pop()) st->popped.push_back(*v);
      MC_ASSERT_MSG(st->popped == (std::vector<int>{1, 2}),
                    "FIFO order / conservation violated");
    };
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "executions=" << r.executions;
  EXPECT_GT(r.executions, 1u);
}

TEST(ModelCheckRingTest, TwoProducersOneConsumerConservation) {
  const mc::Result r = mc::ModelChecker(ring_opts()).run([] {
    struct State {
      State() : ring(2) {}
      MpmcRing<int> ring;
      bool ok1 = false, ok2 = false;
      std::vector<int> popped;
    };
    auto st = std::make_shared<State>();
    mc::Execution e;
    e.threads.push_back([st] { st->ok1 = st->ring.try_push(1); });
    e.threads.push_back([st] { st->ok2 = st->ring.try_push(2); });
    e.threads.push_back([st] {
      for (int i = 0; i < 2; ++i) {
        if (auto v = st->ring.try_pop()) st->popped.push_back(*v);
      }
    });
    e.finally = [st] {
      // Two pushes into a capacity-2 ring can never observe "full".
      MC_ASSERT_MSG(st->ok1 && st->ok2, "push failed on a non-full ring");
      while (auto v = st->ring.try_pop()) st->popped.push_back(*v);
      MC_ASSERT_MSG(st->popped.size() == 2, "element lost or duplicated");
      const int a = st->popped[0], b = st->popped[1];
      MC_ASSERT_MSG((a == 1 && b == 2) || (a == 2 && b == 1),
                    "popped values are not the pushed multiset");
    };
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "executions=" << r.executions;
}

TEST(ModelCheckRingTest, WraparoundHandsSlotsAcrossLaps) {
  // Capacity 2, three elements: the third push reuses slot 0 and must not
  // proceed until the consumer's release handed the slot over.
  const mc::Result r = mc::ModelChecker(ring_opts()).run([] {
    struct State {
      State() : ring(2) {}
      MpmcRing<int> ring;
      std::vector<int> popped;
      int pushed = 0;
    };
    auto st = std::make_shared<State>();
    mc::Execution e;
    e.threads.push_back([st] {
      for (int v = 1; v <= 3; ++v) {
        if (st->ring.try_push(v))
          ++st->pushed;
        else
          break;  // full is a legal outcome when the consumer lags
      }
    });
    e.threads.push_back([st] {
      for (int i = 0; i < 3; ++i) {
        if (auto v = st->ring.try_pop()) st->popped.push_back(*v);
      }
    });
    e.finally = [st] {
      while (auto v = st->ring.try_pop()) st->popped.push_back(*v);
      MC_ASSERT_MSG(static_cast<int>(st->popped.size()) == st->pushed,
                    "element lost or duplicated across the wrap");
      for (std::size_t i = 0; i < st->popped.size(); ++i) {
        MC_ASSERT_MSG(st->popped[i] == static_cast<int>(i) + 1,
                      "FIFO order violated across the wrap");
      }
    };
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "executions=" << r.executions;
}

}  // namespace
}  // namespace stash
