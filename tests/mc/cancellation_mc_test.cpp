// Model-check of the CancellationToken publish protocol and the timed
// gate wait (PR 9 tentpole proofs).
//
// Token property: the payload (reason/detail) is a *publication channel*.
// The canceller claims with a CAS, writes the plain payload, then
// release-stores the cancelled flag; an observer that saw cancelled()
// (acquire) may read the payload race-free and must see exactly the
// published values.  The broken twin publishes the flag with a relaxed
// store — the claim CAS still makes it the sole writer, but nothing
// orders the observer's payload read after the write: a data race the
// checker must report (and replay deterministically).
//
// Timed-wait property: commit_wait_until(ticket, expired) releases the
// waiter slot on BOTH exits — epoch bump (woken) and predicate expiry
// (timeout) — and a consumer that times out without seeing the work has
// not lost a wakeup it was entitled to: the producer's notify bumps the
// epoch, so a re-check after the timeout finds the work.  The broken
// twin models a timeout path that abandons the slot without
// cancel_wait — the leaked waiter count is caught in finally.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>

#include "concurrency/cancellation.hpp"
#include "concurrency/catomic.hpp"
#include "concurrency/wakeup_gate.hpp"
#include "mc/model_checker.hpp"

namespace stash {
namespace {

using concurrency::CancellationToken;
using concurrency::CancelReason;
using concurrency::WakeupGate;

mc::Options token_opts() {
  mc::Options o;
  o.preemption_bound = 3;
  o.max_executions = 400000;
  o.max_steps = 5000;
  return o;
}

// ---------------------------------------------------------------------------
// CancellationToken: correct protocol, exhaustively.
// ---------------------------------------------------------------------------

TEST(ModelCheckCancellationTest, PublishedPayloadIsRaceFreeAndExact) {
  const mc::Result r = mc::ModelChecker(token_opts()).run([] {
    struct State {
      CancellationToken token;
      bool observed = false;
      CancelReason reason = CancelReason::kNone;
      std::uint64_t detail = 0;
    };
    auto st = std::make_shared<State>();
    mc::Execution e;
    e.threads.push_back([st] {
      (void)st->token.cancel(CancelReason::kDeadline, 0xfeedu);
    });
    e.threads.push_back([st] {
      if (st->token.cancelled()) {
        st->observed = true;
        st->reason = st->token.reason();
        st->detail = st->token.detail();
      }
    });
    e.finally = [st] {
      if (st->observed) {
        MC_ASSERT_MSG(st->reason == CancelReason::kDeadline,
                      "observer saw the flag but a stale reason");
        MC_ASSERT_MSG(st->detail == 0xfeedu,
                      "observer saw the flag but a stale detail word");
      }
      // The canceller always wins an uncontended claim.
      MC_ASSERT(st->token.cancelled());
      MC_ASSERT(st->token.reason() == CancelReason::kDeadline);
    };
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "executions=" << r.executions;
  EXPECT_GT(r.executions, 1u);
}

TEST(ModelCheckCancellationTest, RacingCancellersElectExactlyOneWriter) {
  // Two cancellers with different payloads: the claim CAS must elect one,
  // and every observer (and the final state) sees that winner's payload
  // as a consistent pair — never reason from one and detail from the
  // other, never a torn mix.
  const mc::Result r = mc::ModelChecker(token_opts()).run([] {
    struct State {
      CancellationToken token;
      bool won[2] = {false, false};
    };
    auto st = std::make_shared<State>();
    mc::Execution e;
    e.threads.push_back([st] {
      st->won[0] = st->token.cancel(CancelReason::kDeadline, 111);
    });
    e.threads.push_back([st] {
      st->won[1] = st->token.cancel(CancelReason::kShutdown, 222);
    });
    e.finally = [st] {
      MC_ASSERT_MSG(st->won[0] != st->won[1],
                    "claim CAS must elect exactly one canceller");
      MC_ASSERT(st->token.cancelled());
      const bool deadline_won = st->won[0];
      MC_ASSERT_MSG(st->token.reason() == (deadline_won
                                               ? CancelReason::kDeadline
                                               : CancelReason::kShutdown),
                    "published reason is not the winner's");
      MC_ASSERT_MSG(st->token.detail() == (deadline_won ? 111u : 222u),
                    "published detail is not the winner's");
    };
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "executions=" << r.executions;
}

// ---------------------------------------------------------------------------
// Broken twin: relaxed publish.  Same claim CAS, same sole-writer
// discipline — only the release edge is missing, so the observer's
// payload read races with the canceller's write.
// ---------------------------------------------------------------------------

struct RelaxedPublishToken {
  bool cancel(std::uint64_t detail_word) {
    std::uint32_t expected = 0;
    if (!state.compare_exchange_strong(expected, 1,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed))
      return false;
    detail.store(detail_word);
    state.store(2, std::memory_order_relaxed);  // BUG: should be release
    return true;
  }
  [[nodiscard]] bool cancelled() const {
    return state.load(std::memory_order_acquire) == 2;
  }

  concurrency::catomic<std::uint32_t> state{0, "broken.cancel.state"};
  concurrency::var<std::uint64_t> detail{0, "broken.cancel.detail"};
};

TEST(ModelCheckCancellationTest, RelaxedPublishIsCaughtAndReplays) {
  const auto make = [] {
    auto st = std::make_shared<RelaxedPublishToken>();
    mc::Execution e;
    e.threads.push_back([st] { (void)st->cancel(0xfeedu); });
    e.threads.push_back([st] {
      if (st->cancelled()) (void)st->detail.load();
    });
    return e;
  };
  const mc::Result r = mc::ModelChecker(token_opts()).run(make);
  ASSERT_TRUE(r.bug_found) << "checker missed the relaxed cancel publish";
  EXPECT_NE(r.bug.find("data race"), std::string::npos) << r.bug;
  // The failing schedule must replay deterministically from its token.
  const mc::Result replay = mc::ModelChecker::replay(make, r.schedule_string());
  ASSERT_TRUE(replay.bug_found) << r.schedule_string();
  EXPECT_EQ(replay.bug, r.bug);
}

// ---------------------------------------------------------------------------
// Timed gate wait.  Under the checker commit_wait_until is a pure
// load/predicate loop (the sleep slice compiles out), so a bounded
// expiry predicate makes the state space finite.
// ---------------------------------------------------------------------------

TEST(ModelCheckCancellationTest, TimedWaitReleasesTheSlotOnBothExits) {
  const mc::Result r = mc::ModelChecker(token_opts()).run([] {
    struct State {
      WakeupGate gate;
      concurrency::catomic<std::uint32_t> work{0, "mc.timed.work"};
      bool woken = false;    // commit_wait_until saw the epoch bump
      bool timed_out = false;
      bool saw_work = false;
    };
    auto st = std::make_shared<State>();
    mc::Execution e;
    e.threads.push_back([st] {
      st->work.store(1, std::memory_order_seq_cst);
      st->gate.notify_all();
    });
    e.threads.push_back([st] {
      const auto ticket = st->gate.prepare_wait();
      if (st->work.load(std::memory_order_seq_cst) != 0) {
        st->gate.cancel_wait();
        st->saw_work = true;
        return;
      }
      int polls = 0;
      const bool woken = st->gate.commit_wait_until(
          ticket, [&polls] { return ++polls > 2; });
      st->woken = woken;
      st->timed_out = !woken;
      // The deadline path re-checks once more before giving up — this is
      // the submitter's loop shape in ParallelQueryEngine::run_batch.
      if (st->work.load(std::memory_order_seq_cst) != 0) st->saw_work = true;
    });
    e.finally = [st] {
      // Both exits release the waiter slot: a later notify_all must never
      // think someone is still parked.
      MC_ASSERT_MSG(st->gate.waiters_approx() == 0,
                    "commit_wait_until leaked a waiter slot");
      MC_ASSERT_MSG(st->saw_work || st->woken || st->timed_out,
                    "consumer exited without a classified outcome");
      // No lost wakeup: a consumer the notify actually woke (epoch bump
      // observed) is downstream of the producer's seq_cst publish, so its
      // post-wait re-check must find the work.  A timeout that raced
      // ahead of the producer is allowed to miss it — that is what the
      // deadline path's honest-partial accounting is for.
      MC_ASSERT_MSG(!st->woken || st->saw_work,
                    "woken consumer missed the published work");
    };
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "executions=" << r.executions;
  EXPECT_GT(r.executions, 1u);
}

TEST(ModelCheckCancellationTest, TimeoutPathThatAbandonsTheSlotIsCaught) {
  // Broken twin of the timeout exit: a waiter that gives up by simply
  // returning (no cancel_wait / no commit_wait_until bookkeeping) leaves
  // the waiter count elevated forever — every future notify_all pays for
  // a phantom parker, and teardown spins on it.
  const auto make = [] {
    struct State {
      WakeupGate gate;
      concurrency::catomic<std::uint32_t> work{0, "mc.leak.work"};
    };
    auto st = std::make_shared<State>();
    mc::Execution e;
    e.threads.push_back([st] {
      st->work.store(1, std::memory_order_seq_cst);
      st->gate.notify_all();
    });
    e.threads.push_back([st] {
      (void)st->gate.prepare_wait();
      if (st->work.load(std::memory_order_seq_cst) != 0) {
        return;  // BUG: "timed out" without releasing the waiter slot
      }
      st->gate.cancel_wait();
    });
    e.finally = [st] {
      MC_ASSERT_MSG(st->gate.waiters_approx() == 0,
                    "timeout path leaked a waiter slot");
    };
    return e;
  };
  const mc::Result r = mc::ModelChecker(token_opts()).run(make);
  ASSERT_TRUE(r.bug_found) << "checker missed the leaked waiter slot";
  EXPECT_NE(r.bug.find("leaked"), std::string::npos) << r.bug;
  const mc::Result replay = mc::ModelChecker::replay(make, r.schedule_string());
  ASSERT_TRUE(replay.bug_found) << r.schedule_string();
  EXPECT_EQ(replay.bug, r.bug);
}

TEST(ModelCheckCancellationTest, RandomWalkTokenAndTimedWaitCompose) {
  // The full deadline shape: a worker loops on (token? bail : work),
  // while the submitter publishes a chunk, waits with a bounded timed
  // wait, and cancels on expiry — exactly run_batch's wind-down.  Safety:
  // the worker never consumes after it saw the token, and the waiter
  // count is balanced at the end.
  mc::Options o = token_opts();
  o.random = true;
  o.random_iterations = 20000;
  o.seed = 20260808;
  const mc::Result r = mc::ModelChecker(o).run([] {
    struct State {
      WakeupGate gate;
      CancellationToken token;
      concurrency::catomic<std::uint32_t> done{0, "mc.compose.done"};
      std::uint32_t worked = 0;
      bool bailed = false;
    };
    auto st = std::make_shared<State>();
    mc::Execution e;
    e.threads.push_back([st] {  // worker: two chunks, token-probing
      for (int chunk = 0; chunk < 2; ++chunk) {
        if (st->token.cancelled()) {
          st->bailed = true;
          return;
        }
        ++st->worked;
        st->done.fetch_add(1, std::memory_order_seq_cst);
        st->gate.notify_all();
      }
    });
    e.threads.push_back([st] {  // submitter: timed wait, cancel on expiry
      for (int spins = 0; spins < 4; ++spins) {
        if (st->done.load(std::memory_order_seq_cst) == 2) return;
        const auto ticket = st->gate.prepare_wait();
        if (st->done.load(std::memory_order_seq_cst) == 2) {
          st->gate.cancel_wait();
          return;
        }
        int polls = 0;
        (void)st->gate.commit_wait_until(ticket,
                                         [&polls] { return ++polls > 1; });
      }
      (void)st->token.cancel(CancelReason::kDeadline, 99);
    });
    e.finally = [st] {
      MC_ASSERT(st->gate.waiters_approx() == 0);
      MC_ASSERT(st->worked <= 2);
      if (st->bailed) {
        MC_ASSERT_MSG(st->token.cancelled(),
                      "worker bailed without a published cancel");
      }
      MC_ASSERT_MSG(st->worked ==
                        st->done.load(std::memory_order_seq_cst),
                    "done count out of step with work performed");
    };
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_GT(r.executions, 1u);
}

}  // namespace
}  // namespace stash
