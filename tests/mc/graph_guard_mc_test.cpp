// Model-check of the ConcurrentStashGraph guard protocol over RwSpinlock.
//
// core/concurrent_graph.hpp guards every mutable field with one
// reader-writer capability: absorb paths take the writer lock and update
// cells+totals together; query paths take the reader lock and must see a
// consistent pair.  The thread-safety annotations prove acquisition
// discipline at compile time; this test proves the part they cannot — that
// the lock's acquire/release orders actually create the happens-before
// edges the guard pattern assumes.  The var<T> race detector is the
// oracle: if mutual exclusion or reader/writer ordering were broken, the
// unsynchronised accesses would be reported as data races.

#include <gtest/gtest.h>

#include <memory>

#include "concurrency/rw_spinlock.hpp"
#include "mc/model_checker.hpp"

namespace stash {
namespace {

using concurrency::RwSpinlock;
using concurrency::var;

mc::Options guard_opts() {
  mc::Options o;
  o.preemption_bound = 2;
  o.max_executions = 400000;
  o.max_steps = 5000;
  return o;
}

// A two-field slice of the graph's guarded state.  Bounded try-lock loops
// keep the schedule tree finite; giving up is a legal outcome, the checker
// explores both.
struct GuardedState {
  RwSpinlock mu;
  var<int> cells{0, "graph.cells"};
  var<int> total{0, "graph.total"};
  int absorbed = 0;

  bool try_absorb() {
    for (int attempt = 0; attempt < 4; ++attempt) {
      if (mu.try_lock()) {
        cells.store(cells.load() + 1);
        total.store(total.load() + 1);
        ++absorbed;
        mu.unlock();
        return true;
      }
    }
    return false;
  }

  // Returns false on lock timeout, fails the execution on inconsistency.
  bool try_query() {
    for (int attempt = 0; attempt < 4; ++attempt) {
      if (mu.try_lock_shared()) {
        const int c = cells.load();
        const int t = total.load();
        mu.unlock_shared();
        MC_ASSERT_MSG(c == t, "reader saw torn cells/total pair");
        return true;
      }
    }
    return false;
  }
};

TEST(ModelCheckGraphGuardTest, WriterWriterExclusionHolds) {
  const mc::Result r = mc::ModelChecker(guard_opts()).run([] {
    auto st = std::make_shared<GuardedState>();
    mc::Execution e;
    e.threads.push_back([st] { (void)st->try_absorb(); });
    e.threads.push_back([st] { (void)st->try_absorb(); });
    e.finally = [st] {
      // Each successful absorb is fully applied: no lost updates, and the
      // race detector saw no unordered access on the way here.
      MC_ASSERT(st->cells.load() == st->absorbed);
      MC_ASSERT(st->total.load() == st->absorbed);
    };
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "executions=" << r.executions;
}

TEST(ModelCheckGraphGuardTest, ReaderSeesConsistentGuardedPair) {
  const mc::Result r = mc::ModelChecker(guard_opts()).run([] {
    auto st = std::make_shared<GuardedState>();
    mc::Execution e;
    e.threads.push_back([st] { (void)st->try_absorb(); });
    e.threads.push_back([st] { (void)st->try_query(); });
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "executions=" << r.executions;
}

TEST(ModelCheckGraphGuardTest, RaiiGuardsCreateTheSameEdges) {
  const mc::Result r = mc::ModelChecker(guard_opts()).run([] {
    auto st = std::make_shared<GuardedState>();
    mc::Execution e;
    // Writer uses the RAII guard over the blocking lock: safe here because
    // the reader side never blocks, so the writer's spin is bounded.
    e.threads.push_back([st] {
      concurrency::RwSpinWriterLock l(st->mu);
      st->cells.store(st->cells.load() + 1);
      st->total.store(st->total.load() + 1);
    });
    e.threads.push_back([st] { (void)st->try_query(); });
    e.finally = [st] {
      MC_ASSERT(st->cells.load() == 1);
      MC_ASSERT(st->total.load() == 1);
    };
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
}

// Sensitivity check: the same oracle must catch an access that skips the
// guard.  This is what "audited the graph guards" means — the pass above
// is meaningful because this fails.
TEST(ModelCheckGraphGuardTest, UnguardedReadIsCaught) {
  const mc::Result r = mc::ModelChecker(guard_opts()).run([] {
    auto st = std::make_shared<GuardedState>();
    mc::Execution e;
    e.threads.push_back([st] { (void)st->try_absorb(); });
    e.threads.push_back([st] { (void)st->cells.load(); });  // no lock
    return e;
  });
  ASSERT_TRUE(r.bug_found) << "unguarded read was not detected";
  EXPECT_NE(r.bug.find("data race"), std::string::npos) << r.bug;
  EXPECT_NE(r.bug.find("graph.cells"), std::string::npos) << r.bug;
}

}  // namespace
}  // namespace stash
