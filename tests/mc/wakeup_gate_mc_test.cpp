// Model-check of the WakeupGate park protocol (PR 8 tentpole proof).
//
// The property is lost-wakeup freedom.  A blocked thread holds its
// waiter slot until woken, so the model represents "parked" by stopping
// after the failed re-check *without* calling commit_wait — the waiter
// count stays elevated exactly as it would for a thread blocked inside
// the epoch wait.  A parked consumer that never saw the published work
// is then stuck iff the epoch still equals its ticket once the producer
// has finished: commit_wait(ticket) on that state would block forever,
// and no further notify is coming.  The finally-check asserts that state
// is unreachable for the correct protocol.
//
// The broken variants prove the checker has teeth: skipping the re-check
// between prepare_wait and commit_wait (or re-checking before
// prepare_wait) breaks the Dekker pairing and must be caught.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>

#include "concurrency/wakeup_gate.hpp"
#include "mc/model_checker.hpp"

namespace stash {
namespace {

using concurrency::WakeupGate;

mc::Options gate_opts() {
  mc::Options o;
  o.preemption_bound = 3;
  o.max_executions = 400000;
  o.max_steps = 5000;
  return o;
}

// How the consumer orders its re-check against the gate calls.
enum class Variant {
  Correct,         // prepare -> re-check -> cancel or park
  SkipRecheck,     // prepare -> park (no re-check): loses wakeups
  RecheckTooEarly  // re-check -> prepare -> park: same TOCTOU hole
};

struct GateState {
  WakeupGate gate;
  concurrency::catomic<std::uint32_t> work{0, "mc.work"};
  bool saw_work = false;  // consumer's re-check found the item
  bool parked = false;    // consumer blocked holding its waiter slot
  WakeupGate::Ticket ticket = 0;
};

void produce(const std::shared_ptr<GateState>& st) {
  st->work.store(1, std::memory_order_seq_cst);  // publish (ring push)
  st->gate.notify_all();
}

void consume(const std::shared_ptr<GateState>& st, Variant variant) {
  switch (variant) {
    case Variant::Correct: {
      st->ticket = st->gate.prepare_wait();
      if (st->work.load(std::memory_order_seq_cst) != 0) {
        st->gate.cancel_wait();
        st->saw_work = true;
        return;
      }
      st->parked = true;  // commit_wait would block here
      return;
    }
    case Variant::SkipRecheck: {
      st->ticket = st->gate.prepare_wait();
      st->parked = true;
      return;
    }
    case Variant::RecheckTooEarly: {
      if (st->work.load(std::memory_order_seq_cst) != 0) {
        st->saw_work = true;
        return;
      }
      st->ticket = st->gate.prepare_wait();
      st->parked = true;
      return;
    }
  }
}

std::function<mc::Execution()> gate_scenario(Variant variant) {
  return [variant] {
    auto st = std::make_shared<GateState>();
    mc::Execution e;
    e.threads.push_back([st] { produce(st); });
    e.threads.push_back([st, variant] { consume(st, variant); });
    e.finally = [st] {
      // The producer has finished: work is published and its one
      // notify_all has run.  A consumer parked without having seen the
      // work is therefore stuck unless that notify bumped the epoch past
      // its ticket.
      if (st->parked && !st->saw_work) {
        MC_ASSERT_MSG(st->gate.epoch_approx() != st->ticket,
                      "lost wakeup: slept through the only notify");
      }
      const std::uint32_t expected_waiters = st->parked ? 1u : 0u;
      MC_ASSERT_MSG(st->gate.waiters_approx() == expected_waiters,
                    "waiter count out of step with the protocol");
    };
    return e;
  };
}

TEST(ModelCheckGateTest, ParkProtocolNeverLosesTheWakeup) {
  const mc::Result r =
      mc::ModelChecker(gate_opts()).run(gate_scenario(Variant::Correct));
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "executions=" << r.executions;
  EXPECT_GT(r.executions, 1u);
}

TEST(ModelCheckGateTest, SkippedRecheckIsCaught) {
  const auto make = gate_scenario(Variant::SkipRecheck);
  const mc::Result r = mc::ModelChecker(gate_opts()).run(make);
  ASSERT_TRUE(r.bug_found) << "checker missed the skipped re-check";
  EXPECT_NE(r.bug.find("lost wakeup"), std::string::npos) << r.bug;
  // The failing schedule must replay deterministically from its token.
  const mc::Result replay = mc::ModelChecker::replay(make, r.schedule_string());
  ASSERT_TRUE(replay.bug_found) << r.schedule_string();
  EXPECT_EQ(replay.bug, r.bug);
}

TEST(ModelCheckGateTest, RecheckBeforePrepareIsCaught) {
  const mc::Result r = mc::ModelChecker(gate_opts())
                           .run(gate_scenario(Variant::RecheckTooEarly));
  ASSERT_TRUE(r.bug_found) << "checker missed the early re-check TOCTOU";
  EXPECT_NE(r.bug.find("lost wakeup"), std::string::npos) << r.bug;
}

TEST(ModelCheckGateTest, TwoParkersBothGetTheEpochBump) {
  // One producer, two consumers racing the same publication: every
  // consumer that parks without seeing the work needs the epoch advanced.
  const mc::Result r = mc::ModelChecker(gate_opts()).run([] {
    struct TwoState {
      WakeupGate gate;
      concurrency::catomic<std::uint32_t> work{0, "mc.work2"};
      bool saw[2] = {false, false};
      bool parked[2] = {false, false};
      WakeupGate::Ticket ticket[2] = {0, 0};
    };
    auto st = std::make_shared<TwoState>();
    const auto consumer = [st](int i) {
      st->ticket[i] = st->gate.prepare_wait();
      if (st->work.load(std::memory_order_seq_cst) != 0) {
        st->gate.cancel_wait();
        st->saw[i] = true;
        return;
      }
      st->parked[i] = true;
    };
    mc::Execution e;
    e.threads.push_back([st] {
      st->work.store(1, std::memory_order_seq_cst);
      st->gate.notify_all();
    });
    e.threads.push_back([consumer] { consumer(0); });
    e.threads.push_back([consumer] { consumer(1); });
    e.finally = [st] {
      std::uint32_t expected_waiters = 0;
      for (int i = 0; i < 2; ++i) {
        if (st->parked[i] && !st->saw[i]) {
          MC_ASSERT_MSG(st->gate.epoch_approx() != st->ticket[i],
                        "lost wakeup with two parkers");
        }
        if (st->parked[i]) ++expected_waiters;
      }
      MC_ASSERT(st->gate.waiters_approx() == expected_waiters);
    };
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete) << "executions=" << r.executions;
}

TEST(ModelCheckGateTest, RandomWalkExercisesTheFullCallSequence) {
  // Two publish rounds against a consumer running the real loop —
  // prepare / re-check / cancel-or-commit_wait — where the modeled
  // commit_wait returns spuriously and the caller loops back, exactly as
  // the WorkerPool does.  Safety only (no liveness under spurious
  // wakeups): consumption never exceeds publication and every prepare is
  // balanced by a cancel or a commit.
  mc::Options o = gate_opts();
  o.random = true;
  o.random_iterations = 20000;
  o.seed = 20260808;
  const mc::Result r = mc::ModelChecker(o).run([] {
    struct RoundState {
      WakeupGate gate;
      concurrency::catomic<std::uint32_t> work{0, "mc.rounds"};
      std::uint32_t taken = 0;
    };
    auto st = std::make_shared<RoundState>();
    mc::Execution e;
    e.threads.push_back([st] {
      for (int round = 0; round < 2; ++round) {
        st->work.fetch_add(1, std::memory_order_seq_cst);
        st->gate.notify_all();
      }
    });
    e.threads.push_back([st] {
      for (int spins = 0; spins < 6; ++spins) {
        const auto ticket = st->gate.prepare_wait();
        const std::uint32_t available =
            st->work.load(std::memory_order_seq_cst);
        if (available > st->taken) {
          st->gate.cancel_wait();
          MC_ASSERT_MSG(available <= 2, "consumed more than was published");
          st->taken = available;
          if (st->taken == 2) return;
          continue;
        }
        st->gate.commit_wait(ticket);  // spurious return; loop re-checks
      }
    });
    e.finally = [st] {
      MC_ASSERT(st->taken <= 2);
      MC_ASSERT_MSG(st->gate.waiters_approx() == 0,
                    "prepare_wait leaked a waiter slot");
    };
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_GT(r.executions, 1u);
}

}  // namespace
}  // namespace stash
