// Checker-internals tests: these pin down the *semantics* of the
// interleaving explorer — which weak-memory behaviours it can produce,
// which it must never produce, how the preemption bound gates schedules,
// and that failing schedules replay deterministically from their printed
// token.  The broken-variant catalog (broken_variants_test.cpp) then uses
// those semantics against real bug shapes.

#include "mc/model_checker.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>

#include "concurrency/catomic.hpp"

namespace stash {
namespace {

using concurrency::catomic;
using concurrency::fence;
using concurrency::var;

mc::Options tight_opts(int preemption_bound) {
  mc::Options o;
  o.preemption_bound = preemption_bound;
  o.max_executions = 100000;
  o.max_steps = 2000;
  return o;
}

TEST(ModelCheckerTest, RelaxedLoadSeesOldAndNewValues) {
  std::set<int> seen;
  const mc::Result r = mc::ModelChecker(tight_opts(2)).run([&seen] {
    auto x = std::make_shared<catomic<int>>(0, "x");
    mc::Execution e;
    e.threads.push_back([x] { x->store(1, std::memory_order_relaxed); });
    e.threads.push_back(
        [x, &seen] { seen.insert(x->load(std::memory_order_relaxed)); });
    return e;
  });
  ASSERT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(seen, (std::set<int>{0, 1}));
}

TEST(ModelCheckerTest, CoherenceKeepsPerLocationReadsMonotonic) {
  std::set<std::pair<int, int>> seen;
  const mc::Result r = mc::ModelChecker(tight_opts(3)).run([&seen] {
    auto x = std::make_shared<catomic<int>>(0, "x");
    mc::Execution e;
    e.threads.push_back([x] {
      x->store(1, std::memory_order_relaxed);
      x->store(2, std::memory_order_relaxed);
    });
    e.threads.push_back([x, &seen] {
      const int a = x->load(std::memory_order_relaxed);
      const int b = x->load(std::memory_order_relaxed);
      seen.emplace(a, b);
    });
    return e;
  });
  ASSERT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
  for (const auto& [a, b] : seen) {
    EXPECT_LE(a, b) << "coherence violation: read " << a << " then " << b;
  }
  // All six coherent pairs over values {0,1,2} are reachable.
  EXPECT_EQ(seen.size(), 6u);
}

struct StoreBuffering {
  explicit StoreBuffering(std::memory_order o) : order(o) {}
  const std::memory_order order;
  catomic<int> x{0, "sb.x"};
  catomic<int> y{0, "sb.y"};
  int r1 = -1;
  int r2 = -1;
};

std::function<mc::Execution()> store_buffering(
    std::memory_order order, std::set<std::pair<int, int>>* seen) {
  return [order, seen] {
    auto st = std::make_shared<StoreBuffering>(order);
    mc::Execution e;
    e.threads.push_back([st] {
      st->x.store(1, st->order);
      st->r1 = st->y.load(st->order);
    });
    e.threads.push_back([st] {
      st->y.store(1, st->order);
      st->r2 = st->x.load(st->order);
    });
    e.finally = [st, seen] { seen->emplace(st->r1, st->r2); };
    return e;
  };
}

TEST(ModelCheckerTest, SeqCstForbidsStoreBufferingOutcome) {
  std::set<std::pair<int, int>> seen;
  const mc::Result r = mc::ModelChecker(tight_opts(3))
                           .run(store_buffering(std::memory_order_seq_cst,
                                                &seen));
  ASSERT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(seen.contains({0, 0}))
      << "store buffering must be invisible under seq_cst";
  EXPECT_TRUE(seen.contains({1, 1}));
}

TEST(ModelCheckerTest, RelaxedAllowsStoreBufferingOutcome) {
  std::set<std::pair<int, int>> seen;
  const mc::Result r = mc::ModelChecker(tight_opts(3))
                           .run(store_buffering(std::memory_order_relaxed,
                                                &seen));
  ASSERT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(seen.contains({0, 0}))
      << "relaxed accesses must expose the store-buffering outcome";
}

// The canonical CHESS example: a seq_cst load/store lost update needs one
// preemption to manifest, so bound 0 proves the serial schedules and bound
// 1 finds the bug.
std::function<mc::Execution()> lost_update() {
  return [] {
    auto c = std::make_shared<catomic<int>>(0, "counter");
    mc::Execution e;
    const auto inc = [c] {
      const int t = c->load(std::memory_order_seq_cst);
      c->store(t + 1, std::memory_order_seq_cst);
    };
    e.threads.push_back(inc);
    e.threads.push_back(inc);
    e.finally = [c] {
      MC_ASSERT_MSG(c->load(std::memory_order_seq_cst) == 2, "lost update");
    };
    return e;
  };
}

TEST(ModelCheckerTest, PreemptionBoundZeroKeepsSchedulesSerial) {
  const mc::Result r = mc::ModelChecker(tight_opts(0)).run(lost_update());
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(ModelCheckerTest, PreemptionBoundOneFindsLostUpdate) {
  const mc::Result r = mc::ModelChecker(tight_opts(1)).run(lost_update());
  ASSERT_TRUE(r.bug_found);
  EXPECT_NE(r.bug.find("MC_ASSERT"), std::string::npos) << r.bug;
  EXPECT_NE(r.bug.find("lost update"), std::string::npos) << r.bug;
  EXPECT_FALSE(r.trace.empty());
}

TEST(ModelCheckerTest, RmwIsAtomicWhereLoadStoreIsNot) {
  const mc::Result r = mc::ModelChecker(tight_opts(3)).run([] {
    auto c = std::make_shared<catomic<int>>(0, "counter");
    mc::Execution e;
    const auto inc = [c] { c->fetch_add(1, std::memory_order_relaxed); };
    e.threads.push_back(inc);
    e.threads.push_back(inc);
    e.finally = [c] {
      MC_ASSERT(c->load(std::memory_order_seq_cst) == 2);
    };
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(ModelCheckerTest, ReplayIsDeterministicFromPrintedToken) {
  const auto make = lost_update();
  const mc::Result r = mc::ModelChecker(tight_opts(1)).run(make);
  ASSERT_TRUE(r.bug_found);

  const mc::Result a = mc::ModelChecker::replay(make, r);
  const mc::Result b = mc::ModelChecker::replay(make, r.schedule_string());
  ASSERT_TRUE(a.bug_found) << "replayed schedule lost the bug";
  ASSERT_TRUE(b.bug_found);
  EXPECT_EQ(a.bug, r.bug);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_FALSE(a.trace.empty());

  // Replaying twice more keeps producing byte-identical traces.
  const mc::Result c = mc::ModelChecker::replay(make, r.schedule_string());
  EXPECT_EQ(b.trace, c.trace);
}

TEST(ModelCheckerTest, RandomModeFindsTheSameBug) {
  mc::Options o = tight_opts(1);
  o.random = true;
  o.random_iterations = 5000;
  o.seed = 7;
  const mc::Result r = mc::ModelChecker(o).run(lost_update());
  ASSERT_TRUE(r.bug_found);
  // A random-mode failure replays exactly like a DFS one.
  const mc::Result a = mc::ModelChecker::replay(lost_update(), r);
  EXPECT_TRUE(a.bug_found) << a.trace;
}

TEST(ModelCheckerTest, FencePairSynchronisesRelaxedFlag) {
  const mc::Result r = mc::ModelChecker(tight_opts(2)).run([] {
    struct State {
      var<int> data{0, "fence.data"};
      catomic<int> flag{0, "fence.flag"};
    };
    auto st = std::make_shared<State>();
    mc::Execution e;
    e.threads.push_back([st] {
      st->data.store(1);
      fence(std::memory_order_release);
      st->flag.store(1, std::memory_order_relaxed);
    });
    e.threads.push_back([st] {
      if (st->flag.load(std::memory_order_relaxed) == 1) {
        fence(std::memory_order_acquire);
        MC_ASSERT(st->data.load() == 1);
      }
    });
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug << "\n" << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(ModelCheckerTest, UnfencedRelaxedFlagIsADataRace) {
  const mc::Result r = mc::ModelChecker(tight_opts(2)).run([] {
    struct State {
      var<int> data{0, "race.data"};
      catomic<int> flag{0, "race.flag"};
    };
    auto st = std::make_shared<State>();
    mc::Execution e;
    e.threads.push_back([st] {
      st->data.store(1);
      st->flag.store(1, std::memory_order_relaxed);
    });
    e.threads.push_back([st] {
      if (st->flag.load(std::memory_order_relaxed) == 1) {
        (void)st->data.load();
      }
    });
    return e;
  });
  ASSERT_TRUE(r.bug_found);
  EXPECT_NE(r.bug.find("race"), std::string::npos) << r.bug;
}

TEST(ModelCheckerTest, SpinLoopsAreAbandonedNotHung) {
  mc::Options o = tight_opts(2);
  o.max_steps = 100;
  o.max_executions = 50;
  const mc::Result r = mc::ModelChecker(o).run([] {
    auto flag = std::make_shared<catomic<int>>(0, "never_set");
    mc::Execution e;
    e.threads.push_back([flag] {
      while (flag->load(std::memory_order_acquire) == 0) {
      }
    });
    return e;
  });
  EXPECT_FALSE(r.bug_found) << r.bug;
  EXPECT_GE(r.abandoned, 1u);
}

TEST(ModelCheckerDeathTest, AtomicOutsideExecutionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        catomic<int> naked(0, "naked");
        (void)naked.load();
      },
      "outside a ModelChecker execution");
}

}  // namespace
}  // namespace stash
