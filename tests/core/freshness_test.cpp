#include "core/freshness.hpp"

#include <gtest/gtest.h>

#include "core/graph.hpp"

namespace stash {
namespace {

using sim::kSecond;

TEST(FreshnessTest, StartsAtZero) {
  const Freshness f;
  EXPECT_EQ(f.at(1000 * kSecond, 60 * kSecond), 0.0);
}

TEST(FreshnessTest, TouchAddsIncrement) {
  Freshness f;
  f.touch(1.0, 0, 60 * kSecond);
  EXPECT_DOUBLE_EQ(f.at(0, 60 * kSecond), 1.0);
}

TEST(FreshnessTest, DecaysByHalfEachHalfLife) {
  Freshness f;
  f.touch(8.0, 0, 60 * kSecond);
  EXPECT_DOUBLE_EQ(f.at(60 * kSecond, 60 * kSecond), 4.0);
  EXPECT_DOUBLE_EQ(f.at(120 * kSecond, 60 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(f.at(180 * kSecond, 60 * kSecond), 1.0);
}

TEST(FreshnessTest, FrequencyAccumulates) {
  // Paper §V-C.1: both frequency and recency contribute.  Two accesses
  // close together outrank a single access.
  Freshness once;
  once.touch(1.0, 0, 60 * kSecond);
  Freshness twice;
  twice.touch(1.0, 0, 60 * kSecond);
  twice.touch(1.0, kSecond, 60 * kSecond);
  EXPECT_GT(twice.at(10 * kSecond, 60 * kSecond),
            once.at(10 * kSecond, 60 * kSecond));
}

TEST(FreshnessTest, RecencyBeatsStaleness) {
  // A recently accessed entry outranks one accessed more often long ago.
  Freshness stale;
  for (int i = 0; i < 3; ++i)
    stale.touch(1.0, i * kSecond, 60 * kSecond);
  Freshness recent;
  recent.touch(1.0, 600 * kSecond, 60 * kSecond);
  EXPECT_GT(recent.at(601 * kSecond, 60 * kSecond),
            stale.at(601 * kSecond, 60 * kSecond));
}

TEST(FreshnessTest, TouchFoldsDecayIn) {
  Freshness f;
  f.touch(4.0, 0, 60 * kSecond);
  f.touch(1.0, 60 * kSecond, 60 * kSecond);  // 4 decayed to 2, +1 = 3
  EXPECT_DOUBLE_EQ(f.value, 3.0);
  EXPECT_EQ(f.last_update, 60 * kSecond);
}

TEST(FreshnessTest, FractionalIncrementForDispersion) {
  Freshness f;
  f.touch(0.25, 0, 60 * kSecond);  // the grey-cell dispersion share (Fig 3)
  EXPECT_DOUBLE_EQ(f.at(0, 60 * kSecond), 0.25);
}

TEST(FreshnessTest, ClockRegressionDoesNotAmplify) {
  // After a SimServer epoch reset / node restart the clock can sit *behind*
  // last_update.  The negative dt used to turn exp2(-dt/h) into an
  // amplifier: at(0) for an entry touched at t=600s came out as
  // value * 2^10.  Elapsed time must clamp at zero instead.
  Freshness f;
  f.touch(2.0, 600 * kSecond, 60 * kSecond);
  EXPECT_DOUBLE_EQ(f.at(0, 60 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(f.at(600 * kSecond, 60 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(f.at(660 * kSecond, 60 * kSecond), 1.0);
}

TEST(FreshnessTest, TouchAfterClockRegressionFoldsWithoutAmplification) {
  Freshness f;
  f.touch(4.0, 100 * kSecond, 60 * kSecond);
  // Regressed clock: the fold must treat the old score as undecayed, not
  // inflate it, and the entry restarts its life at the regressed time.
  f.touch(1.0, 0, 60 * kSecond);
  EXPECT_DOUBLE_EQ(f.value, 5.0);
  EXPECT_EQ(f.last_update, 0);
}

/// Eviction-order regression for the restart path: a chunk whose freshness
/// carries a pre-reset (future-looking) timestamp must not outrank a chunk
/// the post-restart workload is actively using.
TEST(FreshnessTest, EvictionAfterClockRegressionDropsStaleChunk) {
  const TemporalBin day(TemporalRes::Day, 2015, 2, 2);
  const Resolution res{6, TemporalRes::Day};
  const auto contribution = [&](const std::string& prefix) {
    ChunkContribution c;
    c.res = res;
    c.chunk = ChunkKey(prefix, day);
    Summary s(1);
    const double obs[1] = {1.0};
    s.add_observation(obs, 1);
    std::string gh = prefix;
    gh.resize(6, '0');
    c.cells.emplace_back(CellKey(gh, day), s);
    c.days.push_back(c.chunk.first_day());
    return c;
  };

  StashGraph graph;
  // "stale" was last touched at t=600s — then the node restarted and the
  // clock regressed to zero.  "hot" is what post-restart traffic uses.
  graph.absorb(contribution("9q8y"), 600 * kSecond);
  graph.absorb(contribution("dr5r"), 0);
  for (int i = 1; i <= 3; ++i)
    graph.touch_region(res, {ChunkKey("dr5r", day)}, i * kSecond);

  // Scores at the regressed clock: stale=1 (clamped, not 1*2^10), hot≈4.
  EXPECT_LT(graph.chunk_freshness(res, ChunkKey("9q8y", day), 4 * kSecond),
            graph.chunk_freshness(res, ChunkKey("dr5r", day), 4 * kSecond));

  // Evicting down to one cell must drop the stale chunk, not the hot one.
  graph.evict_to(1, 4 * kSecond);
  EXPECT_EQ(graph.find_chunk(res, ChunkKey("9q8y", day)), nullptr);
  EXPECT_NE(graph.find_chunk(res, ChunkKey("dr5r", day)), nullptr);
}

}  // namespace
}  // namespace stash
