#include "core/freshness.hpp"

#include <gtest/gtest.h>

namespace stash {
namespace {

using sim::kSecond;

TEST(FreshnessTest, StartsAtZero) {
  const Freshness f;
  EXPECT_EQ(f.at(1000 * kSecond, 60 * kSecond), 0.0);
}

TEST(FreshnessTest, TouchAddsIncrement) {
  Freshness f;
  f.touch(1.0, 0, 60 * kSecond);
  EXPECT_DOUBLE_EQ(f.at(0, 60 * kSecond), 1.0);
}

TEST(FreshnessTest, DecaysByHalfEachHalfLife) {
  Freshness f;
  f.touch(8.0, 0, 60 * kSecond);
  EXPECT_DOUBLE_EQ(f.at(60 * kSecond, 60 * kSecond), 4.0);
  EXPECT_DOUBLE_EQ(f.at(120 * kSecond, 60 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(f.at(180 * kSecond, 60 * kSecond), 1.0);
}

TEST(FreshnessTest, FrequencyAccumulates) {
  // Paper §V-C.1: both frequency and recency contribute.  Two accesses
  // close together outrank a single access.
  Freshness once;
  once.touch(1.0, 0, 60 * kSecond);
  Freshness twice;
  twice.touch(1.0, 0, 60 * kSecond);
  twice.touch(1.0, kSecond, 60 * kSecond);
  EXPECT_GT(twice.at(10 * kSecond, 60 * kSecond),
            once.at(10 * kSecond, 60 * kSecond));
}

TEST(FreshnessTest, RecencyBeatsStaleness) {
  // A recently accessed entry outranks one accessed more often long ago.
  Freshness stale;
  for (int i = 0; i < 3; ++i)
    stale.touch(1.0, i * kSecond, 60 * kSecond);
  Freshness recent;
  recent.touch(1.0, 600 * kSecond, 60 * kSecond);
  EXPECT_GT(recent.at(601 * kSecond, 60 * kSecond),
            stale.at(601 * kSecond, 60 * kSecond));
}

TEST(FreshnessTest, TouchFoldsDecayIn) {
  Freshness f;
  f.touch(4.0, 0, 60 * kSecond);
  f.touch(1.0, 60 * kSecond, 60 * kSecond);  // 4 decayed to 2, +1 = 3
  EXPECT_DOUBLE_EQ(f.value, 3.0);
  EXPECT_EQ(f.last_update, 60 * kSecond);
}

TEST(FreshnessTest, FractionalIncrementForDispersion) {
  Freshness f;
  f.touch(0.25, 0, 60 * kSecond);  // the grey-cell dispersion share (Fig 3)
  EXPECT_DOUBLE_EQ(f.at(0, 60 * kSecond), 0.25);
}

}  // namespace
}  // namespace stash
