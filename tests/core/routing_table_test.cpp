#include "core/routing_table.hpp"

#include <gtest/gtest.h>

namespace stash {
namespace {

using sim::kSecond;

const TemporalBin kDay(TemporalRes::Day, 2015, 2, 2);
const Resolution kRes6{6, TemporalRes::Day};
const sim::SimTime kTtl = 60 * kSecond;

TEST(RoutingTableTest, EmptyLookupMisses) {
  const RoutingTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_FALSE(table.lookup(kRes6, {ChunkKey("9q8y", kDay)}, 0, kTtl).has_value());
  EXPECT_FALSE(table.lookup(kRes6, {}, 0, kTtl).has_value());
}

TEST(RoutingTableTest, FullyReplicatedRegionResolvesToHelper) {
  RoutingTable table;
  const ChunkKey a("9q8y", kDay);
  const ChunkKey b("9q8z", kDay);
  table.add(kRes6, a, 7, 0);
  table.add(kRes6, b, 7, 0);
  const auto helper = table.lookup(kRes6, {a, b}, kSecond, kTtl);
  ASSERT_TRUE(helper.has_value());
  EXPECT_EQ(*helper, 7u);
}

TEST(RoutingTableTest, PartialReplicationMisses) {
  // §VII-C: reroute only when the region is *fully* replicated.
  RoutingTable table;
  table.add(kRes6, ChunkKey("9q8y", kDay), 7, 0);
  EXPECT_FALSE(table.lookup(kRes6, {ChunkKey("9q8y", kDay), ChunkKey("9q8z", kDay)},
                            0, kTtl)
                   .has_value());
}

TEST(RoutingTableTest, SplitAcrossHelpersMisses) {
  RoutingTable table;
  table.add(kRes6, ChunkKey("9q8y", kDay), 7, 0);
  table.add(kRes6, ChunkKey("9q8z", kDay), 9, 0);
  EXPECT_FALSE(table.lookup(kRes6, {ChunkKey("9q8y", kDay), ChunkKey("9q8z", kDay)},
                            0, kTtl)
                   .has_value());
}

TEST(RoutingTableTest, LevelsAreDistinct) {
  RoutingTable table;
  table.add(kRes6, ChunkKey("9q8y", kDay), 7, 0);
  EXPECT_FALSE(table.lookup({5, TemporalRes::Day}, {ChunkKey("9q8y", kDay)}, 0, kTtl)
                   .has_value());
}

TEST(RoutingTableTest, ExpiredEntriesMiss) {
  RoutingTable table;
  table.add(kRes6, ChunkKey("9q8y", kDay), 7, 0);
  EXPECT_TRUE(table.lookup(kRes6, {ChunkKey("9q8y", kDay)}, kTtl, kTtl).has_value());
  EXPECT_FALSE(
      table.lookup(kRes6, {ChunkKey("9q8y", kDay)}, kTtl + 1, kTtl).has_value());
}

TEST(RoutingTableTest, ReAddRefreshesTimestampAndHelper) {
  RoutingTable table;
  table.add(kRes6, ChunkKey("9q8y", kDay), 7, 0);
  table.add(kRes6, ChunkKey("9q8y", kDay), 9, 50 * kSecond);
  const auto helper =
      table.lookup(kRes6, {ChunkKey("9q8y", kDay)}, 100 * kSecond, kTtl);
  ASSERT_TRUE(helper.has_value());
  EXPECT_EQ(*helper, 9u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTableTest, PurgeDropsOnlyStaleEntries) {
  RoutingTable table;
  table.add(kRes6, ChunkKey("9q8y", kDay), 7, 0);
  table.add(kRes6, ChunkKey("9q8z", kDay), 7, 50 * kSecond);
  EXPECT_EQ(table.purge(70 * kSecond, kTtl), 1u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(
      table.lookup(kRes6, {ChunkKey("9q8z", kDay)}, 70 * kSecond, kTtl).has_value());
}

TEST(RoutingTableTest, DropHelperRemovesItsEntries) {
  RoutingTable table;
  table.add(kRes6, ChunkKey("9q8y", kDay), 7, 0);
  table.add(kRes6, ChunkKey("9q8z", kDay), 9, 0);
  EXPECT_EQ(table.drop_helper(7), 1u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_FALSE(table.lookup(kRes6, {ChunkKey("9q8y", kDay)}, 0, kTtl).has_value());
}

}  // namespace
}  // namespace stash
