#include "core/edges.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace stash::edges {
namespace {

const TemporalBin kDay(TemporalRes::Day, 2015, 2, 2);
const TemporalBin kMonth(TemporalRes::Month, 2015, 3);

TEST(EdgesTest, ThreeParentPrecisions) {
  // Paper §IV-B: spatial parent, temporal parent, spatiotemporal parent.
  const CellKey cell("9q8y7", kDay);
  const auto parents = hierarchical_parents(cell);
  ASSERT_EQ(parents.size(), 3u);
  EXPECT_EQ(parents[0], CellKey("9q8y", kDay));
  EXPECT_EQ(parents[1], CellKey("9q8y7", TemporalBin(TemporalRes::Month, 2015, 2)));
  EXPECT_EQ(parents[2], CellKey("9q8y", TemporalBin(TemporalRes::Month, 2015, 2)));
}

TEST(EdgesTest, ParentsAtHierarchyBoundaries) {
  EXPECT_EQ(hierarchical_parents(CellKey("9", TemporalBin(TemporalRes::Year, 2015)))
                .size(),
            0u);
  EXPECT_EQ(hierarchical_parents(CellKey("9q", TemporalBin(TemporalRes::Year, 2015)))
                .size(),
            1u);
  EXPECT_EQ(hierarchical_parents(CellKey("9", kMonth)).size(), 1u);
}

TEST(EdgesTest, ParentBoundsEncloseChild) {
  // §IV-A.2 nested coverage: the lower-resolution Cell fully encloses the
  // higher-resolution one.
  const CellKey cell("9q8y7", kDay);
  for (const auto& parent : hierarchical_parents(cell)) {
    EXPECT_TRUE(parent.bounds().contains(cell.bounds())) << parent.label();
    const TimeRange pr = parent.time_range();
    const TimeRange cr = cell.time_range();
    EXPECT_LE(pr.begin, cr.begin);
    EXPECT_GE(pr.end, cr.end);
  }
}

TEST(EdgesTest, SpatialChildrenAreThe32Subcells) {
  const CellKey cell("9q8y", kDay);
  const auto kids = spatial_children(cell);
  ASSERT_EQ(kids.size(), 32u);
  for (const auto& kid : kids) {
    EXPECT_EQ(kid.bin(), kDay);
    EXPECT_TRUE(cell.bounds().contains(kid.bounds()));
  }
}

TEST(EdgesTest, TemporalChildrenPartitionTheBin) {
  const CellKey cell("9q8y7", kMonth);
  const auto kids = temporal_children(cell);
  ASSERT_EQ(kids.size(), 31u);  // March
  for (const auto& kid : kids) EXPECT_EQ(kid.geohash_str(), "9q8y7");
}

TEST(EdgesTest, HierarchicalChildrenCountsMatchFormula) {
  // Day cell: 32 spatial + 24 temporal + 32*24 spatiotemporal children.
  const CellKey cell("9q8y7", kDay);
  EXPECT_EQ(hierarchical_children(cell).size(), 32u + 24u + 32u * 24u);
}

TEST(EdgesTest, ChildrenInvertParents) {
  const CellKey cell("9q8y", kMonth);
  for (const auto& kid : hierarchical_children(cell)) {
    const auto parents = hierarchical_parents(kid);
    EXPECT_NE(std::find(parents.begin(), parents.end(), cell), parents.end())
        << kid.label();
  }
}

TEST(EdgesTest, NoChildrenAtFinestResolutions) {
  const CellKey finest("bbbbbbbbbbbb", TemporalBin(TemporalRes::Hour, 2015, 1, 1, 0));
  EXPECT_TRUE(spatial_children(finest).empty());
  EXPECT_TRUE(temporal_children(finest).empty());
  EXPECT_TRUE(hierarchical_children(finest).empty());
}

TEST(EdgesTest, LateralNeighborsMatchPaperFigure1) {
  // Fig 1: cell 9q8y7 @ 2015-03 has 8 spatial neighbors and temporal
  // neighbors 2015-02 / 2015-04.
  const CellKey cell("9q8y7", kMonth);
  const auto laterals = lateral_neighbors(cell);
  ASSERT_EQ(laterals.size(), 10u);
  std::set<std::string> spatial;
  std::set<std::string> temporal;
  for (const auto& n : laterals) {
    if (n.bin() == kMonth) {
      spatial.insert(n.geohash_str());
    } else {
      EXPECT_EQ(n.geohash_str(), "9q8y7");
      temporal.insert(n.bin().label());
    }
  }
  EXPECT_EQ(spatial, (std::set<std::string>{"9q8yd", "9q8ye", "9q8ys", "9q8yk",
                                            "9q8yh", "9q8y5", "9q8y4", "9q8y6"}));
  EXPECT_EQ(temporal, (std::set<std::string>{"2015-02", "2015-04"}));
}

TEST(EdgesTest, LateralNeighborsStayAtSameLevel) {
  const CellKey cell("9q8y7", kDay);
  const int lvl = level_index(cell.resolution());
  for (const auto& n : lateral_neighbors(cell))
    EXPECT_EQ(level_index(n.resolution()), lvl);
}

TEST(EdgesTest, LateralNeighborsAtPoleAreFewer) {
  const std::string polar = geohash::encode({89.99, 0.0}, 5);
  const auto laterals = lateral_neighbors(CellKey(polar, kDay));
  EXPECT_LT(laterals.size(), 10u);
  EXPECT_GE(laterals.size(), 7u);  // >= 5 spatial + 2 temporal
}

}  // namespace
}  // namespace stash::edges
