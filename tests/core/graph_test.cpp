#include "core/graph.hpp"

#include <gtest/gtest.h>

namespace stash {
namespace {

using sim::kSecond;

const TemporalBin kDay(TemporalRes::Day, 2015, 2, 2);
const Resolution kRes6{6, TemporalRes::Day};

Summary make_summary(double value, std::uint64_t count = 1) {
  Summary s(kNamAttributeCount);
  for (std::uint64_t i = 0; i < count; ++i) {
    const double obs[kNamAttributeCount] = {value, value, value, value};
    s.add_observation(obs, kNamAttributeCount);
  }
  return s;
}

/// A full-chunk contribution with `n` cells under prefix+suffix geohashes.
ChunkContribution make_contribution(const std::string& prefix, int n,
                                    double value = 1.0,
                                    const TemporalBin& bin = kDay) {
  ChunkContribution c;
  c.res = Resolution{static_cast<int>(prefix.size()) + 2, bin.res()};
  c.chunk = ChunkKey(prefix, bin);
  const auto alphabet = geohash::kAlphabet;
  for (int i = 0; i < n; ++i) {
    const std::string gh = prefix +
                           alphabet[static_cast<std::size_t>(i) % 32] +
                           alphabet[static_cast<std::size_t>(i) / 32 % 32];
    c.cells.emplace_back(CellKey(gh, bin), make_summary(value));
  }
  const std::int64_t first = c.chunk.first_day();
  for (std::size_t i = 0; i < c.chunk.day_count(); ++i)
    c.days.push_back(first + static_cast<std::int64_t>(i));
  return c;
}

TEST(StashGraphTest, ConfigValidation) {
  StashConfig bad;
  bad.chunk_precision = 0;
  EXPECT_THROW(StashGraph{bad}, std::invalid_argument);
  bad = {};
  bad.safe_limit_fraction = 1.5;
  EXPECT_THROW(StashGraph{bad}, std::invalid_argument);
}

TEST(StashGraphTest, StartsEmpty) {
  const StashGraph graph;
  EXPECT_EQ(graph.total_cells(), 0u);
  EXPECT_EQ(graph.total_chunks(), 0u);
  EXPECT_FALSE(graph.chunk_complete(kRes6, ChunkKey("9q8y", kDay)));
}

TEST(StashGraphTest, AbsorbMakesChunkCompleteAndCellsFindable) {
  StashGraph graph;
  const auto c = make_contribution("9q8y", 10);
  EXPECT_EQ(graph.absorb(c, 0), 10u);
  EXPECT_EQ(graph.total_cells(), 10u);
  EXPECT_TRUE(graph.chunk_complete(kRes6, c.chunk));
  for (const auto& [key, summary] : c.cells) {
    const Summary* found = graph.find_cell(key);
    ASSERT_NE(found, nullptr) << key.label();
    EXPECT_EQ(*found, summary);
  }
}

TEST(StashGraphTest, AbsorbSameDaysTwiceIsRejected) {
  // Double-merging a day's contribution would double-count observations.
  StashGraph graph;
  const auto c = make_contribution("9q8y", 5);
  EXPECT_EQ(graph.absorb(c, 0), 5u);
  EXPECT_EQ(graph.absorb(c, 0), 0u);
  EXPECT_EQ(graph.total_cells(), 5u);
  EXPECT_EQ(graph.find_cell(c.cells[0].first)->observation_count(), 1u);
}

TEST(StashGraphTest, PartialDayContributionsMergePerCell) {
  // A Month chunk absorbs per-day batches; a cell's summary accumulates.
  StashGraph graph;
  const TemporalBin feb(TemporalRes::Month, 2015, 2);
  const CellKey cell("9q8y7z", feb);
  const ChunkKey chunk("9q8y", feb);
  const Resolution res{6, TemporalRes::Month};
  for (int d = 0; d < 28; ++d) {
    ChunkContribution c;
    c.res = res;
    c.chunk = chunk;
    c.cells.emplace_back(cell, make_summary(static_cast<double>(d)));
    c.days.push_back(chunk.first_day() + d);
    graph.absorb(c, 0);
    EXPECT_EQ(graph.chunk_complete(res, chunk), d == 27);
  }
  EXPECT_EQ(graph.find_cell(cell)->observation_count(), 28u);
  EXPECT_EQ(graph.total_cells(), 1u);  // same cell throughout
}

TEST(StashGraphTest, CollectChunkFiltersByBoxAndTime) {
  StashGraph graph;
  const auto c = make_contribution("9q8y", 32);
  graph.absorb(c, 0);
  // Whole chunk box: everything comes back.
  CellSummaryMap all;
  EXPECT_EQ(graph.collect_chunk(kRes6, c.chunk, ChunkKey("9q8y", kDay).bounds(),
                                kDay.range(), all),
            32u);
  // A box covering one child only returns cells inside it.
  CellSummaryMap some;
  const BoundingBox small = geohash::decode("9q8y7");
  const std::size_t n = graph.collect_chunk(kRes6, c.chunk, small, kDay.range(), some);
  EXPECT_LT(n, 32u);
  for (const auto& [key, summary] : some)
    EXPECT_TRUE(key.bounds().intersects(small));
  // Disjoint time: nothing.
  CellSummaryMap none;
  EXPECT_EQ(graph.collect_chunk(kRes6, c.chunk, small,
                                TemporalBin(TemporalRes::Day, 2015, 3, 2).range(),
                                none),
            0u);
}

TEST(StashGraphTest, FreshnessTouchAndDispersion) {
  StashConfig config;
  config.dispersion_fraction = 0.25;
  StashGraph graph(config);
  // Two adjacent chunks resident; touching one disperses to the other.
  const std::string north = *geohash::neighbor("9q8y", geohash::Direction::N);
  const auto a = make_contribution("9q8y", 4);
  const auto b = make_contribution(north, 4);
  graph.absorb(a, 0);
  graph.absorb(b, 0);
  const double fa0 = graph.chunk_freshness(kRes6, a.chunk, 0);
  const double fb0 = graph.chunk_freshness(kRes6, b.chunk, 0);
  EXPECT_DOUBLE_EQ(fa0, fb0);  // both got the absorb-time bump

  const std::size_t updates = graph.touch_region(kRes6, {a.chunk}, kSecond);
  EXPECT_EQ(updates, 2u);  // accessed chunk + 1 resident neighbor
  EXPECT_GT(graph.chunk_freshness(kRes6, a.chunk, kSecond),
            graph.chunk_freshness(kRes6, b.chunk, kSecond));
  EXPECT_GT(graph.chunk_freshness(kRes6, b.chunk, kSecond), fb0 / 2.0);
}

TEST(StashGraphTest, TouchRegionIgnoresAbsentChunks) {
  StashGraph graph;
  EXPECT_EQ(graph.touch_region(kRes6, {ChunkKey("9q8y", kDay)}, 0), 0u);
}

TEST(StashGraphTest, DispersionKeepsNeighborhoodAliveThroughEviction) {
  // The Fig 3 property: a heavily accessed region's neighborhood survives
  // replacement even though it was not accessed directly.
  StashConfig config;
  config.max_cells = 100;
  config.safe_limit_fraction = 0.5;
  config.dispersion_fraction = 0.3;
  StashGraph graph(config);
  const std::string adjacent = *geohash::neighbor("9q8y", geohash::Direction::E);
  const std::string remote = geohash::encode({45.0, 10.0}, 4);  // Europe
  const auto hot = make_contribution("9q8y", 20);
  const auto neighbor = make_contribution(adjacent, 20);
  const auto far = make_contribution(remote, 20);
  graph.absorb(hot, 0);
  graph.absorb(neighbor, 0);
  graph.absorb(far, 0);
  // Hammer the hot region; its neighbor accrues dispersed freshness.
  for (int i = 1; i <= 10; ++i)
    graph.touch_region(kRes6, {hot.chunk}, i * kSecond);
  // Overflow capacity to force eviction.
  graph.absorb(make_contribution(geohash::encode({50.0, 20.0}, 4), 60),
               11 * kSecond);
  EXPECT_GT(graph.total_cells(), config.max_cells);
  graph.evict_if_needed(11 * kSecond);
  EXPECT_LE(graph.total_cells(), config.safe_limit());
  EXPECT_NE(graph.find_chunk(kRes6, hot.chunk), nullptr);
  EXPECT_NE(graph.find_chunk(kRes6, neighbor.chunk), nullptr);
  EXPECT_EQ(graph.find_chunk(kRes6, far.chunk), nullptr);  // stale: evicted
}

TEST(StashGraphTest, EvictionRespectsSafeLimitAndPlm) {
  StashConfig config;
  config.max_cells = 50;
  config.safe_limit_fraction = 0.6;
  StashGraph graph(config);
  std::vector<ChunkContribution> contributions;
  const std::string prefixes[] = {"9q8y", "9q8z", "9qc0", "9qc1"};
  for (int i = 0; i < 4; ++i) {
    contributions.push_back(make_contribution(prefixes[i], 20));
    graph.absorb(contributions.back(), i * kSecond);
  }
  EXPECT_EQ(graph.total_cells(), 80u);
  const std::size_t evicted = graph.evict_if_needed(10 * kSecond);
  EXPECT_GT(evicted, 0u);
  EXPECT_LE(graph.total_cells(), 30u);
  // Evicted chunks lose PLM residency too: no stale completeness claims.
  for (const auto& c : contributions) {
    if (graph.find_chunk(kRes6, c.chunk) == nullptr) {
      EXPECT_FALSE(graph.chunk_complete(kRes6, c.chunk)) << c.chunk.label();
    }
  }
}

TEST(StashGraphTest, EvictionPrefersLowFreshness) {
  StashConfig config;
  config.max_cells = 30;
  config.safe_limit_fraction = 0.67;
  StashGraph graph(config);
  const auto cold = make_contribution("9q8y", 10);
  const auto warm = make_contribution(geohash::encode({45.0, 10.0}, 4), 10);
  graph.absorb(cold, 0);
  graph.absorb(warm, 0);
  for (int i = 1; i <= 5; ++i) graph.touch_region(kRes6, {warm.chunk}, i * kSecond);
  graph.absorb(make_contribution(geohash::encode({-30.0, 140.0}, 4), 15),
               6 * kSecond);
  graph.evict_if_needed(6 * kSecond);
  EXPECT_EQ(graph.find_chunk(kRes6, cold.chunk), nullptr);
  EXPECT_NE(graph.find_chunk(kRes6, warm.chunk), nullptr);
}

TEST(StashGraphTest, EvictToUnconditionally) {
  StashGraph graph;
  graph.absorb(make_contribution("9q8y", 10), 0);
  EXPECT_EQ(graph.evict_to(0, kSecond), 10u);
  EXPECT_EQ(graph.total_cells(), 0u);
  EXPECT_EQ(graph.total_chunks(), 0u);
}

TEST(StashGraphTest, PurgeOlderThanDropsIdleChunks) {
  // Guest-graph hygiene (§VII-D): entries not re-requested within the TTL
  // get purged.
  StashGraph graph;
  const auto old_chunk = make_contribution("9q8y", 5);
  const auto fresh_chunk = make_contribution("9qc0", 5);
  graph.absorb(old_chunk, 0);
  graph.absorb(fresh_chunk, 0);
  graph.touch_region(kRes6, {fresh_chunk.chunk}, 100 * kSecond);
  const std::size_t purged = graph.purge_older_than(130 * kSecond, 60 * kSecond);
  EXPECT_EQ(purged, 5u);
  EXPECT_EQ(graph.find_chunk(kRes6, old_chunk.chunk), nullptr);
  EXPECT_NE(graph.find_chunk(kRes6, fresh_chunk.chunk), nullptr);
}

TEST(StashGraphTest, InvalidateBlockDropsAffectedChunks) {
  StashGraph graph;
  const auto c = make_contribution("9q8y", 5);
  graph.absorb(c, 0);
  ASSERT_TRUE(graph.chunk_complete(kRes6, c.chunk));
  EXPECT_EQ(graph.invalidate_block("9q", c.chunk.first_day()), 1u);
  EXPECT_FALSE(graph.chunk_complete(kRes6, c.chunk));
  // Summaries cannot be partially subtracted: the whole chunk is dropped so
  // the next access recomputes it from scratch.
  EXPECT_EQ(graph.total_cells(), 0u);
  EXPECT_EQ(graph.find_chunk(kRes6, c.chunk), nullptr);
}

TEST(StashGraphTest, InvalidateThenReabsorbDoesNotDoubleCount) {
  // Regression: merging a rescan over stale resident cells would double
  // the observation counts.
  StashGraph graph;
  const auto c = make_contribution("9q8y", 5);
  graph.absorb(c, 0);
  graph.invalidate_block("9q", c.chunk.first_day());
  EXPECT_EQ(graph.absorb(c, 1), 5u);
  EXPECT_EQ(graph.find_cell(c.cells[0].first)->observation_count(), 1u);
}

TEST(StashGraphTest, InvalidateBlockSparesOtherRegionsAndDays) {
  StashGraph graph;
  const auto hit = make_contribution("9q8y", 5);
  const auto other_region = make_contribution(geohash::encode({45.0, 10.0}, 4), 5);
  graph.absorb(hit, 0);
  graph.absorb(other_region, 0);
  EXPECT_EQ(graph.invalidate_block("9q", hit.chunk.first_day() + 3), 0u);
  EXPECT_EQ(graph.invalidate_block("9q", hit.chunk.first_day()), 1u);
  EXPECT_NE(graph.find_chunk(kRes6, other_region.chunk), nullptr);
  EXPECT_EQ(graph.total_cells(), 5u);
}

TEST(StashGraphTest, ClearResetsEverything) {
  StashGraph graph;
  graph.absorb(make_contribution("9q8y", 5), 0);
  graph.clear();
  EXPECT_EQ(graph.total_cells(), 0u);
  EXPECT_EQ(graph.total_chunks(), 0u);
  EXPECT_FALSE(graph.chunk_complete(kRes6, ChunkKey("9q8y", kDay)));
}

TEST(StashGraphTest, EmptyChunkContributionStillMarksResidency) {
  // An ocean chunk has zero observations but must still be "known" so
  // repeat queries skip the disk.
  StashGraph graph;
  ChunkContribution empty;
  empty.res = kRes6;
  empty.chunk = ChunkKey("s000", kDay);  // gulf of Guinea: no NAM coverage
  empty.days.push_back(empty.chunk.first_day());
  graph.absorb(empty, 0);
  EXPECT_TRUE(graph.chunk_complete(kRes6, empty.chunk));
  EXPECT_EQ(graph.total_cells(), 0u);
}

TEST(StashGraphTest, AbsorbRejectsDayOutsideBinWithoutMutating) {
  // Regression: the PLM used to throw on the foreign day only *after* the
  // cells were merged, leaving a resident chunk the PLM had never heard of
  // (GraphAuditor: chunk-plm-missing).  Validation must precede mutation.
  StashGraph graph;
  auto c = make_contribution("9q8y", 4);
  c.days.push_back(c.chunk.first_day() + 100);  // not in this Day bin
  EXPECT_THROW(graph.absorb(c, 0), std::invalid_argument);
  EXPECT_EQ(graph.total_cells(), 0u);
  EXPECT_EQ(graph.total_chunks(), 0u);
  EXPECT_FALSE(graph.chunk_known(kRes6, c.chunk));
}

}  // namespace
}  // namespace stash
