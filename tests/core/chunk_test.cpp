#include "core/chunk.hpp"

#include <gtest/gtest.h>

#include <set>

namespace stash {
namespace {

const TemporalBin kDay(TemporalRes::Day, 2015, 2, 2);

TEST(ChunkKeyTest, RoundTrip) {
  const ChunkKey key("9q8y", kDay);
  EXPECT_EQ(key.prefix_str(), "9q8y");
  EXPECT_EQ(key.bin(), kDay);
  EXPECT_EQ(key.bounds(), geohash::decode("9q8y"));
  EXPECT_EQ(key.label(), "9q8y@2015-02-02");
}

TEST(ChunkKeyTest, DayAccounting) {
  EXPECT_EQ(ChunkKey("9q8y", kDay).day_count(), 1u);
  EXPECT_EQ(ChunkKey("9q8y", TemporalBin(TemporalRes::Hour, 2015, 2, 2, 5)).day_count(),
            1u);
  EXPECT_EQ(ChunkKey("9q8y", TemporalBin(TemporalRes::Month, 2015, 2)).day_count(),
            28u);
  EXPECT_EQ(ChunkKey("9q8y", TemporalBin(TemporalRes::Year, 2016)).day_count(),
            366u);
  EXPECT_EQ(ChunkKey("9q8y", kDay).first_day(), 16468);  // 2015-02-02
}

TEST(ChunkSpatialPrecisionTest, SaturatesAtChunkPrecision) {
  EXPECT_EQ(chunk_spatial_precision(2, 4), 2);
  EXPECT_EQ(chunk_spatial_precision(4, 4), 4);
  EXPECT_EQ(chunk_spatial_precision(6, 4), 4);
  EXPECT_EQ(chunk_spatial_precision(12, 4), 4);
}

TEST(ChunkOfTest, FineCellMapsToPrefixChunk) {
  const CellKey cell("9q8y7z", kDay);
  const ChunkKey chunk = chunk_of(cell, 4);
  EXPECT_EQ(chunk.prefix_str(), "9q8y");
  EXPECT_EQ(chunk.bin(), kDay);
  EXPECT_TRUE(chunk.bounds().contains(cell.bounds()));
}

TEST(ChunkOfTest, CoarseCellIsItsOwnChunk) {
  const CellKey cell("9q", kDay);
  EXPECT_EQ(chunk_of(cell, 4).prefix_str(), "9q");
}

TEST(ChunkOfTest, SiblingsShareChunk) {
  std::set<ChunkKey> chunks;
  for (const auto& gh : geohash::children("9q8y"))
    chunks.insert(chunk_of(CellKey(gh, kDay), 4));
  EXPECT_EQ(chunks.size(), 1u);
}

TEST(ChunkOfTest, DifferentBinsDifferentChunks) {
  const CellKey feb(std::string("9q8y7z"), kDay);
  const CellKey mar("9q8y7z", TemporalBin(TemporalRes::Day, 2015, 3, 2));
  EXPECT_NE(chunk_of(feb, 4), chunk_of(mar, 4));
}

TEST(ChunkNeighborsTest, TenNeighborsInland) {
  const auto neighbors = chunk_neighbors(ChunkKey("9q8y", kDay));
  EXPECT_EQ(neighbors.size(), 10u);
  std::set<std::string> prefixes;
  int temporal = 0;
  for (const auto& n : neighbors) {
    if (n.bin() == kDay) {
      prefixes.insert(n.prefix_str());
    } else {
      ++temporal;
      EXPECT_EQ(n.prefix_str(), "9q8y");
    }
  }
  EXPECT_EQ(prefixes.size(), 8u);
  EXPECT_EQ(temporal, 2);
}

TEST(ChunkNeighborsTest, NeighborhoodIsSymmetric) {
  const ChunkKey base("9q8y", kDay);
  for (const auto& n : chunk_neighbors(base)) {
    const auto back = chunk_neighbors(n);
    EXPECT_NE(std::find(back.begin(), back.end(), base), back.end())
        << n.label();
  }
}

}  // namespace
}  // namespace stash
