// GraphAuditor: a clean graph passes, and every violation class is detected
// when the corresponding invariant is deliberately broken.  Corruption goes
// through StashGraphTestPeer — the only entity allowed to define the friend
// declared in StashGraph / PrecisionLevelMap.
#include "core/audit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "model/observation.hpp"

namespace stash {

struct StashGraphTestPeer {
  static StashGraph::LevelMap& level(StashGraph& g, const Resolution& res) {
    return g.level_of(res);
  }
  static PrecisionLevelMap::LevelMap& plm_level(StashGraph& g, int lvl) {
    return g.plm_.levels_[static_cast<std::size_t>(lvl)];
  }
  static PrecisionLevelMap& plm(StashGraph& g) { return g.plm_; }
  static std::size_t& total_cells(StashGraph& g) { return g.total_cells_; }
};

namespace {

const TemporalBin kDay(TemporalRes::Day, 2015, 2, 2);
const Resolution kRes6{6, TemporalRes::Day};
const Resolution kRes7{7, TemporalRes::Day};

Summary summary_of(double value, int observations = 1) {
  Summary s(kNamAttributeCount);
  for (int i = 0; i < observations; ++i) {
    const double obs[kNamAttributeCount] = {value, value + 1, value + 2,
                                            value + 3};
    s.add_observation(obs, kNamAttributeCount);
  }
  return s;
}

ChunkContribution contribution_at(const std::string& prefix, int cells) {
  ChunkContribution c;
  c.res = Resolution{static_cast<int>(prefix.size()) + 2, TemporalRes::Day};
  c.chunk = chunk_of(CellKey(prefix + "00", kDay), 4);
  for (int i = 0; i < cells; ++i) {
    std::string gh = prefix;
    gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i) % 32]);
    gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i / 32) % 32]);
    c.cells.emplace_back(CellKey(gh, kDay), summary_of(static_cast<double>(i)));
  }
  c.days.push_back(c.chunk.first_day());
  return c;
}

/// A healthy two-chunk graph at level {6, Day}.
StashGraph healthy_graph() {
  StashGraph graph;
  EXPECT_EQ(graph.absorb(contribution_at("9q8y", 6), 10), 6u);
  EXPECT_EQ(graph.absorb(contribution_at("dr5r", 4), 20), 4u);
  EXPECT_TRUE(GraphAuditor().audit(graph).ok());
  return graph;
}

ChunkKey chunk6() { return chunk_of(CellKey("9q8y00", kDay), 4); }

TEST(AuditTest, CleanGraphPasses) {
  StashGraph graph = healthy_graph();
  const AuditReport report = GraphAuditor().audit(graph);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.chunks_checked, 2u);
  EXPECT_EQ(report.cells_checked, 10u);
  EXPECT_NE(report.to_string().find("audit OK"), std::string::npos);
}

TEST(AuditTest, EmptyGraphPasses) {
  StashGraph graph;
  EXPECT_TRUE(GraphAuditor().audit(graph).ok());
}

TEST(AuditTest, DetectsPlmChunkMissing) {
  StashGraph graph = healthy_graph();
  // PLM claims residency for a chunk the graph does not hold.
  StashGraphTestPeer::plm(graph).mark_all(level_index(kRes6),
                                          ChunkKey("gbsu", kDay));
  const AuditReport report = GraphAuditor().audit(graph);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.count(AuditViolationKind::PlmChunkMissing), 1u);
}

TEST(AuditTest, DetectsChunkPlmMissing) {
  StashGraph graph = healthy_graph();
  StashGraphTestPeer::plm(graph).erase(level_index(kRes6), chunk6());
  const AuditReport report = GraphAuditor().audit(graph);
  EXPECT_EQ(report.count(AuditViolationKind::ChunkPlmMissing), 1u);
}

TEST(AuditTest, DetectsPlmBitmapWrongSize) {
  StashGraph graph = healthy_graph();
  // A Day chunk spans one storage block; give it a 5-bit bitmap.
  DynamicBitset bits(5);
  bits.set(0);
  StashGraphTestPeer::plm_level(graph, level_index(kRes6))[chunk6()] = bits;
  const AuditReport report = GraphAuditor().audit(graph);
  EXPECT_EQ(report.count(AuditViolationKind::PlmBitmapShape), 1u);
}

TEST(AuditTest, DetectsPlmBitmapAllClear) {
  StashGraph graph = healthy_graph();
  // Right shape, but no contribution recorded: a known chunk must have at
  // least one day bit set.
  StashGraphTestPeer::plm_level(graph, level_index(kRes6))[chunk6()] =
      DynamicBitset(1);
  const AuditReport report = GraphAuditor().audit(graph);
  EXPECT_EQ(report.count(AuditViolationKind::PlmBitmapShape), 1u);
}

TEST(AuditTest, DetectsCellOutsideChunk) {
  StashGraph graph = healthy_graph();
  auto& chunk = StashGraphTestPeer::level(graph, kRes6).at(chunk6());
  // A cell whose geohash belongs to the other chunk's prefix.
  chunk.cells.emplace(CellKey("dr5rzz", kDay), summary_of(1.0));
  StashGraphTestPeer::total_cells(graph) += 1;  // keep the count honest
  const AuditReport report = GraphAuditor().audit(graph);
  EXPECT_EQ(report.count(AuditViolationKind::CellOutsideChunk), 1u);
}

TEST(AuditTest, DetectsCellKeyMalformed) {
  StashGraph graph = healthy_graph();
  auto& chunk = StashGraphTestPeer::level(graph, kRes6).at(chunk6());
  CellKey garbage;
  garbage.spatial = 0;  // zero length nibble: does not unpack
  garbage.temporal = kDay.pack();
  chunk.cells.emplace(garbage, summary_of(1.0));
  StashGraphTestPeer::total_cells(graph) += 1;
  const AuditReport report = GraphAuditor().audit(graph);
  EXPECT_EQ(report.count(AuditViolationKind::CellKeyMalformed), 1u);
}

TEST(AuditTest, DetectsSummaryInvalid) {
  StashGraph graph = healthy_graph();
  auto& chunk = StashGraphTestPeer::level(graph, kRes6).at(chunk6());
  AttributeSummary bad;
  bad.count = 1;
  bad.min = std::numeric_limits<double>::quiet_NaN();
  bad.max = 1.0;
  bad.sum = 1.0;
  bad.sum_sq = 1.0;
  chunk.cells.begin()->second = Summary::from_attributes({bad});
  const AuditReport report = GraphAuditor().audit(graph);
  EXPECT_EQ(report.count(AuditViolationKind::SummaryInvalid), 1u);

  bad.min = 5.0;  // min > max
  chunk.cells.begin()->second = Summary::from_attributes({bad});
  EXPECT_EQ(GraphAuditor().audit(graph).count(
                AuditViolationKind::SummaryInvalid),
            1u);
}

TEST(AuditTest, DetectsCellCountDrift) {
  StashGraph graph = healthy_graph();
  StashGraphTestPeer::total_cells(graph) += 3;
  const AuditReport report = GraphAuditor().audit(graph);
  EXPECT_EQ(report.count(AuditViolationKind::CellCountDrift), 1u);
}

TEST(AuditTest, DetectsFreshnessInvalid) {
  StashGraph graph = healthy_graph();
  auto& chunk = StashGraphTestPeer::level(graph, kRes6).at(chunk6());
  chunk.freshness.value = -3.0;
  EXPECT_EQ(GraphAuditor().audit(graph).count(
                AuditViolationKind::FreshnessInvalid),
            1u);

  chunk.freshness.value = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(GraphAuditor().audit(graph).count(
                AuditViolationKind::FreshnessInvalid),
            1u);
}

TEST(AuditTest, DetectsFreshnessFromTheFuture) {
  StashGraph graph = healthy_graph();  // absorbed at now = 10 and 20
  AuditOptions options;
  options.now = 15;  // one chunk's last_update (20) exceeds this
  EXPECT_EQ(GraphAuditor(options).audit(graph).count(
                AuditViolationKind::FreshnessInvalid),
            1u);
  options.now = 20;
  EXPECT_TRUE(GraphAuditor(options).audit(graph).ok());
}

/// Parent level {6,Day} synthesised exactly from complete children {7,Day}.
StashGraph graph_with_rollup() {
  StashGraph graph;
  ChunkContribution children;
  children.res = kRes7;
  children.chunk = chunk_of(CellKey("9q8ybb0", kDay), 4);
  children.days.push_back(children.chunk.first_day());
  ChunkContribution parent;
  parent.res = kRes6;
  parent.chunk = children.chunk;
  parent.days = children.days;
  for (const char* base : {"9q8ybb", "9q8ycc"}) {
    Summary rolled(kNamAttributeCount);
    for (int i = 0; i < 3; ++i) {
      const Summary s = summary_of(static_cast<double>(i), 2);
      std::string gh(base);
      gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i)]);
      children.cells.emplace_back(CellKey(gh, kDay), s);
      rolled.merge(s);
    }
    parent.cells.emplace_back(CellKey(base, kDay), std::move(rolled));
  }
  EXPECT_EQ(graph.absorb(children, 0), 6u);
  EXPECT_EQ(graph.absorb(parent, 0), 2u);
  return graph;
}

TEST(AuditTest, CleanRollupPasses) {
  StashGraph graph = graph_with_rollup();
  const AuditReport report = GraphAuditor().audit(graph);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(report.rollups_checked, 1u);
}

TEST(AuditTest, DetectsRollupValueMismatch) {
  StashGraph graph = graph_with_rollup();
  auto& parent = StashGraphTestPeer::level(graph, kRes6).at(chunk6());
  // Double-count one observation in a parent cell.
  parent.cells.at(CellKey("9q8ybb", kDay)).merge(summary_of(0.0));
  const AuditReport report = GraphAuditor().audit(graph);
  EXPECT_GE(report.count(AuditViolationKind::RollupMismatch), 1u);
}

TEST(AuditTest, DetectsRollupMissingCell) {
  StashGraph graph = graph_with_rollup();
  auto& parent = StashGraphTestPeer::level(graph, kRes6).at(chunk6());
  parent.cells.erase(CellKey("9q8ybb", kDay));
  StashGraphTestPeer::total_cells(graph) -= 1;
  const AuditReport report = GraphAuditor().audit(graph);
  EXPECT_GE(report.count(AuditViolationKind::RollupMismatch), 1u);
}

TEST(AuditTest, RollupCheckCanBeDisabled) {
  StashGraph graph = graph_with_rollup();
  auto& parent = StashGraphTestPeer::level(graph, kRes6).at(chunk6());
  parent.cells.at(CellKey("9q8ybb", kDay)).merge(summary_of(0.0));
  AuditOptions options;
  options.check_rollup = false;
  EXPECT_TRUE(GraphAuditor(options).audit(graph).ok());
}

TEST(AuditTest, DetectsRoutingViolations) {
  RoutingTable routing;
  routing.add(kRes6, chunk6(), /*helper=*/1, /*now=*/5);
  const GraphAuditor auditor;
  EXPECT_TRUE(auditor.audit_routing(routing, /*num_nodes=*/4, /*self=*/0).ok());
  // Helper id outside the cluster.
  EXPECT_EQ(auditor.audit_routing(routing, /*num_nodes=*/1, /*self=*/0)
                .count(AuditViolationKind::RoutingMalformed),
            1u);
  // Entry rerouting to the owner itself.
  EXPECT_EQ(auditor.audit_routing(routing, /*num_nodes=*/4, /*self=*/1)
                .count(AuditViolationKind::RoutingMalformed),
            1u);
}

TEST(AuditTest, TruncatesAtMaxViolations) {
  StashGraph graph = healthy_graph();
  auto& chunk = StashGraphTestPeer::level(graph, kRes6).at(chunk6());
  for (int i = 0; i < 20; ++i) {
    std::string gh = "dr5rz";
    gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i)]);
    chunk.cells.emplace(CellKey(gh, kDay), summary_of(1.0));  // all misplaced
  }
  AuditOptions options;
  options.max_violations = 4;
  const AuditReport report = GraphAuditor(options).audit(graph);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.violations.size(), 4u);
  EXPECT_NE(report.to_string().find("[truncated]"), std::string::npos);
}

TEST(AuditTest, ReportRendersKindAndDetail) {
  StashGraph graph = healthy_graph();
  StashGraphTestPeer::total_cells(graph) += 1;
  const std::string text = GraphAuditor().audit(graph).to_string();
  EXPECT_NE(text.find("audit FAILED"), std::string::npos);
  EXPECT_NE(text.find("cell-count-drift"), std::string::npos);
}

TEST(AuditTest, MergePrefixesNothingButAccumulates) {
  AuditReport a;
  a.chunks_checked = 2;
  a.violations.push_back({AuditViolationKind::CellCountDrift, "x"});
  AuditReport b;
  b.chunks_checked = 3;
  b.truncated = true;
  a.merge(std::move(b));
  EXPECT_EQ(a.chunks_checked, 5u);
  EXPECT_EQ(a.violations.size(), 1u);
  EXPECT_TRUE(a.truncated);
}

}  // namespace
}  // namespace stash
