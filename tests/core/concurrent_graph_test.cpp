#include "core/concurrent_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"

namespace stash {
namespace {

const TemporalBin kDay(TemporalRes::Day, 2015, 2, 2);
const Resolution kRes6{6, TemporalRes::Day};

ChunkContribution contribution_at(const std::string& prefix, int cells) {
  ChunkContribution c;
  c.res = kRes6;
  c.chunk = ChunkKey(prefix, kDay);
  for (int i = 0; i < cells; ++i) {
    std::string gh = prefix;
    gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i) % 32]);
    gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i / 32) % 32]);
    Summary s(kNamAttributeCount);
    const double obs[kNamAttributeCount] = {1.0, 2.0, 3.0, 4.0};
    s.add_observation(obs, kNamAttributeCount);
    c.cells.emplace_back(CellKey(gh, kDay), std::move(s));
  }
  c.days.push_back(c.chunk.first_day());
  return c;
}

TEST(ConcurrentGraphTest, SingleThreadedSemanticsMatchPlainGraph) {
  ConcurrentStashGraph graph;
  const auto c = contribution_at("9q8y", 10);
  EXPECT_EQ(graph.absorb(c, 0), 10u);
  EXPECT_EQ(graph.absorb(c, 0), 0u);  // idempotence guard preserved
  EXPECT_TRUE(graph.chunk_complete(kRes6, c.chunk));
  EXPECT_EQ(graph.total_cells(), 10u);
  const auto cell = graph.find_cell(c.cells[0].first);
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(*cell, c.cells[0].second);
  EXPECT_FALSE(graph.find_cell(CellKey("zzzzzz", kDay)).has_value());
}

TEST(ConcurrentGraphTest, ConcurrentAbsorbsAllLand) {
  ConcurrentStashGraph graph;
  constexpr int kThreads = 4;
  constexpr int kChunksPerThread = 32;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&graph, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kChunksPerThread; ++i) {
        const std::string prefix = geohash::encode(
            {rng.uniform(-60.0, 60.0), rng.uniform(-170.0, 170.0)}, 4);
        graph.absorb(contribution_at(prefix, 4), t * 100 + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Distinct seeds produce (almost surely) distinct prefixes; even with a
  // collision the idempotence guard keeps counts consistent.
  EXPECT_GT(graph.total_cells(), 0u);
  EXPECT_LE(graph.total_cells(),
            static_cast<std::size_t>(kThreads * kChunksPerThread * 4));
  EXPECT_EQ(graph.total_cells() % 4, 0u);  // whole chunks only
}

TEST(ConcurrentGraphTest, ReadersRunWhileWritersMutate) {
  ConcurrentStashGraph graph;
  graph.absorb(contribution_at("9q8y", 8), 0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      const ChunkKey chunk("9q8y", kDay);
      while (!stop.load(std::memory_order_relaxed)) {
        CellSummaryMap out;
        graph.collect_chunk(kRes6, chunk, BoundingBox::whole_world(),
                            kDay.range(), out);
        // The chunk is complete throughout: readers must never observe a
        // partially-applied absorb.
        EXPECT_TRUE(out.empty() || out.size() == 8 || out.size() > 8);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  Rng rng(42);
  // Keep writing until every reader has made progress (on a single-core
  // box the readers may not be scheduled until the writer yields).
  int i = 0;
  while (reads.load(std::memory_order_relaxed) < 50 && i < 100000) {
    const std::string prefix = geohash::encode(
        {rng.uniform(-60.0, 60.0), rng.uniform(-170.0, 170.0)}, 4);
    graph.absorb(contribution_at(prefix, 4), i);
    graph.touch_region(kRes6, {ChunkKey(prefix, kDay)}, i);
    ++i;
    if (i % 64 == 0) std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);
}

TEST(ConcurrentGraphTest, EvictionUnderConcurrentTraffic) {
  StashConfig config;
  config.max_cells = 100;
  config.safe_limit_fraction = 0.5;
  ConcurrentStashGraph graph(config);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&graph, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 77);
      for (int i = 0; i < 100; ++i) {
        const std::string prefix = geohash::encode(
            {rng.uniform(-60.0, 60.0), rng.uniform(-170.0, 170.0)}, 4);
        graph.absorb(contribution_at(prefix, 4), i);
        graph.evict_if_needed(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  // After the final eviction opportunity, capacity is respected up to one
  // in-flight absorb per thread.
  graph.evict_if_needed(1000);
  EXPECT_LE(graph.total_cells(), config.max_cells);
}

TEST(ConcurrentGraphTest, WithReadLockSeesConsistentSnapshot) {
  ConcurrentStashGraph graph;
  graph.absorb(contribution_at("9q8y", 8), 0);
  const auto [cells, chunks] = graph.with_read_lock([](const StashGraph& g) {
    return std::make_pair(g.total_cells(), g.total_chunks());
  });
  EXPECT_EQ(cells, 8u);
  EXPECT_EQ(chunks, 1u);
}

TEST(ConcurrentGraphTest, InvalidateBlockWhileReading) {
  ConcurrentStashGraph graph;
  const auto c = contribution_at("9q8y", 8);
  graph.absorb(c, 0);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed))
      (void)graph.chunk_complete(kRes6, c.chunk);
  });
  for (int i = 0; i < 100; ++i) {
    graph.invalidate_block("9q", c.chunk.first_day());
    graph.absorb(c, i);  // re-contribute after invalidation
  }
  stop.store(true);
  reader.join();
  EXPECT_TRUE(graph.chunk_complete(kRes6, c.chunk));
}

}  // namespace
}  // namespace stash
