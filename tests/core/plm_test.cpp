#include "core/plm.hpp"

#include <gtest/gtest.h>

namespace stash {
namespace {

const TemporalBin kDay(TemporalRes::Day, 2015, 2, 2);
const TemporalBin kFeb(TemporalRes::Month, 2015, 2);
constexpr std::int64_t kFeb1 = 16467;  // epoch day of 2015-02-01
const int kLevel = level_index({6, TemporalRes::Day});
const int kMonthLevel = level_index({6, TemporalRes::Month});

TEST(PlmTest, UnknownChunkIsIncomplete) {
  const PrecisionLevelMap plm;
  const ChunkKey chunk("9q8y", kDay);
  EXPECT_FALSE(plm.is_known(kLevel, chunk));
  EXPECT_FALSE(plm.is_complete(kLevel, chunk));
  EXPECT_EQ(plm.missing_days(kLevel, chunk).size(), 1u);
}

TEST(PlmTest, SingleDayChunkCompletesWithOneMark) {
  PrecisionLevelMap plm;
  const ChunkKey chunk("9q8y", kDay);
  plm.mark_day(kLevel, chunk, chunk.first_day());
  EXPECT_TRUE(plm.is_known(kLevel, chunk));
  EXPECT_TRUE(plm.is_complete(kLevel, chunk));
  EXPECT_TRUE(plm.missing_days(kLevel, chunk).empty());
}

TEST(PlmTest, MonthChunkNeedsEveryDay) {
  PrecisionLevelMap plm;
  const ChunkKey chunk("9q8y", kFeb);
  for (int d = 0; d < 27; ++d) plm.mark_day(kMonthLevel, chunk, kFeb1 + d);
  EXPECT_FALSE(plm.is_complete(kMonthLevel, chunk));
  const auto missing = plm.missing_days(kMonthLevel, chunk);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], kFeb1 + 27);
  plm.mark_day(kMonthLevel, chunk, kFeb1 + 27);
  EXPECT_TRUE(plm.is_complete(kMonthLevel, chunk));
}

TEST(PlmTest, MarkAllCompletesInOneCall) {
  PrecisionLevelMap plm;
  const ChunkKey chunk("9q8y", kFeb);
  plm.mark_all(kMonthLevel, chunk);
  EXPECT_TRUE(plm.is_complete(kMonthLevel, chunk));
}

TEST(PlmTest, MarkingIsIdempotent) {
  PrecisionLevelMap plm;
  const ChunkKey chunk("9q8y", kDay);
  plm.mark_day(kLevel, chunk, chunk.first_day());
  plm.mark_day(kLevel, chunk, chunk.first_day());
  EXPECT_TRUE(plm.is_complete(kLevel, chunk));
  EXPECT_EQ(plm.chunk_count(kLevel), 1u);
}

TEST(PlmTest, DayOutsideBinThrows) {
  PrecisionLevelMap plm;
  const ChunkKey chunk("9q8y", kDay);
  EXPECT_THROW(plm.mark_day(kLevel, chunk, chunk.first_day() + 1),
               std::invalid_argument);
  EXPECT_THROW(plm.mark_day(kLevel, chunk, chunk.first_day() - 1),
               std::invalid_argument);
}

TEST(PlmTest, LevelsAreIndependent) {
  PrecisionLevelMap plm;
  const ChunkKey chunk("9q8y", kDay);
  plm.mark_day(kLevel, chunk, chunk.first_day());
  EXPECT_FALSE(plm.is_known(level_index({5, TemporalRes::Day}), chunk));
  EXPECT_FALSE(plm.is_known(level_index({6, TemporalRes::Hour}), chunk));
}

TEST(PlmTest, BadLevelThrows) {
  PrecisionLevelMap plm;
  const ChunkKey chunk("9q8y", kDay);
  EXPECT_THROW(plm.mark_day(-1, chunk, chunk.first_day()), std::out_of_range);
  EXPECT_THROW(plm.mark_day(kNumLevels, chunk, chunk.first_day()),
               std::out_of_range);
}

TEST(PlmTest, EraseRemovesResidency) {
  PrecisionLevelMap plm;
  const ChunkKey chunk("9q8y", kDay);
  plm.mark_all(kLevel, chunk);
  plm.erase(kLevel, chunk);
  EXPECT_FALSE(plm.is_known(kLevel, chunk));
  EXPECT_EQ(plm.total_chunks(), 0u);
}

TEST(PlmTest, InvalidateBlockDemotesCompleteChunks) {
  // Models a real-time data update (§IV-D): the affected day's summaries
  // must be recomputed on next access.
  PrecisionLevelMap plm;
  const ChunkKey day_chunk("9q8y", kDay);
  const ChunkKey month_chunk("9q8y", kFeb);
  plm.mark_all(kLevel, day_chunk);
  plm.mark_all(kMonthLevel, month_chunk);
  const std::size_t demoted = plm.invalidate_block("9q", day_chunk.first_day());
  EXPECT_EQ(demoted, 2u);
  EXPECT_FALSE(plm.is_complete(kLevel, day_chunk));
  EXPECT_FALSE(plm.is_complete(kMonthLevel, month_chunk));
  // Only the invalidated day went missing from the month chunk.
  EXPECT_EQ(plm.missing_days(kMonthLevel, month_chunk).size(), 1u);
}

TEST(PlmTest, InvalidateBlockIgnoresOtherPartitionsAndDays) {
  PrecisionLevelMap plm;
  const ChunkKey chunk("9q8y", kDay);
  plm.mark_all(kLevel, chunk);
  EXPECT_EQ(plm.invalidate_block("9r", chunk.first_day()), 0u);
  EXPECT_EQ(plm.invalidate_block("9q", chunk.first_day() + 5), 0u);
  EXPECT_TRUE(plm.is_complete(kLevel, chunk));
}

TEST(PlmTest, InvalidateBlockHandlesCoarseChunks) {
  // A chunk whose prefix is *coarser* than the partition also intersects it.
  PrecisionLevelMap plm;
  const int coarse_level = level_index({2, TemporalRes::Day});
  const ChunkKey coarse("9q", kDay);
  plm.mark_all(coarse_level, coarse);
  EXPECT_EQ(plm.invalidate_block("9q8y", coarse.first_day()), 1u);
  EXPECT_FALSE(plm.is_complete(coarse_level, coarse));
}

TEST(PlmTest, Counts) {
  PrecisionLevelMap plm;
  plm.mark_all(kLevel, ChunkKey("9q8y", kDay));
  plm.mark_all(kLevel, ChunkKey("9q8z", kDay));
  plm.mark_all(kMonthLevel, ChunkKey("9q8y", kFeb));
  EXPECT_EQ(plm.chunk_count(kLevel), 2u);
  EXPECT_EQ(plm.chunk_count(kMonthLevel), 1u);
  EXPECT_EQ(plm.total_chunks(), 3u);
}

TEST(PlmTest, BitmapHashTracksCoverageExactly) {
  PrecisionLevelMap plm;
  const ChunkKey chunk("9q8y", kFeb);
  EXPECT_EQ(plm.bitmap_hash(kMonthLevel, chunk), 0u);  // unknown

  plm.mark_day(kMonthLevel, chunk, kFeb1);
  const std::uint64_t one_day = plm.bitmap_hash(kMonthLevel, chunk);
  EXPECT_NE(one_day, 0u);

  plm.mark_day(kMonthLevel, chunk, kFeb1 + 3);
  const std::uint64_t two_days = plm.bitmap_hash(kMonthLevel, chunk);
  EXPECT_NE(two_days, one_day);

  // Identical coverage on another map digests identically — the
  // anti-entropy comparison unit.
  PrecisionLevelMap other;
  other.mark_day(kMonthLevel, chunk, kFeb1);
  other.mark_day(kMonthLevel, chunk, kFeb1 + 3);
  EXPECT_EQ(other.bitmap_hash(kMonthLevel, chunk), two_days);

  // Different day, same cardinality: different digest.
  PrecisionLevelMap shifted;
  shifted.mark_day(kMonthLevel, chunk, kFeb1);
  shifted.mark_day(kMonthLevel, chunk, kFeb1 + 4);
  EXPECT_NE(shifted.bitmap_hash(kMonthLevel, chunk), two_days);

  plm.erase(kMonthLevel, chunk);
  EXPECT_EQ(plm.bitmap_hash(kMonthLevel, chunk), 0u);
}

TEST(PlmTest, BitmapHashOfCompleteChunksMatchesAcrossNodes) {
  PrecisionLevelMap a, b;
  const ChunkKey chunk("9q8y", kFeb);
  for (int d = 0; d < 28; ++d) a.mark_day(kMonthLevel, chunk, kFeb1 + d);
  b.mark_all(kMonthLevel, chunk);
  EXPECT_EQ(a.bitmap_hash(kMonthLevel, chunk),
            b.bitmap_hash(kMonthLevel, chunk));
  EXPECT_TRUE(a.is_complete(kMonthLevel, chunk));
}

}  // namespace
}  // namespace stash
