// Concurrency stress: >= 8 threads hammer one ConcurrentStashGraph with a
// mixed absorb / read / evict / invalidate workload, then the GraphAuditor
// proves no structural invariant was torn.  Primarily a TSan target
// (-DSTASH_SANITIZE=thread), but the final audit makes it a logic check on
// every build flavor.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/concurrent_graph.hpp"
#include "model/observation.hpp"

namespace stash {
namespace {

const TemporalBin kDay(TemporalRes::Day, 2015, 2, 2);
const Resolution kRes6{6, TemporalRes::Day};

ChunkContribution contribution_at(const std::string& prefix, int cells) {
  ChunkContribution c;
  c.res = kRes6;
  c.chunk = ChunkKey(prefix, kDay);
  for (int i = 0; i < cells; ++i) {
    std::string gh = prefix;
    gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i) % 32]);
    gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i / 32) % 32]);
    Summary s(kNamAttributeCount);
    const double obs[kNamAttributeCount] = {1.0, 2.0, 3.0, 4.0};
    s.add_observation(obs, kNamAttributeCount);
    c.cells.emplace_back(CellKey(gh, kDay), std::move(s));
  }
  c.days.push_back(c.chunk.first_day());
  return c;
}

std::string prefix_for(Rng& rng) {
  return geohash::encode({rng.uniform(-60.0, 60.0), rng.uniform(-170.0, 170.0)},
                         4);
}

TEST(ConcurrentStressTest, MixedWorkloadKeepsInvariants) {
  StashConfig config;
  config.max_cells = 400;  // small capacity: eviction fires constantly
  config.safe_limit_fraction = 0.5;
  ConcurrentStashGraph graph(config);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 150;
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&graph, &reads, t] {
      Rng rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const sim::SimTime now = t * kOpsPerThread + i;
        const std::string prefix = prefix_for(rng);
        const ChunkKey chunk(prefix, kDay);
        switch (i % 8) {
          case 0:
          case 1:
          case 2:
            graph.absorb(contribution_at(prefix, 4), now);
            break;
          case 3: {
            CellSummaryMap out;
            graph.collect_chunk(kRes6, chunk, BoundingBox::whole_world(),
                                kDay.range(), out);
            reads.fetch_add(out.size(), std::memory_order_relaxed);
            break;
          }
          case 4:
            graph.touch_region(kRes6, {chunk}, now);
            break;
          case 5:
            graph.evict_if_needed(now);
            break;
          case 6:
            if (i % 16 == 6)
              graph.invalidate_block(prefix.substr(0, 2), chunk.first_day());
            else
              (void)graph.chunk_missing_days(kRes6, chunk);
            break;
          case 7:
            (void)graph.find_cell(CellKey(prefix + "00", kDay));
            (void)graph.chunk_complete(kRes6, chunk);
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  graph.evict_if_needed(1'000'000);
  EXPECT_LE(graph.total_cells(), config.max_cells);

  // Whatever interleaving happened, the structure must still be coherent.
  const AuditReport report = graph.audit();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ConcurrentStressTest, AuditRunsConcurrentlyWithWriters) {
  ConcurrentStashGraph graph;
  std::atomic<bool> stop{false};
  std::thread writer([&graph, &stop] {
    Rng rng(99);
    sim::SimTime now = 0;
    while (!stop.load(std::memory_order_relaxed))
      graph.absorb(contribution_at(prefix_for(rng), 4), ++now);
  });
  for (int i = 0; i < 20; ++i) {
    const AuditReport report = graph.audit();
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace stash
