#include "core/clique.hpp"

#include <gtest/gtest.h>

namespace stash {
namespace {

using sim::kSecond;

const TemporalBin kDay(TemporalRes::Day, 2015, 2, 2);
const Resolution kRes4{4, TemporalRes::Day};
const Resolution kRes5{5, TemporalRes::Day};
const Resolution kRes6{6, TemporalRes::Day};

Summary one_observation(double v) {
  Summary s(kNamAttributeCount);
  const double obs[kNamAttributeCount] = {v, v, v, v};
  s.add_observation(obs, kNamAttributeCount);
  return s;
}

/// Hierarchically consistent contributions for one gh4 region: each s5
/// cell is the exact merge of its two s6 children and the single s4 cell
/// the merge of all — so the §V-B roll-up exactness that STASH_AUDIT
/// enforces after every absorb holds for any subset of levels resident
/// together.  Cell counts stay 1 (s4) / 8 (s5) / 16 (s6).
struct Tower {
  ChunkContribution s4, s5, s6;
};

Tower consistent_tower(const std::string& prefix4,
                       const TemporalBin& bin = kDay) {
  Tower t;
  const auto init = [&](ChunkContribution& c, const Resolution& res) {
    c.res = res;
    c.chunk = ChunkKey(prefix4, bin);
    const std::int64_t first = c.chunk.first_day();
    for (std::size_t i = 0; i < c.chunk.day_count(); ++i)
      c.days.push_back(first + static_cast<std::int64_t>(i));
  };
  init(t.s4, kRes4);
  init(t.s5, kRes5);
  init(t.s6, kRes6);
  Summary total(kNamAttributeCount);
  for (int a = 0; a < 8; ++a) {
    Summary mid(kNamAttributeCount);
    for (int b = 0; b < 2; ++b) {
      const Summary leaf = one_observation(a * 2 + b);
      std::string gh6 = prefix4;
      gh6.push_back(geohash::kAlphabet[static_cast<std::size_t>(a)]);
      gh6.push_back(geohash::kAlphabet[static_cast<std::size_t>(b)]);
      t.s6.cells.emplace_back(CellKey(gh6, bin), leaf);
      mid.merge(leaf);
    }
    std::string gh5 = prefix4;
    gh5.push_back(geohash::kAlphabet[static_cast<std::size_t>(a)]);
    t.s5.cells.emplace_back(CellKey(gh5, bin), mid);
    total.merge(mid);
  }
  t.s4.cells.emplace_back(CellKey(prefix4, bin), total);
  return t;
}

ChunkContribution contribution(const Resolution& res, const std::string& prefix,
                               int cells, const TemporalBin& bin = kDay) {
  ChunkContribution c;
  c.res = res;
  c.chunk = ChunkKey(prefix, bin);
  for (int i = 0; i < cells; ++i) {
    std::string gh = prefix;
    while (static_cast<int>(gh.size()) < res.spatial)
      gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i) % 32]);
    // Ensure distinct cell keys when several cells share a prefix length.
    if (res.spatial > static_cast<int>(prefix.size()))
      gh[prefix.size()] = geohash::kAlphabet[static_cast<std::size_t>(i) % 32];
    c.cells.emplace_back(CellKey(gh, bin), one_observation(i));
  }
  const std::int64_t first = c.chunk.first_day();
  for (std::size_t i = 0; i < c.chunk.day_count(); ++i)
    c.days.push_back(first + static_cast<std::int64_t>(i));
  return c;
}

TEST(CliqueTest, BuildCollectsRootAndDescendantLevels) {
  StashGraph graph;
  // Same gh4 region resident at s4, s5, s6 (chunk key identical: "9q8y").
  const Tower tower = consistent_tower("9q8y");
  graph.absorb(tower.s4, 0);
  graph.absorb(tower.s5, 0);
  graph.absorb(tower.s6, 0);
  const CliqueSelector selector(graph);

  const Clique depth1 = selector.build(kRes4, ChunkKey("9q8y", kDay), 1, 0);
  EXPECT_EQ(depth1.cell_count, 1u);

  const Clique depth2 = selector.build(kRes4, ChunkKey("9q8y", kDay), 2, 0);
  EXPECT_EQ(depth2.cell_count, 1u + 8u);

  const Clique depth3 = selector.build(kRes4, ChunkKey("9q8y", kDay), 3, 0);
  EXPECT_EQ(depth3.cell_count, 1u + 8u + 16u);
  EXPECT_GT(depth3.freshness, 0.0);
  EXPECT_EQ(depth3.root, ChunkKey("9q8y", kDay));
  EXPECT_EQ(depth3.label(), "9q8y@2015-02-02");
}

TEST(CliqueTest, BuildSkipsAbsentLevels) {
  StashGraph graph;
  graph.absorb(contribution(kRes6, "9q8y", 16), 0);
  const CliqueSelector selector(graph);
  const Clique clique = selector.build(kRes6, ChunkKey("9q8y", kDay), 2, 0);
  EXPECT_EQ(clique.cell_count, 16u);
  EXPECT_EQ(clique.members.size(), 1u);
}

TEST(CliqueTest, SelectTopPrefersFreshest) {
  StashGraph graph;
  const auto hot = contribution(kRes6, "9q8y", 10);
  const auto cold = contribution(kRes6, geohash::encode({45.0, 10.0}, 4), 10);
  graph.absorb(hot, 0);
  graph.absorb(cold, 0);
  for (int i = 1; i <= 5; ++i)
    graph.touch_region(kRes6, {hot.chunk}, i * kSecond);
  const CliqueSelector selector(graph);
  const auto top = selector.select_top(5 * kSecond, 10, 1, 2);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].root, hot.chunk);
}

TEST(CliqueTest, SelectTopRespectsCellBudget) {
  StashGraph graph;
  graph.absorb(contribution(kRes6, "9q8y", 30), 0);
  graph.absorb(contribution(kRes6, geohash::encode({45.0, 10.0}, 4), 30), 0);
  const CliqueSelector selector(graph);
  // Budget of 40 cells: only one 30-cell clique fits.
  const auto top = selector.select_top(0, 40, 10, 2);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].cell_count, 30u);
}

TEST(CliqueTest, SelectTopAvoidsOverlappingCliques) {
  StashGraph graph;
  const Tower tower = consistent_tower("9q8y");
  graph.absorb(tower.s4, 0);
  graph.absorb(tower.s5, 0);
  const CliqueSelector selector(graph);
  const auto top = selector.select_top(0, 1000, 10, 2);
  // The s5 chunk is covered by the s4-rooted clique; it must not be
  // selected again as its own clique root with the same membership.
  std::set<std::pair<int, ChunkKey>> seen;
  for (const auto& clique : top) {
    for (const auto& member : clique.members) {
      EXPECT_TRUE(seen.insert({level_index(member.res), member.chunk}).second)
          << member.chunk.label() << " replicated twice";
    }
  }
}

TEST(CliqueTest, SelectTopIgnoresZeroFreshness) {
  StashGraph graph;
  const CliqueSelector selector(graph);
  EXPECT_TRUE(selector.select_top(0, 1000, 10, 2).empty());
}

TEST(CliquePayloadTest, PayloadCarriesCompleteChunksOnly) {
  StashGraph graph;
  const auto full = contribution(kRes6, "9q8y", 12);
  graph.absorb(full, 0);
  // A partial month chunk: only 1 of 28 days contributed.
  const TemporalBin feb(TemporalRes::Month, 2015, 2);
  ChunkContribution partial;
  partial.res = Resolution{6, TemporalRes::Month};
  partial.chunk = ChunkKey("9q8y", feb);
  partial.cells.emplace_back(CellKey("9q8y00", feb), one_observation(1.0));
  partial.days.push_back(partial.chunk.first_day());
  graph.absorb(partial, 0);

  const CliqueSelector selector(graph);
  Clique clique = selector.build(kRes6, ChunkKey("9q8y", kDay), 1, 0);
  clique.members.push_back({partial.res, partial.chunk, 1});
  const auto payload = clique_payload(graph, clique);
  ASSERT_EQ(payload.size(), 1u);  // the partial chunk was skipped
  EXPECT_EQ(payload[0].chunk, full.chunk);
  EXPECT_EQ(payload[0].cells.size(), 12u);
}

TEST(CliquePayloadTest, PayloadInstallsIntoGuestGraphIdentically) {
  StashGraph source;
  const auto c = contribution(kRes6, "9q8y", 12);
  source.absorb(c, 0);
  const CliqueSelector selector(source);
  const Clique clique = selector.build(kRes6, c.chunk, 1, 0);

  StashGraph guest;
  for (const auto& contrib : clique_payload(source, clique))
    guest.absorb(contrib, kSecond);
  EXPECT_TRUE(guest.chunk_complete(kRes6, c.chunk));
  for (const auto& [key, summary] : c.cells) {
    const Summary* found = guest.find_cell(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, summary);
  }
}

TEST(CliquePayloadTest, ChunkPayloadShipsNamedCompleteChunksOnly) {
  StashGraph graph;
  const auto full = contribution(kRes6, "9q8y", 12);
  graph.absorb(full, 0);
  const TemporalBin feb(TemporalRes::Month, 2015, 2);
  ChunkContribution partial;
  partial.res = Resolution{6, TemporalRes::Month};
  partial.chunk = ChunkKey("9q8y", feb);
  partial.cells.emplace_back(CellKey("9q8y00", feb), one_observation(1.0));
  partial.days.push_back(partial.chunk.first_day());
  graph.absorb(partial, 0);

  // The pull names the complete chunk, the partial one, and an absent one:
  // only the complete chunk ships.
  const std::vector<std::pair<Resolution, ChunkKey>> wanted{
      {kRes6, full.chunk},
      {partial.res, partial.chunk},
      {kRes6, ChunkKey("9q8z", kDay)}};
  const auto payload = chunk_payload(graph, wanted);
  ASSERT_EQ(payload.size(), 1u);
  EXPECT_EQ(payload[0].chunk, full.chunk);
  EXPECT_EQ(payload[0].cells.size(), 12u);
}

}  // namespace
}  // namespace stash
