#include "core/query_engine.hpp"

#include <gtest/gtest.h>

#include "common/civil_time.hpp"

namespace stash {
namespace {

using sim::kSecond;

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : graph_(make_config()), engine_(graph_, store_) {}

  static StashConfig make_config() {
    StashConfig config;
    config.max_cells = 10'000'000;  // no eviction unless a test forces it
    return config;
  }

  static AggregationQuery county_query() {
    // County-sized (0.6° x 1.2°) around Kansas, 2015-02-02, s6/Day.
    return {{38.0, 38.6, -99.0, -97.8},
            TemporalBin(TemporalRes::Day, 2015, 2, 2).range(),
            {6, TemporalRes::Day}};
  }

  /// Asserts two cell maps agree exactly on keys and approximately on sums.
  static void expect_same_cells(const CellSummaryMap& a, const CellSummaryMap& b) {
    ASSERT_EQ(a.size(), b.size());
    for (const auto& [key, summary] : a) {
      const auto it = b.find(key);
      ASSERT_NE(it, b.end()) << key.label();
      EXPECT_TRUE(summary.approx_equals(it->second)) << key.label();
    }
  }

  std::shared_ptr<const NamGenerator> gen_ = std::make_shared<NamGenerator>();
  GalileoStore store_{gen_};
  StashGraph graph_;
  QueryEngine engine_;
};

TEST_F(QueryEngineTest, RejectsInvalidQueries) {
  AggregationQuery bad = county_query();
  bad.time = {100, 50};
  EXPECT_THROW((void)engine_.evaluate(bad), std::invalid_argument);
  bad = county_query();
  bad.res.spatial = 1;  // coarser than the DHT partition prefix
  EXPECT_THROW((void)engine_.evaluate(bad), std::invalid_argument);
}

TEST_F(QueryEngineTest, ColdQueryMatchesDirectScan) {
  const auto query = county_query();
  const Evaluation eval = engine_.evaluate(query);
  const ScanResult direct = store_.scan(query.area, query.time, query.res);
  // Tile semantics: the evaluation returns every cell the raw scan finds
  // (cells at the query edge may aggregate a few records outside the box,
  // so compare on the keys the direct scan produced).
  ASSERT_FALSE(direct.cells.empty());
  for (const auto& [key, summary] : direct.cells) {
    ASSERT_TRUE(eval.cells.contains(key)) << key.label();
    // Full-bin cells hold at least the records the clipped scan saw.
    EXPECT_GE(eval.cells.at(key).observation_count(), summary.observation_count());
  }
  EXPECT_GT(eval.breakdown.chunks_scanned, 0u);
  EXPECT_EQ(eval.breakdown.chunks_from_cache, 0u);
  EXPECT_GT(eval.breakdown.scan.records_scanned, 0u);
}

TEST_F(QueryEngineTest, WarmQueryIsPureCacheHitAndIdentical) {
  const auto query = county_query();
  Evaluation cold = engine_.evaluate(query);
  engine_.absorb(cold, query.res, 0);

  Evaluation warm = engine_.evaluate(query);
  EXPECT_EQ(warm.breakdown.chunks_scanned, 0u);
  EXPECT_EQ(warm.breakdown.scan.records_scanned, 0u);
  EXPECT_EQ(warm.breakdown.chunks_from_cache, warm.breakdown.chunks_total);
  expect_same_cells(cold.cells, warm.cells);
}

TEST_F(QueryEngineTest, BasicModeNeverUsesCache) {
  const auto query = county_query();
  Evaluation first = engine_.evaluate(query);
  engine_.absorb(first, query.res, 0);
  Evaluation again = engine_.evaluate(query, EvalMode::Basic);
  EXPECT_EQ(again.breakdown.chunks_from_cache, 0u);
  EXPECT_EQ(again.breakdown.cache_probes, 0u);
  EXPECT_GT(again.breakdown.scan.records_scanned, 0u);
  expect_same_cells(first.cells, again.cells);
}

TEST_F(QueryEngineTest, OverlappingQueryReusesSharedChunks) {
  // The panning scenario (§VIII-D.3): shift the box 25% east; the overlap
  // should come from cache, only the new margin from disk.
  const auto query = county_query();
  engine_.absorb(engine_.evaluate(query), query.res, 0);

  AggregationQuery panned = query;
  panned.area = query.area.translated(0.0, query.area.width() * 0.25);
  const Evaluation eval = engine_.evaluate(panned);
  EXPECT_GT(eval.breakdown.chunks_from_cache, 0u);
  EXPECT_GT(eval.breakdown.chunks_scanned, 0u);
  EXPECT_LT(eval.breakdown.chunks_scanned, eval.breakdown.chunks_total / 2);

  // Cross-check against a fresh engine evaluating the panned query cold.
  StashGraph cold_graph(make_config());
  QueryEngine cold_engine(cold_graph, store_);
  expect_same_cells(cold_engine.evaluate(panned).cells, eval.cells);
}

TEST_F(QueryEngineTest, NestedQueryIsFullyCached) {
  // Descending iterative dicing (§VIII-D.1): a subset of a cached query
  // needs no disk at all.
  AggregationQuery big = county_query();
  engine_.absorb(engine_.evaluate(big), big.res, 0);
  AggregationQuery small = big;
  small.area = big.area.scaled(0.5);
  const Evaluation eval = engine_.evaluate(small);
  EXPECT_EQ(eval.breakdown.chunks_scanned, 0u);
  EXPECT_GT(eval.breakdown.chunks_from_cache, 0u);
}

TEST_F(QueryEngineTest, RollUpSynthesizesFromFinerSpatialLevel) {
  // §V-B: missing values "available by computing from the existing cached
  // values" must not touch disk.  Cache s6 cells, then query s5.
  AggregationQuery fine = county_query();
  engine_.absorb(engine_.evaluate(fine), fine.res, 0);

  AggregationQuery coarse = fine;
  coarse.res.spatial = 5;
  const Evaluation eval = engine_.evaluate(coarse);
  EXPECT_EQ(eval.breakdown.scan.records_scanned, 0u);
  EXPECT_EQ(eval.breakdown.chunks_scanned, 0u);
  EXPECT_GT(eval.breakdown.chunks_synthesized, 0u);
  EXPECT_GT(eval.breakdown.synthesis_merges, 0u);

  // Synthesized cells equal a cold scan at the coarse resolution.
  StashGraph cold_graph(make_config());
  QueryEngine cold_engine(cold_graph, store_);
  expect_same_cells(cold_engine.evaluate(coarse).cells, eval.cells);
}

TEST_F(QueryEngineTest, RollUpSynthesizesFromFinerTemporalLevel) {
  AggregationQuery hourly = county_query();
  hourly.res.temporal = TemporalRes::Hour;
  engine_.absorb(engine_.evaluate(hourly), hourly.res, 0);

  AggregationQuery daily = county_query();
  const Evaluation eval = engine_.evaluate(daily);
  EXPECT_EQ(eval.breakdown.scan.records_scanned, 0u);
  EXPECT_GT(eval.breakdown.chunks_synthesized, 0u);

  StashGraph cold_graph(make_config());
  QueryEngine cold_engine(cold_graph, store_);
  expect_same_cells(cold_engine.evaluate(daily).cells, eval.cells);
}

TEST_F(QueryEngineTest, SynthesizedChunksBecomeResident) {
  AggregationQuery fine = county_query();
  engine_.absorb(engine_.evaluate(fine), fine.res, 0);
  AggregationQuery coarse = fine;
  coarse.res.spatial = 5;
  engine_.absorb(engine_.evaluate(coarse), coarse.res, kSecond);
  // Second coarse query: pure cache hit, no synthesis work.
  const Evaluation again = engine_.evaluate(coarse);
  EXPECT_EQ(again.breakdown.chunks_synthesized, 0u);
  EXPECT_EQ(again.breakdown.chunks_from_cache, again.breakdown.chunks_total);
}

TEST_F(QueryEngineTest, CacheOnlyModeNeverScans) {
  const auto query = county_query();
  const Evaluation miss = engine_.evaluate(query, EvalMode::CacheOnly);
  EXPECT_TRUE(miss.cells.empty());
  EXPECT_EQ(miss.breakdown.scan.records_scanned, 0u);
  EXPECT_EQ(miss.breakdown.chunks_missing, miss.breakdown.chunks_total);

  engine_.absorb(engine_.evaluate(query), query.res, 0);
  const Evaluation hit = engine_.evaluate(query, EvalMode::CacheOnly);
  EXPECT_EQ(hit.breakdown.chunks_missing, 0u);
  EXPECT_FALSE(hit.cells.empty());
}

TEST_F(QueryEngineTest, PartialChunkScansOnlyMissingDays) {
  // A month query after one cached day fetches the other 27 days only.
  AggregationQuery day = county_query();
  engine_.absorb(engine_.evaluate(day), day.res, 0);

  AggregationQuery month = county_query();
  month.res.temporal = TemporalRes::Month;
  month.time = TemporalBin(TemporalRes::Month, 2015, 2).range();
  const Evaluation eval = engine_.evaluate(month);
  // The Month level is distinct from the Day level: nothing is resident at
  // Month yet, but a full temporal-children synthesis is impossible (only
  // one day cached), so it scans the whole bin at Month level.
  EXPECT_GT(eval.breakdown.scan.records_scanned, 0u);

  engine_.absorb(eval, month.res, kSecond);
  // Invalidate one day's block: affected chunks are dropped, the next
  // month query recomputes them — and the recomputed values must equal a
  // cold evaluation exactly (no double counting).
  const std::int64_t feb10 = days_from_civil({2015, 2, 10});
  EXPECT_EQ(graph_.invalidate_block("9q", feb10), 0u);  // not a Kansas partition
  const std::size_t dropped =
      graph_.invalidate_block(geohash::encode({38.3, -98.4}, 2), feb10);
  EXPECT_GT(dropped, 0u);
  const Evaluation after = engine_.evaluate(month);
  EXPECT_GT(after.breakdown.scan.records_scanned, 0u);

  StashGraph cold_graph(make_config());
  QueryEngine cold_engine(cold_graph, store_);
  expect_same_cells(cold_engine.evaluate(month).cells, after.cells);
}

TEST_F(QueryEngineTest, MaintenanceAccountsWorkAndEviction) {
  StashConfig tight = make_config();
  tight.max_cells = 8;
  tight.safe_limit_fraction = 0.5;
  StashGraph tight_graph(tight);
  QueryEngine tight_engine(tight_graph, store_);
  const auto query = county_query();
  const Evaluation eval = tight_engine.evaluate(query);
  const MaintenanceStats stats = tight_engine.absorb(eval, query.res, 0);
  EXPECT_GT(stats.cells_absorbed, 0u);
  EXPECT_GT(stats.freshness_updates, 0u);
  EXPECT_GT(stats.cells_evicted, 0u);  // 50-cell capacity forces eviction
  EXPECT_LE(tight_graph.total_cells(), tight.safe_limit());
}

TEST_F(QueryEngineTest, EmptyRegionQueryReturnsNoCells) {
  AggregationQuery ocean = county_query();
  ocean.area = {-10.0, -9.0, -30.0, -29.0};  // mid-Atlantic, outside coverage
  const Evaluation eval = engine_.evaluate(ocean);
  EXPECT_TRUE(eval.cells.empty());
  // The chunks are still tracked as known-empty after absorb: no rescan.
  engine_.absorb(eval, ocean.res, 0);
  const Evaluation again = engine_.evaluate(ocean);
  EXPECT_EQ(again.breakdown.chunks_scanned, 0u);
}

TEST_F(QueryEngineTest, EvaluatePartitionRestrictsToPartition) {
  const auto query = county_query();
  const auto partitions = geohash::covering(query.area, 2);
  Evaluation merged;
  for (const auto& p : partitions) {
    Evaluation part = engine_.evaluate_partition(p, query);
    for (const auto& [key, summary] : part.cells) {
      EXPECT_TRUE(geohash::decode(p).contains(key.bounds())) << key.label();
      EXPECT_TRUE(merged.cells.try_emplace(key, summary).second)
          << "cell in two partitions: " << key.label();
    }
  }
  expect_same_cells(merged.cells, engine_.evaluate(query).cells);
}

TEST_F(QueryEngineTest, TouchedChunksCoverQueryFootprint) {
  const auto query = county_query();
  const Evaluation eval = engine_.evaluate(query);
  EXPECT_EQ(eval.touched_chunks.size(), eval.breakdown.chunks_total);
  for (const auto& chunk : eval.touched_chunks)
    EXPECT_TRUE(chunk.bounds().intersects(query.area)) << chunk.label();
}

}  // namespace
}  // namespace stash
