#include "client/caching_client.hpp"

#include <gtest/gtest.h>

#include "common/civil_time.hpp"

namespace stash::client {
namespace {

using cluster::ClusterConfig;
using cluster::StashCluster;

AggregationQuery kansas_query() {
  return {{38.0, 38.704, -99.0, -97.594},
          {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
          {6, TemporalRes::Day}};
}

ClusterConfig small_config() {
  ClusterConfig config;
  config.num_nodes = 16;
  return config;
}

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

TEST(CachingClientTest, FirstQueryGoesToBackend) {
  StashCluster cluster(small_config(), shared_generator());
  CachingClient client(cluster);
  const ClientResponse response = client.query(kansas_query());
  EXPECT_FALSE(response.fully_local);
  ASSERT_EQ(response.backend.size(), 1u);
  EXPECT_GT(response.cells_from_backend, 0u);
  EXPECT_FALSE(response.cells.empty());
  EXPECT_EQ(client.metrics().backend_queries, 1u);
}

TEST(CachingClientTest, InteriorRepeatIsFullyLocal) {
  StashCluster cluster(small_config(), shared_generator());
  CachingClient client(cluster);
  const auto base = kansas_query();
  client.query(base);
  AggregationQuery interior = base;
  interior.area = base.area.scaled(0.25);
  const ClientResponse local = client.query(interior);
  EXPECT_TRUE(local.fully_local);
  EXPECT_TRUE(local.backend.empty());
  EXPECT_GT(local.cells_from_frontend, 0u);
  EXPECT_LT(local.latency, sim::kMillisecond);  // no network, no cluster
}

TEST(CachingClientTest, LocalResultsMatchBackendResults) {
  const auto base = kansas_query();
  AggregationQuery interior = base;
  interior.area = base.area.scaled(0.25);

  StashCluster cached_cluster(small_config(), shared_generator());
  CachingClient client(cached_cluster);
  client.query(base);
  const ClientResponse local = client.query(interior);
  ASSERT_TRUE(local.fully_local);

  StashCluster plain(small_config(), shared_generator());
  CellSummaryMap expected;
  plain.run_query(interior, &expected);
  for (const auto& [key, summary] : expected) {
    const auto it = local.cells.find(key);
    ASSERT_NE(it, local.cells.end()) << key.label();
    EXPECT_TRUE(summary.approx_equals(it->second)) << key.label();
  }
}

TEST(CachingClientTest, PanQueriesOnlyTheMissingStrip) {
  StashCluster cluster(small_config(), shared_generator());
  CachingClientConfig config;
  config.enable_prefetch = false;
  CachingClient client(cluster, config);
  const auto base = kansas_query();
  const ClientResponse first = client.query(base);
  AggregationQuery panned = base;
  panned.area = base.area.translated(0.0, base.area.width() * 0.25);
  const ClientResponse second = client.query(panned);
  ASSERT_EQ(second.backend.size(), 1u);
  // The back-end query covered less area than the full view.
  EXPECT_LT(second.backend.front().result_cells,
            first.backend.front().result_cells);
  EXPECT_GT(second.cells_from_frontend, 0u);
}

TEST(CachingClientTest, MomentumPrefetchMakesNextPanLocal) {
  StashCluster cluster(small_config(), shared_generator());
  CachingClientConfig config;
  config.enable_prefetch = true;
  config.predictor_min_support = 2;
  CachingClient client(cluster, config);

  AggregationQuery view = kansas_query();
  bool saw_local_pan = false;
  for (int i = 0; i < 6; ++i) {
    AggregationQuery next = view;
    next.area = view.area.translated(0.0, view.area.width() * 0.25);
    const ClientResponse response = client.query(next);
    if (i >= 3 && response.fully_local) saw_local_pan = true;
    view = next;
  }
  EXPECT_GT(client.metrics().prefetches_issued, 0u);
  EXPECT_TRUE(saw_local_pan);
  EXPECT_GT(client.metrics().prefetch_hits, 0u);
}

TEST(CachingClientTest, PrefetchDisabledIssuesNone) {
  StashCluster cluster(small_config(), shared_generator());
  CachingClientConfig config;
  config.enable_prefetch = false;
  CachingClient client(cluster, config);
  AggregationQuery view = kansas_query();
  for (int i = 0; i < 5; ++i) {
    AggregationQuery next = view;
    next.area = view.area.translated(0.0, view.area.width() * 0.25);
    client.query(next);
    view = next;
  }
  EXPECT_EQ(client.metrics().prefetches_issued, 0u);
}

TEST(CachingClientTest, AntimeridianViewFetchesTwoSeamBoxes) {
  // Regression: a view crossing ±180° (wrap-encoded: lng_max > 180) used
  // to collapse into one near-global fetch box.  It must instead issue one
  // back-end query per side of the seam, each of roughly view width.
  StashCluster cluster(small_config(), shared_generator());
  CachingClientConfig config;
  config.enable_prefetch = false;
  CachingClient client(cluster, config);
  AggregationQuery view = kansas_query();
  // Fiji-ish, chunk-aligned (precision-4 chunks are 0.17578125 x
  // 0.3515625) so every covered chunk is fully inside and the repeat
  // below can be answered locally: 177.1875..180 U -180..-177.1875.
  view.area = {-19.3359375, -16.171875, 177.1875, 182.8125};
  const ClientResponse response = client.query(view);
  ASSERT_EQ(response.backend.size(), 2u);
  EXPECT_EQ(client.metrics().backend_queries, 2u);

  // Absorbing both sides makes the identical view fully local.
  const ClientResponse again = client.query(view);
  EXPECT_TRUE(again.fully_local);
}

TEST(CachingClientTest, InvalidViewThrows) {
  StashCluster cluster(small_config(), shared_generator());
  CachingClient client(cluster);
  AggregationQuery bad = kansas_query();
  bad.time = {5, 1};
  EXPECT_THROW((void)client.query(bad), std::invalid_argument);
}

}  // namespace
}  // namespace stash::client
