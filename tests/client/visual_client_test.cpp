#include "client/visual_client.hpp"

#include <gtest/gtest.h>

#include "common/civil_time.hpp"

namespace stash::client {
namespace {

using cluster::ClusterConfig;
using cluster::StashCluster;
using cluster::SystemMode;

class VisualClientTest : public ::testing::Test {
 protected:
  VisualClientTest() : cluster_(make_config(), gen_), client_(cluster_) {}

  static ClusterConfig make_config() {
    ClusterConfig config;
    config.num_nodes = 16;
    return config;
  }

  std::shared_ptr<const NamGenerator> gen_ = std::make_shared<NamGenerator>();
  StashCluster cluster_;
  VisualClient client_;

  static BoundingBox kansas() { return {37.0, 40.0, -102.0, -95.0}; }
  static TimeRange feb2() {
    return {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})};
  }
};

TEST_F(VisualClientTest, DiceReturnsSortedCells) {
  const ViewResult result = client_.dice(kansas(), feb2());
  ASSERT_FALSE(result.cells.empty());
  for (std::size_t i = 1; i < result.cells.size(); ++i)
    EXPECT_TRUE(result.cells[i - 1].key < result.cells[i].key);
  EXPECT_EQ(result.stats.result_cells, result.cells.size());
}

TEST_F(VisualClientTest, PanMovesTheView) {
  client_.dice(kansas(), feb2());
  const BoundingBox before = client_.view().area;
  client_.pan(0.0, 0.25);
  const BoundingBox after = client_.view().area;
  EXPECT_NEAR(after.lng_min - before.lng_min, before.width() * 0.25, 1e-9);
  EXPECT_NEAR(after.lat_min, before.lat_min, 1e-9);
}

TEST_F(VisualClientTest, PanReusesCache) {
  client_.dice(kansas(), feb2());
  const ViewResult panned = client_.pan(0.0, 0.1);
  EXPECT_GT(panned.stats.breakdown.chunks_from_cache, 0u);
}

TEST_F(VisualClientTest, DrillDownAndRollUpAdjustResolution) {
  client_.dice(kansas(), feb2());
  EXPECT_EQ(client_.view().res.spatial, 6);
  client_.drill_down();
  EXPECT_EQ(client_.view().res.spatial, 7);
  client_.roll_up();
  client_.roll_up();
  EXPECT_EQ(client_.view().res.spatial, 5);
}

TEST_F(VisualClientTest, RollUpSynthesizesFromCachedFinerCells) {
  client_.dice(kansas(), feb2());
  const ViewResult rolled = client_.roll_up();
  EXPECT_GT(rolled.stats.breakdown.chunks_synthesized, 0u);
  EXPECT_EQ(rolled.stats.breakdown.scan.records_scanned, 0u);
}

TEST_F(VisualClientTest, ResolutionLimitsEnforced) {
  AggregationQuery view{kansas(), feb2(), {12, TemporalRes::Day}};
  client_.set_view(view);
  EXPECT_THROW((void)client_.drill_down(), std::logic_error);
  view.res.spatial = cluster_.config().partition_prefix_length;
  client_.set_view(view);
  EXPECT_THROW((void)client_.roll_up(), std::logic_error);
}

TEST_F(VisualClientTest, SliceChangesTimeOnly) {
  client_.dice(kansas(), feb2());
  const TimeRange feb3{unix_seconds({2015, 2, 3}), unix_seconds({2015, 2, 4})};
  client_.slice(feb3);
  EXPECT_EQ(client_.view().time, feb3);
  EXPECT_EQ(client_.view().area, kansas());
}

TEST_F(VisualClientTest, RefreshHitsCache) {
  client_.dice(kansas(), feb2());
  const ViewResult again = client_.refresh();
  EXPECT_EQ(again.stats.breakdown.scan.records_scanned, 0u);
}

TEST_F(VisualClientTest, SetViewValidates) {
  AggregationQuery bad{kansas(), {50, 10}, {6, TemporalRes::Day}};
  EXPECT_THROW(client_.set_view(bad), std::invalid_argument);
}

TEST_F(VisualClientTest, JsonContainsCellsAndAttributes) {
  const ViewResult result = client_.dice(kansas(), feb2());
  const std::string json = VisualClient::to_json(result, 5);
  EXPECT_NE(json.find("\"geohash\""), std::string::npos);
  EXPECT_NE(json.find("\"surface_temperature_k\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"truncated\":true"), std::string::npos);
  // Rough well-formedness: balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(VisualClientTest, HeatmapHasRequestedShape) {
  const ViewResult result = client_.dice(kansas(), feb2());
  const std::string map = VisualClient::ascii_heatmap(
      result, kansas(), NamAttribute::SurfaceTemperatureK, 8, 20);
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 8);
  const auto first_line = map.substr(0, map.find('\n'));
  EXPECT_EQ(first_line.size(), 20u);
  // Kansas in February has data everywhere: the map is not blank.
  EXPECT_NE(map.find_first_not_of(" \n"), std::string::npos);
}

TEST_F(VisualClientTest, HeatmapValidation) {
  const ViewResult empty;
  EXPECT_THROW((void)VisualClient::ascii_heatmap(empty, kansas(),
                                                 NamAttribute::SnowDepthM, 0, 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace stash::client
