#include "client/predictor.hpp"

#include <gtest/gtest.h>

#include "common/civil_time.hpp"

namespace stash::client {
namespace {

AggregationQuery base_view() {
  return {{38.0, 39.0, -99.0, -97.0},
          {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
          {6, TemporalRes::Day}};
}

TEST(ClassifyTransitionTest, PanDirections) {
  const auto view = base_view();
  const struct {
    double dlat, dlng;
    NavAction expected;
  } cases[] = {
      {0.25, 0.0, NavAction::PanN}, {0.25, 0.25, NavAction::PanNE},
      {0.0, 0.25, NavAction::PanE}, {-0.25, 0.25, NavAction::PanSE},
      {-0.25, 0.0, NavAction::PanS}, {-0.25, -0.25, NavAction::PanSW},
      {0.0, -0.25, NavAction::PanW}, {0.25, -0.25, NavAction::PanNW},
  };
  for (const auto& c : cases) {
    AggregationQuery to = view;
    to.area = view.area.translated(c.dlat * view.area.height(),
                                   c.dlng * view.area.width());
    EXPECT_EQ(classify_transition(view, to), c.expected)
        << to_string(c.expected);
  }
}

TEST(ClassifyTransitionTest, ZoomAndSlice) {
  const auto view = base_view();
  AggregationQuery drill = view;
  ++drill.res.spatial;
  EXPECT_EQ(classify_transition(view, drill), NavAction::DrillDown);
  AggregationQuery roll = view;
  --roll.res.spatial;
  EXPECT_EQ(classify_transition(view, roll), NavAction::RollUp);
  AggregationQuery next_day = view;
  next_day.time = {view.time.end, view.time.end + 86400};
  EXPECT_EQ(classify_transition(view, next_day), NavAction::SliceNext);
  AggregationQuery prev_day = view;
  prev_day.time = {view.time.begin - 86400, view.time.begin};
  EXPECT_EQ(classify_transition(view, prev_day), NavAction::SlicePrev);
  EXPECT_EQ(classify_transition(view, view), NavAction::Repeat);
}

TEST(ClassifyTransitionTest, JumpsAreUnclassifiable) {
  const auto view = base_view();
  AggregationQuery far = view;
  far.area = view.area.translated(20.0, 40.0);  // way beyond one extent
  EXPECT_EQ(classify_transition(view, far), NavAction::Jump);
  AggregationQuery reshaped = view;
  reshaped.area = view.area.scaled(0.5);
  EXPECT_EQ(classify_transition(view, reshaped), NavAction::Jump);
  AggregationQuery retimed = view;
  retimed.time = {view.time.begin + 3600, view.time.end + 7200};
  EXPECT_EQ(classify_transition(view, retimed), NavAction::Jump);
  AggregationQuery double_zoom = view;
  double_zoom.res.spatial += 2;
  EXPECT_EQ(classify_transition(view, double_zoom), NavAction::Jump);
}

TEST(ApplyActionTest, InvertsClassification) {
  const auto view = base_view();
  for (std::size_t a = 0; a < kNavActionCount; ++a) {
    const auto action = static_cast<NavAction>(a);
    if (action == NavAction::Jump) continue;
    const auto applied = apply_action(view, action);
    ASSERT_TRUE(applied.has_value()) << to_string(action);
    EXPECT_EQ(classify_transition(view, *applied), action) << to_string(action);
  }
}

TEST(ApplyActionTest, RespectsResolutionLimits) {
  AggregationQuery finest = base_view();
  finest.res.spatial = geohash::kMaxPrecision;
  EXPECT_FALSE(apply_action(finest, NavAction::DrillDown).has_value());
  AggregationQuery coarsest = base_view();
  coarsest.res.spatial = 2;
  EXPECT_FALSE(apply_action(coarsest, NavAction::RollUp, 2).has_value());
}

TEST(PredictorTest, NoPredictionWithoutHistory) {
  const AccessPredictor predictor;
  EXPECT_FALSE(predictor.predict(base_view()).has_value());
}

TEST(PredictorTest, MomentumPansArePredicted) {
  AccessPredictor predictor(/*min_support=*/2);
  AggregationQuery view = base_view();
  // Pan east four times: by the third, pan-E -> pan-E has support 2.
  for (int i = 0; i < 4; ++i) {
    AggregationQuery next = view;
    next.area = view.area.translated(0.0, 0.25 * view.area.width());
    predictor.observe(view, next);
    view = next;
  }
  const auto predicted = predictor.predict(view);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_EQ(classify_transition(view, *predicted), NavAction::PanE);
}

TEST(PredictorTest, PredictedPanUsesObservedMagnitude) {
  AccessPredictor predictor(1);
  AggregationQuery view = base_view();
  for (int i = 0; i < 6; ++i) {
    AggregationQuery next = view;
    next.area = view.area.translated(0.0, 0.10 * view.area.width());
    predictor.observe(view, next);
    view = next;
  }
  const auto predicted = predictor.predict(view);
  ASSERT_TRUE(predicted.has_value());
  const double shift =
      (predicted->area.lng_min - view.area.lng_min) / view.area.width();
  EXPECT_NEAR(shift, 0.10, 0.05);  // EMA converges toward the user's 10%
}

TEST(PredictorTest, MinSupportGatesPredictions) {
  AccessPredictor predictor(/*min_support=*/5);
  AggregationQuery view = base_view();
  for (int i = 0; i < 3; ++i) {
    AggregationQuery next = view;
    next.area = view.area.translated(0.0, 0.25 * view.area.width());
    predictor.observe(view, next);
    view = next;
  }
  EXPECT_FALSE(predictor.predict(view).has_value());  // support only 2
}

TEST(PredictorTest, DrillRollOscillationLearned) {
  AccessPredictor predictor(1);
  AggregationQuery view = base_view();
  // drill, roll, drill, roll ... : after a drill, predict a roll.
  for (int i = 0; i < 6; ++i) {
    const NavAction action = i % 2 == 0 ? NavAction::DrillDown : NavAction::RollUp;
    const auto next = apply_action(view, action);
    ASSERT_TRUE(next.has_value());
    predictor.observe(view, *next);
    view = *next;
  }
  ASSERT_EQ(predictor.last_action(), NavAction::RollUp);
  const auto predicted = predictor.predict(view);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_EQ(classify_transition(view, *predicted), NavAction::DrillDown);
}

TEST(PredictorTest, JumpsAreNeverPredicted) {
  AccessPredictor predictor(1);
  AggregationQuery view = base_view();
  for (int i = 0; i < 5; ++i) {
    AggregationQuery next = view;
    next.area = view.area.translated(15.0, 30.0);  // jump after jump
    predictor.observe(view, next);
    view = next;
  }
  EXPECT_FALSE(predictor.predict(view).has_value());
}

}  // namespace
}  // namespace stash::client
