#include "client/frontend_cache.hpp"

#include <gtest/gtest.h>

#include "common/civil_time.hpp"
#include "common/rng.hpp"

namespace stash::client {
namespace {

AggregationQuery kansas_query() {
  return {{38.0, 38.704, -99.0, -97.594},  // ~4x4 chunks at precision 4
          {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
          {6, TemporalRes::Day}};
}

/// A full response for the query, from a real scan.
CellSummaryMap response_for(const AggregationQuery& query) {
  GalileoStore store(std::make_shared<NamGenerator>());
  return store.scan(query.area, query.time, query.res).cells;
}

TEST(FrontendCacheTest, EmptyCacheMissesEverything) {
  FrontendCache cache;
  const auto query = kansas_query();
  const FrontendLookup lookup = cache.lookup(query);
  EXPECT_TRUE(lookup.cells.empty());
  EXPECT_FALSE(lookup.missing_chunks.empty());
  ASSERT_EQ(lookup.missing_boxes.size(), 1u);
  // The missing box covers the whole query.
  EXPECT_TRUE(lookup.missing_boxes.front().contains(query.area.center()));
  EXPECT_GT(lookup.local_time, 0);
}

TEST(FrontendCacheTest, AbsorbThenLookupServesInteriorLocally) {
  FrontendCache cache;
  const auto query = kansas_query();
  const auto cells = response_for(query);
  EXPECT_GT(cache.absorb(query, cells, 0), 0u);
  EXPECT_GT(cache.total_cells(), 0u);

  // A strictly interior sub-query is served entirely from the client.
  AggregationQuery interior = query;
  interior.area = query.area.scaled(0.25);
  const FrontendLookup lookup = cache.lookup(interior);
  EXPECT_TRUE(lookup.missing_boxes.empty());
  EXPECT_FALSE(lookup.cells.empty());
}

TEST(FrontendCacheTest, EdgeChunksAreNeverMarkedComplete) {
  // A response only covers cells intersecting the query; chunks straddling
  // the boundary must stay incomplete or later queries would see holes.
  FrontendCache cache;
  AggregationQuery query = kansas_query();
  // Shift so the query is NOT chunk-aligned: edges are partial.
  query.area = query.area.translated(0.05, 0.05);
  cache.absorb(query, response_for(query), 0);

  // Probing the same query again: interior chunks hit, edge chunks miss.
  const FrontendLookup again = cache.lookup(query);
  EXPECT_FALSE(again.cells.empty());
  EXPECT_FALSE(again.missing_chunks.empty());
  for (const auto& chunk : again.missing_chunks) {
    EXPECT_FALSE(query.area.contains(chunk.bounds()))
        << chunk.label() << " is interior but missing";
  }
}

TEST(FrontendCacheTest, ServedCellsMatchBackendExactly) {
  FrontendCache cache;
  const auto query = kansas_query();
  const auto cells = response_for(query);
  cache.absorb(query, cells, 0);
  AggregationQuery interior = query;
  interior.area = query.area.scaled(0.25);
  const FrontendLookup lookup = cache.lookup(interior);
  for (const auto& [key, summary] : lookup.cells) {
    const auto it = cells.find(key);
    ASSERT_NE(it, cells.end()) << key.label();
    EXPECT_EQ(summary, it->second);
  }
}

TEST(FrontendCacheTest, MissingBoundsShrinkWithCoverage) {
  FrontendCache cache;
  // Chunk-aligned 4x4 box (precision-4 cells are 0.17578125 x 0.3515625),
  // so the first absorb covers every chunk completely.
  AggregationQuery query = kansas_query();
  query.area = {37.96875, 38.671875, -99.140625, -97.734375};
  const auto full = cache.lookup(query);
  cache.absorb(query, response_for(query), 0);
  ASSERT_TRUE(cache.lookup(query).missing_boxes.empty());

  // Pan east by 50% (2 chunk columns): only the eastern strip is missing.
  AggregationQuery panned = query;
  panned.area = query.area.translated(0.0, query.area.width() * 0.5);
  const auto partial = cache.lookup(panned);
  ASSERT_EQ(partial.missing_boxes.size(), 1u);
  ASSERT_EQ(full.missing_boxes.size(), 1u);
  EXPECT_LT(partial.missing_boxes.front().area(), full.missing_boxes.front().area());
  // The missing region lies in the un-cached east.
  EXPECT_GT(partial.missing_boxes.front().lng_min, query.area.lng_min);
}

TEST(FrontendCacheTest, CapacityEvictionKeepsCacheBounded) {
  FrontendCacheConfig config;
  config.stash.max_cells = 64;
  config.stash.safe_limit_fraction = 0.5;
  FrontendCache cache(config);
  stash::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    AggregationQuery q = kansas_query();
    q.area = q.area.translated(rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0));
    cache.absorb(q, response_for(q), i);
  }
  EXPECT_LE(cache.total_cells(), 64u);
}

TEST(FrontendCacheTest, InvalidateBlockDropsLocalState) {
  FrontendCache cache;
  const auto query = kansas_query();
  cache.absorb(query, response_for(query), 0);
  ASSERT_GT(cache.total_cells(), 0u);
  const std::size_t dropped =
      cache.invalidate_block("9y", days_from_civil({2015, 2, 2}));
  EXPECT_GT(dropped, 0u);
  const auto lookup = cache.lookup(query);
  EXPECT_FALSE(lookup.missing_boxes.empty());
}

TEST(FrontendCacheTest, AntimeridianMissingBoxesSplitAtSeam) {
  // Regression: chunks straddling ±180° used to be unioned with a naive
  // lng min/max, producing a near-global fetch box ([-180, 180] wide).
  // A wrap-encoded query (lng_max > 180) must yield one box per side of
  // the seam, each about as wide as its band.
  FrontendCache cache;
  AggregationQuery query = kansas_query();
  query.area = {-19.0, -16.0, 177.0, 183.0};  // 177..180 U -180..-177
  const FrontendLookup lookup = cache.lookup(query);
  EXPECT_FALSE(lookup.missing_chunks.empty());
  ASSERT_EQ(lookup.missing_boxes.size(), 2u);
  double total_width = 0.0;
  for (const BoundingBox& box : lookup.missing_boxes) {
    EXPECT_TRUE(box.valid());
    EXPECT_GE(box.lng_min, -180.0);
    EXPECT_LE(box.lng_max, 180.0);
    total_width += box.width();
  }
  // 6 degrees of query, chunk-aligned: far from the 360-degree blowup.
  EXPECT_LT(total_width, 8.0);
}

TEST(FrontendCacheTest, AntimeridianAbsorbServesBothSeamSides) {
  FrontendCache cache;
  AggregationQuery query = kansas_query();
  // Chunk-aligned so every covered chunk is fully inside the query.
  query.area = {-19.3359375, -16.171875, 177.1875, 182.8125};
  CellSummaryMap cells;
  for (const BoundingBox& band : lng_bands(query.area)) {
    AggregationQuery part = query;
    part.area = band;
    for (auto& [key, summary] : response_for(part)) cells.emplace(key, summary);
  }
  cache.absorb(query, cells, 0);

  const FrontendLookup again = cache.lookup(query);
  EXPECT_TRUE(again.missing_boxes.empty());
  EXPECT_TRUE(again.missing_chunks.empty());
}

TEST(FrontendCacheTest, InvalidQueryThrows) {
  FrontendCache cache;
  AggregationQuery bad = kansas_query();
  bad.time = {5, 1};
  EXPECT_THROW((void)cache.lookup(bad), std::invalid_argument);
  EXPECT_THROW((void)cache.absorb(bad, {}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace stash::client
