#include "dht/partitioner.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "geo/geohash.hpp"

namespace stash {
namespace {

TEST(ZeroHopDhtTest, ConstructionValidation) {
  EXPECT_THROW(ZeroHopDht(0), std::invalid_argument);
  EXPECT_THROW(ZeroHopDht(4, 0), std::invalid_argument);
  EXPECT_THROW(ZeroHopDht(4, 13), std::invalid_argument);
  EXPECT_NO_THROW(ZeroHopDht(120, 2));
}

TEST(ZeroHopDhtTest, PartitionKeyIsPrefix) {
  const ZeroHopDht dht(10, 2);
  EXPECT_EQ(dht.partition_key("9q8y7"), "9q");
  EXPECT_EQ(dht.partition_key("9q"), "9q");
  EXPECT_THROW((void)dht.partition_key("9"), std::invalid_argument);
}

TEST(ZeroHopDhtTest, LookupIsStable) {
  const ZeroHopDht dht(120, 2);
  const NodeId n = dht.node_for("9q8y7");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dht.node_for("9q8y7"), n);
  // Same partition prefix -> same node regardless of suffix.
  EXPECT_EQ(dht.node_for("9q000"), n);
  EXPECT_EQ(dht.node_for("9qzzz"), n);
}

TEST(ZeroHopDhtTest, NodeIdsInRange) {
  const ZeroHopDht dht(7, 2);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const LatLng p{rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)};
    EXPECT_LT(dht.node_for_point(p), 7u);
  }
}

TEST(ZeroHopDhtTest, PointAndGeohashAgree) {
  const ZeroHopDht dht(120, 2);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const LatLng p{rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)};
    EXPECT_EQ(dht.node_for_point(p), dht.node_for(geohash::encode(p, 6)));
  }
}

TEST(ZeroHopDhtTest, AllPartitionsEnumerated) {
  const ZeroHopDht dht(5, 1);
  EXPECT_EQ(dht.all_partitions().size(), 32u);
  const ZeroHopDht dht2(5, 2);
  EXPECT_EQ(dht2.all_partitions().size(), 1024u);
}

TEST(ZeroHopDhtTest, PartitionsOfCoverKeyspace) {
  const ZeroHopDht dht(9, 2);
  std::set<std::string> seen;
  for (NodeId n = 0; n < 9; ++n) {
    for (const auto& key : dht.partitions_of(n)) {
      EXPECT_EQ(dht.node_for_partition(key), n);
      EXPECT_TRUE(seen.insert(key).second) << "duplicate " << key;
    }
  }
  EXPECT_EQ(seen.size(), 1024u);
}

TEST(ZeroHopDhtTest, LoadIsRoughlyUniform) {
  // Paper §VIII-A: "data is partitioned uniformly over the cluster based on
  // the first 2 characters of their Geohash" — 1024 partitions over 120
  // nodes should land 8–9 partitions on most nodes.
  const ZeroHopDht dht(120, 2);
  std::map<NodeId, int> counts;
  for (const auto& key : dht.all_partitions()) ++counts[dht.node_for_partition(key)];
  EXPECT_GE(counts.size(), 115u);  // nearly every node owns something
  for (const auto& [node, count] : counts) {
    EXPECT_GE(count, 1);
    EXPECT_LE(count, 22) << "node " << node << " badly overloaded";
  }
}

TEST(ZeroHopDhtTest, SpatialLocalityWithinPartition) {
  // All geohashes sharing a 2-char prefix decode inside that prefix's box —
  // the property Galileo exploits to colocate proximate data.
  const ZeroHopDht dht(120, 2);
  const BoundingBox partition_box = geohash::decode("9q");
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const LatLng p{rng.uniform(partition_box.lat_min + 1e-9,
                               partition_box.lat_max - 1e-9),
                   rng.uniform(partition_box.lng_min + 1e-9,
                               partition_box.lng_max - 1e-9)};
    EXPECT_EQ(dht.partition_key(geohash::encode(p, 6)), "9q");
  }
}

TEST(ZeroHopDhtTest, ShortGeohashIsRejectedEverywhere) {
  // Truncated keys cannot name a partition: explicit errors, never UB or a
  // silently-wrong owner.
  const ZeroHopDht dht(10, 2);
  EXPECT_THROW((void)dht.node_for("9"), std::invalid_argument);
  EXPECT_THROW((void)dht.node_for(""), std::invalid_argument);
  EXPECT_THROW((void)dht.node_for_partition("9"), std::invalid_argument);
  EXPECT_THROW((void)dht.node_for_partition("9q8"), std::invalid_argument);
  EXPECT_THROW((void)dht.successor_for_partition("9", 1), std::invalid_argument);
  EXPECT_NO_THROW((void)dht.node_for("9q"));
}

TEST(ZeroHopDhtTest, SuccessorWalksTheRing) {
  const ZeroHopDht dht(7, 2);
  const NodeId owner = dht.node_for_partition("9q");
  EXPECT_EQ(dht.successor_for_partition("9q", 0), owner);
  EXPECT_EQ(dht.successor_for_partition("9q", 1), (owner + 1) % 7);
  EXPECT_EQ(dht.successor_for_partition("9q", 7), owner);  // wraps
  // k = 1..n-1 enumerates every other node exactly once (full failover
  // coverage: some live node always takes the partition).
  std::set<NodeId> seen;
  for (std::uint32_t k = 1; k < 7; ++k)
    seen.insert(dht.successor_for_partition("9q", k));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.count(owner), 0u);
}

TEST(ZeroHopDhtTest, InstallValidatesEpochAndMembers) {
  ZeroHopDht dht(4, 2);
  EXPECT_EQ(dht.epoch(), 0u);
  // Epoch must strictly advance.
  EXPECT_THROW(dht.install({.epoch = 0, .members = {0, 1}}),
               std::invalid_argument);
  // Members must be non-empty and duplicate-free.
  EXPECT_THROW(dht.install({.epoch = 1, .members = {}}),
               std::invalid_argument);
  EXPECT_THROW(dht.install({.epoch = 1, .members = {0, 1, 1}}),
               std::invalid_argument);
  // Unsorted input is accepted and sorted in place.
  dht.install({.epoch = 1, .members = {5, 0, 2}});
  EXPECT_EQ(dht.epoch(), 1u);
  EXPECT_EQ(dht.ring().members, (std::vector<NodeId>{0, 2, 5}));
  // Going backwards (or standing still) is rejected after the install too.
  EXPECT_THROW(dht.install({.epoch = 1, .members = {0, 1}}),
               std::invalid_argument);
}

TEST(ZeroHopDhtTest, ContiguousInstallMatchesFixedSizeMapping) {
  // Installing {0..N-1} must be bit-identical to a fresh N-node DHT: the
  // epoch-versioned ring is a strict generalization of the classic modulo
  // mapping, so never-resized clusters keep their historical placement.
  ZeroHopDht resized(7, 2);
  resized.install({.epoch = 3, .members = {0, 1, 2, 3}});
  const ZeroHopDht fixed(4, 2);
  for (const auto& key : fixed.all_partitions()) {
    EXPECT_EQ(resized.node_for_partition(key), fixed.node_for_partition(key));
    EXPECT_EQ(resized.successor_for_partition(key, 2),
              fixed.successor_for_partition(key, 2));
  }
}

TEST(ZeroHopDhtTest, SparseRingOwnsEveryPartition) {
  ZeroHopDht dht(8, 2);
  dht.install({.epoch = 1, .members = {1, 4, 6}});
  for (const auto& key : dht.all_partitions()) {
    const NodeId owner = dht.node_for_partition(key);
    EXPECT_TRUE(dht.ring().contains(owner)) << key;
    // Failover walk k = 1..n-1 covers the other members, duplicate-free.
    std::set<NodeId> seen;
    for (std::uint32_t k = 1; k < 3; ++k)
      seen.insert(dht.successor_for_partition(key, k));
    EXPECT_EQ(seen.size(), 2u) << key;
    EXPECT_EQ(seen.count(owner), 0u) << key;
  }
}

TEST(ZeroHopDhtTest, SuccessorOfNodeWalksSparseRingCyclically) {
  ZeroHopDht dht(8, 2);
  dht.install({.epoch = 1, .members = {1, 4, 6}});
  // k == 0 is the first member strictly after the node, wrapping.
  EXPECT_EQ(dht.successor_of_node(1, 0), 4u);
  EXPECT_EQ(dht.successor_of_node(4, 0), 6u);
  EXPECT_EQ(dht.successor_of_node(6, 0), 1u);
  // Non-members start the walk at the next higher member.
  EXPECT_EQ(dht.successor_of_node(5, 0), 6u);
  EXPECT_EQ(dht.successor_of_node(7, 0), 1u);
  // k wraps modulo the member count.
  EXPECT_EQ(dht.successor_of_node(1, 3), 4u);
}

TEST(ZeroHopDhtTest, DifferentClusterSizesRedistribute) {
  const ZeroHopDht small(4, 2);
  const ZeroHopDht large(120, 2);
  int moved = 0;
  for (const auto& key : small.all_partitions())
    if (small.node_for_partition(key) != large.node_for_partition(key)) ++moved;
  EXPECT_GT(moved, 900);  // nearly everything remaps between 4 and 120 nodes
}

}  // namespace
}  // namespace stash
