// Full-stack integration: realistic mixed sessions driven through every
// layer (session generator -> caching client -> cluster -> engine -> graph
// -> store), checked cell-for-cell against the basic system, plus
// cross-checks between STASH and the ElasticSearch baseline.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "baseline/elastic.hpp"
#include "client/caching_client.hpp"
#include "common/civil_time.hpp"
#include "obs/metrics.hpp"
#include "workload/session.hpp"

namespace stash {
namespace {

using cluster::ClusterConfig;
using cluster::StashCluster;
using cluster::SystemMode;

std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

ClusterConfig config_for(SystemMode mode) {
  ClusterConfig config;
  config.num_nodes = 16;
  config.mode = mode;
  return config;
}

void expect_same(const CellSummaryMap& a, const CellSummaryMap& b,
                 const char* context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (const auto& [key, summary] : a) {
    const auto it = b.find(key);
    ASSERT_NE(it, b.end()) << context << " " << key.label();
    EXPECT_TRUE(summary.approx_equals(it->second)) << context << " "
                                                   << key.label();
  }
}

TEST(FullStackTest, MixedSessionMatchesBasicCellForCell) {
  workload::SessionGenerator gen;
  workload::SessionConfig session_config;
  session_config.actions = 25;
  session_config.min_spatial = 4;
  session_config.max_spatial = 7;
  const workload::Session session = gen.generate(session_config);

  StashCluster stash_cluster(config_for(SystemMode::Stash), shared_generator());
  StashCluster basic_cluster(config_for(SystemMode::Basic), shared_generator());
  for (std::size_t i = 0; i < session.queries.size(); ++i) {
    CellSummaryMap stash_cells;
    CellSummaryMap basic_cells;
    stash_cluster.run_query(session.queries[i], &stash_cells);
    basic_cluster.run_query(session.queries[i], &basic_cells);
    expect_same(basic_cells, stash_cells,
                ("query " + std::to_string(i)).c_str());
  }
  // The session leaned on the cache: total scans far below basic.
  EXPECT_GT(stash_cluster.total_cached_cells(), 0u);
  // A mutation-heavy session must leave every node's graph, guest graph,
  // and routing table structurally coherent.
  const AuditReport audit = stash_cluster.audit_all();
  EXPECT_TRUE(audit.ok()) << audit.to_string();
}

TEST(FullStackTest, InterleavedUsersShareCollectiveCache) {
  workload::SessionGenerator gen;
  workload::SessionConfig session_config;
  session_config.actions = 12;
  session_config.start_group = workload::QueryGroup::County;
  const auto mixed = gen.interleaved(session_config, 4);

  StashCluster cluster(config_for(SystemMode::Stash), shared_generator());
  std::size_t scanned = 0;
  for (const auto& q : mixed) scanned += cluster.run_query(q).breakdown.scan.records_scanned;

  StashCluster basic(config_for(SystemMode::Basic), shared_generator());
  std::size_t basic_scanned = 0;
  for (const auto& q : mixed)
    basic_scanned += basic.run_query(q).breakdown.scan.records_scanned;

  EXPECT_LT(scanned, basic_scanned / 2)
      << "collective caching should halve scan volume at minimum";
}

TEST(FullStackTest, CachingClientSessionMatchesDirectCluster) {
  workload::SessionGenerator gen;
  workload::SessionConfig session_config;
  session_config.actions = 15;
  session_config.min_spatial = 4;
  session_config.max_spatial = 7;
  session_config.jump_weight = 0.0;  // keep the session in one region
  const workload::Session session = gen.generate(session_config);

  StashCluster client_cluster(config_for(SystemMode::Stash), shared_generator());
  client::CachingClient caching_client(client_cluster);

  StashCluster plain_cluster(config_for(SystemMode::Stash), shared_generator());
  for (std::size_t i = 0; i < session.queries.size(); ++i) {
    const client::ClientResponse via_client =
        caching_client.query(session.queries[i]);
    CellSummaryMap expected;
    plain_cluster.run_query(session.queries[i], &expected);
    expect_same(expected, via_client.cells,
                ("query " + std::to_string(i)).c_str());
  }
}

TEST(FullStackTest, MetricsExportCoversTheWholeStack) {
  workload::SessionGenerator gen;
  workload::SessionConfig session_config;
  session_config.actions = 20;
  session_config.min_spatial = 4;
  session_config.max_spatial = 7;
  const workload::Session session = gen.generate(session_config);

  StashCluster cluster(config_for(SystemMode::Stash), shared_generator());
  client::CachingClient caching_client(cluster);
  // The front-end cache answers some views without touching the cluster, so
  // count the backend fetches actually issued (an antimeridian view can
  // issue two per client query).
  std::uint64_t backend_queries = 0;
  for (const auto& q : session.queries)
    backend_queries += caching_client.query(q).backend.size();
  ASSERT_GT(backend_queries, 0u);

  // The registry's view must agree with what the run actually did.
  const obs::MetricsSnapshot snap = cluster.metrics_registry().snapshot();
  const auto counter = [&](const std::string& name) -> double {
    for (const auto& s : snap.scalars)
      if (s.name == name) return s.value;
    ADD_FAILURE() << "missing metric " << name;
    return 0.0;
  };
  EXPECT_EQ(counter("stash_queries_completed_total"),
            static_cast<double>(backend_queries));
  EXPECT_GT(counter("stash_subqueries_processed_total"), 0.0);
  EXPECT_GT(counter("stash_cached_cells"), 0.0);
  bool found_latency = false;
  for (const auto& h : snap.histograms)
    if (h.name == "stash_query_latency_us") {
      found_latency = true;
      EXPECT_EQ(h.count, backend_queries);
    }
  EXPECT_TRUE(found_latency);

  // CI's observability lane sets STASH_METRICS_EXPORT_PATH and validates the
  // file against tools/metrics_schema.json; locally this block is skipped.
  if (const char* path = std::getenv("STASH_METRICS_EXPORT_PATH");
      path != nullptr && *path != '\0') {
    std::FILE* out = std::fopen(path, "w");
    ASSERT_NE(out, nullptr) << "cannot write " << path;
    std::fprintf(out, "%s\n",
                 obs::to_json(snap, cluster.loop().now()).c_str());
    std::fclose(out);
  }
}

TEST(FullStackTest, StashAndElasticAgreeOnAggregates) {
  // The two systems share the deterministic store, so their *answers* must
  // be identical even though their latencies differ.
  workload::WorkloadGenerator wl;
  baseline::ElasticSearchSim es({}, shared_generator());
  StashCluster cluster(config_for(SystemMode::Stash), shared_generator());
  for (int i = 0; i < 5; ++i) {
    const AggregationQuery q = wl.random_query(workload::QueryGroup::County);
    const auto es_stats = es.run_query(q);
    const auto stash_stats = cluster.run_query(q);
    EXPECT_EQ(es_stats.result_cells, stash_stats.result_cells) << i;
  }
}

TEST(FullStackTest, SessionOverIngestBoundaryStaysConsistent) {
  workload::SessionGenerator gen;
  workload::SessionConfig session_config;
  session_config.actions = 10;
  session_config.jump_weight = 0.0;
  session_config.slice_weight = 0.0;
  const workload::Session session = gen.generate(session_config);

  StashCluster stash_cluster(config_for(SystemMode::Stash), shared_generator());
  StashCluster basic_cluster(config_for(SystemMode::Basic), shared_generator());
  const std::string partition =
      geohash::encode(session.queries.front().area.center(), 2);
  const std::int64_t day = days_from_civil({2015, 2, 2});

  for (std::size_t i = 0; i < session.queries.size(); ++i) {
    if (i == session.queries.size() / 2) {
      stash_cluster.ingest_update(partition, day);
      basic_cluster.ingest_update(partition, day);
    }
    CellSummaryMap stash_cells;
    CellSummaryMap basic_cells;
    stash_cluster.run_query(session.queries[i], &stash_cells);
    basic_cluster.run_query(session.queries[i], &basic_cells);
    expect_same(basic_cells, stash_cells,
                ("query " + std::to_string(i)).c_str());
  }
  // Ingest invalidation ran mid-session: prove it left no PLM/graph drift.
  const AuditReport audit = stash_cluster.audit_all();
  EXPECT_TRUE(audit.ok()) << audit.to_string();
}

}  // namespace
}  // namespace stash
