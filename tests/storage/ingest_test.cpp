#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"
#include "core/query_engine.hpp"
#include "storage/galileo_store.hpp"

namespace stash {
namespace {

const std::int64_t kFeb2 = days_from_civil({2015, 2, 2});

TimeRange feb2_range() { return {kFeb2 * 86400, (kFeb2 + 1) * 86400}; }

TEST(IngestTest, VersionStartsAtZeroAndIncrements) {
  GalileoStore store(std::make_shared<NamGenerator>());
  const BlockKey key{"9y", kFeb2};
  EXPECT_EQ(store.block_version(key), 0u);
  EXPECT_EQ(store.ingest_update(key), 1u);
  EXPECT_EQ(store.ingest_update(key), 2u);
  EXPECT_EQ(store.block_version(key), 2u);
  EXPECT_EQ(store.block_version(BlockKey{"9y", kFeb2 + 1}), 0u);
}

TEST(IngestTest, BadPartitionKeyThrows) {
  GalileoStore store(std::make_shared<NamGenerator>());
  EXPECT_THROW((void)store.ingest_update(BlockKey{"9y8", kFeb2}),
               std::invalid_argument);
}

TEST(IngestTest, UpdateChangesValuesNotShape) {
  GalileoStore store(std::make_shared<NamGenerator>());
  const BoundingBox box{38.0, 39.0, -99.0, -98.0};
  const Resolution res{6, TemporalRes::Day};
  const auto before = store.scan_partition("9y", box, feb2_range(), res);
  store.ingest_update(BlockKey{"9y", kFeb2});
  const auto after = store.scan_partition("9y", box, feb2_range(), res);
  // Same cells and record counts, different values.
  ASSERT_EQ(before.cells.size(), after.cells.size());
  EXPECT_EQ(before.stats.records_scanned, after.stats.records_scanned);
  int changed = 0;
  for (const auto& [key, summary] : before.cells) {
    const auto it = after.cells.find(key);
    ASSERT_NE(it, after.cells.end()) << key.label();
    EXPECT_EQ(summary.observation_count(), it->second.observation_count());
    if (!summary.approx_equals(it->second)) ++changed;
  }
  EXPECT_GT(changed, 0);
}

TEST(IngestTest, OtherBlocksUnaffected) {
  GalileoStore store(std::make_shared<NamGenerator>());
  const BoundingBox box{38.0, 39.0, -99.0, -98.0};
  const Resolution res{6, TemporalRes::Day};
  const TimeRange feb3{(kFeb2 + 1) * 86400, (kFeb2 + 2) * 86400};
  const auto before = store.scan_partition("9y", box, feb3, res);
  store.ingest_update(BlockKey{"9y", kFeb2});  // different day
  const auto after = store.scan_partition("9y", box, feb3, res);
  for (const auto& [key, summary] : before.cells)
    EXPECT_TRUE(summary.approx_equals(after.cells.at(key))) << key.label();
}

TEST(IngestTest, EngineServesFreshValuesAfterInvalidation) {
  auto gen = std::make_shared<const NamGenerator>();
  GalileoStore store(gen);
  StashGraph graph;
  QueryEngine engine(graph, store);
  const AggregationQuery query{{38.0, 38.6, -99.0, -98.4},
                               feb2_range(),
                               {6, TemporalRes::Day}};
  engine.absorb(engine.evaluate(query), query.res, 0);

  store.ingest_update(BlockKey{"9y", kFeb2});
  graph.invalidate_block("9y", kFeb2);
  const Evaluation fresh = engine.evaluate(query);
  EXPECT_GT(fresh.breakdown.scan.records_scanned, 0u);

  // The served values must equal a cold evaluation against the new data —
  // and absorbing them again must not double-count.
  StashGraph cold_graph;
  QueryEngine cold_engine(cold_graph, store);
  const Evaluation expected = cold_engine.evaluate(query);
  ASSERT_EQ(fresh.cells.size(), expected.cells.size());
  for (const auto& [key, summary] : expected.cells)
    EXPECT_TRUE(summary.approx_equals(fresh.cells.at(key))) << key.label();
  engine.absorb(fresh, query.res, 1);
  const Evaluation warm = engine.evaluate(query);
  for (const auto& [key, summary] : expected.cells)
    EXPECT_TRUE(summary.approx_equals(warm.cells.at(key))) << key.label();
}

TEST(IngestTest, ClusterIngestInvalidatesEverywhere) {
  cluster::ClusterConfig config;
  config.num_nodes = 16;
  cluster::StashCluster cluster(config, std::make_shared<const NamGenerator>());
  const AggregationQuery query{{38.0, 38.6, -99.0, -98.4},
                               feb2_range(),
                               {6, TemporalRes::Day}};
  CellSummaryMap before;
  cluster.run_query(query, &before);
  ASSERT_EQ(cluster.run_query(query).breakdown.scan.records_scanned, 0u);

  const std::string partition = geohash::encode({38.3, -98.7}, 2);
  EXPECT_EQ(cluster.ingest_update(partition, kFeb2), 1u);

  CellSummaryMap after;
  const auto stats = cluster.run_query(query, &after);
  EXPECT_GT(stats.breakdown.scan.records_scanned, 0u);
  ASSERT_EQ(before.size(), after.size());
  int changed = 0;
  for (const auto& [key, summary] : before) {
    if (!summary.approx_equals(after.at(key))) ++changed;
  }
  EXPECT_GT(changed, 0);
}

}  // namespace
}  // namespace stash
