#include "storage/galileo_store.hpp"

#include <gtest/gtest.h>

#include "common/civil_time.hpp"
#include "dht/partitioner.hpp"

namespace stash {
namespace {

class GalileoStoreTest : public ::testing::Test {
 protected:
  std::shared_ptr<const NamGenerator> gen_ = std::make_shared<NamGenerator>();
  GalileoStore store_{gen_};
  TimeRange feb2_{unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})};
  Resolution res6_{6, TemporalRes::Day};
};

TEST_F(GalileoStoreTest, ConstructionValidation) {
  EXPECT_THROW(GalileoStore(nullptr), std::invalid_argument);
  EXPECT_THROW(GalileoStore(gen_, 0), std::invalid_argument);
  EXPECT_THROW(GalileoStore(gen_, 13), std::invalid_argument);
}

TEST_F(GalileoStoreTest, ScanPartitionValidatesInput) {
  EXPECT_THROW(
      (void)store_.scan_partition("9q8", BoundingBox::whole_world(), feb2_, res6_),
      std::invalid_argument);
  EXPECT_THROW((void)store_.scan_partition(
                   "9q", BoundingBox::whole_world(), feb2_,
                   Resolution{0, TemporalRes::Day}),
               std::invalid_argument);
}

TEST_F(GalileoStoreTest, ScanClipsToPartition) {
  // Scan "9q" (California-ish) with a world region: all cells stay inside.
  const auto result =
      store_.scan_partition("9q", BoundingBox::whole_world(), feb2_, res6_);
  ASSERT_FALSE(result.cells.empty());
  const BoundingBox partition_box = geohash::decode("9q");
  for (const auto& [key, summary] : result.cells) {
    EXPECT_TRUE(partition_box.contains(key.bounds())) << key.label();
    EXPECT_GT(summary.observation_count(), 0u);
  }
}

TEST_F(GalileoStoreTest, CellCountsAddUpToRecords) {
  const BoundingBox box{36.0, 38.0, -122.0, -120.0};
  const auto result = store_.scan_partition("9q", box, feb2_, res6_);
  std::uint64_t total = 0;
  for (const auto& [key, summary] : result.cells)
    total += summary.observation_count();
  EXPECT_EQ(total, result.stats.records_scanned);
  EXPECT_EQ(result.stats.records_scanned,
            gen_->count(box.intersection(geohash::decode("9q")), feb2_));
  EXPECT_EQ(result.stats.bytes_read,
            result.stats.records_scanned * kObservationBytes);
  EXPECT_EQ(result.stats.blocks_touched, 1u);  // one day = one block
}

TEST_F(GalileoStoreTest, EveryRecordLandsInItsCell) {
  const BoundingBox box{36.0, 37.0, -122.0, -121.0};
  const auto result = store_.scan_partition("9q", box, feb2_, res6_);
  for (const auto& obs : gen_->generate(box.intersection(geohash::decode("9q")),
                                        feb2_)) {
    const CellKey key(geohash::encode(obs.position, 6),
                      TemporalBin::of_timestamp(obs.timestamp, TemporalRes::Day));
    ASSERT_TRUE(result.cells.contains(key)) << key.label();
    EXPECT_TRUE(key.bounds().contains(obs.position));
  }
}

TEST_F(GalileoStoreTest, MultiDayScanTouchesOneBlockPerDay) {
  const TimeRange three_days{unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 5})};
  const BoundingBox box{36.0, 37.0, -122.0, -121.0};
  const auto result = store_.scan_partition("9q", box, three_days, res6_);
  EXPECT_EQ(result.stats.blocks_touched, 3u);
}

TEST_F(GalileoStoreTest, DisjointPartitionsDisjointCells) {
  const BoundingBox big{30.0, 45.0, -125.0, -100.0};
  const auto a = store_.scan_partition("9q", big, feb2_, res6_);
  const auto b = store_.scan_partition("9w", big, feb2_, res6_);
  for (const auto& [key, summary] : a.cells)
    EXPECT_FALSE(b.cells.contains(key)) << key.label();
}

TEST_F(GalileoStoreTest, FullScanEqualsSumOfPartitionScans) {
  const BoundingBox box{33.0, 40.0, -120.0, -110.0};  // spans several partitions
  const auto whole = store_.scan(box, feb2_, res6_);
  ScanResult manual;
  for (const auto& partition : geohash::covering(box, 2)) {
    const auto part = store_.scan_partition(partition, box, feb2_, res6_);
    manual.stats += part.stats;
    for (const auto& [key, summary] : part.cells) {
      auto [it, inserted] = manual.cells.try_emplace(key, summary);
      if (!inserted) it->second.merge(summary);
    }
  }
  EXPECT_EQ(whole.cells.size(), manual.cells.size());
  EXPECT_EQ(whole.stats.records_scanned, manual.stats.records_scanned);
  for (const auto& [key, summary] : whole.cells) {
    auto it = manual.cells.find(key);
    ASSERT_NE(it, manual.cells.end());
    EXPECT_TRUE(summary.approx_equals(it->second));
  }
}

TEST_F(GalileoStoreTest, ScanIsDeterministic) {
  const BoundingBox box{36.0, 38.0, -122.0, -120.0};
  const auto a = store_.scan(box, feb2_, res6_);
  const auto b = store_.scan(box, feb2_, res6_);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (const auto& [key, summary] : a.cells) {
    auto it = b.cells.find(key);
    ASSERT_NE(it, b.cells.end());
    EXPECT_EQ(summary, it->second);
  }
}

TEST_F(GalileoStoreTest, CoarserSpatialResolutionMergesCells) {
  const BoundingBox box{36.0, 38.0, -122.0, -120.0};
  const auto fine = store_.scan(box, feb2_, {5, TemporalRes::Day});
  const auto coarse = store_.scan(box, feb2_, {4, TemporalRes::Day});
  EXPECT_GT(fine.cells.size(), coarse.cells.size());
  // Rolling fine cells up into their spatial parents reproduces the coarse
  // scan exactly — the mergeability invariant STASH's roll-up relies on.
  CellSummaryMap rolled;
  for (const auto& [key, summary] : fine.cells) {
    const CellKey parent_key(*geohash::parent(key.geohash_str()), key.bin());
    auto [it, inserted] = rolled.try_emplace(parent_key, summary);
    if (!inserted) it->second.merge(summary);
  }
  ASSERT_EQ(rolled.size(), coarse.cells.size());
  for (const auto& [key, summary] : coarse.cells) {
    auto it = rolled.find(key);
    ASSERT_NE(it, rolled.end());
    EXPECT_TRUE(summary.approx_equals(it->second)) << key.label();
  }
}

TEST_F(GalileoStoreTest, CoarserTemporalResolutionMergesCells) {
  const BoundingBox box{36.0, 37.0, -122.0, -121.0};
  const auto hourly = store_.scan(box, feb2_, {6, TemporalRes::Hour});
  const auto daily = store_.scan(box, feb2_, {6, TemporalRes::Day});
  EXPECT_GT(hourly.cells.size(), daily.cells.size());
  CellSummaryMap rolled;
  for (const auto& [key, summary] : hourly.cells) {
    const CellKey parent_key(key.geohash_str(), *key.bin().parent());
    auto [it, inserted] = rolled.try_emplace(parent_key, summary);
    if (!inserted) it->second.merge(summary);
  }
  ASSERT_EQ(rolled.size(), daily.cells.size());
  for (const auto& [key, summary] : daily.cells) {
    auto it = rolled.find(key);
    ASSERT_NE(it, rolled.end());
    EXPECT_TRUE(summary.approx_equals(it->second)) << key.label();
  }
}

TEST_F(GalileoStoreTest, EmptyRegionsAndTimes) {
  EXPECT_TRUE(store_.scan_partition("9q", {70.0, 80.0, -122.0, -120.0}, feb2_,
                                    res6_)
                  .cells.empty());
  EXPECT_TRUE(
      store_.scan_partition("9q", {36.0, 37.0, -122.0, -121.0},
                            TimeRange{100, 100}, res6_)
          .cells.empty());
}

TEST_F(GalileoStoreTest, BlockBytesMatchesDensity) {
  const BlockKey key{"9q", days_from_civil({2015, 2, 2})};
  const std::size_t bytes = store_.block_bytes(key);
  EXPECT_EQ(bytes, gen_->count(geohash::decode("9q"),
                               {key.day * 86400, (key.day + 1) * 86400}) *
                       kObservationBytes);
  EXPECT_GT(bytes, 0u);
  // Ocean-only partition: no data, zero bytes.
  const BlockKey ocean{"s0", days_from_civil({2015, 2, 2})};
  EXPECT_EQ(store_.block_bytes(ocean), 0u);
}

TEST_F(GalileoStoreTest, BlockKeyHashDistinguishes) {
  const BlockKeyHash h;
  const BlockKey a{"9q", 100};
  const BlockKey b{"9q", 101};
  const BlockKey c{"9r", 100};
  EXPECT_NE(h(a), h(b));
  EXPECT_NE(h(a), h(c));
  EXPECT_EQ(h(a), h(BlockKey{"9q", 100}));
}

TEST_F(GalileoStoreTest, RottedBlockIsWithheldAndQuarantined) {
  const BlockKey block{"9q", unix_seconds({2015, 2, 2}) / 86400};
  store_.rot_block(block);
  EXPECT_TRUE(store_.block_rotted(block));
  EXPECT_FALSE(store_.verify_block(block));
  EXPECT_FALSE(store_.block_quarantined(block));  // nothing has read it yet

  const auto result =
      store_.scan_partition("9q", BoundingBox::whole_world(), feb2_, res6_);
  EXPECT_TRUE(result.cells.empty());  // withheld, not served wrong
  EXPECT_EQ(result.stats.blocks_corrupt, 1u);
  EXPECT_EQ(result.stats.blocks_touched, 1u);  // the seek that found the rot
  ASSERT_EQ(result.corrupt_blocks.size(), 1u);
  EXPECT_EQ(result.corrupt_blocks[0], block);
  EXPECT_TRUE(store_.block_quarantined(block));
  EXPECT_EQ(store_.integrity().checksum_failures, 1u);
  EXPECT_EQ(store_.integrity().blocks_quarantined, 1u);
  EXPECT_EQ(store_.integrity().blocks_rotted, 1u);
}

TEST_F(GalileoStoreTest, VerificationOffServesSilentlyWrongRecords) {
  // The counterfactual the checksums exist for: with verification off a
  // rotted block still yields records — plausible, but not the pristine
  // data.  This is the "silently wrong" baseline.
  const auto pristine =
      store_.scan_partition("9q", BoundingBox::whole_world(), feb2_, res6_);
  store_.rot_block({"9q", unix_seconds({2015, 2, 2}) / 86400});
  store_.set_verify_checksums(false);
  const auto rotted =
      store_.scan_partition("9q", BoundingBox::whole_world(), feb2_, res6_);
  EXPECT_EQ(rotted.stats.blocks_corrupt, 0u);  // nothing noticed
  EXPECT_TRUE(rotted.corrupt_blocks.empty());
  EXPECT_FALSE(rotted.cells.empty());
  EXPECT_NE(rotted.cells, pristine.cells);
}

TEST_F(GalileoStoreTest, RepairRestoresPristineContentExactly) {
  const BlockKey block{"9q", unix_seconds({2015, 2, 2}) / 86400};
  const auto pristine =
      store_.scan_partition("9q", BoundingBox::whole_world(), feb2_, res6_);
  store_.rot_block(block);
  (void)store_.scan_partition("9q", BoundingBox::whole_world(), feb2_, res6_);
  ASSERT_TRUE(store_.block_quarantined(block));

  EXPECT_TRUE(store_.repair_block(block));
  EXPECT_FALSE(store_.block_rotted(block));
  EXPECT_FALSE(store_.block_quarantined(block));
  EXPECT_EQ(store_.integrity().blocks_repaired, 1u);
  const auto repaired =
      store_.scan_partition("9q", BoundingBox::whole_world(), feb2_, res6_);
  EXPECT_EQ(repaired.cells, pristine.cells);
  // Repairing a healthy block is a no-op.
  EXPECT_FALSE(store_.repair_block(block));
  EXPECT_EQ(store_.integrity().blocks_repaired, 1u);
}

TEST_F(GalileoStoreTest, IngestRewriteHealsRot) {
  const BlockKey block{"9q", unix_seconds({2015, 2, 2}) / 86400};
  store_.rot_block(block);
  (void)store_.scan_partition("9q", BoundingBox::whole_world(), feb2_, res6_);
  ASSERT_TRUE(store_.block_quarantined(block));
  (void)store_.ingest_update(block);  // wholesale rewrite replaces the bytes
  EXPECT_FALSE(store_.block_rotted(block));
  EXPECT_FALSE(store_.block_quarantined(block));
  const auto after =
      store_.scan_partition("9q", BoundingBox::whole_world(), feb2_, res6_);
  EXPECT_EQ(after.stats.blocks_corrupt, 0u);
  EXPECT_FALSE(after.cells.empty());
}

TEST_F(GalileoStoreTest, ScrubFindsRotWithoutWaitingForQueries) {
  const BlockKey a{"9q", 100};
  const BlockKey b{"dr", 200};
  store_.rot_block(a);
  store_.rot_block(b);
  EXPECT_EQ(store_.scrub(), 2u);
  EXPECT_TRUE(store_.block_quarantined(a));
  EXPECT_TRUE(store_.block_quarantined(b));
  EXPECT_EQ(store_.quarantine_list().size(), 2u);
  EXPECT_EQ(store_.scrub(), 0u);  // idempotent: already quarantined
  EXPECT_EQ(store_.integrity().checksum_failures, 2u);
}

TEST_F(GalileoStoreTest, RotBlockValidatesPartitionKey) {
  EXPECT_THROW(store_.rot_block({"9q8", 0}), std::invalid_argument);
}

}  // namespace
}  // namespace stash
