// Fixture: allow-file() silences a rule everywhere in the file, but only
// that rule — the rand() at the bottom must still be flagged.
//
// stash-lint: allow-file(raw-atomic) -- fixture: whole-file suppression
#include <atomic>

namespace fixture {

inline std::atomic<int> first{0};
inline std::atomic<int> second{0};

inline void fences() {
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

inline int still_flagged() {
  return rand();  // 17
}

}  // namespace fixture
