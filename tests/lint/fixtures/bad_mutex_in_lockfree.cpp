// Fixture: a file that claims to be lock-free but takes blocking locks.
// stash-lint: lock-free-file
#include <mutex>  // 3

namespace fixture {

inline std::mutex mu;  // 7

inline void not_lock_free() {
  std::lock_guard<std::mutex> hold(mu);  // 10 (two idents on one line)
}

}  // namespace fixture
