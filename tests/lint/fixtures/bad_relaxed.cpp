// Fixture: memory_order_relaxed outside src/concurrency/ + src/obs/.
// The self-test also copies this file *into* a fake src/concurrency/ tree
// to prove the path exemption, so keep it self-contained.
#include <atomic>  // stash-lint: allow(raw-atomic) -- fixture isolates the relaxed rule

namespace fixture {

// stash-lint: allow(raw-atomic) -- fixture isolates the relaxed rule
inline std::atomic<int> counter{0};

inline void bump() {
  counter.fetch_add(1, std::memory_order_relaxed);  // 12
}

inline int peek() {
  return counter.load(std::memory_order_relaxed);  // 16
}

}  // namespace fixture
