// Fixture: line-level suppressions silence exactly their line and the
// next one — the third rand() below must still be flagged.

namespace fixture {

int same_line() {
  return rand();  // stash-lint: allow(wall-clock) -- fixture: same line
}

int line_above() {
  // stash-lint: allow(wall-clock) -- fixture: comment-above idiom
  return rand();
}

int unsuppressed() {
  return rand();  // 16: two lines below the nearest allow() — must flag
}

}  // namespace fixture
