// Fixture: raw std::atomic usage outside the catomic shim.
#include <atomic>

namespace fixture {

inline std::atomic<int> naked{0};  // 6

inline void publish() {
  naked.store(1);
  std::atomic_thread_fence(std::memory_order_release);  // 10
}

inline std::atomic_flag spin = ATOMIC_FLAG_INIT;  // 13

}  // namespace fixture
