// Fixture: discarded must-use results (decode_* / try_push / try_pop).
// The used/acknowledged forms at the bottom must NOT be flagged.
#include <cstdint>
#include <vector>

namespace fixture {

struct Buffer {
  std::vector<std::uint8_t> bytes;
};

Buffer decode_frame(const Buffer& frame);

struct Ring {
  bool try_push(int v);
  bool try_pop(int* out);
};

inline void discards(Ring& ring, const Buffer& frame) {
  decode_frame(frame);  // 20
  ring.try_push(42);  // 21
  int out = 0;
  ring.try_pop(&out);  // 23
}

inline int uses(Ring& ring, const Buffer& frame) {
  const Buffer b = decode_frame(frame);  // assigned: ok
  if (!ring.try_push(7)) return -1;  // tested: ok
  int out = 0;
  while (ring.try_pop(&out)) {  // loop condition: ok
  }
  (void)ring.try_push(0);  // explicitly acknowledged: ok
  return static_cast<int>(b.bytes.size()) + out;
}

}  // namespace fixture
