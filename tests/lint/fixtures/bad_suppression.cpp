// Fixture: malformed suppression comments are themselves findings, and a
// malformed allow() must NOT silence the line it sits on.

namespace fixture {

// stash-lint: allow(no-such-rule) -- reason present but rule unknown  (6)

int missing_reason() {
  return rand();  // stash-lint: allow(wall-clock)
}

}  // namespace fixture
