// Fixture: constructs that look like violations but are not — banned
// names in comments and strings, member functions that shadow libc names,
// and identifiers that merely contain banned substrings.
//
// rand() in a comment, std::atomic in a comment, memory_order_relaxed too.

namespace fixture {

struct Clock {
  // Declarations of members shadowing libc names are fine: the ambiguous
  // `time`/`clock` spellings only fire in unambiguous call positions.
  long time() const;
  long clock() const;
};

inline long simulated(const Clock& c) { return c.time() + c.clock(); }

inline const char* doc() {
  return "calls rand() and time(nullptr) and std::atomic<int> in a string";
}

inline const char* raw_doc() {
  return R"(rand() memory_order_relaxed std::atomic even in raw strings)";
}

// Identifiers containing banned substrings must not fire token rules.
inline int operand = 0;
inline int mktime_like_total = 0;
struct Spinclock {};

}  // namespace fixture
