// Fixture: every banned wall-clock / RNG construct, one per line, so the
// self-test can assert the exact line numbers the rule reports.
#include <chrono>
#include <ctime>
#include <random>

namespace fixture {

long wall_now() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // 10
}

long mono_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // 14
}

int roll() {
  return rand();  // 18
}

long unix_seconds() {
  return time(nullptr);  // 22
}

unsigned unseeded() {
  std::mt19937 gen;  // 26
  std::random_device rd;  // 27
  return gen() + rd();
}

}  // namespace fixture
