// Wall-clock execution bench (ROADMAP item 1, PR 8): thread sweep over
// the ParallelQueryEngine answering a locality-clustered query mix, with
// the sequential sim path as the correctness oracle.  Unlike the figure
// benches this one measures *real* time — it is the one place the repo
// reports hardware throughput, and the JSON it writes (BENCH_parallel.json
// at the repo root, schema stash-bench-parallel-v1) is the baseline the CI
// benchmark lane gates regressions against.
//
// Usage: bench_parallel [out.json] [queries] [repeats]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/checksum.hpp"
#include "exec/parallel_engine.hpp"
#include "exec/wall_clock.hpp"
#include "workload/workload.hpp"

using namespace stash;
using workload::QueryGroup;

namespace {

StashConfig graph_config() {
  StashConfig config;
  config.max_cells = 10'000'000;
  return config;
}

exec::ExecConfig exec_config(std::size_t threads) {
  exec::ExecConfig config;
  config.threads = threads;
  config.queue_capacity = 64;
  return config;
}

std::vector<AggregationQuery> bench_mix(std::size_t target) {
  workload::WorkloadConfig wc;
  wc.seed = 0x42454e43ULL;
  workload::WorkloadGenerator gen(wc);
  // Fig 6b shape at bench scale: random rectangles, each panned to
  // replicate spatiotemporal locality, over two query sizes.
  std::vector<AggregationQuery> queries =
      gen.throughput_workload(QueryGroup::County, 4, 7, 0.1);
  const auto city = gen.throughput_workload(QueryGroup::City, 4, 7, 0.1);
  queries.insert(queries.end(), city.begin(), city.end());
  if (queries.size() > target) queries.resize(target);
  return queries;
}

struct SweepPoint {
  std::size_t threads = 0;
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::size_t bytes = 0;
  std::uint64_t digest = 0;
  concurrency::WorkerStats stats;
};

double percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  std::sort(sorted_us.begin(), sorted_us.end());
  const double rank = p * static_cast<double>(sorted_us.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_us.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_us[lo] + (sorted_us[hi] - sorted_us[lo]) * frac;
}

/// One timed run: fresh graph, `threads` workers, absorb between queries
/// at the same deterministic pseudo-times the sim oracle uses.
SweepPoint run_sweep_point(const GalileoStore& store,
                           const std::vector<AggregationQuery>& queries,
                           std::size_t threads, int repeats) {
  SweepPoint point;
  point.threads = threads;
  std::vector<double> latencies_us;
  latencies_us.reserve(queries.size() * static_cast<std::size_t>(repeats));

  double total_seconds = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    StashGraph graph(graph_config());
    exec::ParallelQueryEngine engine(graph, store,
                                     exec_config(threads));
    std::uint64_t digest = kChecksumSeed;
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const Evaluation eval = engine.evaluate(queries[i]);
      const auto t1 = std::chrono::steady_clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(t1 - t0).count();
      latencies_us.push_back(us);
      total_seconds += us / 1e6;
      digest = exec::answer_digest(eval.cells, digest);
      bytes += exec::canonical_answer(eval.cells).size();
      (void)engine.absorb(eval, queries[i].res,
                          static_cast<sim::SimTime>(i + 1) *
                              sim::kMillisecond);
    }
    point.digest = digest;  // identical across repeats by construction
    point.bytes = bytes;
    point.stats = engine.total_stats();
  }
  point.ops_per_sec =
      static_cast<double>(latencies_us.size()) / total_seconds;
  point.p50_us = percentile(latencies_us, 0.50);
  point.p99_us = percentile(latencies_us, 0.99);
  return point;
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  const std::size_t n_queries =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 48;
  const int repeats = argc > 3 ? std::atoi(argv[3]) : 2;

  auto gen = std::make_shared<const NamGenerator>();
  GalileoStore store(gen);
  const auto queries = bench_mix(n_queries);

  // The sim path is the oracle: every sweep point must reproduce exactly
  // this digest or the bench refuses to report numbers.
  StashGraph oracle_graph(graph_config());
  const exec::RunResult oracle =
      exec::run_queries_sim(oracle_graph, store, queries);

  // Sweep 1..N where N covers the hardware but is never less than 4, so
  // the sweep is meaningful even when a CI container admits one core (the
  // multi-thread points then measure handoff overhead, not speedup).
  const std::size_t max_threads =
      std::max<std::size_t>(concurrency::resolve_worker_count(0), 4);
  std::vector<std::size_t> sweep{1};
  for (std::size_t t = 2; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);

  std::printf("bench_parallel: %zu queries x %d repeats, sweep 1..%zu "
              "threads (oracle digest %s)\n",
              queries.size(), repeats, max_threads,
              hex64(oracle.digest).c_str());
  std::printf("%8s %12s %10s %10s %12s %8s %8s\n", "threads", "ops/s",
              "p50(us)", "p99(us)", "bytes", "steals", "parks");

  std::vector<SweepPoint> points;
  bool all_match = true;
  for (const std::size_t threads : sweep) {
    const SweepPoint p = run_sweep_point(store, queries, threads, repeats);
    const bool match = p.digest == oracle.digest && p.bytes == oracle.bytes;
    all_match = all_match && match;
    std::printf("%8zu %12.1f %10.1f %10.1f %12zu %8llu %8llu%s\n", p.threads,
                p.ops_per_sec, p.p50_us, p.p99_us, p.bytes,
                static_cast<unsigned long long>(p.stats.stolen),
                static_cast<unsigned long long>(p.stats.parks),
                match ? "" : "  DIGEST MISMATCH");
    points.push_back(p);
  }
  if (!all_match) {
    std::fprintf(stderr,
                 "bench_parallel: wall-clock answers diverged from the sim "
                 "oracle; refusing to write %s\n",
                 out_path.c_str());
    return 1;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_parallel: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"schema\": \"stash-bench-parallel-v1\",\n"
               "  \"queries\": %zu,\n  \"repeats\": %d,\n"
               "  \"host_threads\": %u,\n"
               "  \"oracle_digest\": \"%s\",\n  \"sweep\": [\n",
               queries.size(), repeats, std::thread::hardware_concurrency(),
               hex64(oracle.digest).c_str());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        out,
        "    {\"threads\": %zu, \"ops_per_sec\": %.1f, \"p50_us\": %.1f, "
        "\"p99_us\": %.1f, \"bytes\": %zu, \"digest\": \"%s\", "
        "\"executed\": %llu, \"stolen\": %llu, \"parks\": %llu, "
        "\"wakeups\": %llu}%s\n",
        p.threads, p.ops_per_sec, p.p50_us, p.p99_us, p.bytes,
        hex64(p.digest).c_str(),
        static_cast<unsigned long long>(p.stats.executed),
        static_cast<unsigned long long>(p.stats.stolen),
        static_cast<unsigned long long>(p.stats.parks),
        static_cast<unsigned long long>(p.stats.wakeups),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
