// Microbenchmarks (google-benchmark) for the hot inner operations:
// geohash codec, edge derivation, DHT lookup, summary merge, graph
// probe/insert, freshness updates, PLM completeness, and eviction sweeps.

#include <benchmark/benchmark.h>

#include "client/predictor.hpp"
#include "common/codec.hpp"
#include "common/rng.hpp"
#include "core/clique.hpp"
#include "core/graph.hpp"
#include "core/plm.hpp"
#include "dht/partitioner.hpp"
#include "geo/geohash.hpp"
#include "sim/fault.hpp"

namespace stash {
namespace {

const TemporalBin kDay(TemporalRes::Day, 2015, 2, 2);
const Resolution kRes6{6, TemporalRes::Day};

void BM_GeohashEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<LatLng> points;
  for (int i = 0; i < 1024; ++i)
    points.push_back({rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geohash::encode(points[i++ & 1023], static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_GeohashEncode)->Arg(2)->Arg(6)->Arg(12);

void BM_GeohashDecode(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::string> hashes;
  for (int i = 0; i < 1024; ++i)
    hashes.push_back(geohash::encode(
        {rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)}, 6));
  std::size_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(geohash::decode(hashes[i++ & 1023]));
}
BENCHMARK(BM_GeohashDecode);

void BM_GeohashNeighbors(benchmark::State& state) {
  const std::string gh = "9q8y7";
  for (auto _ : state) benchmark::DoNotOptimize(geohash::neighbors(gh));
}
BENCHMARK(BM_GeohashNeighbors);

void BM_GeohashCovering(benchmark::State& state) {
  const BoundingBox state_box{36.0, 40.0, -102.0, -94.0};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        geohash::covering(state_box, static_cast<int>(state.range(0))));
}
BENCHMARK(BM_GeohashCovering)->Arg(2)->Arg(4);

void BM_GeohashPack(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(geohash::pack("9q8y7zxbc"));
}
BENCHMARK(BM_GeohashPack);

void BM_DhtLookup(benchmark::State& state) {
  const ZeroHopDht dht(120, 2);
  Rng rng(3);
  std::vector<std::string> hashes;
  for (int i = 0; i < 1024; ++i)
    hashes.push_back(geohash::encode(
        {rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)}, 6));
  std::size_t i = 0;
  for (auto _ : state) benchmark::DoNotOptimize(dht.node_for(hashes[i++ & 1023]));
}
BENCHMARK(BM_DhtLookup);

void BM_SummaryMerge(benchmark::State& state) {
  Rng rng(4);
  Summary a(4);
  Summary b(4);
  for (int i = 0; i < 100; ++i) {
    double obs[4] = {rng.next_double(), rng.next_double(), rng.next_double(),
                     rng.next_double()};
    a.add_observation(obs, 4);
    b.add_observation(obs, 4);
  }
  for (auto _ : state) {
    Summary c = a;
    c.merge(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_SummaryMerge);

StashGraph make_populated_graph(int chunks, int cells_per_chunk) {
  StashGraph graph;
  Rng rng(5);
  for (int c = 0; c < chunks; ++c) {
    const std::string prefix = geohash::encode(
        {rng.uniform(-60.0, 60.0), rng.uniform(-170.0, 170.0)}, 4);
    ChunkContribution contribution;
    contribution.res = kRes6;
    contribution.chunk = ChunkKey(prefix, kDay);
    for (int i = 0; i < cells_per_chunk; ++i) {
      std::string gh = prefix;
      gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i) % 32]);
      gh.push_back(geohash::kAlphabet[static_cast<std::size_t>(i / 32) % 32]);
      Summary s(4);
      const double obs[4] = {1.0, 2.0, 3.0, 4.0};
      s.add_observation(obs, 4);
      contribution.cells.emplace_back(CellKey(gh, kDay), std::move(s));
    }
    contribution.days.push_back(contribution.chunk.first_day());
    graph.absorb(contribution, 0);
  }
  return graph;
}

void BM_GraphProbe(benchmark::State& state) {
  const StashGraph graph = make_populated_graph(512, 16);
  Rng rng(6);
  std::vector<ChunkKey> keys;
  for (int i = 0; i < 1024; ++i)
    keys.emplace_back(
        geohash::encode({rng.uniform(-60.0, 60.0), rng.uniform(-170.0, 170.0)}, 4),
        kDay);
  std::size_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(graph.chunk_complete(kRes6, keys[i++ & 1023]));
}
BENCHMARK(BM_GraphProbe);

void BM_GraphCollectChunk(benchmark::State& state) {
  const StashGraph graph = make_populated_graph(64, 64);
  std::vector<ChunkKey> keys;
  graph.for_each_chunk(kRes6, [&](const ChunkKey& key, const auto&) {
    keys.push_back(key);
  });
  std::size_t i = 0;
  for (auto _ : state) {
    CellSummaryMap out;
    graph.collect_chunk(kRes6, keys[i++ % keys.size()],
                        BoundingBox::whole_world(), kDay.range(), out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GraphCollectChunk);

void BM_FreshnessTouchRegion(benchmark::State& state) {
  StashGraph graph = make_populated_graph(512, 16);
  std::vector<ChunkKey> keys;
  graph.for_each_chunk(kRes6, [&](const ChunkKey& key, const auto&) {
    if (keys.size() < 32) keys.push_back(key);
  });
  sim::SimTime now = 0;
  for (auto _ : state) {
    now += 1000;
    benchmark::DoNotOptimize(graph.touch_region(kRes6, keys, now));
  }
}
BENCHMARK(BM_FreshnessTouchRegion);

void BM_PlmMissingDays(benchmark::State& state) {
  PrecisionLevelMap plm;
  const ChunkKey month("9q8y", TemporalBin(TemporalRes::Month, 2015, 2));
  const int level = level_index({6, TemporalRes::Month});
  for (int d = 0; d < 14; ++d) plm.mark_day(level, month, month.first_day() + d * 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(plm.missing_days(level, month));
}
BENCHMARK(BM_PlmMissingDays);

void BM_EvictionSweep(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    StashGraph graph = make_populated_graph(static_cast<int>(state.range(0)), 16);
    state.ResumeTiming();
    benchmark::DoNotOptimize(graph.evict_to(graph.total_cells() / 2, 1000));
  }
}
BENCHMARK(BM_EvictionSweep)->Arg(128)->Arg(512);

void BM_CliqueSelectTop(benchmark::State& state) {
  StashGraph graph = make_populated_graph(512, 16);
  const CliqueSelector selector(graph);
  for (auto _ : state)
    benchmark::DoNotOptimize(selector.select_top(1000, 50000, 64, 2));
}
BENCHMARK(BM_CliqueSelectTop);

void BM_CodecEncodePayload(benchmark::State& state) {
  const StashGraph graph = make_populated_graph(16, 32);
  std::vector<ChunkContribution> payload;
  graph.for_each_chunk(kRes6, [&](const ChunkKey& key,
                                  const StashGraph::ChunkData& data) {
    ChunkContribution c;
    c.res = kRes6;
    c.chunk = key;
    c.cells.assign(data.cells.begin(), data.cells.end());
    c.days.push_back(key.first_day());
    payload.push_back(std::move(c));
  });
  for (auto _ : state)
    benchmark::DoNotOptimize(codec::encode_replication_payload(payload));
}
BENCHMARK(BM_CodecEncodePayload);

void BM_CodecDecodePayload(benchmark::State& state) {
  const StashGraph graph = make_populated_graph(16, 32);
  std::vector<ChunkContribution> payload;
  graph.for_each_chunk(kRes6, [&](const ChunkKey& key,
                                  const StashGraph::ChunkData& data) {
    ChunkContribution c;
    c.res = kRes6;
    c.chunk = key;
    c.cells.assign(data.cells.begin(), data.cells.end());
    c.days.push_back(key.first_day());
    payload.push_back(std::move(c));
  });
  const codec::Buffer wire = codec::encode_replication_payload(payload);
  for (auto _ : state)
    benchmark::DoNotOptimize(codec::decode_replication_payload(wire));
}
BENCHMARK(BM_CodecDecodePayload);

void BM_PredictorObservePredict(benchmark::State& state) {
  const AggregationQuery base{{38.0, 39.0, -99.0, -97.0},
                              kDay.range(),
                              {6, TemporalRes::Day}};
  for (auto _ : state) {
    client::AccessPredictor predictor(2);
    AggregationQuery view = base;
    for (int i = 0; i < 8; ++i) {
      AggregationQuery next = view;
      next.area = view.area.translated(0.0, 0.25 * view.area.width());
      predictor.observe(view, next);
      view = next;
    }
    benchmark::DoNotOptimize(predictor.predict(view));
  }
}
BENCHMARK(BM_PredictorObservePredict);

void BM_FaultInjectorShouldDrop(benchmark::State& state) {
  // Per-message overhead of the fault layer on a lossy wildcard link —
  // this sits on every send_message call during chaos runs.
  sim::FaultPlan plan;
  sim::LinkRule rule;
  rule.drop_probability = 0.01;
  plan.links.push_back(rule);
  sim::FaultInjector injector(plan, 120);
  std::uint32_t from = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.should_drop(from, (from + 1) % 120));
    from = (from + 7) % 120;
  }
}
BENCHMARK(BM_FaultInjectorShouldDrop);

void BM_FaultInjectorHealthyPath(benchmark::State& state) {
  // The common case: empty plan, alive() + should_drop() must be ~free.
  sim::FaultInjector injector({}, 120);
  std::uint32_t node = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.alive(node));
    benchmark::DoNotOptimize(injector.should_drop(node, (node + 1) % 120));
    node = (node + 13) % 120;
  }
}
BENCHMARK(BM_FaultInjectorHealthyPath);

}  // namespace
}  // namespace stash

BENCHMARK_MAIN();
