// Extension bench — STASH's lazy collective cache vs Nanocubes-style full
// precomputation (paper §III related work).
//
// The cube answers in-slab queries fastest of all, but its memory and
// build time scale with the *dataset* (coverage x days x resolutions),
// while STASH's memory scales with the *working set* actually explored —
// and STASH answers anything, not just the precomputed slab.

#include "baseline/precompute.hpp"
#include "bench_common.hpp"

using namespace stash;
using namespace stash::bench;

int main() {
  print_header("Extension", "STASH vs full precomputation (Nanocubes-style)");

  // A state-sized slab precomputed over growing time windows.
  std::printf("%-18s %14s %14s %16s\n", "cube window", "cells", "memory(MB)",
              "build-time(s)");
  print_rule();
  for (int days : {1, 7, 28}) {
    baseline::CubeConfig config;
    config.coverage = {36.0, 40.0, -102.0, -94.0};
    config.window.end = config.window.begin + days * 86400;
    const baseline::PrecomputedCube cube(config, shared_generator());
    std::printf("%10d day(s) %14zu %14.1f %16.2f\n", days, cube.total_cells(),
                static_cast<double>(cube.memory_bytes()) / 1048576.0,
                sim::to_seconds(cube.build_time()));
  }

  // Same exploration session against: the 1-day cube, warm STASH, basic.
  baseline::CubeConfig cube_config;
  cube_config.coverage = {36.0, 40.0, -102.0, -94.0};
  const baseline::PrecomputedCube cube(cube_config, shared_generator());

  workload::WorkloadGenerator wl;
  workload::WorkloadConfig domain_config;
  domain_config.domain = {36.5, 39.5, -101.0, -95.0};  // stay inside the slab
  workload::WorkloadGenerator in_slab(domain_config);
  const auto session = in_slab.pan_walk(
      in_slab.random_query(workload::QueryGroup::County), 0.2, 20);

  auto stash_cluster = make_cluster();
  sim::SimTime stash_total = 0;
  for (const auto& q : session) stash_total += stash_cluster->run_query(q).latency();
  auto basic_cluster = make_cluster(cluster::SystemMode::Basic);
  sim::SimTime basic_total = 0;
  for (const auto& q : session) basic_total += basic_cluster->run_query(q).latency();
  sim::SimTime cube_total = 0;
  std::size_t covered = 0;
  for (const auto& q : session) {
    const auto stats = cube.query(q);
    cube_total += stats.latency;
    if (stats.covered) ++covered;
  }

  std::printf("\nsession of %zu county pans inside the slab:\n", session.size());
  std::printf("%-22s %14s %18s\n", "system", "mean(ms)", "memory-model");
  print_rule();
  std::printf("%-22s %14.2f %18s\n", "precomputed cube",
              sim::to_millis(cube_total) / static_cast<double>(session.size()),
              "dataset-sized");
  std::printf("%-22s %14.2f %18s\n", "STASH (warming)",
              sim::to_millis(stash_total) / static_cast<double>(session.size()),
              "working-set-sized");
  std::printf("%-22s %14.2f %18s\n", "basic",
              sim::to_millis(basic_total) / static_cast<double>(session.size()),
              "none");
  std::printf("cube covered %zu/%zu queries; STASH cached %zu cells for this "
              "session vs %zu cells in the cube.\n",
              covered, session.size(), stash_cluster->total_cached_cells(),
              cube.total_cells());
  std::printf("\nexpected shape: the cube is fastest in-slab but pays "
              "dataset-sized memory/build; STASH approaches it after warmup "
              "with working-set memory (the paper's §III positioning).\n");
  return 0;
}
