// Extension — goodput under overload, with and without overload controls.
//
// Not a paper figure: the paper's hotspot experiment (Fig 6d) absorbs a
// skewed burst with dynamic replication; this bench asks what happens when
// no helper is available (replication off) and offered load sweeps through
// and past one node's capacity.  For each load factor 0.5x..3x we drive an
// open-loop Zipf city burst at the hot partition twice:
//
//   controls  — bounded queue + per-query deadline + retry budget +
//               degraded (ancestor-level) answers;
//   legacy    — unbounded queue, no deadline, unlimited timeout retries.
//
// The series to look at is goodput (full-coverage completions within the
// deadline used as an SLO for both configs): with controls it tracks
// offered load below capacity and stays pinned near capacity above it —
// the excess surfaces as shed/degraded fractions — while the legacy
// config's queueing delay and retry storm push it off a cliff.

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "common/zipf.hpp"
#include "geo/geohash.hpp"

using namespace stash;
using namespace stash::bench;

namespace {

constexpr std::uint32_t kNodes = 16;
constexpr std::size_t kRegions = 8;
constexpr std::size_t kWarmRegions = 4;
constexpr double kSkew = 1.2;
constexpr std::size_t kQueries = 4000;
constexpr sim::SimTime kDeadline = 50 * sim::kMillisecond;

struct Scenario {
  std::vector<AggregationQuery> burst;
  std::vector<AggregationQuery> regions;
};

Scenario make_scenario() {
  Scenario s;
  const BoundingBox cell = geohash::decode("9y");
  const auto extent = workload::extent_of(workload::QueryGroup::City);
  workload::WorkloadConfig wl_config;
  wl_config.domain = cell;
  const workload::WorkloadGenerator wl(wl_config);
  Rng rng(0x4f564c44ULL);
  for (std::size_t i = 0; i < kRegions; ++i) {
    const LatLng center{
        rng.uniform(cell.lat_min + extent.dlat, cell.lat_max - extent.dlat),
        rng.uniform(cell.lng_min + extent.dlng, cell.lng_max - extent.dlng)};
    s.regions.push_back(wl.query_at(workload::QueryGroup::City, center));
  }
  const ZipfDistribution zipf(kRegions, kSkew);
  for (std::size_t i = 0; i < kQueries; ++i)
    s.burst.push_back(s.regions[zipf.sample(rng)]);
  return s;
}

cluster::ClusterConfig base_config(bool controls) {
  cluster::ClusterConfig config;
  config.num_nodes = kNodes;
  config.mode = cluster::SystemMode::StashNoReplication;
  config.discard_payload = true;
  config.tracing = false;
  config.subquery_timeout = 25 * sim::kMillisecond;
  if (controls) {
    config.queue_limit = 32;
    config.query_deadline = kDeadline;
    config.retry_budget = 2.0;
  } else {
    config.queue_limit = 0;
    config.query_deadline = 0;
    config.retry_budget = 0.0;
    config.degraded_answers = false;
  }
  return config;
}

void warm(cluster::StashCluster& cluster, const Scenario& s) {
  AggregationQuery ancestor = s.burst.front();
  ancestor.area = geohash::decode("9y");
  ancestor.res = {5, TemporalRes::Day};
  cluster.preload(ancestor);
  for (std::size_t i = 0; i < kWarmRegions; ++i) cluster.preload(s.regions[i]);
}

double calibrate_service_us(const Scenario& s) {
  cluster::StashCluster cluster(base_config(true), shared_generator());
  warm(cluster, s);
  std::vector<AggregationQuery> probe;
  for (int i = 0; i < 40; ++i)
    probe.push_back(s.regions[static_cast<std::size_t>(i) % kWarmRegions]);
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const auto& h : cluster.metrics_registry().snapshot().histograms)
    if (h.name == "stash_subquery_service_us") {
      sum = h.sum;
      count = h.count;
    }
  cluster.run_sequence(probe);
  for (const auto& h : cluster.metrics_registry().snapshot().histograms)
    if (h.name == "stash_subquery_service_us") {
      sum = h.sum - sum;
      count = h.count - count;
    }
  return count > 0 ? sum / static_cast<double>(count) : 1.0;
}

struct Point {
  double goodput_pct = 0.0;  // full coverage within the SLO, % of offered
  double shed_pct = 0.0;     // subqueries shed or expired, % of offered
  double degraded_pct = 0.0; // queries with >= 1 coarsened partition
  double p99_ms = 0.0;
  std::uint64_t retries = 0;
};

Point run_point(const Scenario& s, bool controls, sim::SimTime interarrival,
                const char* dump_name = nullptr) {
  cluster::StashCluster cluster(base_config(controls), shared_generator());
  warm(cluster, s);
  const auto stats = cluster.run_open_loop(s.burst, interarrival);

  Point p;
  std::vector<sim::SimTime> lat;
  lat.reserve(stats.size());
  std::size_t good = 0, degraded = 0;
  for (const auto& st : stats) {
    lat.push_back(st.latency());
    if (!st.partial && st.latency() <= kDeadline) ++good;
    if (st.degraded) ++degraded;
  }
  std::sort(lat.begin(), lat.end());
  const auto n = static_cast<double>(stats.size());
  p.goodput_pct = 100.0 * static_cast<double>(good) / n;
  p.degraded_pct = 100.0 * static_cast<double>(degraded) / n;
  const auto m = cluster.metrics();
  p.shed_pct =
      100.0 * static_cast<double>(m.subqueries_shed + m.subqueries_expired) / n;
  p.p99_ms = sim::to_millis(lat[lat.size() * 99 / 100]);
  p.retries = m.subquery_retries;
  if (dump_name != nullptr) dump_metrics_json(cluster, dump_name);
  return p;
}

}  // namespace

int main() {
  print_header("Ext", "goodput vs offered load, overload controls on/off");
  const Scenario scenario = make_scenario();
  const double service_us = calibrate_service_us(scenario);
  const cluster::ClusterConfig probe = base_config(true);
  const double capacity =
      static_cast<double>(probe.workers_per_node) / service_us;  // queries/us

  std::printf("hot node: %d workers, warm mean service %.0f us -> capacity "
              "%.1f q/ms; %zu-query zipf burst per point, %.0f ms SLO\n\n",
              probe.workers_per_node, service_us, capacity * 1000.0, kQueries,
              sim::to_millis(kDeadline));
  std::printf("%6s | %27s | %27s\n", "", "controls on", "legacy");
  std::printf("%6s | %8s %6s %6s %5s | %8s %6s %6s %5s\n", "load",
              "goodput", "shed", "degr", "p99", "goodput", "shed", "degr",
              "p99");
  print_rule();

  for (const double load : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
    const auto interarrival = std::max<sim::SimTime>(
        1, static_cast<sim::SimTime>(std::llround(1.0 / (capacity * load))));
    // Archive the 2x point's metrics: the headline overload regime.
    const Point on = run_point(scenario, true, interarrival,
                               load == 2.0 ? "ext_overload" : nullptr);
    const Point off = run_point(scenario, false, interarrival);
    std::printf("%5.1fx | %7.1f%% %5.1f%% %5.1f%% %5.1f | "
                "%7.1f%% %5.1f%% %5.1f%% %5.1f\n",
                load, on.goodput_pct, on.shed_pct, on.degraded_pct, on.p99_ms,
                off.goodput_pct, off.shed_pct, off.degraded_pct, off.p99_ms);
  }
  print_rule();
  std::printf("(goodput = full-coverage completions within the SLO; shed = "
              "subqueries refused or expired at a node queue; degr = queries "
              "with >= 1 partition served from a coarser ancestor)\n");
  return 0;
}
