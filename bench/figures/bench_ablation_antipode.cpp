// Ablation — antipode helper selection (§VII-B.3) vs nearby replication.
//
// The paper places Clique replicas on the node owning the region
// "diametrically on the other side of the total spatial scope", arguing
// helpers should be maximally isolated from the hotspot.  The alternative
// from related work (nearby replication) targets a node owning an
// adjacent region — which, under geohash partitioning, is frequently the
// hotspotted node itself or one of its hot neighbors, wasting distress
// rounds and losing Cliques when retries run out.

#include <algorithm>

#include "bench_common.hpp"

using namespace stash;
using namespace stash::bench;

namespace {

struct Outcome {
  sim::SimTime makespan = 0;
  std::uint64_t rejections = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t cliques = 0;
};

Outcome run(cluster::HelperPolicy policy, int retries) {
  auto config = paper_cluster_config();
  config.stash.hotspot_queue_threshold = 60;
  config.stash.hotspot_cooldown = 3600 * sim::kSecond;
  config.helper_policy = policy;
  config.antipode_retries = retries;
  cluster::StashCluster cluster(config, shared_generator());

  workload::WorkloadGenerator wl;
  // A county hotspot straddling a partition corner: its neighbors' owners
  // are hot too, so "nearby" helper picks land on loaded nodes.
  const BoundingBox partition_box = geohash::decode("9y");
  const LatLng corner{partition_box.lat_min, partition_box.lng_min};
  const AggregationQuery base = wl.query_at(workload::QueryGroup::County, corner);
  Rng rng(4242);
  std::vector<AggregationQuery> burst;
  for (int i = 0; i < 800; ++i) {
    AggregationQuery q = base;
    q.area = base.area.translated(0.1 * base.area.height() * rng.uniform(-1, 1),
                                  0.1 * base.area.width() * rng.uniform(-1, 1));
    burst.push_back(q);
  }
  AggregationQuery warm = base;
  warm.area = base.area.scaled(16.0);
  cluster.run_query(warm);

  const auto stats = cluster.run_open_loop(burst, 8);
  Outcome out;
  for (const auto& s : stats) out.makespan = std::max(out.makespan, s.completed_at);
  out.rejections = cluster.metrics().distress_rejections;
  out.reroutes = cluster.metrics().reroutes;
  out.cliques = cluster.metrics().cliques_replicated;
  return out;
}

void report(const char* label, const Outcome& o) {
  std::printf("%-26s %14.1f %12llu %10llu %9llu\n", label,
              sim::to_millis(o.makespan),
              static_cast<unsigned long long>(o.rejections),
              static_cast<unsigned long long>(o.reroutes),
              static_cast<unsigned long long>(o.cliques));
}

}  // namespace

int main() {
  print_header("Ablation", "helper placement for a boundary-straddling hotspot");
  std::printf("%-26s %14s %12s %10s %9s\n", "policy", "makespan(ms)",
              "rejections", "reroutes", "cliques");
  print_rule();
  report("antipode + retries", run(cluster::HelperPolicy::Antipode, 8));
  report("antipode, no retries", run(cluster::HelperPolicy::Antipode, 0));
  report("neighbor + retries", run(cluster::HelperPolicy::Neighbor, 8));
  report("neighbor, no retries", run(cluster::HelperPolicy::Neighbor, 0));
  std::printf("\nexpected shape: antipode helpers are isolated from the "
              "hotspot (few rejections); nearby placement wastes distress "
              "rounds or loses cliques without retries.\n");
  return 0;
}
