// Extension bench — realistic mixed multi-user sessions.
//
// The paper's figures replay isolated operator sequences; production
// traffic mixes them.  Here `users` analysts each walk a Markov session
// (momentum pans, zooms, slices, occasional jumps) against the shared
// cluster, and we report full latency distributions (p50/p95/p99) for
// STASH vs the basic system — percentile tails are where interactivity
// lives.

#include "bench_common.hpp"
#include "common/histogram.hpp"
#include "workload/session.hpp"

using namespace stash;
using namespace stash::bench;

namespace {

LatencyStats run(cluster::SystemMode mode,
                 const std::vector<AggregationQuery>& traffic) {
  auto cluster = make_cluster(mode);
  LatencyStats stats;
  for (const auto& q : traffic) stats.record(cluster->run_query(q).latency());
  return stats;
}

}  // namespace

void run_scenario(const char* label, const workload::SessionConfig& config) {
  std::printf("-- %s --\n", label);
  workload::SessionGenerator gen;
  for (std::size_t users : {1u, 4u, 16u}) {
    workload::SessionGenerator fresh;  // same sessions for every mode/user set
    const auto traffic = fresh.interleaved(config, users);
    const LatencyStats with_stash = run(cluster::SystemMode::Stash, traffic);
    const LatencyStats basic = run(cluster::SystemMode::Basic, traffic);
    std::printf("%2zu user(s), %3zu queries\n", users, traffic.size());
    std::printf("  STASH  %s\n", with_stash.summary_ms().c_str());
    std::printf("  basic  %s\n", basic.summary_ms().c_str());
    std::printf("  mean speedup %.1fx, p50 speedup %.1fx\n\n",
                basic.mean() / with_stash.mean(),
                static_cast<double>(basic.p50()) /
                    static_cast<double>(with_stash.p50()));
  }
}

int main() {
  print_header("Extension", "mixed multi-user sessions (Markov operators)");
  workload::SessionConfig config;
  config.actions = 25;
  config.start_group = workload::QueryGroup::State;
  config.min_spatial = 4;
  config.max_spatial = 7;

  // Independent users exploring different regions: caching helps each
  // user's own revisits only.
  run_scenario("independent regions", config);

  // A popular event: every user converges on the same county (§V-B's
  // collective caching; the Fig 6d hotspot demand shape without the burst).
  config.start_center = LatLng{38.3, -98.4};
  run_scenario("shared popular region", config);

  std::printf("expected shape: mixed sessions gain ~2x in the mean/median "
              "(novel slices and drill-downs stay disk-bound, capping the "
              "tail), and sharing a region grows the gain with the user "
              "count — each user rides the others' cache fills (§V-B).\n");
  return 0;
}
