// Ablation — freshness dispersion (§V-C.2) on vs off.
//
// The paper's claim: "The freshness dispersion scheme ... helps entire
// regions that are heavily accessed to be persisted in memory during
// replacement, instead of disconnected patches that would reflect the
// actual query areas that were fetched but might hamper the performance
// and latency of future queries."
//
// Two checks under tight memory + interleaved noise traffic:
//   1. contiguity: average number of resident lateral neighbors per
//      resident chunk after the run (regions vs patches), and
//   2. the panning user's cache hit-rate on a revisiting walk.

#include "bench_common.hpp"

using namespace stash;
using namespace stash::bench;

namespace {

struct Outcome {
  double hit_rate = 0.0;
  double contiguity = 0.0;   // avg resident lateral neighbors per chunk
  std::size_t resident_chunks = 0;
  std::size_t rescans = 0;
};

/// Average over all nodes' local graphs of how many of each resident
/// chunk's 8 spatial neighbors are themselves resident.
double measure_contiguity(const cluster::StashCluster& cluster,
                          const Resolution& res, std::size_t* chunks_out) {
  std::size_t chunks = 0;
  std::size_t adjacent = 0;
  for (NodeId n = 0; n < cluster.config().num_nodes; ++n) {
    const StashGraph& graph = cluster.node_graph(n);
    graph.for_each_chunk(res, [&](const ChunkKey& key, const auto&) {
      ++chunks;
      for (const auto& neighbor : chunk_neighbors(key)) {
        if (neighbor.bin() != key.bin()) continue;  // spatial neighbors only
        // Neighbors may live on another node's shard of the graph.
        for (NodeId m = 0; m < cluster.config().num_nodes; ++m) {
          if (cluster.node_graph(m).find_chunk(res, neighbor) != nullptr) {
            ++adjacent;
            break;
          }
        }
      }
    });
  }
  *chunks_out = chunks;
  return chunks == 0 ? 0.0
                     : static_cast<double>(adjacent) / static_cast<double>(chunks);
}

Outcome run(double dispersion_fraction) {
  auto config = paper_cluster_config();
  // Tight memory: replacement runs constantly, so the policy decides what
  // survives.
  config.stash.max_cells = 120;
  config.stash.safe_limit_fraction = 0.7;
  config.stash.dispersion_fraction = dispersion_fraction;
  cluster::StashCluster cluster(config, shared_generator());

  workload::WorkloadGenerator wl;
  // A user oscillates east-west over a county (revisits old ground every
  // few queries) while unrelated county noise lands on the same nodes.
  const AggregationQuery base = wl.random_query(workload::QueryGroup::County);
  std::vector<AggregationQuery> oscillation;
  for (int i = 0; i < 48; ++i) {
    AggregationQuery q = base;
    const int phase = i % 6;                     // 0,1,2,3,2,1 pattern
    const int step = phase <= 3 ? phase : 6 - phase;
    q.area = base.area.translated(0.0, 0.4 * step * base.area.width());
    oscillation.push_back(q);
  }
  const auto noise = wl.zipf_workload(workload::QueryGroup::County, 24, 48, 0.0);

  Outcome out;
  std::size_t cache_chunks = 0;
  std::size_t total_chunks = 0;
  for (std::size_t i = 0; i < oscillation.size(); ++i) {
    const auto stats = cluster.run_query(oscillation[i]);
    if (i >= 6) {  // past the first full sweep, everything is a revisit
      cache_chunks += stats.breakdown.chunks_from_cache;
      total_chunks += stats.breakdown.chunks_total;
      out.rescans += stats.breakdown.chunks_scanned;
    }
    cluster.run_query(noise[i]);
    // Think time between user actions: freshness decays between touches
    // (30s against the 60s half-life), which is what lets recency-only
    // replacement forget the just-left-behind neighborhood.
    cluster.loop().run_until(cluster.loop().now() + 30 * sim::kSecond);
  }
  out.hit_rate = static_cast<double>(cache_chunks) /
                 static_cast<double>(std::max<std::size_t>(total_chunks, 1));
  out.contiguity = measure_contiguity(cluster, base.res, &out.resident_chunks);
  return out;
}

}  // namespace

int main() {
  print_header("Ablation", "freshness dispersion: regions vs patches");
  std::printf("%-12s %10s %12s %10s %9s\n", "dispersion", "hit-rate",
              "contiguity", "resident", "rescans");
  print_rule();
  for (double fraction : {0.0, 0.1, 0.25, 0.5}) {
    const Outcome o = run(fraction);
    std::printf("%-12.2f %9.1f%% %12.2f %10zu %9zu\n", fraction,
                o.hit_rate * 100.0, o.contiguity, o.resident_chunks, o.rescans);
  }
  std::printf("\nexpected shape: dispersion > 0 keeps accessed *regions* "
              "contiguous in memory and lifts the revisit hit-rate.\n");
  return 0;
}
