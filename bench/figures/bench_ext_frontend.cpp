// Extension bench — §IX-A future work, implemented here:
//   #1 a smaller-capacity STASH graph at the front-end, and
//   #2 model-driven prefetching of the predicted next view.
//
// A user session of momentum pans (the dominant exploration pattern)
// compared across three client configurations: no front-end cache,
// front-end cache only, and cache + prefetch.  The paper's expectation:
// the front-end "can greatly reduce latency in case users tend to browse
// a narrow spatiotemporal region", and prefetching "can help reduce the
// number of interactions the front-end needs to have with the server."

#include "bench_common.hpp"
#include "client/caching_client.hpp"

using namespace stash;
using namespace stash::bench;

namespace {

struct SessionOutcome {
  double mean_latency_ms = 0.0;
  std::uint64_t backend_queries = 0;
  std::uint64_t fully_local = 0;
};

std::vector<AggregationQuery> pan_session() {
  workload::WorkloadGenerator wl;
  AggregationQuery view = wl.random_query(workload::QueryGroup::County);
  std::vector<AggregationQuery> session{view};
  // Momentum east for 8 steps, then a turn north for 8 more.
  for (int i = 0; i < 8; ++i) {
    view.area = view.area.translated(0.0, 0.25 * view.area.width());
    session.push_back(view);
  }
  for (int i = 0; i < 8; ++i) {
    view.area = view.area.translated(0.25 * view.area.height(), 0.0);
    session.push_back(view);
  }
  return session;
}

SessionOutcome run_plain(const std::vector<AggregationQuery>& session) {
  auto cluster = make_cluster();
  SessionOutcome out;
  sim::SimTime total = 0;
  for (const auto& q : session) total += cluster->run_query(q).latency();
  out.mean_latency_ms =
      sim::to_millis(total) / static_cast<double>(session.size());
  out.backend_queries = session.size();
  return out;
}

SessionOutcome run_client(const std::vector<AggregationQuery>& session,
                          bool prefetch) {
  auto cluster = make_cluster();
  client::CachingClientConfig config;
  config.enable_prefetch = prefetch;
  client::CachingClient client(*cluster, config);
  SessionOutcome out;
  sim::SimTime total = 0;
  for (const auto& q : session) total += client.query(q).latency;
  out.mean_latency_ms =
      sim::to_millis(total) / static_cast<double>(session.size());
  out.backend_queries = client.metrics().backend_queries;
  out.fully_local = client.metrics().fully_local;
  return out;
}

}  // namespace

int main() {
  print_header("Extension", "front-end STASH cache + prefetch (paper §IX-A)");
  const auto session = pan_session();
  const SessionOutcome plain = run_plain(session);
  const SessionOutcome cached = run_client(session, false);
  const SessionOutcome prefetched = run_client(session, true);

  std::printf("%-24s %16s %16s %13s\n", "client", "mean-latency(ms)",
              "backend-queries", "fully-local");
  print_rule();
  std::printf("%-24s %16.2f %16llu %13llu\n", "no front-end cache",
              plain.mean_latency_ms,
              static_cast<unsigned long long>(plain.backend_queries), 0ull);
  std::printf("%-24s %16.2f %16llu %13llu\n", "front-end cache",
              cached.mean_latency_ms,
              static_cast<unsigned long long>(cached.backend_queries),
              static_cast<unsigned long long>(cached.fully_local));
  std::printf("%-24s %16.2f %16llu %13llu\n", "cache + prefetch",
              prefetched.mean_latency_ms,
              static_cast<unsigned long long>(prefetched.backend_queries),
              static_cast<unsigned long long>(prefetched.fully_local));
  std::printf("\nexpected shape: the front-end cache trims repeat work; "
              "prefetch turns momentum pans into fully-local responses and "
              "cuts back-end interactions.\n");
  return 0;
}
