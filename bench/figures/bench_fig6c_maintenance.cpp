// Fig 6c — STASH maintenance (Cell population) time vs query size.
//
// Paper §VIII-C.2: "the population of Cells fetched from disk to memory is
// done at the back-end in a separate thread ... the cold-start scenario
// where all the Cells from a query have to be inserted in-memory and the
// time taken [for] population ... goes down considerably with query size
// since lesser Cells are to be inserted in STASH."

#include "bench_common.hpp"

using namespace stash;
using namespace stash::bench;
using workload::QueryGroup;

int main() {
  print_header("Fig 6c", "cold-start Cell population (maintenance) time");
  std::printf("%-9s %14s %16s %18s\n", "size", "cells", "maintenance(ms)",
              "response-path(ms)");
  print_rule();
  constexpr int kQueries = 10;
  for (QueryGroup group : {QueryGroup::Country, QueryGroup::State,
                           QueryGroup::County, QueryGroup::City}) {
    workload::WorkloadGenerator wl;
    double maintenance_ms = 0.0;
    double response_ms = 0.0;
    std::size_t cells = 0;
    for (int i = 0; i < kQueries; ++i) {
      auto cluster = make_cluster();
      const auto stats = cluster->run_query(wl.random_query(group));
      maintenance_ms += sim::to_millis(cluster->metrics().total_maintenance_time);
      response_ms += sim::to_millis(stats.latency());
      cells += stats.result_cells;
    }
    std::printf("%-9s %14zu %16.2f %18.2f\n", workload::to_string(group).c_str(),
                cells / kQueries, maintenance_ms / kQueries,
                response_ms / kQueries);
  }
  std::printf("\nexpected shape: maintenance time falls with query size and "
              "stays off the response path.\n");
  return 0;
}
