// Fig 6a — Query latency vs query size for three scenarios:
//   basic   : plain Galileo, no STASH (every query scans disk)
//   worst   : STASH enabled but empty (lookup overhead + disk)
//   best    : STASH with every relevant Cell in memory (duplicate query)
//
// Paper: "STASH with all necessary Cells in-memory outperforms the other
// two scenarios with ~5x improvement over no STASH scenarios for large
// query sizes such as country and state", and the worst case is slightly
// slower than basic (§VIII-C).

#include "bench_common.hpp"

using namespace stash;
using namespace stash::bench;
using workload::QueryGroup;

namespace {

constexpr int kQueriesPerGroup = 10;

double scenario_latency_ms(cluster::SystemMode mode, QueryGroup group,
                           bool preload) {
  workload::WorkloadGenerator wl;  // same seed -> same rectangles per scenario
  std::vector<cluster::QueryStats> stats;
  for (int i = 0; i < kQueriesPerGroup; ++i) {
    auto cluster = make_cluster(mode);
    const AggregationQuery query = wl.random_query(group);
    if (preload) cluster->preload(query);
    stats.push_back(cluster->run_query(query));
  }
  return mean_latency_ms(stats);
}

}  // namespace

int main() {
  print_header("Fig 6a", "query latency vs query size (avg of 10 queries)");
  std::printf("%-9s %12s %14s %13s %14s\n", "size", "basic(ms)",
              "worst-case(ms)", "best-case(ms)", "best-vs-basic");
  print_rule();
  for (QueryGroup group : {QueryGroup::Country, QueryGroup::State,
                           QueryGroup::County, QueryGroup::City}) {
    const double basic =
        scenario_latency_ms(cluster::SystemMode::Basic, group, false);
    const double worst =
        scenario_latency_ms(cluster::SystemMode::Stash, group, false);
    const double best =
        scenario_latency_ms(cluster::SystemMode::Stash, group, true);
    std::printf("%-9s %12.2f %14.2f %13.2f %13.1fx\n",
                workload::to_string(group).c_str(), basic, worst, best,
                basic / best);
  }
  std::printf("\nexpected shape: best-case ~5x faster than basic at country/"
              "state; worst-case slightly above basic.\n");
  return 0;
}
