// Fig 7c — Panning a state-level query by 10% / 20% / 25% in 8 directions.
//
// Paper §VIII-D.3: "the first query encounters an empty STASH graph and
// then, from the second query onwards, a fraction of the necessary Cells
// should exist in-memory ... the comparison of 25% pan scenario between a
// basic and a STASH enabled system shows considerable improvement ranging
// from 73%-60% reduction in latency."

#include "bench_common.hpp"

using namespace stash;
using namespace stash::bench;

int main() {
  print_header("Fig 7c", "panning a state query in 8 directions");
  for (double fraction : {0.10, 0.20, 0.25}) {
    workload::WorkloadGenerator wl;
    const auto queries =
        wl.panning_sequence(wl.random_query(workload::QueryGroup::State), fraction);

    auto stash_cluster = make_cluster(cluster::SystemMode::Stash);
    const auto stash_stats = stash_cluster->run_sequence(queries);
    auto basic_cluster = make_cluster(cluster::SystemMode::Basic);
    const auto basic_stats = basic_cluster->run_sequence(queries);

    // Skip the cold base query: the figure reports the panned requests.
    std::vector<cluster::QueryStats> stash_pans(stash_stats.begin() + 1,
                                                stash_stats.end());
    std::vector<cluster::QueryStats> basic_pans(basic_stats.begin() + 1,
                                                basic_stats.end());
    const double stash_ms = mean_latency_ms(stash_pans);
    const double basic_ms = mean_latency_ms(basic_pans);
    if (fraction == 0.25) {
      dump_metrics_json(*stash_cluster, "fig7c_stash_pan25");
      dump_metrics_json(*basic_cluster, "fig7c_basic_pan25");
    }
    std::printf("pan %2.0f%%: STASH %7.2f ms   basic %7.2f ms   "
                "latency reduction %4.1f%%\n",
                fraction * 100.0, stash_ms, basic_ms,
                100.0 * (1.0 - stash_ms / basic_ms));
  }
  std::printf("\nexpected shape: basic stays uniformly high; STASH cuts "
              "latency 60-73%%, and smaller pans benefit more.\n");
  return 0;
}
