// Fig 6b — Throughput of a STASH-enabled vs basic system.
//
// Paper §VIII-D.4: "firing 10,000 ... requests over the cluster which are
// created by selecting 100 random rectangles (of sizes state, county and
// city) over the globe and then randomly panning around each by 10% in any
// random direction 100 times, to replicate spatiotemporal locality of
// requests.  The throughput is calculated based on the total time taken
// for the last request to be executed successfully."  Observed gains:
// 5.7x / 4x / 3.7x for state / county / city.

#include <cstdlib>

#include "bench_common.hpp"

using namespace stash;
using namespace stash::bench;
using workload::QueryGroup;

namespace {

double throughput_qps(cluster::SystemMode mode, QueryGroup group,
                      std::size_t rects, std::size_t pans) {
  workload::WorkloadGenerator wl;
  const auto queries = wl.throughput_workload(group, rects, pans, 0.1);
  auto config = paper_cluster_config(mode);
  config.discard_payload = true;  // bound front-end memory for 10k queries
  cluster::StashCluster cluster_obj(config, shared_generator());
  auto* cluster = &cluster_obj;
  // The paper fires the whole request set at the cluster; throughput is
  // total requests / time of the last completion.
  const auto stats = cluster->run_burst(queries);
  sim::SimTime last = 0;
  for (const auto& s : stats) last = std::max(last, s.completed_at);
  return static_cast<double>(queries.size()) / sim::to_seconds(last);
}

}  // namespace

int main(int argc, char** argv) {
  // 100 rectangles x (1 + 99 pans) = 10,000 requests as in the paper;
  // pass a smaller rectangle count for a quick run.
  const std::size_t rects =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 100;
  const std::size_t pans = 99;
  print_header("Fig 6b", "throughput: " + std::to_string(rects * (pans + 1)) +
                             " locality-clustered requests");
  std::printf("%-9s %16s %16s %10s\n", "size", "STASH(q/s)", "basic(q/s)",
              "speedup");
  print_rule();
  for (QueryGroup group :
       {QueryGroup::State, QueryGroup::County, QueryGroup::City}) {
    const double with_stash =
        throughput_qps(cluster::SystemMode::Stash, group, rects, pans);
    const double basic =
        throughput_qps(cluster::SystemMode::Basic, group, rects, pans);
    std::printf("%-9s %16.0f %16.0f %9.1fx\n", workload::to_string(group).c_str(),
                with_stash, basic, with_stash / basic);
  }
  std::printf("\nexpected shape: ~5.7x / 4x / 3.7x improvement for "
              "state / county / city (paper Fig 6b).\n");
  return 0;
}
