// Fig 7d/7e — Drill-down (zoom in) and roll-up (zoom out) over a state
// area with 50% / 75% / 100% of the relevant Cells pre-stocked.
//
// Paper §VIII-D.2: "drill-down (zoom-in), where a user starts with a lower
// spatial resolution of 2 ... and then recursively increases the
// resolution to 6 ... we have randomly stacked the STASH graph with
// regions covering 50%, 75% and 100% of all the relevant Cells ... in all
// scenarios with partial information, we see at least 40% improvement in
// latency over a system without STASH."

#include "bench_common.hpp"

using namespace stash;
using namespace stash::bench;

namespace {

/// Pre-stocks `fraction` of each zoom level by preloading a sub-area of
/// the query rectangle ("randomly stacked ... regions covering X% of all
/// the relevant Cells").
void preload_fraction(cluster::StashCluster& cluster,
                      const std::vector<AggregationQuery>& queries,
                      double fraction) {
  if (fraction <= 0.0) return;
  for (const auto& q : queries) {
    AggregationQuery part = q;
    part.area = q.area.scaled(fraction);
    cluster.preload(part);
  }
}

void run_zoom(const char* figure, const char* title, int from, int to) {
  print_header(figure, title);
  workload::WorkloadGenerator wl;
  const auto queries =
      wl.zoom_sequence(wl.random_query(workload::QueryGroup::State), from, to);

  auto basic_cluster = make_cluster(cluster::SystemMode::Basic);
  const auto basic_stats = basic_cluster->run_sequence(queries);

  std::printf("%-6s %12s %12s %12s %12s\n", "res", "basic(ms)", "50%(ms)",
              "75%(ms)", "100%(ms)");
  print_rule();
  std::vector<std::vector<cluster::QueryStats>> runs;
  for (double fraction : {0.5, 0.75, 1.0}) {
    auto cluster = make_cluster(cluster::SystemMode::Stash);
    preload_fraction(*cluster, queries, fraction);
    runs.push_back(cluster->run_sequence(queries));
  }
  double basic_total = 0.0;
  double half_total = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::printf("s%-5d %12.2f %12.2f %12.2f %12.2f\n", queries[i].res.spatial,
                sim::to_millis(basic_stats[i].latency()),
                sim::to_millis(runs[0][i].latency()),
                sim::to_millis(runs[1][i].latency()),
                sim::to_millis(runs[2][i].latency()));
    basic_total += sim::to_millis(basic_stats[i].latency());
    half_total += sim::to_millis(runs[0][i].latency());
  }
  std::printf("50%%-stocked total improvement vs basic: %.1f%%\n",
              100.0 * (1.0 - half_total / basic_total));
}

}  // namespace

int main() {
  run_zoom("Fig 7d", "drill-down s2 -> s6 over a state area", 2, 6);
  run_zoom("Fig 7e", "roll-up s6 -> s2 over a state area", 6, 2);
  std::printf("\nexpected shape: more resident Cells -> lower latency; "
              ">=40%% improvement even at 50%% (paper Fig 7d/e).\n");
  return 0;
}
