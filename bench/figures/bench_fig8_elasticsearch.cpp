// Fig 8a/8b/8c — STASH vs ElasticSearch on overlapping-request sequences.
//
// Paper §VIII-F: panning and iterative dicing repeated on an ES cluster
// (3 master + 120 data nodes, 600 shards, query/aggregation/fielddata
// caches).  "At each step the latency-reduction with respect to the
// latency of the first request with STASH ranges between ~70% and 49.7%,
// whereas that of ElasticSearch stays between ~2% and 0.6%."

#include "baseline/elastic.hpp"
#include "bench_common.hpp"

using namespace stash;
using namespace stash::bench;

namespace {

void compare_sequence(const char* figure, const char* title,
                      const std::vector<AggregationQuery>& queries) {
  print_header(figure, title);
  auto stash_cluster = make_cluster(cluster::SystemMode::Stash);
  const auto stash_stats = stash_cluster->run_sequence(queries);

  baseline::EsConfig es_config;
  baseline::ElasticSearchSim es(es_config, shared_generator());
  const auto es_stats = es.run_sequence(queries);

  std::printf("%-7s %12s %12s %14s %14s\n", "query", "STASH(ms)", "ES(ms)",
              "STASH-drop(%)", "ES-drop(%)");
  print_rule();
  const double stash_first = sim::to_millis(stash_stats[0].latency());
  const double es_first = sim::to_millis(es_stats[0].latency);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double s = sim::to_millis(stash_stats[i].latency());
    const double e = sim::to_millis(es_stats[i].latency);
    std::printf("%-7zu %12.2f %12.2f %14.1f %14.1f\n", i + 1, s, e,
                100.0 * (1.0 - s / stash_first), 100.0 * (1.0 - e / es_first));
  }
}

}  // namespace

int main() {
  workload::WorkloadGenerator wl;

  // Fig 8a: the panning scenario (state query panned 25% in 8 directions).
  compare_sequence(
      "Fig 8a", "panning: STASH vs ElasticSearch",
      wl.panning_sequence(wl.random_query(workload::QueryGroup::State), 0.25));

  // Fig 8b: ascending iterative dicing.
  compare_sequence("Fig 8b", "ascending iterative dicing: STASH vs ES",
                   wl.iterative_dicing(workload::QueryGroup::Country, 5, false));

  // Fig 8c: descending iterative dicing.
  compare_sequence("Fig 8c", "descending iterative dicing: STASH vs ES",
                   wl.iterative_dicing(workload::QueryGroup::Country, 5, true));

  std::printf("\nexpected shape: STASH drops ~49.7-70%% after the first "
              "request; ES improves only ~0.6-2%% (request caches are "
              "exact-match), paper Fig 8.\n");
  return 0;
}
