// Extension — post-heal re-warm benefit vs outage duration.
//
// Not a paper figure: STASH assumes the cache tier stays connected; this
// bench asks what a network split costs after it heals.  A 2-way split
// cuts three nodes (one partition owner among them) away from the
// scatter/gather front-end for an outage of 0.5..4 simulated seconds; the
// owner also crashes mid-split and restarts cold just after the heal.
// Mid-split traffic keeps the ring-successor failover holders warm, so by
// heal time the rejoiner's partitions live on the other side of the split.
//
// Each outage length runs twice — anti-entropy recovery on and off — and
// the series to look at is the post-heal probe: with recovery the
// restarted owner pulls its complete chunks back from the replica holders
// and the probe is served from cache; without it every one of the
// rejoiner's chunks is re-fetched from durable storage.

#include <algorithm>

#include "bench_common.hpp"
#include "common/civil_time.hpp"
#include "geo/geohash.hpp"

using namespace stash;
using namespace stash::bench;

namespace {

constexpr std::uint32_t kNodes = 16;
constexpr sim::SimTime kSplitAt = 1 * sim::kSecond;
constexpr sim::SimTime kDeadline = 1 * sim::kSecond;
constexpr std::size_t kMidSplitQueries = 10;

AggregationQuery wide_query() {
  AggregationQuery q{{38.0, 38.6, -99.0, -97.8},
                     {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
                     {6, TemporalRes::Day}};
  q.area = q.area.scaled(16.0);
  return q;
}

cluster::ClusterConfig partition_config(const AggregationQuery& query,
                                        sim::SimTime outage, bool recovery) {
  cluster::ClusterConfig config;
  config.num_nodes = kNodes;
  config.subquery_timeout = 50 * sim::kMillisecond;
  config.retry_backoff = 5 * sim::kMillisecond;
  config.suspect_ttl = 200 * sim::kMillisecond;
  config.query_deadline = kDeadline;
  config.recovery = recovery;
  config.membership.probe_interval = 50 * sim::kMillisecond;
  config.membership.probe_timeout = 5 * sim::kMillisecond;
  config.membership.suspicion_timeout = 100 * sim::kMillisecond;
  config.fault_plan.seed = 1;

  const ZeroHopDht dht(kNodes, config.partition_prefix_length);
  const NodeId victim =
      dht.node_for_partition(geohash::covering(query.area, 2).front());
  std::vector<std::uint32_t> minority = {victim, (victim + 1) % kNodes,
                                         (victim + 5) % kNodes};
  std::vector<std::uint32_t> majority = {sim::kFrontendNode};
  for (std::uint32_t id = 0; id < kNodes; ++id)
    if (std::find(minority.begin(), minority.end(), id) == minority.end())
      majority.push_back(id);
  config.fault_plan.partitions.push_back({.groups = {majority, minority},
                                          .at = kSplitAt,
                                          .heal_at = kSplitAt + outage});
  // The owner loses its cache mid-split and rejoins cold just after the
  // heal, so its restart-time anti-entropy exchange can reach the holders.
  config.fault_plan.crashes.push_back(
      {.node = victim,
       .at = kSplitAt + outage / 2,
       .restart_at = kSplitAt + outage + 50 * sim::kMillisecond});
  return config;
}

struct Point {
  std::uint64_t rewarmed = 0;      // complete chunks pulled back on heal
  std::size_t probe_scans = 0;     // post-heal probe storage fetches
  double probe_ms = 0.0;
  sim::SimTime worst_overrun = 0;  // mid-split deadline overrun (must be 0)
};

Point run_point(const AggregationQuery& query, sim::SimTime outage,
                bool recovery, const char* dump_name = nullptr) {
  cluster::StashCluster cluster(partition_config(query, outage, recovery),
                                shared_generator());

  // Scheduled submissions: the scripted split/crash/heal events are
  // foreground work, so one run() drains the whole timeline in order.
  std::vector<cluster::QueryStats> stats;
  cluster.loop().schedule_at(0, [&] {
    cluster.submit(query, [](const cluster::QueryStats&) {});
  });
  const sim::SimTime first = kSplitAt + outage / 2 + 50 * sim::kMillisecond;
  for (std::size_t i = 0; i < kMidSplitQueries; ++i)
    cluster.loop().schedule_at(
        first + static_cast<sim::SimTime>(i) * 20 * sim::kMillisecond, [&] {
          cluster.submit(query, [&](const cluster::QueryStats& st) {
            stats.push_back(st);
          });
        });
  cluster.loop().run();
  // Quiescence: breaker expiry + gossip convergence before the probe.
  cluster.loop().run_until(kSplitAt + outage + 3 * sim::kSecond);

  Point p;
  for (const auto& st : stats)
    if (st.deadline != 0 && st.completed_at > st.deadline)
      p.worst_overrun = std::max(p.worst_overrun, st.completed_at - st.deadline);
  p.rewarmed = cluster.metrics().chunks_rewarmed;
  const cluster::QueryStats probe = cluster.run_query(query);
  p.probe_scans = probe.breakdown.chunks_scanned;
  p.probe_ms = sim::to_millis(probe.latency());
  if (dump_name != nullptr) dump_metrics_json(cluster, dump_name);
  return p;
}

}  // namespace

int main() {
  print_header("Ext", "post-heal probe cost vs outage duration, "
                      "anti-entropy recovery on/off");
  const AggregationQuery query = wide_query();
  std::printf("16 nodes, 3 cut off (1 owner crashes mid-split, restarts "
              "cold post-heal); %zu mid-split queries, %.0f ms deadline\n\n",
              kMidSplitQueries, sim::to_millis(kDeadline));
  std::printf("%7s | %21s | %21s | %8s\n", "", "recovery on", "recovery off",
              "overrun");
  std::printf("%7s | %8s %5s %6s | %8s %5s %6s | %8s\n", "outage", "rewarmed",
              "scans", "ms", "rewarmed", "scans", "ms", "us");
  print_rule();

  for (const sim::SimTime outage :
       {sim::SimTime{500} * sim::kMillisecond, 1 * sim::kSecond,
        2 * sim::kSecond, 4 * sim::kSecond}) {
    // Archive the 2 s point's metrics: the headline outage regime.
    const bool headline = outage == 2 * sim::kSecond;
    const Point on =
        run_point(query, outage, true, headline ? "ext_partition" : nullptr);
    const Point off = run_point(query, outage, false);
    std::printf("%5.1f s | %8llu %5zu %6.2f | %8llu %5zu %6.2f | %8lld\n",
                sim::to_millis(outage) / 1000.0,
                static_cast<unsigned long long>(on.rewarmed), on.probe_scans,
                on.probe_ms, static_cast<unsigned long long>(off.rewarmed),
                off.probe_scans, off.probe_ms,
                static_cast<long long>(
                    std::max(on.worst_overrun, off.worst_overrun)));
  }
  print_rule();
  std::printf("(rewarmed = complete chunks anti-entropy pulled back to the "
              "restarted owner; scans = durable-storage chunk fetches the "
              "post-heal probe paid; overrun = worst mid-split deadline "
              "overshoot, 0 = no query ever hung)\n");
  return 0;
}
