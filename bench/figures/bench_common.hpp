// Shared plumbing for the figure-reproduction benches.
//
// Every bench stands up the paper's testbed shape — 120 nodes, 8 workers,
// 2-character geohash partitions (§VIII-A) — on the deterministic
// simulator and prints the same series the corresponding figure plots.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/metrics.hpp"
#include "workload/workload.hpp"

namespace stash::bench {

inline std::shared_ptr<const NamGenerator> shared_generator() {
  static auto gen = std::make_shared<const NamGenerator>();
  return gen;
}

inline cluster::ClusterConfig paper_cluster_config(
    cluster::SystemMode mode = cluster::SystemMode::Stash) {
  cluster::ClusterConfig config;
  config.num_nodes = 120;       // §VIII-A
  config.workers_per_node = 8;  // 8-core Xeon E5-2560V2
  config.mode = mode;
  return config;
}

inline std::unique_ptr<cluster::StashCluster> make_cluster(
    cluster::SystemMode mode = cluster::SystemMode::Stash) {
  return std::make_unique<cluster::StashCluster>(paper_cluster_config(mode),
                                                 shared_generator());
}

inline double mean_latency_ms(const std::vector<cluster::QueryStats>& stats) {
  if (stats.empty()) return 0.0;
  sim::SimTime total = 0;
  for (const auto& s : stats) total += s.latency();
  return sim::to_millis(total) / static_cast<double>(stats.size());
}

/// Writes the cluster's stash-metrics-v1 JSON export (obs/metrics.hpp) to
/// `$STASH_BENCH_METRICS_DIR/BENCH_<name>.metrics.json` — the same payload
/// `stashctl --metrics-json` emits, so CI archives bench metrics alongside
/// the printed figures.  No-op when the env var is unset, keeping local
/// bench runs side-effect free.
inline void dump_metrics_json(const cluster::StashCluster& cluster,
                              const std::string& name) {
  const char* dir = std::getenv("STASH_BENCH_METRICS_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path =
      std::string(dir) + "/BENCH_" + name + ".metrics.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  const std::string payload = obs::to_json(
      cluster.metrics_registry().snapshot(), cluster.loop().now());
  std::fprintf(out, "%s\n", payload.c_str());
  std::fclose(out);
}

inline void print_header(const std::string& figure, const std::string& title) {
  std::printf("\n=== %s — %s ===\n", figure.c_str(), title.c_str());
}

/// A separator the bench outputs use between scenario blocks.
inline void print_rule() { std::printf("%s\n", std::string(72, '-').c_str()); }

}  // namespace stash::bench
