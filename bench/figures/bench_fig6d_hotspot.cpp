// Fig 6d — Autoscaling under a skewed workload.
//
// Paper §VIII-E: "We simultaneously executed 1000 county-level requests,
// by randomly panning around a random starting point, to emulate the
// hotspot scenario ... configured to initiate Clique handoff with pending
// requests of over 100 ... STASH with a dynamic replication scheme
// processes [a] larger number of queries per second and finishes all tasks
// ~20 seconds before STASH without dynamic replication."

#include <algorithm>
#include <map>

#include "bench_common.hpp"

using namespace stash;
using namespace stash::bench;

namespace {

struct Run {
  std::vector<cluster::QueryStats> stats;
  cluster::ClusterMetrics metrics;
  sim::SimTime makespan = 0;
};

Run run(cluster::SystemMode mode, const std::vector<AggregationQuery>& burst) {
  auto config = paper_cluster_config(mode);
  config.stash.hotspot_queue_threshold = 100;  // §VIII-E
  config.stash.hotspot_cooldown = 3600 * sim::kSecond;  // "cooldown set high"
  cluster::StashCluster cluster(config, shared_generator());
  // Warm the hot region: the paper's hotspot strikes popular (cached) data.
  AggregationQuery warm = burst.front();
  warm.area = warm.area.scaled(16.0);
  cluster.run_query(warm);
  Run out;
  out.stats = cluster.run_open_loop(burst, 10 /*us*/);
  out.metrics = cluster.metrics();
  dump_metrics_json(cluster, mode == cluster::SystemMode::Stash
                                 ? "fig6d_replication"
                                 : "fig6d_noreplication");
  for (const auto& s : out.stats)
    out.makespan = std::max(out.makespan, s.completed_at);
  return out;
}

}  // namespace

int main() {
  print_header("Fig 6d", "hotspot: 1000 county requests around one point");
  workload::WorkloadGenerator wl;
  const auto burst = wl.hotspot_burst(workload::QueryGroup::County, 1000, 0.1);

  const Run with = run(cluster::SystemMode::Stash, burst);
  const Run without = run(cluster::SystemMode::StashNoReplication, burst);

  std::printf("replication protocol: handoffs=%llu cliques=%llu cells=%llu "
              "reroutes=%llu rejections=%llu\n\n",
              static_cast<unsigned long long>(with.metrics.handoffs_initiated),
              static_cast<unsigned long long>(with.metrics.cliques_replicated),
              static_cast<unsigned long long>(with.metrics.cells_replicated),
              static_cast<unsigned long long>(with.metrics.reroutes),
              static_cast<unsigned long long>(with.metrics.distress_rejections));

  const sim::SimTime window = 2 * sim::kMillisecond;
  std::map<sim::SimTime, std::size_t> hist_with;
  std::map<sim::SimTime, std::size_t> hist_without;
  for (const auto& s : with.stats) ++hist_with[s.completed_at / window];
  for (const auto& s : without.stats) ++hist_without[s.completed_at / window];
  const sim::SimTime last = std::max(with.makespan, without.makespan) / window;

  std::printf("%10s %15s %15s   (responses per %lldms window)\n", "t(ms)",
              "replication", "no-replication",
              static_cast<long long>(window / sim::kMillisecond));
  print_rule();
  std::size_t cum_with = 0;
  std::size_t cum_without = 0;
  for (sim::SimTime w = 0; w <= last; ++w) {
    const std::size_t a = hist_with.contains(w) ? hist_with.at(w) : 0;
    const std::size_t b = hist_without.contains(w) ? hist_without.at(w) : 0;
    cum_with += a;
    cum_without += b;
    std::printf("%10lld %15zu %15zu\n",
                static_cast<long long>(w * window / sim::kMillisecond), a, b);
  }
  const double tput_gain =
      (static_cast<double>(with.stats.size()) / sim::to_seconds(with.makespan)) /
      (static_cast<double>(without.stats.size()) /
       sim::to_seconds(without.makespan));
  std::printf("\nmakespan: %.1f ms (replication) vs %.1f ms (none); "
              "throughput gain %.2fx\n",
              sim::to_millis(with.makespan), sim::to_millis(without.makespan),
              tput_gain);
  std::printf("expected shape: replication finishes earlier with higher "
              "responses/sec during the hotspot (paper: ~40%% throughput, "
              "~20 s earlier at testbed scale).\n");
  return 0;
}
