// Fig 7a/7b — Iterative dicing, descending and ascending.
//
// Paper §VIII-D.1: "a sequence of 5 queries that, keeping the
// spatiotemporal resolution fixed, vary the Query_Polygon size ...
// descending iterative dicing performs much better for a STASH-enabled
// system since a larger area (country level) is fetched in the first query
// and then, iteratively, a subset ... gets queried (20% spatial area
// reduction) — leading to all necessary Cells existing in memory from the
// second query onwards."

#include "bench_common.hpp"

using namespace stash;
using namespace stash::bench;

namespace {

void run_direction(bool descending) {
  workload::WorkloadGenerator wl;
  const auto queries =
      wl.iterative_dicing(workload::QueryGroup::Country, 5, descending);

  auto stash_cluster = make_cluster(cluster::SystemMode::Stash);
  const auto stash_stats = stash_cluster->run_sequence(queries);
  auto basic_cluster = make_cluster(cluster::SystemMode::Basic);
  const auto basic_stats = basic_cluster->run_sequence(queries);

  std::printf("%-7s %14s %12s %12s %9s %11s\n", "query", "area(deg^2)",
              "STASH(ms)", "basic(ms)", "speedup", "disk-chunks");
  print_rule();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::printf("%-7zu %14.1f %12.2f %12.2f %8.1fx %11zu\n", i + 1,
                queries[i].area.area(),
                sim::to_millis(stash_stats[i].latency()),
                sim::to_millis(basic_stats[i].latency()),
                static_cast<double>(basic_stats[i].latency()) /
                    static_cast<double>(stash_stats[i].latency()),
                stash_stats[i].breakdown.chunks_scanned);
  }
}

}  // namespace

int main() {
  print_header("Fig 7a", "descending iterative dicing (country, -20% dims/step)");
  run_direction(true);
  std::printf("expected shape: from query 2 on, STASH is all-cache "
              "(0 disk chunks) and far below basic.\n");

  print_header("Fig 7b", "ascending iterative dicing (reverse order)");
  run_direction(false);
  std::printf("expected shape: partial reuse each step — better than basic "
              "but weaker than the descending run.\n");
  return 0;
}
