// Real-time data updates and PLM-driven recomputation (paper §IV-D).
//
// "In case of systems with real-time data, the PLM can be adjusted during
// an update to keep track of up-to-date Cells, so that stale data
// summaries are recomputed in case of future access."
//
// An analyst watches a Kansas county while a new NAM forecast run lands
// for 2015-02-02: the affected storage block is rewritten, every cached
// chunk that depends on it is dropped cluster-wide, and the very next
// query transparently recomputes fresh values — while untouched regions
// stay cached.
//
//   ./build/examples/realtime_ingest

#include <cstdio>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"

using namespace stash;

namespace {

double mean_temperature(const CellSummaryMap& cells) {
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const auto& [key, summary] : cells) {
    sum += summary.attribute(0).sum;
    count += summary.attribute(0).count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace

int main() {
  auto generator = std::make_shared<const NamGenerator>();
  cluster::ClusterConfig config;
  config.num_nodes = 32;
  cluster::StashCluster cluster(config, generator);

  const AggregationQuery kansas{{38.0, 38.6, -99.0, -97.8},
                                {unix_seconds({2015, 2, 2}),
                                 unix_seconds({2015, 2, 3})},
                                {6, TemporalRes::Day}};
  const AggregationQuery colorado{{38.0, 38.6, -106.0, -104.8},
                                  kansas.time,
                                  kansas.res};

  CellSummaryMap cells;
  auto stats = cluster.run_query(kansas, &cells);
  std::printf("initial query:   %4zu cells, %6.2f ms, mean T = %.3f K\n",
              cells.size(), sim::to_millis(stats.latency()),
              mean_temperature(cells));
  cluster.run_query(colorado);  // a second cached region, out of blast radius

  stats = cluster.run_query(kansas, &cells);
  std::printf("cached repeat:   %4zu cells, %6.2f ms, scanned %zu records\n",
              cells.size(), sim::to_millis(stats.latency()),
              stats.breakdown.scan.records_scanned);

  // A new forecast run rewrites the 2015-02-02 block of the Kansas
  // partition.
  const std::string partition = geohash::encode({38.3, -98.4}, 2);
  const std::int64_t day = days_from_civil({2015, 2, 2});
  const std::uint64_t version = cluster.ingest_update(partition, day);
  std::printf("\ningest: partition %s day 2015-02-02 -> version %llu; "
              "dependent cached chunks dropped cluster-wide\n\n",
              partition.c_str(), static_cast<unsigned long long>(version));

  stats = cluster.run_query(kansas, &cells);
  std::printf("after ingest:    %4zu cells, %6.2f ms, scanned %zu records, "
              "mean T = %.3f K  (fresh values)\n",
              cells.size(), sim::to_millis(stats.latency()),
              stats.breakdown.scan.records_scanned, mean_temperature(cells));

  stats = cluster.run_query(kansas, &cells);
  std::printf("cached again:    %4zu cells, %6.2f ms, scanned %zu records\n",
              cells.size(), sim::to_millis(stats.latency()),
              stats.breakdown.scan.records_scanned);

  const auto colorado_stats = cluster.run_query(colorado);
  std::printf("colorado (unaffected region) stayed cached: scanned %zu "
              "records\n",
              colorado_stats.breakdown.scan.records_scanned);
  return 0;
}
