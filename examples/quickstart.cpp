// Quickstart: stand up a simulated STASH cluster, run one aggregation
// query cold, then watch the cache make the repeat (and an overlapping
// pan) fast.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "client/visual_client.hpp"
#include "common/civil_time.hpp"

using namespace stash;

int main() {
  // 1. The data substrate: a deterministic NAM-like observation generator
  //    standing in for the paper's 1.1 TB NOAA dataset.
  auto generator = std::make_shared<const NamGenerator>();

  // 2. A simulated cluster: 32 nodes, 8 workers each, STASH caching on.
  cluster::ClusterConfig config;
  config.num_nodes = 32;
  cluster::StashCluster cluster(config, generator);

  // 3. A front-end client (the Grafana stand-in).
  client::VisualClient client(cluster);

  // 4. Dice: a state-sized region of the central US on 2015-02-02 at
  //    geohash precision 6, daily bins.
  const BoundingBox kansas{36.0, 40.0, -102.0, -94.0};
  const TimeRange feb2{unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})};

  std::printf("== cold query (disk scan through Galileo) ==\n");
  auto cold = client.dice(kansas, feb2);
  std::printf("  cells=%zu  latency=%.2f ms  records_scanned=%zu\n",
              cold.cells.size(), sim::to_millis(cold.stats.latency()),
              cold.stats.breakdown.scan.records_scanned);

  std::printf("== repeat query (served from the STASH graph) ==\n");
  auto warm = client.refresh();
  std::printf("  cells=%zu  latency=%.2f ms  records_scanned=%zu  speedup=%.1fx\n",
              warm.cells.size(), sim::to_millis(warm.stats.latency()),
              warm.stats.breakdown.scan.records_scanned,
              static_cast<double>(cold.stats.latency()) /
                  static_cast<double>(warm.stats.latency()));

  std::printf("== pan 10%% east (partial overlap, partial fetch) ==\n");
  auto panned = client.pan(0.0, 0.1);
  std::printf(
      "  cells=%zu  latency=%.2f ms  chunks: cache=%zu scanned=%zu\n",
      panned.cells.size(), sim::to_millis(panned.stats.latency()),
      panned.stats.breakdown.chunks_from_cache,
      panned.stats.breakdown.chunks_scanned);

  std::printf("== roll-up to precision 5 (synthesized, no disk) ==\n");
  auto rolled = client.roll_up();
  std::printf("  cells=%zu  latency=%.2f ms  chunks synthesized=%zu\n",
              rolled.cells.size(), sim::to_millis(rolled.stats.latency()),
              rolled.stats.breakdown.chunks_synthesized);

  std::printf("\nmean surface temperature over the view (ASCII heatmap):\n%s\n",
              client::VisualClient::ascii_heatmap(
                  rolled, kansas, NamAttribute::SurfaceTemperatureK, 10, 40)
                  .c_str());

  std::printf("first cells as JSON: %s\n",
              client::VisualClient::to_json(warm, 2).c_str());
  return 0;
}
