// A full visual-exploration session over the STASH-enabled cluster,
// exercising every §V-B navigation operator the way an analyst would:
// dice into a storm system, drill down, pan along its track, roll back
// up, and slice to the next day — comparing each action's latency against
// the same session on the basic (no-STASH) system.
//
//   ./build/examples/visual_exploration

#include <cstdio>
#include <string>
#include <vector>

#include "client/visual_client.hpp"
#include "common/civil_time.hpp"

using namespace stash;

namespace {

struct Action {
  std::string name;
  client::ViewResult result;
};

std::vector<Action> run_session(cluster::StashCluster& cluster) {
  client::VisualClient client(cluster);
  std::vector<Action> actions;

  // Dice into the Great Plains on 2015-02-02.
  const BoundingBox plains{34.0, 42.0, -104.0, -92.0};
  const TimeRange feb2{unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})};
  AggregationQuery view{plains, feb2, {5, TemporalRes::Day}};
  client.set_view(view);
  actions.push_back({"dice: Great Plains, s5/Day", client.refresh()});

  // Drill down one step for detail.
  actions.push_back({"drill-down to s6", client.drill_down()});

  // Pan along a storm track: three 20% moves northeast.
  for (int i = 0; i < 3; ++i)
    actions.push_back({"pan 20% NE (" + std::to_string(i + 1) + "/3)",
                       client.pan(0.2, 0.2)});

  // Roll back up for an overview (synthesized from cached s6 Cells).
  actions.push_back({"roll-up to s5", client.roll_up()});

  // Slice to the next day (new temporal bin: disk again).
  const TimeRange feb3{unix_seconds({2015, 2, 3}), unix_seconds({2015, 2, 4})};
  actions.push_back({"slice to 2015-02-03", client.slice(feb3)});

  // And back to the cached day: instant.
  actions.push_back({"slice back to 2015-02-02", client.slice(feb2)});
  return actions;
}

}  // namespace

int main() {
  auto generator = std::make_shared<const NamGenerator>();

  cluster::ClusterConfig stash_config;
  stash_config.num_nodes = 32;
  cluster::StashCluster stash_cluster(stash_config, generator);

  cluster::ClusterConfig basic_config = stash_config;
  basic_config.mode = cluster::SystemMode::Basic;
  cluster::StashCluster basic_cluster(basic_config, generator);

  const auto stash_session = run_session(stash_cluster);
  const auto basic_session = run_session(basic_cluster);

  std::printf("%-28s %12s %12s %9s %7s %7s %7s\n", "action", "STASH(ms)",
              "basic(ms)", "speedup", "cache", "synth", "disk");
  for (std::size_t i = 0; i < stash_session.size(); ++i) {
    const auto& s = stash_session[i];
    const auto& b = basic_session[i];
    std::printf("%-28s %12.2f %12.2f %8.1fx %7zu %7zu %7zu\n", s.name.c_str(),
                sim::to_millis(s.result.stats.latency()),
                sim::to_millis(b.result.stats.latency()),
                static_cast<double>(b.result.stats.latency()) /
                    static_cast<double>(s.result.stats.latency()),
                s.result.stats.breakdown.chunks_from_cache,
                s.result.stats.breakdown.chunks_synthesized,
                s.result.stats.breakdown.chunks_scanned);
  }

  std::printf("\ncluster after the session: %zu cached cells across %u nodes\n",
              stash_cluster.total_cached_cells(),
              stash_cluster.config().num_nodes);

  // Render the final overview like the Grafana WorldMap panel would.
  client::VisualClient viewer(stash_cluster);
  const BoundingBox plains{34.0, 42.0, -104.0, -92.0};
  const TimeRange feb2{unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})};
  const auto overview = viewer.dice(plains, feb2);
  std::printf("\nrelative humidity over the Plains (darker = more humid):\n%s",
              client::VisualClient::ascii_heatmap(
                  overview, plains, NamAttribute::RelativeHumidityPct, 12, 48)
                  .c_str());
  return 0;
}
