// Wall-clock datapath chaos soak (DESIGN.md §14).
//
// Thread-level chaos against the real-thread execution mode: seeded fault
// plans (task delays, injected exceptions, worker stalls) and wall-clock
// deadlines run against the ParallelQueryEngine and against a full
// cluster, with every answer compared to the sequential oracle.
//
// The run self-checks its acceptance criteria and exits non-zero on
// failure, so CI can use it as a chaos soak (the TSan lane runs it too —
// the same sweep doubles as a race hunt):
//   1. over seeds x thread counts x fault plans, every answer is
//      byte-equal to the sequential oracle or explicitly flagged with the
//      expiry/fault reason: zero silently-wrong answers;
//   2. lossless plans (delay, stall — timing only) change no answer;
//   3. no deadline run returns later than deadline + one watchdog tick
//      plus scheduler slack — stalled workers become cancelled chunks,
//      not latency;
//   4. the chaos actually bit: cancelled chunks, quarantined exceptions;
//   5. the cluster rides exec-level expiry through the pushback taxonomy
//      (degraded / partial / retried — never a hang, never a wrong cell)
//      and the robustness counters surface in the metrics export.
//
//   ./build/examples/chaos_wallclock [--seeds N] [--metrics-json FILE]

#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"
#include "exec/fault_hooks.hpp"
#include "exec/host_clock.hpp"
#include "exec/parallel_engine.hpp"
#include "exec/wall_clock.hpp"
#include "geo/geohash.hpp"
#include "obs/metrics.hpp"
#include "workload/workload.hpp"

using namespace stash;
using cluster::ClusterConfig;
using cluster::StashCluster;
using exec::BatchReport;
using exec::ExecConfig;
using exec::ExecOptions;
using exec::FaultHooks;
using exec::ParallelQueryEngine;

namespace {

constexpr std::uint64_t kDeadlineMs = 20;
// Deadline + one watchdog tick is the contract; the rest is scheduler
// slack for a loaded single-core CI box.
constexpr std::uint64_t kLatencyBoundMs = kDeadlineMs + 1000;

struct Plan {
  const char* name;
  FaultHooks faults;
  bool lossless;  // timing-only plan: must not change any answer
};

std::vector<Plan> make_plans() {
  std::vector<Plan> plans;
  plans.push_back({"none", {}, true});
  {
    FaultHooks f;
    f.task_delay_rate = 0.5;
    f.task_delay_spins = 5'000;
    plans.push_back({"delay", f, true});
  }
  {
    FaultHooks f;
    f.task_exception_rate = 0.3;
    plans.push_back({"exceptions", f, false});
  }
  {
    FaultHooks f;
    f.worker_stall_rate = 0.25;
    f.worker_stall_spins = 200'000;
    plans.push_back({"stalls", f, true});
  }
  return plans;
}

std::vector<AggregationQuery> seeded_mix(std::uint64_t seed) {
  workload::WorkloadConfig wc;
  wc.seed = seed;
  workload::WorkloadGenerator gen(wc);
  auto queries =
      gen.throughput_workload(workload::QueryGroup::County, 2, 2, 0.25);
  const auto dicing = gen.iterative_dicing(workload::QueryGroup::State, 2,
                                           /*descending=*/true);
  queries.insert(queries.end(), dicing.begin(), dicing.end());
  return queries;
}

AggregationQuery state_query() {
  return {{36.0, 40.0, -102.0, -94.0},
          TemporalBin(TemporalRes::Day, 2015, 2, 2).range(),
          {5, TemporalRes::Day}};
}

ExecConfig exec_config(std::size_t threads, FaultHooks faults) {
  ExecConfig config;
  config.threads = threads;
  config.queue_capacity = 256;
  config.faults = faults;
  return config;
}

struct SweepResult {
  std::size_t runs = 0;
  std::size_t exact = 0;
  std::size_t flagged = 0;
  std::size_t silent_wrong = 0;   // digest mismatch without a flag
  std::size_t unlabelled = 0;     // flagged but reason missing
  std::size_t lossless_lost = 0;  // timing-only plan lost a chunk
  std::uint64_t cancelled_chunks = 0;
  std::uint64_t task_exceptions = 0;
};

/// Seeds x threads x plans, every answer against the sequential oracle.
SweepResult engine_sweep(const GalileoStore& store, std::size_t seeds) {
  StashConfig graph_config;
  graph_config.max_cells = 10'000'000;
  const std::vector<Plan> plans = make_plans();

  SweepResult out;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const auto queries = seeded_mix(0x5EED0000ull + seed);

    StashGraph seq_graph(graph_config);
    QueryEngine seq(seq_graph, store);
    std::vector<std::uint64_t> want;
    want.reserve(queries.size());
    for (const auto& q : queries)
      want.push_back(exec::answer_digest(seq.evaluate(q).cells, 0));

    for (const std::size_t threads : {1u, 2u, 4u}) {
      for (const Plan& plan : plans) {
        FaultHooks faults = plan.faults;
        faults.seed = seed * 0x9E3779B9ull;
        StashGraph par_graph(graph_config);
        ParallelQueryEngine par(par_graph, store,
                                exec_config(threads, faults));
        for (std::size_t i = 0; i < queries.size(); ++i) {
          BatchReport report;
          const Evaluation got =
              par.evaluate(queries[i], EvalMode::Cached, {}, report);
          ++out.runs;
          if (report.complete()) {
            if (exec::answer_digest(got.cells, 0) == want[i])
              ++out.exact;
            else
              ++out.silent_wrong;
          } else {
            ++out.flagged;
            if (report.chunks_failed == 0 ||
                report.incomplete_partitions.empty() ||
                report.first_error == nullptr)
              ++out.unlabelled;
            if (plan.lossless) ++out.lossless_lost;
          }
        }
        const exec::ExecStats stats = par.exec_stats();
        out.cancelled_chunks += stats.cancelled_chunks;
        out.task_exceptions += stats.task_exceptions;
      }
    }
  }
  return out;
}

struct DeadlineResult {
  std::size_t runs = 0;
  std::size_t late = 0;             // returned past the latency bound
  std::size_t dishonest = 0;        // partial cells not oracle-exact
  std::uint64_t worst_ms = 0;
  std::uint64_t cancelled_chunks = 0;
  std::uint64_t deadline_exceeded = 0;
};

/// Hard-stalled workers against a tight deadline: the submitter must come
/// back within the bound and the partial must cover exactly the
/// partitions the report vouches for, byte-equal to the oracle.
DeadlineResult deadline_sweep(const GalileoStore& store, std::size_t seeds) {
  StashConfig graph_config;
  graph_config.max_cells = 10'000'000;
  const AggregationQuery query = state_query();

  StashGraph seq_graph(graph_config);
  QueryEngine seq(seq_graph, store);

  DeadlineResult out;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    for (const std::size_t threads : {1u, 2u, 4u}) {
      FaultHooks faults;
      faults.seed = seed;
      faults.worker_stall_rate = 1.0;
      faults.worker_stall_spins = 20'000'000;
      StashGraph par_graph(graph_config);
      ParallelQueryEngine par(par_graph, store, exec_config(threads, faults));

      ExecOptions options;
      const std::uint64_t start = exec::host_now_ns();
      options.deadline_ns = start + kDeadlineMs * 1'000'000;
      BatchReport report;
      const Evaluation got =
          par.evaluate(query, EvalMode::Cached, options, report);
      const std::uint64_t elapsed_ms =
          (exec::host_now_ns() - start) / 1'000'000;

      ++out.runs;
      if (elapsed_ms > kLatencyBoundMs) ++out.late;
      if (elapsed_ms > out.worst_ms) out.worst_ms = elapsed_ms;
      out.cancelled_chunks += report.chunks_cancelled;
      out.deadline_exceeded += report.deadline_exceeded ? 1 : 0;

      // Honest partial: the answer is the oracle's merge of exactly the
      // partitions NOT named incomplete.
      const std::set<std::string> incomplete(
          report.incomplete_partitions.begin(),
          report.incomplete_partitions.end());
      CellSummaryMap expected;
      for (const auto& partition :
           geohash::covering(query.area, store.partition_prefix_length())) {
        if (incomplete.count(partition) != 0) continue;
        const Evaluation want = seq.evaluate_partition(partition, query);
        for (const auto& [key, summary] : want.cells) {
          auto [it, inserted] = expected.try_emplace(key, summary);
          if (!inserted) it->second.merge(summary);
        }
      }
      if (exec::answer_digest(got.cells, 0) !=
          exec::answer_digest(expected, 0))
        ++out.dishonest;
    }
  }
  return out;
}

struct ClusterResult {
  cluster::QueryStats stats;
  double deadline_exceeded = -1.0;
  double cancelled_chunks = -1.0;
  double task_exceptions = -1.0;
  bool counters_present = false;
  std::string metrics_json;
};

/// Full cluster under a 1 ms exec deadline with every chunk stalling: the
/// expiry must ride the pushback taxonomy, not hang the front-end.
ClusterResult cluster_run() {
  ClusterConfig config;
  config.num_nodes = 8;
  config.exec_threads = 2;
  config.exec_deadline_ms = 1;
  config.exec_faults.seed = 0x9E0;
  config.exec_faults.worker_stall_rate = 1.0;
  StashCluster cluster(config, std::make_shared<const NamGenerator>());

  ClusterResult out;
  out.stats = cluster.run_query(state_query());

  const obs::MetricsSnapshot snap = cluster.metrics_registry().snapshot();
  out.counters_present = true;
  for (const char* name :
       {"stash_exec_deadline_exceeded_total",
        "stash_exec_cancelled_chunks_total", "stash_exec_task_exceptions_total",
        "stash_exec_watchdog_stalls_total", "stash_exec_submit_shed_total"}) {
    bool found = false;
    for (const auto& s : snap.scalars) found |= s.name == name;
    out.counters_present &= found;
  }
  for (const auto& s : snap.scalars) {
    if (s.name == "stash_exec_deadline_exceeded_total")
      out.deadline_exceeded = s.value;
    if (s.name == "stash_exec_cancelled_chunks_total")
      out.cancelled_chunks = s.value;
    if (s.name == "stash_exec_task_exceptions_total")
      out.task_exceptions = s.value;
  }
  out.metrics_json = obs::to_json(snap, cluster.loop().now());
  return out;
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t seeds = 2;
  std::string metrics_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = static_cast<std::size_t>(std::atol(argv[++i]));
      if (seeds == 0) seeds = 1;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--seeds N] [--metrics-json FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  auto gen = std::make_shared<const NamGenerator>();
  GalileoStore store(gen);

  std::printf("engine sweep: %zu seeds x threads {1,2,4} x plans "
              "{none, delay, exceptions, stalls}\n",
              seeds);
  const SweepResult sweep = engine_sweep(store, seeds);
  std::printf("  runs %zu: exact %zu, flagged %zu; cancelled chunks %llu, "
              "quarantined exceptions %llu\n",
              sweep.runs, sweep.exact, sweep.flagged,
              static_cast<unsigned long long>(sweep.cancelled_chunks),
              static_cast<unsigned long long>(sweep.task_exceptions));

  std::printf("deadline sweep: %zu seeds x threads {1,2,4}, %llu ms budget, "
              "every chunk stalling\n",
              seeds, static_cast<unsigned long long>(kDeadlineMs));
  const DeadlineResult deadline = deadline_sweep(store, seeds);
  std::printf("  runs %zu: worst return %llu ms (bound %llu ms), cancelled "
              "chunks %llu\n",
              deadline.runs, static_cast<unsigned long long>(deadline.worst_ms),
              static_cast<unsigned long long>(kLatencyBoundMs),
              static_cast<unsigned long long>(deadline.cancelled_chunks));

  std::printf("cluster: 8 nodes x 2 workers, 1 ms exec deadline, all chunks "
              "stalling\n");
  const ClusterResult cl = cluster_run();
  std::printf("  pushbacks %zu, degraded %zu, failed %zu, retries %zu; "
              "deadline-exceeded %.0f, cancelled-chunks %.0f\n\n",
              cl.stats.shed_subqueries, cl.stats.degraded_subqueries,
              cl.stats.failed_subqueries, cl.stats.retries,
              cl.deadline_exceeded, cl.cancelled_chunks);

  std::printf("acceptance checks:\n");
  bool ok = true;
  ok &= check(sweep.silent_wrong == 0,
              "every complete answer byte-equal to the sequential oracle");
  ok &= check(sweep.unlabelled == 0,
              "every incomplete answer names its reason (failed chunks, "
              "incomplete partitions, first error)");
  ok &= check(sweep.lossless_lost == 0,
              "timing-only plans (delay, stall) lost no chunks");
  ok &= check(sweep.task_exceptions > 0,
              "the exception plan actually bit (quarantines counted)");
  ok &= check(deadline.late == 0,
              "no deadline run returned later than deadline + watchdog tick "
              "+ slack");
  ok &= check(deadline.dishonest == 0,
              "every deadline partial covers exactly the vouched partitions, "
              "byte-equal to the oracle");
  ok &= check(deadline.cancelled_chunks > 0 && deadline.deadline_exceeded > 0,
              "deadlines actually cancelled work");
  ok &= check(cl.stats.shed_subqueries > 0,
              "cluster exec expiry rode the pushback taxonomy");
  ok &= check(cl.stats.degraded || cl.stats.partial || cl.stats.retries > 0,
              "cluster answer honestly degraded / partial / retried");
  ok &= check(cl.counters_present && cl.deadline_exceeded > 0.0,
              "robustness counters exported and non-zero where chaos hit");

  if (!metrics_json_path.empty()) {
    std::FILE* f = metrics_json_path == "-"
                       ? stdout
                       : std::fopen(metrics_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   metrics_json_path.c_str());
      return 2;
    }
    std::fprintf(f, "%s\n", cl.metrics_json.c_str());
    if (f != stdout) std::fclose(f);
  }
  return ok ? 0 : 1;
}
