// Chaos/failover demo (fault model, DESIGN.md "Fault model & degraded
// operation").
//
// A breaking-news burst is mid-flight when the node owning the hot
// partition crashes.  With successor failover enabled the front-end times
// out, marks the owner suspect, and reroutes every later attempt to the
// ring successor, which re-scans the partition from durable storage —
// results stay complete, only latency degrades.  With failover disabled
// the same crash surfaces as honest partial results instead of a hang.
// After the restart (and once the suspicion TTL lapses) a re-warm query
// lands on the recovered, cold owner and completes normally.
//
//   ./build/examples/chaos_failover

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "geo/geohash.hpp"
#include "obs/trace.hpp"
#include "workload/workload.hpp"

using namespace stash;
using cluster::ClusterConfig;
using cluster::StashCluster;

namespace {

constexpr sim::SimTime kCrashAt = 5 * sim::kMillisecond;     // into the burst
constexpr sim::SimTime kRestartAt = 150 * sim::kMillisecond;

struct RunResult {
  std::vector<cluster::QueryStats> stats;
  cluster::ClusterMetrics metrics;
  cluster::QueryStats rewarm;
  std::size_t rewarm_cells = 0;
  /// Rendered span tree of the most-degraded burst query (obs/trace.hpp):
  /// the timeout/retry/failover story, attempt by attempt, on the sim clock.
  std::string degraded_trace;
};

RunResult run(bool failover, NodeId victim,
              const std::vector<AggregationQuery>& burst) {
  ClusterConfig config;
  config.num_nodes = 32;
  config.stash.hotspot_queue_threshold = 40;
  config.stash.reroute_probability = 0.6;
  config.subquery_timeout = 20 * sim::kMillisecond;
  config.retry_backoff = 2 * sim::kMillisecond;
  config.suspect_ttl = 100 * sim::kMillisecond;
  config.failover_to_successor = failover;
  if (!failover) config.subquery_max_attempts = 2;
  // The default ring (256) would evict the interesting early-burst traces
  // before we get to render one.
  config.trace_capacity = 1024;

  StashCluster cluster(config, std::make_shared<const NamGenerator>());
  // Warm the region before the chaos starts.
  AggregationQuery warm = burst.front();
  warm.area = warm.area.scaled(16.0);
  cluster.run_query(warm);

  // Script the outage relative to the burst: down 5 ms in, back (cold,
  // caches wiped) at 150 ms.
  cluster.loop().schedule(kCrashAt, [&] { cluster.crash_node(victim); });
  cluster.loop().schedule(kRestartAt, [&] { cluster.restart_node(victim); });

  RunResult out;
  out.stats = cluster.run_open_loop(burst, 12 /*us between arrivals*/);
  // The restart and the suspicion TTL have both lapsed by now; re-warm the
  // region on the recovered owner.
  CellSummaryMap cells;
  out.rewarm = cluster.run_query(warm, &cells);
  out.rewarm_cells = cells.size();
  out.metrics = cluster.metrics();
  // Render the burst query that suffered the most retries + failovers —
  // its span tree shows the timed-out attempts and where they went next.
  const cluster::QueryStats* worst_hit = nullptr;
  for (const auto& s : out.stats)
    if (s.retries + s.failovers > 0 &&
        (worst_hit == nullptr ||
         s.retries + s.failovers > worst_hit->retries + worst_hit->failovers))
      worst_hit = &s;
  if (worst_hit != nullptr) {
    if (const auto trace = cluster.trace(worst_hit->query_id))
      out.degraded_trace = obs::render_tree(*trace);
  }
  return out;
}

void report(const char* label, const RunResult& r) {
  std::size_t partial = 0, failed = 0;
  sim::SimTime worst = 0;
  for (const auto& s : r.stats) {
    partial += s.partial ? 1u : 0u;
    failed += s.failed_subqueries;
    worst = std::max(worst, s.latency());
  }
  const auto& m = r.metrics;
  std::printf("%s\n", label);
  std::printf("  crashes / restarts:    %llu / %llu\n",
              static_cast<unsigned long long>(m.node_crashes),
              static_cast<unsigned long long>(m.node_restarts));
  std::printf("  timeouts fired:        %llu\n",
              static_cast<unsigned long long>(m.timeouts_fired));
  std::printf("  subquery retries:      %llu\n",
              static_cast<unsigned long long>(m.subquery_retries));
  std::printf("  successor failovers:   %llu\n",
              static_cast<unsigned long long>(m.failovers));
  std::printf("  partial queries:       %zu of %zu (%zu dead subqueries)\n",
              partial, r.stats.size(), failed);
  std::printf("  worst query latency:   %.1f ms\n", sim::to_millis(worst));
  std::printf("  re-warm after restart: %zu cells, partial=%s, retries=%llu\n",
              r.rewarm_cells, r.rewarm.partial ? "yes" : "no",
              static_cast<unsigned long long>(r.rewarm.retries));
  if (!r.degraded_trace.empty()) {
    std::printf("  most-degraded query's span tree:\n");
    std::printf("%s", r.degraded_trace.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  workload::WorkloadGenerator wl;
  const auto burst = wl.hotspot_burst(workload::QueryGroup::County, 600, 0.1);

  const ClusterConfig probe;
  const ZeroHopDht dht(32, probe.partition_prefix_length);
  const NodeId victim =
      dht.node_for_partition(geohash::covering(burst.front().area, 2).front());

  std::printf("firing %zu county requests; node %u (owner of the hot "
              "partition) crashes %.0f ms into the burst and restarts cold "
              "at %.0f ms\n\n",
              burst.size(), victim, sim::to_millis(kCrashAt),
              sim::to_millis(kRestartAt));

  report("with successor failover (default):", run(true, victim, burst));
  report("failover disabled, 2 attempts (honest partial results):",
         run(false, victim, burst));
  return 0;
}
