// Hotspot autoscaling demo (paper §VII, Fig 5 & 6d).
//
// A breaking-news scenario: hundreds of users suddenly explore the same
// county.  The owning node's queue blows past the threshold, it selects
// its hottest Cliques, finds a helper at the geohash antipode, replicates,
// and probabilistically reroutes — watch the protocol fire and the burst
// finish earlier than without replication.
//
//   ./build/examples/hotspot_autoscaling

#include <algorithm>
#include <cstdio>
#include <map>

#include "cluster/cluster.hpp"
#include "workload/workload.hpp"

using namespace stash;
using cluster::ClusterConfig;
using cluster::StashCluster;
using cluster::SystemMode;

namespace {

ClusterConfig make_config(SystemMode mode) {
  ClusterConfig config;
  config.num_nodes = 32;
  config.mode = mode;
  config.stash.hotspot_queue_threshold = 40;
  config.stash.reroute_probability = 0.6;
  return config;
}

struct RunResult {
  std::vector<cluster::QueryStats> stats;
  cluster::ClusterMetrics metrics;
  sim::SimTime makespan = 0;
};

RunResult run(SystemMode mode, const std::vector<AggregationQuery>& burst) {
  auto generator = std::make_shared<const NamGenerator>();
  StashCluster cluster(make_config(mode), generator);
  // Warm the region (the hotspot forms over data users were already
  // looking at).
  AggregationQuery warmup = burst.front();
  warmup.area = warmup.area.scaled(16.0);
  cluster.run_query(warmup);

  RunResult out;
  out.stats = cluster.run_open_loop(burst, 12 /*us between arrivals*/);
  out.metrics = cluster.metrics();
  for (const auto& s : out.stats)
    out.makespan = std::max(out.makespan, s.completed_at);
  return out;
}

}  // namespace

int main() {
  workload::WorkloadGenerator wl;
  const auto burst = wl.hotspot_burst(workload::QueryGroup::County, 800, 0.1);

  std::printf("firing %zu county-level requests panning around one point...\n\n",
              burst.size());
  const RunResult with = run(SystemMode::Stash, burst);
  const RunResult without = run(SystemMode::StashNoReplication, burst);

  std::printf("protocol activity (with dynamic replication):\n");
  std::printf("  handoffs initiated:   %llu\n",
              static_cast<unsigned long long>(with.metrics.handoffs_initiated));
  std::printf("  cliques replicated:   %llu (%llu cells)\n",
              static_cast<unsigned long long>(with.metrics.cliques_replicated),
              static_cast<unsigned long long>(with.metrics.cells_replicated));
  std::printf("  distress rejections:  %llu\n",
              static_cast<unsigned long long>(with.metrics.distress_rejections));
  std::printf("  rerouted subqueries:  %llu\n",
              static_cast<unsigned long long>(with.metrics.reroutes));
  std::printf("  guest fallbacks:      %llu\n\n",
              static_cast<unsigned long long>(with.metrics.guest_fallbacks));

  // Responses per 10ms window, like Fig 6d's responses-per-second series.
  const sim::SimTime window = 10 * sim::kMillisecond;
  std::map<sim::SimTime, std::size_t> with_hist;
  std::map<sim::SimTime, std::size_t> without_hist;
  for (const auto& s : with.stats) ++with_hist[s.completed_at / window];
  for (const auto& s : without.stats) ++without_hist[s.completed_at / window];
  const sim::SimTime last = std::max(with.makespan, without.makespan) / window;

  std::printf("responses completed per %lldms window:\n",
              static_cast<long long>(window / sim::kMillisecond));
  std::printf("%8s %14s %14s\n", "t(ms)", "replication", "no-replication");
  for (sim::SimTime w = 0; w <= last; ++w) {
    std::printf("%8lld %14zu %14zu\n",
                static_cast<long long>(w * window / sim::kMillisecond),
                with_hist.count(w) ? with_hist[w] : 0,
                without_hist.count(w) ? without_hist[w] : 0);
  }

  std::printf("\nmakespan: %.1f ms with replication vs %.1f ms without "
              "(%.0f%% sooner)\n",
              sim::to_millis(with.makespan), sim::to_millis(without.makespan),
              100.0 * (1.0 - static_cast<double>(with.makespan) /
                                 static_cast<double>(without.makespan)));
  return 0;
}
