// Partition-tolerance demo (DESIGN.md "Partition tolerance & recovery").
//
// A scripted 2-way split cuts three nodes — including one partition owner
// that also crashes and restarts cold mid-split — away from the
// scatter/gather front-end for two simulated seconds.  Gossip membership
// converges on the split, mid-split queries fail over to ring successors
// or degrade to cached ancestors, and after the heal the anti-entropy
// exchange re-warms the cut-off side from the replica holders that served
// its partitions meanwhile.  The same scenario runs twice, with recovery
// on and off, so the re-warm benefit is measured against a cold baseline.
//
// The run self-checks its acceptance criteria and exits non-zero on
// failure, so CI can use it as a partition soak:
//   1. every mid-split query completes within its deadline (zero hangs)
//      and reports full coverage (failover / degraded, never silent);
//   2. the split was real: the injector activated it and the front-end
//      had to fail over or coarsen at least once;
//   3. after the heal the views converge (nobody believes anybody dead)
//      and the hierarchy audit passes on every node;
//   4. anti-entropy engaged: digests exchanged, chunks pulled back;
//   5. the post-heal probe's storage fetches land measurably below the
//      recovery-off cold baseline.
//
//   ./build/examples/chaos_partition [--metrics-json FILE]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"
#include "geo/geohash.hpp"
#include "obs/metrics.hpp"

using namespace stash;
using cluster::ClusterConfig;
using cluster::StashCluster;

namespace {

constexpr std::uint32_t kNodes = 16;
constexpr std::size_t kMidSplitQueries = 20;
constexpr sim::SimTime kDeadline = 1 * sim::kSecond;
constexpr sim::SimTime kSplitAt = 10 * sim::kSecond;
constexpr sim::SimTime kHealAt = 12 * sim::kSecond;
constexpr sim::SimTime kQuiescent = 16 * sim::kSecond;

struct Scenario {
  AggregationQuery query;
  std::vector<std::string> partitions;  // gh2 partitions the query touches
  NodeId victim = 0;
  std::vector<std::uint32_t> minority, majority;
};

Scenario make_scenario() {
  Scenario s;
  s.query = {{38.0, 38.6, -99.0, -97.8},
             {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
             {6, TemporalRes::Day}};
  s.query.area = s.query.area.scaled(16.0);
  s.partitions = geohash::covering(s.query.area, 2);

  const ClusterConfig probe;
  const ZeroHopDht dht(kNodes, probe.partition_prefix_length);
  s.victim = dht.node_for_partition(s.partitions.front());
  // The cut-off side: the victim plus two more nodes.  The front-end stays
  // with the majority, so the victim's partitions need failover.
  s.minority = {s.victim, (s.victim + 1) % kNodes, (s.victim + 5) % kNodes};
  s.majority = {sim::kFrontendNode};
  for (std::uint32_t id = 0; id < kNodes; ++id)
    if (std::find(s.minority.begin(), s.minority.end(), id) ==
        s.minority.end())
      s.majority.push_back(id);
  return s;
}

ClusterConfig base_config(const Scenario& s, bool recovery) {
  ClusterConfig config;
  config.num_nodes = kNodes;
  config.subquery_timeout = 50 * sim::kMillisecond;
  config.retry_backoff = 5 * sim::kMillisecond;
  config.suspect_ttl = 200 * sim::kMillisecond;
  config.query_deadline = kDeadline;
  config.recovery = recovery;
  // Gossip timers scaled to the scenario: detection within ~100 ms.
  config.membership.probe_interval = 50 * sim::kMillisecond;
  config.membership.probe_timeout = 5 * sim::kMillisecond;
  config.membership.suspicion_timeout = 100 * sim::kMillisecond;
  config.fault_plan.seed = 1;
  config.fault_plan.partitions.push_back(
      {.groups = {s.majority, s.minority}, .at = kSplitAt, .heal_at = kHealAt});
  // The worst case anti-entropy has to repair: a minority owner crashes
  // mid-split and restarts cold while still cut off from the majority.
  config.fault_plan.crashes.push_back({.node = s.victim,
                                       .at = 10200 * sim::kMillisecond,
                                       .restart_at = 11 * sim::kSecond});
  return config;
}

struct RunResult {
  cluster::QueryStats warm;
  std::vector<cluster::QueryStats> during;
  cluster::QueryStats probe;           // post-heal, post-quiescence
  cluster::ClusterMetrics metrics;     // sampled at quiescence
  bool converged = false;              // no observer believes anyone dead
  bool audit_ok = false;
  std::string metrics_json;
};

RunResult run(const Scenario& s, bool recovery) {
  StashCluster cluster(base_config(s, recovery),
                       std::make_shared<const NamGenerator>());

  // The scripted fault events are foreground work, so one run() drains
  // warm-up, split, mid-split traffic, crash/restart, heal, and the
  // anti-entropy exchange in virtual-time order.
  RunResult out;
  cluster.loop().schedule_at(0, [&] {
    cluster.submit(s.query,
                   [&](const cluster::QueryStats& st) { out.warm = st; });
  });
  for (std::size_t i = 0; i < kMidSplitQueries; ++i)
    cluster.loop().schedule_at(
        10050 * sim::kMillisecond +
            static_cast<sim::SimTime>(i) * 20 * sim::kMillisecond,
        [&] {
          cluster.submit(s.query, [&](const cluster::QueryStats& st) {
            out.during.push_back(st);
          });
        });
  cluster.loop().run();
  cluster.loop().run_until(kQuiescent);  // gossip + breaker quiescence

  out.metrics = cluster.metrics();
  out.converged = true;
  const auto& membership = cluster.membership();
  for (std::uint32_t member = 0; member < kNodes; ++member) {
    if (membership.state(sim::kFrontendNode, member) ==
        cluster::MemberState::kDead)
      out.converged = false;
    for (std::uint32_t observer = 0; observer < kNodes; ++observer)
      if (membership.state(observer, member) == cluster::MemberState::kDead)
        out.converged = false;
  }
  out.audit_ok = cluster.audit_all().ok();

  out.probe = cluster.run_query(s.query);
  out.metrics_json = obs::to_json(cluster.metrics_registry().snapshot(),
                                  cluster.loop().now());
  return out;
}

void report(const char* label, const RunResult& r) {
  const auto& m = r.metrics;
  std::vector<sim::SimTime> lat;
  std::size_t exact = 0, degraded = 0, partial = 0;
  for (const auto& st : r.during) {
    lat.push_back(st.latency());
    if (st.partial) ++partial;
    else if (st.degraded) ++degraded;
    else ++exact;
  }
  std::sort(lat.begin(), lat.end());
  std::printf("%s\n", label);
  std::printf("  mid-split latency p50 / max: %8.2f / %8.2f ms\n",
              sim::to_millis(lat[lat.size() / 2]),
              sim::to_millis(lat.back()));
  std::printf("  mid-split exact / degraded / partial: %zu / %zu / %zu\n",
              exact, degraded, partial);
  std::printf("  failovers / retries:    %llu / %llu\n",
              static_cast<unsigned long long>(m.failovers),
              static_cast<unsigned long long>(m.subquery_retries));
  std::printf("  gossip probes / false suspicions: %llu / %llu\n",
              static_cast<unsigned long long>(m.gossip_probes),
              static_cast<unsigned long long>(m.false_suspicions));
  std::printf("  partitions observed, recoveries:  %llu, %llu\n",
              static_cast<unsigned long long>(m.partitions_observed),
              static_cast<unsigned long long>(m.recoveries));
  std::printf("  digests exchanged, chunks / cells re-warmed: "
              "%llu, %llu / %llu\n",
              static_cast<unsigned long long>(m.digests_exchanged),
              static_cast<unsigned long long>(m.chunks_rewarmed),
              static_cast<unsigned long long>(m.cells_rewarmed));
  std::printf("  post-heal probe storage chunks scanned: %zu\n",
              r.probe.breakdown.chunks_scanned);
  std::printf("\n");
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc)
      metrics_json_path = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--metrics-json FILE]\n", argv[0]);
      return 2;
    }
  }

  const Scenario scenario = make_scenario();
  std::printf("2-way split %.1fs..%.1fs: nodes {%u, %u, %u} cut off from the "
              "front-end; node %u crashes at 10.2s, restarts cold at 11.0s; "
              "%zu wide queries (%zu gh2 partitions) cross the split\n\n",
              sim::to_millis(kSplitAt) / 1000.0,
              sim::to_millis(kHealAt) / 1000.0, scenario.minority[0],
              scenario.minority[1], scenario.minority[2], scenario.victim,
              kMidSplitQueries, scenario.partitions.size());

  const RunResult on = run(scenario, /*recovery=*/true);
  report("anti-entropy recovery on:", on);
  const RunResult off = run(scenario, /*recovery=*/false);
  report("recovery off (cold baseline):", off);

  std::printf("acceptance checks (recovery on):\n");
  bool ok = true;
  bool hangs = on.during.size() != kMidSplitQueries;
  bool covered = on.during.size() == kMidSplitQueries;
  for (const auto& st : on.during) {
    if (st.deadline == 0 || st.completed_at > st.deadline) hangs = true;
    if (st.coverage.size() != scenario.partitions.size()) covered = false;
  }
  ok &= check(!hangs, "every mid-split query completes within its deadline");
  ok &= check(covered, "every mid-split query reports full coverage");
  std::size_t not_exact = 0;
  for (const auto& st : on.during)
    if (st.partial || st.degraded) ++not_exact;
  ok &= check(on.metrics.partitions_observed == 1 &&
                  (on.metrics.failovers > 0 || not_exact > 0),
              "the split activated and actually bit (failover or coarsen)");
  ok &= check(on.converged && on.audit_ok,
              "views converge after the heal and the hierarchy audit passes");
  ok &= check(on.metrics.recoveries > 0 && on.metrics.digests_exchanged > 0 &&
                  on.metrics.chunks_rewarmed > 0,
              "anti-entropy exchanged digests and pulled chunks back");
  ok &= check(off.metrics.chunks_rewarmed == 0 &&
                  off.probe.breakdown.chunks_scanned > 0,
              "cold baseline re-scans storage after the heal");
  ok &= check(on.probe.breakdown.chunks_scanned <
                  off.probe.breakdown.chunks_scanned,
              "re-warmed probe fetches below the cold-restart baseline");

  if (!metrics_json_path.empty()) {
    std::FILE* f = metrics_json_path == "-"
                       ? stdout
                       : std::fopen(metrics_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   metrics_json_path.c_str());
      return 2;
    }
    std::fprintf(f, "%s\n", on.metrics_json.c_str());
    if (f != stdout) std::fclose(f);
  }
  return ok ? 0 : 1;
}
