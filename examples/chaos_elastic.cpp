// Elastic membership chaos soak (DESIGN.md "Elastic membership").
//
// A 4-node cluster doubles to 8 while a Zipf-skewed county workload is in
// flight: scripted joins land mid-burst, the ring watcher advances the
// epoch once gossip stabilizes, and every moved partition is pulled warm
// from its old owner while that owner keeps serving — queries race the
// handoff flips the whole way.  Three variants run back to back:
//
//   steady      scale-out with no adversity;
//   crash       one joiner dies 1ms after the epoch advance, while its
//               inbound transfers are provably in flight — the join must
//               revert, old owners keep serving, and the next epoch drops
//               the corpse;
//   partition   one joiner is cut off mid-transfer and heals later — the
//               transfer deadline/retry budget must bound the stall and
//               flip the partition cold rather than wedge routing.
//
// Each variant self-checks its acceptance criteria and the binary exits
// non-zero on any failure, so CI uses it as the elastic soak lane:
//   1. every racing query is answered byte-equal to a fixed-size control
//      cluster or honestly flagged partial/degraded — never silently wrong;
//   2. the rebalance engaged (epochs advanced, partitions moved) and the
//      epoch counter agrees with the installed ring;
//   3. after quiescence no partition is lost or double-owned: the serving
//      owner of all 1024 partitions sits on the installed ring and no
//      handoff is left in flight;
//   4. the hierarchy/routing/ring audit passes on every node;
//   5. goodput recovers: the post-rebalance probe is exact, and in the
//      steady variant answered warm (the handoff actually shipped state).
//
//   ./build/examples/chaos_elastic [--seed N] [--metrics-json FILE]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "dht/partitioner.hpp"
#include "obs/metrics.hpp"
#include "workload/workload.hpp"

using namespace stash;
using cluster::ClusterConfig;
using cluster::StashCluster;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint32_t kMaxNodes = 8;
constexpr std::size_t kQueries = 80;
constexpr sim::SimTime kLoadStart = 1 * sim::kSecond;
constexpr sim::SimTime kLoadGap = 25 * sim::kMillisecond;
constexpr sim::SimTime kJoinAt = 1200 * sim::kMillisecond;
// The ring watcher ticks at 50ms multiples and the join lands exactly on
// the 1.2s tick, so the stability clock starts at 1.2s and the epoch
// admitting the joiners advances at exactly 1.35s (1.2s + the 150ms
// stabilize window).  Its transfer chains (several 250µs hops each,
// payload-sized) are in flight for milliseconds after, so faults 1ms past
// the advance are provably mid-transfer — the sim is deterministic, not
// racy.
constexpr sim::SimTime kAdvanceAt = 1350 * sim::kMillisecond;
constexpr sim::SimTime kCrashAt = kAdvanceAt + 1 * sim::kMillisecond;
constexpr sim::SimTime kCutAt = kAdvanceAt + 1 * sim::kMillisecond;
constexpr sim::SimTime kHealAt = 2500 * sim::kMillisecond;

enum class Variant { kSteady, kCrash, kPartition };

const char* name_of(Variant v) {
  switch (v) {
    case Variant::kSteady: return "steady";
    case Variant::kCrash: return "crash";
    case Variant::kPartition: return "partition";
  }
  return "?";
}

ClusterConfig make_config(Variant variant, std::uint64_t seed) {
  ClusterConfig config;
  config.num_nodes = kNodes;
  config.max_nodes = kMaxNodes;
  config.subquery_timeout = 50 * sim::kMillisecond;
  config.retry_backoff = 5 * sim::kMillisecond;
  config.query_deadline = 1 * sim::kSecond;
  config.membership.probe_interval = 50 * sim::kMillisecond;
  config.membership.probe_timeout = 5 * sim::kMillisecond;
  config.membership.suspicion_timeout = 100 * sim::kMillisecond;
  config.ring_check_interval = 50 * sim::kMillisecond;
  config.ring_stabilize_delay = 150 * sim::kMillisecond;
  config.rebalance_transfer_deadline = 400 * sim::kMillisecond;
  config.fault_plan.seed = seed;
  for (std::uint32_t id = kNodes; id < kMaxNodes; ++id)
    config.fault_plan.joins.push_back({.node = id, .at = kJoinAt});
  switch (variant) {
    case Variant::kSteady:
      break;
    case Variant::kCrash:
      // Joiner 4 dies 1ms after the epoch advance, while its inbound
      // transfers are still in flight: the revert path, not established-
      // member failover.
      config.fault_plan.crashes.push_back({.node = 4, .at = kCrashAt});
      break;
    case Variant::kPartition: {
      std::vector<std::uint32_t> rest = {sim::kFrontendNode};
      for (std::uint32_t id = 0; id < kMaxNodes; ++id)
        if (id != 5) rest.push_back(id);
      config.fault_plan.partitions.push_back(
          {.groups = {{5}, rest}, .at = kCutAt, .heal_at = kHealAt});
      break;
    }
  }
  return config;
}

struct RunResult {
  std::vector<cluster::QueryStats> stats;  // racing queries, arrival order
  cluster::QueryStats probe;               // post-quiescence
  cluster::ClusterMetrics metrics;
  RingView ring;
  std::uint32_t total_slots = 0;
  bool stable = false;
  bool drained = false;  // no handoff left in flight
  bool owners_on_ring = true;
  bool audit_ok = false;
  std::string metrics_json;
};

RunResult run(Variant variant, std::uint64_t seed,
              const std::vector<AggregationQuery>& load) {
  StashCluster cluster(make_config(variant, seed),
                       std::make_shared<const NamGenerator>());

  // Warm the initial owners, then fire the Zipf burst across the resize.
  RunResult out;
  out.stats.resize(load.size());
  cluster.loop().schedule_at(0, [&] {
    AggregationQuery warm = load.front();
    warm.area = warm.area.scaled(16.0);
    cluster.submit(warm, [](const cluster::QueryStats&) {});
  });
  for (std::size_t i = 0; i < load.size(); ++i)
    cluster.loop().schedule_at(
        kLoadStart + static_cast<sim::SimTime>(i) * kLoadGap, [&, i] {
          cluster.submit(load[i], [&, i](const cluster::QueryStats& st) {
            out.stats[i] = st;
          });
        });
  cluster.loop().run();
  out.stable = cluster.run_until_stable(60 * sim::kSecond);
  out.drained = !cluster.rebalance_in_progress();

  out.ring = cluster.ring();
  out.total_slots = cluster.total_slots();
  ZeroHopDht keyspace(1, 2);
  for (const auto& partition : keyspace.all_partitions())
    if (!out.ring.contains(cluster.serving_owner(partition)))
      out.owners_on_ring = false;
  out.audit_ok = cluster.audit_all().ok();
  out.probe = cluster.run_query(load.front());
  out.metrics = cluster.metrics();
  out.metrics_json = obs::to_json(cluster.metrics_registry().snapshot(),
                                  cluster.loop().now());
  return out;
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

bool verify(Variant variant, const RunResult& r,
            const std::vector<std::size_t>& control) {
  const auto& m = r.metrics;
  std::size_t exact = 0, flagged = 0, wrong = 0, unanswered = 0;
  for (std::size_t i = 0; i < r.stats.size(); ++i) {
    const auto& st = r.stats[i];
    if (st.completed_at == 0) {
      ++unanswered;
    } else if (st.partial || st.degraded) {
      ++flagged;  // honest: the answer says it is not the oracle's
    } else if (st.result_cells == control[i]) {
      ++exact;
    } else {
      ++wrong;
    }
  }
  std::printf("%s: %zu exact / %zu flagged / %zu wrong / %zu unanswered; "
              "epoch=%llu members=%zu moved=%llu aborted=%llu reverts=%llu\n",
              name_of(variant), exact, flagged, wrong, unanswered,
              static_cast<unsigned long long>(r.ring.epoch),
              r.ring.members.size(),
              static_cast<unsigned long long>(m.rebalance_partitions_moved),
              static_cast<unsigned long long>(m.rebalance_transfers_aborted),
              static_cast<unsigned long long>(m.rebalance_ownership_reverts));

  bool ok = true;
  ok &= check(unanswered == 0 && wrong == 0,
              "every racing query answered, byte-equal or honestly flagged");
  ok &= check(m.rebalance_epoch_advances >= 1 &&
                  m.rebalance_partitions_moved > 0,
              "the rebalance engaged (epochs advanced, partitions moved)");
  ok &= check(m.rebalance_epoch_advances == r.ring.epoch,
              "epoch counter agrees with the installed ring");
  ok &= check(r.stable && r.drained,
              "rebalance quiesced inside the deadline, no handoff in flight");
  ok &= check(r.owners_on_ring,
              "all 1024 partitions served from the ring (none lost/orphaned)");
  ok &= check(r.audit_ok, "hierarchy/routing/ring audit passes everywhere");
  ok &= check(!r.probe.partial && !r.probe.degraded,
              "post-rebalance probe is exact (goodput recovered)");
  switch (variant) {
    case Variant::kSteady:
      ok &= check(r.ring.members.size() == kMaxNodes,
                  "all four standbys admitted");
      ok &= check(exact == r.stats.size(),
                  "no adversity: every racing answer is exact");
      ok &= check(m.rebalance_transfers_aborted == 0 &&
                      m.rebalance_ownership_reverts == 0,
                  "no aborts or reverts without adversity");
      ok &= check(r.probe.breakdown.chunks_from_cache > 0,
                  "post-rebalance probe answered warm (state was shipped)");
      break;
    case Variant::kCrash:
      ok &= check(!r.ring.contains(4),
                  "the next epoch dropped the crashed joiner");
      ok &= check(m.rebalance_ownership_reverts > 0,
                  "in-flight moves onto the corpse were reverted");
      break;
    case Variant::kPartition:
      ok &= check(r.ring.members.size() == kMaxNodes,
                  "the cut joiner is admitted once the partition heals");
      ok &= check(m.rebalance_transfers_aborted > 0,
                  "stalled transfers hit the deadline/retry budget");
      break;
  }
  std::printf("\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::string metrics_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--seed N] [--metrics-json FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  workload::WorkloadConfig wl_config;
  wl_config.seed = seed;
  workload::WorkloadGenerator wl(wl_config);
  const auto load =
      wl.zipf_workload(workload::QueryGroup::County, 16, kQueries, 0.9);

  // Control answers from a fixed-size cluster over the same generative
  // store: what every elastic answer must be byte-equal to.
  std::vector<std::size_t> control;
  {
    ClusterConfig config;
    config.num_nodes = kNodes;
    config.mode = cluster::SystemMode::Basic;
    StashCluster oracle(config, std::make_shared<const NamGenerator>());
    control.reserve(load.size());
    for (const auto& q : load)
      control.push_back(oracle.run_query(q).result_cells);
  }

  std::printf("scaling %u -> %u nodes at %.1fs under %zu Zipf county queries "
              "(seed %llu); variants: steady, joiner-crash at %.1fs, "
              "joiner cut %.2fs..%.1fs\n\n",
              kNodes, kMaxNodes, sim::to_millis(kJoinAt) / 1000.0, kQueries,
              static_cast<unsigned long long>(seed),
              sim::to_millis(kCrashAt) / 1000.0,
              sim::to_millis(kCutAt) / 1000.0,
              sim::to_millis(kHealAt) / 1000.0);

  bool ok = true;
  std::string steady_json;
  for (const Variant variant :
       {Variant::kSteady, Variant::kCrash, Variant::kPartition}) {
    const RunResult r = run(variant, seed, load);
    if (variant == Variant::kSteady) steady_json = r.metrics_json;
    ok &= verify(variant, r, control);
  }

  if (!metrics_json_path.empty()) {
    std::FILE* f = metrics_json_path == "-"
                       ? stdout
                       : std::fopen(metrics_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   metrics_json_path.c_str());
      return 2;
    }
    std::fprintf(f, "%s\n", steady_json.c_str());
    if (f != stdout) std::fclose(f);
  }
  std::printf("%s\n", ok ? "ELASTIC SOAK PASS" : "ELASTIC SOAK FAIL");
  return ok ? 0 : 1;
}
