// stashctl — ad-hoc aggregation queries against a simulated STASH cluster.
//
// Usage:
//   stashctl [options] <lat_min> <lat_max> <lng_min> <lng_max>
//     --date YYYY-MM-DD     query day            (default 2015-02-02)
//     --sres N              spatial resolution   (default 6)
//     --tres hour|day|month temporal resolution  (default day)
//     --nodes N             cluster size         (default 32)
//     --mode stash|basic    system mode          (default stash)
//     --repeat N            issue the query N times (default 2: cold+warm)
//     --json                print the JSON payload of the last run
//
// Example:
//   ./build/examples/stashctl 36 40 -102 -94 --repeat 3 --json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "client/visual_client.hpp"
#include "common/civil_time.hpp"

using namespace stash;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--date YYYY-MM-DD] [--sres N] "
               "[--tres hour|day|month] [--nodes N] [--mode stash|basic] "
               "[--repeat N] [--json] <lat_min> <lat_max> <lng_min> <lng_max>\n",
               argv0);
  std::exit(2);
}

bool parse_date(const std::string& text, CivilDate* out) {
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') return false;
  out->year = std::atoi(text.substr(0, 4).c_str());
  out->month = std::atoi(text.substr(5, 2).c_str());
  out->day = std::atoi(text.substr(8, 2).c_str());
  return out->month >= 1 && out->month <= 12 && out->day >= 1 &&
         out->day <= days_in_month(out->year, out->month);
}

}  // namespace

int main(int argc, char** argv) {
  CivilDate date{2015, 2, 2};
  int sres = 6;
  TemporalRes tres = TemporalRes::Day;
  std::uint32_t nodes = 32;
  cluster::SystemMode mode = cluster::SystemMode::Stash;
  int repeat = 2;
  bool json = false;
  std::vector<double> coords;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--date") {
      if (!parse_date(next(), &date)) usage(argv[0]);
    } else if (arg == "--sres") {
      sres = std::atoi(next().c_str());
    } else if (arg == "--tres") {
      const std::string t = next();
      if (t == "hour") tres = TemporalRes::Hour;
      else if (t == "day") tres = TemporalRes::Day;
      else if (t == "month") tres = TemporalRes::Month;
      else usage(argv[0]);
    } else if (arg == "--nodes") {
      nodes = static_cast<std::uint32_t>(std::atoi(next().c_str()));
    } else if (arg == "--mode") {
      const std::string m = next();
      if (m == "stash") mode = cluster::SystemMode::Stash;
      else if (m == "basic") mode = cluster::SystemMode::Basic;
      else usage(argv[0]);
    } else if (arg == "--repeat") {
      repeat = std::atoi(next().c_str());
    } else if (arg == "--json") {
      json = true;
    } else if (!arg.empty() && (std::isdigit(arg[0]) || arg[0] == '-')) {
      coords.push_back(std::atof(arg.c_str()));
    } else {
      usage(argv[0]);
    }
  }
  if (coords.size() != 4 || sres < 2 || sres > 12 || repeat < 1 || nodes < 1)
    usage(argv[0]);

  const AggregationQuery query{
      {coords[0], coords[1], coords[2], coords[3]},
      {unix_seconds(date), unix_seconds(date) + 86400},
      {sres, tres}};
  if (!query.valid()) usage(argv[0]);

  cluster::ClusterConfig config;
  config.num_nodes = nodes;
  config.mode = mode;
  cluster::StashCluster cluster(config, std::make_shared<const NamGenerator>());
  client::VisualClient client(cluster);
  client.set_view(query);

  std::printf("query %s on %s at %s over %u nodes (%s)\n",
              query.area.to_string().c_str(),
              TemporalBin(TemporalRes::Day, date.year, date.month, date.day)
                  .label()
                  .c_str(),
              query.res.to_string().c_str(), nodes,
              mode == cluster::SystemMode::Stash ? "STASH" : "basic");

  client::ViewResult last;
  for (int r = 0; r < repeat; ++r) {
    last = client.refresh();
    std::printf("  run %d: %5zu cells in %8.2f ms  (cache=%zu synth=%zu "
                "disk=%zu chunks)\n",
                r + 1, last.cells.size(),
                sim::to_millis(last.stats.latency()),
                last.stats.breakdown.chunks_from_cache,
                last.stats.breakdown.chunks_synthesized,
                last.stats.breakdown.chunks_scanned);
  }
  if (json)
    std::printf("%s\n", client::VisualClient::to_json(last, 10).c_str());
  return 0;
}
