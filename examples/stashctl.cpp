// stashctl — ad-hoc aggregation queries against a simulated STASH cluster.
//
// Usage:
//   stashctl [options] <lat_min> <lat_max> <lng_min> <lng_max>
//     --date YYYY-MM-DD     query day            (default 2015-02-02)
//     --sres N              spatial resolution   (default 6)
//     --tres hour|day|month temporal resolution  (default day)
//     --nodes N             cluster size         (default 32)
//     --mode stash|basic    system mode          (default stash)
//     --repeat N            issue the query N times (default 2: cold+warm)
//     --json                print the JSON payload of the last run
//     --crash N@MS[:MS]     crash node N at MS ms (optionally restart at :MS);
//                           repeatable
//     --drop P              drop each message with probability P
//     --bitflip-rate P      flip one random bit in each wire frame with
//                           probability P (receivers detect by checksum,
//                           redeliver, and poison after the budget)
//     --bitrot GH2[@MS]     rot the storage block (partition GH2, query day)
//                           at MS ms (default 0); repeatable.  Scans detect
//                           and quarantine it; the scrubber repairs it
//     --scrub-ms MS         background scrubber period (0 = off, default);
//                           each tick verifies blocks, repairs quarantine,
//                           and walks one node's replica digests
//     --partition A|B       split the network into groups from time 0; each
//                           group is a comma list of node ids, "fe" = the
//                           scatter/gather front-end (e.g. fe,0,1|2,3)
//     --heal-ms MS          heal the partition at MS ms (default: never)
//     --recovery            run anti-entropy re-warming after restarts and
//     --no-recovery         heals (default on); off leaves rejoiners cold
//     --no-failover         disable successor failover (degrade to partial)
//     --queue-limit N       bound each node's pending queue (0 = unbounded);
//                           a full queue sheds work with explicit pushback
//     --threads N           answer queries on N wall-clock worker threads
//                           per node (0 = sim-only, the default); answers
//                           are byte-identical to the sim path
//     --deadline-ms MS      per-query deadline; at MS ms the query completes
//                           with whatever has arrived (missing partitions
//                           reported honestly)
//     --exec-deadline-ms MS wall-clock budget per subquery on the worker
//                           pool (needs --threads); an expired subquery is
//                           cancelled cooperatively and rerouted through
//                           the degraded/retry path
//     --chaos-exec SPEC     seeded thread-level fault injection on the
//                           worker pool: delay=P,exc=P,stall=P[,seed=N]
//                           (probabilities per chunk task; needs --threads)
//     --retry-budget N      retry token bucket per query (0 = unlimited);
//                           exact responses refill half a token
//     --scale-out N         after the runs, live-join N standby nodes, wait
//                           for the ring rebalance to settle, and re-run
//                           the query on the grown cluster
//     --scale-in N          after the runs, gracefully decommission the N
//                           highest members (each drains its partitions to
//                           the new owners before leaving)
//     --autoscale           enable the load-driven autoscaler (queue depth
//                           and shed rate with hysteresis); standby slots
//                           default to one per initial node
//     --help                print this usage and exit
//     --audit               after the runs, audit every node's graph, guest
//                           graph and routing table; exit 1 on violations
//     --metrics             print the cluster's metrics in Prometheus text
//                           exposition format after the runs
//     --metrics-json FILE   write the stash-metrics-v1 JSON export to FILE
//                           ("-" for stdout)
//     --trace ID|last       print the span tree of query ID (or of the last
//                           run's query) recorded against the sim clock
//
// Example:
//   ./build/examples/stashctl 36 40 -102 -94 --repeat 3 --json
//   ./build/examples/stashctl 36 40 -102 -94 --crash 7@0:50 --drop 0.01
//   ./build/examples/stashctl 36 40 -102 -94 --repeat 3 --deadline-ms 1000
//       --partition fe,0,1,2,3,4,5,6,7|8,9,10,11,12,13,14,15
//       --heal-ms 40 --recovery
//   ./build/examples/stashctl 36 40 -102 -94 --metrics --trace last

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "client/visual_client.hpp"
#include "common/civil_time.hpp"
#include "exec/fault_hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace stash;

namespace {

[[noreturn]] void usage(const char* argv0, bool requested = false) {
  std::fprintf(requested ? stdout : stderr,
               "usage: %s [--date YYYY-MM-DD] [--sres N] "
               "[--tres hour|day|month] [--nodes N] [--mode stash|basic] "
               "[--repeat N] [--json] [--crash N@MS[:MS]] [--drop P] "
               "[--bitflip-rate P] [--bitrot GH2[@MS]] [--scrub-ms MS] "
               "[--partition A|B] [--heal-ms MS] [--recovery|--no-recovery] "
               "[--no-failover] [--queue-limit N] [--threads N] "
               "[--deadline-ms MS] [--exec-deadline-ms MS] "
               "[--chaos-exec delay=P,exc=P,stall=P[,seed=N]] "
               "[--retry-budget N] [--scale-out N] [--scale-in N] "
               "[--autoscale] [--audit] [--metrics] "
               "[--metrics-json FILE] [--trace ID|last] [--help] "
               "<lat_min> <lat_max> <lng_min> <lng_max>\n",
               argv0);
  std::exit(requested ? 0 : 2);
}

/// "fe,0,1|2,3" -> {{kFrontendNode, 0, 1}, {2, 3}}; empty on malformed.
std::vector<std::vector<std::uint32_t>> parse_partition(
    const std::string& spec) {
  std::vector<std::vector<std::uint32_t>> groups(1);
  std::string token;
  const auto flush = [&]() {
    if (token.empty()) return false;
    if (token == "fe" || token == "f") {
      groups.back().push_back(sim::kFrontendNode);
    } else {
      for (const char c : token)
        if (!std::isdigit(static_cast<unsigned char>(c))) return false;
      groups.back().push_back(
          static_cast<std::uint32_t>(std::atol(token.c_str())));
    }
    token.clear();
    return true;
  };
  for (const char c : spec) {
    if (c == ',') {
      if (!flush()) return {};
    } else if (c == '|') {
      if (!flush()) return {};
      groups.emplace_back();
    } else {
      token.push_back(c);
    }
  }
  if (!flush() || groups.size() < 2) return {};
  return groups;
}

/// "delay=0.2,exc=0.05,stall=0.01[,seed=N]" -> FaultHooks; false when
/// malformed or when no fault rate is set.
bool parse_chaos_exec(const std::string& spec, exec::FaultHooks* out) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (value.empty()) return false;
    if (key == "seed") {
      out->seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else {
      const double p = std::atof(value.c_str());
      if (p < 0.0 || p > 1.0) return false;
      if (key == "delay") out->task_delay_rate = p;
      else if (key == "exc") out->task_exception_rate = p;
      else if (key == "stall") out->worker_stall_rate = p;
      else return false;
    }
    pos = end + 1;
  }
  return out->enabled();
}

bool parse_date(const std::string& text, CivilDate* out) {
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') return false;
  out->year = std::atoi(text.substr(0, 4).c_str());
  out->month = std::atoi(text.substr(5, 2).c_str());
  out->day = std::atoi(text.substr(8, 2).c_str());
  return out->month >= 1 && out->month <= 12 && out->day >= 1 &&
         out->day <= days_in_month(out->year, out->month);
}

}  // namespace

int main(int argc, char** argv) {
  CivilDate date{2015, 2, 2};
  int sres = 6;
  TemporalRes tres = TemporalRes::Day;
  std::uint32_t nodes = 32;
  cluster::SystemMode mode = cluster::SystemMode::Stash;
  int repeat = 2;
  bool json = false;
  bool audit = false;
  bool metrics = false;
  std::string metrics_json_path;
  std::string trace_spec;
  bool failover = true;
  long queue_limit = 0;
  long threads = 0;
  double deadline_ms = 0.0;
  double exec_deadline_ms = 0.0;
  exec::FaultHooks chaos_exec;
  double retry_budget = 0.0;
  long scale_out = 0;
  long scale_in = 0;
  bool autoscale = false;
  sim::FaultPlan plan;
  double drop_rate = 0.0;
  double bitflip_rate = 0.0;
  double scrub_ms = 0.0;
  std::vector<std::pair<std::string, double>> bitrot;  // partition, at-ms
  std::vector<std::vector<std::uint32_t>> partition_groups;
  double heal_ms = -1.0;
  std::optional<bool> recovery;
  std::vector<double> coords;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--date") {
      if (!parse_date(next(), &date)) usage(argv[0]);
    } else if (arg == "--sres") {
      sres = std::atoi(next().c_str());
    } else if (arg == "--tres") {
      const std::string t = next();
      if (t == "hour") tres = TemporalRes::Hour;
      else if (t == "day") tres = TemporalRes::Day;
      else if (t == "month") tres = TemporalRes::Month;
      else usage(argv[0]);
    } else if (arg == "--nodes") {
      nodes = static_cast<std::uint32_t>(std::atoi(next().c_str()));
    } else if (arg == "--mode") {
      const std::string m = next();
      if (m == "stash") mode = cluster::SystemMode::Stash;
      else if (m == "basic") mode = cluster::SystemMode::Basic;
      else usage(argv[0]);
    } else if (arg == "--repeat") {
      repeat = std::atoi(next().c_str());
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--crash") {
      unsigned node = 0;
      double at_ms = 0.0, restart_ms = 0.0;
      const std::string spec = next();
      const int matched = std::sscanf(spec.c_str(), "%u@%lf:%lf",
                                      &node, &at_ms, &restart_ms);
      if (matched < 2) usage(argv[0]);
      sim::CrashEvent crash;
      crash.node = node;
      crash.at = std::llround(at_ms * 1000.0);
      if (matched == 3) crash.restart_at = std::llround(restart_ms * 1000.0);
      plan.crashes.push_back(crash);
    } else if (arg == "--drop") {
      drop_rate = std::atof(next().c_str());
    } else if (arg == "--bitflip-rate") {
      bitflip_rate = std::atof(next().c_str());
      if (bitflip_rate < 0.0 || bitflip_rate > 1.0) usage(argv[0]);
    } else if (arg == "--bitrot") {
      const std::string spec = next();
      const std::size_t at = spec.find('@');
      const std::string partition = spec.substr(0, at);
      double at_ms = 0.0;
      if (at != std::string::npos) {
        at_ms = std::atof(spec.substr(at + 1).c_str());
        if (at_ms < 0.0) usage(argv[0]);
      }
      if (partition.empty()) usage(argv[0]);
      bitrot.emplace_back(partition, at_ms);
    } else if (arg == "--scrub-ms") {
      scrub_ms = std::atof(next().c_str());
      if (scrub_ms < 0.0) usage(argv[0]);
    } else if (arg == "--partition") {
      partition_groups = parse_partition(next());
      if (partition_groups.empty()) usage(argv[0]);
    } else if (arg == "--heal-ms") {
      heal_ms = std::atof(next().c_str());
      if (heal_ms < 0.0) usage(argv[0]);
    } else if (arg == "--recovery") {
      recovery = true;
    } else if (arg == "--no-recovery") {
      recovery = false;
    } else if (arg == "--no-failover") {
      failover = false;
    } else if (arg == "--queue-limit") {
      queue_limit = std::atol(next().c_str());
      if (queue_limit < 0) usage(argv[0]);
    } else if (arg == "--threads") {
      threads = std::atol(next().c_str());
      if (threads < 0) usage(argv[0]);
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::atof(next().c_str());
      if (deadline_ms < 0.0) usage(argv[0]);
    } else if (arg == "--exec-deadline-ms") {
      exec_deadline_ms = std::atof(next().c_str());
      if (exec_deadline_ms < 0.0) usage(argv[0]);
    } else if (arg == "--chaos-exec") {
      if (!parse_chaos_exec(next(), &chaos_exec)) usage(argv[0]);
    } else if (arg == "--retry-budget") {
      retry_budget = std::atof(next().c_str());
      if (retry_budget < 0.0) usage(argv[0]);
    } else if (arg == "--scale-out") {
      scale_out = std::atol(next().c_str());
      if (scale_out < 1) usage(argv[0]);
    } else if (arg == "--scale-in") {
      scale_in = std::atol(next().c_str());
      if (scale_in < 1) usage(argv[0]);
    } else if (arg == "--autoscale") {
      autoscale = true;
    } else if (arg == "--help") {
      usage(argv[0], /*requested=*/true);
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--metrics-json") {
      metrics_json_path = next();
      if (metrics_json_path.empty()) usage(argv[0]);
    } else if (arg == "--trace") {
      trace_spec = next();
      if (trace_spec.empty()) usage(argv[0]);
    } else if (!arg.empty() &&
               (std::isdigit(static_cast<unsigned char>(arg[0])) ||
                arg[0] == '-')) {
      coords.push_back(std::atof(arg.c_str()));
    } else {
      usage(argv[0]);
    }
  }
  if (coords.size() != 4 || sres < 2 || sres > 12 || repeat < 1 || nodes < 1)
    usage(argv[0]);
  if ((exec_deadline_ms > 0.0 || chaos_exec.enabled()) && threads == 0)
    usage(argv[0]);  // wall-clock controls need a worker pool
  if (drop_rate > 0.0 || bitflip_rate > 0.0) {
    // One combined wildcard rule: the injector's first-match semantics mean
    // separate --drop and --bitflip-rate rules would shadow each other.
    sim::LinkRule rule;
    rule.drop_probability = drop_rate;
    rule.corrupt_probability = bitflip_rate;
    plan.links.push_back(rule);
  }
  for (const auto& [partition, at_ms] : bitrot)
    plan.bitrot.push_back({.partition = partition,
                           .day = unix_seconds(date) / 86400,
                           .at = std::llround(at_ms * 1000.0)});
  if (!partition_groups.empty()) {
    for (const auto& group : partition_groups)
      for (const std::uint32_t id : group)
        if (id != sim::kFrontendNode && id >= nodes) usage(argv[0]);
    sim::PartitionEvent split;
    split.groups = partition_groups;
    split.at = 0;
    if (heal_ms >= 0.0) split.heal_at = std::llround(heal_ms * 1000.0);
    plan.partitions.push_back(split);
  } else if (heal_ms >= 0.0) {
    usage(argv[0]);  // --heal-ms without --partition
  }

  const AggregationQuery query{
      {coords[0], coords[1], coords[2], coords[3]},
      {unix_seconds(date), unix_seconds(date) + 86400},
      {sres, tres}};
  if (!query.valid()) usage(argv[0]);

  cluster::ClusterConfig config;
  config.num_nodes = nodes;
  config.mode = mode;
  config.fault_plan = plan;
  config.failover_to_successor = failover;
  config.queue_limit = static_cast<std::size_t>(queue_limit);
  config.exec_threads = static_cast<std::size_t>(threads);
  config.exec_deadline_ms =
      static_cast<std::uint64_t>(std::llround(exec_deadline_ms));
  config.exec_faults = chaos_exec;
  config.query_deadline =
      static_cast<sim::SimTime>(std::llround(deadline_ms * 1000.0));
  config.retry_budget = retry_budget;
  config.scrub_interval =
      static_cast<sim::SimTime>(std::llround(scrub_ms * 1000.0));
  if (recovery.has_value()) config.recovery = *recovery;
  const bool elastic = scale_out > 0 || scale_in > 0 || autoscale;
  if (elastic) {
    // Standby slots for every planned (or autoscaled) join, plus elastic
    // timers scaled to the CLI's millisecond-scale runs.
    config.max_nodes =
        nodes + static_cast<std::uint32_t>(
                    scale_out > 0 ? scale_out : (autoscale ? nodes : 0));
    config.ring_check_interval = 10 * sim::kMillisecond;
    config.ring_stabilize_delay = 30 * sim::kMillisecond;
    config.rebalance_transfer_deadline = 200 * sim::kMillisecond;
    config.membership.probe_interval = 10 * sim::kMillisecond;
    config.membership.probe_timeout = 2 * sim::kMillisecond;
    config.membership.suspicion_timeout = 20 * sim::kMillisecond;
    if (autoscale) {
      config.autoscale.enabled = true;
      config.autoscale.eval_interval = 10 * sim::kMillisecond;
      config.autoscale.cooldown = 100 * sim::kMillisecond;
    }
  }
  if (!plan.empty()) config.subquery_timeout = 20 * sim::kMillisecond;
  if (!plan.partitions.empty()) {
    // Gossip timers scaled to the CLI's millisecond-scale runs, so the
    // split is detected (and refuted after the heal) within a few runs.
    config.membership.probe_interval = 10 * sim::kMillisecond;
    config.membership.probe_timeout = 2 * sim::kMillisecond;
    config.membership.suspicion_timeout = 20 * sim::kMillisecond;
  }
  std::optional<cluster::StashCluster> maybe_cluster;
  try {
    maybe_cluster.emplace(config, std::make_shared<const NamGenerator>());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  cluster::StashCluster& cluster = *maybe_cluster;
  client::VisualClient client(cluster);
  client.set_view(query);

  std::printf("query %s on %s at %s over %u nodes (%s)\n",
              query.area.to_string().c_str(),
              TemporalBin(TemporalRes::Day, date.year, date.month, date.day)
                  .label()
                  .c_str(),
              query.res.to_string().c_str(), nodes,
              mode == cluster::SystemMode::Stash ? "STASH" : "basic");

  client::ViewResult last;
  for (int r = 0; r < repeat; ++r) {
    last = client.refresh();
    std::printf("  run %d: %5zu cells in %8.2f ms  (cache=%zu synth=%zu "
                "disk=%zu chunks)%s\n",
                r + 1, last.cells.size(),
                sim::to_millis(last.stats.latency()),
                last.stats.breakdown.chunks_from_cache,
                last.stats.breakdown.chunks_synthesized,
                last.stats.breakdown.chunks_scanned,
                last.stats.partial     ? "  [PARTIAL]"
                : last.stats.degraded ? "  [DEGRADED]"
                                      : "");
  }
  if (elastic) {
    for (long k = 0; k < scale_out; ++k)
      cluster.join_node(nodes + static_cast<std::uint32_t>(k));
    const std::vector<NodeId> members = cluster.ring().members;  // snapshot
    for (long k = 0; k < scale_in && k < static_cast<long>(members.size());
         ++k)
      cluster.decommission_node(
          members[members.size() - 1 - static_cast<std::size_t>(k)]);
    const bool stable = cluster.run_until_stable(60 * sim::kSecond);
    const auto& m = cluster.metrics();
    std::printf("elastic activity: epoch=%llu members=%zu moved=%llu "
                "aborted=%llu reverts=%llu%s\n",
                static_cast<unsigned long long>(cluster.ring().epoch),
                cluster.ring().members.size(),
                static_cast<unsigned long long>(m.rebalance_partitions_moved),
                static_cast<unsigned long long>(m.rebalance_transfers_aborted),
                static_cast<unsigned long long>(m.rebalance_ownership_reverts),
                stable ? "" : "  [REBALANCE STILL IN FLIGHT]");
    // One more run on the resized ring: warm handoffs mean the answer
    // stays fast and byte-identical.
    last = client.refresh();
    std::printf("  post-resize: %5zu cells in %8.2f ms  (cache=%zu synth=%zu "
                "disk=%zu chunks)%s\n",
                last.cells.size(), sim::to_millis(last.stats.latency()),
                last.stats.breakdown.chunks_from_cache,
                last.stats.breakdown.chunks_synthesized,
                last.stats.breakdown.chunks_scanned,
                last.stats.partial     ? "  [PARTIAL]"
                : last.stats.degraded ? "  [DEGRADED]"
                                      : "");
  }
  if (scrub_ms > 0.0) {
    // The query runs quiesce without draining background events; give the
    // scrubber a few periods so quarantined blocks actually get repaired.
    cluster.loop().run_until(cluster.loop().now() + 4 * config.scrub_interval);
  }
  if (queue_limit > 0 || deadline_ms > 0.0 || retry_budget > 0.0) {
    const auto& m = cluster.metrics();
    std::printf("overload control: shed=%llu expired=%llu degraded=%llu "
                "deadline-cut=%llu suppressed-retries=%llu\n",
                static_cast<unsigned long long>(m.subqueries_shed),
                static_cast<unsigned long long>(m.subqueries_expired),
                static_cast<unsigned long long>(m.degraded_subqueries),
                static_cast<unsigned long long>(m.deadline_cut_subqueries),
                static_cast<unsigned long long>(m.retries_suppressed));
  }
  if (threads > 0 && (exec_deadline_ms > 0.0 || chaos_exec.enabled())) {
    double deadline_cut = 0.0, cancelled = 0.0, exceptions = 0.0;
    double stalls = 0.0, shed = 0.0;
    for (const auto& s : cluster.metrics_registry().snapshot().scalars) {
      if (s.name == "stash_exec_deadline_exceeded_total") deadline_cut = s.value;
      else if (s.name == "stash_exec_cancelled_chunks_total") cancelled = s.value;
      else if (s.name == "stash_exec_task_exceptions_total") exceptions = s.value;
      else if (s.name == "stash_exec_watchdog_stalls_total") stalls = s.value;
      else if (s.name == "stash_exec_submit_shed_total") shed = s.value;
    }
    std::printf("exec robustness: deadline-exceeded=%.0f cancelled-chunks=%.0f "
                "task-exceptions=%.0f watchdog-stalls=%.0f submit-shed=%.0f\n",
                deadline_cut, cancelled, exceptions, stalls, shed);
  }
  if (!plan.empty()) {
    const auto& m = cluster.metrics();
    std::printf("fault activity: crashes=%llu restarts=%llu dropped=%llu "
                "timeouts=%llu retries=%llu failovers=%llu partial=%llu\n",
                static_cast<unsigned long long>(m.node_crashes),
                static_cast<unsigned long long>(m.node_restarts),
                static_cast<unsigned long long>(m.messages_dropped),
                static_cast<unsigned long long>(m.timeouts_fired),
                static_cast<unsigned long long>(m.subquery_retries),
                static_cast<unsigned long long>(m.failovers),
                static_cast<unsigned long long>(m.partial_queries));
  }
  if (!plan.empty()) {
    const auto& m = cluster.metrics();
    std::printf("partition activity: observed=%llu probes=%llu "
                "false-suspicions=%llu recoveries=%llu digests=%llu "
                "rewarmed=%llu chunks / %llu cells\n",
                static_cast<unsigned long long>(m.partitions_observed),
                static_cast<unsigned long long>(m.gossip_probes),
                static_cast<unsigned long long>(m.false_suspicions),
                static_cast<unsigned long long>(m.recoveries),
                static_cast<unsigned long long>(m.digests_exchanged),
                static_cast<unsigned long long>(m.chunks_rewarmed),
                static_cast<unsigned long long>(m.cells_rewarmed));
  }
  if (bitflip_rate > 0.0 || !bitrot.empty() || scrub_ms > 0.0) {
    const auto& m = cluster.metrics();
    std::printf("integrity activity: checksum-failures=%llu quarantined=%llu "
                "repaired=%llu frames corrupted=%llu rejected=%llu "
                "redelivered=%llu poison=%llu corrupt-queries=%llu "
                "scrub=%llu cycles / %llu repairs\n",
                static_cast<unsigned long long>(m.integrity_checksum_failures),
                static_cast<unsigned long long>(m.blocks_quarantined),
                static_cast<unsigned long long>(m.blocks_repaired),
                static_cast<unsigned long long>(m.messages_corrupted +
                                                m.messages_truncated),
                static_cast<unsigned long long>(m.frame_integrity_failures),
                static_cast<unsigned long long>(m.messages_redelivered),
                static_cast<unsigned long long>(m.poison_messages),
                static_cast<unsigned long long>(m.corrupt_queries),
                static_cast<unsigned long long>(m.scrub_cycles),
                static_cast<unsigned long long>(m.scrub_repairs));
  }
  if (json)
    std::printf("%s\n", client::VisualClient::to_json(last, 10).c_str());
  if (metrics)
    std::fputs(obs::to_prometheus(cluster.metrics_registry().snapshot()).c_str(),
               stdout);
  if (!metrics_json_path.empty()) {
    const std::string payload =
        obs::to_json(cluster.metrics_registry().snapshot(),
                     cluster.loop().now());
    if (metrics_json_path == "-") {
      std::printf("%s\n", payload.c_str());
    } else {
      std::FILE* out = std::fopen(metrics_json_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                     metrics_json_path.c_str());
        return 2;
      }
      std::fprintf(out, "%s\n", payload.c_str());
      std::fclose(out);
    }
  }
  if (!trace_spec.empty()) {
    const std::uint64_t trace_id =
        trace_spec == "last"
            ? last.stats.query_id
            : static_cast<std::uint64_t>(std::atoll(trace_spec.c_str()));
    const auto trace = cluster.trace(trace_id);
    if (!trace.has_value()) {
      std::fprintf(stderr,
                   "%s: no trace for query %llu (ring keeps the last %zu)\n",
                   argv[0], static_cast<unsigned long long>(trace_id),
                   config.trace_capacity);
      return 1;
    }
    std::fputs(obs::render_tree(*trace).c_str(), stdout);
  }
  if (audit) {
    const AuditReport report = cluster.audit_all();
    std::printf("%s\n", report.to_string().c_str());
    if (!report.ok()) return 1;
  }
  return 0;
}
