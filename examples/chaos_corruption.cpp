// End-to-end data-integrity demo (DESIGN.md "Data integrity").
//
// Seeded chaos flips bits on the wire and rots storage blocks while a
// stream of queries runs: every gh2 partition the query area touches
// bit-rots mid-run, a partition owner crashes and restarts cold (so the
// anti-entropy re-warm frames cross the corrupted links), and the
// background scrubber races to detect, quarantine, and repair.  The same
// query schedule runs first on a fault-free control cluster; every chaos
// answer is compared cell-by-cell against the control's.
//
// The run self-checks its acceptance criteria and exits non-zero on
// failure, so CI can use it as a corruption soak:
//   1. every query completes — corruption never hangs the cluster;
//   2. every answer is byte-equal to the no-fault control, or explicitly
//      flagged partial/degraded with all returned cells byte-equal: zero
//      silently-wrong answers;
//   3. the chaos actually bit: storage checksum failures, quarantined
//      blocks, and corrupted/rejected wire frames were all observed;
//   4. the scrubber converged: quarantine empty, repairs counted;
//   5. a post-convergence probe runs with zero fresh checksum failures,
//      answers exactly, and the hierarchy audit passes on every node.
//
//   ./build/examples/chaos_corruption [--metrics-json FILE]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/civil_time.hpp"
#include "geo/geohash.hpp"
#include "obs/metrics.hpp"

using namespace stash;
using cluster::ClusterConfig;
using cluster::StashCluster;

namespace {

constexpr std::uint32_t kNodes = 16;
constexpr std::size_t kQueries = 24;
constexpr double kBitFlipRate = 0.35;
constexpr double kTruncateRate = 0.15;
// Rot lands before the first scans: STASH caches aggressively, so rot
// injected later would only ever be seen by the scrubber, not a query.
constexpr sim::SimTime kRotAt = 0;
constexpr sim::SimTime kCrashAt = 300 * sim::kMillisecond;
constexpr sim::SimTime kRestartAt = 600 * sim::kMillisecond;
constexpr sim::SimTime kScrubInterval = 300 * sim::kMillisecond;
constexpr sim::SimTime kQuiescent = 6 * sim::kSecond;

struct Scenario {
  std::vector<AggregationQuery> queries;
  std::vector<std::string> partitions;  // gh2 partitions that bit-rot
  std::int64_t day = 0;
  NodeId victim = 0;
};

Scenario make_scenario() {
  Scenario s;
  AggregationQuery base = {{38.0, 38.6, -99.0, -97.8},
                           {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
                           {6, TemporalRes::Day}};
  AggregationQuery wide = base;
  wide.area = base.area.scaled(16.0);
  s.partitions = geohash::covering(wide.area, 2);
  s.day = base.time.begin / 86400;
  const ClusterConfig probe;
  const ZeroHopDht dht(kNodes, probe.partition_prefix_length);
  s.victim = dht.node_for_partition(s.partitions.front());
  // Alternate the county view, the wide view, and two panned counties —
  // all at the scan resolution, so answers are byte-reproducible.
  AggregationQuery east = base, south = base;
  east.area = base.area.translated(0.0, 1.1);
  south.area = base.area.translated(-0.9, 0.0);
  for (std::size_t i = 0; i < kQueries; ++i) {
    switch (i % 4) {
      case 0: s.queries.push_back(base); break;
      case 1: s.queries.push_back(wide); break;
      case 2: s.queries.push_back(east); break;
      default: s.queries.push_back(south); break;
    }
  }
  return s;
}

ClusterConfig make_config(const Scenario& s, bool chaos) {
  ClusterConfig config;
  config.num_nodes = kNodes;
  config.subquery_timeout = 50 * sim::kMillisecond;
  config.retry_backoff = 5 * sim::kMillisecond;
  config.suspect_ttl = 200 * sim::kMillisecond;
  config.membership.probe_interval = 50 * sim::kMillisecond;
  config.membership.probe_timeout = 5 * sim::kMillisecond;
  config.membership.suspicion_timeout = 100 * sim::kMillisecond;
  if (!chaos) return config;
  config.scrub_interval = kScrubInterval;
  config.fault_plan.seed = 42;
  config.fault_plan.links.push_back({.corrupt_probability = kBitFlipRate,
                                     .truncate_probability = kTruncateRate});
  for (const auto& p : s.partitions)
    config.fault_plan.bitrot.push_back(
        {.partition = p, .day = s.day, .at = kRotAt});
  config.fault_plan.crashes.push_back(
      {.node = s.victim, .at = kCrashAt, .restart_at = kRestartAt});
  return config;
}

struct Answer {
  cluster::QueryStats stats;
  CellSummaryMap cells;
};

struct RunResult {
  std::vector<Answer> answers;
  cluster::ClusterMetrics metrics;  // sampled at quiescence
  std::uint64_t probe_checksum_failures = 0;  // NEW failures during probe
  Answer probe;
  bool quarantine_empty = false;
  bool audit_ok = false;
  std::string metrics_json;
};

RunResult run(const Scenario& s, bool chaos) {
  StashCluster cluster(make_config(s, chaos),
                       std::make_shared<const NamGenerator>());
  RunResult out;
  out.answers.resize(s.queries.size());
  for (std::size_t i = 0; i < s.queries.size(); ++i)
    cluster.loop().schedule_at(
        static_cast<sim::SimTime>(i) * 40 * sim::kMillisecond, [&, i] {
          cluster.submit(s.queries[i], [&, i](const cluster::QueryStats& st,
                                              CellSummaryMap&& cells) {
            out.answers[i] = {st, std::move(cells)};
          });
        });
  cluster.loop().run();
  cluster.loop().run_until(kQuiescent);  // scrub + anti-entropy convergence

  out.metrics = cluster.metrics();
  out.quarantine_empty = cluster.store().quarantine_list().empty();
  out.audit_ok = cluster.audit_all().ok();

  const std::uint64_t before = cluster.store().integrity().checksum_failures;
  out.probe.stats = cluster.run_query(s.queries[0], &out.probe.cells);
  out.probe_checksum_failures =
      cluster.store().integrity().checksum_failures - before;
  out.metrics_json = obs::to_json(cluster.metrics_registry().snapshot(),
                                  cluster.loop().now());
  return out;
}

/// True when every cell in `got` is byte-equal to the control's cell with
/// the same key (missing cells allowed — withheld, never wrong).
bool subset_exact(const CellSummaryMap& got, const CellSummaryMap& control) {
  for (const auto& [key, summary] : got) {
    const auto it = control.find(key);
    if (it == control.end() || !(summary == it->second)) return false;
  }
  return true;
}

void report(const char* label, const RunResult& r) {
  const auto& m = r.metrics;
  std::size_t exact = 0, flagged = 0;
  for (const auto& a : r.answers)
    (a.stats.partial || a.stats.degraded) ? ++flagged : ++exact;
  std::printf("%s\n", label);
  std::printf("  queries exact / flagged:            %zu / %zu\n", exact,
              flagged);
  std::printf("  storage checksum failures / quarantined / repaired: "
              "%llu / %llu / %llu\n",
              static_cast<unsigned long long>(m.integrity_checksum_failures),
              static_cast<unsigned long long>(m.blocks_quarantined),
              static_cast<unsigned long long>(m.blocks_repaired));
  std::printf("  wire frames corrupted+truncated / rejected / redelivered / "
              "poison: %llu / %llu / %llu / %llu\n",
              static_cast<unsigned long long>(m.messages_corrupted +
                                              m.messages_truncated),
              static_cast<unsigned long long>(m.frame_integrity_failures),
              static_cast<unsigned long long>(m.messages_redelivered),
              static_cast<unsigned long long>(m.poison_messages));
  std::printf("  scrub cycles / repairs, replica divergences: "
              "%llu / %llu, %llu\n",
              static_cast<unsigned long long>(m.scrub_cycles),
              static_cast<unsigned long long>(m.scrub_repairs),
              static_cast<unsigned long long>(m.replica_divergences));
  std::printf("  corrupt-flagged queries:            %llu\n",
              static_cast<unsigned long long>(m.corrupt_queries));
  std::printf("  post-convergence probe: %s, %llu fresh checksum failures\n",
              r.probe.stats.partial ? "partial" : "exact",
              static_cast<unsigned long long>(r.probe_checksum_failures));
  std::printf("\n");
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc)
      metrics_json_path = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--metrics-json FILE]\n", argv[0]);
      return 2;
    }
  }

  const Scenario scenario = make_scenario();
  std::printf("%zu queries over %zu gh2 partitions; all partitions bit-rot "
              "at %.0f ms; node %u crashes at %.0f ms and restarts at %.0f "
              "ms; link bit-flip/truncate rates %.2f/%.2f; scrubber every "
              "%.0f ms\n\n",
              kQueries, scenario.partitions.size(), sim::to_millis(kRotAt),
              scenario.victim, sim::to_millis(kCrashAt),
              sim::to_millis(kRestartAt), kBitFlipRate, kTruncateRate,
              sim::to_millis(kScrubInterval));

  const RunResult control = run(scenario, /*chaos=*/false);
  const RunResult chaos = run(scenario, /*chaos=*/true);
  report("fault-free control:", control);
  report("seeded corruption chaos:", chaos);

  std::printf("acceptance checks:\n");
  bool ok = true;
  bool all_complete = true;
  for (const auto& a : chaos.answers)
    if (a.stats.subqueries == 0) all_complete = false;
  ok &= check(all_complete, "every query completed (corruption never hangs)");

  bool honest = true;
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < chaos.answers.size(); ++i) {
    const Answer& a = chaos.answers[i];
    const CellSummaryMap& want = control.answers[i].cells;
    if (a.stats.partial || a.stats.degraded) {
      ++flagged;
      if (!subset_exact(a.cells, want)) honest = false;
    } else if (!(a.cells == want)) {
      honest = false;
    }
  }
  ok &= check(honest,
              "every answer byte-equal to control or honestly flagged — "
              "zero silently-wrong answers");
  ok &= check(flagged > 0, "the rot actually bit (some answers flagged)");
  ok &= check(chaos.metrics.integrity_checksum_failures > 0 &&
                  chaos.metrics.blocks_quarantined > 0,
              "storage rot was detected and quarantined");
  ok &= check(chaos.metrics.messages_corrupted +
                      chaos.metrics.messages_truncated >
                  0,
              "wire tampering was injected");
  ok &= check(chaos.metrics.frame_integrity_failures > 0,
              "corrupt frames were rejected by checksum");
  ok &= check(chaos.metrics.scrub_repairs > 0 && chaos.quarantine_empty,
              "the scrubber repaired every quarantined block");
  ok &= check(chaos.probe_checksum_failures == 0 && !chaos.probe.stats.partial,
              "post-convergence probe: 0 checksum failures, exact answer");
  ok &= check(chaos.probe.cells == control.probe.cells,
              "post-convergence probe byte-equal to control");
  ok &= check(chaos.audit_ok, "hierarchy audit passes on every node");

  if (!metrics_json_path.empty()) {
    std::FILE* f = metrics_json_path == "-"
                       ? stdout
                       : std::fopen(metrics_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   metrics_json_path.c_str());
      return 2;
    }
    std::fprintf(f, "%s\n", chaos.metrics_json.c_str());
    if (f != stdout) std::fclose(f);
  }
  return ok ? 0 : 1;
}
