// Overload robustness demo (DESIGN.md "Overload & graceful degradation").
//
// A Zipf-skewed city workload concentrates on one DHT partition and is
// driven open-loop at ~2x the owning node's calibrated capacity, with
// dynamic replication off — admission control has to absorb the excess,
// not a helper.  With overload controls on (bounded queue, per-query
// deadline, retry budget, degraded answers) the node sheds what it cannot
// serve and answers shed subqueries from cached PLM-complete ancestor
// levels: goodput stays at capacity, the popular head stays exact, the
// cold tail degrades to s5, and nothing ever outlives its deadline.  With
// the legacy config (unbounded queue, no deadline, unlimited retries) the
// same burst collapses into queueing delay and a retry storm.
//
// The run self-checks its acceptance criteria and exits non-zero on
// failure, so CI can use it as an overload soak:
//   1. every query completes by its deadline (+1 us scheduler tick);
//   2. goodput (full-coverage completions within the deadline) >= 95% of
//      offered load — i.e. ~2x the calibrated capacity, because degraded
//      answers are served from cache instead of a worker;
//   3. the hot node's queue never exceeds the configured limit;
//   4. shedding and coarsening actually engaged (the run was an overload).
//
//   ./build/examples/chaos_overload [--metrics-json FILE]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/zipf.hpp"
#include "geo/geohash.hpp"
#include "obs/metrics.hpp"
#include "workload/workload.hpp"

using namespace stash;
using cluster::ClusterConfig;
using cluster::StashCluster;

namespace {

constexpr std::uint32_t kNodes = 16;
constexpr std::size_t kRegions = 8;      // distinct city rectangles
constexpr std::size_t kWarmRegions = 4;  // head of the Zipf: cached at s6
constexpr double kSkew = 1.2;
constexpr std::size_t kQueries = 8000;
constexpr sim::SimTime kDeadline = 50 * sim::kMillisecond;
constexpr std::size_t kQueueLimit = 32;

struct Scenario {
  std::vector<AggregationQuery> burst;
  std::vector<AggregationQuery> regions;  // rank order, most popular first
  NodeId hot_node = 0;
};

/// All regions inside one 2-character geohash partition ("9y", central
/// US), so every subquery lands on a single owner node.
Scenario make_scenario() {
  Scenario s;
  const BoundingBox cell = geohash::decode("9y");
  const auto extent = workload::extent_of(workload::QueryGroup::City);
  workload::WorkloadConfig wl_config;
  wl_config.domain = cell;
  const workload::WorkloadGenerator wl(wl_config);

  Rng rng(0x4f564c44ULL);  // placement + popularity sampling
  for (std::size_t i = 0; i < kRegions; ++i) {
    const LatLng center{
        rng.uniform(cell.lat_min + extent.dlat, cell.lat_max - extent.dlat),
        rng.uniform(cell.lng_min + extent.dlng, cell.lng_max - extent.dlng)};
    s.regions.push_back(wl.query_at(workload::QueryGroup::City, center));
  }
  const ZipfDistribution zipf(kRegions, kSkew);
  for (std::size_t i = 0; i < kQueries; ++i)
    s.burst.push_back(s.regions[zipf.sample(rng)]);

  const ClusterConfig probe;
  const ZeroHopDht dht(kNodes, probe.partition_prefix_length);
  s.hot_node = dht.node_for_partition("9y");
  return s;
}

ClusterConfig base_config() {
  ClusterConfig config;
  config.num_nodes = kNodes;
  config.mode = cluster::SystemMode::StashNoReplication;  // no helpers
  config.discard_payload = true;  // bound memory across the burst
  config.tracing = false;        // shave wall-clock in the soak lane
  return config;
}

/// Warm the hierarchy: s5 ancestor over the whole partition (the degraded
/// answer source), s6 exact over the popular head only — the Zipf tail
/// stays cold at the requested resolution.
void warm(StashCluster& cluster, const Scenario& s) {
  AggregationQuery ancestor = s.burst.front();
  ancestor.area = geohash::decode("9y");
  ancestor.res = {5, TemporalRes::Day};
  cluster.preload(ancestor);
  for (std::size_t i = 0; i < kWarmRegions; ++i) cluster.preload(s.regions[i]);
}

/// Mean per-query busy time (us) on a warmed cluster, from the subquery
/// service-time histogram: the hot node serves ~capacity = workers / mean.
double calibrate_service_us(const Scenario& s) {
  StashCluster cluster(base_config(), std::make_shared<const NamGenerator>());
  warm(cluster, s);
  std::vector<AggregationQuery> probe;
  for (int i = 0; i < 40; ++i)
    probe.push_back(s.regions[static_cast<std::size_t>(i) % kWarmRegions]);
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const auto& h : cluster.metrics_registry().snapshot().histograms)
    if (h.name == "stash_subquery_service_us") {
      sum = h.sum;
      count = h.count;
    }
  cluster.run_sequence(probe);
  for (const auto& h : cluster.metrics_registry().snapshot().histograms)
    if (h.name == "stash_subquery_service_us") {
      sum = h.sum - sum;
      count = h.count - count;
    }
  return count > 0 ? sum / static_cast<double>(count) : 1.0;
}

struct RunResult {
  std::vector<cluster::QueryStats> stats;
  cluster::ClusterMetrics metrics;
  std::size_t peak_queue = 0;
  std::string metrics_json;
};

RunResult run(const ClusterConfig& config, const Scenario& s,
              sim::SimTime interarrival) {
  StashCluster cluster(config, std::make_shared<const NamGenerator>());
  warm(cluster, s);

  // Sample the hot node's queue on the arrival clock: the bound we assert
  // is on observed depth, not on a counter the server maintains itself.
  RunResult out;
  const sim::SimTime horizon =
      static_cast<sim::SimTime>(kQueries) * interarrival;
  for (sim::SimTime t = 0; t <= horizon; t += interarrival)
    cluster.loop().schedule(t, [&] {
      out.peak_queue =
          std::max(out.peak_queue, cluster.node_queue_length(s.hot_node));
    });

  out.stats = cluster.run_open_loop(s.burst, interarrival);
  out.metrics = cluster.metrics();
  out.metrics_json = obs::to_json(cluster.metrics_registry().snapshot(),
                                  cluster.loop().now());
  return out;
}

struct BurstSummary {
  double p50_ms = 0.0, p99_ms = 0.0;
  std::size_t within_slo_full = 0;  // full coverage AND latency <= SLO
  std::size_t exact = 0, degraded = 0, partial = 0;
  sim::SimTime worst_overrun = 0;   // max(completed_at - deadline), deadline>0
};

BurstSummary summarize(const std::vector<cluster::QueryStats>& stats) {
  BurstSummary sum;
  std::vector<sim::SimTime> lat;
  lat.reserve(stats.size());
  for (const auto& st : stats) {
    lat.push_back(st.latency());
    if (st.partial) ++sum.partial;
    else if (st.degraded) ++sum.degraded;
    else ++sum.exact;
    if (!st.partial && st.latency() <= kDeadline) ++sum.within_slo_full;
    if (st.deadline != 0 && st.completed_at > st.deadline)
      sum.worst_overrun =
          std::max(sum.worst_overrun, st.completed_at - st.deadline);
  }
  std::sort(lat.begin(), lat.end());
  sum.p50_ms = sim::to_millis(lat[lat.size() / 2]);
  sum.p99_ms = sim::to_millis(lat[lat.size() * 99 / 100]);
  return sum;
}

void report(const char* label, const RunResult& r, const BurstSummary& sum) {
  const auto& m = r.metrics;
  std::printf("%s\n", label);
  std::printf("  latency p50 / p99:      %8.2f / %8.2f ms\n", sum.p50_ms,
              sum.p99_ms);
  std::printf("  within %2.0f ms SLO, full: %zu of %zu (%.1f%%)\n",
              sim::to_millis(kDeadline), sum.within_slo_full,
              r.stats.size(),
              100.0 * static_cast<double>(sum.within_slo_full) /
                  static_cast<double>(r.stats.size()));
  std::printf("  exact / degraded / partial: %zu / %zu / %zu\n", sum.exact,
              sum.degraded, sum.partial);
  std::printf("  hot-node peak queue:    %zu\n", r.peak_queue);
  std::printf("  shed / expired / deadline-cut subqueries: %llu / %llu / %llu\n",
              static_cast<unsigned long long>(m.subqueries_shed),
              static_cast<unsigned long long>(m.subqueries_expired),
              static_cast<unsigned long long>(m.deadline_cut_subqueries));
  std::printf("  retries / suppressed:   %llu / %llu\n",
              static_cast<unsigned long long>(m.subquery_retries),
              static_cast<unsigned long long>(m.retries_suppressed));
  std::printf("\n");
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc)
      metrics_json_path = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--metrics-json FILE]\n", argv[0]);
      return 2;
    }
  }

  const Scenario scenario = make_scenario();
  const double service_us = calibrate_service_us(scenario);
  const ClusterConfig probe = base_config();
  // Arrival rate = 2x capacity: interarrival = mean service / (2 * workers).
  const auto interarrival = std::max<sim::SimTime>(
      1, static_cast<sim::SimTime>(
             service_us / (2.0 * static_cast<double>(probe.workers_per_node))));

  std::printf("zipf(%zu regions, s=%.1f) city burst: %zu queries against "
              "node %u, warm mean service %.0f us -> arrivals every %lld us "
              "(2x the node's %d workers)\n\n",
              kRegions, kSkew, scenario.burst.size(), scenario.hot_node,
              service_us, static_cast<long long>(interarrival),
              probe.workers_per_node);

  ClusterConfig controlled = base_config();
  controlled.queue_limit = kQueueLimit;
  controlled.admission_policy = sim::AdmissionPolicy::kRejectNew;
  controlled.query_deadline = kDeadline;
  controlled.retry_budget = 2.0;
  controlled.subquery_timeout = 25 * sim::kMillisecond;
  const RunResult on = run(controlled, scenario, interarrival);
  const BurstSummary on_sum = summarize(on.stats);
  report("overload controls on (queue limit, deadline, retry budget):", on,
         on_sum);

  ClusterConfig legacy = base_config();
  legacy.queue_limit = 0;      // unbounded queue
  legacy.query_deadline = 0;   // no deadline
  legacy.retry_budget = 0.0;   // unlimited retries
  legacy.degraded_answers = false;
  legacy.subquery_timeout = 25 * sim::kMillisecond;  // -> retry storm
  const RunResult off = run(legacy, scenario, interarrival);
  const BurstSummary off_sum = summarize(off.stats);
  report("legacy config (unbounded queue, no deadline, retry storm):", off,
         off_sum);

  std::printf("acceptance checks (controls on):\n");
  bool ok = true;
  ok &= check(on_sum.worst_overrun <= 1,
              "no query outlives its deadline by more than 1 us");
  ok &= check(on_sum.within_slo_full * 100 >= on.stats.size() * 95,
              "goodput >= 95% of offered load at 2x capacity");
  ok &= check(on.peak_queue <= kQueueLimit,
              "hot-node queue stays within the configured limit");
  ok &= check(on.metrics.subqueries_shed > 0 &&
                  on.metrics.degraded_subqueries > 0,
              "shedding and ancestor-level coarsening both engaged");

  if (!metrics_json_path.empty()) {
    std::FILE* f = metrics_json_path == "-"
                       ? stdout
                       : std::fopen(metrics_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                   metrics_json_path.c_str());
      return 2;
    }
    std::fprintf(f, "%s\n", on.metrics_json.c_str());
    if (f != stdout) std::fclose(f);
  }
  return ok ? 0 : 1;
}
