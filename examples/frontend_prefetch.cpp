// Front-end caching + predictive prefetch (paper §IX-A future work).
//
// Follows a storm-chasing analyst panning steadily east: after two pans
// the Markov predictor recognises the momentum, prefetches the next view
// into the client-side STASH graph, and subsequent pans stop touching the
// back-end entirely.
//
//   ./build/examples/frontend_prefetch

#include <cstdio>

#include "client/caching_client.hpp"
#include "common/civil_time.hpp"

using namespace stash;

int main() {
  auto generator = std::make_shared<const NamGenerator>();
  cluster::ClusterConfig cluster_config;
  cluster_config.num_nodes = 32;
  cluster::StashCluster cluster(cluster_config, generator);

  client::CachingClientConfig config;
  config.enable_prefetch = true;
  config.predictor_min_support = 2;
  client::CachingClient client(cluster, config);

  AggregationQuery view{{38.0, 38.704, -101.0, -99.594},
                        {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})},
                        {6, TemporalRes::Day}};

  std::printf("%-6s %-10s %12s %8s %10s %10s %12s\n", "step", "action",
              "latency(ms)", "local?", "fe-cells", "be-cells", "prediction");
  for (int step = 0; step < 10; ++step) {
    const client::ClientResponse response = client.query(view);
    const auto last = client.predictor().last_action();
    std::printf("%-6d %-10s %12.2f %8s %10zu %10zu %12s\n", step,
                step == 0 ? "dice" : "pan-E",
                sim::to_millis(response.latency),
                response.fully_local ? "yes" : "no",
                response.cells_from_frontend, response.cells_from_backend,
                last.has_value() ? to_string(*last).c_str() : "-");
    view.area = view.area.translated(0.0, 0.25 * view.area.width());
  }

  const auto& m = client.metrics();
  std::printf("\nsession: %llu queries, %llu back-end round-trips, "
              "%llu fully local, %llu prefetches (%llu hits)\n",
              static_cast<unsigned long long>(m.queries),
              static_cast<unsigned long long>(m.backend_queries),
              static_cast<unsigned long long>(m.fully_local),
              static_cast<unsigned long long>(m.prefetches_issued),
              static_cast<unsigned long long>(m.prefetch_hits));
  std::printf("front-end cache holds %zu cells\n", client.cache().total_cells());
  return 0;
}
