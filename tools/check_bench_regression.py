#!/usr/bin/env python3
"""Gate wall-clock throughput against the checked-in baseline.

Usage:
    tools/check_bench_regression.py CURRENT.json [BASELINE.json] [--tolerance F]

CURRENT.json is a fresh stash-bench-parallel-v1 export from bench_parallel;
BASELINE.json defaults to the BENCH_parallel.json checked in at the repo
root.  The gate compares the best ops/s across each file's thread sweep —
the most noise-tolerant scalar the sweep offers — and fails (exit 1) when
the current run is more than `tolerance` (default 0.20 = 20%) below the
baseline.  Exits 0 with a one-line verdict otherwise.

The digest fields must also agree *within* each file (every sweep point
reproduced its own oracle digest); cross-file digests may differ when the
workload constants change, which is a baseline refresh, not a regression.
"""

import argparse
import json
import pathlib
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "stash-bench-parallel-v1":
        sys.exit(f"{path}: not a stash-bench-parallel-v1 export")
    sweep = doc.get("sweep", [])
    if not sweep:
        sys.exit(f"{path}: empty thread sweep")
    for point in sweep:
        if point.get("digest") != doc.get("oracle_digest"):
            sys.exit(
                f"{path}: sweep point threads={point.get('threads')} "
                "diverged from the oracle digest — correctness, not perf"
            )
    return doc


def warn_oversubscribed(doc, path):
    """Caveat (never a failure) when the sweep ran more threads than the
    host has cores: those points measure scheduler contention, not scaling,
    so their ops/s are soft and best-of-sweep may be flattered or punished
    by timeslicing noise."""
    host = doc.get("host_threads")
    if not host:
        return
    over = sorted(
        {int(p["threads"]) for p in doc["sweep"] if int(p["threads"]) > host}
    )
    if over:
        points = ", ".join(str(t) for t in over)
        print(
            f"note: {path}: sweep points with threads={points} oversubscribe "
            f"the host ({host} core(s)); treating their ops/s as "
            "contention-bound, not a scaling measurement"
        )


def best_ops(doc):
    return max(float(p["ops_per_sec"]) for p in doc["sweep"])


def single_thread_ops(doc, path):
    for point in doc["sweep"]:
        if int(point.get("threads", 0)) == 1:
            return float(point["ops_per_sec"])
    sys.exit(f"{path}: no threads=1 sweep point for like-for-like compare")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=str(pathlib.Path(__file__).resolve().parent.parent
                    / "BENCH_parallel.json"),
    )
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    warn_oversubscribed(current, args.current)
    warn_oversubscribed(baseline, args.baseline)

    cur_host = current.get("host_threads")
    base_host = baseline.get("host_threads")
    if cur_host == base_host:
        # Like-for-like hardware: the best point of the full sweep is the
        # most noise-tolerant scalar on offer.
        cur = best_ops(current)
        base = best_ops(baseline)
        scope = "best of sweep"
    else:
        # Different core counts make the multi-threaded points
        # incomparable (the baseline box may scale where this one
        # contends, or vice versa); the threads=1 point is the only
        # apples-to-apples number left.
        print(
            f"note: host_threads differ (current={cur_host}, "
            f"baseline={base_host}); comparing only the threads=1 sweep "
            "point"
        )
        cur = single_thread_ops(current, args.current)
        base = single_thread_ops(baseline, args.baseline)
        scope = "threads=1"
    floor = base * (1.0 - args.tolerance)
    verdict = "OK" if cur >= floor else "REGRESSION"
    print(
        f"{verdict}: current {scope} {cur:.1f} ops/s vs baseline {base:.1f} "
        f"(floor {floor:.1f} at {args.tolerance:.0%} tolerance; "
        f"current host_threads={cur_host}, "
        f"baseline host_threads={base_host})"
    )
    return 0 if cur >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
