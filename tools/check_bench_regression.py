#!/usr/bin/env python3
"""Gate wall-clock throughput against the checked-in baseline.

Usage:
    tools/check_bench_regression.py CURRENT.json [BASELINE.json] [--tolerance F]

CURRENT.json is a fresh stash-bench-parallel-v1 export from bench_parallel;
BASELINE.json defaults to the BENCH_parallel.json checked in at the repo
root.  The gate compares the best ops/s across each file's thread sweep —
the most noise-tolerant scalar the sweep offers — and fails (exit 1) when
the current run is more than `tolerance` (default 0.20 = 20%) below the
baseline.  Exits 0 with a one-line verdict otherwise.

The digest fields must also agree *within* each file (every sweep point
reproduced its own oracle digest); cross-file digests may differ when the
workload constants change, which is a baseline refresh, not a regression.
"""

import argparse
import json
import pathlib
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "stash-bench-parallel-v1":
        sys.exit(f"{path}: not a stash-bench-parallel-v1 export")
    sweep = doc.get("sweep", [])
    if not sweep:
        sys.exit(f"{path}: empty thread sweep")
    for point in sweep:
        if point.get("digest") != doc.get("oracle_digest"):
            sys.exit(
                f"{path}: sweep point threads={point.get('threads')} "
                "diverged from the oracle digest — correctness, not perf"
            )
    return doc


def best_ops(doc):
    return max(float(p["ops_per_sec"]) for p in doc["sweep"])


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=str(pathlib.Path(__file__).resolve().parent.parent
                    / "BENCH_parallel.json"),
    )
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    cur = best_ops(current)
    base = best_ops(baseline)
    floor = base * (1.0 - args.tolerance)
    verdict = "OK" if cur >= floor else "REGRESSION"
    print(
        f"{verdict}: current best {cur:.1f} ops/s vs baseline {base:.1f} "
        f"(floor {floor:.1f} at {args.tolerance:.0%} tolerance; "
        f"current host_threads={current.get('host_threads')}, "
        f"baseline host_threads={baseline.get('host_threads')})"
    )
    return 0 if cur >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
