#!/usr/bin/env python3
"""Self-test for tools/stash_lint.py — registered as the `LintSelfTest`
ctest, so a broken rule engine fails the build rather than silently
letting violations through.

Covers: each rule catches its fixture at the expected lines, the clean
fixture stays clean, both suppression forms work (and only as far as they
should), malformed suppressions are findings, the path-based exemptions
(src/concurrency, src/obs, the catomic shim) hold, and — when the clang
python bindings are importable — the libclang engine agrees with the
built-in lexer on every fixture.
"""

import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import stash_lint  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO, "tests", "lint", "fixtures")


def lint(name, engine="lexer"):
    path = os.path.join(FIXTURES, name)
    return stash_lint.lint_file(path, REPO, engine=engine)


def by_rule(findings):
    out = {}
    for f in findings:
        out.setdefault(f.rule, []).append(f.line)
    return out


class WallClockRule(unittest.TestCase):
    def test_catches_each_construct_once(self):
        got = by_rule(lint("bad_wallclock.cpp"))
        self.assertEqual(sorted(got), ["wall-clock"])
        self.assertEqual(got["wall-clock"], [10, 14, 18, 22, 26, 27])


class RelaxedOrderRule(unittest.TestCase):
    def test_flagged_outside_allowed_dirs(self):
        got = by_rule(lint("bad_relaxed.cpp"))
        self.assertEqual(got.get("relaxed-order"), [12, 16])
        self.assertNotIn("raw-atomic", got)  # line suppressions hold

    def test_exempt_under_concurrency_and_obs(self):
        src = os.path.join(FIXTURES, "bad_relaxed.cpp")
        with tempfile.TemporaryDirectory() as root:
            for rel, expect in (
                    ("src/concurrency/fixture.cpp", 0),
                    ("src/obs/fixture.cpp", 0),
                    ("src/query/fixture.cpp", 2),
            ):
                dst = os.path.join(root, rel)
                os.makedirs(os.path.dirname(dst), exist_ok=True)
                shutil.copy(src, dst)
                got = by_rule(stash_lint.lint_file(dst, root))
                self.assertEqual(len(got.get("relaxed-order", [])), expect,
                                 rel)


class RawAtomicRule(unittest.TestCase):
    def test_flagged_outside_shim(self):
        got = by_rule(lint("bad_raw_atomic.cpp"))
        self.assertEqual(got.get("raw-atomic"), [6, 10, 13])

    def test_catomic_shim_is_exempt(self):
        src = os.path.join(FIXTURES, "bad_raw_atomic.cpp")
        with tempfile.TemporaryDirectory() as root:
            dst = os.path.join(root, "src", "concurrency", "catomic.hpp")
            os.makedirs(os.path.dirname(dst))
            shutil.copy(src, dst)
            self.assertEqual(stash_lint.lint_file(dst, root), [])


class DiscardedReturnRule(unittest.TestCase):
    def test_statement_level_discards_only(self):
        got = by_rule(lint("bad_discard.cpp"))
        self.assertEqual(sorted(got), ["discarded-return"])
        self.assertEqual(got["discarded-return"], [20, 21, 23])


class MutexInLockFreeRule(unittest.TestCase):
    def test_marker_bans_blocking_locks(self):
        got = by_rule(lint("bad_mutex_in_lockfree.cpp"))
        self.assertEqual(sorted(got), ["mutex-in-lockfree"])
        self.assertEqual(got["mutex-in-lockfree"], [3, 7, 10, 10])

    def test_without_marker_locks_are_fine(self):
        src = os.path.join(FIXTURES, "bad_mutex_in_lockfree.cpp")
        with open(src, encoding="utf-8") as f:
            text = f.read()
        text = text.replace("stash-lint: lock-free-file", "(marker removed)")
        with tempfile.TemporaryDirectory() as root:
            dst = os.path.join(root, "src", "x.cpp")
            os.makedirs(os.path.dirname(dst))
            with open(dst, "w", encoding="utf-8") as f:
                f.write(text)
            self.assertEqual(stash_lint.lint_file(dst, root), [])


class Suppression(unittest.TestCase):
    def test_line_allow_covers_line_and_next_only(self):
        got = by_rule(lint("suppressed_line.cpp"))
        self.assertEqual(got, {"wall-clock": [16]})

    def test_allow_file_covers_one_rule_everywhere(self):
        got = by_rule(lint("suppressed_file.cpp"))
        self.assertEqual(got, {"wall-clock": [17]})

    def test_malformed_suppressions_are_findings(self):
        got = by_rule(lint("bad_suppression.cpp"))
        self.assertEqual(got.get("bad-suppression"), [6, 9])
        # A malformed allow() must not silence the line it sits on.
        self.assertEqual(got.get("wall-clock"), [9])


class CleanFixture(unittest.TestCase):
    def test_no_findings(self):
        self.assertEqual(lint("clean.cpp"), [])


class Tokenizer(unittest.TestCase):
    def test_strings_comments_and_raw_strings_are_stripped(self):
        toks = stash_lint.lexer_tokenize(
            'a /* rand() */ b // time(0)\n"rand()" R"x(clock())x" c\n')
        self.assertEqual([t.spelling for t in toks], ["a", "b", "c"])
        self.assertEqual([t.line for t in toks], [1, 1, 2])

    def test_multiline_constructs_keep_line_numbers(self):
        toks = stash_lint.lexer_tokenize('/* a\nb */ x\nR"(s\n)" y\n')
        spell = {t.spelling: t.line for t in toks}
        self.assertEqual(spell["x"], 2)
        self.assertEqual(spell["y"], 4)


class EngineParity(unittest.TestCase):
    def test_libclang_engine_matches_lexer_when_available(self):
        if stash_lint._load_libclang() is None:
            self.skipTest("clang python bindings not installed")
        for name in sorted(os.listdir(FIXTURES)):
            lex = {(f.rule, f.line) for f in lint(name, engine="lexer")}
            clg = {(f.rule, f.line) for f in lint(name, engine="libclang")}
            self.assertEqual(lex, clg, name)


class TreeGate(unittest.TestCase):
    def test_real_src_tree_is_clean(self):
        findings = []
        for path in stash_lint.default_targets(REPO):
            findings.extend(stash_lint.lint_file(path, REPO))
        self.assertEqual([f.render() for f in findings], [])


if __name__ == "__main__":
    unittest.main()
