#!/usr/bin/env python3
"""stash_lint: concurrency-invariant lint gate for the STASH parallel datapath.

Usage:
    tools/stash_lint.py [--root DIR] [--engine auto|lexer|libclang] [FILE ...]

With no FILE arguments, lints every .hpp/.cpp/.h under <root>/src.  Exits 0
when the tree is clean, 1 otherwise, printing one `path:line: [rule] message`
per finding.  CI runs this as a blocking ctest (`LintTree`); the rule engine
itself is covered by tools/stash_lint_test.py (`LintSelfTest`).

Rules (the invariant catalog lives in DESIGN.md §12):

  wall-clock        No wall-clock reads or unseeded/global RNG in src/: the
                    model checker (src/mc/) replays schedules byte-for-byte,
                    and the simulator's determinism contract requires all
                    time to come from sim::Clock and all randomness from a
                    seeded common::Rng.
  relaxed-order     `memory_order_relaxed` is allowed only under
                    src/concurrency/ (the shim and the lock-free primitives
                    the model checker proves) and src/obs/ (monotonic metric
                    counters).  Everywhere else relaxed is a latent
                    visibility bug, not an optimisation.
  raw-atomic        `std::atomic` may appear only in the catomic shim
                    (src/concurrency/catomic.hpp).  Raw atomics are
                    invisible to the interleaving explorer, so any new one
                    silently shrinks the verified surface.
  discarded-return  Calls to `decode_*` / `try_push` / `try_pop` whose
                    result is dropped on the floor.  [[nodiscard]] catches
                    most of these at compile time; the lint also catches
                    headers compiled out of tier-1 builds and keeps the
                    rule toolchain-independent.
  mutex-in-lockfree Files carrying a `// stash-lint: lock-free-file` marker
                    must not take blocking std:: locks (mutex family,
                    condition variables) — the marker is a progress claim.
  bad-suppression   A suppression comment that names an unknown rule or
                    omits its `-- reason` tail.

Suppressions (every one must carry a reason):

  // stash-lint: allow(rule) -- reason          (this line and the next)
  // stash-lint: allow-file(rule[, rule]) -- reason   (whole file)

Engines: `--engine=lexer` uses the built-in C++ tokenizer (no dependencies,
works on a stock python3).  `--engine=libclang` tokenizes through
clang.cindex when the python bindings are installed, which gets exact
comment/raw-string handling from clang's own lexer.  `--engine=auto` (the
default) picks libclang when importable, lexer otherwise.  Both engines feed
the same rule core, and the self-test cross-checks them on the fixture set
whenever libclang is present.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

RULES = {
    "wall-clock": "wall-clock or unseeded RNG in deterministic code",
    "relaxed-order": "memory_order_relaxed outside src/concurrency|src/obs",
    "raw-atomic": "raw std::atomic outside the catomic shim",
    "discarded-return": "discarded decode_*/try_push/try_pop result",
    "mutex-in-lockfree": "blocking lock in a lock-free-file",
    "bad-suppression": "malformed stash-lint suppression comment",
}

# wall-clock rule --------------------------------------------------------
BANNED_TYPE_IDENTS = {
    "system_clock": "std::chrono::system_clock is wall time",
    "steady_clock": "steady_clock reads host time; use sim::Clock",
    "high_resolution_clock": "high_resolution_clock reads host time",
    "random_device": "std::random_device is nondeterministic",
    "mt19937": "use common::Rng with an explicit seed",
    "mt19937_64": "use common::Rng with an explicit seed",
    "default_random_engine": "use common::Rng with an explicit seed",
}
BANNED_CALL_IDENTS = {
    "rand": "libc rand() is global-state RNG; use common::Rng",
    "srand": "libc srand() is global-state RNG; use common::Rng",
    "time": "time() is wall time; use sim::Clock",
    "clock": "clock() is host CPU time; use sim::Clock",
    "gettimeofday": "gettimeofday() is wall time; use sim::Clock",
    "clock_gettime": "clock_gettime() is wall time; use sim::Clock",
    "localtime": "localtime() reads the host timezone",
    "gmtime": "gmtime() is wall time; use common::CivilTime",
    "mktime": "mktime() reads the host timezone",
}

# mutex-in-lockfree rule -------------------------------------------------
BLOCKING_LOCK_IDENTS = {
    "mutex", "shared_mutex", "timed_mutex", "shared_timed_mutex",
    "recursive_mutex", "recursive_timed_mutex", "lock_guard", "unique_lock",
    "shared_lock", "scoped_lock", "condition_variable",
    "condition_variable_any",
}
LOCK_FREE_MARKER = "stash-lint: lock-free-file"

# discarded-return rule --------------------------------------------------
MUST_USE_CALL = re.compile(r"^(?:decode_\w+|try_push|try_pop)$")

SUPPRESS_RE = re.compile(
    r"stash-lint:\s*(allow|allow-file)\(([^)]*)\)(\s*--\s*(\S.*))?")

RAW_ATOMIC_EXEMPT = ("src/concurrency/catomic.hpp",)
RELAXED_OK_DIRS = ("src/concurrency/", "src/obs/")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Token:
    spelling: str
    line: int
    is_ident: bool


# ---------------------------------------------------------------------------
# Engine 1: built-in lexer.  A deliberately small C++ tokenizer: strips
# comments, string/char literals (including raw strings), and preprocessor
# line continuations, then emits identifier and punctuation tokens with line
# numbers.  It does not need to be a full lexer — the rules only look at
# identifier spellings and adjacent punctuation.
# ---------------------------------------------------------------------------

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def lexer_tokenize(text: str):
    tokens = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r\f\v":
            i += 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            line += text.count("\n", i, j)
            i = j
        elif text.startswith('R"', i):
            # Raw string: R"delim( ... )delim"
            m = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
            if m:
                end = text.find(")" + m.group(1) + '"', i + m.end())
                end = n if end < 0 else end + len(m.group(1)) + 2
                line += text.count("\n", i, end)
                i = end
            else:
                i += 1
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            line += text.count("\n", i, j)
            i = j + 1
        elif c.isdigit():
            m = _IDENT_RE.match(text, i)  # eats 0x1F, 42ull, etc.
            i = m.end() if m else i + 1
        elif _IDENT_RE.match(text, i):
            m = _IDENT_RE.match(text, i)
            tokens.append(Token(m.group(0), line, True))
            i = m.end()
        else:
            if text.startswith("::", i) or text.startswith("->", i):
                tokens.append(Token(text[i:i + 2], line, False))
                i += 2
            else:
                tokens.append(Token(c, line, False))
                i += 1
    return tokens


# ---------------------------------------------------------------------------
# Engine 2: libclang tokenizer.  Same Token stream, produced by clang's own
# lexer, so raw strings / trigraphs / UCNs are handled exactly.  Only used
# when the clang python bindings import cleanly; never required.
# ---------------------------------------------------------------------------


def _load_libclang():
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except Exception:  # library present but unloadable
        return None
    return (cindex, index)


def libclang_tokenize(path: str, text: str, cindex, index):
    tu = index.parse(
        path,
        args=["-x", "c++", "-std=c++20", "-fsyntax-only"],
        unsaved_files=[(path, text)],
        options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    tokens = []
    for t in tu.get_tokens(extent=tu.cursor.extent):
        kind = t.kind.name
        if kind == "COMMENT":
            continue
        if kind == "LITERAL":
            continue
        tokens.append(Token(t.spelling, t.location.line,
                            kind in ("IDENTIFIER", "KEYWORD")))
    return tokens


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class Suppressions:
    def __init__(self, raw_lines, findings, path):
        self.file_rules = set()
        self.line_rules = {}  # line number -> set of rules
        self.lock_free = any(LOCK_FREE_MARKER in ln for ln in raw_lines)
        for lineno, ln in enumerate(raw_lines, start=1):
            m = SUPPRESS_RE.search(ln)
            if not m:
                continue
            kind, rule_list, reason = m.group(1), m.group(2), m.group(4)
            rules = {r.strip() for r in rule_list.split(",") if r.strip()}
            bad = rules - set(RULES)
            if bad or not rules:
                findings.append(Finding(
                    path, lineno, "bad-suppression",
                    f"unknown rule(s) {sorted(bad) or '(none)'} in "
                    f"stash-lint {kind}(...)"))
                continue
            if not reason:
                findings.append(Finding(
                    path, lineno, "bad-suppression",
                    f"stash-lint {kind}({', '.join(sorted(rules))}) needs a "
                    "'-- reason' tail"))
                continue
            if kind == "allow-file":
                self.file_rules |= rules
            else:
                # Covers its own line and the next (comment-above idiom).
                for covered in (lineno, lineno + 1):
                    self.line_rules.setdefault(covered, set()).update(rules)

    def allows(self, rule: str, line: int) -> bool:
        return (rule in self.file_rules
                or rule in self.line_rules.get(line, set()))


# ---------------------------------------------------------------------------
# Rule core: operates on the Token stream + per-file metadata.
# ---------------------------------------------------------------------------


def _prev_significant(tokens, i):
    return tokens[i - 1] if i > 0 else None


def _chain_start(tokens, i):
    """Walks back over a `a::b.c->d` chain ending at the callee token i."""
    j = i
    while j >= 2 and tokens[j - 1].spelling in ("::", ".", "->") \
            and tokens[j - 2].is_ident:
        j -= 2
    if j >= 1 and tokens[j - 1].spelling == "::":  # leading ::
        j -= 1
    return j


def _matching_paren(tokens, i_open):
    depth = 0
    for j in range(i_open, len(tokens)):
        if tokens[j].spelling == "(":
            depth += 1
        elif tokens[j].spelling == ")":
            depth -= 1
            if depth == 0:
                return j
    return -1


def check_tokens(path, rel, tokens, sup, findings, raw_lines):
    in_lock_free = sup.lock_free
    relaxed_ok = rel.startswith(RELAXED_OK_DIRS)
    atomic_ok = rel in RAW_ATOMIC_EXEMPT

    def emit(rule, line, message):
        if not sup.allows(rule, line):
            findings.append(Finding(path, line, rule, message))

    for i, tok in enumerate(tokens):
        if not tok.is_ident:
            continue
        nxt = tokens[i + 1] if i + 1 < len(tokens) else None
        s = tok.spelling

        # wall-clock ----------------------------------------------------
        if s in BANNED_TYPE_IDENTS:
            emit("wall-clock", tok.line, BANNED_TYPE_IDENTS[s])
        elif s in BANNED_CALL_IDENTS and nxt and nxt.spelling == "(":
            prev = _prev_significant(tokens, i)
            qualified_std = (i >= 2 and tokens[i - 1].spelling == "::"
                             and tokens[i - 2].spelling == "std")
            if s in ("time", "clock") and not qualified_std:
                # These two collide with member names and declarations
                # (`long time() const`), so the unqualified form only fires
                # in unambiguous call positions.
                call_context = prev is None or prev.spelling in (
                    ";", "{", "}", "(", ",", "=", "return", "+", "-", "*",
                    "/", "<", ">", "?", ":", "&&", "||", "!")
                if call_context:
                    emit("wall-clock", tok.line, BANNED_CALL_IDENTS[s])
            elif prev is None or prev.spelling not in (".", "->"):
                # `obj.rand(...)` would be a member call on a STASH type,
                # not libc; everything else — including `std::rand` — fires.
                emit("wall-clock", tok.line, BANNED_CALL_IDENTS[s])

        # raw-atomic ----------------------------------------------------
        if not atomic_ok:
            if s == "atomic" and i >= 2 and tokens[i - 1].spelling == "::" \
                    and tokens[i - 2].spelling == "std":
                emit("raw-atomic", tok.line,
                     "raw std::atomic — use concurrency::catomic so the "
                     "model checker can see it")
            elif s in ("atomic_thread_fence", "atomic_signal_fence",
                       "atomic_flag"):
                emit("raw-atomic", tok.line,
                     f"raw std::{s} — use concurrency::fence/catomic")

        # relaxed-order -------------------------------------------------
        if s == "memory_order_relaxed" and not relaxed_ok:
            emit("relaxed-order", tok.line,
                 "memory_order_relaxed is only allowed under "
                 "src/concurrency/ and src/obs/")

        # mutex-in-lockfree ---------------------------------------------
        if in_lock_free and s in BLOCKING_LOCK_IDENTS:
            emit("mutex-in-lockfree", tok.line,
                 f"std::{s} in a lock-free-file — the marker promises no "
                 "blocking locks")

        # discarded-return ----------------------------------------------
        if MUST_USE_CALL.match(s) and nxt and nxt.spelling == "(":
            start = _chain_start(tokens, i)
            prev = _prev_significant(tokens, start)
            at_statement_start = prev is None or prev.spelling in (";", "{",
                                                                   "}")
            if at_statement_start:
                close = _matching_paren(tokens, i + 1)
                after = tokens[close + 1] if 0 <= close < len(tokens) - 1 \
                    else None
                if after is not None and after.spelling == ";":
                    emit("discarded-return", tok.line,
                         f"result of {s}() is discarded — handle it or "
                         "cast to (void) with a comment")

    # (Note: `#include <mutex>` needs no separate scan — both engines emit
    # the header-name identifier as a token, so the rule above fires.)
    _ = raw_lines


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def lint_file(path, root, engine="auto", _libclang_cache=[]):
    """Lints one file; returns a list of Findings."""
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines()
    rel = os.path.relpath(path, root).replace(os.sep, "/")

    findings = []
    sup = Suppressions(raw_lines, findings, path)

    clang = None
    if engine in ("auto", "libclang"):
        if not _libclang_cache:
            _libclang_cache.append(_load_libclang())
        clang = _libclang_cache[0]
        if clang is None and engine == "libclang":
            raise RuntimeError(
                "clang python bindings not available; use --engine=lexer")

    if clang is not None:
        tokens = libclang_tokenize(path, text, *clang)
    else:
        tokens = lexer_tokenize(text)

    check_tokens(path, rel, tokens, sup, findings, raw_lines)
    return findings


def default_targets(root):
    out = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "src")):
        for name in sorted(filenames):
            if name.endswith((".hpp", ".cpp", ".h")):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="stash_lint.py",
        description="Concurrency-invariant lint for the STASH tree.")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of tools/)")
    ap.add_argument("--engine", choices=("auto", "lexer", "libclang"),
                    default="auto")
    ap.add_argument("files", nargs="*",
                    help="files to lint (default: all of <root>/src)")
    args = ap.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    targets = args.files or default_targets(root)

    findings = []
    for path in targets:
        findings.extend(lint_file(path, root, engine=args.engine))

    for f in findings:
        print(f.render())
    if findings:
        print(f"stash_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
