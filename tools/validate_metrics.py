#!/usr/bin/env python3
"""Validate stash-metrics-v1 JSON exports against tools/metrics_schema.json.

Usage:
    tools/validate_metrics.py FILE [FILE ...]

Exits 0 when every file validates, 1 otherwise, printing one line per
problem.  Used by the CI observability lane on the payloads written by the
full-stack test (STASH_METRICS_EXPORT_PATH), `stashctl --metrics-json`, and
the bench figures (STASH_BENCH_METRICS_DIR).

Implements the small JSON Schema subset the checked-in schema uses (type,
const, required, properties, patternProperties, additionalProperties,
minimum, minItems, items, anyOf, $ref into #/definitions) so it runs on a
stock python3 with no third-party packages, then layers on semantic checks a
generic validator can't express: histogram bucket counts must be cumulative
(non-decreasing, ending at an explicit +Inf bucket equal to `count`).
"""

import json
import re
import sys


class Problem(Exception):
    pass


def _type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    raise Problem(f"schema uses unsupported type {expected!r}")


def _resolve(schema, root):
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise Problem(f"unsupported $ref {ref!r}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(value, schema, root, path):
    schema = _resolve(schema, root)

    if "const" in schema:
        if value != schema["const"]:
            raise Problem(f"{path}: expected {schema['const']!r}, got {value!r}")
        return

    if "anyOf" in schema:
        for option in schema["anyOf"]:
            try:
                validate(value, option, root, path)
                return
            except Problem:
                continue
        raise Problem(f"{path}: {value!r} matches no anyOf branch")

    if "type" in schema and not _type_ok(value, schema["type"]):
        raise Problem(f"{path}: expected {schema['type']}, "
                      f"got {type(value).__name__}")

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        raise Problem(f"{path}: {value} below minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                raise Problem(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        patterns = {re.compile(p): s
                    for p, s in schema.get("patternProperties", {}).items()}
        extra_allowed = schema.get("additionalProperties", True)
        for key, child in value.items():
            child_path = f"{path}.{key}"
            if key in props:
                validate(child, props[key], root, child_path)
            else:
                matched = False
                for pattern, sub in patterns.items():
                    if pattern.search(key):
                        matched = True
                        validate(child, sub, root, child_path)
                if not matched and extra_allowed is False:
                    raise Problem(f"{path}: unexpected key {key!r}")

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            raise Problem(f"{path}: fewer than {schema['minItems']} items")
        if "items" in schema:
            for i, item in enumerate(value):
                validate(item, schema["items"], root, f"{path}[{i}]")


def check_histogram_semantics(doc):
    for name, hist in doc.get("histograms", {}).items():
        buckets = hist["buckets"]
        if buckets[-1]["le"] != "+Inf":
            raise Problem(f"histograms.{name}: last bucket must be +Inf")
        bounds = [b["le"] for b in buckets[:-1]]
        if any(not isinstance(b, (int, float)) for b in bounds):
            raise Problem(f"histograms.{name}: only the last bucket may be +Inf")
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise Problem(f"histograms.{name}: bucket bounds must be strictly "
                          "increasing")
        counts = [b["count"] for b in buckets]
        if counts != sorted(counts):
            raise Problem(f"histograms.{name}: bucket counts must be "
                          "cumulative (non-decreasing)")
        if counts[-1] != hist["count"]:
            raise Problem(f"histograms.{name}: +Inf bucket ({counts[-1]}) != "
                          f"count ({hist['count']})")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2].strip(), file=sys.stderr)
        return 2
    schema_path = __file__.rsplit("/", 1)[0] + "/metrics_schema.json"
    with open(schema_path, encoding="utf-8") as f:
        schema = json.load(f)

    failures = 0
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            validate(doc, schema, schema, "$")
            check_histogram_semantics(doc)
        except (OSError, json.JSONDecodeError, Problem) as err:
            print(f"FAIL {path}: {err}")
            failures += 1
        else:
            counters = len(doc["counters"])
            gauges = len(doc["gauges"])
            hists = len(doc["histograms"])
            print(f"OK   {path}: {counters} counters, {gauges} gauges, "
                  f"{hists} histograms at t={doc['sim_time_us']}us")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
