#include "storage/galileo_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace stash {

GalileoStore::GalileoStore(std::shared_ptr<const NamGenerator> generator,
                           int partition_prefix_length)
    : generator_(std::move(generator)), prefix_len_(partition_prefix_length) {
  if (!generator_) throw std::invalid_argument("GalileoStore: null generator");
  if (prefix_len_ < 1 || prefix_len_ > geohash::kMaxPrecision)
    throw std::invalid_argument("GalileoStore: bad partition prefix length");
}

ScanResult GalileoStore::scan_partition(std::string_view partition,
                                        const BoundingBox& region,
                                        const TimeRange& time,
                                        const Resolution& res) const {
  if (partition.size() != static_cast<std::size_t>(prefix_len_))
    throw std::invalid_argument("GalileoStore::scan_partition: bad partition key");
  if (!res.valid())
    throw std::invalid_argument("GalileoStore::scan_partition: bad resolution");
  ScanResult out;
  const BoundingBox clipped = region.intersection(geohash::decode(partition));
  if (!clipped.valid() || !time.valid() || time.begin >= time.end) return out;

  // One block file per (partition, day): each day touched costs one seek,
  // and each day's records reflect that block's current version.
  const std::int64_t first_day =
      time.begin / 86400 - (time.begin % 86400 < 0 ? 1 : 0);
  const std::int64_t last_day = (time.end - 1) / 86400;
  for (std::int64_t day = first_day; day <= last_day; ++day) {
    const TimeRange day_range{std::max(time.begin, day * 86400),
                              std::min(time.end, (day + 1) * 86400)};
    const BlockKey block{std::string(partition), day};
    std::uint64_t version = block_version(block);
    const auto rot = rot_.find(block);
    if (rot != rot_.end()) {
      if (verify_checksums_) {
        // The block's checksum no longer matches its contents: count the
        // failure, quarantine it for the scrubber, charge the seek that
        // discovered the rot, and withhold its records so the caller
        // answers degraded instead of wrong.  Scans run concurrently on
        // wall-clock worker threads; only this cold path takes the lock.
        {
          MutexLock lock(integrity_mutex_);
          ++integrity_.checksum_failures;
          if (quarantine_.insert(block).second)
            ++integrity_.blocks_quarantined;
        }
        ++out.stats.blocks_touched;
        ++out.stats.blocks_corrupt;
        out.corrupt_blocks.push_back(block);
        continue;
      }
      // Verification off: serve the rotted bytes.  The salt perturbs the
      // version, so the records are plausible but wrong — silent corruption.
      version ^= rot->second;
    }
    const ObservationList records =
        generator_->generate(clipped, day_range, version);
    ++out.stats.blocks_touched;
    out.stats.records_scanned += records.size();
    out.stats.bytes_read += records.size() * kObservationBytes;
    for (const auto& obs : records) {
      const CellKey key(geohash::encode(obs.position, res.spatial),
                        TemporalBin::of_timestamp(obs.timestamp, res.temporal));
      auto [it, inserted] = out.cells.try_emplace(key, kNamAttributeCount);
      it->second.add_observation(obs.values.data(), obs.values.size());
    }
  }
  return out;
}

std::uint64_t GalileoStore::ingest_update(const BlockKey& key) {
  if (key.partition.size() != static_cast<std::size_t>(prefix_len_))
    throw std::invalid_argument("GalileoStore::ingest_update: bad partition key");
  // A rewrite replaces the block's bytes wholesale, healing any rot.
  rot_.erase(key);
  {
    MutexLock lock(integrity_mutex_);
    quarantine_.erase(key);
  }
  return ++versions_[key];
}

void GalileoStore::rot_block(const BlockKey& key) {
  if (key.partition.size() != static_cast<std::size_t>(prefix_len_))
    throw std::invalid_argument("GalileoStore::rot_block: bad partition key");
  // Fold the key into the salt so distinct blocks rot differently; keep it
  // non-zero so the version perturbation never degenerates to a no-op.
  std::uint64_t salt = fnv1a(key.partition);
  hash_combine(salt, static_cast<std::uint64_t>(key.day));
  if (salt == 0) salt = 1;
  rot_[key] = salt;
  MutexLock lock(integrity_mutex_);
  ++integrity_.blocks_rotted;
}

bool GalileoStore::repair_block(const BlockKey& key) {
  const bool was_bad = rot_.erase(key) > 0;
  MutexLock lock(integrity_mutex_);
  const bool was_quarantined = quarantine_.erase(key) > 0;
  if (was_bad || was_quarantined) ++integrity_.blocks_repaired;
  return was_bad || was_quarantined;
}

bool GalileoStore::block_rotted(const BlockKey& key) const {
  return rot_.contains(key);
}

bool GalileoStore::block_quarantined(const BlockKey& key) const {
  MutexLock lock(integrity_mutex_);
  return quarantine_.contains(key);
}

bool GalileoStore::verify_block(const BlockKey& key) const {
  return !rot_.contains(key);
}

std::size_t GalileoStore::scrub() {
  std::size_t newly = 0;
  MutexLock lock(integrity_mutex_);
  for (const auto& [key, salt] : rot_) {
    if (!quarantine_.insert(key).second) continue;
    ++integrity_.checksum_failures;
    ++integrity_.blocks_quarantined;
    ++newly;
  }
  return newly;
}

std::vector<BlockKey> GalileoStore::quarantine_list() const {
  MutexLock lock(integrity_mutex_);
  return {quarantine_.begin(), quarantine_.end()};
}

GalileoStore::IntegrityStats GalileoStore::integrity() const {
  MutexLock lock(integrity_mutex_);
  return integrity_;
}

std::uint64_t GalileoStore::block_version(const BlockKey& key) const {
  const auto it = versions_.find(key);
  return it == versions_.end() ? 0 : it->second;
}

ScanResult GalileoStore::scan(const BoundingBox& region, const TimeRange& time,
                              const Resolution& res) const {
  ScanResult total;
  for (const auto& partition : geohash::covering(region, prefix_len_)) {
    ScanResult part = scan_partition(partition, region, time, res);
    total.stats += part.stats;
    total.corrupt_blocks.insert(total.corrupt_blocks.end(),
                                part.corrupt_blocks.begin(),
                                part.corrupt_blocks.end());
    for (auto& [key, summary] : part.cells) {
      auto [it, inserted] = total.cells.try_emplace(key, std::move(summary));
      if (!inserted) it->second.merge(summary);
    }
  }
  return total;
}

std::size_t GalileoStore::block_bytes(const BlockKey& key) const {
  const BoundingBox box = geohash::decode(key.partition);
  const TimeRange day{key.day * 86400, (key.day + 1) * 86400};
  return generator_->count(box, day) * kObservationBytes;
}

}  // namespace stash
