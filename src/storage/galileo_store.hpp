// Galileo-like back-end storage (paper §VI-C).
//
// "Galileo is a zero-hop DHT based storage system that uses Geohash to
// generate data partitions that store and colocate geospatially proximate
// data points."  One *block* holds the observations of one partition
// (geohash prefix) for one day.  Block contents are produced by the
// deterministic NAM-like generator, so the store behaves like a 1.1 TB
// on-disk dataset without materialising it; the ScanStats it returns feed
// the simulator's disk/CPU cost model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/summary.hpp"
#include "common/thread_annotations.hpp"
#include "geo/cell_key.hpp"
#include "geo/resolution.hpp"
#include "model/nam_generator.hpp"

namespace stash {

/// Identifies one storage block: a partition's observations for one day.
struct BlockKey {
  std::string partition;   // geohash prefix (DHT partition key)
  std::int64_t day = 0;    // epoch day

  bool operator==(const BlockKey&) const = default;
};

struct BlockKeyHash {
  [[nodiscard]] std::size_t operator()(const BlockKey& k) const noexcept {
    std::uint64_t h = fnv1a(k.partition);
    hash_combine(h, static_cast<std::uint64_t>(k.day));
    return static_cast<std::size_t>(h);
  }
};

/// Resource usage of a scan; drives the virtual-time disk/CPU charges.
struct ScanStats {
  std::size_t blocks_touched = 0;   // one disk seek each
  std::size_t records_scanned = 0;
  std::size_t bytes_read = 0;
  std::size_t blocks_corrupt = 0;   // failed verification, yielded no records

  ScanStats& operator+=(const ScanStats& other) noexcept {
    blocks_touched += other.blocks_touched;
    records_scanned += other.records_scanned;
    bytes_read += other.bytes_read;
    blocks_corrupt += other.blocks_corrupt;
    return *this;
  }
};

/// Per-cell aggregates produced by a scan.
using CellSummaryMap = std::unordered_map<CellKey, Summary, CellKeyHash>;

struct ScanResult {
  CellSummaryMap cells;
  ScanStats stats;
  /// Blocks that failed checksum verification during this scan.  Their
  /// records are withheld (the caller must answer degraded, not wrong) and
  /// they are already quarantined for the scrubber to repair.
  std::vector<BlockKey> corrupt_blocks;
};

class GalileoStore {
 public:
  /// `partition_prefix_length` must match the DHT's (default 2).
  explicit GalileoStore(std::shared_ptr<const NamGenerator> generator,
                        int partition_prefix_length = 2);

  [[nodiscard]] const NamGenerator& generator() const noexcept { return *generator_; }
  [[nodiscard]] int partition_prefix_length() const noexcept { return prefix_len_; }

  /// Aggregates all observations of `partition` inside region × time into
  /// Cells at `res`.  The scanned region is clipped to the partition's own
  /// bounding box — a block never yields data outside its partition.
  [[nodiscard]] ScanResult scan_partition(std::string_view partition,
                                          const BoundingBox& region,
                                          const TimeRange& time,
                                          const Resolution& res) const;

  /// Convenience: a full query scan across every partition the region
  /// touches (what the basic, no-STASH system executes per query).
  [[nodiscard]] ScanResult scan(const BoundingBox& region, const TimeRange& time,
                                const Resolution& res) const;

  /// On-disk size of one block (drives read cost when a whole block streams).
  [[nodiscard]] std::size_t block_bytes(const BlockKey& key) const;

  // --- real-time ingest (paper §IV-D: "systems with real-time data") ---
  /// Simulates a data update rewriting one block: subsequent scans of that
  /// (partition, day) observe new attribute values.  Returns the block's
  /// new version.  Callers must invalidate dependent caches (the cluster's
  /// ingest path does this via the PLM).
  std::uint64_t ingest_update(const BlockKey& key);

  [[nodiscard]] std::uint64_t block_version(const BlockKey& key) const;

  // --- integrity (block checksums, bit-rot, scrub-and-repair) ---
  /// Lifetime integrity counters, fed to the cluster's metrics registry.
  struct IntegrityStats {
    std::uint64_t checksum_failures = 0;  ///< scans that hit a rotted block
    std::uint64_t blocks_quarantined = 0; ///< distinct blocks quarantined
    std::uint64_t blocks_repaired = 0;    ///< repair_block() on a rotted block
    std::uint64_t blocks_rotted = 0;      ///< rot_block() injections
  };

  /// Injects bit-rot into one block: its per-block checksum no longer
  /// matches its contents.  With verification on, the next scan detects
  /// the mismatch, quarantines the block and withholds its records; with
  /// verification off the scan serves silently-wrong records — exactly the
  /// failure mode checksums exist to prevent.
  void rot_block(const BlockKey& key);

  /// Rewrites one block from pristine data (the repair action): clears its
  /// rot and releases it from quarantine.  Returns true when the block was
  /// actually rotted or quarantined.
  bool repair_block(const BlockKey& key);

  [[nodiscard]] bool block_rotted(const BlockKey& key) const;
  [[nodiscard]] bool block_quarantined(const BlockKey& key) const;

  /// Recomputes one block's checksum against its contents — the scrubber's
  /// probe.  False means the block is rotted.
  [[nodiscard]] bool verify_block(const BlockKey& key) const;

  /// One scrubber pass over the block table (every block with explicit
  /// state: rewritten or rotted).  Verifies each checksum and quarantines
  /// failures without waiting for a query to trip over them.  Returns the
  /// number of blocks newly quarantined.
  std::size_t scrub();

  /// Blocks currently in quarantine, in no particular order.
  [[nodiscard]] std::vector<BlockKey> quarantine_list() const;

  /// Snapshot of the lifetime counters (copied under the integrity lock —
  /// scans on wall-clock worker threads update them concurrently).
  [[nodiscard]] IntegrityStats integrity() const;

  /// Toggles checksum verification on scans (on by default; off only to
  /// demonstrate the silently-wrong baseline in tests).
  void set_verify_checksums(bool on) noexcept { verify_checksums_ = on; }
  [[nodiscard]] bool verify_checksums() const noexcept { return verify_checksums_; }

 private:
  std::shared_ptr<const NamGenerator> generator_;
  int prefix_len_;
  std::unordered_map<BlockKey, std::uint64_t, BlockKeyHash> versions_;
  /// Rot salt per block: non-zero means the stored bytes no longer match
  /// the block's checksum.  The salt perturbs the generator version, so a
  /// rotted block read without verification yields plausible — but wrong —
  /// records rather than garbage, the worst case for a reader to detect.
  std::unordered_map<BlockKey, std::uint64_t, BlockKeyHash> rot_;
  bool verify_checksums_ = true;
  // Detection happens inside const scans; quarantine state and counters
  // are bookkeeping about the store, not logical contents, hence mutable.
  // Wall-clock workers scan concurrently, so the bookkeeping is guarded:
  // the lock is taken only on the corruption-detection path and in the
  // (cold) accessors, never on a clean scan.
  mutable Mutex integrity_mutex_;
  mutable std::unordered_set<BlockKey, BlockKeyHash> quarantine_
      STASH_GUARDED_BY(integrity_mutex_);
  mutable IntegrityStats integrity_ STASH_GUARDED_BY(integrity_mutex_);
};

}  // namespace stash
