// Latency statistics for benches and examples: exact percentiles over a
// recorded sample set (bench scale is small enough that we keep samples
// rather than approximate with buckets).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stash {

class LatencyStats {
 public:
  void record(std::int64_t value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  template <typename Range>
  void record_all(const Range& values) {
    for (const auto& v : values) record(v);
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const;
  [[nodiscard]] double mean() const;
  /// Exact q-quantile (0 <= q <= 1) by the nearest-rank method.
  [[nodiscard]] std::int64_t percentile(double q) const;

  [[nodiscard]] std::int64_t p50() const { return percentile(0.50); }
  [[nodiscard]] std::int64_t p95() const { return percentile(0.95); }
  [[nodiscard]] std::int64_t p99() const { return percentile(0.99); }

  /// "mean=1.23ms p50=1.10ms p95=2.20ms p99=3.00ms (n=100)": samples are
  /// recorded in microseconds and rendered in milliseconds, so the name
  /// carries the *output* unit.  (Was `summary_us`, which printed ms under
  /// a µs name — any caller parsing the figure by name got a 1000x error.)
  [[nodiscard]] std::string summary_ms() const;

 private:
  void sort_if_needed() const;

  mutable std::vector<std::int64_t> samples_;
  mutable bool sorted_ = false;
};

}  // namespace stash
