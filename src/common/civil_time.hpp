// Civil (proleptic Gregorian, UTC) calendar arithmetic.
//
// STASH's temporal hierarchy (Year → Month → Day → Hour) needs exact
// month-length and epoch conversions.  The days-from-civil / civil-from-days
// algorithms are Howard Hinnant's public-domain formulas.
#pragma once

#include <cstdint>

namespace stash {

struct CivilDate {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  bool operator==(const CivilDate&) const = default;
};

[[nodiscard]] bool is_leap_year(int year) noexcept;
[[nodiscard]] int days_in_month(int year, int month) noexcept;

/// Days since 1970-01-01 (can be negative).
[[nodiscard]] std::int64_t days_from_civil(const CivilDate& d) noexcept;
[[nodiscard]] CivilDate civil_from_days(std::int64_t days) noexcept;

/// Unix seconds (UTC, no leap seconds) of midnight of the given date.
[[nodiscard]] std::int64_t unix_seconds(const CivilDate& d, int hour = 0,
                                        int minute = 0, int second = 0) noexcept;

struct CivilDateTime {
  CivilDate date;
  int hour = 0;  // 0..23

  bool operator==(const CivilDateTime&) const = default;
};

[[nodiscard]] CivilDateTime civil_from_unix_seconds(std::int64_t ts) noexcept;

}  // namespace stash
