// Small hashing utilities shared across STASH modules.
//
// STASH disperses Cells over a zero-hop DHT keyed by geohash, and its
// per-level graphs are hash maps keyed by (geohash, temporal-bin) pairs;
// every module therefore needs a cheap, stable, well-mixed hash that does
// not depend on libstdc++'s identity hash for integers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace stash {

/// 64-bit finalizer from SplitMix64; a strong integer mixer.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte string; stable across platforms and runs.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// boost-style hash_combine with a 64-bit mixer.
inline void hash_combine(std::uint64_t& seed, std::uint64_t value) noexcept {
  seed ^= mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace stash
