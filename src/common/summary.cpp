#include "common/summary.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace stash {

void AttributeSummary::add(double value) noexcept {
  ++count;
  min = std::min(min, value);
  max = std::max(max, value);
  sum += value;
  sum_sq += value * value;
}

void AttributeSummary::merge(const AttributeSummary& other) noexcept {
  if (other.count == 0) return;
  count += other.count;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  sum += other.sum;
  sum_sq += other.sum_sq;
}

double AttributeSummary::mean() const noexcept {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double AttributeSummary::variance() const noexcept {
  if (count < 2) return 0.0;
  const double n = static_cast<double>(count);
  const double m = sum / n;
  // Guard against catastrophic cancellation producing a tiny negative value.
  return std::max(0.0, sum_sq / n - m * m);
}

double AttributeSummary::stddev() const noexcept { return std::sqrt(variance()); }

namespace {
bool close(double a, double b, double rel_tol) noexcept {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= rel_tol * scale;
}
}  // namespace

bool AttributeSummary::approx_equals(const AttributeSummary& other,
                                     double rel_tol) const noexcept {
  if (count != other.count) return false;
  if (count == 0) return true;
  return close(min, other.min, rel_tol) && close(max, other.max, rel_tol) &&
         close(sum, other.sum, rel_tol) && close(sum_sq, other.sum_sq, rel_tol);
}

Summary Summary::from_attributes(std::vector<AttributeSummary> attrs) {
  if (attrs.empty()) return Summary{};
  for (const auto& a : attrs) {
    if (a.count != attrs.front().count)
      throw std::invalid_argument(
          "Summary::from_attributes: inconsistent observation counts");
  }
  Summary out;
  out.attrs_ = std::move(attrs);
  return out;
}

void Summary::add_observation(const double* values, std::size_t n) {
  if (n != attrs_.size())
    throw std::invalid_argument("Summary::add_observation: attribute count mismatch");
  for (std::size_t i = 0; i < n; ++i) attrs_[i].add(values[i]);
}

void Summary::merge(const Summary& other) {
  if (attrs_.empty()) {
    attrs_ = other.attrs_;
    return;
  }
  if (other.attrs_.empty()) return;
  if (attrs_.size() != other.attrs_.size())
    throw std::invalid_argument("Summary::merge: attribute count mismatch");
  for (std::size_t i = 0; i < attrs_.size(); ++i) attrs_[i].merge(other.attrs_[i]);
}

bool Summary::approx_equals(const Summary& other, double rel_tol) const noexcept {
  if (attrs_.size() != other.attrs_.size()) return false;
  for (std::size_t i = 0; i < attrs_.size(); ++i)
    if (!attrs_[i].approx_equals(other.attrs_[i], rel_tol)) return false;
  return true;
}

std::string Summary::to_string() const {
  std::ostringstream out;
  out << "{n=" << observation_count();
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    const auto& a = attrs_[i];
    out << ", a" << i << "=[min=" << a.min << ", max=" << a.max
        << ", mean=" << a.mean() << "]";
  }
  out << "}";
  return out.str();
}

}  // namespace stash
