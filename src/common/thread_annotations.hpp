// Clang thread-safety-analysis annotations and annotated lock types.
//
// The embedded front-end graph (§IX-A) runs with real reader and
// maintenance threads, so its locking discipline is machine-checked:
// shared state is declared STASH_GUARDED_BY(mutex) and every accessor
// acquires the right capability, which `-Wthread-safety` verifies at
// compile time on Clang.  On other compilers the macros expand to
// nothing and the wrappers behave exactly like the std types they hold.
//
// The wrappers exist because the analysis needs the attributes on the
// lock member functions themselves; std::shared_mutex cannot carry them.
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define STASH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef STASH_THREAD_ANNOTATION
#define STASH_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define STASH_CAPABILITY(x) STASH_THREAD_ANNOTATION(capability(x))
#define STASH_SCOPED_CAPABILITY STASH_THREAD_ANNOTATION(scoped_lockable)
#define STASH_GUARDED_BY(x) STASH_THREAD_ANNOTATION(guarded_by(x))
#define STASH_PT_GUARDED_BY(x) STASH_THREAD_ANNOTATION(pt_guarded_by(x))
#define STASH_REQUIRES(...) \
  STASH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define STASH_REQUIRES_SHARED(...) \
  STASH_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define STASH_EXCLUDES(...) STASH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define STASH_ACQUIRE(...) \
  STASH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define STASH_ACQUIRE_SHARED(...) \
  STASH_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define STASH_RELEASE(...) \
  STASH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define STASH_RELEASE_SHARED(...) \
  STASH_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define STASH_RELEASE_GENERIC(...) \
  STASH_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define STASH_TRY_ACQUIRE(...) \
  STASH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define STASH_ASSERT_CAPABILITY(x) \
  STASH_THREAD_ANNOTATION(assert_capability(x))
#define STASH_RETURN_CAPABILITY(x) STASH_THREAD_ANNOTATION(lock_returned(x))
#define STASH_NO_THREAD_SAFETY_ANALYSIS \
  STASH_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace stash {

/// std::mutex carrying the "capability" attribute the analysis tracks.
class STASH_CAPABILITY("mutex") Mutex {
 public:
  void lock() STASH_ACQUIRE() { mutex_.lock(); }
  void unlock() STASH_RELEASE() { mutex_.unlock(); }
  bool try_lock() STASH_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// std::shared_mutex with exclusive and shared capability annotations.
class STASH_CAPABILITY("shared_mutex") SharedMutex {
 public:
  void lock() STASH_ACQUIRE() { mutex_.lock(); }
  void unlock() STASH_RELEASE() { mutex_.unlock(); }
  bool try_lock() STASH_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  void lock_shared() STASH_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() STASH_RELEASE_SHARED() { mutex_.unlock_shared(); }
  bool try_lock_shared() STASH_TRY_ACQUIRE(true) {
    return mutex_.try_lock_shared();
  }

 private:
  std::shared_mutex mutex_;
};

/// RAII exclusive lock over Mutex or SharedMutex.
template <typename M>
class STASH_SCOPED_CAPABILITY WriterLockT {
 public:
  explicit WriterLockT(M& mutex) STASH_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~WriterLockT() STASH_RELEASE() { mutex_.unlock(); }

  WriterLockT(const WriterLockT&) = delete;
  WriterLockT& operator=(const WriterLockT&) = delete;

 private:
  M& mutex_;
};

/// RAII shared (reader) lock over SharedMutex.
class STASH_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) STASH_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderLock() STASH_RELEASE() { mutex_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

using MutexLock = WriterLockT<Mutex>;
using WriterLock = WriterLockT<SharedMutex>;

}  // namespace stash
