// Deterministic random number generation.
//
// Every stochastic piece of the reproduction (synthetic NAM-like records,
// workload rectangles, probabilistic rerouting under hotspot) is seeded so
// that benchmark runs and tests are exactly repeatable.  We use
// xoshiro256** seeded via SplitMix64 — fast, tiny state, good quality.
#pragma once

#include <cstdint>
#include <limits>

namespace stash {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5741534853544153ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

 private:
  std::uint64_t s_[4]{};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace stash
