#include "common/codec.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/checksum.hpp"

namespace stash::codec {
namespace {

/// Reserve for a decoded count without trusting it: every element costs at
/// least one input byte, so `in.remaining()` bounds the real element count.
/// Reserving the claimed count directly lets a short hostile buffer demand
/// gigabytes before the first read fails (found by the codec fuzz harness).
template <typename Vec>
void reserve_bounded(Vec& vec, std::uint64_t claimed, const Reader& in) {
  vec.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(claimed, in.remaining())));
}

}  // namespace

void put_varint(Buffer& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_u32(Buffer& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void put_u64(Buffer& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void put_double(Buffer& out, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  put_u64(out, bits);
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > size_) throw std::out_of_range("codec::Reader: truncated input");
}

std::uint64_t Reader::varint() {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    need(1);
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7e) != 0))
      throw std::overflow_error("codec::Reader: varint overflow");
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return value;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return value;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void encode(Buffer& out, const CellKey& key) {
  put_u64(out, key.spatial);
  put_u32(out, key.temporal);
}

CellKey decode_cell_key(Reader& in) {
  CellKey key;
  key.spatial = in.u64();
  key.temporal = in.u32();
  // Validate by unpacking (throws on malformed labels).
  (void)key.geohash_str();
  (void)key.bin();
  return key;
}

void encode(Buffer& out, const AttributeSummary& summary) {
  put_varint(out, summary.count);
  if (summary.count == 0) return;
  put_double(out, summary.min);
  put_double(out, summary.max);
  put_double(out, summary.sum);
  put_double(out, summary.sum_sq);
}

AttributeSummary decode_attribute_summary(Reader& in) {
  AttributeSummary summary;
  summary.count = in.varint();
  if (summary.count == 0) return summary;
  summary.min = in.f64();
  summary.max = in.f64();
  summary.sum = in.f64();
  summary.sum_sq = in.f64();
  return summary;
}

void encode(Buffer& out, const Summary& summary) {
  put_varint(out, summary.num_attributes());
  for (const auto& attr : summary.attributes()) encode(out, attr);
}

Summary decode_summary(Reader& in) {
  const std::uint64_t n = in.varint();
  if (n > 1024) throw std::out_of_range("codec: implausible attribute count");
  std::vector<AttributeSummary> attrs;
  reserve_bounded(attrs, n, in);
  for (std::uint64_t i = 0; i < n; ++i)
    attrs.push_back(decode_attribute_summary(in));
  return Summary::from_attributes(std::move(attrs));
}

void encode(Buffer& out, const ChunkContribution& contribution) {
  put_varint(out, static_cast<std::uint64_t>(contribution.res.spatial));
  put_varint(out, static_cast<std::uint64_t>(contribution.res.temporal));
  put_u64(out, contribution.chunk.prefix);
  put_u32(out, contribution.chunk.temporal);
  put_varint(out, contribution.days.size());
  for (std::int64_t day : contribution.days)
    put_varint(out, static_cast<std::uint64_t>(day));
  put_varint(out, contribution.cells.size());
  for (const auto& [key, summary] : contribution.cells) {
    encode(out, key);
    encode(out, summary);
  }
}

ChunkContribution decode_chunk_contribution(Reader& in) {
  ChunkContribution c;
  c.res.spatial = static_cast<int>(in.varint());
  c.res.temporal = static_cast<TemporalRes>(in.varint());
  if (!c.res.valid()) throw std::out_of_range("codec: bad resolution");
  c.chunk.prefix = in.u64();
  c.chunk.temporal = in.u32();
  const std::uint64_t days = in.varint();
  if (days > 100000) throw std::out_of_range("codec: implausible day count");
  reserve_bounded(c.days, days, in);
  for (std::uint64_t i = 0; i < days; ++i)
    c.days.push_back(static_cast<std::int64_t>(in.varint()));
  const std::uint64_t cells = in.varint();
  if (cells > 100'000'000) throw std::out_of_range("codec: implausible cell count");
  reserve_bounded(c.cells, cells, in);
  for (std::uint64_t i = 0; i < cells; ++i) {
    CellKey key = decode_cell_key(in);
    Summary summary = decode_summary(in);
    c.cells.emplace_back(key, std::move(summary));
  }
  return c;
}

Buffer encode_replication_payload(const std::vector<ChunkContribution>& payload) {
  Buffer out;
  put_varint(out, payload.size());
  for (const auto& contribution : payload) encode(out, contribution);
  return out;
}

std::vector<ChunkContribution> decode_replication_payload(const Buffer& buffer) {
  Reader in(buffer);
  const std::uint64_t n = in.varint();
  if (n > 1'000'000) throw std::out_of_range("codec: implausible payload size");
  std::vector<ChunkContribution> payload;
  reserve_bounded(payload, n, in);
  for (std::uint64_t i = 0; i < n; ++i)
    payload.push_back(decode_chunk_contribution(in));
  if (!in.done()) throw std::out_of_range("codec: trailing bytes");
  return payload;
}

Buffer encode_frame(const Buffer& payload) {
  if (payload.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("codec::encode_frame: payload too large");
  Buffer out;
  out.reserve(payload.size() + kFrameOverhead);
  put_u32(out, kFrameMagic);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u64(out, checksum64(payload.data(), payload.size()));
  return out;
}

Buffer decode_frame(const Buffer& frame) {
  if (frame.size() < kFrameOverhead)
    throw IntegrityError("frame shorter than its fixed overhead");
  Reader in(frame);
  if (in.u32() != kFrameMagic) throw IntegrityError("bad frame magic");
  const std::uint32_t declared = in.u32();
  // Length check BEFORE any allocation: the declared payload length must
  // equal exactly the bytes between the header and the 8-byte footer.  A
  // frame claiming more than it carries (torn/truncated) or less (trailing
  // garbage) is rejected without reserving a single byte for it.
  if (declared != frame.size() - kFrameOverhead)
    throw IntegrityError("declared payload length disagrees with frame size");
  const std::uint8_t* payload = frame.data() + 8;
  const std::uint64_t expected = checksum64(payload, declared);
  Reader footer(frame.data() + 8 + declared, 8);
  if (footer.u64() != expected) throw IntegrityError("checksum mismatch");
  return Buffer(payload, payload + declared);
}

Buffer encode_replication_frame(const std::vector<ChunkContribution>& payload) {
  return encode_frame(encode_replication_payload(payload));
}

std::vector<ChunkContribution> decode_replication_frame(const Buffer& frame) {
  return decode_replication_payload(decode_frame(frame));
}

std::size_t encoded_size(const ChunkContribution& contribution) {
  Buffer scratch;
  encode(scratch, contribution);
  return scratch.size();
}

std::size_t encoded_size(const std::vector<ChunkContribution>& payload) {
  std::size_t total = 1;  // payload-count varint (payloads are small counts)
  for (const auto& contribution : payload) total += encoded_size(contribution);
  return total;
}

}  // namespace stash::codec
