// Binary serialization for STASH's wire objects.
//
// Replication Requests ship Cliques of Cells between nodes (§VII-B.4) and
// subquery responses ship Cell summaries to the front-end; this codec
// defines the byte format (little-endian fixed ints, LEB128 varints for
// counts) so transfer sizes in the simulator come from real encoded bytes
// rather than guessed constants.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/summary.hpp"
#include "core/graph.hpp"
#include "geo/cell_key.hpp"

namespace stash::codec {

using Buffer = std::vector<std::uint8_t>;

/// A frame failed its integrity checks: bad magic, declared length
/// disagreeing with the bytes on hand, or a checksum-footer mismatch.
/// Typed so receivers can distinguish "corrupted in flight / at rest"
/// (recoverable: re-request, quarantine) from a programming error.
class IntegrityError : public std::runtime_error {
 public:
  explicit IntegrityError(const std::string& what)
      : std::runtime_error("codec::IntegrityError: " + what) {}
};

// --- primitives ---
void put_varint(Buffer& out, std::uint64_t value);
void put_u32(Buffer& out, std::uint32_t value);
void put_u64(Buffer& out, std::uint64_t value);
void put_double(Buffer& out, double value);

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const Buffer& buffer) : Reader(buffer.data(), buffer.size()) {}

  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == size_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- STASH objects ---
void encode(Buffer& out, const CellKey& key);
[[nodiscard]] CellKey decode_cell_key(Reader& in);

void encode(Buffer& out, const AttributeSummary& summary);
[[nodiscard]] AttributeSummary decode_attribute_summary(Reader& in);

void encode(Buffer& out, const Summary& summary);
[[nodiscard]] Summary decode_summary(Reader& in);

void encode(Buffer& out, const ChunkContribution& contribution);
[[nodiscard]] ChunkContribution decode_chunk_contribution(Reader& in);

/// A full Replication Request payload (§VII-B.4).
[[nodiscard]] Buffer encode_replication_payload(
    const std::vector<ChunkContribution>& payload);
[[nodiscard]] std::vector<ChunkContribution> decode_replication_payload(
    const Buffer& buffer);

// --- checksummed framing ---
// Every payload that actually crosses the wire travels inside a frame:
//
//   [magic u32] [payload_len u32] [payload bytes] [checksum64 u64]
//
// The checksum covers the payload bytes only; magic and length are
// validated structurally (any single flipped bit in the frame is caught by
// one of the three checks).  decode_frame rejects a declared length that
// disagrees with the bytes on hand BEFORE allocating anything, so a short
// hostile buffer can never demand memory it did not pay for.

inline constexpr std::uint32_t kFrameMagic = 0x31465453u;  // "STF1" on the wire
/// Bytes a frame adds around its payload: magic + length + checksum footer.
inline constexpr std::size_t kFrameOverhead = 4 + 4 + 8;

[[nodiscard]] Buffer encode_frame(const Buffer& payload);
/// Validates magic, length, and checksum; returns the payload bytes.
/// Throws IntegrityError on any mismatch — never crashes, never silently
/// accepts.
[[nodiscard]] Buffer decode_frame(const Buffer& frame);

/// Replication payload inside a checksummed frame — what the cluster's
/// replication and anti-entropy transfers actually ship.
[[nodiscard]] Buffer encode_replication_frame(
    const std::vector<ChunkContribution>& payload);
[[nodiscard]] std::vector<ChunkContribution> decode_replication_frame(
    const Buffer& frame);

/// Encoded size without materialising the buffer (cheap cost accounting).
[[nodiscard]] std::size_t encoded_size(const ChunkContribution& contribution);
[[nodiscard]] std::size_t encoded_size(
    const std::vector<ChunkContribution>& payload);

}  // namespace stash::codec
