#include "common/civil_time.hpp"

namespace stash {

bool is_leap_year(int year) noexcept {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

int days_in_month(int year, int month) noexcept {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[month - 1];
}

std::int64_t days_from_civil(const CivilDate& d) noexcept {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  const int y = d.year - (d.month <= 2 ? 1 : 0);
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - static_cast<int>(era) * 400);
  const unsigned doy = static_cast<unsigned>(
      (153 * (d.month + (d.month > 2 ? -3 : 9)) + 2) / 5 + d.day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t days) noexcept {
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + static_cast<int>(era) * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;
  const unsigned month = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  return CivilDate{y + (month <= 2 ? 1 : 0), static_cast<int>(month),
                   static_cast<int>(day)};
}

std::int64_t unix_seconds(const CivilDate& d, int hour, int minute,
                          int second) noexcept {
  return days_from_civil(d) * 86400 + hour * 3600 + minute * 60 + second;
}

CivilDateTime civil_from_unix_seconds(std::int64_t ts) noexcept {
  std::int64_t days = ts / 86400;
  std::int64_t rem = ts % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  return CivilDateTime{civil_from_days(days), static_cast<int>(rem / 3600)};
}

}  // namespace stash
