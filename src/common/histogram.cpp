#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace stash {

void LatencyStats::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

std::int64_t LatencyStats::min() const {
  if (samples_.empty()) throw std::logic_error("LatencyStats: no samples");
  sort_if_needed();
  return samples_.front();
}

std::int64_t LatencyStats::max() const {
  if (samples_.empty()) throw std::logic_error("LatencyStats: no samples");
  sort_if_needed();
  return samples_.back();
}

double LatencyStats::mean() const {
  if (samples_.empty()) throw std::logic_error("LatencyStats: no samples");
  const auto total =
      std::accumulate(samples_.begin(), samples_.end(), std::int64_t{0});
  return static_cast<double>(total) / static_cast<double>(samples_.size());
}

std::int64_t LatencyStats::percentile(double q) const {
  if (samples_.empty()) throw std::logic_error("LatencyStats: no samples");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("LatencyStats: quantile out of [0,1]");
  sort_if_needed();
  // Nearest-rank: the smallest value with cumulative proportion >= q.
  const auto n = samples_.size();
  const double raw = std::ceil(q * static_cast<double>(n)) - 1.0;
  const double clamped =
      std::clamp(raw, 0.0, static_cast<double>(n) - 1.0);
  return samples_[static_cast<std::size_t>(clamped)];
}

std::string LatencyStats::summary_ms() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(2);
  out << "mean=" << mean() / 1000.0 << "ms p50="
      << static_cast<double>(p50()) / 1000.0 << "ms p95="
      << static_cast<double>(p95()) / 1000.0 << "ms p99="
      << static_cast<double>(p99()) / 1000.0 << "ms (n=" << count() << ")";
  return out.str();
}

}  // namespace stash
