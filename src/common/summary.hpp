// Mergeable summary statistics — the payload of a STASH Cell.
//
// A Cell (paper §IV-A, Table I) stores "aggregated summary statistics" for
// every attribute of the observations that fall inside its spatiotemporal
// bin.  The statistics must be *mergeable* so that
//   * a coarse Cell can be synthesised by rolling up its children, and
//   * partial scans over several storage blocks can be combined.
// count / min / max / sum / sum-of-squares satisfy this and yield
// mean / variance / stddev on demand.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace stash {

/// Statistics for a single numeric attribute over a set of observations.
struct AttributeSummary {
  std::uint64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  double sum_sq = 0.0;

  void add(double value) noexcept;
  void merge(const AttributeSummary& other) noexcept;

  [[nodiscard]] bool empty() const noexcept { return count == 0; }
  [[nodiscard]] double mean() const noexcept;
  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  bool operator==(const AttributeSummary&) const = default;

  /// True when the two summaries agree within a relative tolerance —
  /// merge order perturbs floating-point sums.
  [[nodiscard]] bool approx_equals(const AttributeSummary& other,
                                   double rel_tol = 1e-9) const noexcept;
};

/// Summary over all attributes of a dataset schema, in schema order.
class Summary {
 public:
  Summary() = default;
  explicit Summary(std::size_t num_attributes) : attrs_(num_attributes) {}

  /// Reassembles a Summary from per-attribute statistics (deserialization).
  /// All attributes must report the same observation count.
  [[nodiscard]] static Summary from_attributes(std::vector<AttributeSummary> attrs);

  void add_observation(const double* values, std::size_t n);
  void merge(const Summary& other);

  [[nodiscard]] std::size_t num_attributes() const noexcept { return attrs_.size(); }
  [[nodiscard]] std::uint64_t observation_count() const noexcept {
    return attrs_.empty() ? 0 : attrs_.front().count;
  }
  [[nodiscard]] bool empty() const noexcept { return observation_count() == 0; }

  [[nodiscard]] const AttributeSummary& attribute(std::size_t i) const {
    return attrs_.at(i);
  }
  [[nodiscard]] const std::vector<AttributeSummary>& attributes() const noexcept {
    return attrs_;
  }

  [[nodiscard]] bool approx_equals(const Summary& other,
                                   double rel_tol = 1e-9) const noexcept;

  /// In-memory footprint used by the cache-capacity accounting.
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return sizeof(Summary) + attrs_.size() * sizeof(AttributeSummary);
  }

  bool operator==(const Summary&) const = default;

  /// Compact single-line rendering, e.g. for JSON responses and examples.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<AttributeSummary> attrs_;
};

}  // namespace stash
