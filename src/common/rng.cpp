#include "common/rng.hpp"

#include <cmath>

namespace stash {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  has_spare_ = false;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return mean + stddev * u * factor;
}

}  // namespace stash
