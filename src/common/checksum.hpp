// Fast 64-bit content checksum for end-to-end data integrity.
//
// STASH moves aggregates through a long pipeline — Galileo block scan,
// §V-B roll-up, replication transfer, front-end merge — and a single
// flipped bit anywhere in it silently poisons every view rendered from the
// result.  This xxhash-style checksum is the one primitive every layer
// verifies with: the wire codec appends it as a mandatory frame footer
// (codec::encode_frame), GalileoStore keeps one per block, and the PLM
// bitmap digests of the anti-entropy path are built on it so a digest
// mismatch detects corruption as well as divergence.
//
// Not cryptographic: it defends against bit-rot and torn writes, not an
// adversary.  Fully constexpr so test vectors are compile-time checked.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace stash {

/// Default seed; domain-separates STASH checksums from other xxh-style uses.
inline constexpr std::uint64_t kChecksumSeed = 0x5354415348ULL;  // "STASH"

namespace detail {

// XXH64's prime constants — the mixing schedule below follows the same
// multiply/rotate/xor-shift recipe on a single accumulator lane.
inline constexpr std::uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
inline constexpr std::uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
inline constexpr std::uint64_t kPrime3 = 0x165667b19e3779f9ULL;
inline constexpr std::uint64_t kPrime4 = 0x27d4eb2f165667c5ULL;
inline constexpr std::uint64_t kPrime5 = 0x60ea27eeadc0b5d6ULL;

[[nodiscard]] constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

[[nodiscard]] constexpr std::uint64_t round64(std::uint64_t acc,
                                              std::uint64_t word) noexcept {
  acc += word * kPrime2;
  acc = rotl64(acc, 31);
  return acc * kPrime1;
}

[[nodiscard]] constexpr std::uint64_t avalanche64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= kPrime2;
  x ^= x >> 29;
  x *= kPrime3;
  x ^= x >> 32;
  return x;
}

}  // namespace detail

/// Streaming checksum over a sequence of 64-bit words.  The PLM digest and
/// the graph's chunk digests feed pre-hashed words through this, so their
/// mixing schedule is the very checksum the frame footer uses.
class Checksum64 {
 public:
  constexpr explicit Checksum64(std::uint64_t seed = kChecksumSeed) noexcept
      : acc_(seed + detail::kPrime5) {}

  constexpr Checksum64& mix(std::uint64_t word) noexcept {
    acc_ = detail::round64(acc_, word);
    ++words_;
    return *this;
  }

  [[nodiscard]] constexpr std::uint64_t digest() const noexcept {
    return detail::avalanche64(acc_ ^ (words_ * detail::kPrime4));
  }

 private:
  std::uint64_t acc_;
  std::uint64_t words_ = 0;
};

/// One-shot checksum over a byte buffer: 8-byte little-endian words through
/// the round function, tail bytes folded in individually, length mixed into
/// the finalizer (so "ab" + "c" never collides with "a" + "bc").
[[nodiscard]] constexpr std::uint64_t checksum64(
    const std::uint8_t* data, std::size_t size,
    std::uint64_t seed = kChecksumSeed) noexcept {
  std::uint64_t acc = seed + detail::kPrime5;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word = 0;
    for (int b = 0; b < 8; ++b)
      word |= static_cast<std::uint64_t>(data[i + static_cast<std::size_t>(b)])
              << (8 * b);
    acc = detail::round64(acc, word);
  }
  for (; i < size; ++i) {
    acc ^= static_cast<std::uint64_t>(data[i]) * detail::kPrime5;
    acc = detail::rotl64(acc, 11) * detail::kPrime1;
  }
  return detail::avalanche64(acc ^ (static_cast<std::uint64_t>(size) *
                                    detail::kPrime4));
}

[[nodiscard]] constexpr std::uint64_t checksum64(
    std::string_view bytes, std::uint64_t seed = kChecksumSeed) noexcept {
  // Can't reinterpret_cast in constexpr: re-run the byte loop over chars.
  std::uint64_t acc = seed + detail::kPrime5;
  std::size_t i = 0;
  const std::size_t size = bytes.size();
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word = 0;
    for (int b = 0; b < 8; ++b)
      word |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                  bytes[i + static_cast<std::size_t>(b)]))
              << (8 * b);
    acc = detail::round64(acc, word);
  }
  for (; i < size; ++i) {
    acc ^= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i])) *
           detail::kPrime5;
    acc = detail::rotl64(acc, 11) * detail::kPrime1;
  }
  return detail::avalanche64(acc ^ (static_cast<std::uint64_t>(size) *
                                    detail::kPrime4));
}

// Compile-time sanity: empty input is seed-dependent, bytes and words mix.
static_assert(checksum64("") != checksum64("", kChecksumSeed + 1));
static_assert(checksum64("stash") != checksum64("stasi"));
static_assert(checksum64("abc") != checksum64("ab"));
static_assert(Checksum64().mix(1).digest() != Checksum64().mix(2).digest());
static_assert(Checksum64().mix(1).digest() !=
              Checksum64().mix(1).mix(0).digest());

}  // namespace stash
