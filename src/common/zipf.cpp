#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stash {

ZipfDistribution::ZipfDistribution(std::size_t n, double skew) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  if (skew < 0.0) throw std::invalid_argument("ZipfDistribution: skew must be >= 0");
  cdf_.resize(n);
  double accum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    accum += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = accum;
  }
  for (auto& c : cdf_) c /= accum;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t k) const {
  if (k >= cdf_.size()) throw std::out_of_range("ZipfDistribution::pmf");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace stash
