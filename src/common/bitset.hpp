// Dynamic bitset used by the Precision-Level Map (PLM).
//
// The PLM (paper §IV-D) is "a memory-resident bitmap that associates the
// Cells contained in-memory for a given level to the actual data blocks in
// the distributed storage".  Completeness checks need fast popcount and
// missing-bit enumeration, which std::vector<bool> does not provide.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stash {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) noexcept { words_[i >> 6] |= (1ULL << (i & 63)); }
  void reset(std::size_t i) noexcept { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;
  [[nodiscard]] bool all() const noexcept { return count() == bits_; }
  [[nodiscard]] bool none() const noexcept { return count() == 0; }

  /// Indices of zero bits (the "missing" Cells for a PLM completeness check).
  [[nodiscard]] std::vector<std::size_t> zero_indices() const;
  /// Indices of set bits.
  [[nodiscard]] std::vector<std::size_t> one_indices() const;

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);

  bool operator==(const DynamicBitset&) const = default;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace stash
