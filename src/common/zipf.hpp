// Zipf-distributed sampling.
//
// The paper (§V-A) notes that the popularity of spatiotemporal regions
// follows Zipf's law; the hotspot workloads (Fig 6d) concentrate traffic on
// a few regions.  This sampler draws ranks 1..n with P(k) ∝ 1/k^s.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace stash {

class ZipfDistribution {
 public:
  /// n: number of ranks; s: skew exponent (s=0 → uniform, s≈1 classic Zipf).
  ZipfDistribution(std::size_t n, double skew);

  /// Draws a rank in [0, n). Rank 0 is the most popular.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const noexcept { return cdf_.size(); }

  /// Probability mass of rank k.
  double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1
};

}  // namespace stash
