#include "common/bitset.hpp"

#include <bit>
#include <stdexcept>

namespace stash {

std::size_t DynamicBitset::count() const noexcept {
  std::size_t total = 0;
  for (auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::vector<std::size_t> DynamicBitset::zero_indices() const {
  std::vector<std::size_t> out;
  out.reserve(bits_ - count());
  for (std::size_t i = 0; i < bits_; ++i)
    if (!test(i)) out.push_back(i);
  return out;
}

std::vector<std::size_t> DynamicBitset::one_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back((w << 6) + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  if (bits_ != other.bits_)
    throw std::invalid_argument("DynamicBitset::operator|=: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  if (bits_ != other.bits_)
    throw std::invalid_argument("DynamicBitset::operator&=: size mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

}  // namespace stash
