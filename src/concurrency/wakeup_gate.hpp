// WakeupGate: an eventcount for parking idle worker threads without
// losing wakeups and without taking a lock on the producer fast path.
//
// Protocol (the only correct order — proven in
// tests/mc/wakeup_gate_mc_test.cpp):
//
//   worker (consumer):                    producer:
//     t = prepare_wait()                    publish work (ring push)
//     re-check the work source              notify_all()
//     found  -> cancel_wait(), run it
//     empty  -> commit_wait(t)  [parks]
//
// prepare_wait() announces the waiter *before* the final re-check;
// notify_all() publishes work *before* reading the waiter count.  The
// seq_cst fences make that a Dekker/store-buffering pair: either the
// producer observes the waiter (and bumps the epoch, so commit_wait
// returns at once or is woken), or the waiter's re-check observes the
// published work.  Skipping the re-check between prepare_wait() and
// commit_wait() loses wakeups — the mc test's broken variant proves the
// checker catches exactly that.
//
// commit_wait() may return spuriously; callers loop back to the re-check.
//
// commit_wait_until() is the deadline-capable variant (DESIGN.md §14): it
// keeps the same prepare/re-check/commit protocol but polls a caller
// predicate between bounded sleep slices, so a waiter whose producer died
// (or is wedged) still returns by its deadline instead of parking forever.
//
// stash-lint: lock-free-file
#pragma once

#include <cstdint>

#ifndef STASH_MODEL_CHECK
#include <chrono>
#include <thread>
#endif

#include "concurrency/catomic.hpp"

STASH_CONCURRENCY_NS_BEGIN

class WakeupGate {
 public:
  using Ticket = std::uint32_t;

  WakeupGate() : epoch_(0, "gate.epoch"), waiters_(0, "gate.waiters") {}
  WakeupGate(const WakeupGate&) = delete;
  WakeupGate& operator=(const WakeupGate&) = delete;

  /// Announce intent to park and capture the current epoch.  Must be
  /// followed by a re-check of the work source, then exactly one of
  /// cancel_wait() or commit_wait(ticket).
  [[nodiscard]] Ticket prepare_wait() {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    // Pairs with the fence in notify_all(): the waiter increment is
    // globally ordered before the epoch read and the caller's re-check.
    fence(std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// The re-check found work: stand down.
  void cancel_wait() { waiters_.fetch_sub(1, std::memory_order_seq_cst); }

  /// Park until the epoch moves past `ticket` (returns immediately if it
  /// already has).  Spurious returns are allowed; re-check and re-prepare.
  void commit_wait(Ticket ticket) {
    epoch_.wait(ticket, std::memory_order_seq_cst);
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Timed variant of commit_wait: parks until the epoch moves past
  /// `ticket` OR `expired()` first returns true, releasing the waiter
  /// slot either way.  Returns true when the epoch moved (possibly
  /// spuriously — callers loop back to their re-check exactly as with
  /// commit_wait), false when the wait ended on expiry.  `expired` is
  /// polled between bounded sleep slices; there is no futex timeout in
  /// C++20, so the poll granularity (kPollSliceUs) bounds how late past
  /// its deadline a waiter can oversleep.  Proven (lost-wakeup freedom +
  /// waiter accounting on both exits) in tests/mc/cancellation_mc_test.cpp.
  template <typename ExpiredFn>
  [[nodiscard]] bool commit_wait_until(Ticket ticket, ExpiredFn&& expired)
      STASH_MC_MAY_THROW {
    for (;;) {
      if (epoch_.load(std::memory_order_seq_cst) != ticket) {
        waiters_.fetch_sub(1, std::memory_order_seq_cst);
        return true;
      }
      if (expired()) {
        waiters_.fetch_sub(1, std::memory_order_seq_cst);
        return false;
      }
#ifndef STASH_MODEL_CHECK
      // A short sleep instead of a futex wait: the epoch re-load above is
      // the wakeup edge, so a notify is noticed within one slice.  Under
      // the model checker the loop is pure loads — the scheduler owns the
      // interleaving and the test's expired() predicate bounds the steps.
      std::this_thread::sleep_for(std::chrono::microseconds(kPollSliceUs));
#endif
    }
  }

  /// Wake every parked (and parking) waiter.  Callers publish their work
  /// *before* this call.  Cheap when nobody waits: one fence + one load.
  void notify_all() {
    // Pairs with the fence in prepare_wait(); after it, either we see the
    // waiter count or the waiter's re-check sees our published work.
    fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    epoch_.notify_all();
  }

  /// Monitoring only (racy).
  [[nodiscard]] std::uint32_t waiters_approx() const {
    return waiters_.load(std::memory_order_relaxed);
  }

  /// Monitoring/test hook: epoch observed without synchronisation.
  [[nodiscard]] Ticket epoch_approx() const {
    return epoch_.load(std::memory_order_relaxed);
  }

 private:
  /// Poll slice for commit_wait_until (µs): small enough that deadline
  /// overshoot is negligible against millisecond budgets, large enough
  /// that a parked-with-deadline submitter costs ~10k wakeups/s, not a
  /// spinning core.
  static constexpr unsigned kPollSliceUs = 100;

  catomic<std::uint32_t> epoch_;
  catomic<std::uint32_t> waiters_;
};

STASH_CONCURRENCY_NS_END
