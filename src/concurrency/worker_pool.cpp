// stash-lint: lock-free-file
#include "concurrency/worker_pool.hpp"

#include <chrono>
#include <utility>

namespace stash::concurrency {

namespace {
// Bounded spin before a worker commits to parking: cheap enough to hide
// sub-microsecond producer/consumer gaps, short enough that an idle pool
// sleeps (the bench harness checks parks > 0 on an idle pool).
constexpr int kSpinRounds = 64;
// Bounded yield-sweeps before a blocked submitter parks on space_gate_.
// This replaces the old unbounded yield loop: past this, the submitter
// sleeps and a worker's post-pop kick wakes it.
constexpr int kSubmitSpinRounds = 64;
}  // namespace

std::size_t resolve_worker_count(std::size_t configured,
                                 unsigned hardware_hint) {
  if (configured > 0) return configured;
  return hardware_hint == 0 ? 1 : static_cast<std::size_t>(hardware_hint);
}

std::size_t resolve_worker_count(std::size_t configured) {
  return resolve_worker_count(configured, std::thread::hardware_concurrency());
}

WorkerPool::WorkerPool(Config config)
    : stop_(0, "pool.stop"),
      next_ring_(0, "pool.next_ring"),
      inflight_submits_(0, "pool.inflight_submits"),
      submit_shed_(0, "pool.submit_shed"),
      submit_blocked_(0, "pool.submit_blocked"),
      watchdog_stalls_(0, "pool.watchdog_stalls"),
      drain_on_shutdown_(config.drain_on_shutdown),
      watchdog_interval_ns_(config.watchdog_interval_ns),
      now_ns_(std::move(config.now_ns)) {
  const std::size_t n = resolve_worker_count(config.threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<Worker>(config.queue_capacity));
  // Threads start only after every Worker slot exists: run() sweeps the
  // whole vector, which must never reallocate under it.
  for (std::size_t i = 0; i < n; ++i)
    workers_[i]->thread = std::thread([this, i] { run(i); });
  if (watchdog_interval_ns_ > 0 && now_ns_)
    watchdog_ = std::thread([this] { watchdog_run(); });
}

WorkerPool::~WorkerPool() {
  stop_.store(1, std::memory_order_seq_cst);
  gate_.notify_all();
  space_gate_.notify_all();
  // Wait out submitters first: a thread parked in submit() backpressure
  // wakes (the notify above), observes stop_, runs its task inline and
  // leaves.  Only then is it safe to tear the workers down under it.
  while (inflight_submits_.load(std::memory_order_seq_cst) != 0) {
    space_gate_.notify_all();
    std::this_thread::yield();
  }
  if (watchdog_.joinable()) watchdog_.join();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
  // Abandon mode: whatever is still queued is destroyed, unrun, by the
  // MpmcRing destructors (the PR 8 ring-drain contract).
}

bool WorkerPool::push_sweep(Task& task) {
  const std::size_t n = workers_.size();
  const std::size_t start = static_cast<std::size_t>(
      next_ring_.fetch_add(1, std::memory_order_relaxed));
  for (std::size_t i = 0; i < n; ++i) {
    if (workers_[(start + i) % n]->ring.try_push(std::move(task))) {
      gate_.notify_all();
      return true;
    }
  }
  return false;
}

void WorkerPool::submit(Task task) {
  inflight_submits_.fetch_add(1, std::memory_order_seq_cst);
  for (int attempt = 0;; ++attempt) {
    if (stop_.load(std::memory_order_seq_cst) != 0) {
      // Shutting down with the task still in hand: run it inline.  The
      // caller's thread is the only executor guaranteed to still exist,
      // and the no-silent-drop contract outranks shutdown latency.
      execute(*workers_[0], task);
      break;
    }
    if (push_sweep(task)) break;
    if (attempt < kSubmitSpinRounds) {
      // Every ring full: the submitter is the backpressure.  Yield so
      // the workers we are waiting on get the core.
      std::this_thread::yield();
      continue;
    }
    // Still full after the bounded spin: park until a worker frees a
    // slot.  Same prepare/re-check/commit protocol as the workers' idle
    // park (proven in tests/mc/) — the re-check is a full push sweep.
    const WakeupGate::Ticket ticket = space_gate_.prepare_wait();
    if (stop_.load(std::memory_order_seq_cst) != 0) {
      space_gate_.cancel_wait();
      continue;  // loop re-checks stop_ and runs inline
    }
    if (push_sweep(task)) {
      space_gate_.cancel_wait();
      break;
    }
    submit_blocked_.fetch_add(1, std::memory_order_relaxed);
    space_gate_.commit_wait(ticket);
  }
  inflight_submits_.fetch_sub(1, std::memory_order_seq_cst);
}

bool WorkerPool::try_submit(Task& task) {
  inflight_submits_.fetch_add(1, std::memory_order_seq_cst);
  bool pushed = false;
  if (stop_.load(std::memory_order_seq_cst) == 0) pushed = push_sweep(task);
  if (!pushed) submit_shed_.fetch_add(1, std::memory_order_relaxed);
  inflight_submits_.fetch_sub(1, std::memory_order_seq_cst);
  return pushed;
}

void WorkerPool::execute(Worker& self, Task& task) {
  try {
    task();
  } catch (...) {
    // Quarantine: a throwing task must never unwind into run()'s loop
    // (std::terminate) or poison the worker.  Count it; the submitter
    // owns any richer error reporting (the exec engine records per-chunk
    // errors before they ever reach this backstop).
    self.task_exceptions.fetch_add(1, std::memory_order_relaxed);
  }
}

bool WorkerPool::try_execute_one(std::size_t index) {
  Worker& self = *workers_[index];
  if (auto task = self.ring.try_pop()) {
    space_gate_.notify_all();  // a slot freed: wake blocked submitters
    execute(self, *task);
    self.executed.fetch_add(1, std::memory_order_relaxed);
    self.heartbeat.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const std::size_t n = workers_.size();
  for (std::size_t i = 1; i < n; ++i) {
    Worker& victim = *workers_[(index + i) % n];
    if (auto task = victim.ring.try_pop()) {
      space_gate_.notify_all();
      execute(self, *task);
      self.executed.fetch_add(1, std::memory_order_relaxed);
      self.stolen.fetch_add(1, std::memory_order_relaxed);
      self.heartbeat.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void WorkerPool::run(std::size_t index) {
  Worker& self = *workers_[index];
  for (;;) {
    // Abandon-mode shutdown wins over queued work: without this check a
    // worker woken by the destructor would happily drain its ring first,
    // and "abandon" would only ever abandon what nobody was awake to see.
    if (!drain_on_shutdown_ && stop_.load(std::memory_order_seq_cst) != 0)
      return;
    if (try_execute_one(index)) continue;

    bool found = false;
    for (int spin = 0; spin < kSpinRounds && !found; ++spin) {
      std::this_thread::yield();
      found = try_execute_one(index);
    }
    if (found) continue;

    // Park protocol (proven in tests/mc/wakeup_gate_mc_test.cpp): announce,
    // re-check stop AND the rings, only then commit to sleeping.
    const WakeupGate::Ticket ticket = gate_.prepare_wait();
    if (stop_.load(std::memory_order_seq_cst) != 0) {
      gate_.cancel_wait();
      if (drain_on_shutdown_) {
        // Shutdown drains: run whatever is still queued before exiting
        // so no submitted task is silently dropped.
        while (try_execute_one(index)) {
        }
      }
      return;
    }
    if (try_execute_one(index)) {
      gate_.cancel_wait();
      continue;
    }
    self.parks.fetch_add(1, std::memory_order_relaxed);
    self.heartbeat.fetch_add(1, std::memory_order_relaxed);
    gate_.commit_wait(ticket);
    self.wakeups.fetch_add(1, std::memory_order_relaxed);
    self.heartbeat.fetch_add(1, std::memory_order_relaxed);
  }
}

void WorkerPool::watchdog_run() {
  // One sample slot per worker: heartbeat at the start of the interval
  // currently being watched, or no value when the worker looked healthy
  // at the last tick.
  std::vector<std::uint64_t> last_beat(workers_.size());
  std::vector<bool> watching(workers_.size(), false);
  std::uint64_t next_tick = now_ns_() + watchdog_interval_ns_;
  while (stop_.load(std::memory_order_seq_cst) == 0) {
    // Sleep in short slices so shutdown is prompt; the tick boundary is
    // computed from the injected clock, not from sleep accumulation.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    if (now_ns_() < next_tick) continue;
    next_tick = now_ns_() + watchdog_interval_ns_;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = *workers_[i];
      const std::uint64_t beat = w.heartbeat.load(std::memory_order_relaxed);
      const bool backlog = w.ring.size_approx() > 0;
      if (!backlog) {
        watching[i] = false;
        continue;
      }
      if (watching[i] && beat == last_beat[i]) {
        // A full interval with queued work and zero progress: the worker
        // is wedged (long task, injected stall, or lost wakeup).  Count
        // it and kick the gate so awake-able peers steal the backlog.
        watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
        gate_.notify_all();
      }
      last_beat[i] = beat;
      watching[i] = true;
    }
  }
}

std::size_t WorkerPool::queue_depth() const {
  std::size_t total = 0;
  for (const auto& w : workers_) total += w->ring.size_approx();
  return total;
}

std::size_t WorkerPool::worker_queue_depth(std::size_t index) const {
  return workers_[index]->ring.size_approx();
}

std::uint64_t WorkerPool::worker_heartbeat(std::size_t index) const {
  return workers_[index]->heartbeat.load(std::memory_order_relaxed);
}

WorkerStats WorkerPool::worker_stats(std::size_t index) const {
  const Worker& w = *workers_[index];
  WorkerStats out;
  out.executed = w.executed.load(std::memory_order_relaxed);
  out.stolen = w.stolen.load(std::memory_order_relaxed);
  out.parks = w.parks.load(std::memory_order_relaxed);
  out.wakeups = w.wakeups.load(std::memory_order_relaxed);
  out.task_exceptions = w.task_exceptions.load(std::memory_order_relaxed);
  return out;
}

WorkerStats WorkerPool::total_stats() const {
  WorkerStats out;
  for (std::size_t i = 0; i < workers_.size(); ++i) out += worker_stats(i);
  out.submit_shed = submit_shed_.load(std::memory_order_relaxed);
  out.submit_blocked = submit_blocked_.load(std::memory_order_relaxed);
  out.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace stash::concurrency
