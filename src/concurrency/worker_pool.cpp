// stash-lint: lock-free-file
#include "concurrency/worker_pool.hpp"

#include <utility>

namespace stash::concurrency {

namespace {
// Bounded spin before a worker commits to parking: cheap enough to hide
// sub-microsecond producer/consumer gaps, short enough that an idle pool
// sleeps (the bench harness checks parks > 0 on an idle pool).
constexpr int kSpinRounds = 64;
}  // namespace

std::size_t resolve_worker_count(std::size_t configured,
                                 unsigned hardware_hint) {
  if (configured > 0) return configured;
  return hardware_hint == 0 ? 1 : static_cast<std::size_t>(hardware_hint);
}

std::size_t resolve_worker_count(std::size_t configured) {
  return resolve_worker_count(configured, std::thread::hardware_concurrency());
}

WorkerPool::WorkerPool(Config config)
    : stop_(0, "pool.stop"), next_ring_(0, "pool.next_ring") {
  const std::size_t n = resolve_worker_count(config.threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<Worker>(config.queue_capacity));
  // Threads start only after every Worker slot exists: run() sweeps the
  // whole vector, which must never reallocate under it.
  for (std::size_t i = 0; i < n; ++i)
    workers_[i]->thread = std::thread([this, i] { run(i); });
}

WorkerPool::~WorkerPool() {
  stop_.store(1, std::memory_order_seq_cst);
  gate_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

void WorkerPool::submit(Task task) {
  const std::size_t n = workers_.size();
  std::size_t start = static_cast<std::size_t>(
      next_ring_.fetch_add(1, std::memory_order_relaxed));
  for (;;) {
    for (std::size_t i = 0; i < n; ++i) {
      if (workers_[(start + i) % n]->ring.try_push(std::move(task))) {
        gate_.notify_all();
        return;
      }
    }
    // Every ring full: the submitter is the backpressure.  Yield so the
    // workers we are waiting on get the core.
    std::this_thread::yield();
  }
}

bool WorkerPool::try_execute_one(std::size_t index) {
  Worker& self = *workers_[index];
  if (auto task = self.ring.try_pop()) {
    (*task)();
    self.executed.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const std::size_t n = workers_.size();
  for (std::size_t i = 1; i < n; ++i) {
    Worker& victim = *workers_[(index + i) % n];
    if (auto task = victim.ring.try_pop()) {
      (*task)();
      self.executed.fetch_add(1, std::memory_order_relaxed);
      self.stolen.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void WorkerPool::run(std::size_t index) {
  Worker& self = *workers_[index];
  for (;;) {
    if (try_execute_one(index)) continue;

    bool found = false;
    for (int spin = 0; spin < kSpinRounds && !found; ++spin) {
      std::this_thread::yield();
      found = try_execute_one(index);
    }
    if (found) continue;

    // Park protocol (proven in tests/mc/wakeup_gate_mc_test.cpp): announce,
    // re-check stop AND the rings, only then commit to sleeping.
    const WakeupGate::Ticket ticket = gate_.prepare_wait();
    if (stop_.load(std::memory_order_seq_cst) != 0) {
      gate_.cancel_wait();
      // Shutdown drains: run whatever is still queued before exiting so
      // no submitted task is silently dropped.
      while (try_execute_one(index)) {
      }
      return;
    }
    if (try_execute_one(index)) {
      gate_.cancel_wait();
      continue;
    }
    self.parks.fetch_add(1, std::memory_order_relaxed);
    gate_.commit_wait(ticket);
    self.wakeups.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t WorkerPool::queue_depth() const {
  std::size_t total = 0;
  for (const auto& w : workers_) total += w->ring.size_approx();
  return total;
}

std::size_t WorkerPool::worker_queue_depth(std::size_t index) const {
  return workers_[index]->ring.size_approx();
}

WorkerStats WorkerPool::worker_stats(std::size_t index) const {
  const Worker& w = *workers_[index];
  WorkerStats out;
  out.executed = w.executed.load(std::memory_order_relaxed);
  out.stolen = w.stolen.load(std::memory_order_relaxed);
  out.parks = w.parks.load(std::memory_order_relaxed);
  out.wakeups = w.wakeups.load(std::memory_order_relaxed);
  return out;
}

WorkerStats WorkerPool::total_stats() const {
  WorkerStats out;
  for (std::size_t i = 0; i < workers_.size(); ++i) out += worker_stats(i);
  return out;
}

}  // namespace stash::concurrency
