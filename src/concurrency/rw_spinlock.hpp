// Reader-writer spinlock on a single catomic word, with clang
// thread-safety annotations.
//
// Drop-in shaped like common/thread_annotations.hpp's SharedMutex so the
// ConcurrentStashGraph guard pattern (one annotated capability, shared
// reads / exclusive writes) can move off std::shared_mutex when the
// parallel datapath needs a spin-class lock.  The model checker verifies
// the guard protocol itself — mutual exclusion and reader/writer
// happens-before — in tests/mc/graph_guard_mc_test.cpp, something the
// thread-safety annotations cannot express (they check acquisition
// discipline, not memory ordering).
//
// State word: 0 = free, -1 = writer, n>0 = n readers.
#pragma once

#include <cstdint>

#include "common/thread_annotations.hpp"
#include "concurrency/catomic.hpp"

STASH_CONCURRENCY_NS_BEGIN

class STASH_CAPABILITY("shared_mutex") RwSpinlock {
 public:
  RwSpinlock() : state_(0, "rw.state") {}

  // Lock bodies are excluded from the static analysis (the standard
  // pattern for implementing an annotated capability): call sites are
  // still checked against the ACQUIRE/RELEASE attributes.
  void lock() STASH_ACQUIRE() STASH_NO_THREAD_SAFETY_ANALYSIS {
    while (!try_lock_impl()) {
    }
  }

  bool try_lock() STASH_TRY_ACQUIRE(true) STASH_NO_THREAD_SAFETY_ANALYSIS {
    return try_lock_impl();
  }

  void unlock() STASH_RELEASE() STASH_NO_THREAD_SAFETY_ANALYSIS {
    state_.store(0, std::memory_order_release);
  }

  void lock_shared() STASH_ACQUIRE_SHARED() STASH_NO_THREAD_SAFETY_ANALYSIS {
    while (!try_lock_shared_impl()) {
    }
  }

  bool try_lock_shared() STASH_TRY_ACQUIRE(true)
      STASH_NO_THREAD_SAFETY_ANALYSIS {
    return try_lock_shared_impl();
  }

  void unlock_shared() STASH_RELEASE_SHARED()
      STASH_NO_THREAD_SAFETY_ANALYSIS {
    // Release so the writer that next acquires the word cannot have its
    // writes ordered before this reader's critical-section reads.
    state_.fetch_sub(1, std::memory_order_release);
  }

 private:
  bool try_lock_impl() {
    std::int32_t expected = 0;
    // Acquire pairs with the release in unlock()/unlock_shared(): the
    // writer must see every access the previous holders made.
    return state_.compare_exchange_weak(expected, -1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed);
  }

  bool try_lock_shared_impl() {
    std::int32_t s = state_.load(std::memory_order_relaxed);
    if (s < 0) return false;
    return state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                        std::memory_order_relaxed);
  }

  catomic<std::int32_t> state_;
};

/// RAII guards mirroring WriterLockT/ReaderLock from thread_annotations.hpp.
class STASH_SCOPED_CAPABILITY RwSpinWriterLock {
 public:
  explicit RwSpinWriterLock(RwSpinlock& lock) STASH_ACQUIRE(lock)
      : lock_(lock) {
    lock_.lock();
  }
  ~RwSpinWriterLock() STASH_MC_MAY_THROW STASH_RELEASE() { lock_.unlock(); }

  RwSpinWriterLock(const RwSpinWriterLock&) = delete;
  RwSpinWriterLock& operator=(const RwSpinWriterLock&) = delete;

 private:
  RwSpinlock& lock_;
};

class STASH_SCOPED_CAPABILITY RwSpinReaderLock {
 public:
  explicit RwSpinReaderLock(RwSpinlock& lock) STASH_ACQUIRE_SHARED(lock)
      : lock_(lock) {
    lock_.lock_shared();
  }
  ~RwSpinReaderLock() STASH_MC_MAY_THROW STASH_RELEASE() {
    lock_.unlock_shared();
  }

  RwSpinReaderLock(const RwSpinReaderLock&) = delete;
  RwSpinReaderLock& operator=(const RwSpinReaderLock&) = delete;

 private:
  RwSpinlock& lock_;
};

STASH_CONCURRENCY_NS_END
