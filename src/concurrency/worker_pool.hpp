// WorkerPool: real threads fed through per-worker MpmcRings, with work
// stealing and a WakeupGate park/wake protocol (ROADMAP item 1).
//
// Topology: each worker owns one bounded MpmcRing; submit() places tasks
// round-robin and wakes the gate.  A worker drains its own ring first,
// then sweeps the other rings (a successful foreign pop counts as a
// steal), then spins briefly, then parks on the gate using the
// prepare/re-check/commit protocol proven in tests/mc/.
//
// Robustness contract (DESIGN.md §14):
//   * try_submit() is the shed path: one bounded sweep, refusal counted,
//     the task handed back untouched.
//   * submit() backpressure is bounded-spin-then-park on a second gate
//     that workers kick after every pop — never an unbounded yield loop.
//     During shutdown a blocked submitter runs its task inline instead of
//     hanging (the no-silently-dropped-task contract holds either way).
//   * A throwing task is quarantined: counted in task_exceptions, the
//     worker thread survives.  Exceptions never escape run().
//   * A heartbeat watchdog (optional, needs an injected time source)
//     samples per-worker progress counters and counts a stall whenever a
//     worker's heartbeat freezes across a full interval while its ring
//     still holds work — then kicks the gate so peers steal the backlog.
//   * Shutdown is drain (default: workers run every queued task before
//     exiting) or abandon (queued payloads are destroyed by the ring
//     destructors, never run) — Config::drain_on_shutdown.
//   * The destructor synchronises with in-flight submitters (inflight
//     count) so destroying the pool while a submitter is parked on
//     backpressure neither hangs nor races.
//
// The pool itself is *not* model-checked (it owns std::threads and runs
// arbitrary std::function payloads); its building blocks — MpmcRing,
// WakeupGate and CancellationToken — are.  It therefore lives in the
// outer namespace, not the inline personality namespaces, and must not be
// included from STASH_MODEL_CHECK translation units.
//
// stash-lint: lock-free-file
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "concurrency/catomic.hpp"
#include "concurrency/mpmc_ring.hpp"
#include "concurrency/wakeup_gate.hpp"

namespace stash::concurrency {

/// Worker-count policy: an explicit configuration (> 0) wins verbatim;
/// otherwise fall back to the hardware hint, which the standard allows to
/// be 0 ("not computable") — the result is always >= 1.
[[nodiscard]] std::size_t resolve_worker_count(std::size_t configured,
                                               unsigned hardware_hint);

/// Same, with hint = std::thread::hardware_concurrency().
[[nodiscard]] std::size_t resolve_worker_count(std::size_t configured);

/// Activity counters (racy snapshot — monitoring only).  The first five
/// are per-worker; the pool-level ones (submit/watchdog) are zero in
/// worker_stats(i) and folded into total_stats().
struct WorkerStats {
  std::uint64_t executed = 0;         // tasks run (own ring + stolen)
  std::uint64_t stolen = 0;           // tasks popped from another worker's ring
  std::uint64_t parks = 0;            // times the worker committed to sleep
  std::uint64_t wakeups = 0;          // times the worker returned from a park
  std::uint64_t task_exceptions = 0;  // tasks that threw (quarantined)
  std::uint64_t submit_shed = 0;      // try_submit refusals (pool-level)
  std::uint64_t submit_blocked = 0;   // submit() backpressure parks (pool-level)
  std::uint64_t watchdog_stalls = 0;  // frozen-heartbeat detections (pool-level)

  WorkerStats& operator+=(const WorkerStats& other) noexcept {
    executed += other.executed;
    stolen += other.stolen;
    parks += other.parks;
    wakeups += other.wakeups;
    task_exceptions += other.task_exceptions;
    submit_shed += other.submit_shed;
    submit_blocked += other.submit_blocked;
    watchdog_stalls += other.watchdog_stalls;
    return *this;
  }
};

class WorkerPool {
 public:
  using Task = std::function<void()>;

  struct Config {
    /// 0 = resolve from hardware_concurrency (always >= 1).
    std::size_t threads = 0;
    /// Per-worker ring capacity; power of two >= 2.
    std::size_t queue_capacity = 256;
    /// true: shutdown runs every queued task before workers exit.
    /// false: queued payloads are destroyed unrun (ring-drain destructor
    /// contract), for callers whose tasks are pointless after teardown.
    bool drain_on_shutdown = true;
    /// Stuck-worker watchdog sampling interval; 0 disables.  Requires
    /// now_ns.  A worker whose heartbeat is frozen across a whole
    /// interval while its own ring is non-empty counts one stall per
    /// frozen interval and forces a gate wake so peers steal its backlog.
    std::uint64_t watchdog_interval_ns = 0;
    /// Monotonic host-time source for the watchdog (exec::host_now_ns in
    /// production, a fake in tests).  The pool itself never reads a clock
    /// directly — determinism stays injectable.
    std::function<std::uint64_t()> now_ns;
  };

  explicit WorkerPool(Config config);
  /// Stops accepting work, drains or abandons the rings per
  /// Config::drain_on_shutdown, waits out in-flight submitters, joins.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue a task.  When every ring is full the submitter spins a
  /// bounded number of sweeps, then parks on the backpressure gate until
  /// a worker frees a slot (counted in submit_blocked).  If the pool is
  /// shutting down, the task runs inline on the calling thread instead —
  /// submit() never silently drops work and never blocks forever.
  void submit(Task task);

  /// Shed path: one sweep over the rings.  On failure the pool counts a
  /// shed, leaves `task` untouched, and returns false — the caller keeps
  /// ownership and decides (run inline, degrade, drop).  Also fails (and
  /// counts) when the pool is stopping.
  [[nodiscard]] bool try_submit(Task& task);

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Total queued-but-unexecuted tasks (racy; never exceeds
  /// worker_count() * queue_capacity thanks to size_approx()'s clamp).
  [[nodiscard]] std::size_t queue_depth() const;

  /// One ring's depth (racy; clamped to queue_capacity by size_approx()).
  [[nodiscard]] std::size_t worker_queue_depth(std::size_t index) const;

  [[nodiscard]] WorkerStats worker_stats(std::size_t index) const;
  /// Per-worker sums plus the pool-level counters.
  [[nodiscard]] WorkerStats total_stats() const;

  /// A worker's progress counter (monitoring/test hook; racy).
  [[nodiscard]] std::uint64_t worker_heartbeat(std::size_t index) const;

 private:
  struct Worker {
    explicit Worker(std::size_t ring_capacity)
        : ring(ring_capacity),
          executed(0, "worker.executed"),
          stolen(0, "worker.stolen"),
          parks(0, "worker.parks"),
          wakeups(0, "worker.wakeups"),
          task_exceptions(0, "worker.task_exceptions"),
          heartbeat(0, "worker.heartbeat") {}

    MpmcRing<Task> ring;
    catomic<std::uint64_t> executed;
    catomic<std::uint64_t> stolen;
    catomic<std::uint64_t> parks;
    catomic<std::uint64_t> wakeups;
    catomic<std::uint64_t> task_exceptions;
    /// Bumped on every task completion and every park/wake transition;
    /// frozen exactly when the worker is wedged (in a task or lost).
    catomic<std::uint64_t> heartbeat;
    std::thread thread;
  };

  void run(std::size_t index);
  void watchdog_run();
  /// Pop-and-run one task: own ring first, then a steal sweep.
  bool try_execute_one(std::size_t index);
  /// One round-robin try_push sweep; wakes the gate on success.
  bool push_sweep(Task& task);
  /// Runs a task with the quarantine guard (exceptions counted, eaten).
  void execute(Worker& self, Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  WakeupGate gate_;        // workers park here when idle
  WakeupGate space_gate_;  // submitters park here when every ring is full
  catomic<std::uint32_t> stop_;
  catomic<std::uint64_t> next_ring_;  // round-robin submit cursor
  catomic<std::uint32_t> inflight_submits_;
  catomic<std::uint64_t> submit_shed_;
  catomic<std::uint64_t> submit_blocked_;
  catomic<std::uint64_t> watchdog_stalls_;
  bool drain_on_shutdown_;
  std::uint64_t watchdog_interval_ns_;
  std::function<std::uint64_t()> now_ns_;
  std::thread watchdog_;
};

}  // namespace stash::concurrency
