// WorkerPool: real threads fed through per-worker MpmcRings, with work
// stealing and a WakeupGate park/wake protocol (ROADMAP item 1).
//
// Topology: each worker owns one bounded MpmcRing; submit() places tasks
// round-robin and wakes the gate.  A worker drains its own ring first,
// then sweeps the other rings (a successful foreign pop counts as a
// steal), then spins briefly, then parks on the gate using the
// prepare/re-check/commit protocol proven in tests/mc/.
//
// The pool itself is *not* model-checked (it owns std::threads and runs
// arbitrary std::function payloads); its building blocks — MpmcRing and
// WakeupGate — are.  It therefore lives in the outer namespace, not the
// inline personality namespaces, and must not be included from
// STASH_MODEL_CHECK translation units.
//
// stash-lint: lock-free-file
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "concurrency/catomic.hpp"
#include "concurrency/mpmc_ring.hpp"
#include "concurrency/wakeup_gate.hpp"

namespace stash::concurrency {

/// Worker-count policy: an explicit configuration (> 0) wins verbatim;
/// otherwise fall back to the hardware hint, which the standard allows to
/// be 0 ("not computable") — the result is always >= 1.
[[nodiscard]] std::size_t resolve_worker_count(std::size_t configured,
                                               unsigned hardware_hint);

/// Same, with hint = std::thread::hardware_concurrency().
[[nodiscard]] std::size_t resolve_worker_count(std::size_t configured);

/// Per-worker activity counters (racy snapshot — monitoring only).
struct WorkerStats {
  std::uint64_t executed = 0;  // tasks run (own ring + stolen)
  std::uint64_t stolen = 0;    // tasks popped from another worker's ring
  std::uint64_t parks = 0;     // times the worker committed to sleep
  std::uint64_t wakeups = 0;   // times the worker returned from a park

  WorkerStats& operator+=(const WorkerStats& other) noexcept {
    executed += other.executed;
    stolen += other.stolen;
    parks += other.parks;
    wakeups += other.wakeups;
    return *this;
  }
};

class WorkerPool {
 public:
  using Task = std::function<void()>;

  struct Config {
    /// 0 = resolve from hardware_concurrency (always >= 1).
    std::size_t threads = 0;
    /// Per-worker ring capacity; power of two >= 2.
    std::size_t queue_capacity = 256;
  };

  explicit WorkerPool(Config config);
  /// Stops accepting work, lets workers drain every ring, then joins.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue a task.  When every ring is full the submitter becomes the
  /// backpressure: it yields and retries until a slot frees up.
  void submit(Task task);

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Total queued-but-unexecuted tasks (racy; never exceeds
  /// worker_count() * queue_capacity thanks to size_approx()'s clamp).
  [[nodiscard]] std::size_t queue_depth() const;

  /// One ring's depth (racy; clamped to queue_capacity by size_approx()).
  [[nodiscard]] std::size_t worker_queue_depth(std::size_t index) const;

  [[nodiscard]] WorkerStats worker_stats(std::size_t index) const;
  [[nodiscard]] WorkerStats total_stats() const;

 private:
  struct Worker {
    explicit Worker(std::size_t ring_capacity)
        : ring(ring_capacity),
          executed(0, "worker.executed"),
          stolen(0, "worker.stolen"),
          parks(0, "worker.parks"),
          wakeups(0, "worker.wakeups") {}

    MpmcRing<Task> ring;
    catomic<std::uint64_t> executed;
    catomic<std::uint64_t> stolen;
    catomic<std::uint64_t> parks;
    catomic<std::uint64_t> wakeups;
    std::thread thread;
  };

  void run(std::size_t index);
  /// Pop-and-run one task: own ring first, then a steal sweep.
  bool try_execute_one(std::size_t index);

  std::vector<std::unique_ptr<Worker>> workers_;
  WakeupGate gate_;
  catomic<std::uint32_t> stop_;
  catomic<std::uint64_t> next_ring_;  // round-robin submit cursor
};

}  // namespace stash::concurrency
