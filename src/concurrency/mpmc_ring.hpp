// Bounded lock-free MPMC ring with sequence-numbered slots.
//
// This is the queue that will carry the dispatch→worker path of the
// real-thread parallel datapath (ROADMAP item 1).  The design is the
// classic bounded MPMC ring used by ODP's lock-free queues and Vyukov's
// mpmc_bounded_queue: each slot carries a sequence number that encodes,
// relative to the producer/consumer cursors, whether the slot is free,
// full, or in flight.  Producers claim a slot by CAS on the enqueue
// cursor, write the payload, then *release* the slot by bumping its
// sequence; consumers mirror that.  Cursor CASes are relaxed — the slot
// sequence is the only publication edge, which is exactly the property
// the model checker proves (tests/mc/mpmc_ring_mc_test.cpp).
//
// Progress: try_push/try_pop never block and never spin unboundedly; a
// cursor CAS failure means another thread made progress, and a full/empty
// verdict returns false immediately (ODP-style bounded retries).
//
// stash-lint: lock-free-file
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "concurrency/catomic.hpp"

STASH_CONCURRENCY_NS_BEGIN

template <typename T>
class MpmcRing {
 public:
  /// Capacity must be a power of two (>= 2): slot index = pos & mask, and
  /// sequence arithmetic relies on the wrap being a multiple of capacity.
  explicit MpmcRing(std::size_t capacity)
      : capacity_(capacity),
        mask_(capacity - 1),
        cells_(std::make_unique<Cell[]>(capacity)),
        enqueue_pos_(0, "ring.enqueue_pos"),
        dequeue_pos_(0, "ring.dequeue_pos") {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0 &&
           "MpmcRing capacity must be a power of two >= 2");
    for (std::size_t i = 0; i < capacity; ++i)
      cells_[i].seq.store(static_cast<std::uint64_t>(i),
                          std::memory_order_relaxed);
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// Destruction drains: payloads that were published but never consumed
  /// are exactly the slots in [dequeue_pos, enqueue_pos) whose sequence
  /// reads "full" (pos + 1) — an in-flight claim that never published has
  /// no constructed payload and is skipped.  Runs with no concurrent
  /// users, like any destructor.
  ~MpmcRing() STASH_MC_MAY_THROW {
    const std::uint64_t end = enqueue_pos_.load(std::memory_order_relaxed);
    for (std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
         pos != end; ++pos) {
      Cell* cell = &cells_[pos & mask_];
      if (cell->seq.load(std::memory_order_acquire) == pos + 1)
        cell->value.destroy();
    }
  }

  /// False when the ring is full — and then `value` is left untouched, so
  /// callers can retry or fall back without losing the payload.  Never
  /// blocks.
  template <typename U = T>
  bool try_push(U&& value) {
    Cell* cell;
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        // Slot is free for exactly this position: claim it.  On failure
        // pos is refreshed by the CAS and we re-evaluate the new slot.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed,
                                               std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // slot still holds an unconsumed element: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value.emplace(std::forward<U>(value));
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Empty optional when the ring is empty.  Never blocks.
  std::optional<T> try_pop() {
    Cell* cell;
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed,
                                               std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return std::nullopt;  // slot not yet published: empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> out(cell->value.take());
    // Hand the slot to the producer one lap ahead.
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Approximate (racy) element count — monitoring and backpressure only.
  /// The head is loaded *first*: producers claimed at most `capacity_`
  /// ahead of the dequeue cursor when the head was read, and the tail only
  /// grows afterwards, so head − tail can shrink (clamped at 0 when pops
  /// overtake) but never exceed capacity.  The explicit clamp keeps the
  /// bound even if a future reordering reintroduces the overshoot — a
  /// backpressure signal must never report an over-full ring.
  [[nodiscard]] std::size_t size_approx() const {
    const std::uint64_t head = enqueue_pos_.load(std::memory_order_relaxed);
    const std::uint64_t tail = dequeue_pos_.load(std::memory_order_relaxed);
    if (tail >= head) return 0;
    const std::uint64_t n = head - tail;
    return n > capacity_ ? capacity_ : static_cast<std::size_t>(n);
  }

 private:
  struct Cell {
    catomic<std::uint64_t> seq;
    slot<T> value;
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  catomic<std::uint64_t> enqueue_pos_;
  catomic<std::uint64_t> dequeue_pos_;
};

STASH_CONCURRENCY_NS_END
