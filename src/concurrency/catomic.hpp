// catomic<T>: the only atomic type allowed in STASH lock-free code.
//
// Two personalities, chosen at compile time:
//
//   * Normal builds — a zero-cost wrapper over std::atomic<T>.  Same
//     memory-order API, nothing added; the optimiser sees through it.
//   * -DSTASH_MODEL_CHECK — every load/store/CAS/fence routes through the
//     mc::ModelChecker scheduler hooks with its memory_order, so the
//     interleaving explorer (mc/model_checker.hpp) owns all values and can
//     exercise relaxed/acquire/release visibility systematically.
//
// var<T> is the companion for *non-atomic* shared data: plain storage in
// normal builds, happens-before-checked (data-race-detecting) accesses
// under the model checker.
//
// ODR safety: the two personalities live in different inline namespaces,
// so a binary that mixes instrumented and plain translation units gets a
// link-time/type-system separation instead of silent UB.  Headers that
// define types holding catomic members (mpmc_ring.hpp, rw_spinlock.hpp)
// must use STASH_CONCURRENCY_NS_BEGIN/END for the same reason.
//
// tools/stash_lint.py enforces the companion invariants: no raw
// std::atomic outside this shim, and no memory_order_relaxed outside
// src/concurrency/ + src/obs/.
//
// stash-lint: lock-free-file
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#ifdef STASH_MODEL_CHECK
#include "mc/hooks.hpp"
// Under the checker, hooks may throw the engine's bailout exception; RAII
// types whose destructors release locks must not be noexcept then.
#define STASH_MC_MAY_THROW noexcept(false)
#define STASH_CONCURRENCY_NS_BEGIN \
  namespace stash::concurrency {   \
  inline namespace model_checked {
#else
#define STASH_MC_MAY_THROW
#define STASH_CONCURRENCY_NS_BEGIN \
  namespace stash::concurrency {   \
  inline namespace plain {
#endif
#define STASH_CONCURRENCY_NS_END \
  }                              \
  }

STASH_CONCURRENCY_NS_BEGIN

namespace detail {

template <typename T>
inline constexpr bool catomic_eligible =
    std::is_trivially_copyable_v<T> && sizeof(T) <= 8 &&
    std::has_unique_object_representations_v<T>;

template <typename T>
[[nodiscard]] std::uint64_t to_bits(T v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(T));
  return bits;
}

template <typename T>
[[nodiscard]] T from_bits(std::uint64_t bits) {
  T v;
  std::memcpy(&v, &bits, sizeof(T));
  return v;
}

}  // namespace detail

#ifndef STASH_MODEL_CHECK

template <typename T>
class catomic {
  static_assert(detail::catomic_eligible<T>,
                "catomic<T> requires a padding-free trivially copyable T of "
                "at most 8 bytes");

 public:
  explicit catomic(T initial = T{}, const char* name = nullptr) noexcept
      : a_(initial) {
    (void)name;  // names only exist for model-checker traces
  }
  catomic(const catomic&) = delete;
  catomic& operator=(const catomic&) = delete;

  [[nodiscard]] T load(
      std::memory_order order = std::memory_order_seq_cst) const noexcept {
    return a_.load(order);
  }
  void store(T v,
             std::memory_order order = std::memory_order_seq_cst) noexcept {
    a_.store(v, order);
  }
  T exchange(T v,
             std::memory_order order = std::memory_order_seq_cst) noexcept {
    return a_.exchange(v, order);
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) noexcept {
    return a_.compare_exchange_weak(expected, desired, success, failure);
  }
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) noexcept {
    return a_.compare_exchange_strong(expected, desired, success, failure);
  }
  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_add(T arg,
              std::memory_order order = std::memory_order_seq_cst) noexcept {
    return a_.fetch_add(arg, order);
  }
  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_sub(T arg,
              std::memory_order order = std::memory_order_seq_cst) noexcept {
    return a_.fetch_sub(arg, order);
  }

  /// Park until the value is observed to differ from `old` (C++20 futex
  /// wait).  May return spuriously; callers re-check their predicate.
  void wait(T old, std::memory_order order = std::memory_order_seq_cst)
      const noexcept {
    a_.wait(old, order);
  }
  void notify_one() noexcept { a_.notify_one(); }
  void notify_all() noexcept { a_.notify_all(); }

 private:
  std::atomic<T> a_;
};

/// Non-atomic shared data slot; plain storage in normal builds.
template <typename T>
class var {
 public:
  explicit var(T v = T{}, const char* name = nullptr) : value_(std::move(v)) {
    (void)name;
  }
  var(const var&) = delete;
  var& operator=(const var&) = delete;

  [[nodiscard]] const T& load() const { return value_; }
  void store(T v) { value_ = std::move(v); }
  /// Move the value out (counts as a write for race-checking purposes).
  [[nodiscard]] T take() { return std::move(value_); }

 private:
  T value_;
};

/// Manual-lifetime companion to var<T>: raw aligned storage whose payload
/// exists only between emplace() and take()/destroy().  MpmcRing uses it so
/// a slot's payload lifetime tracks its sequence word exactly — T need not
/// be default-constructible, and ring teardown destroys precisely the
/// published-but-unconsumed payloads.  The owner is responsible for the
/// emplace/destroy pairing; the destructor deliberately does nothing.
template <typename T>
class slot {
 public:
  explicit slot(const char* name = nullptr) noexcept { (void)name; }
  slot(const slot&) = delete;
  slot& operator=(const slot&) = delete;

  template <typename... Args>
  void emplace(Args&&... args) {
    ::new (static_cast<void*>(storage_)) T(std::forward<Args>(args)...);
  }
  /// Move the payload out and end its lifetime.
  [[nodiscard]] T take() {
    T* p = std::launder(reinterpret_cast<T*>(storage_));
    T out = std::move(*p);
    p->~T();
    return out;
  }
  /// End the payload's lifetime without reading it (teardown drain).
  void destroy() { std::launder(reinterpret_cast<T*>(storage_))->~T(); }

 private:
  alignas(T) unsigned char storage_[sizeof(T)];
};

inline void fence(std::memory_order order) noexcept {
  std::atomic_thread_fence(order);
}

#else  // STASH_MODEL_CHECK

template <typename T>
class catomic {
  static_assert(detail::catomic_eligible<T>,
                "catomic<T> requires a padding-free trivially copyable T of "
                "at most 8 bytes");

 public:
  explicit catomic(T initial = T{}, const char* name = nullptr) {
    mc::hook_atomic_init(this, name, detail::to_bits(initial));
  }
  catomic(const catomic&) = delete;
  catomic& operator=(const catomic&) = delete;

  [[nodiscard]] T load(
      std::memory_order order = std::memory_order_seq_cst) const {
    return detail::from_bits<T>(mc::hook_atomic_load(this, order));
  }
  void store(T v, std::memory_order order = std::memory_order_seq_cst) {
    mc::hook_atomic_store(this, detail::to_bits(v), order);
  }
  T exchange(T v, std::memory_order order = std::memory_order_seq_cst) {
    const std::uint64_t old = mc::hook_rmw_begin(this, order);
    mc::hook_rmw_commit(this, detail::to_bits(v), order);
    return detail::from_bits<T>(old);
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    // Note: modelled without spurious failure (DESIGN.md §12).
    return compare_exchange_strong(expected, desired, success, failure);
  }
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    const std::uint64_t cur = mc::hook_rmw_begin(this, success);
    if (cur == detail::to_bits(expected)) {
      mc::hook_rmw_commit(this, detail::to_bits(desired), success);
      return true;
    }
    mc::hook_rmw_fail(this, failure);
    expected = detail::from_bits<T>(cur);
    return false;
  }
  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_add(T arg, std::memory_order order = std::memory_order_seq_cst) {
    const T old = detail::from_bits<T>(mc::hook_rmw_begin(this, order));
    mc::hook_rmw_commit(this, detail::to_bits(static_cast<T>(old + arg)),
                        order);
    return old;
  }
  template <typename U = T,
            typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_sub(T arg, std::memory_order order = std::memory_order_seq_cst) {
    const T old = detail::from_bits<T>(mc::hook_rmw_begin(this, order));
    mc::hook_rmw_commit(this, detail::to_bits(static_cast<T>(old - arg)),
                        order);
    return old;
  }

  /// Modelled as an immediate spurious return: the checker already owns
  /// the schedule, so blocking would hide interleavings instead of adding
  /// them.  The load keeps the memory-order edge a real wait() would have.
  void wait(T old, std::memory_order order = std::memory_order_seq_cst) const {
    (void)old;
    (void)mc::hook_atomic_load(this, order);
  }
  void notify_one() {}
  void notify_all() {}
};

/// Non-atomic shared data slot; every access is race-checked against the
/// happens-before order the model checker tracks.
template <typename T>
class var {
 public:
  explicit var(T v = T{}, const char* name = nullptr) : value_(std::move(v)) {
    mc::hook_var_init(this, name);
  }
  var(const var&) = delete;
  var& operator=(const var&) = delete;

  [[nodiscard]] const T& load() const {
    mc::hook_var_read(this);
    return value_;
  }
  void store(T v) {
    mc::hook_var_write(this);
    value_ = std::move(v);
  }
  [[nodiscard]] T take() {
    mc::hook_var_write(this);
    return std::move(value_);
  }

 private:
  T value_;
};

/// Manual-lifetime companion (see the plain personality above).  Every
/// lifetime transition counts as a write for race-checking purposes.
template <typename T>
class slot {
 public:
  explicit slot(const char* name = nullptr) { mc::hook_var_init(this, name); }
  slot(const slot&) = delete;
  slot& operator=(const slot&) = delete;

  template <typename... Args>
  void emplace(Args&&... args) {
    mc::hook_var_write(this);
    ::new (static_cast<void*>(storage_)) T(std::forward<Args>(args)...);
  }
  [[nodiscard]] T take() {
    mc::hook_var_write(this);
    T* p = std::launder(reinterpret_cast<T*>(storage_));
    T out = std::move(*p);
    p->~T();
    return out;
  }
  void destroy() {
    mc::hook_var_write(this);
    std::launder(reinterpret_cast<T*>(storage_))->~T();
  }

 private:
  alignas(T) unsigned char storage_[sizeof(T)];
};

inline void fence(std::memory_order order) { mc::hook_fence(order); }

#endif  // STASH_MODEL_CHECK

STASH_CONCURRENCY_NS_END
