// CancellationToken: one-shot cooperative cancellation for the wall-clock
// datapath (DESIGN.md §14).
//
// A batch submitter that gives up on a deadline cancels the token; worker
// threads probe it between chunks (and between cells inside a chunk scan)
// and bail out instead of finishing work nobody will read.  The token is
// also a *publication channel*: the canceller records why (reason) and a
// detail word (e.g. the deadline that fired) before the cancelled flag
// becomes visible, and an observer that has seen `cancelled()` may read
// both race-free.
//
// Protocol (proven in tests/mc/cancellation_mc_test.cpp):
//
//   canceller:                          observer:
//     CAS state 0 -> kClaiming            if (cancelled())   [acquire]
//     write reason_/detail_ (plain)           read reason()/detail()
//     state.store(kCancelled, release)
//
// The claim CAS makes multi-canceller races safe (exactly one writer ever
// touches the plain payload; losers return false), and the release store
// pairs with the observer's acquire load so the payload writes
// happen-before any read that saw the flag.  Publishing with a relaxed
// store instead is a real data race on the payload — the mc test's broken
// variant proves the checker catches exactly that.
//
// stash-lint: lock-free-file
#pragma once

#include <cstdint>

#include "concurrency/catomic.hpp"

STASH_CONCURRENCY_NS_BEGIN

/// Why a token was cancelled.  kNone is never published.
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kDeadline = 1,  // the batch's wall-clock budget expired
  kShutdown = 2,  // the owning component is being torn down
  kCaller = 3,    // explicit caller request
};

[[nodiscard]] constexpr const char* to_string(CancelReason reason) noexcept {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kShutdown:
      return "shutdown";
    case CancelReason::kCaller:
      return "caller";
  }
  return "?";
}

class CancellationToken {
 public:
  CancellationToken()
      : state_(kIdle, "cancel.state"), detail_(0, "cancel.detail") {}
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation.  Exactly one caller wins (returns true) and
  /// publishes `reason`/`detail`; every other caller returns false and
  /// must not assume its arguments were recorded.  `reason` must not be
  /// kNone.
  bool cancel(CancelReason reason, std::uint64_t detail = 0) STASH_MC_MAY_THROW {
    std::uint32_t expected = kIdle;
    // The claim makes this thread the only payload writer; relaxed is
    // enough because the *release* publication below is what readers pair
    // their acquire with.
    if (!state_.compare_exchange_strong(expected, kClaiming,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed))
      return false;
    detail_.store(detail);
    // Pairs with the acquire in cancelled(): an observer that sees the
    // flag sees the payload.
    state_.store(kCancelled | (static_cast<std::uint32_t>(reason) << 16),
                 std::memory_order_release);
    return true;
  }

  /// True once a cancel has been *published* (a concurrent canceller that
  /// has claimed but not yet published does not count — its payload is
  /// not readable yet).
  [[nodiscard]] bool cancelled() const STASH_MC_MAY_THROW {
    return (state_.load(std::memory_order_acquire) & kCancelled) != 0;
  }

  /// The published reason; kNone while not (yet) cancelled.
  [[nodiscard]] CancelReason reason() const STASH_MC_MAY_THROW {
    const std::uint32_t s = state_.load(std::memory_order_acquire);
    if ((s & kCancelled) == 0) return CancelReason::kNone;
    return static_cast<CancelReason>((s >> 16) & 0xff);
  }

  /// The canceller's detail word.  Only meaningful after cancelled() has
  /// returned true on this thread (the acquire there orders this read).
  [[nodiscard]] std::uint64_t detail() const STASH_MC_MAY_THROW {
    return detail_.load();
  }

 private:
  static constexpr std::uint32_t kIdle = 0;
  static constexpr std::uint32_t kClaiming = 1;
  static constexpr std::uint32_t kCancelled = 2;

  catomic<std::uint32_t> state_;
  var<std::uint64_t> detail_;
};

STASH_CONCURRENCY_NS_END
