// CachingClient — the §IX-A front-end: a small client-side STASH graph plus
// an access-pattern predictor driving prefetch queries.
//
// Query path:
//   1. Probe the FrontendCache; fully-resident views never leave the
//      client ("reducing the number of queries needed to be evaluated at
//      the back-end").
//   2. Otherwise query the cluster for the *missing sub-rectangle* only,
//      merge with the local cells, and absorb the response.
//   3. Feed the navigation history to the AccessPredictor; when it is
//      confident about the next view, issue that query to the cluster in
//      the background and absorb it — the user's next action then hits the
//      front-end cache.
#pragma once

#include <optional>

#include "client/frontend_cache.hpp"
#include "client/predictor.hpp"
#include "cluster/cluster.hpp"

namespace stash::client {

struct CachingClientConfig {
  FrontendCacheConfig cache;
  bool enable_prefetch = true;
  std::uint32_t predictor_min_support = 2;
};

struct ClientResponse {
  CellSummaryMap cells;
  sim::SimTime latency = 0;          // what the user waited
  bool fully_local = false;          // served without touching the cluster
  /// Any backend fetch came back with missing partitions (holes in the
  /// rendered view).  Partial responses are NOT absorbed into the
  /// front-end cache: a hole must stay a backend re-fetch, not become a
  /// cached "nothing here".
  bool partial = false;
  /// Any backend fetch was served (in part) from a coarser ancestor level.
  /// Complete and correct at that resolution, but also not absorbed — the
  /// cache must only ever hold cells at the resolution it indexes by.
  bool degraded = false;
  std::size_t cells_from_frontend = 0;
  std::size_t cells_from_backend = 0;
  /// One entry per backend fetch box.  Usually 0 (fully local) or 1; a
  /// view crossing the antimeridian fetches each side of the seam
  /// separately, so it can carry 2.
  std::vector<cluster::QueryStats> backend;
};

struct ClientMetrics {
  std::uint64_t queries = 0;
  std::uint64_t fully_local = 0;
  std::uint64_t backend_queries = 0;
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetch_hits = 0;  // query fully local right after a prefetch
};

class CachingClient {
 public:
  CachingClient(cluster::StashCluster& cluster, CachingClientConfig config = {});

  /// Runs one user query (advances the cluster's virtual time to
  /// completion, including any background prefetch).
  ClientResponse query(const AggregationQuery& view);

  [[nodiscard]] const ClientMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const FrontendCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const AccessPredictor& predictor() const noexcept {
    return predictor_;
  }

 private:
  void maybe_prefetch(const AggregationQuery& view);

  cluster::StashCluster& cluster_;
  CachingClientConfig config_;
  FrontendCache cache_;
  AccessPredictor predictor_;
  std::optional<AggregationQuery> previous_view_;
  bool last_query_prefetched_ = false;
  std::optional<AggregationQuery> outstanding_prefetch_;
  ClientMetrics metrics_;
};

}  // namespace stash::client
