// Front-end (client-side) STASH cache — paper §IX-A, future work #1:
//
// "a smaller-capacity STASH graph at the front-end can greatly reduce
// latency in case users tend to browse a narrow spatiotemporal region,
// thus reducing the number of queries needed to be evaluated at the
// back-end."
//
// A FrontendCache holds a small StashGraph inside the client process.
// Queries are probed locally first; only the missing sub-region is sent to
// the cluster, and responses are absorbed back — but only chunks that lie
// *fully inside* the query area (edge chunks are partially covered by a
// response and must not be marked complete).
#pragma once

#include <optional>

#include "core/audit.hpp"
#include "core/query_engine.hpp"
#include "sim/cost_model.hpp"

namespace stash::client {

struct FrontendCacheConfig {
  StashConfig stash = [] {
    StashConfig config;
    config.max_cells = 200'000;  // "smaller-capacity" than a storage node
    return config;
  }();
  sim::CostModel cost;  // local probe/merge costs for latency accounting
};

struct FrontendLookup {
  CellSummaryMap cells;                  // locally served cells
  std::vector<ChunkKey> missing_chunks;  // not resident locally
  /// Chunk-aligned bounding boxes of the missing chunks (the reduced
  /// back-end queries), empty when everything was served locally.  One box
  /// per longitude band: a query crossing the antimeridian yields up to
  /// two boxes, one per side of the seam — a single min/max union across
  /// the seam would span nearly the whole globe and silently fetch far
  /// more than the missing region.  Chunk alignment may extend slightly
  /// past the query area so the fetched chunks become complete — callers
  /// clip the response for rendering.
  std::vector<BoundingBox> missing_boxes;
  sim::SimTime local_time = 0;           // probe + merge cost
  std::size_t chunks_probed = 0;
};

class FrontendCache {
 public:
  explicit FrontendCache(FrontendCacheConfig config = {});

  /// Probes the local graph for the query; reports what is resident and
  /// the sub-region that still needs the back-end.
  [[nodiscard]] FrontendLookup lookup(const AggregationQuery& query) const;

  /// Absorbs a back-end response: every chunk of `query` fully inside the
  /// query area becomes resident (including empty ones).  Returns cells
  /// inserted.
  std::size_t absorb(const AggregationQuery& query, const CellSummaryMap& cells,
                     sim::SimTime now);

  /// Drops stale state after a real-time update upstream.
  std::size_t invalidate_block(std::string_view partition, std::int64_t day) {
    return graph_.invalidate_block(partition, day);
  }

  [[nodiscard]] std::size_t total_cells() const noexcept {
    return graph_.total_cells();
  }
  [[nodiscard]] const StashGraph& graph() const noexcept { return graph_; }
  void clear() { graph_.clear(); }

  /// Structural-invariant audit of the embedded graph (core/audit.hpp) —
  /// cheap insurance for long-lived client processes.
  [[nodiscard]] AuditReport audit(AuditOptions options = {}) const {
    return GraphAuditor(options).audit(graph_);
  }

 private:
  struct CoveredChunk {
    ChunkKey chunk;
    bool inside = false;   // fully inside the (possibly wrapped) query area
    std::size_t band = 0;  // longitude band (lng_bands) the chunk came from
  };

  /// Chunk keys covering the query (split into longitude bands when the
  /// area is wrap-encoded), with full-containment flags.
  [[nodiscard]] std::vector<CoveredChunk> chunks_of(
      const AggregationQuery& query) const;

  FrontendCacheConfig config_;
  StashGraph graph_;
};

}  // namespace stash::client
