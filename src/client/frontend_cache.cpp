#include "client/frontend_cache.hpp"

#include <algorithm>

namespace stash::client {

FrontendCache::FrontendCache(FrontendCacheConfig config)
    : config_(config), graph_(config.stash) {}

std::vector<std::pair<ChunkKey, bool>> FrontendCache::chunks_of(
    const AggregationQuery& query) const {
  std::vector<std::pair<ChunkKey, bool>> out;
  const int chunk_prec = chunk_spatial_precision(query.res.spatial,
                                                 config_.stash.chunk_precision);
  const auto bins = temporal_covering(query.time, query.res.temporal);
  for (const auto& prefix : geohash::covering(query.area, chunk_prec)) {
    const bool inside = query.area.contains(geohash::decode(prefix));
    for (const auto& bin : bins) {
      // Temporal containment: the bin must lie inside the query range for
      // a full contribution.
      const TimeRange r = bin.range();
      const bool t_inside = query.time.begin <= r.begin && r.end <= query.time.end;
      out.emplace_back(ChunkKey(prefix, bin), inside && t_inside);
    }
  }
  return out;
}

FrontendLookup FrontendCache::lookup(const AggregationQuery& query) const {
  if (!query.valid())
    throw std::invalid_argument("FrontendCache::lookup: invalid query");
  FrontendLookup out;
  for (const auto& [chunk, inside] : chunks_of(query)) {
    ++out.chunks_probed;
    if (graph_.chunk_complete(query.res, chunk)) {
      graph_.collect_chunk(query.res, chunk, query.area, query.time, out.cells);
    } else {
      out.missing_chunks.push_back(chunk);
      // Chunk-aligned: fetching whole chunks lets absorb() mark them
      // complete, so the region becomes locally servable.
      const BoundingBox box = chunk.bounds();
      if (!out.missing_bounds) {
        out.missing_bounds = box;
      } else {
        out.missing_bounds = BoundingBox{
            std::min(out.missing_bounds->lat_min, box.lat_min),
            std::max(out.missing_bounds->lat_max, box.lat_max),
            std::min(out.missing_bounds->lng_min, box.lng_min),
            std::max(out.missing_bounds->lng_max, box.lng_max)};
      }
    }
  }
  out.local_time = config_.cost.cache_probes(out.chunks_probed) +
                   config_.cost.merge(out.cells.size());
  return out;
}

std::size_t FrontendCache::absorb(const AggregationQuery& query,
                                  const CellSummaryMap& cells,
                                  sim::SimTime now) {
  if (!query.valid())
    throw std::invalid_argument("FrontendCache::absorb: invalid query");
  // Group the response cells by chunk.
  std::unordered_map<ChunkKey, std::vector<std::pair<CellKey, Summary>>,
                     ChunkKeyHash>
      grouped;
  for (const auto& [key, summary] : cells)
    grouped[chunk_of(key, config_.stash.chunk_precision)].emplace_back(key,
                                                                       summary);
  std::size_t inserted = 0;
  std::vector<ChunkKey> touched;
  for (const auto& [chunk, inside] : chunks_of(query)) {
    if (!inside) continue;  // edge chunks: response covers them partially
    if (graph_.chunk_complete(query.res, chunk)) continue;
    ChunkContribution contribution;
    contribution.res = query.res;
    contribution.chunk = chunk;
    const auto it = grouped.find(chunk);
    if (it != grouped.end()) contribution.cells = it->second;
    const std::int64_t first = chunk.first_day();
    for (std::size_t i = 0; i < chunk.day_count(); ++i)
      contribution.days.push_back(first + static_cast<std::int64_t>(i));
    inserted += graph_.absorb(contribution, now);
    touched.push_back(chunk);
  }
  graph_.touch_region(query.res, touched, now);
  graph_.evict_if_needed(now);
  return inserted;
}

}  // namespace stash::client
