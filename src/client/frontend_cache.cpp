#include "client/frontend_cache.hpp"

#include <algorithm>
#include <array>

namespace stash::client {

FrontendCache::FrontendCache(FrontendCacheConfig config)
    : config_(config), graph_(config.stash) {}

std::vector<FrontendCache::CoveredChunk> FrontendCache::chunks_of(
    const AggregationQuery& query) const {
  std::vector<CoveredChunk> out;
  const int chunk_prec = chunk_spatial_precision(query.res.spatial,
                                                 config_.stash.chunk_precision);
  const auto bins = temporal_covering(query.time, query.res.temporal);
  // A wrap-encoded area (lng_max > 180) covers the antimeridian; geohash
  // coverings only understand normalized longitudes, so cover each band
  // separately.  The bands are disjoint, so no chunk appears twice.
  const auto bands = lng_bands(query.area);
  for (std::size_t b = 0; b < bands.size(); ++b) {
    for (const auto& prefix : geohash::covering(bands[b], chunk_prec)) {
      const bool inside = bands[b].contains(geohash::decode(prefix));
      for (const auto& bin : bins) {
        // Temporal containment: the bin must lie inside the query range
        // for a full contribution.
        const TimeRange r = bin.range();
        const bool t_inside =
            query.time.begin <= r.begin && r.end <= query.time.end;
        out.push_back({ChunkKey(prefix, bin), inside && t_inside, b});
      }
    }
  }
  return out;
}

FrontendLookup FrontendCache::lookup(const AggregationQuery& query) const {
  if (!query.valid())
    throw std::invalid_argument("FrontendCache::lookup: invalid query");
  FrontendLookup out;
  // Union the missing chunk boxes *per longitude band*.  A naive global
  // min/max union across the antimeridian seam degenerates: chunks at
  // +179° and -179° union into [-179, 179] — a near-global fetch box.
  std::array<std::optional<BoundingBox>, 2> band_union;
  for (const auto& covered : chunks_of(query)) {
    ++out.chunks_probed;
    if (graph_.chunk_complete(query.res, covered.chunk)) {
      graph_.collect_chunk(query.res, covered.chunk, query.area, query.time,
                           out.cells);
    } else {
      out.missing_chunks.push_back(covered.chunk);
      // Chunk-aligned: fetching whole chunks lets absorb() mark them
      // complete, so the region becomes locally servable.
      const BoundingBox box = covered.chunk.bounds();
      auto& unioned = band_union[covered.band];
      if (!unioned) {
        unioned = box;
      } else {
        unioned = BoundingBox{std::min(unioned->lat_min, box.lat_min),
                              std::max(unioned->lat_max, box.lat_max),
                              std::min(unioned->lng_min, box.lng_min),
                              std::max(unioned->lng_max, box.lng_max)};
      }
    }
  }
  for (const auto& unioned : band_union)
    if (unioned) out.missing_boxes.push_back(*unioned);
  out.local_time = config_.cost.cache_probes(out.chunks_probed) +
                   config_.cost.merge(out.cells.size());
  return out;
}

std::size_t FrontendCache::absorb(const AggregationQuery& query,
                                  const CellSummaryMap& cells,
                                  sim::SimTime now) {
  if (!query.valid())
    throw std::invalid_argument("FrontendCache::absorb: invalid query");
  // Group the response cells by chunk.
  std::unordered_map<ChunkKey, std::vector<std::pair<CellKey, Summary>>,
                     ChunkKeyHash>
      grouped;
  for (const auto& [key, summary] : cells)
    grouped[chunk_of(key, config_.stash.chunk_precision)].emplace_back(key,
                                                                       summary);
  std::size_t inserted = 0;
  std::vector<ChunkKey> touched;
  for (const auto& covered : chunks_of(query)) {
    if (!covered.inside) continue;  // edge chunks: partially covered
    if (graph_.chunk_complete(query.res, covered.chunk)) continue;
    ChunkContribution contribution;
    contribution.res = query.res;
    contribution.chunk = covered.chunk;
    const auto it = grouped.find(covered.chunk);
    if (it != grouped.end()) contribution.cells = it->second;
    const std::int64_t first = covered.chunk.first_day();
    for (std::size_t i = 0; i < covered.chunk.day_count(); ++i)
      contribution.days.push_back(first + static_cast<std::int64_t>(i));
    inserted += graph_.absorb(contribution, now);
    touched.push_back(covered.chunk);
  }
  graph_.touch_region(query.res, touched, now);
  graph_.evict_if_needed(now);
  return inserted;
}

}  // namespace stash::client
