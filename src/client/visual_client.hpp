// Front-end visualization client (paper §VI-A).
//
// Stand-in for the Grafana WorldMap front-end: translates user actions
// (the §V-B OLAP operators — slice, dice, pan, drill-down, roll-up) into
// aggregation queries against a StashCluster, tracks the current view
// state like a map widget would, and renders responses as JSON (what
// Grafana would parse) or as an ASCII heatmap for terminal examples.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "model/observation.hpp"

namespace stash::client {

/// One Cell of a response, flattened for rendering.
struct ResultCell {
  CellKey key;
  Summary summary;
};

struct ViewResult {
  std::vector<ResultCell> cells;  // sorted by key for stable output
  cluster::QueryStats stats;
};

class VisualClient {
 public:
  /// The client drives one cluster; the initial view is the whole domain
  /// at the paper's default resolution (s6/Day, 2015-02-02).
  explicit VisualClient(cluster::StashCluster& cluster);

  // --- view state ---
  [[nodiscard]] const AggregationQuery& view() const noexcept { return view_; }
  void set_view(const AggregationQuery& view);

  // --- §V-B navigation operators; each issues one query ---
  /// Dice: constrain both space and time.
  ViewResult dice(const BoundingBox& area, const TimeRange& time);
  /// Slice: fix the temporal dimension only, keeping the current area.
  ViewResult slice(const TimeRange& time);
  /// Pan: move the view by (fraction of height, fraction of width).
  ViewResult pan(double dlat_fraction, double dlng_fraction);
  /// Drill-down: one step finer spatial resolution (zoom in).
  ViewResult drill_down();
  /// Roll-up: one step coarser spatial resolution (zoom out).
  ViewResult roll_up();
  /// Re-issues the current view (refresh).
  ViewResult refresh();

  // --- rendering ---
  /// JSON in the shape a Grafana-like panel consumes.
  [[nodiscard]] static std::string to_json(const ViewResult& result,
                                           std::size_t max_cells = 50);
  /// rows x cols ASCII heatmap of one attribute's mean over the view area.
  [[nodiscard]] static std::string ascii_heatmap(const ViewResult& result,
                                                 const BoundingBox& area,
                                                 NamAttribute attribute,
                                                 int rows = 16, int cols = 48);

 private:
  ViewResult execute();

  cluster::StashCluster& cluster_;
  AggregationQuery view_;
};

}  // namespace stash::client
