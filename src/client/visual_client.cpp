#include "client/visual_client.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/civil_time.hpp"

namespace stash::client {

VisualClient::VisualClient(cluster::StashCluster& cluster) : cluster_(cluster) {
  // Initial view: the dataset's coverage at the paper's default resolution.
  view_.area = {16.0, 59.0, -134.0, -56.0};
  view_.time = {unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})};
  view_.res = {6, TemporalRes::Day};
}

void VisualClient::set_view(const AggregationQuery& view) {
  if (!view.valid()) throw std::invalid_argument("VisualClient: invalid view");
  view_ = view;
}

ViewResult VisualClient::execute() {
  CellSummaryMap cells;
  ViewResult out;
  out.stats = cluster_.run_query(view_, &cells);
  out.cells.reserve(cells.size());
  for (auto& [key, summary] : cells)
    out.cells.push_back({key, std::move(summary)});
  std::sort(out.cells.begin(), out.cells.end(),
            [](const ResultCell& a, const ResultCell& b) { return a.key < b.key; });
  return out;
}

ViewResult VisualClient::dice(const BoundingBox& area, const TimeRange& time) {
  view_.area = area;
  view_.time = time;
  return execute();
}

ViewResult VisualClient::slice(const TimeRange& time) {
  view_.time = time;
  return execute();
}

ViewResult VisualClient::pan(double dlat_fraction, double dlng_fraction) {
  view_.area = view_.area.translated(dlat_fraction * view_.area.height(),
                                     dlng_fraction * view_.area.width());
  return execute();
}

ViewResult VisualClient::drill_down() {
  if (view_.res.spatial >= geohash::kMaxPrecision)
    throw std::logic_error("VisualClient: already at max spatial resolution");
  ++view_.res.spatial;
  return execute();
}

ViewResult VisualClient::roll_up() {
  // Cells coarser than the DHT partition prefix would span storage nodes.
  if (view_.res.spatial <= cluster_.config().partition_prefix_length)
    throw std::logic_error("VisualClient: already at min spatial resolution");
  --view_.res.spatial;
  return execute();
}

ViewResult VisualClient::refresh() { return execute(); }

std::string VisualClient::to_json(const ViewResult& result, std::size_t max_cells) {
  std::ostringstream out;
  out << "{\"latency_ms\":" << sim::to_millis(result.stats.latency())
      << ",\"cells\":" << result.cells.size();
  // A panel must be able to badge non-exact views: partial = holes in the
  // map, degraded = complete but coarser than requested.
  if (result.stats.partial) out << ",\"partial\":true";
  if (result.stats.degraded) out << ",\"degraded\":true";
  if (result.stats.corrupt_blocks > 0)
    out << ",\"corrupt_blocks\":" << result.stats.corrupt_blocks;
  out << ",\"data\":[";
  const std::size_t n = std::min(max_cells, result.cells.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cell = result.cells[i];
    if (i > 0) out << ",";
    out << "{\"geohash\":\"" << cell.key.geohash_str() << "\",\"time\":\""
        << cell.key.bin().label() << "\",\"count\":"
        << cell.summary.observation_count();
    for (std::size_t a = 0; a < cell.summary.num_attributes(); ++a) {
      out << ",\"" << attribute_name(static_cast<NamAttribute>(a))
          << "\":" << cell.summary.attribute(a).mean();
    }
    out << "}";
  }
  if (result.cells.size() > n) out << ",{\"truncated\":true}";
  out << "]}";
  return out.str();
}

std::string VisualClient::ascii_heatmap(const ViewResult& result,
                                        const BoundingBox& area,
                                        NamAttribute attribute, int rows,
                                        int cols) {
  if (rows < 1 || cols < 1)
    throw std::invalid_argument("ascii_heatmap: rows/cols >= 1");
  const auto attr = static_cast<std::size_t>(attribute);
  std::vector<double> sum(static_cast<std::size_t>(rows * cols), 0.0);
  std::vector<double> weight(static_cast<std::size_t>(rows * cols), 0.0);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const auto& cell : result.cells) {
    const LatLng c = cell.key.bounds().center();
    if (!area.contains(c) || cell.summary.empty()) continue;
    const int r = std::min(rows - 1, static_cast<int>((area.lat_max - c.lat) /
                                                      area.height() * rows));
    const int col = std::min(cols - 1, static_cast<int>((c.lng - area.lng_min) /
                                                        area.width() * cols));
    const double v = cell.summary.attribute(attr).mean();
    const auto idx = static_cast<std::size_t>(r * cols + col);
    sum[idx] += v;
    weight[idx] += 1.0;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  static constexpr std::string_view kRamp = " .:-=+*#%@";
  std::ostringstream out;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const auto idx = static_cast<std::size_t>(r * cols + c);
      if (weight[idx] == 0.0) {
        out << ' ';
        continue;
      }
      const double v = sum[idx] / weight[idx];
      const double t = hi > lo ? (v - lo) / (hi - lo) : 0.5;
      const auto shade = static_cast<std::size_t>(
          std::min(t, 0.999) * static_cast<double>(kRamp.size()));
      out << kRamp[shade];
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace stash::client
