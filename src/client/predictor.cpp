#include "client/predictor.hpp"

#include <cmath>

namespace stash::client {
namespace {

constexpr double kPanTolerance = 0.05;  // fraction of extent

/// Pan directions indexed (dlat, dlng) in {-1,0,1}.
std::optional<NavAction> pan_action(double dlat_frac, double dlng_frac) {
  const auto quantize = [](double f) -> std::optional<int> {
    if (std::fabs(f) < kPanTolerance) return 0;
    if (f > 0.0 && f <= 1.1) return 1;
    if (f < 0.0 && f >= -1.1) return -1;
    return std::nullopt;  // too large: a jump, not a pan
  };
  const auto qlat = quantize(dlat_frac);
  const auto qlng = quantize(dlng_frac);
  if (!qlat || !qlng) return std::nullopt;
  if (*qlat == 0 && *qlng == 0) return NavAction::Repeat;
  if (*qlat == 1 && *qlng == 0) return NavAction::PanN;
  if (*qlat == 1 && *qlng == 1) return NavAction::PanNE;
  if (*qlat == 0 && *qlng == 1) return NavAction::PanE;
  if (*qlat == -1 && *qlng == 1) return NavAction::PanSE;
  if (*qlat == -1 && *qlng == 0) return NavAction::PanS;
  if (*qlat == -1 && *qlng == -1) return NavAction::PanSW;
  if (*qlat == 0 && *qlng == -1) return NavAction::PanW;
  return NavAction::PanNW;
}

bool is_pan(NavAction action) {
  return static_cast<std::uint8_t>(action) <=
         static_cast<std::uint8_t>(NavAction::PanNW);
}

}  // namespace

std::string to_string(NavAction action) {
  switch (action) {
    case NavAction::PanN: return "pan-N";
    case NavAction::PanNE: return "pan-NE";
    case NavAction::PanE: return "pan-E";
    case NavAction::PanSE: return "pan-SE";
    case NavAction::PanS: return "pan-S";
    case NavAction::PanSW: return "pan-SW";
    case NavAction::PanW: return "pan-W";
    case NavAction::PanNW: return "pan-NW";
    case NavAction::DrillDown: return "drill-down";
    case NavAction::RollUp: return "roll-up";
    case NavAction::SliceNext: return "slice-next";
    case NavAction::SlicePrev: return "slice-prev";
    case NavAction::Repeat: return "repeat";
    case NavAction::Jump: return "jump";
  }
  return "?";
}

NavAction classify_transition(const AggregationQuery& from,
                              const AggregationQuery& to) {
  if (to.res.temporal != from.res.temporal) return NavAction::Jump;
  if (to.res.spatial == from.res.spatial + 1 && to.area == from.area &&
      to.time == from.time)
    return NavAction::DrillDown;
  if (to.res.spatial == from.res.spatial - 1 && to.area == from.area &&
      to.time == from.time)
    return NavAction::RollUp;
  if (to.res.spatial != from.res.spatial) return NavAction::Jump;

  if (to.area == from.area && to.time != from.time) {
    const std::int64_t width = from.time.end - from.time.begin;
    if (to.time.begin == from.time.end && to.time.end - to.time.begin == width)
      return NavAction::SliceNext;
    if (to.time.end == from.time.begin && to.time.end - to.time.begin == width)
      return NavAction::SlicePrev;
    return NavAction::Jump;
  }
  if (to.time != from.time) return NavAction::Jump;

  // Same shape required for a pan.
  if (std::fabs(to.area.height() - from.area.height()) > 1e-9 ||
      std::fabs(to.area.width() - from.area.width()) > 1e-9)
    return NavAction::Jump;
  const double dlat_frac =
      (to.area.lat_min - from.area.lat_min) / from.area.height();
  const double dlng_frac =
      (to.area.lng_min - from.area.lng_min) / from.area.width();
  return pan_action(dlat_frac, dlng_frac).value_or(NavAction::Jump);
}

std::optional<AggregationQuery> apply_action(const AggregationQuery& view,
                                             NavAction action, int min_spatial,
                                             double pan_step) {
  AggregationQuery out = view;
  const auto pan = [&](double dlat, double dlng) {
    out.area = view.area.translated(dlat * pan_step * view.area.height(),
                                    dlng * pan_step * view.area.width());
    return out;
  };
  switch (action) {
    case NavAction::PanN: return pan(1, 0);
    case NavAction::PanNE: return pan(1, 1);
    case NavAction::PanE: return pan(0, 1);
    case NavAction::PanSE: return pan(-1, 1);
    case NavAction::PanS: return pan(-1, 0);
    case NavAction::PanSW: return pan(-1, -1);
    case NavAction::PanW: return pan(0, -1);
    case NavAction::PanNW: return pan(1, -1);
    case NavAction::DrillDown:
      if (view.res.spatial >= geohash::kMaxPrecision) return std::nullopt;
      ++out.res.spatial;
      return out;
    case NavAction::RollUp:
      if (view.res.spatial <= min_spatial) return std::nullopt;
      --out.res.spatial;
      return out;
    case NavAction::SliceNext:
      out.time = {view.time.end, view.time.end + (view.time.end - view.time.begin)};
      return out;
    case NavAction::SlicePrev:
      out.time = {view.time.begin - (view.time.end - view.time.begin),
                  view.time.begin};
      return out;
    case NavAction::Repeat:
      return out;
    case NavAction::Jump:
      return std::nullopt;
  }
  return std::nullopt;
}

void AccessPredictor::observe(const AggregationQuery& from,
                              const AggregationQuery& to) {
  const NavAction action = classify_transition(from, to);
  if (is_pan(action)) {
    const double magnitude =
        std::max(std::fabs(to.area.lat_min - from.area.lat_min) /
                     from.area.height(),
                 std::fabs(to.area.lng_min - from.area.lng_min) /
                     from.area.width());
    pan_step_ema_ = 0.5 * pan_step_ema_ + 0.5 * magnitude;
  }
  if (last_action_.has_value()) {
    ++counts_[static_cast<std::size_t>(*last_action_)]
             [static_cast<std::size_t>(action)];
    ++total_;
  }
  last_action_ = action;
}

std::optional<AggregationQuery> AccessPredictor::predict(
    const AggregationQuery& current) const {
  if (!last_action_.has_value()) return std::nullopt;
  const Row& row = counts_[static_cast<std::size_t>(*last_action_)];
  std::size_t best = 0;
  std::uint32_t best_count = 0;
  for (std::size_t a = 0; a < kNavActionCount; ++a) {
    if (row[a] > best_count) {
      best_count = row[a];
      best = a;
    }
  }
  if (best_count < min_support_) return std::nullopt;
  const auto action = static_cast<NavAction>(best);
  if (action == NavAction::Jump || action == NavAction::Repeat)
    return std::nullopt;
  return apply_action(current, action, 2, pan_step_ema_);
}

}  // namespace stash::client
