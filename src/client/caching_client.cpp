#include "client/caching_client.hpp"

#include <algorithm>

namespace stash::client {

CachingClient::CachingClient(cluster::StashCluster& cluster,
                             CachingClientConfig config)
    : cluster_(cluster),
      config_(config),
      cache_(config.cache),
      predictor_(config.predictor_min_support) {}

ClientResponse CachingClient::query(const AggregationQuery& view) {
  if (!view.valid())
    throw std::invalid_argument("CachingClient::query: invalid view");
  ++metrics_.queries;

  ClientResponse response;
  FrontendLookup local = cache_.lookup(view);
  response.cells_from_frontend = local.cells.size();
  response.cells = std::move(local.cells);
  response.latency = local.local_time;

  if (local.missing_boxes.empty()) {
    // Entirely served at the front-end — the future-work payoff.
    response.fully_local = true;
    ++metrics_.fully_local;
    if (outstanding_prefetch_.has_value()) ++metrics_.prefetch_hits;
  } else {
    // Ask the back-end only for the missing sub-rectangles (one per
    // longitude band: a view straddling the antimeridian fetches each
    // side of the seam separately).
    const auto view_bands = lng_bands(view.area);
    for (const BoundingBox& box : local.missing_boxes) {
      AggregationQuery backend_query = view;
      backend_query.area = box;
      ++metrics_.backend_queries;
      CellSummaryMap backend_cells;
      response.backend.push_back(cluster_.run_query(backend_query, &backend_cells));
      const cluster::QueryStats& stats = response.backend.back();
      response.latency += stats.latency();
      response.cells_from_backend += backend_cells.size();
      response.partial = response.partial || stats.partial;
      response.degraded = response.degraded || stats.degraded;
      // Only exact, complete responses may warm the front-end cache: a
      // partial answer would cache holes as "empty", and a degraded one
      // would file coarse cells under the wrong resolution.
      if (!stats.partial && !stats.degraded)
        cache_.absorb(backend_query, backend_cells, cluster_.loop().now());
      // The back-end query was chunk-aligned (possibly larger than the
      // view): clip the rendered response back to what the user asked for.
      for (auto& [key, summary] : backend_cells) {
        const BoundingBox cell = key.bounds();
        if (std::none_of(view_bands.begin(), view_bands.end(),
                         [&](const BoundingBox& b) { return cell.intersects(b); }))
          continue;
        if (!key.time_range().intersects(view.time)) continue;
        response.cells.try_emplace(key, std::move(summary));
      }
    }
  }
  outstanding_prefetch_.reset();

  // Learn the transition and maybe prefetch the predicted next view.
  if (previous_view_.has_value()) predictor_.observe(*previous_view_, view);
  previous_view_ = view;
  if (config_.enable_prefetch) maybe_prefetch(view);
  return response;
}

void CachingClient::maybe_prefetch(const AggregationQuery& view) {
  const auto predicted = predictor_.predict(view);
  if (!predicted.has_value() || !predicted->valid()) return;
  const FrontendLookup probe = cache_.lookup(*predicted);
  if (probe.missing_boxes.empty()) return;  // already resident
  ++metrics_.prefetches_issued;
  outstanding_prefetch_ = *predicted;
  // The prefetch runs in the background (its virtual time does not gate a
  // user response — the next user action simply finds the cache warm).
  for (const BoundingBox& box : probe.missing_boxes) {
    AggregationQuery prefetch = *predicted;
    prefetch.area = box;
    CellSummaryMap cells;
    const cluster::QueryStats stats = cluster_.run_query(prefetch, &cells);
    if (!stats.partial && !stats.degraded)
      cache_.absorb(prefetch, cells, cluster_.loop().now());
  }
}

}  // namespace stash::client
