// User access-pattern prediction — paper §IX-A, future work #2:
//
// "constructing a trained model that accurately predicts a user's access
// pattern can assist in the construction of prefetching queries that
// augment regions that the model predicts would be of interest in future
// with the region to be requested currently."
//
// A first-order Markov model over *navigation actions*: consecutive views
// are classified into pan (8 quantized directions), drill-down, roll-up,
// temporal slice (prev/next), repeat, or jump; transition counts drive the
// prediction, and the predicted action is applied to the current view to
// form a prefetch query.  Momentum falls out naturally: after two pans
// east, pan-east → pan-east dominates the table.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "core/query.hpp"

namespace stash::client {

enum class NavAction : std::uint8_t {
  PanN, PanNE, PanE, PanSE, PanS, PanSW, PanW, PanNW,
  DrillDown, RollUp,
  SliceNext, SlicePrev,
  Repeat,
  Jump,  // anything unclassifiable — never predicted
};
inline constexpr std::size_t kNavActionCount = 14;

[[nodiscard]] std::string to_string(NavAction action);

/// Classifies the transition between two consecutive views.
[[nodiscard]] NavAction classify_transition(const AggregationQuery& from,
                                            const AggregationQuery& to);

/// Applies an action to a view; nullopt when impossible (resolution limit,
/// Jump, etc.).  `min_spatial` guards roll-up (DHT partition prefix);
/// `pan_step` is the pan distance as a fraction of the view extent.
[[nodiscard]] std::optional<AggregationQuery> apply_action(
    const AggregationQuery& view, NavAction action, int min_spatial = 2,
    double pan_step = 0.25);

class AccessPredictor {
 public:
  /// Minimum observations of a transition before it is trusted.
  explicit AccessPredictor(std::uint32_t min_support = 2)
      : min_support_(min_support) {}

  /// Feeds one observed transition.
  void observe(const AggregationQuery& from, const AggregationQuery& to);

  /// Predicts the next view after `current`, given the last action taken
  /// to reach it; nullopt when the model has no confident prediction.
  [[nodiscard]] std::optional<AggregationQuery> predict(
      const AggregationQuery& current) const;

  [[nodiscard]] std::uint64_t observations() const noexcept { return total_; }
  [[nodiscard]] std::optional<NavAction> last_action() const noexcept {
    return last_action_;
  }

 private:
  using Row = std::array<std::uint32_t, kNavActionCount>;
  std::array<Row, kNavActionCount> counts_{};
  std::optional<NavAction> last_action_;
  std::uint64_t total_ = 0;
  std::uint32_t min_support_;
  /// Exponential moving average of observed pan magnitudes, so predicted
  /// pans land where this user's pans actually land.
  double pan_step_ema_ = 0.25;
};

}  // namespace stash::client
