#include "geo/temporal.hpp"

#include <sstream>
#include <stdexcept>

namespace stash {

std::string to_string(TemporalRes res) {
  switch (res) {
    case TemporalRes::Year: return "Year";
    case TemporalRes::Month: return "Month";
    case TemporalRes::Day: return "Day";
    case TemporalRes::Hour: return "Hour";
  }
  return "?";
}

std::optional<TemporalRes> coarser(TemporalRes res) noexcept {
  if (res == TemporalRes::Year) return std::nullopt;
  return static_cast<TemporalRes>(static_cast<std::uint8_t>(res) - 1);
}

std::optional<TemporalRes> finer(TemporalRes res) noexcept {
  if (res == TemporalRes::Hour) return std::nullopt;
  return static_cast<TemporalRes>(static_cast<std::uint8_t>(res) + 1);
}

TemporalBin::TemporalBin(TemporalRes res, int year, int month, int day, int hour)
    : year_(static_cast<std::int16_t>(year)),
      month_(static_cast<std::int8_t>(month)),
      day_(static_cast<std::int8_t>(day)),
      hour_(static_cast<std::int8_t>(hour)),
      res_(res) {
  const bool month_used = res >= TemporalRes::Month;
  const bool day_used = res >= TemporalRes::Day;
  const bool hour_used = res >= TemporalRes::Hour;
  if (year < 0 || year > 16000) throw std::invalid_argument("TemporalBin: bad year");
  if (month < 1 || month > 12 || (!month_used && month != 1))
    throw std::invalid_argument("TemporalBin: bad month");
  if (day < 1 || (!day_used && day != 1) ||
      (day_used && day > days_in_month(year, month)))
    throw std::invalid_argument("TemporalBin: bad day");
  if (hour < 0 || hour > 23 || (!hour_used && hour != 0))
    throw std::invalid_argument("TemporalBin: bad hour");
}

TemporalBin TemporalBin::of_timestamp(std::int64_t ts, TemporalRes res) {
  const CivilDateTime dt = civil_from_unix_seconds(ts);
  switch (res) {
    case TemporalRes::Year: return TemporalBin(res, dt.date.year);
    case TemporalRes::Month: return TemporalBin(res, dt.date.year, dt.date.month);
    case TemporalRes::Day:
      return TemporalBin(res, dt.date.year, dt.date.month, dt.date.day);
    case TemporalRes::Hour:
      return TemporalBin(res, dt.date.year, dt.date.month, dt.date.day, dt.hour);
  }
  throw std::invalid_argument("TemporalBin::of_timestamp: bad resolution");
}

TimeRange TemporalBin::range() const noexcept {
  const std::int64_t begin =
      unix_seconds(CivilDate{year_, month_, day_}, hour_);
  std::int64_t end = 0;
  switch (res_) {
    case TemporalRes::Year:
      end = unix_seconds(CivilDate{year_ + 1, 1, 1});
      break;
    case TemporalRes::Month:
      end = month_ == 12 ? unix_seconds(CivilDate{year_ + 1, 1, 1})
                         : unix_seconds(CivilDate{year_, month_ + 1, 1});
      break;
    case TemporalRes::Day:
      end = begin + 86400;
      break;
    case TemporalRes::Hour:
      end = begin + 3600;
      break;
  }
  return {begin, end};
}

std::optional<TemporalBin> TemporalBin::parent() const {
  const auto up = coarser(res_);
  if (!up) return std::nullopt;
  switch (*up) {
    case TemporalRes::Year: return TemporalBin(*up, year_);
    case TemporalRes::Month: return TemporalBin(*up, year_, month_);
    case TemporalRes::Day: return TemporalBin(*up, year_, month_, day_);
    case TemporalRes::Hour: break;  // unreachable: Hour has no children res
  }
  return std::nullopt;
}

std::vector<TemporalBin> TemporalBin::children() const {
  const auto down = finer(res_);
  if (!down) return {};
  std::vector<TemporalBin> out;
  switch (*down) {
    case TemporalRes::Month:
      out.reserve(12);
      for (int m = 1; m <= 12; ++m) out.emplace_back(*down, year_, m);
      break;
    case TemporalRes::Day: {
      const int n = days_in_month(year_, month_);
      out.reserve(static_cast<std::size_t>(n));
      for (int d = 1; d <= n; ++d) out.emplace_back(*down, year_, month_, d);
      break;
    }
    case TemporalRes::Hour:
      out.reserve(24);
      for (int h = 0; h < 24; ++h) out.emplace_back(*down, year_, month_, day_, h);
      break;
    case TemporalRes::Year:
      break;  // unreachable
  }
  return out;
}

TemporalBin TemporalBin::prev() const {
  return of_timestamp(range().begin - 1, res_);
}

TemporalBin TemporalBin::next() const { return of_timestamp(range().end, res_); }

bool TemporalBin::contains(const TemporalBin& other) const {
  const TimeRange mine = range();
  const TimeRange theirs = other.range();
  return mine.begin <= theirs.begin && theirs.end <= mine.end;
}

std::string TemporalBin::label() const {
  std::ostringstream out;
  const auto pad2 = [&out](int v) {
    if (v < 10) out << '0';
    out << v;
  };
  out << year_;
  if (res_ >= TemporalRes::Month) {
    out << '-';
    pad2(month_);
  }
  if (res_ >= TemporalRes::Day) {
    out << '-';
    pad2(day_);
  }
  if (res_ >= TemporalRes::Hour) {
    out << 'T';
    pad2(hour_);
  }
  return out.str();
}

std::uint32_t TemporalBin::pack() const noexcept {
  return (static_cast<std::uint32_t>(res_) << 28) |
         (static_cast<std::uint32_t>(year_) << 14) |
         (static_cast<std::uint32_t>(month_) << 10) |
         (static_cast<std::uint32_t>(day_) << 5) |
         static_cast<std::uint32_t>(hour_);
}

TemporalBin TemporalBin::unpack(std::uint32_t packed) {
  // pack() uses 30 bits; set high bits mean a corrupted or aliased key, so
  // the wire decoder must reject rather than silently mask them.
  if ((packed >> 30) != 0)
    throw std::invalid_argument("TemporalBin::unpack: garbage high bits");
  return TemporalBin(static_cast<TemporalRes>((packed >> 28) & 0x3),
                     static_cast<int>((packed >> 14) & 0x3fff),
                     static_cast<int>((packed >> 10) & 0xf),
                     static_cast<int>((packed >> 5) & 0x1f),
                     static_cast<int>(packed & 0x1f));
}

std::vector<TemporalBin> temporal_covering(const TimeRange& range,
                                           TemporalRes res) {
  if (!range.valid()) throw std::invalid_argument("temporal_covering: bad range");
  std::vector<TemporalBin> out;
  if (range.begin == range.end) return out;
  TemporalBin bin = TemporalBin::of_timestamp(range.begin, res);
  while (bin.range().begin < range.end) {
    out.push_back(bin);
    bin = bin.next();
  }
  return out;
}

std::size_t temporal_covering_size(const TimeRange& range, TemporalRes res) {
  if (!range.valid())
    throw std::invalid_argument("temporal_covering_size: bad range");
  if (range.begin == range.end) return 0;
  // Cheap exact counts for the fixed-width resolutions; walk for the rest.
  if (res == TemporalRes::Hour || res == TemporalRes::Day) {
    const std::int64_t width = res == TemporalRes::Hour ? 3600 : 86400;
    const std::int64_t first =
        TemporalBin::of_timestamp(range.begin, res).range().begin;
    return static_cast<std::size_t>((range.end - first + width - 1) / width);
  }
  return temporal_covering(range, res).size();
}

}  // namespace stash
