// CellKey: the spatiotemporal label identifying one STASH Cell.
//
// Paper Table I: a Cell's label is its geohash plus its temporal range at a
// given resolution (e.g. geohash 9q8y7, month 2015-03).  The key packs both
// into 12 bytes so the per-level hash maps and the DHT work on value types
// instead of strings.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/hash.hpp"
#include "geo/geohash.hpp"
#include "geo/resolution.hpp"
#include "geo/temporal.hpp"

namespace stash {

struct CellKey {
  std::uint64_t spatial = 0;   // geohash::pack()
  std::uint32_t temporal = 0;  // TemporalBin::pack()

  CellKey() = default;
  CellKey(std::string_view gh, const TemporalBin& bin)
      : spatial(geohash::pack(gh)), temporal(bin.pack()) {}

  [[nodiscard]] std::string geohash_str() const { return geohash::unpack(spatial); }
  [[nodiscard]] TemporalBin bin() const { return TemporalBin::unpack(temporal); }

  [[nodiscard]] Resolution resolution() const {
    return {static_cast<int>(spatial >> 60), bin().res()};
  }

  [[nodiscard]] BoundingBox bounds() const { return geohash::decode(geohash_str()); }
  [[nodiscard]] TimeRange time_range() const { return bin().range(); }

  [[nodiscard]] std::string label() const {
    return geohash_str() + "@" + bin().label();
  }

  bool operator==(const CellKey&) const = default;
  /// Lexicographic on (spatial, temporal); gives deterministic iteration.
  auto operator<=>(const CellKey&) const = default;
};

struct CellKeyHash {
  [[nodiscard]] std::size_t operator()(const CellKey& k) const noexcept {
    std::uint64_t h = mix64(k.spatial);
    hash_combine(h, k.temporal);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace stash
