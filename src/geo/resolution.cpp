#include "geo/resolution.hpp"

namespace stash {

std::vector<Resolution> parent_resolutions(const Resolution& r) {
  std::vector<Resolution> out;
  const bool has_s = r.spatial > 1;
  const auto t_up = coarser(r.temporal);
  if (has_s) out.push_back({r.spatial - 1, r.temporal});
  if (t_up) out.push_back({r.spatial, *t_up});
  if (has_s && t_up) out.push_back({r.spatial - 1, *t_up});
  return out;
}

std::vector<Resolution> child_resolutions(const Resolution& r) {
  std::vector<Resolution> out;
  const bool has_s = r.spatial < geohash::kMaxPrecision;
  const auto t_down = finer(r.temporal);
  if (has_s) out.push_back({r.spatial + 1, r.temporal});
  if (t_down) out.push_back({r.spatial, *t_down});
  if (has_s && t_down) out.push_back({r.spatial + 1, *t_down});
  return out;
}

}  // namespace stash
