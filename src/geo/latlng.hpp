// Geographic primitives: points and bounding boxes.
//
// Query_Polygon in the paper is always a lat/lon rectangle (§VIII-A uses
// "a random rectangle over the data's entire spatial coverage"), so an
// axis-aligned BoundingBox is the spatial query primitive.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

namespace stash {

struct LatLng {
  double lat = 0.0;  // degrees, [-90, 90]
  double lng = 0.0;  // degrees, [-180, 180)

  bool operator==(const LatLng&) const = default;
};

/// Axis-aligned geographic rectangle [lat_min,lat_max] × [lng_min,lng_max].
/// A rectangle crossing the antimeridian is *wrap-encoded*: lng_max > 180
/// means the box continues past +180° and re-enters at -180° (so
/// [170, 190] spans 170..180 ∪ -180..-170).  Geohash machinery only
/// understands normalized longitudes — split wrap-encoded boxes with
/// `lng_bands()` before covering/scanning.
struct BoundingBox {
  double lat_min = 0.0;
  double lat_max = 0.0;
  double lng_min = 0.0;
  double lng_max = 0.0;

  [[nodiscard]] static BoundingBox whole_world() noexcept {
    return {-90.0, 90.0, -180.0, 180.0};
  }

  [[nodiscard]] bool valid() const noexcept {
    return lat_min <= lat_max && lng_min <= lng_max;
  }

  [[nodiscard]] double height() const noexcept { return lat_max - lat_min; }
  [[nodiscard]] double width() const noexcept { return lng_max - lng_min; }
  [[nodiscard]] double area() const noexcept { return height() * width(); }

  [[nodiscard]] LatLng center() const noexcept {
    return {(lat_min + lat_max) / 2.0, (lng_min + lng_max) / 2.0};
  }

  [[nodiscard]] bool contains(const LatLng& p) const noexcept {
    return p.lat >= lat_min && p.lat <= lat_max && p.lng >= lng_min &&
           p.lng <= lng_max;
  }

  [[nodiscard]] bool contains(const BoundingBox& other) const noexcept {
    return other.lat_min >= lat_min && other.lat_max <= lat_max &&
           other.lng_min >= lng_min && other.lng_max <= lng_max;
  }

  /// Open intersection test: boxes sharing only a boundary do not intersect.
  /// This is what cell-covering wants — a query rectangle that merely
  /// touches a geohash cell's edge contains none of its interior.
  [[nodiscard]] bool intersects(const BoundingBox& other) const noexcept {
    return lat_min < other.lat_max && other.lat_min < lat_max &&
           lng_min < other.lng_max && other.lng_min < lng_max;
  }

  [[nodiscard]] BoundingBox intersection(const BoundingBox& other) const noexcept {
    return {std::max(lat_min, other.lat_min), std::min(lat_max, other.lat_max),
            std::max(lng_min, other.lng_min), std::min(lng_max, other.lng_max)};
  }

  /// Translates the box by (dlat, dlng) degrees, clamping to the globe.
  [[nodiscard]] BoundingBox translated(double dlat, double dlng) const noexcept;

  /// Shrinks the box around its center so that the area scales by `factor`.
  [[nodiscard]] BoundingBox scaled(double factor) const noexcept;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const BoundingBox&) const = default;
};

/// Splits a possibly wrap-encoded box into 1 or 2 normalized longitude
/// bands (lng within [-180, 180], lng_min <= lng_max).  A box spanning the
/// full circle collapses to one world-wide band.
[[nodiscard]] std::vector<BoundingBox> lng_bands(const BoundingBox& box);

}  // namespace stash
