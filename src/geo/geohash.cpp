#include "geo/geohash.hpp"

#include <cmath>
#include <stdexcept>

namespace stash::geohash {
namespace {

/// Reverse alphabet lookup: character -> value 0..31, or -1.
constexpr std::array<int, 128> build_reverse_table() {
  std::array<int, 128> table{};
  for (auto& v : table) v = -1;
  for (int i = 0; i < 32; ++i)
    table[static_cast<std::size_t>(kAlphabet[static_cast<std::size_t>(i)])] = i;
  return table;
}
constexpr auto kReverse = build_reverse_table();

int char_value(char c) {
  const auto uc = static_cast<unsigned char>(c);
  const int v = uc < 128 ? kReverse[uc] : -1;
  if (v < 0) throw std::invalid_argument("geohash: invalid character");
  return v;
}

void check_valid(std::string_view gh) {
  if (!is_valid(gh)) throw std::invalid_argument("geohash: malformed hash");
}

/// Number of longitude / latitude bits at a precision (bits alternate
/// starting with longitude).
constexpr int lng_bits(int precision) noexcept { return (5 * precision + 1) / 2; }
constexpr int lat_bits(int precision) noexcept { return (5 * precision) / 2; }

}  // namespace

bool is_valid(std::string_view gh) noexcept {
  if (gh.empty() || gh.size() > static_cast<std::size_t>(kMaxPrecision))
    return false;
  for (char c : gh) {
    const auto uc = static_cast<unsigned char>(c);
    if (uc >= 128 || kReverse[uc] < 0) return false;
  }
  return true;
}

std::string encode(const LatLng& point, int precision) {
  if (precision < 1 || precision > kMaxPrecision)
    throw std::invalid_argument("geohash::encode: precision out of range");
  // Negated range check so NaN coordinates fail it too (NaN compares false
  // against both bounds, so the direct form silently encoded garbage —
  // found by the geohash fuzz harness).
  if (!(point.lat >= -90.0 && point.lat <= 90.0 && point.lng >= -180.0 &&
        point.lng <= 180.0))
    throw std::invalid_argument("geohash::encode: point out of range");

  double lat_lo = -90.0, lat_hi = 90.0;
  double lng_lo = -180.0, lng_hi = 180.0;
  std::string out;
  out.reserve(static_cast<std::size_t>(precision));
  bool even = true;  // even bit positions refine longitude
  int bit = 0;
  int value = 0;
  while (out.size() < static_cast<std::size_t>(precision)) {
    if (even) {
      const double mid = (lng_lo + lng_hi) / 2.0;
      if (point.lng >= mid) {
        value = value * 2 + 1;
        lng_lo = mid;
      } else {
        value *= 2;
        lng_hi = mid;
      }
    } else {
      const double mid = (lat_lo + lat_hi) / 2.0;
      if (point.lat >= mid) {
        value = value * 2 + 1;
        lat_lo = mid;
      } else {
        value *= 2;
        lat_hi = mid;
      }
    }
    even = !even;
    if (++bit == 5) {
      out.push_back(kAlphabet[static_cast<std::size_t>(value)]);
      bit = 0;
      value = 0;
    }
  }
  return out;
}

BoundingBox decode(std::string_view gh) {
  check_valid(gh);
  double lat_lo = -90.0, lat_hi = 90.0;
  double lng_lo = -180.0, lng_hi = 180.0;
  bool even = true;
  for (char c : gh) {
    const int value = char_value(c);
    for (int b = 4; b >= 0; --b) {
      const int bit = (value >> b) & 1;
      if (even) {
        const double mid = (lng_lo + lng_hi) / 2.0;
        (bit != 0 ? lng_lo : lng_hi) = mid;
      } else {
        const double mid = (lat_lo + lat_hi) / 2.0;
        (bit != 0 ? lat_lo : lat_hi) = mid;
      }
      even = !even;
    }
  }
  return {lat_lo, lat_hi, lng_lo, lng_hi};
}

LatLng decode_center(std::string_view gh) { return decode(gh).center(); }

double cell_width_deg(int precision) noexcept {
  return 360.0 / std::exp2(lng_bits(precision));
}

double cell_height_deg(int precision) noexcept {
  return 180.0 / std::exp2(lat_bits(precision));
}

std::optional<std::string> parent(std::string_view gh) {
  check_valid(gh);
  if (gh.size() == 1) return std::nullopt;
  return std::string(gh.substr(0, gh.size() - 1));
}

std::vector<std::string> children(std::string_view gh) {
  check_valid(gh);
  if (gh.size() >= static_cast<std::size_t>(kMaxPrecision))
    throw std::invalid_argument("geohash::children: already at max precision");
  std::vector<std::string> out;
  out.reserve(kChildrenPerCell);
  for (char c : kAlphabet) {
    std::string child(gh);
    child.push_back(c);
    out.push_back(std::move(child));
  }
  return out;
}

std::optional<std::string> neighbor(std::string_view gh, Direction dir) {
  const BoundingBox box = decode(gh);
  const LatLng c = box.center();
  double dlat = 0.0;
  double dlng = 0.0;
  switch (dir) {
    case Direction::N: dlat = 1; break;
    case Direction::NE: dlat = 1; dlng = 1; break;
    case Direction::E: dlng = 1; break;
    case Direction::SE: dlat = -1; dlng = 1; break;
    case Direction::S: dlat = -1; break;
    case Direction::SW: dlat = -1; dlng = -1; break;
    case Direction::W: dlng = -1; break;
    case Direction::NW: dlat = 1; dlng = -1; break;
  }
  double lat = c.lat + dlat * box.height();
  if (lat > 90.0 || lat < -90.0) return std::nullopt;  // would cross a pole
  double lng = c.lng + dlng * box.width();
  if (lng >= 180.0) lng -= 360.0;
  if (lng < -180.0) lng += 360.0;
  return encode({lat, lng}, static_cast<int>(gh.size()));
}

std::vector<std::string> neighbors(std::string_view gh) {
  std::vector<std::string> out;
  out.reserve(8);
  for (Direction d : kAllDirections)
    if (auto n = neighbor(gh, d)) out.push_back(std::move(*n));
  return out;
}

std::string antipode(std::string_view gh) {
  const LatLng c = decode_center(gh);
  double lng = c.lng + 180.0;
  if (lng >= 180.0) lng -= 360.0;
  return encode({-c.lat, lng}, static_cast<int>(gh.size()));
}

namespace {

struct IndexRange {
  std::int64_t lo = 0;
  std::int64_t hi = -1;  // inclusive; empty when hi < lo
  [[nodiscard]] std::int64_t count() const noexcept {
    return hi < lo ? 0 : hi - lo + 1;
  }
};

/// Grid cells (size `step`, origin `origin`) whose interior intersects
/// [min, max], clamped to `max_index` cells.
IndexRange grid_range(double min, double max, double origin, double step,
                      std::int64_t max_index) {
  IndexRange r;
  r.lo = static_cast<std::int64_t>(std::floor((min - origin) / step));
  // Cell r.lo must have its top strictly above `min` to share interior.
  if (origin + static_cast<double>(r.lo + 1) * step <= min) ++r.lo;
  r.hi = static_cast<std::int64_t>(std::floor((max - origin) / step));
  // Cell r.hi must have its bottom strictly below `max`.
  if (origin + static_cast<double>(r.hi) * step >= max) --r.hi;
  r.lo = std::max<std::int64_t>(r.lo, 0);
  r.hi = std::min<std::int64_t>(r.hi, max_index - 1);
  return r;
}

}  // namespace

std::vector<std::string> covering(const BoundingBox& box, int precision) {
  if (precision < 1 || precision > kMaxPrecision)
    throw std::invalid_argument("geohash::covering: precision out of range");
  if (!box.valid()) throw std::invalid_argument("geohash::covering: bad box");
  const double h = cell_height_deg(precision);
  const double w = cell_width_deg(precision);
  const auto lat_cells = static_cast<std::int64_t>(std::llround(180.0 / h));
  const auto lng_cells = static_cast<std::int64_t>(std::llround(360.0 / w));
  const IndexRange lat_r = grid_range(box.lat_min, box.lat_max, -90.0, h, lat_cells);
  const IndexRange lng_r = grid_range(box.lng_min, box.lng_max, -180.0, w, lng_cells);

  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(lat_r.count() * lng_r.count()));
  for (std::int64_t i = lat_r.lo; i <= lat_r.hi; ++i) {
    const double lat = -90.0 + (static_cast<double>(i) + 0.5) * h;
    for (std::int64_t j = lng_r.lo; j <= lng_r.hi; ++j) {
      const double lng = -180.0 + (static_cast<double>(j) + 0.5) * w;
      out.push_back(encode({lat, lng}, precision));
    }
  }
  return out;
}

std::size_t covering_size(const BoundingBox& box, int precision) {
  if (precision < 1 || precision > kMaxPrecision)
    throw std::invalid_argument("geohash::covering_size: precision out of range");
  if (!box.valid()) throw std::invalid_argument("geohash::covering_size: bad box");
  const double h = cell_height_deg(precision);
  const double w = cell_width_deg(precision);
  const auto lat_cells = static_cast<std::int64_t>(std::llround(180.0 / h));
  const auto lng_cells = static_cast<std::int64_t>(std::llround(360.0 / w));
  const IndexRange lat_r = grid_range(box.lat_min, box.lat_max, -90.0, h, lat_cells);
  const IndexRange lng_r = grid_range(box.lng_min, box.lng_max, -180.0, w, lng_cells);
  return static_cast<std::size_t>(lat_r.count()) *
         static_cast<std::size_t>(lng_r.count());
}

std::uint64_t pack(std::string_view gh) {
  check_valid(gh);
  std::uint64_t bits = 0;
  for (char c : gh) bits = (bits << 5) | static_cast<std::uint64_t>(char_value(c));
  return (static_cast<std::uint64_t>(gh.size()) << 60) | bits;
}

std::string unpack(std::uint64_t packed) {
  const auto len = static_cast<std::size_t>(packed >> 60);
  if (len == 0 || len > static_cast<std::size_t>(kMaxPrecision))
    throw std::invalid_argument("geohash::unpack: bad length nibble");
  std::string out(len, '0');
  std::uint64_t bits = packed & ((1ULL << 60) - 1);
  for (std::size_t i = len; i-- > 0;) {
    out[i] = kAlphabet[static_cast<std::size_t>(bits & 31)];
    bits >>= 5;
  }
  // Bits above the packed characters must be zero, or two different keys
  // alias the same hash (and pack(unpack(x)) != x) — rejecting them keeps
  // the wire decoder strict.  Found by the pack/unpack fuzz harness.
  if (bits != 0)
    throw std::invalid_argument("geohash::unpack: garbage bits above length");
  return out;
}

}  // namespace stash::geohash
