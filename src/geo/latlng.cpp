#include "geo/latlng.hpp"

#include <cmath>
#include <sstream>

namespace stash {

BoundingBox BoundingBox::translated(double dlat, double dlng) const noexcept {
  BoundingBox out{lat_min + dlat, lat_max + dlat, lng_min + dlng, lng_max + dlng};
  // Clamp by shifting back inside the globe, preserving size.
  if (out.lat_min < -90.0) {
    out.lat_max += -90.0 - out.lat_min;
    out.lat_min = -90.0;
  }
  if (out.lat_max > 90.0) {
    out.lat_min -= out.lat_max - 90.0;
    out.lat_max = 90.0;
  }
  if (out.lng_min < -180.0) {
    out.lng_max += -180.0 - out.lng_min;
    out.lng_min = -180.0;
  }
  if (out.lng_max > 180.0) {
    out.lng_min -= out.lng_max - 180.0;
    out.lng_max = 180.0;
  }
  return out;
}

BoundingBox BoundingBox::scaled(double factor) const noexcept {
  const double linear = std::sqrt(factor);
  const LatLng c = center();
  const double h = height() * linear / 2.0;
  const double w = width() * linear / 2.0;
  return {c.lat - h, c.lat + h, c.lng - w, c.lng + w};
}

std::vector<BoundingBox> lng_bands(const BoundingBox& box) {
  if (box.lng_max <= 180.0) return {box};
  if (box.width() >= 360.0)
    return {{box.lat_min, box.lat_max, -180.0, 180.0}};
  return {{box.lat_min, box.lat_max, box.lng_min, 180.0},
          {box.lat_min, box.lat_max, -180.0, box.lng_max - 360.0}};
}

std::string BoundingBox::to_string() const {
  std::ostringstream out;
  out << "[" << lat_min << "," << lat_max << "]x[" << lng_min << "," << lng_max
      << "]";
  return out.str();
}

}  // namespace stash
