// Temporal hierarchy: Year → Month → Day → Hour.
//
// The temporal side of a Cell's label (paper §IV-A: "chronological range
// for the observations", resolutions like 'Month' or 'Day of the Month').
// A TemporalBin is the temporal analogue of a geohash: it has a parent
// (coarser bin containing it), children (finer bins partitioning it), and
// two lateral neighbors (previous/next bin at equal resolution, Fig 1b).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/civil_time.hpp"

namespace stash {

enum class TemporalRes : std::uint8_t { Year = 0, Month = 1, Day = 2, Hour = 3 };
inline constexpr int kNumTemporalRes = 4;

[[nodiscard]] std::string to_string(TemporalRes res);

/// One coarser resolution, if any (Hour→Day→Month→Year).
[[nodiscard]] std::optional<TemporalRes> coarser(TemporalRes res) noexcept;
/// One finer resolution, if any.
[[nodiscard]] std::optional<TemporalRes> finer(TemporalRes res) noexcept;

/// Half-open interval of unix seconds [begin, end).
struct TimeRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  [[nodiscard]] bool valid() const noexcept { return begin <= end; }
  [[nodiscard]] bool contains(std::int64_t ts) const noexcept {
    return ts >= begin && ts < end;
  }
  [[nodiscard]] bool intersects(const TimeRange& other) const noexcept {
    return begin < other.end && other.begin < end;
  }

  bool operator==(const TimeRange&) const = default;
};

class TemporalBin {
 public:
  TemporalBin() = default;

  /// Constructs and validates a bin; unused finer fields must be left at
  /// their defaults (month/day = 1, hour = 0).
  TemporalBin(TemporalRes res, int year, int month = 1, int day = 1, int hour = 0);

  /// The bin at `res` containing the given unix timestamp.
  [[nodiscard]] static TemporalBin of_timestamp(std::int64_t ts, TemporalRes res);

  [[nodiscard]] TemporalRes res() const noexcept { return res_; }
  [[nodiscard]] int year() const noexcept { return year_; }
  [[nodiscard]] int month() const noexcept { return month_; }
  [[nodiscard]] int day() const noexcept { return day_; }
  [[nodiscard]] int hour() const noexcept { return hour_; }

  /// The unix-seconds interval this bin spans.
  [[nodiscard]] TimeRange range() const noexcept;

  /// Coarser bin containing this one; nullopt at Year resolution.
  [[nodiscard]] std::optional<TemporalBin> parent() const;

  /// Finer bins partitioning this one (12 months / 28–31 days / 24 hours);
  /// empty at Hour resolution.
  [[nodiscard]] std::vector<TemporalBin> children() const;

  /// Lateral neighbors at equal resolution (paper Fig 1b).
  [[nodiscard]] TemporalBin prev() const;
  [[nodiscard]] TemporalBin next() const;

  [[nodiscard]] bool contains(const TemporalBin& other) const;

  /// ISO-ish label: "2015", "2015-03", "2015-03-02", "2015-03-02T05".
  [[nodiscard]] std::string label() const;

  /// Packs into 32 bits (res:2, year:14 offset from 0, month:4, day:5, hour:5);
  /// stable hash/ordering key.
  [[nodiscard]] std::uint32_t pack() const noexcept;
  [[nodiscard]] static TemporalBin unpack(std::uint32_t packed);

  bool operator==(const TemporalBin&) const = default;

 private:
  std::int16_t year_ = 1970;
  std::int8_t month_ = 1;
  std::int8_t day_ = 1;
  std::int8_t hour_ = 0;
  TemporalRes res_ = TemporalRes::Day;
};

/// All bins at `res` whose interval intersects `range` (half-open),
/// in chronological order.
[[nodiscard]] std::vector<TemporalBin> temporal_covering(const TimeRange& range,
                                                         TemporalRes res);

/// Number of bins `temporal_covering` would return.
[[nodiscard]] std::size_t temporal_covering_size(const TimeRange& range,
                                                 TemporalRes res);

}  // namespace stash
