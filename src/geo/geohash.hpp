// Geohash: hierarchical base-32 spatial encoding (Niemeyer 1999).
//
// STASH labels the spatial extent of every Cell with a geohash (§IV-A);
// hierarchical edges are derived by dropping/appending characters, lateral
// edges by the 8-neighborhood at equal precision (§IV-B), and the DHT
// partitions data on a geohash prefix (§VI-C).  Hotspot handling (§VII-B.3)
// needs the geohash *antipode*.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geo/latlng.hpp"

namespace stash::geohash {

inline constexpr std::string_view kAlphabet = "0123456789bcdefghjkmnpqrstuvwxyz";
inline constexpr int kMaxPrecision = 12;
inline constexpr int kChildrenPerCell = 32;

/// 8 compass directions for lateral (spatial) neighbors.
enum class Direction { N, NE, E, SE, S, SW, W, NW };
inline constexpr std::array<Direction, 8> kAllDirections = {
    Direction::N, Direction::NE, Direction::E, Direction::SE,
    Direction::S, Direction::SW, Direction::W, Direction::NW};

/// True iff `gh` is a well-formed geohash (non-empty, valid alphabet,
/// length <= kMaxPrecision).
[[nodiscard]] bool is_valid(std::string_view gh) noexcept;

/// Encodes a point at the given precision (number of characters, 1..12).
[[nodiscard]] std::string encode(const LatLng& point, int precision);

/// Bounding box of a geohash cell. Throws std::invalid_argument on bad input.
[[nodiscard]] BoundingBox decode(std::string_view gh);

/// Center point of a geohash cell.
[[nodiscard]] LatLng decode_center(std::string_view gh);

/// Cell width/height in degrees at a precision.
[[nodiscard]] double cell_width_deg(int precision) noexcept;
[[nodiscard]] double cell_height_deg(int precision) noexcept;

/// Parent (one character shorter). Empty optional for precision-1 hashes.
[[nodiscard]] std::optional<std::string> parent(std::string_view gh);

/// The 32 children (one character longer), in alphabet order.
[[nodiscard]] std::vector<std::string> children(std::string_view gh);

/// Neighbor in a direction; empty optional when it would cross a pole.
[[nodiscard]] std::optional<std::string> neighbor(std::string_view gh,
                                                  Direction dir);

/// All existing neighbors (up to 8), paper Fig 1a.
[[nodiscard]] std::vector<std::string> neighbors(std::string_view gh);

/// Geohash of the diametrically opposite cell (§VII-B.3): latitude negated,
/// longitude rotated by 180°.
[[nodiscard]] std::string antipode(std::string_view gh);

/// All geohash cells at `precision` whose interiors intersect `box`.
/// Cells are returned in row-major (south→north, west→east) order.
[[nodiscard]] std::vector<std::string> covering(const BoundingBox& box,
                                                int precision);

/// Number of cells `covering` would return, without materialising them.
[[nodiscard]] std::size_t covering_size(const BoundingBox& box, int precision);

/// Packs a geohash into a 64-bit integer key (5 bits/char + length nibble);
/// stable and collision-free for precisions 1..12.
[[nodiscard]] std::uint64_t pack(std::string_view gh);
[[nodiscard]] std::string unpack(std::uint64_t packed);

}  // namespace stash::geohash
