// Combined spatiotemporal resolution and the STASH level index.
//
// Paper §IV-C: "The graph level for a given spatiotemporal resolution is
// calculated as (n_j * n_t + n_i) where n_s and n_t are the total possible
// spatial and temporal resolutions ... and n_i and n_j are the current
// spatial and temporal resolution."  We realise that as
//     level = temporal_index * kMaxSpatialPrecision + (spatial - 1)
// so each (spatial, temporal) pair maps to a unique level, and levels that
// differ by one spatial or one temporal step are exactly the "3 different
// parent precisions" of §IV-B.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geo/geohash.hpp"
#include "geo/temporal.hpp"

namespace stash {

struct Resolution {
  int spatial = 6;                            // geohash precision, 1..12
  TemporalRes temporal = TemporalRes::Day;

  [[nodiscard]] bool valid() const noexcept {
    return spatial >= 1 && spatial <= geohash::kMaxPrecision;
  }

  [[nodiscard]] std::string to_string() const {
    // Built up with += (not operator+ chains): GCC 12's -Wrestrict fires a
    // false positive (PR105329) on `const char* + std::string&&` when this
    // gets inlined into larger TUs, and warnings are errors here.
    std::string out = "s";
    out += std::to_string(spatial);
    out += '/';
    out += stash::to_string(temporal);
    return out;
  }

  bool operator==(const Resolution&) const = default;
};

inline constexpr int kNumLevels = geohash::kMaxPrecision * kNumTemporalRes;

/// Unique level index in [0, kNumLevels).
[[nodiscard]] constexpr int level_index(const Resolution& r) noexcept {
  return static_cast<int>(r.temporal) * geohash::kMaxPrecision + (r.spatial - 1);
}

[[nodiscard]] constexpr Resolution resolution_of_level(int level) noexcept {
  return Resolution{level % geohash::kMaxPrecision + 1,
                    static_cast<TemporalRes>(level / geohash::kMaxPrecision)};
}

/// The up-to-3 parent resolutions: one step coarser spatially, temporally,
/// and both (paper §IV-B).
[[nodiscard]] std::vector<Resolution> parent_resolutions(const Resolution& r);

/// The up-to-3 child resolutions (one step finer on each axis / both).
[[nodiscard]] std::vector<Resolution> child_resolutions(const Resolution& r);

}  // namespace stash
