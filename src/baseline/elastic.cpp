#include "baseline/elastic.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hash.hpp"

namespace stash::baseline {

ElasticSearchSim::ElasticSearchSim(EsConfig config,
                                   std::shared_ptr<const NamGenerator> generator)
    : config_(config), generator_(generator), store_(std::move(generator)) {
  if (!generator_) throw std::invalid_argument("ElasticSearchSim: null generator");
  if (config_.data_nodes == 0 || config_.shards == 0)
    throw std::invalid_argument("ElasticSearchSim: need nodes and shards");
}

std::uint64_t ElasticSearchSim::query_hash(const AggregationQuery& query,
                                           bool filter_only) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  const auto mix_double = [&h](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    hash_combine(h, bits);
  };
  mix_double(query.area.lat_min);
  mix_double(query.area.lat_max);
  mix_double(query.area.lng_min);
  mix_double(query.area.lng_max);
  hash_combine(h, static_cast<std::uint64_t>(query.time.begin));
  hash_combine(h, static_cast<std::uint64_t>(query.time.end));
  if (!filter_only) {
    hash_combine(h, static_cast<std::uint64_t>(query.res.spatial));
    hash_combine(h, static_cast<std::uint64_t>(query.res.temporal));
  }
  return h;
}

EsQueryStats ElasticSearchSim::run_query(const AggregationQuery& query) {
  if (!query.valid())
    throw std::invalid_argument("ElasticSearchSim: invalid query");
  EsQueryStats stats;
  const auto& cost = config_.cost;

  // The aggregation itself — executed for real so the result is identical
  // to what the STASH cluster serves for the same query.
  const ScanResult result = store_.scan(query.area, query.time, query.res);
  stats.result_cells = result.cells.size();
  stats.docs_matched = result.stats.records_scanned;
  const std::size_t response_bytes =
      stats.result_cells * config_.response_cell_bytes + 256;

  const std::uint64_t request_key = query_hash(query, /*filter_only=*/false);
  if (config_.enable_request_cache && request_cache_.contains(request_key)) {
    // Every shard answers from its request cache; the coordinator still
    // reduces 600 responses.
    stats.request_cache_hit = true;
    stats.latency = cost.net_transfer(config_.request_bytes) +
                    cost.cache_probes(config_.shards) +
                    static_cast<sim::SimTime>(config_.shards) *
                        config_.reduce_per_shard +
                    cost.net_transfer(response_bytes) +
                    config_.frontend_overhead;
    return stats;
  }

  const std::uint64_t filter_key = query_hash(query, /*filter_only=*/true);
  stats.filter_cache_hit =
      config_.enable_filter_cache && filter_cache_.contains(filter_key);

  // Day slices whose doc values are already in the page cache cost memory
  // bandwidth instead of disk.
  const std::int64_t first_day =
      query.time.begin / 86400 - (query.time.begin % 86400 < 0 ? 1 : 0);
  const std::int64_t last_day = (query.time.end - 1) / 86400;
  std::size_t cold_days = 0;
  for (std::int64_t day = first_day; day <= last_day; ++day)
    if (!config_.enable_page_cache || !warm_days_.contains(day)) ++cold_days;
  stats.cold_days = cold_days;
  const auto total_days = static_cast<std::size_t>(last_day - first_day + 1);
  const double cold_fraction =
      static_cast<double>(cold_days) / static_cast<double>(total_days);

  // Hash routing spreads matching docs evenly over every shard.
  const std::size_t docs_per_shard =
      (stats.docs_matched + config_.shards - 1) / config_.shards;

  // Per-document aggregation cost: the agg framework multiplier, reduced by
  // a filter-cache hit; cold slices additionally stream doc values from disk.
  sim::SimTime per_shard = config_.shard_overhead;
  double doc_ns = static_cast<double>(cost.scan_ns_per_record) *
                  config_.agg_doc_factor;
  if (stats.filter_cache_hit) doc_ns *= 1.0 - config_.filter_cache_saving;
  per_shard += static_cast<sim::SimTime>(
      static_cast<double>(docs_per_shard) * doc_ns / 1000.0);
  per_shard += static_cast<sim::SimTime>(
      cold_fraction *
      static_cast<double>(cost.disk_stream(docs_per_shard * kObservationBytes)));

  // Cold slices page-in memory-mapped segments: a one-off per-day penalty
  // per node rather than a raw seek per shard.
  const sim::SimTime node_seeks =
      static_cast<sim::SimTime>(cold_days) * config_.cold_day_penalty;

  // Shards per node execute in parallel across the worker pool.
  const std::size_t shards_per_node =
      (config_.shards + config_.data_nodes - 1) / config_.data_nodes;
  const std::size_t waves =
      (shards_per_node + static_cast<std::size_t>(config_.workers_per_node) - 1) /
      static_cast<std::size_t>(config_.workers_per_node);
  const sim::SimTime node_time =
      node_seeks + per_shard * static_cast<sim::SimTime>(std::max<std::size_t>(waves, 1));

  stats.latency = cost.net_transfer(config_.request_bytes) + node_time +
                  static_cast<sim::SimTime>(config_.shards) *
                      config_.reduce_per_shard +
                  cost.net_transfer(response_bytes) + config_.frontend_overhead;

  // Warm the caches for subsequent queries.
  if (config_.enable_request_cache)
    request_cache_.emplace(request_key, stats.result_cells);
  if (config_.enable_filter_cache) filter_cache_.insert(filter_key);
  if (config_.enable_page_cache)
    for (std::int64_t day = first_day; day <= last_day; ++day)
      warm_days_.insert(day);
  return stats;
}

std::vector<EsQueryStats> ElasticSearchSim::run_sequence(
    const std::vector<AggregationQuery>& queries) {
  std::vector<EsQueryStats> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(run_query(q));
  return out;
}

void ElasticSearchSim::clear_caches() {
  request_cache_.clear();
  filter_cache_.clear();
  warm_days_.clear();
}

}  // namespace stash::baseline
