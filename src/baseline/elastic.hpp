// ElasticSearch-like comparator (paper §VIII-A, §VIII-F).
//
// Substitution for the ES 6.x cluster of the evaluation: "3 master nodes
// and 120 data nodes ... the index was split into 600 shards.  Three types
// of caches ... stored the query results, aggregations, and field values."
//
// The model captures the semantics that drive Fig 8:
//   * Documents are hash-routed: every shard holds a random 1/600 slice of
//     the data, so EVERY query fans out to all 600 shards and the
//     coordinator reduces 600 partial aggregations — no spatial locality.
//   * The shard request cache is keyed by the *entire* search request, so
//     only an exact repeat hits; an overlapping pan or dice misses.
//   * The node query (filter) cache is keyed by the filter clause — again
//     exact-match, reused only for identical spatiotemporal predicates.
//   * The field-values (fielddata/doc-values) cache and OS page cache warm
//     per (shard, day), shaving the disk component on repeat touches —
//     the ~0.6–2 % improvement the paper observes for ES.
//
// Latencies are computed analytically with the same CostModel as the STASH
// cluster; the aggregation itself executes for real via GalileoStore so
// results stay comparable.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/query.hpp"
#include "sim/cost_model.hpp"
#include "storage/galileo_store.hpp"

namespace stash::baseline {

struct EsConfig {
  std::uint32_t data_nodes = 120;
  std::uint32_t shards = 600;       // §VIII-A
  int workers_per_node = 8;
  sim::CostModel cost;
  /// Per-shard fixed execution overhead (search phase setup, agg context).
  sim::SimTime shard_overhead = 150;            // 0.15 ms
  /// Coordinator reduce cost per shard response.
  sim::SimTime reduce_per_shard = 18;           // 18 us
  /// Aggregation framework per-document multiplier vs a raw scan.
  double agg_doc_factor = 2.0;
  /// Fraction of per-document cost avoided on a filter-cache hit.
  double filter_cache_saving = 0.3;
  /// One-off penalty per cold (day) slice: Lucene segments are memory-
  /// mapped, so a cold touch costs page-ins rather than a raw HDD seek per
  /// shard — the reason the paper sees ES improve only ~0.6-2% on repeats.
  sim::SimTime cold_day_penalty = 300;  // 0.3 ms
  std::size_t response_cell_bytes = 24;
  std::size_t request_bytes = 512;   // JSON search bodies are chunky
  sim::SimTime frontend_overhead = 1 * sim::kMillisecond;
  bool enable_request_cache = true;
  bool enable_filter_cache = true;
  bool enable_page_cache = true;
};

struct EsQueryStats {
  sim::SimTime latency = 0;
  bool request_cache_hit = false;
  bool filter_cache_hit = false;
  std::size_t docs_matched = 0;
  std::size_t cold_days = 0;   // (day) slices read from disk this query
  std::size_t result_cells = 0;
};

class ElasticSearchSim {
 public:
  ElasticSearchSim(EsConfig config, std::shared_ptr<const NamGenerator> generator);

  /// Executes one aggregation query; updates the caches.
  EsQueryStats run_query(const AggregationQuery& query);

  /// A user session: queries back-to-back (Fig 8 sequences).
  std::vector<EsQueryStats> run_sequence(const std::vector<AggregationQuery>& queries);

  void clear_caches();

  [[nodiscard]] const EsConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] static std::uint64_t query_hash(const AggregationQuery& query,
                                                bool filter_only);

  EsConfig config_;
  std::shared_ptr<const NamGenerator> generator_;
  GalileoStore store_;
  /// Request cache: exact search body -> result cell count (the payload is
  /// recomputed deterministically; only the hit/miss matters for cost).
  std::unordered_map<std::uint64_t, std::size_t> request_cache_;
  std::unordered_set<std::uint64_t> filter_cache_;
  std::unordered_set<std::int64_t> warm_days_;  // page/doc-values cache
};

}  // namespace stash::baseline
