// Precomputation baseline — the Nanocubes/imMens family (paper §III).
//
// "[19] uses a data cube structure which stores all possible precomputed
// aggregations at multiple levels of resolutions over the database. ...
// However, the above systems do not scale with dataset size as they house
// the data structure in-memory."
//
// PrecomputedCube materialises EVERY Cell of a coverage region × time
// window across a range of spatial resolutions at build time: queries are
// pure in-memory lookups (the best latency possible), but memory grows
// with the dataset rather than with the working set — the trade-off STASH
// is designed to escape.  Used by the precompute ablation bench and the
// baseline tests.
#pragma once

#include <memory>

#include "core/query.hpp"
#include "sim/cost_model.hpp"
#include "storage/galileo_store.hpp"

namespace stash::baseline {

struct CubeConfig {
  /// The spatiotemporal slab to precompute.
  BoundingBox coverage{36.0, 40.0, -102.0, -94.0};
  TimeRange window;  // defaults to 2015-02-02 .. 2015-02-03
  int min_spatial = 2;
  int max_spatial = 6;
  TemporalRes temporal = TemporalRes::Day;
  sim::CostModel cost;

  CubeConfig();
};

struct CubeQueryStats {
  sim::SimTime latency = 0;
  std::size_t result_cells = 0;
  bool covered = true;  // false: the query left the precomputed slab
};

class PrecomputedCube {
 public:
  PrecomputedCube(CubeConfig config, std::shared_ptr<const NamGenerator> generator);

  /// Pure-lookup query.  Queries outside the precomputed slab (area, time
  /// window, or resolution range) report covered=false and fall back to a
  /// disk scan, like the real systems would have to.
  [[nodiscard]] CubeQueryStats query(const AggregationQuery& query) const;

  /// Exact cells for a covered query (for correctness tests).
  [[nodiscard]] CellSummaryMap cells_for(const AggregationQuery& query) const;

  [[nodiscard]] std::size_t total_cells() const noexcept { return total_cells_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept { return memory_bytes_; }
  /// Modeled one-off build cost (the precomputation the paper critiques).
  [[nodiscard]] sim::SimTime build_time() const noexcept { return build_time_; }

  [[nodiscard]] bool covers(const AggregationQuery& query) const;

 private:
  CubeConfig config_;
  GalileoStore store_;
  /// One Cell map per spatial resolution in [min_spatial, max_spatial].
  std::vector<CellSummaryMap> levels_;
  std::size_t total_cells_ = 0;
  std::size_t memory_bytes_ = 0;
  sim::SimTime build_time_ = 0;
};

}  // namespace stash::baseline
