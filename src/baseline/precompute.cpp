#include "baseline/precompute.hpp"

#include <stdexcept>

#include "common/civil_time.hpp"

namespace stash::baseline {

CubeConfig::CubeConfig()
    : window{unix_seconds({2015, 2, 2}), unix_seconds({2015, 2, 3})} {}

PrecomputedCube::PrecomputedCube(CubeConfig config,
                                 std::shared_ptr<const NamGenerator> generator)
    : config_(config), store_(std::move(generator)) {
  if (!config_.coverage.valid() || !config_.window.valid())
    throw std::invalid_argument("PrecomputedCube: bad coverage/window");
  if (config_.min_spatial < 2 || config_.max_spatial > geohash::kMaxPrecision ||
      config_.min_spatial > config_.max_spatial)
    throw std::invalid_argument("PrecomputedCube: bad resolution range");

  // Build: one full scan at the finest resolution, then roll up level by
  // level — exactly how cube builders amortise their precomputation.
  const Resolution finest{config_.max_spatial, config_.temporal};
  ScanResult base = store_.scan(config_.coverage, config_.window, finest);
  build_time_ += static_cast<sim::SimTime>(base.stats.blocks_touched) *
                 config_.cost.disk_seek;
  build_time_ += config_.cost.disk_stream(base.stats.bytes_read);
  build_time_ += config_.cost.scan(base.stats.records_scanned);

  const auto level_count =
      static_cast<std::size_t>(config_.max_spatial - config_.min_spatial + 1);
  levels_.resize(level_count);
  levels_.back() = std::move(base.cells);
  for (std::size_t i = level_count - 1; i-- > 0;) {
    const auto& finer = levels_[i + 1];
    CellSummaryMap& coarser = levels_[i];
    for (const auto& [key, summary] : finer) {
      const CellKey parent_key(*geohash::parent(key.geohash_str()), key.bin());
      auto [it, inserted] = coarser.try_emplace(parent_key, summary);
      if (!inserted) it->second.merge(summary);
    }
    build_time_ += config_.cost.merge(finer.size());
  }
  for (const auto& level : levels_) {
    total_cells_ += level.size();
    for (const auto& [key, summary] : level)
      memory_bytes_ += sizeof(CellKey) + summary.byte_size();
  }
  build_time_ += config_.cost.cell_inserts(total_cells_);
}

bool PrecomputedCube::covers(const AggregationQuery& query) const {
  return query.res.temporal == config_.temporal &&
         query.res.spatial >= config_.min_spatial &&
         query.res.spatial <= config_.max_spatial &&
         config_.coverage.contains(query.area) &&
         config_.window.begin <= query.time.begin &&
         query.time.end <= config_.window.end;
}

CellSummaryMap PrecomputedCube::cells_for(const AggregationQuery& query) const {
  if (!covers(query))
    throw std::invalid_argument("PrecomputedCube::cells_for: outside the cube");
  const auto& level =
      levels_[static_cast<std::size_t>(query.res.spatial - config_.min_spatial)];
  CellSummaryMap out;
  for (const auto& [key, summary] : level) {
    if (!key.bounds().intersects(query.area)) continue;
    if (!key.time_range().intersects(query.time)) continue;
    out.emplace(key, summary);
  }
  return out;
}

CubeQueryStats PrecomputedCube::query(const AggregationQuery& query) const {
  if (!query.valid())
    throw std::invalid_argument("PrecomputedCube::query: invalid query");
  CubeQueryStats stats;
  if (!covers(query)) {
    // Fall back to a raw scan — the "does not scale with dataset size"
    // failure mode: everything outside the precomputed slab is cold.
    stats.covered = false;
    const ScanResult scan = store_.scan(query.area, query.time, query.res);
    stats.result_cells = scan.cells.size();
    stats.latency = static_cast<sim::SimTime>(scan.stats.blocks_touched) *
                        config_.cost.disk_seek +
                    config_.cost.disk_stream(scan.stats.bytes_read) +
                    config_.cost.scan(scan.stats.records_scanned) +
                    config_.cost.merge(scan.cells.size());
    return stats;
  }
  const auto& level =
      levels_[static_cast<std::size_t>(query.res.spatial - config_.min_spatial)];
  std::size_t probes = 0;
  std::size_t hits = 0;
  for (const auto& [key, summary] : level) {
    ++probes;
    if (key.bounds().intersects(query.area) &&
        key.time_range().intersects(query.time))
      ++hits;
  }
  stats.result_cells = hits;
  // An indexed cube probes per *candidate* cell of the query footprint,
  // not per stored cell; charge the footprint.
  const std::size_t footprint =
      geohash::covering_size(query.area, query.res.spatial);
  stats.latency = config_.cost.cache_probes(std::min(footprint, probes)) +
                  config_.cost.merge(hits);
  return stats;
}

}  // namespace stash::baseline
