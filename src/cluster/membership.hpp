// SWIM-style gossip failure detection for the simulated STASH cluster.
//
// The paper's deployment (§VII) assumes every node can tell which peers
// are reachable — handoff targets, clique-replica holders, and DHT
// successors are all picked from "live" nodes.  PR 1 approximated that
// with a frontend-only suspicion circuit breaker: only the scatter/gather
// coordinator learned anything, only from its own timeouts, and a node
// behind a partition looked identical to a slow one.  This module replaces
// that with a real membership protocol in the SWIM family (Das et al.,
// DSN'02, as hardened by Hashicorp's memberlist):
//
//   * every observer (each node, plus the frontend) periodically pings one
//     random member; a missed direct ack escalates to `ping-req` through k
//     proxies before the target is *suspected*;
//   * a suspect that stays silent for a suspicion timeout is declared
//     *dead*; state changes piggyback on subsequent probe traffic and
//     spread epidemically;
//   * every member carries an *incarnation* number only it may bump.  A
//     member that learns it is suspected or declared dead refutes with a
//     higher incarnation, which overrides the stale rumor everywhere —
//     this is what lets a restarted or healed node rejoin (`announce`).
//
// All timers run as *background* events on the sim EventLoop: gossip
// interleaves deterministically with foreground work but never keeps
// `run()` alive, so run-to-quiescence tests are unaffected.  Transport is
// a callback the cluster wires through its normal message path — gossip
// traffic is subject to the same FaultInjector drops, partitions, and
// latency as queries, which is exactly why it detects them.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_loop.hpp"
#include "sim/fault.hpp"

namespace stash::cluster {

/// kLeft marks a slot that is not part of the cluster: either a standby
/// that has never joined, or a member that was decommissioned.  Unlike
/// kDead (a fault to rout around and probe for recovery), kLeft is an
/// *intentional* absence — left slots are never probed, and only an
/// explicit (re)join with a strictly higher incarnation brings one back.
enum class MemberState : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,
  kDead = 2,
  kLeft = 3,
};

[[nodiscard]] const char* to_string(MemberState state) noexcept;

/// One observer's belief about one member.
struct MemberInfo {
  MemberState state = MemberState::kAlive;
  std::uint64_t incarnation = 0;
  sim::SimTime since = 0;  // when this belief was adopted
};

/// A disseminated state claim: "member `node` is `state` at `incarnation`".
struct MembershipUpdate {
  std::uint32_t node = 0;
  MemberState state = MemberState::kAlive;
  std::uint64_t incarnation = 0;
};

struct MembershipConfig {
  bool enabled = true;
  /// One probe per observer per interval (initial offsets are jittered so
  /// the fleet does not probe in lockstep).
  sim::SimTime probe_interval = 500 * sim::kMillisecond;
  /// Wait for a direct ack before escalating to ping-req; the indirect
  /// round gets the same again.
  sim::SimTime probe_timeout = 40 * sim::kMillisecond;
  /// Proxies asked to ping the target indirectly after a direct miss.
  int ping_req_fanout = 2;
  /// Suspect -> dead after this long without a refutation.
  sim::SimTime suspicion_timeout = 2 * sim::kSecond;
  /// Max piggybacked updates per gossip message.
  int piggyback_limit = 8;
  /// How many messages each accepted update rides before being retired.
  int update_retransmits = 6;
  /// Members contacted directly by `announce` (rejoin after restart/heal).
  int announce_fanout = 4;
  /// Every Nth tick an observer may probe members it believes dead, so a
  /// healed side rediscovers the other without an explicit announce.
  int dead_probe_every = 4;
  /// Base wire size of a gossip message (updates add 16 bytes each).
  std::size_t message_bytes = 48;
  std::uint64_t seed = 0x5357494dULL;  // "SWIM"
};

struct MembershipStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t ping_reqs_sent = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t refutations = 0;       // self-defences with a bumped incarnation
  std::uint64_t false_suspicions = 0;  // suspect -> alive transitions observed
  std::uint64_t deaths_declared = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t announces = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
};

/// Gossip failure detector over `num_nodes` members, observed by each node
/// and by the frontend pseudo-node (which probes but is not itself a
/// member — it is always reachable by construction).
class GossipMembership {
 public:
  /// Sends `bytes` from observer address `from` to `to` (node ids, or
  /// sim::kFrontendNode) and runs `deliver` at the destination iff the
  /// message survives the network and the destination is up.  The cluster
  /// routes this through its normal (background) message path.
  using Transport = std::function<void(std::uint32_t from, std::uint32_t to,
                                       std::size_t bytes,
                                       std::function<void()> deliver)>;
  /// Is this process itself up?  Crashed observers skip their probe ticks.
  using Liveness = std::function<bool(std::uint32_t node)>;
  /// Observer `observer`'s view of `node` changed to `state`.
  using StateHandler = std::function<void(
      std::uint32_t observer, std::uint32_t node, MemberState state)>;

  /// `num_nodes` total addressable slots; slots >= `initial_members` start
  /// as kLeft standbys that can join() later (the default joins every
  /// slot, the historical fixed-size behavior).
  GossipMembership(MembershipConfig config, std::uint32_t num_nodes,
                   sim::EventLoop& loop, Transport transport,
                   Liveness liveness,
                   std::uint32_t initial_members = kAllSlots);

  static constexpr std::uint32_t kAllSlots = 0xFFFFFFFFu;

  void set_state_handler(StateHandler handler) {
    on_state_ = std::move(handler);
  }

  /// Schedules the first (jittered) probe tick for every observer.  Call
  /// once; a no-op when the protocol is disabled.
  void start();

  /// Rejoin: bump the node's incarnation, reassert it alive, and push the
  /// news to `announce_fanout` members directly.  Overrides any suspect or
  /// dead rumor about it at lower incarnations.
  void announce(std::uint32_t node);

  /// Membership join: registers a standby (or re-registers a decommissioned
  /// slot) and announces it with a bumped incarnation, which out-bids the
  /// kLeft record everywhere.
  void join(std::uint32_t node);

  /// Intentional departure: deregisters the slot, bumps its incarnation,
  /// and disseminates an explicit kLeft rumor — from the leaver itself and
  /// from the frontend (which drives decommissions), so a leaver that
  /// crashes mid-drain still converges to left, not merely dead.
  void leave(std::uint32_t node);

  /// Ground truth: is this slot currently a registered cluster member?
  /// (Pinned to the durable store in a real deployment, like incarnations.)
  [[nodiscard]] bool is_registered(std::uint32_t node) const {
    return node < num_nodes_ && registered_[node];
  }

  /// Forget everything observer `node` believed (its view is volatile
  /// state, wiped on crash).  Its own persisted incarnation survives.
  void reset_view(std::uint32_t node);

  /// Observer `observer`'s belief about `node` (ids; observer may be
  /// sim::kFrontendNode).  Disabled protocol: everything is alive.
  [[nodiscard]] const MemberInfo& info(std::uint32_t observer,
                                       std::uint32_t node) const;
  [[nodiscard]] MemberState state(std::uint32_t observer,
                                  std::uint32_t node) const {
    return info(observer, node).state;
  }
  /// Should `observer` send work to `node` right now?
  [[nodiscard]] bool usable(std::uint32_t observer, std::uint32_t node) const {
    return !config_.enabled || state(observer, node) == MemberState::kAlive;
  }

  /// Applies one update to one observer's view (public for tests; the
  /// protocol calls this for every piggybacked update).  Returns true if
  /// the view changed.
  bool apply(std::uint32_t observer, const MembershipUpdate& update);

  [[nodiscard]] const MembershipStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MembershipConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint64_t incarnation(std::uint32_t node) const {
    return incarnations_[node];
  }

 private:
  struct PendingUpdate {
    MembershipUpdate update;
    int remaining;
  };
  struct Probe {
    std::uint32_t target = 0;
    std::uint64_t seq = 0;
    bool acked = true;
  };

  [[nodiscard]] std::size_t index_of(std::uint32_t observer) const;
  [[nodiscard]] std::uint32_t address_of(std::size_t index) const {
    return index == num_nodes_ ? sim::kFrontendNode
                               : static_cast<std::uint32_t>(index);
  }
  [[nodiscard]] std::size_t wire_bytes(std::size_t updates) const {
    return config_.message_bytes + 16 * updates;
  }

  void tick(std::size_t obs);
  void send_ping(std::size_t obs, std::uint32_t target);
  void on_ping(std::size_t obs, std::uint32_t sender, std::uint64_t seq,
               std::vector<MembershipUpdate> updates,
               std::uint64_t sender_incarnation);
  void on_ack(std::size_t obs, std::uint32_t target, std::uint64_t seq,
              std::vector<MembershipUpdate> updates,
              std::uint64_t target_incarnation);
  void on_direct_timeout(std::size_t obs, std::uint64_t seq);
  void on_indirect_timeout(std::size_t obs, std::uint64_t seq);
  void on_ping_req(std::size_t obs, std::uint32_t origin, std::uint32_t target,
                   std::uint64_t seq);
  void suspect(std::size_t obs, std::uint32_t target);
  bool apply_at(std::size_t obs, const MembershipUpdate& update);

  /// Drains up to piggyback_limit updates from the observer's rumor queue.
  std::vector<MembershipUpdate> take_updates(std::size_t obs);
  void enqueue_update(std::size_t obs, const MembershipUpdate& update);
  void apply_all(std::size_t obs, const std::vector<MembershipUpdate>& updates);
  /// Direct evidence of life: a message physically arrived from `node`.
  void evidence_alive(std::size_t obs, std::uint32_t node,
                      std::uint64_t incarnation);

  MembershipConfig config_;
  std::uint32_t num_nodes_;
  sim::EventLoop& loop_;
  Transport transport_;
  Liveness liveness_;
  StateHandler on_state_;
  Rng rng_;
  MembershipStats stats_;

  /// views_[observer][member]; observer num_nodes_ is the frontend.
  std::vector<std::vector<MemberInfo>> views_;
  std::vector<std::deque<PendingUpdate>> rumors_;
  std::vector<Probe> probes_;
  std::vector<std::uint64_t> tick_counts_;
  /// Per-member incarnation.  Survives reset_view: real deployments pin it
  /// to the durable store the Galileo blocks live on, so a cold restart
  /// can still out-bid the rumors of its own death.
  std::vector<std::uint64_t> incarnations_;
  /// Ground-truth membership ledger (survives reset_view, like
  /// incarnations_): true iff the slot is currently joined.
  std::vector<bool> registered_;
  /// Set by leave(): suppresses the self-refutation path so a leaver does
  /// not out-bid its own departure rumor.  Cleared by join()/announce.
  std::vector<bool> wants_left_;
  std::uint64_t next_seq_ = 0;
  bool started_ = false;
};

}  // namespace stash::cluster
